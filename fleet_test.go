package byzcons_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"byzcons"
)

// keyForShard returns a deterministic key routing to the given shard.
func keyForShard(t *testing.T, shards, shard, salt int) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := []byte(fmt.Sprintf("key-%d-%d", salt, i))
		if byzcons.ShardOf(key, shards) == shard {
			return key
		}
	}
	t.Fatalf("no key found for shard %d/%d", shard, shards)
	return nil
}

// TestShardOfStableAndUniform pins the partitioner's contract: deterministic
// (including golden values guarding cross-process stability), in-range, an
// explicit S=1 fast path, and uniform within ~10% over random keys.
func TestShardOfStableAndUniform(t *testing.T) {
	t.Parallel()
	// Golden placements: these must never change across runs, processes or
	// releases — clients compute placement with the same pure function.
	goldens := []struct {
		key    string
		shards int
		want   int
	}{
		{"", 8, 6},
		{"user:17", 8, 7},
		{"user:17", 4, 3},
		{"a", 2, 1},
	}
	for _, g := range goldens {
		if got := byzcons.ShardOf([]byte(g.key), g.shards); got != g.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d (placement must be stable)", g.key, g.shards, got, g.want)
		}
	}
	// S=1 fast path: every key routes to shard 0.
	for _, k := range []string{"", "x", "user:17", "\x00\xff"} {
		if got := byzcons.ShardOf([]byte(k), 1); got != 0 {
			t.Errorf("ShardOf(%q, 1) = %d, want 0", k, got)
		}
	}
	// Uniformity: over random keys, each of 8 shards holds its fair share
	// within 10%.
	const shards, keys = 8, 80000
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, shards)
	buf := make([]byte, 16)
	for i := 0; i < keys; i++ {
		rng.Read(buf)
		s := byzcons.ShardOf(buf, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		counts[s]++
	}
	fair := float64(keys) / shards
	for s, c := range counts {
		if dev := float64(c)/fair - 1; dev > 0.10 || dev < -0.10 {
			t.Errorf("shard %d holds %d keys (%.1f%% off the fair share %v)", s, c, dev*100, fair)
		}
	}
}

// FuzzShardPartitioner fuzzes the partitioner's invariants: in-range,
// deterministic across calls, independent of slice identity, and the S=1
// fast path.
func FuzzShardPartitioner(f *testing.F) {
	f.Add([]byte("user:17"), 8)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xff, 0x00, 0x80}, 3)
	f.Add([]byte("a longer key with some entropy 0123456789"), 1024)
	f.Fuzz(func(t *testing.T, key []byte, shards int) {
		if shards < 1 || shards > byzcons.MaxShards {
			t.Skip()
		}
		got := byzcons.ShardOf(key, shards)
		if got < 0 || got >= shards {
			t.Fatalf("ShardOf(%x, %d) = %d out of range", key, shards, got)
		}
		if again := byzcons.ShardOf(key, shards); again != got {
			t.Fatalf("ShardOf not deterministic: %d then %d", got, again)
		}
		if clone := byzcons.ShardOf(append([]byte(nil), key...), shards); clone != got {
			t.Fatalf("ShardOf depends on slice identity: %d vs %d", got, clone)
		}
		if shards == 1 && got != 0 {
			t.Fatalf("S=1 fast path returned %d", got)
		}
	})
}

// TestFleetSingleShardMatchesSession is the compatibility criterion: a
// one-shard fleet decides bit-identically to a plain Session and to the
// simulator backend under gallery adversaries — the fleet layer adds
// routing, not behavior. Shard 0 runs on the configured seed unchanged, so
// the equivalence is exact.
func TestFleetSingleShardMatchesSession(t *testing.T) {
	t.Parallel()
	const n, tf, values = 7, 2, 6
	for _, tc := range acceptanceScenarios(true) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			manual := byzcons.FlushPolicy{MaxValues: -1, MaxBytes: -1, MaxDelay: -1}
			base := byzcons.SessionConfig{
				Config:   byzcons.Config{N: n, T: tf, Seed: 9},
				Scenario: tc.sc,
				Policy:   manual,
			}

			proposals := make([][]byte, values)
			for i := range proposals {
				proposals[i] = bytes.Repeat([]byte{byte(0x41 + i)}, 24)
			}

			// Fleet (S=1) over the networked bus.
			fcfg := base
			fcfg.Transport = byzcons.TransportBus
			fleet, err := byzcons.OpenFleet(byzcons.FleetConfig{SessionConfig: fcfg, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			// Plain Session on the simulator.
			sess, err := byzcons.Open(base)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			var fp, sp []*byzcons.Pending
			for i, v := range proposals {
				p1, err := fleet.ProposeAsync(ctx, []byte(fmt.Sprintf("k%d", i)), v)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := sess.ProposeAsync(ctx, v)
				if err != nil {
					t.Fatal(err)
				}
				fp, sp = append(fp, p1), append(sp, p2)
			}
			if _, err := fleet.Flush(); err != nil {
				t.Fatalf("fleet flush: %v", err)
			}
			if _, err := sess.Flush(); err != nil {
				t.Fatalf("session flush: %v", err)
			}
			for i := range fp {
				fd, sd := fp[i].Wait(ctx), sp[i].Wait(ctx)
				if fd.Err != nil || sd.Err != nil {
					t.Fatalf("decision %d errs: fleet %v, session %v", i, fd.Err, sd.Err)
				}
				if !bytes.Equal(fd.Value, sd.Value) || fd.Batch != sd.Batch || fd.Defaulted != sd.Defaulted {
					t.Errorf("decision %d diverges: fleet %+v, session %+v", i, fd, sd)
				}
			}
			fst, sst := fleet.Stats(), sess.Stats()
			if fst.Aggregate.Bits != sst.Bits || fst.Aggregate.Rounds != sst.Rounds {
				t.Errorf("accounting diverges: fleet bits=%d rounds=%d, session bits=%d rounds=%d",
					fst.Aggregate.Bits, fst.Aggregate.Rounds, sst.Bits, sst.Rounds)
			}
		})
	}
}

// TestFleetSharedMeshTCP is the one-mesh acceptance test: a 4-shard fleet
// over loopback TCP runs at least one policy-triggered cycle per shard —
// cycles interleaving across shards — on exactly one mesh dial with a flat
// n(n-1) connection count, and every decision is bit-identical to the same
// workload on a simulator-backed twin fleet.
func TestFleetSharedMeshTCP(t *testing.T) {
	t.Parallel()
	const n, tf, shards, perShard = 4, 1, 4, 4
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	run := func(tk byzcons.TransportKind) ([]byzcons.Decision, *byzcons.Fleet) {
		f, err := byzcons.OpenFleet(byzcons.FleetConfig{
			SessionConfig: byzcons.SessionConfig{
				Config:      byzcons.Config{N: n, T: tf, Seed: 5},
				Scenario:    byzcons.Scenario{Faulty: []int{1}, Behavior: byzcons.Equivocator{}},
				Transport:   tk,
				BatchValues: perShard,
				Instances:   1,
				// The perShard-th proposal of a shard trips its trigger: one
				// policy-driven cycle per shard, no delay backstop.
				Policy: byzcons.FlushPolicy{MaxValues: perShard, MaxBytes: -1, MaxDelay: -1},
			},
			Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		var pendings []*byzcons.Pending
		for s := 0; s < shards; s++ {
			for i := 0; i < perShard; i++ {
				key := keyForShard(t, shards, s, i)
				val := bytes.Repeat([]byte{byte(0x50 + s), byte(i)}, 10)
				p, err := f.ProposeAsync(ctx, key, val)
				if err != nil {
					t.Fatal(err)
				}
				pendings = append(pendings, p)
			}
		}
		var decisions []byzcons.Decision
		for i, p := range pendings {
			d := p.Wait(ctx)
			if d.Err != nil {
				t.Fatalf("%v decision %d: %v", tk, i, d.Err)
			}
			decisions = append(decisions, d)
		}
		return decisions, f
	}

	tcpDecisions, tcpFleet := run(byzcons.TransportTCP)
	simDecisions, simFleet := run(byzcons.TransportSim)
	defer simFleet.Close()

	// One mesh for all shards: a single dial, connections flat at n(n-1).
	if dials := tcpFleet.MeshDials(); dials != 1 {
		t.Errorf("%d-shard fleet dialed %d meshes, want exactly 1", shards, dials)
	}
	if conns := tcpFleet.WireStats().Conns; conns != int64(n*(n-1)) {
		t.Errorf("connection counter = %d, want %d (one shared mesh)", conns, n*(n-1))
	}
	st := tcpFleet.Stats()
	if st.Aggregate.Cycles < 3 {
		t.Errorf("fleet ran %d cycles, want >= 3 policy-triggered cycles", st.Aggregate.Cycles)
	}
	busyShards := 0
	for _, ps := range st.PerShard {
		if ps.Cycles > 0 {
			busyShards++
		}
	}
	if busyShards < 2 {
		t.Errorf("cycles ran on %d shards, want >= 2 (no cross-shard interleaving)", busyShards)
	}

	// Decisions bit-identical to the simulator-backed twin fleet.
	if len(tcpDecisions) != len(simDecisions) {
		t.Fatalf("decision counts diverge: tcp %d, sim %d", len(tcpDecisions), len(simDecisions))
	}
	for i := range tcpDecisions {
		td, sd := tcpDecisions[i], simDecisions[i]
		if !bytes.Equal(td.Value, sd.Value) || td.Batch != sd.Batch || td.Defaulted != sd.Defaulted {
			t.Errorf("decision %d diverges across backends: tcp %+v, sim %+v", i, td, sd)
		}
	}

	// Shard-tagged reports: every report names a shard that actually ran a
	// cycle, and ≥2 distinct shards appear.
	reports := tcpFleet.Reports()
	if err := tcpFleet.Close(); err != nil {
		t.Fatal(err)
	}
	shardsSeen := map[int]bool{}
	for rep := range reports {
		if rep.Shard < 0 || rep.Shard >= shards {
			t.Errorf("report names shard %d, want [0,%d)", rep.Shard, shards)
		}
		shardsSeen[rep.Shard] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("reports cover %d shards, want >= 2", len(shardsSeen))
	}
}

// TestFleetConfigValidation pins the fleet-specific validation: shard-count
// bounds and the chaos rejection.
func TestFleetConfigValidation(t *testing.T) {
	t.Parallel()
	base := byzcons.SessionConfig{Config: byzcons.Config{N: 4, T: 1}}
	if err := (byzcons.FleetConfig{SessionConfig: base}).Validate(); err != nil {
		t.Errorf("zero Shards must default to 1 and validate: %v", err)
	}
	if err := (byzcons.FleetConfig{SessionConfig: base, Shards: byzcons.MaxShards + 1}).Validate(); err == nil {
		t.Error("Shards above MaxShards must be rejected")
	}
	if err := (byzcons.FleetConfig{SessionConfig: base, Shards: -1}).Validate(); err == nil {
		t.Error("negative Shards must be rejected")
	}
	chaosCfg := base
	chaosCfg.Transport = byzcons.TransportBus
	chaosCfg.Chaos = "7:cut(1,3)@c1"
	if err := (byzcons.FleetConfig{SessionConfig: chaosCfg, Shards: 2}).Validate(); err == nil {
		t.Error("Chaos on a fleet must be rejected")
	}
	// Aggregate observability surfaces exist on a fresh fleet.
	f, err := byzcons.OpenFleet(byzcons.FleetConfig{SessionConfig: base, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumShards() != 2 {
		t.Errorf("NumShards = %d, want 2", f.NumShards())
	}
	if got := f.ShardFor([]byte("user:17")); got != byzcons.ShardOf([]byte("user:17"), 2) {
		t.Errorf("ShardFor diverges from ShardOf: %d", got)
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("WriteMetrics wrote nothing")
	}
}
