package byzcons

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"byzcons/internal/consensus"
	"byzcons/internal/node"
	"byzcons/internal/obs"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
	"byzcons/internal/wire"
)

// TransportKind selects the deployment backend a run executes over.
type TransportKind int

// Available backends.
const (
	// TransportSim is the single-host simulator: payloads move by reference
	// through a shared-memory barrier and the adversary has the paper's
	// global rushing view. The default, and the reference for parity tests.
	TransportSim TransportKind = iota
	// TransportBus runs one networked node per processor over an in-process
	// channel bus: every payload crosses the full wire codec, but no
	// sockets are involved — the fast path for tests and benchmarks.
	TransportBus
	// TransportTCP runs one networked node per processor over a loopback
	// TCP mesh with length-prefixed frames — real I/O end to end.
	TransportTCP
)

// String returns the kind's name.
func (k TransportKind) String() string {
	switch k {
	case TransportSim:
		return "sim"
	case TransportBus:
		return "bus"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// ParseTransportKind converts "sim", "bus" or "tcp" to a kind.
func ParseTransportKind(s string) (TransportKind, error) {
	switch s {
	case "sim", "":
		return TransportSim, nil
	case "bus":
		return TransportBus, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return 0, fmt.Errorf("byzcons: unknown transport %q (want sim, bus or tcp)", s)
	}
}

// factory returns the transport factory behind a networked kind, or nil for
// the simulator.
func (k TransportKind) factory() (transport.Factory, error) {
	return k.factoryFor(transport.RetryPolicy{}, nil)
}

// factoryFor returns the kind's factory with the given peer-channel retry
// policy applied (TCP is the only bundled transport with real connections to
// lose, so it is the only one the policy reaches). A non-nil registry turns
// on the transport's sampled write-latency timing (again TCP-only: the bus
// has no socket writes to time).
func (k TransportKind) factoryFor(retry transport.RetryPolicy, reg *obs.Registry) (transport.Factory, error) {
	switch k {
	case TransportSim:
		return nil, nil
	case TransportBus:
		return transport.BusFactory{}, nil
	case TransportTCP:
		return transport.TCPFactory{Options: transport.TCPOptions{Retry: retry, Obs: reg}}, nil
	default:
		return nil, fmt.Errorf("byzcons: unknown transport kind %d", int(k))
	}
}

// WireStats is the encoded on-wire traffic accounting of a networked run:
// the measured bytes that actually crossed the transport, standing next to
// the protocol-level bit meter (Result.Bits).
type WireStats = transport.Stats

// ClusterResult is the outcome of a networked consensus run.
type ClusterResult struct {
	*Result
	// Transport names the backend the run executed over.
	Transport string
	// Wire is the measured on-wire traffic. Zero for TransportSim, whose
	// payloads never leave the process.
	Wire WireStats
}

// ClusterConsensus runs the paper's Algorithm 1 with one networked node per
// processor over the selected transport: every protocol payload is encoded
// by the wire codec, framed, and carried by real point-to-point channels,
// with a round synchronizer replacing the simulator's global barrier. After
// deciding, the nodes cross-check their decisions over the wire (an
// all-to-all digest exchange): every honest node verifies that at least
// n-t nodes — necessarily including all honest ones — report its own
// decision, failing the run otherwise.
//
// TransportSim executes the same body (including the cross-check round) on
// the simulator, so results are directly comparable across backends: for
// every deterministic adversary in the gallery the decision, generation
// count, diagnosis graph and metered traffic are identical.
func ClusterConsensus(cfg Config, inputs [][]byte, L int, sc Scenario, kind TransportKind) (*ClusterResult, error) {
	if err := cfg.validateInputs(inputs, L); err != nil {
		return nil, err
	}
	par := cfg.consensusParams()
	if cfg.Trace != nil {
		par.Observer = traceObserver(cfg, sc)
	}
	body := func(p *sim.Proc) any {
		out := consensus.Run(p, par, inputs[p.ID], L)
		verifyDecision(p, cfg.N, cfg.T, out)
		return out
	}
	runCfg := sim.RunConfig{N: cfg.N, Faulty: sc.Faulty, Adversary: sc.Behavior, Seed: cfg.Seed}

	factory, err := kind.factory()
	if err != nil {
		return nil, err
	}
	var run *sim.RunResult
	var wireStats WireStats
	if factory == nil {
		run = sim.Run(runCfg, body)
	} else {
		c := node.NewCluster(factory)
		run = c.Run(runCfg, body)
		wireStats = c.WireStats()
		// A one-shot run owns its cluster: tear the persistent mesh down so
		// sockets and reader goroutines do not outlive the result.
		c.Close()
	}
	if run.Err != nil {
		return nil, run.Err
	}
	res, err := buildResult(cfg, sc, run, consensusSummary(cfg.N))
	if err != nil {
		return nil, err
	}
	return &ClusterResult{Result: res, Transport: kind.String(), Wire: wireStats}, nil
}

// verifyDecision is the post-decision cross-check round: each node
// contributes a digest of its full decision — the decided value, the
// defaulted flag and the diagnosis graph, in wire encoding, folded to 8
// bytes so the round costs O(n²) constant-size frames rather than O(n²·L)
// — and every honest node requires at least n-t identical echoes of its
// own. The error-free guarantee makes all honest digests equal, so the
// check can only fail if that guarantee broke (or the deployment
// diverged), turning silent disagreement into a loud run failure. The
// digest is operational scaffolding, not protocol state: a hash collision
// can only mask a failure of a guarantee that is proven never to fail.
// Faulty nodes skip the assertion: their local view is unspecified.
func verifyDecision(p *sim.Proc, n, t int, out *consensus.Output) {
	enc, err := wire.AppendPayload(nil, out.Value)
	if err == nil {
		enc, err = wire.AppendPayload(enc, []bool{out.Defaulted})
	}
	if err == nil {
		enc, err = wire.AppendPayload(enc, out.Graph)
	}
	if err != nil {
		p.Abort(fmt.Errorf("byzcons: encoding decision digest: %w", err))
	}
	h := fnv.New64a()
	h.Write(enc)
	digest := h.Sum(nil)
	vals := p.Sync("verify/out", digest, 0, "verify", nil)
	if p.Faulty {
		return
	}
	matches := 0
	for _, v := range vals {
		if b, ok := v.([]byte); ok && bytes.Equal(b, digest) {
			matches++
		}
	}
	if matches < n-t {
		p.Abort(fmt.Errorf("byzcons: node %d: only %d/%d nodes echo this decision (need %d): error-free guarantee broken or deployment diverged",
			p.ID, matches, n, n-t))
	}
}
