package byzcons_test

import (
	"fmt"
	"testing"

	"byzcons"
)

// BenchmarkTransportThroughput pushes a batched Service workload through the
// two networked backends at n=4 and n=7: 32 client values of 64 bytes per
// iteration, coalesced 8 per consensus instance, 2 instances pipelined per
// cycle. Reported metrics: decided values per second and encoded on-wire
// bytes per value — the in-process bus isolates codec+runtime cost, TCP adds
// real loopback sockets on top, and the gap between them is the price of the
// network stack alone.
func BenchmarkTransportThroughput(b *testing.B) {
	const values, valBytes = 32, 64
	for _, tk := range []byzcons.TransportKind{byzcons.TransportBus, byzcons.TransportTCP} {
		for _, size := range []struct{ n, t int }{{4, 1}, {7, 2}} {
			b.Run(fmt.Sprintf("%v/n=%d", tk, size.n), func(b *testing.B) {
				var wirePerValue float64
				for i := 0; i < b.N; i++ {
					svc, err := byzcons.NewService(byzcons.ServiceConfig{
						Config:      byzcons.Config{N: size.n, T: size.t, Seed: int64(i + 1)},
						Transport:   tk,
						BatchValues: 8,
						Instances:   2,
					})
					if err != nil {
						b.Fatal(err)
					}
					pendings := make([]*byzcons.Pending, values)
					for v := range pendings {
						val := make([]byte, valBytes)
						for j := range val {
							val[j] = byte(v + j)
						}
						if pendings[v], err = svc.Submit(val); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := svc.Flush(); err != nil {
						b.Fatal(err)
					}
					for _, p := range pendings {
						if d := p.Wait(); d.Err != nil {
							b.Fatal(d.Err)
						}
					}
					wirePerValue = float64(svc.WireStats().BytesSent) / values
				}
				b.ReportMetric(float64(values*b.N)/b.Elapsed().Seconds(), "values/sec")
				b.ReportMetric(wirePerValue, "wireB/value")
			})
		}
	}
}
