package byzcons_test

import (
	"context"
	"fmt"
	"testing"

	"byzcons"
)

// BenchmarkTransportThroughput pushes a batched workload through the two
// networked backends at n=4 and n=7: 32 client values of 64 bytes per
// iteration, coalesced 8 per consensus instance, 2 instances pipelined per
// cycle. Each backend runs in two modes:
//
//   - fresh: a new Session per iteration — every iteration pays the full
//     mesh dial (the per-flush TCP handshake tax the persistent mesh
//     removed);
//   - reuse: one Session for the whole benchmark — the mesh is dialed once
//     and every iteration is a pure flush cycle over it.
//
// The gap between fresh and reuse at n=7/tcp is the per-flush connection
// setup cost that the pre-Session API paid on every Flush. Reported metrics:
// decided values per second and encoded on-wire bytes per value.
func BenchmarkTransportThroughput(b *testing.B) {
	const values, valBytes = 32, 64
	ctx := context.Background()

	workload := func(b *testing.B, s *byzcons.Session) {
		b.Helper()
		pendings := make([]*byzcons.Pending, values)
		var err error
		for v := range pendings {
			val := make([]byte, valBytes)
			for j := range val {
				val[j] = byte(v + j)
			}
			if pendings[v], err = s.ProposeAsync(ctx, val); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		for _, p := range pendings {
			if d := p.Wait(ctx); d.Err != nil {
				b.Fatal(d.Err)
			}
		}
	}
	open := func(b *testing.B, tk byzcons.TransportKind, n, t int, seed int64) *byzcons.Session {
		b.Helper()
		s, err := byzcons.Open(byzcons.SessionConfig{
			Config:      byzcons.Config{N: n, T: t, Seed: seed},
			Transport:   tk,
			BatchValues: 8,
			Instances:   2,
			Policy:      byzcons.FlushPolicy{MaxValues: -1, MaxBytes: -1, MaxDelay: -1},
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}

	for _, tk := range []byzcons.TransportKind{byzcons.TransportBus, byzcons.TransportTCP} {
		for _, size := range []struct{ n, t int }{{4, 1}, {7, 2}} {
			b.Run(fmt.Sprintf("%v/n=%d/fresh", tk, size.n), func(b *testing.B) {
				var wirePerValue float64
				for i := 0; i < b.N; i++ {
					s := open(b, tk, size.n, size.t, int64(i+1))
					workload(b, s)
					wirePerValue = float64(s.WireStats().BytesSent) / values
					s.Close()
				}
				b.ReportMetric(float64(values*b.N)/b.Elapsed().Seconds(), "values/sec")
				b.ReportMetric(wirePerValue, "wireB/value")
			})
			b.Run(fmt.Sprintf("%v/n=%d/reuse", tk, size.n), func(b *testing.B) {
				s := open(b, tk, size.n, size.t, 1)
				defer s.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					workload(b, s)
				}
				b.ReportMetric(float64(values*b.N)/b.Elapsed().Seconds(), "values/sec")
				b.ReportMetric(float64(s.WireStats().BytesSent)/float64(values*b.N), "wireB/value")
				if dials := s.MeshDials(); dials != 1 {
					b.Fatalf("reuse mode dialed the mesh %d times", dials)
				}
			})
		}
	}
}
