module byzcons

go 1.24
