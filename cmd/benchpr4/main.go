// Command benchpr4 runs the multi-core benchmark grid and emits
// BENCH_PR8.json, the performance-trajectory record following BENCH_PR3,
// BENCH_PR4 and BENCH_PR7: batched-service throughput (values/s over the bus
// transport, full wire codec) and fault-free consensus latency in pipelined
// rounds, on the axes Window ∈ {1, 2, 4, 8}, n ∈ {4, 7} — now swept across a
// GOMAXPROCS grid (-cpus, default 1,2,4) so the report shows how the
// word-sliced kernels, the core-aware lane pool and the pipelined fibers
// scale with cores. Every row records the gomaxprocs it ran under and the
// report records the host's NumCPU, so rows from differently-provisioned
// hosts are never compared blind; the coding-core micro benchmarks
// (matrix-form and word-sliced hot paths against the scalar reference) run
// once at the process's native width.
//
//	go run ./cmd/benchpr4 -out BENCH_PR8.json
//	go run ./cmd/benchpr4 -smoke -cpus 1,2   # CI: window + core-scaling gates
//
// With -shards the command instead runs the fleet shard grid and emits
// BENCH_PR10.json: the same keyed ingest workload served by a Fleet at each
// shard count, recording aggregate values/s, per-shard cycle statistics and
// the measured peak number of concurrently-running flush cycles (two shards'
// cycle windows overlapping in wall-clock is the direct evidence that shards
// flush concurrently over the one mesh). Shard scaling is a cores story:
// every row records its gomaxprocs and the report the host's NumCPU, and the
// -smoke scaling gate only enforces a speedup when the host has cores to
// scale onto:
//
//	go run ./cmd/benchpr4 -shards 1,2,4,8 -out BENCH_PR10.json
//	go run ./cmd/benchpr4 -smoke -shards 1,4   # CI: print-only on 1 CPU
//
// Round and bit figures are deterministic (fixed seeds, fault-free);
// values/s depends on the host. Each throughput point runs -reps times and
// reports the best run, damping scheduler and neighbor noise on shared
// hosts. Regenerate after changes to the coding core, the pipeline, the
// engine or the transports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"byzcons"
	"byzcons/internal/gf"
	"byzcons/internal/rs"
)

// Row is one (gomaxprocs, n, window) grid point.
type Row struct {
	N      int `json:"n"`
	T      int `json:"t"`
	Window int `json:"window"`
	// GoMaxProcs is the GOMAXPROCS this row was measured under — the -cpus
	// grid dimension. A value above the report's numCPU means the row ran
	// oversubscribed and measures scheduling overhead, not speedup.
	GoMaxProcs int `json:"gomaxprocs"`

	// Service throughput: Values values of ValueBytes bytes each, batched
	// over the bus transport; best of Reps runs.
	ValuesPerSec float64 `json:"valuesPerSec"`
	ServiceBits  int64   `json:"serviceBits"`
	// ServicePipelinedRounds is the service run's latency in rounds (see
	// cmd/benchpr3); ServiceRounds counts every executed barrier.
	ServicePipelinedRounds int64 `json:"servicePipelinedRounds"`
	ServiceRounds          int64 `json:"serviceRounds"`

	// Consensus latency: one fault-free L-bit consensus on the simulator.
	ConsensusPipelinedRounds int64 `json:"consensusPipelinedRounds"`
	ConsensusGenerations     int   `json:"consensusGenerations"`

	// Per-phase timing of the best run's flush, aggregated across its
	// cycles (FlushReport.Timing): total wall-clock, the
	// match/broadcast/RS/diagnosis partition of the consensus work, and
	// exact decision-latency percentiles over the run's values.
	CycleMs       float64 `json:"cycleMs"`
	MatchMs       float64 `json:"matchMs"`
	BroadcastMs   float64 `json:"broadcastMs"`
	RSMs          float64 `json:"rsMs"`
	DiagnosisMs   float64 `json:"diagnosisMs"`
	DecisionP50Ms float64 `json:"decisionP50Ms"`
	DecisionP99Ms float64 `json:"decisionP99Ms"`
}

// ms renders a duration as float milliseconds for the JSON rows.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Micro records the coding-core micro-benchmarks at the acceptance shape
// (n=7, k=3, M=512 lanes, GF(2^8)): the matrix-form hot paths next to the
// scalar log/exp reference measured in the same process.
type Micro struct {
	Lanes               int     `json:"lanes"`
	EncodeNsOp          float64 `json:"encodeNsOp"`
	DecodeNsOp          float64 `json:"decodeNsOp"`
	ConsistentNsOp      float64 `json:"consistentNsOp"`
	ScalarEncodeNsOp    float64 `json:"scalarEncodeNsOp"`
	ScalarDecodeNsOp    float64 `json:"scalarDecodeNsOp"`
	EncodeSpeedup       float64 `json:"encodeSpeedup"`
	DecodeSpeedup       float64 `json:"decodeSpeedup"`
	ConsistentSpeedup   float64 `json:"consistentSpeedup"`
	EncodeAllocsPerOp   int64   `json:"encodeAllocsPerOp"`
	DecodeAllocsPerOp   int64   `json:"decodeAllocsPerOp"`
	ConsistAllocsPerOp  int64   `json:"consistentAllocsPerOp"`
	MulSliceXorMBPerSec float64 `json:"mulSliceXorMBPerSec"`
}

// Report is the BENCH_PR8.json document.
type Report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"goVersion,omitempty"`
	// NumCPU is the host's logical CPU count; grid points with gomaxprocs
	// beyond it ran oversubscribed.
	NumCPU     int    `json:"numCPU"`
	Cpus       []int  `json:"cpus"`
	Transport  string `json:"transport"`
	Values     int    `json:"values"`
	ValueBytes int    `json:"valueBytes"`
	Batch      int    `json:"batchValues"`
	Instances  int    `json:"instances"`
	L          int    `json:"consensusL"`
	Reps       int    `json:"reps"`
	Rows       []Row  `json:"rows"`
	// Micro is measured once, at the process's native GOMAXPROCS: the
	// acceptance-shape stripes sit below the lane pool's fan-out threshold,
	// so the kernels are single-core by construction and re-measuring them
	// per grid point would only add noise.
	Micro Micro `json:"micro"`
}

const (
	values     = 64
	valueBytes = 64
	batch      = 32
	instances  = 2
	consensusL = 65536
)

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output path")
	reps := flag.Int("reps", 5, "throughput runs per grid point (best is reported)")
	cpusFlag := flag.String("cpus", "1,2,4", "comma-separated GOMAXPROCS values to sweep")
	shardsFlag := flag.String("shards", "", "comma-separated fleet shard counts; when set, run the shard grid (BENCH_PR10) instead of the window/core grid")
	smoke := flag.Bool("smoke", false, "CI smoke: assert Window=4 values/s >= 0.9x Window=1 on the bus at n=4 and n=7, plus the -cpus core-scaling gate (or, with -shards, the fleet shard-scaling gate), print, and exit")
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchpr4:", err)
		os.Exit(1)
	}
	if *shardsFlag != "" {
		grid, err := parseCpus(*shardsFlag)
		if err != nil {
			fail(fmt.Errorf("-shards: %w", err))
		}
		if *smoke {
			if err := runShardSmoke(*reps, grid); err != nil {
				fail(err)
			}
			return
		}
		if err := runShardGrid(*out, *reps, grid); err != nil {
			fail(err)
		}
		return
	}
	cpus, err := parseCpus(*cpusFlag)
	if err != nil {
		fail(err)
	}
	if *smoke {
		if err := runSmoke(*reps, cpus); err != nil {
			fail(err)
		}
		return
	}
	if err := run(*out, *reps, cpus); err != nil {
		fail(err)
	}
}

// parseCpus decodes the -cpus grid ("1,2,4") into GOMAXPROCS values.
func parseCpus(s string) ([]int, error) {
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -cpus entry %q: want positive integers", part)
		}
		cpus = append(cpus, c)
	}
	if len(cpus) == 0 {
		return nil, fmt.Errorf("-cpus is empty")
	}
	return cpus, nil
}

// serviceOnce runs the throughput workload once, returning values/s and the
// flush's timing breakdown, and filling the deterministic row fields.
func serviceOnce(row *Row) (float64, byzcons.FlushTiming, error) {
	svc, err := byzcons.NewService(byzcons.ServiceConfig{
		Config:      byzcons.Config{N: row.N, T: row.T, Window: row.Window, Seed: 1},
		Transport:   byzcons.TransportBus,
		BatchValues: batch,
		Instances:   instances,
	})
	if err != nil {
		return 0, byzcons.FlushTiming{}, err
	}
	defer svc.Close()
	pendings := make([]*byzcons.Pending, values)
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	start := time.Now()
	for i := range pendings {
		if pendings[i], err = svc.Submit(val); err != nil {
			return 0, byzcons.FlushTiming{}, err
		}
	}
	report, err := svc.Flush()
	if err != nil {
		return 0, byzcons.FlushTiming{}, err
	}
	for _, p := range pendings {
		if d := p.Wait(context.Background()); d.Err != nil {
			return 0, byzcons.FlushTiming{}, d.Err
		}
	}
	elapsed := time.Since(start)
	st := svc.Stats()
	row.ServiceBits = st.Bits
	row.ServiceRounds = st.Rounds
	row.ServicePipelinedRounds = 0
	perCycle := map[int]int64{}
	for _, b := range report.Batches {
		if b.PipelinedRounds > perCycle[b.Cycle] {
			perCycle[b.Cycle] = b.PipelinedRounds
		}
	}
	for _, r := range perCycle {
		row.ServicePipelinedRounds += r
	}
	return float64(values) / elapsed.Seconds(), report.Timing, nil
}

// serviceBest repeats the workload and keeps the best run, recording that
// run's timing breakdown alongside its throughput.
func serviceBest(row *Row, reps int) error {
	for i := 0; i < reps; i++ {
		vps, tm, err := serviceOnce(row)
		if err != nil {
			return err
		}
		if vps > row.ValuesPerSec {
			row.ValuesPerSec = vps
			row.CycleMs = ms(tm.Cycle)
			row.MatchMs = ms(tm.Match)
			row.BroadcastMs = ms(tm.Broadcast)
			row.RSMs = ms(tm.RS)
			row.DiagnosisMs = ms(tm.Diagnosis)
			row.DecisionP50Ms = ms(tm.DecisionP50)
			row.DecisionP99Ms = ms(tm.DecisionP99)
		}
	}
	return nil
}

// consensusRun measures one fault-free consensus latency at one grid point.
func consensusRun(row *Row) error {
	val := make([]byte, consensusL/8)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	inputs := make([][]byte, row.N)
	for i := range inputs {
		inputs[i] = val
	}
	cfg := byzcons.Config{N: row.N, T: row.T, Window: row.Window, Seed: 1}
	res, err := byzcons.Consensus(cfg, inputs, consensusL, byzcons.Scenario{})
	if err != nil {
		return err
	}
	row.ConsensusPipelinedRounds = res.PipelinedRounds
	row.ConsensusGenerations = res.Generations
	return nil
}

// microBench measures the coding core at the acceptance shape.
func microBench() (Micro, error) {
	m := Micro{Lanes: 512}
	field, err := gf.New(8)
	if err != nil {
		return m, err
	}
	code, err := rs.New(field, 7, 3)
	if err != nil {
		return m, err
	}
	ic, err := rs.NewInterleaved(code, m.Lanes)
	if err != nil {
		return m, err
	}
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(i * 37 % 251)
	}
	stripe := ic.EncodeStripe(data, make([]gf.Sym, 7*m.Lanes))
	words := make([][]gf.Sym, 7)
	for j := range words {
		words[j] = stripe[j*m.Lanes : (j+1)*m.Lanes]
	}
	decPos := []int{0, 2, 3, 5, 6}
	decWords := [][]gf.Sym{words[0], words[2], words[3], words[5], words[6]}
	conPos := []int{0, 1, 2, 3, 5, 6}
	conWords := [][]gf.Sym{words[0], words[1], words[2], words[3], words[5], words[6]}
	// Unsorted positions force the scalar log/exp reference path — the same
	// decode, measured against the same inputs.
	scalarPos := []int{6, 0, 3, 5, 2}
	scalarWords := [][]gf.Sym{words[6], words[0], words[3], words[5], words[2]}
	out := make([]gf.Sym, ic.DataSyms())

	enc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ic.EncodeStripe(data, stripe)
		}
	})
	dec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ic.DecodeInto(decPos, decWords, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	con := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !ic.Consistent(conPos, conWords) {
				b.Fatal("inconsistent")
			}
		}
	})
	sdec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ic.DecodeInto(scalarPos, scalarWords, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Scalar encode reference: the per-lane Horner loop the matrix form
	// replaced, reproduced verbatim over the public scalar API.
	cw := make([]gf.Sym, 7)
	senc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for l := 0; l < m.Lanes; l++ {
				code.EncodeInto(data[l*3:(l+1)*3], cw)
				for j := 0; j < 7; j++ {
					stripe[j*m.Lanes+l] = cw[j]
				}
			}
		}
	})
	tab := field.TabFull(0x35)
	src := make([]gf.Sym, 4096)
	dst := make([]gf.Sym, 4096)
	for i := range src {
		src[i] = gf.Sym(i % 256)
	}
	mx := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.MulSliceXor(src, dst)
		}
	})

	m.EncodeNsOp = float64(enc.NsPerOp())
	m.DecodeNsOp = float64(dec.NsPerOp())
	m.ConsistentNsOp = float64(con.NsPerOp())
	m.ScalarEncodeNsOp = float64(senc.NsPerOp())
	m.ScalarDecodeNsOp = float64(sdec.NsPerOp())
	m.EncodeSpeedup = m.ScalarEncodeNsOp / m.EncodeNsOp
	m.DecodeSpeedup = m.ScalarDecodeNsOp / m.DecodeNsOp
	m.ConsistentSpeedup = m.ScalarDecodeNsOp / m.ConsistentNsOp
	m.EncodeAllocsPerOp = enc.AllocsPerOp()
	m.DecodeAllocsPerOp = dec.AllocsPerOp()
	m.ConsistAllocsPerOp = con.AllocsPerOp()
	m.MulSliceXorMBPerSec = 4096.0 / float64(mx.NsPerOp()) * 1e3
	return m, nil
}

func run(out string, reps int, cpus []int) error {
	rep := &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Cpus:       cpus,
		Transport:  byzcons.TransportBus.String(),
		Values:     values,
		ValueBytes: valueBytes,
		Batch:      batch,
		Instances:  instances,
		L:          consensusL,
		Reps:       reps,
	}
	native := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(native)
	for _, c := range cpus {
		runtime.GOMAXPROCS(c)
		for _, nt := range []struct{ n, t int }{{4, 1}, {7, 2}} {
			rows := make([]Row, 0, 4)
			for _, window := range []int{1, 2, 4, 8} {
				rows = append(rows, Row{N: nt.n, T: nt.t, Window: window, GoMaxProcs: c})
			}
			// Interleave the repetitions across the windows so every row's best
			// run samples the same stretch of host conditions — back-to-back
			// per-row loops would let load drift bias the window comparison.
			for r := 0; r < reps; r++ {
				for i := range rows {
					if err := serviceBest(&rows[i], 1); err != nil {
						return err
					}
				}
			}
			for i := range rows {
				if err := consensusRun(&rows[i]); err != nil {
					return err
				}
				rep.Rows = append(rep.Rows, rows[i])
				fmt.Printf("cpus=%d n=%d window=%d: %.0f values/s (best of %d), service pipelined rounds %d (all rounds %d), consensus pipelined rounds %d\n",
					c, nt.n, rows[i].Window, rows[i].ValuesPerSec, reps, rows[i].ServicePipelinedRounds, rows[i].ServiceRounds, rows[i].ConsensusPipelinedRounds)
			}
		}
	}
	runtime.GOMAXPROCS(native)
	micro, err := microBench()
	if err != nil {
		return err
	}
	rep.Micro = micro
	fmt.Printf("micro (M=%d): encode %.0fns (%.1fx), decode %.0fns (%.1fx), consistent %.0fns (%.1fx), MulSliceXor %.0f MB/s\n",
		micro.Lanes, micro.EncodeNsOp, micro.EncodeSpeedup, micro.DecodeNsOp, micro.DecodeSpeedup,
		micro.ConsistentNsOp, micro.ConsistentSpeedup, micro.MulSliceXorMBPerSec)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// runSmoke asserts two throughput invariants on the bus. First, the
// pipelined-window invariant the coding-core PR restored: Window=4 must not
// lose wall-clock against Window=1 (a 10% grace absorbs shared-runner noise
// in CI). Second, the core-scaling gate of the multi-core PR: with at least
// two -cpus values, throughput at the widest GOMAXPROCS must beat the
// narrowest by 1.2x — the parallel fibers, lane pool and write path must
// actually buy something when cores appear. Each failing gate gets one retry
// with fresh measurements before the run is declared broken — interleaved
// best-of-k sampling still loses to a single long scheduler stall — and on
// single-CPU hosts, where neither gate has parallelism to win and the
// comparison is pure noise, ratios are printed but not enforced.
func runSmoke(reps int, cpus []int) error {
	enforce := runtime.NumCPU() >= 2
	if !enforce {
		fmt.Println("smoke: single-CPU host, printing throughput without enforcing the ratios")
	}
	for _, nt := range []struct{ n, t int }{{4, 1}, {7, 2}} {
		ok, err := smokePoint(nt.n, nt.t, reps)
		if err != nil {
			return err
		}
		if ok || !enforce {
			continue
		}
		// A transient host stall fails once; a real regression fails twice.
		fmt.Printf("smoke n=%d: below threshold, retrying once\n", nt.n)
		if ok, err = smokePoint(nt.n, nt.t, reps); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("n=%d: Window=4 throughput below 0.9x Window=1 in both measurements", nt.n)
		}
	}
	if len(cpus) < 2 {
		return nil
	}
	lo, hi := cpus[0], cpus[len(cpus)-1]
	for _, c := range cpus {
		lo, hi = min(lo, c), max(hi, c)
	}
	if lo == hi {
		return nil
	}
	ok, err := corePoint(lo, hi, reps)
	if err != nil {
		return err
	}
	if ok || !enforce {
		return nil
	}
	fmt.Printf("smoke cores: below threshold, retrying once\n")
	if ok, err = corePoint(lo, hi, reps); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("throughput at GOMAXPROCS=%d below 1.2x GOMAXPROCS=%d in both measurements", hi, lo)
	}
	return nil
}

// corePoint measures the core-scaling gate's workload — n=7, Window=4, the
// point with the most concurrent fibers — at the narrow and wide GOMAXPROCS,
// interleaving the repetitions like the grid does, and reports whether the
// wide setting scaled by at least 1.2x.
func corePoint(lo, hi, reps int) (bool, error) {
	native := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(native)
	narrow := Row{N: 7, T: 2, Window: 4, GoMaxProcs: lo}
	wide := Row{N: 7, T: 2, Window: 4, GoMaxProcs: hi}
	for r := 0; r < reps; r++ {
		runtime.GOMAXPROCS(lo)
		if err := serviceBest(&narrow, 1); err != nil {
			return false, err
		}
		runtime.GOMAXPROCS(hi)
		if err := serviceBest(&wide, 1); err != nil {
			return false, err
		}
	}
	fmt.Printf("smoke cores: GOMAXPROCS=%d %.0f values/s, GOMAXPROCS=%d %.0f values/s (%.2fx)\n",
		lo, narrow.ValuesPerSec, hi, wide.ValuesPerSec, wide.ValuesPerSec/narrow.ValuesPerSec)
	return wide.ValuesPerSec >= 1.2*narrow.ValuesPerSec, nil
}

// smokePoint measures one (n, t) point — interleaved best-of-reps for
// Window=1 and Window=4, see run() — and reports whether the pipelined
// window held the throughput bar.
func smokePoint(n, t, reps int) (bool, error) {
	w1 := Row{N: n, T: t, Window: 1}
	w4 := Row{N: n, T: t, Window: 4}
	for r := 0; r < reps; r++ {
		if err := serviceBest(&w1, 1); err != nil {
			return false, err
		}
		if err := serviceBest(&w4, 1); err != nil {
			return false, err
		}
	}
	fmt.Printf("smoke n=%d: window=1 %.0f values/s, window=4 %.0f values/s\n", n, w1.ValuesPerSec, w4.ValuesPerSec)
	return w4.ValuesPerSec >= 0.9*w1.ValuesPerSec, nil
}

// The fleet shard grid's workload shape: enough values that every shard
// count still triggers multiple policy-driven cycles (at S=8 each shard
// draws ~16 of the 128 keys, two full cycles of 8).
const (
	shardValues    = 128
	shardBatch     = 4
	shardInstances = 2
)

// ShardStats is one shard's share of a fleet grid row.
type ShardStats struct {
	Shard   int   `json:"shard"`
	Decided int   `json:"decided"`
	Batches int   `json:"batches"`
	Cycles  int   `json:"cycles"`
	Bits    int64 `json:"bits"`
}

// ShardRow is one shard-count grid point of the fleet benchmark.
type ShardRow struct {
	Shards     int `json:"shards"`
	N          int `json:"n"`
	T          int `json:"t"`
	GoMaxProcs int `json:"gomaxprocs"`
	// AggValuesPerSec is the fleet-wide throughput of the best run: all
	// values proposed by key, drained across every shard.
	AggValuesPerSec float64 `json:"aggValuesPerSec"`
	// MaxConcurrentFlushes is the peak number of flush cycles whose
	// wall-clock windows overlapped during the best run. One shard's cycles
	// never overlap (the engine serializes its own flushes), so any value
	// >= 2 is direct evidence of distinct shards flushing concurrently over
	// the shared mesh.
	MaxConcurrentFlushes int          `json:"maxConcurrentFlushes"`
	TotalBits            int64        `json:"totalBits"`
	TotalCycles          int          `json:"totalCycles"`
	PerShard             []ShardStats `json:"perShard"`
}

// ShardGridReport is the BENCH_PR10.json document.
type ShardGridReport struct {
	Generated string `json:"generated"`
	GoVersion string `json:"goVersion,omitempty"`
	// NumCPU and GoMaxProcs qualify every throughput figure: shard scaling
	// is a cores story, and rows measured on a single-CPU host record
	// concurrency (overlapping cycles) without a speedup to show for it.
	NumCPU      int        `json:"numCPU"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Transport   string     `json:"transport"`
	Values      int        `json:"values"`
	ValueBytes  int        `json:"valueBytes"`
	Batch       int        `json:"batchValues"`
	Instances   int        `json:"instances"`
	Reps        int        `json:"reps"`
	ShardCounts []int      `json:"shardCounts"`
	Rows        []ShardRow `json:"rows"`
}

// flushWindow is one flush cycle's wall-clock extent, reconstructed from the
// synchronous OnFlush hook (fires at cycle end, reports the cycle duration).
type flushWindow struct{ start, end time.Time }

// maxOverlap sweeps the cycle windows and returns the peak number running at
// any instant. Ends sort before starts at equal times, so touching windows
// don't count as overlapping.
func maxOverlap(ws []flushWindow) int {
	type ev struct {
		at    time.Time
		delta int
	}
	evs := make([]ev, 0, 2*len(ws))
	for _, w := range ws {
		evs = append(evs, ev{w.start, +1}, ev{w.end, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at.Equal(evs[j].at) {
			return evs[i].delta < evs[j].delta
		}
		return evs[i].at.Before(evs[j].at)
	})
	peak, cur := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// shardOnce runs the keyed fleet workload once at one shard count, returning
// the aggregate throughput and filling the row's stats if it is the best run.
func shardOnce(row *ShardRow) (float64, error) {
	var (
		mu      sync.Mutex
		windows []flushWindow
	)
	f, err := byzcons.OpenFleet(byzcons.FleetConfig{
		SessionConfig: byzcons.SessionConfig{
			Config:      byzcons.Config{N: row.N, T: row.T, Seed: 1},
			Transport:   byzcons.TransportBus,
			BatchValues: shardBatch,
			Instances:   shardInstances,
			Policy:      byzcons.FlushPolicy{MaxValues: shardBatch * shardInstances, MaxBytes: -1, MaxDelay: -1},
			OnFlush: func(rep byzcons.FlushReport) {
				end := time.Now()
				mu.Lock()
				windows = append(windows, flushWindow{end.Add(-rep.Timing.Cycle), end})
				mu.Unlock()
			},
		},
		Shards: row.Shards,
	})
	if err != nil {
		return 0, err
	}
	defer f.Close()

	ctx := context.Background()
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	pendings := make([]*byzcons.Pending, shardValues)
	start := time.Now()
	for i := range pendings {
		key := []byte(fmt.Sprintf("key-%d", i))
		if pendings[i], err = f.ProposeAsync(ctx, key, val); err != nil {
			return 0, err
		}
	}
	if err := f.Drain(ctx); err != nil {
		return 0, err
	}
	for i, p := range pendings {
		if d := p.Wait(ctx); d.Err != nil {
			return 0, fmt.Errorf("value %d: %w", i, d.Err)
		}
	}
	elapsed := time.Since(start)

	vps := float64(shardValues) / elapsed.Seconds()
	if vps > row.AggValuesPerSec {
		row.AggValuesPerSec = vps
		mu.Lock()
		row.MaxConcurrentFlushes = maxOverlap(windows)
		mu.Unlock()
		st := f.Stats()
		row.TotalBits = st.Aggregate.Bits
		row.TotalCycles = st.Aggregate.Cycles
		row.PerShard = row.PerShard[:0]
		for s, ss := range st.PerShard {
			row.PerShard = append(row.PerShard, ShardStats{
				Shard: s, Decided: ss.Decided, Batches: ss.Batches, Cycles: ss.Cycles, Bits: ss.Bits,
			})
		}
	}
	return vps, nil
}

// shardBest repeats the fleet workload and keeps the best run's stats.
func shardBest(row *ShardRow, reps int) error {
	for i := 0; i < reps; i++ {
		if _, err := shardOnce(row); err != nil {
			return err
		}
	}
	return nil
}

// runShardGrid measures the fleet at every shard count and writes the
// BENCH_PR10.json document.
func runShardGrid(out string, reps int, grid []int) error {
	rep := &ShardGridReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Transport:   byzcons.TransportBus.String(),
		Values:      shardValues,
		ValueBytes:  valueBytes,
		Batch:       shardBatch,
		Instances:   shardInstances,
		Reps:        reps,
		ShardCounts: grid,
	}
	for _, s := range grid {
		row := ShardRow{Shards: s, N: 4, T: 1, GoMaxProcs: runtime.GOMAXPROCS(0)}
		if err := shardBest(&row, reps); err != nil {
			return fmt.Errorf("shards=%d: %w", s, err)
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("shards=%d n=%d: %.0f values/s aggregate (best of %d), %d cycles, peak %d concurrent flushes\n",
			s, row.N, row.AggValuesPerSec, reps, row.TotalCycles, row.MaxConcurrentFlushes)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// runShardSmoke is the CI gate for the fleet: at the widest shard count the
// fleet must still decide every value (correctness always enforced), and on
// a host with at least two CPUs aggregate throughput must scale to 1.2x the
// single-shard figure — on one CPU the shards time-slice a single core, so
// the ratio is printed but not enforced, exactly like the core-scaling gate.
func runShardSmoke(reps int, grid []int) error {
	lo, hi := grid[0], grid[0]
	for _, s := range grid {
		lo, hi = min(lo, s), max(hi, s)
	}
	enforce := runtime.NumCPU() >= 2 && lo < hi
	if !enforce {
		fmt.Println("smoke shards: single-CPU host or degenerate grid, printing throughput without enforcing the ratio")
	}
	point := func() (bool, error) {
		narrow := ShardRow{Shards: lo, N: 4, T: 1, GoMaxProcs: runtime.GOMAXPROCS(0)}
		wide := ShardRow{Shards: hi, N: 4, T: 1, GoMaxProcs: runtime.GOMAXPROCS(0)}
		for r := 0; r < reps; r++ {
			if err := shardBest(&narrow, 1); err != nil {
				return false, err
			}
			if err := shardBest(&wide, 1); err != nil {
				return false, err
			}
		}
		fmt.Printf("smoke shards: S=%d %.0f values/s, S=%d %.0f values/s (%.2fx), peak %d concurrent flushes at S=%d\n",
			lo, narrow.AggValuesPerSec, hi, wide.AggValuesPerSec,
			wide.AggValuesPerSec/narrow.AggValuesPerSec, wide.MaxConcurrentFlushes, hi)
		return wide.AggValuesPerSec >= 1.2*narrow.AggValuesPerSec, nil
	}
	ok, err := point()
	if err != nil {
		return err
	}
	if ok || !enforce {
		return nil
	}
	fmt.Printf("smoke shards: below threshold, retrying once\n")
	if ok, err = point(); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("aggregate throughput at %d shards below 1.2x %d shard(s) in both measurements", hi, lo)
	}
	return nil
}
