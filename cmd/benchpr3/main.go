// Command benchpr3 runs the speculative-pipeline benchmark grid and emits
// BENCH_PR3.json, the repo's performance-trajectory record for the windowed
// generation pipeline: batched-service throughput (values/s over the bus
// transport, full wire codec) and fault-free consensus latency in pipelined
// rounds, at Window ∈ {1, 2, 4, 8} and n ∈ {4, 7}.
//
//	go run ./cmd/benchpr3 -out BENCH_PR3.json
//
// Round and bit figures are deterministic (fixed seeds, fault-free);
// values/s depends on the host. Regenerate after changes to the pipeline,
// the engine or the transports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"byzcons"
)

// Row is one (n, window) grid point.
type Row struct {
	N      int `json:"n"`
	T      int `json:"t"`
	Window int `json:"window"`

	// Service throughput: Values values of ValueBytes bytes each, batched
	// over the bus transport.
	ValuesPerSec float64 `json:"valuesPerSec"`
	ServiceBits  int64   `json:"serviceBits"`
	// ServicePipelinedRounds is the service run's latency in rounds:
	// within a flush cycle the instances pipeline concurrently (max), and
	// within each instance the generations pipeline through the window, so
	// this is the sum over cycles of the per-cycle maximum of the batches'
	// generation-pipeline critical paths. ServiceRounds counts every
	// executed barrier (including any squashed speculation — zero here:
	// the workload is fault-free).
	ServicePipelinedRounds int64 `json:"servicePipelinedRounds"`
	ServiceRounds          int64 `json:"serviceRounds"`

	// Consensus latency: one fault-free L-bit consensus on the simulator.
	ConsensusPipelinedRounds int64 `json:"consensusPipelinedRounds"`
	ConsensusGenerations     int   `json:"consensusGenerations"`
}

// Report is the BENCH_PR3.json document.
type Report struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"goVersion,omitempty"`
	Transport  string `json:"transport"`
	Values     int    `json:"values"`
	ValueBytes int    `json:"valueBytes"`
	Batch      int    `json:"batchValues"`
	Instances  int    `json:"instances"`
	L          int    `json:"consensusL"`
	Rows       []Row  `json:"rows"`
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchpr3:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	const (
		values     = 64
		valueBytes = 64
		batch      = 32
		instances  = 2
		L          = 65536
	)
	rep := &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Transport:  byzcons.TransportBus.String(),
		Values:     values,
		ValueBytes: valueBytes,
		Batch:      batch,
		Instances:  instances,
		L:          L,
	}

	for _, nt := range []struct{ n, t int }{{4, 1}, {7, 2}} {
		for _, window := range []int{1, 2, 4, 8} {
			row := Row{N: nt.n, T: nt.t, Window: window}
			if err := serviceRun(&row, values, valueBytes, batch, instances); err != nil {
				return err
			}
			if err := consensusRun(&row, L); err != nil {
				return err
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("n=%d window=%d: %.0f values/s, service pipelined rounds %d (all rounds %d), consensus pipelined rounds %d\n",
				nt.n, window, row.ValuesPerSec, row.ServicePipelinedRounds, row.ServiceRounds, row.ConsensusPipelinedRounds)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// serviceRun measures the batched service at one grid point.
func serviceRun(row *Row, values, valueBytes, batch, instances int) error {
	svc, err := byzcons.NewService(byzcons.ServiceConfig{
		Config:      byzcons.Config{N: row.N, T: row.T, Window: row.Window, Seed: 1},
		Transport:   byzcons.TransportBus,
		BatchValues: batch,
		Instances:   instances,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	pendings := make([]*byzcons.Pending, values)
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	start := time.Now()
	for i := range pendings {
		if pendings[i], err = svc.Submit(val); err != nil {
			return err
		}
	}
	report, err := svc.Flush()
	if err != nil {
		return err
	}
	for _, p := range pendings {
		if d := p.Wait(context.Background()); d.Err != nil {
			return d.Err
		}
	}
	elapsed := time.Since(start)
	row.ValuesPerSec = float64(values) / elapsed.Seconds()
	st := svc.Stats()
	row.ServiceBits = st.Bits
	row.ServiceRounds = st.Rounds
	perCycle := map[int]int64{}
	for _, b := range report.Batches {
		if b.PipelinedRounds > perCycle[b.Cycle] {
			perCycle[b.Cycle] = b.PipelinedRounds
		}
	}
	for _, r := range perCycle {
		row.ServicePipelinedRounds += r
	}
	return nil
}

// consensusRun measures one fault-free consensus latency at one grid point.
func consensusRun(row *Row, L int) error {
	val := make([]byte, L/8)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	inputs := make([][]byte, row.N)
	for i := range inputs {
		inputs[i] = val
	}
	cfg := byzcons.Config{N: row.N, T: row.T, Window: row.Window, Seed: 1}
	res, err := byzcons.Consensus(cfg, inputs, L, byzcons.Scenario{})
	if err != nil {
		return err
	}
	row.ConsensusPipelinedRounds = res.PipelinedRounds
	row.ConsensusGenerations = res.Generations
	return nil
}
