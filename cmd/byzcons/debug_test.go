package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"byzcons"
)

// TestDebugServerEndpoints: /metrics serves the text exposition, /events the
// trace ring as JSONL, and the expvar and pprof index pages answer.
func TestDebugServerEndpoints(t *testing.T) {
	s, err := byzcons.Open(byzcons.SessionConfig{
		Config:    byzcons.Config{N: 4, T: 1, Seed: 3},
		Policy:    byzcons.FlushPolicy{MaxValues: -1, MaxBytes: -1, MaxDelay: -1},
		TraceRing: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := s.ProposeAsync(ctx, []byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	srv, addr, err := startDebugServer("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"engine_decided 4", "engine_cycle_ns_count", "consensus_phase_broadcast_ns"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	events := get("/events")
	if !strings.Contains(events, `"cat":"cycle"`) || !strings.Contains(events, `"cat":"phase"`) {
		t.Errorf("/events missing cycle/phase spans:\n%s", events)
	}
	if !strings.Contains(get("/debug/vars"), "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

// TestServeTraceFileAndTracefmt: serve writes a JSONL trace, and tracefmt
// renders it as per-cycle span trees.
func TestServeTraceFileAndTracefmt(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := serve(&buf, byzcons.Config{N: 4, T: 1, Seed: 2}, byzcons.Scenario{}, byzcons.TransportSim,
		byzcons.PeerRetry{}, serveOpts{
			values: 8, valBytes: 24, batch: 4, instances: 2, ingest: 2,
			maxDelay: byzcons.DefaultMaxDelay, traceFile: traceFile,
		})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	if err := tracefmt(&out, f); err != nil {
		t.Fatal(err)
	}
	rendered := out.String()
	if !strings.Contains(rendered, "cycle 0  flush") {
		t.Errorf("tracefmt missing cycle span tree:\n%s", rendered)
	}
	for _, phase := range []string{"broadcast", "rs"} {
		if !strings.Contains(rendered, phase) {
			t.Errorf("tracefmt missing %s phase span:\n%s", phase, rendered)
		}
	}
	if !strings.Contains(rendered, "flush/trigger") {
		t.Errorf("tracefmt missing flush trigger event:\n%s", rendered)
	}
}

// TestTracefmtRejectsGarbage: a non-JSON line fails with its line number.
func TestTracefmtRejectsGarbage(t *testing.T) {
	err := tracefmt(io.Discard, strings.NewReader("{\"cat\":\"cycle\",\"name\":\"flush\",\"ts\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("garbage line accepted: %v", err)
	}
}
