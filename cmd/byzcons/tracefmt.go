package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"byzcons"
)

// tracefmt pretty-prints a protocol trace captured as JSONL (-tracefile or
// the /events debug page): one span tree per flush cycle — the cycle span as
// the root, its phase and squash events indented beneath it with offsets
// from the cycle start — and the remaining events (flush triggers, peer
// lifecycle) chronologically between the trees.
func tracefmt(w io.Writer, r io.Reader) error {
	var events []byzcons.TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev byzcons.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Fprintln(w, "tracefmt: no events")
		return nil
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	t0 := events[0].TS

	// Children (phase spans, generation squashes) group under their cycle's
	// root span; everything else prints at top level in time order.
	children := make(map[int][]byzcons.TraceEvent)
	var top []byzcons.TraceEvent
	for _, ev := range events {
		switch ev.Cat {
		case "phase", "gen":
			children[ev.Cycle] = append(children[ev.Cycle], ev)
		default:
			top = append(top, ev)
		}
	}

	off := func(base, ts int64) string {
		return fmt.Sprintf("+%8.2fms", float64(ts-base)/float64(time.Millisecond))
	}
	for _, ev := range top {
		if ev.Cat == "cycle" {
			fmt.Fprintf(w, "%s cycle %d  %s  %v  %s\n",
				off(t0, ev.TS), ev.Cycle, ev.Name, time.Duration(ev.Dur), ev.Detail)
			for _, ch := range children[ev.Cycle] {
				tag := ch.Name
				if ch.Cat == "gen" {
					tag = "gen " + ch.Name
				}
				fmt.Fprintf(w, "  %s %-12s gen=%-3d node=%d  %v  %s\n",
					off(ev.TS, ch.TS), tag, ch.Gen, ch.Node, time.Duration(ch.Dur), ch.Detail)
			}
			delete(children, ev.Cycle)
			continue
		}
		fmt.Fprintf(w, "%s %s/%s", off(t0, ev.TS), ev.Cat, ev.Name)
		if ev.Cat == "peer" {
			fmt.Fprintf(w, " peer=%d", ev.Node)
		}
		if ev.Detail != "" {
			fmt.Fprintf(w, "  %s", ev.Detail)
		}
		fmt.Fprintln(w)
	}
	// Orphans: children whose cycle span never landed in the trace (ring
	// overflow, or a run cut mid-cycle). Surface rather than drop them.
	var orphanCycles []int
	for c := range children {
		orphanCycles = append(orphanCycles, c)
	}
	sort.Ints(orphanCycles)
	for _, c := range orphanCycles {
		fmt.Fprintf(w, "cycle %d (span not captured):\n", c)
		for _, ch := range children[c] {
			fmt.Fprintf(w, "  %s %-12s gen=%-3d node=%d  %v  %s\n",
				off(t0, ch.TS), ch.Name, ch.Gen, ch.Node, time.Duration(ch.Dur), ch.Detail)
		}
	}
	return nil
}
