package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"byzcons"
)

// startDebugServer serves the session's live observability surface on addr:
//
//	/metrics     text exposition of every runtime metric ("name value")
//	/events      the protocol trace ring as JSONL, oldest event first
//	/debug/vars  expvar (Go runtime memstats and friends)
//	/debug/pprof the standard profiling endpoints
//
// It returns the running server and the bound address (addr may end in :0).
// The caller owns the server's lifetime; Close tears the listener down.
func startDebugServer(addr string, s *byzcons.Session) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("debugaddr: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range s.TraceEvents() {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
