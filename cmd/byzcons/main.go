// Command byzcons runs a single simulated execution of the paper's
// consensus (or one of its companions) and prints the decision, the exact
// communication cost by protocol stage, and the paper's closed-form
// predictions for comparison.
//
// Examples:
//
//	byzcons -mode consensus -n 7 -t 2 -L 8192 -faulty 1,4 -adv equivocator
//	byzcons -mode broadcast -n 10 -t 3 -source 2 -L 100000
//	byzcons -mode fitzihirt -n 7 -t 2 -kappa 8 -L 65536
//	byzcons -mode naive -n 7 -t 2 -L 4096
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"byzcons"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byzcons:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode   = flag.String("mode", "consensus", "consensus | broadcast | fitzihirt | naive")
		n      = flag.Int("n", 7, "number of processors")
		t      = flag.Int("t", 2, "Byzantine fault bound (t < n/3)")
		L      = flag.Int("L", 8192, "value length in bits")
		lanes  = flag.Int("lanes", 0, "generation lanes (0 = optimal D* of Eq. 2)")
		sym    = flag.Uint("sym", 0, "Reed-Solomon symbol bits (0 = auto, 8 or 16)")
		bsbStr = flag.String("bsb", "oracle", "1-bit broadcast: oracle | eig | phaseking")
		advStr = flag.String("adv", "none", "adversary: "+strings.Join(advNames(), " | "))
		faulty = flag.String("faulty", "", "comma-separated faulty processor ids")
		seed   = flag.Int64("seed", 1, "deterministic run seed")
		source = flag.Int("source", 0, "broadcast source processor")
		kappa  = flag.Uint("kappa", 16, "fitzihirt hash width in bits")
		eps    = flag.Float64("eps", 0, "proboracle per-receiver failure probability")
		trace  = flag.Bool("trace", false, "print per-generation progress to stderr")
	)
	flag.Parse()

	kind, err := byzcons.ParseBroadcastKind(*bsbStr)
	if err != nil {
		return err
	}
	faultyIDs, err := parseIDs(*faulty)
	if err != nil {
		return err
	}
	behavior, err := makeAdversary(*advStr, *t)
	if err != nil {
		return err
	}
	sc := byzcons.Scenario{Faulty: faultyIDs, Behavior: behavior}

	// Deterministic per-processor inputs: all equal (the validity case).
	val := make([]byte, (*L+7)/8)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	inputs := make([][]byte, *n)
	for i := range inputs {
		inputs[i] = val
	}

	var traceW io.Writer
	if *trace {
		traceW = os.Stderr
	}
	var res *byzcons.Result
	switch *mode {
	case "consensus":
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed, Trace: traceW}
		res, err = byzcons.Consensus(cfg, inputs, *L, sc)
	case "broadcast":
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed}
		res, err = byzcons.Broadcast(cfg, *source, val, *L, sc)
	case "fitzihirt":
		cfg := byzcons.FHConfig{N: *n, T: *t, Kappa: *kappa, Broadcast: kind, Seed: *seed}
		res, err = byzcons.FitziHirt(cfg, inputs, *L, sc)
	case "naive":
		cfg := byzcons.NaiveConfig{N: *n, T: *t, Seed: *seed}
		res, err = byzcons.NaiveBitwise(cfg, inputs, *L, sc)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}

	report(os.Stdout, *mode, *n, *t, *L, kind, res)
	return nil
}

// report renders a run summary with the paper's closed-form predictions.
func report(w io.Writer, mode string, n, t, L int, kind byzcons.BroadcastKind, res *byzcons.Result) {
	fmt.Fprintf(w, "mode=%s n=%d t=%d L=%d bits bsb=%v\n", mode, n, t, L, kind)
	fmt.Fprintf(w, "consistent=%v defaulted=%v", res.Consistent, res.Defaulted)
	if res.Consistent && len(res.Value) > 0 {
		snippet := res.Value
		if len(snippet) > 16 {
			snippet = snippet[:16]
		}
		fmt.Fprintf(w, " value[0:16]=%x", snippet)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "generations=%d diagnosisRuns=%d (bound t(t+1)=%d) isolated=%v\n",
		res.Generations, res.DiagnosisRuns, t*(t+1), res.Isolated)
	fmt.Fprintf(w, "rounds=%d totalBits=%d honestBits=%d\n", res.Rounds, res.Bits, res.HonestBits)

	tags := make([]string, 0, len(res.BitsByTag))
	for tag := range res.BitsByTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	fmt.Fprintln(w, "bits by stage:")
	for _, tag := range tags {
		fmt.Fprintf(w, "  %-12s %12d  (%.1f%%)\n", tag, res.BitsByTag[tag],
			100*float64(res.BitsByTag[tag])/float64(res.Bits))
	}

	if mode == "consensus" {
		B := byzcons.DefaultBroadcastCost(n)
		D := byzcons.OptimalD(n, t, 8, int64(L), B)
		fmt.Fprintln(w, "paper predictions:")
		fmt.Fprintf(w, "  Eq.1 worst case Ccon  = %d bits (D=%d, B=%d)\n", byzcons.PredictCcon(n, t, int64(L), D, B), D, B)
		fmt.Fprintf(w, "  Eq.3 leading term     = %d bits (n(n-1)/(n-2t)·L)\n", byzcons.PredictLeading(n, t, int64(L)))
		fmt.Fprintf(w, "  naive bitwise baseline = %d bits (2n²L)\n", byzcons.PredictNaive(byzcons.NaiveConfig{N: n, T: t}, int64(L)))
	}
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad faulty id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func advNames() []string {
	return []string{"none", "equivocator", "matchliar", "falsedetector", "trustliar",
		"symbolliar", "silent", "random", "edgemiser"}
}

func makeAdversary(name string, t int) (byzcons.Adversary, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "equivocator":
		return byzcons.Equivocator{}, nil
	case "matchliar":
		return byzcons.MatchLiar{}, nil
	case "falsedetector":
		return byzcons.FalseDetector{}, nil
	case "trustliar":
		return byzcons.Attacks{byzcons.Equivocator{}, byzcons.TrustLiar{}}, nil
	case "symbolliar":
		return byzcons.Attacks{byzcons.Equivocator{}, byzcons.SymbolLiar{}}, nil
	case "silent":
		return byzcons.Silent{}, nil
	case "random":
		return byzcons.RandomByz{P: 0.4}, nil
	case "edgemiser":
		return byzcons.EdgeMiser{T: t}, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q (want %s)", name, strings.Join(advNames(), ", "))
	}
}
