// Command byzcons runs a single simulated execution of the paper's
// consensus (or one of its companions) and prints the decision, the exact
// communication cost by protocol stage, and the paper's closed-form
// predictions for comparison.
//
// Examples:
//
//	byzcons -mode consensus -n 7 -t 2 -L 8192 -faulty 1,4 -adv equivocator
//	byzcons -mode broadcast -n 10 -t 3 -source 2 -L 100000
//	byzcons -mode fitzihirt -n 7 -t 2 -kappa 8 -L 65536
//	byzcons -mode naive -n 7 -t 2 -L 4096
//
// The serve mode drives the streaming Session as a real ingest loop:
// -ingest client goroutines propose values concurrently, the background
// flush policy (a full cycle of batches, bounded by -maxdelay) coalesces
// them into long per-instance inputs pipelined over the deployment, and
// per-cycle reports stream as they commit. A networked -transport (bus or
// tcp) dials its mesh exactly once for the whole run — the summary's
// meshDials/conns counters prove the reuse. With -sweep it instead repeats
// the workload at doubling batch sizes to show the amortization curve:
//
//	byzcons -mode serve -n 7 -t 2 -values 64 -valbytes 64 -batch 16 -instances 4 -ingest 8
//	byzcons -mode serve -n 7 -t 2 -values 64 -sweep
//	byzcons -mode serve -n 7 -t 2 -values 64 -transport tcp -maxdelay 2ms
//
// With -chaos the serve run executes under a deterministic fault schedule —
// cuts, partitions, delay storms and crash-restarts firing at flush-cycle
// boundaries (@cN) or wall-clock offsets (@150ms) against the live mesh.
// The seed before the colon drives all injected jitter, so one
// (seed, schedule) pair replays one fault timeline; faulted cycles complete
// with attributed defaults (the degraded=[...] column) instead of failing,
// and the fired fault log prints with the summary:
//
//	byzcons -mode serve -n 4 -t 1 -values 64 -transport bus -chaos '7:cut(1,3)@c1;heal(1,3)@c2'
//	byzcons -mode serve -n 4 -t 1 -values 64 -transport tcp -chaos '3:partition(3)@c1;healall@c3;crash(2)@c4;restart(2)@c6'
//
// The cluster mode spawns one networked node per processor over a real
// transport (loopback TCP by default), runs a consensus workload end to end,
// and cross-checks the decision and metered traffic against a simulator
// reference run of the identical scenario, reporting the measured on-wire
// bytes next to the protocol-level bit meter:
//
//	byzcons -mode cluster -n 7 -t 2 -L 65536 -faulty 1,4 -adv equivocator
//	byzcons -mode cluster -transport bus -n 4 -t 1 -faulty 1 -adv silent
//
// The -window flag (consensus, broadcast, serve and cluster modes) sets the
// speculative generation pipeline's width: up to that many generations run
// concurrently, each on its own stream of synchronous rounds, with
// squash-and-replay keeping decisions bit-identical to the sequential
// protocol (-window 1, the default) even when a diagnosis rewrites the
// trust graph mid-window. Fault-free latency drops roughly by the window
// factor (see pipelinedRounds in the reports):
//
//	byzcons -mode cluster -n 7 -t 2 -L 65536 -window 4
//	byzcons -mode consensus -n 7 -t 2 -L 65536 -window 8 -faulty 1,4 -adv equivocator
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	runtimetrace "runtime/trace"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"byzcons"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byzcons:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode   = flag.String("mode", "consensus", "consensus | broadcast | fitzihirt | naive | serve | cluster | tracefmt")
		n      = flag.Int("n", 7, "number of processors")
		t      = flag.Int("t", 2, "Byzantine fault bound (t < n/3)")
		L      = flag.Int("L", 8192, "value length in bits")
		lanes  = flag.Int("lanes", 0, "generation lanes (0 = optimal D* of Eq. 2)")
		window = flag.Int("window", 1, "speculative generation pipeline width (1 = sequential protocol; >1 pipelines fault-free generations with squash-and-replay)")
		sym    = flag.Uint("sym", 0, "Reed-Solomon symbol bits (0 = auto, 8 or 16)")
		bsbStr = flag.String("bsb", "oracle", "1-bit broadcast: oracle | eig | phaseking")
		advStr = flag.String("adv", "none", "adversary: "+strings.Join(advNames(), " | "))
		faulty = flag.String("faulty", "", "comma-separated faulty processor ids")
		seed   = flag.Int64("seed", 1, "deterministic run seed")
		source = flag.Int("source", 0, "broadcast source processor")
		kappa  = flag.Uint("kappa", 16, "fitzihirt hash width in bits")
		eps    = flag.Float64("eps", 0, "proboracle per-receiver failure probability")
		trace  = flag.Bool("trace", false, "print per-generation progress to stderr")

		values    = flag.Int("values", 64, "serve: number of client values in the workload")
		valBytes  = flag.Int("valbytes", 64, "serve: bytes per client value")
		batch     = flag.Int("batch", 16, "serve: max values coalesced per consensus instance")
		instances = flag.Int("instances", 4, "serve: concurrent pipelined instances per cycle")
		ingest    = flag.Int("ingest", 8, "serve: concurrent client goroutines proposing values")
		maxDelay  = flag.Duration("maxdelay", byzcons.DefaultMaxDelay, "serve: flush-policy delay bound (values never wait longer than this for a full batch)")
		sweep     = flag.Bool("sweep", false, "serve: rerun the workload at doubling batch sizes")
		debugAddr = flag.String("debugaddr", "", "serve: listen address for the live debug endpoint (/metrics, /events, expvar, pprof); empty = off")
		traceFile = flag.String("tracefile", "", "serve: write the protocol event trace as JSONL to this file; tracefmt: the JSONL file to pretty-print")
		linger    = flag.Duration("linger", 0, "serve: keep the debug endpoint alive this long after the workload drains")

		peerBackoff  = flag.Duration("peerbackoff", 0, "serve: peer reconnect backoff cap on TCP (0 = 1s)")
		peerMaxFlaps = flag.Int("peermaxflaps", 0, "serve: transient losses per peer channel before permanent demotion (0 = 64, negative = unlimited)")
		stallTimeout = flag.Duration("stalltimeout", 0, "serve: isolate a peer silent this long while a round waits on it (0 = 20s, negative = disabled)")
		noRetry      = flag.Bool("noretry", false, "serve: disable peer reconnects (the first connection loss fails the channel for good)")
		chaosSpec    = flag.String("chaos", "", "serve: deterministic fault schedule as seed:events, e.g. 7:cut(1,3)@c1;heal(1,3)@c2;crash(2)@c3 (networked transports only; implies graceful degradation)")
		shards       = flag.Int("shards", 1, "serve: consensus groups sharing the one mesh (>1 runs a key-partitioned fleet; each shard batches and flushes independently)")

		transportStr = flag.String("transport", "", "cluster/serve: deployment backend: sim | bus | tcp (default: tcp for cluster, sim for serve)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (all modes; perf work starts from a profile, not a guess)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		execTrace  = flag.String("exectrace", "", "write a runtime execution trace to this file (go tool trace)")
	)
	flag.Parse()

	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			return fmt.Errorf("exectrace: %w", err)
		}
		defer f.Close()
		if err := runtimetrace.Start(f); err != nil {
			return fmt.Errorf("exectrace: %w", err)
		}
		defer runtimetrace.Stop()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "byzcons: memprofile:", err)
			}
			f.Close()
		}()
	}

	kind, err := byzcons.ParseBroadcastKind(*bsbStr)
	if err != nil {
		return err
	}
	faultyIDs, err := parseIDs(*faulty)
	if err != nil {
		return err
	}
	behavior, err := makeAdversary(*advStr, *t)
	if err != nil {
		return err
	}
	sc := byzcons.Scenario{Faulty: faultyIDs, Behavior: behavior}

	// Deterministic per-processor inputs: all equal (the validity case).
	val := make([]byte, (*L+7)/8)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	inputs := make([][]byte, *n)
	for i := range inputs {
		inputs[i] = val
	}

	var traceW io.Writer
	if *trace {
		traceW = os.Stderr
	}
	var res *byzcons.Result
	switch *mode {
	case "serve":
		tk, err := parseTransport(*transportStr, byzcons.TransportSim)
		if err != nil {
			return err
		}
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Window: *window, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed}
		retry := byzcons.PeerRetry{
			Disable:      *noRetry,
			MaxBackoff:   *peerBackoff,
			MaxFlaps:     *peerMaxFlaps,
			StallTimeout: *stallTimeout,
		}
		opts := serveOpts{
			values: *values, valBytes: *valBytes, batch: *batch, instances: *instances,
			ingest: *ingest, maxDelay: *maxDelay, sweep: *sweep,
			debugAddr: *debugAddr, traceFile: *traceFile, linger: *linger,
			chaos: *chaosSpec, shards: *shards,
		}
		return serve(os.Stdout, cfg, sc, tk, retry, opts)
	case "tracefmt":
		if *traceFile == "" {
			return fmt.Errorf("tracefmt: pass the trace JSONL via -tracefile")
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		return tracefmt(os.Stdout, f)
	case "cluster":
		tk, err := parseTransport(*transportStr, byzcons.TransportTCP)
		if err != nil {
			return err
		}
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Window: *window, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed}
		return cluster(os.Stdout, cfg, sc, inputs, *L, tk)
	case "consensus":
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Window: *window, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed, Trace: traceW}
		res, err = byzcons.Consensus(cfg, inputs, *L, sc)
	case "broadcast":
		cfg := byzcons.Config{N: *n, T: *t, SymBits: *sym, Lanes: *lanes, Window: *window, Broadcast: kind,
			BroadcastEpsilon: *eps, Seed: *seed}
		res, err = byzcons.Broadcast(cfg, *source, val, *L, sc)
	case "fitzihirt":
		cfg := byzcons.FHConfig{N: *n, T: *t, Kappa: *kappa, Broadcast: kind, Seed: *seed}
		res, err = byzcons.FitziHirt(cfg, inputs, *L, sc)
	case "naive":
		cfg := byzcons.NaiveConfig{N: *n, T: *t, Seed: *seed}
		res, err = byzcons.NaiveBitwise(cfg, inputs, *L, sc)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}

	report(os.Stdout, *mode, *n, *t, *L, kind, res)
	return nil
}

// parseTransport resolves the -transport flag, defaulting per mode.
func parseTransport(s string, def byzcons.TransportKind) (byzcons.TransportKind, error) {
	if s == "" {
		return def, nil
	}
	return byzcons.ParseTransportKind(s)
}

// cluster runs one consensus deployment with networked nodes over the
// selected transport, plus a simulator reference run of the identical
// scenario, and cross-checks the two: same decision, same metered protocol
// bits. It reports the measured wire traffic next to the metered bits —
// the encoded-bytes-per-protocol-bit ratio is the real cost of putting the
// paper's O(nL) result on a wire.
func cluster(w io.Writer, cfg byzcons.Config, sc byzcons.Scenario, inputs [][]byte, L int, kind byzcons.TransportKind) error {
	if kind == byzcons.TransportSim {
		return fmt.Errorf("cluster: pick a networked transport (bus or tcp)")
	}
	clusterRes, err := byzcons.ClusterConsensus(cfg, inputs, L, sc, kind)
	if err != nil {
		return fmt.Errorf("cluster run (%v): %w", kind, err)
	}
	simRes, err := byzcons.ClusterConsensus(cfg, inputs, L, sc, byzcons.TransportSim)
	if err != nil {
		return fmt.Errorf("simulator reference: %w", err)
	}

	fmt.Fprintf(w, "mode=cluster transport=%s n=%d t=%d L=%d bits bsb=%v\n", clusterRes.Transport, cfg.N, cfg.T, L, cfg.Broadcast)
	fmt.Fprintf(w, "cluster:   consistent=%v defaulted=%v generations=%d diagnosisRuns=%d bits=%d rounds=%d pipelinedRounds=%d squashes=%d\n",
		clusterRes.Consistent, clusterRes.Defaulted, clusterRes.Generations, clusterRes.DiagnosisRuns, clusterRes.Bits, clusterRes.Rounds,
		clusterRes.PipelinedRounds, clusterRes.Squashes)
	fmt.Fprintf(w, "simulator: consistent=%v defaulted=%v generations=%d diagnosisRuns=%d bits=%d rounds=%d pipelinedRounds=%d squashes=%d\n",
		simRes.Consistent, simRes.Defaulted, simRes.Generations, simRes.DiagnosisRuns, simRes.Bits, simRes.Rounds,
		simRes.PipelinedRounds, simRes.Squashes)

	switch {
	case !clusterRes.Consistent || !simRes.Consistent:
		return fmt.Errorf("cluster: inconsistent honest decisions")
	case !bytes.Equal(clusterRes.Value, simRes.Value) || clusterRes.Defaulted != simRes.Defaulted:
		return fmt.Errorf("cluster: decision diverges from the simulator reference")
	case clusterRes.Generations != simRes.Generations || clusterRes.DiagnosisRuns != simRes.DiagnosisRuns:
		return fmt.Errorf("cluster: progress diverges from the simulator reference")
	}
	// Metered traffic is an exact invariant only while nothing speculative
	// was discarded: a squashed generation completes a scheduling-dependent
	// number of rounds before its fiber unwinds, so under squash-and-replay
	// the meters measure (deterministically decided, variably costed) work.
	if clusterRes.Squashes == 0 && simRes.Squashes == 0 {
		if clusterRes.Bits != simRes.Bits {
			return fmt.Errorf("cluster: metered %d bits, simulator metered %d", clusterRes.Bits, simRes.Bits)
		}
		fmt.Fprintln(w, "cross-check: cluster and simulator decisions identical (meters identical)")
	} else {
		fmt.Fprintln(w, "cross-check: cluster and simulator decisions identical (meters carry speculative variance under squash-and-replay)")
	}

	encoded := clusterRes.Wire.BytesSent * 8
	fmt.Fprintf(w, "wire: frames=%d encodedBytes=%d encodedBits/meteredBits=%.2f\n",
		clusterRes.Wire.FramesSent, clusterRes.Wire.BytesSent, float64(encoded)/float64(clusterRes.Bits))
	return nil
}

// serveOpts bundles the serve-mode knobs.
type serveOpts struct {
	values, valBytes, batch, instances, ingest int
	maxDelay                                   time.Duration
	sweep                                      bool
	// debugAddr, when non-empty, serves the live debug endpoint for the
	// run's lifetime: /metrics (text exposition), /events (trace JSONL),
	// /debug/vars (expvar) and /debug/pprof.
	debugAddr string
	// traceFile, when non-empty, streams every protocol trace event to this
	// file as JSONL (feed it back through -mode tracefmt).
	traceFile string
	// linger keeps the process (and the debug endpoint) alive this long
	// after the workload drains, so scrapers get a stable target.
	linger time.Duration
	// chaos, when non-empty, runs the session under a deterministic fault
	// schedule (SessionConfig.Chaos); the fired fault log prints with the
	// summary. Requires a networked transport and implies Degrade.
	chaos string
	// shards, when > 1, serves a key-partitioned Fleet instead of a single
	// Session: values route to shards by key hash and each shard's flush
	// cycles run concurrently over the one shared mesh.
	shards int
}

// serve drives the streaming Session over a synthetic ingest workload:
// `ingest` client goroutines propose values concurrently, flush cycles are
// triggered by the background policy (a full cycle of batches, or maxDelay
// for a trickle), per-cycle reports stream live, and the mesh of a networked
// transport is dialed exactly once for the whole run. With sweep it instead
// repeats the workload at doubling batch sizes to show the amortization
// curve.
//
// All output funnels through one printer goroutine: the per-cycle report
// stream commits asynchronously with the ingest loop and the summary, and a
// shared line channel is what keeps concurrent lines whole instead of
// interleaved mid-line.
func serve(w io.Writer, cfg byzcons.Config, sc byzcons.Scenario, tk byzcons.TransportKind,
	retry byzcons.PeerRetry, opts serveOpts) error {
	if opts.values < 1 || opts.valBytes < 1 || opts.batch < 1 || opts.instances < 1 || opts.ingest < 1 {
		return fmt.Errorf("serve: values, valbytes, batch, instances and ingest must all be >= 1")
	}
	workload := func(i int) []byte {
		val := make([]byte, opts.valBytes)
		for j := range val {
			val[j] = byte(0x41 + (i+j)%26)
		}
		return val
	}

	// The single printer goroutine: every line from every goroutine goes
	// through this channel, closed only after all writers retired.
	lines := make(chan string, 64)
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for ln := range lines {
			fmt.Fprintln(w, ln)
		}
	}()
	printf := func(format string, a ...any) { lines <- fmt.Sprintf(format, a...) }
	defer func() { close(lines); <-printed }()

	if opts.shards > 1 {
		printf("mode=serve transport=%v n=%d t=%d shards=%d workload=%d values x %d bytes ingest=%d",
			tk, cfg.N, cfg.T, opts.shards, opts.values, opts.valBytes, opts.ingest)
		switch {
		case opts.sweep:
			return fmt.Errorf("serve: -sweep and -shards are mutually exclusive")
		case opts.chaos != "":
			return fmt.Errorf("serve: -chaos schedules are cycle-anchored and ambiguous across shards; use it without -shards")
		case opts.debugAddr != "":
			return fmt.Errorf("serve: the debug endpoint is per-session; use it without -shards")
		}
		return serveFleet(lines, printf, cfg, sc, tk, retry, opts, workload)
	}

	printf("mode=serve transport=%v n=%d t=%d workload=%d values x %d bytes ingest=%d",
		tk, cfg.N, cfg.T, opts.values, opts.valBytes, opts.ingest)

	if opts.sweep {
		return serveSweep(printf, cfg, sc, tk, opts.values, opts.batch, opts.instances, workload)
	}

	scfg := byzcons.SessionConfig{
		Config:      cfg,
		Scenario:    sc,
		Transport:   tk,
		PeerRetry:   retry,
		Chaos:       opts.chaos,
		BatchValues: opts.batch,
		Instances:   opts.instances,
		Policy:      byzcons.FlushPolicy{MaxValues: opts.batch * opts.instances, MaxDelay: opts.maxDelay},
	}
	var traceOut *os.File
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		traceOut = f
		defer traceOut.Close()
		scfg.TraceSink = traceOut
	}
	if opts.debugAddr != "" && scfg.TraceRing == 0 {
		// The /events page reads the ring; give it one even without a file.
		scfg.TraceRing = 4096
	}
	s, err := byzcons.Open(scfg)
	if err != nil {
		return err
	}
	defer s.Close()

	if opts.debugAddr != "" {
		srv, addr, err := startDebugServer(opts.debugAddr, s)
		if err != nil {
			return err
		}
		defer srv.Close()
		printf("debug endpoint: http://%s (/metrics /events /debug/vars /debug/pprof)", addr)
	}

	// Live per-cycle reporting off the Reports stream; the goroutine exits
	// when Close retires the stream.
	var reports sync.WaitGroup
	reports.Add(1)
	go func() {
		defer reports.Done()
		printf("%6s %8s %8s %10s %10s %12s %10s",
			"cycle", "batches", "values", "bits", "prounds", "bits/value", "cycleMs")
		for rep := range s.Reports() {
			var prounds int64
			for _, bs := range rep.Batches {
				if bs.PipelinedRounds > prounds {
					prounds = bs.PipelinedRounds
				}
			}
			perValue := 0.0
			if rep.Values > 0 {
				perValue = float64(rep.Bits) / float64(rep.Values)
			}
			line := fmt.Sprintf("%6d %8d %8d %10d %10d %12.1f %10.2f",
				rep.Cycle, len(rep.Batches), rep.Values, rep.Bits, prounds, perValue,
				float64(rep.Timing.Cycle)/float64(time.Millisecond))
			if len(rep.PeersDown) > 0 {
				line += fmt.Sprintf("  peersDown=%v", rep.PeersDown)
			}
			if rep.Degraded {
				line += fmt.Sprintf("  degraded=%v", rep.DegradedPeers)
			}
			lines <- line
		}
	}()
	// Once the stream retires, no goroutine but this one writes lines.
	defer reports.Wait()
	defer s.Close()

	// The ingest loop: each client goroutine proposes its share of the
	// workload and blocks per proposal, like a real submitter would.
	ctx := context.Background()
	errs := make(chan error, opts.ingest)
	var clients sync.WaitGroup
	for g := 0; g < opts.ingest; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			for i := g; i < opts.values; i += opts.ingest {
				val := workload(i)
				d, err := s.Propose(ctx, val)
				if err != nil {
					errs <- fmt.Errorf("serve: value %d: %w", i, err)
					return
				}
				if !bytes.Equal(d.Value, val) {
					errs <- fmt.Errorf("serve: value %d decided %x, want %x", i, d.Value, val)
					return
				}
			}
		}(g)
	}
	clients.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	if err := s.Drain(ctx); err != nil {
		return err
	}
	if opts.linger > 0 {
		printf("workload drained; lingering %v for the debug endpoint", opts.linger)
		time.Sleep(opts.linger)
	}
	st := s.Stats()
	ws := s.WireStats()
	dials := s.MeshDials()
	snap := s.Snapshot()
	chaosLog := s.ChaosLog()
	s.Close() // retire the Reports stream before the summary
	reports.Wait()

	for _, rec := range chaosLog {
		line := fmt.Sprintf("chaos[%d] %s fired@c%d", rec.Index, rec.Event, rec.Cycle)
		if rec.Cycle < 0 {
			line = fmt.Sprintf("chaos[%d] %s fired@wall", rec.Index, rec.Event)
		}
		if rec.Err != "" {
			line += " err=" + rec.Err
		}
		printf("%s", line)
	}

	printf("decided=%d defaulted=%d batches=%d cycles=%d meshDials=%d",
		st.Decided, st.Defaulted, st.Batches, st.Cycles, dials)
	printf("pipelined rounds=%d totalBits=%d amortized=%.1f bits/value",
		st.Rounds, st.Bits, float64(st.Bits)/float64(opts.values))
	if d := snap.Histograms["engine_decision_ns"]; d.Count > 0 {
		printf("decision latency: p50=%v p99=%v max=%v over %d decisions",
			time.Duration(d.P50), time.Duration(d.P99), time.Duration(d.Max), d.Count)
	}
	if ws.BytesSent > 0 {
		printf("wire: frames=%d conns=%d encodedBytes=%d encoded=%.1f bytes/value reconnects=%d peerFlaps=%d",
			ws.FramesSent, ws.Conns, ws.BytesSent, float64(ws.BytesSent)/float64(opts.values), ws.Reconnects, ws.PeerFlaps)
	}
	return nil
}

// serveFleet drives a sharded Fleet over the same synthetic ingest workload:
// every value carries a key, keys hash-partition across the shards, and each
// shard's flush cycles trigger independently — so the per-cycle report
// stream shows cycles from different shards interleaving over the one mesh.
func serveFleet(lines chan string, printf func(string, ...any), cfg byzcons.Config, sc byzcons.Scenario,
	tk byzcons.TransportKind, retry byzcons.PeerRetry, opts serveOpts, workload func(int) []byte) error {
	fcfg := byzcons.FleetConfig{
		SessionConfig: byzcons.SessionConfig{
			Config:      cfg,
			Scenario:    sc,
			Transport:   tk,
			PeerRetry:   retry,
			BatchValues: opts.batch,
			Instances:   opts.instances,
			Policy:      byzcons.FlushPolicy{MaxValues: opts.batch * opts.instances, MaxDelay: opts.maxDelay},
		},
		Shards: opts.shards,
	}
	var traceOut *os.File
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			return fmt.Errorf("tracefile: %w", err)
		}
		traceOut = f
		defer traceOut.Close()
		fcfg.TraceSink = traceOut
	}
	f, err := byzcons.OpenFleet(fcfg)
	if err != nil {
		return err
	}
	defer f.Close()

	// Live per-cycle reporting, shard-tagged: each line names the shard whose
	// policy fired the cycle.
	var reports sync.WaitGroup
	reports.Add(1)
	go func() {
		defer reports.Done()
		printf("%6s %6s %8s %8s %10s %12s %10s",
			"shard", "cycle", "batches", "values", "bits", "bits/value", "cycleMs")
		for rep := range f.Reports() {
			perValue := 0.0
			if rep.Values > 0 {
				perValue = float64(rep.Bits) / float64(rep.Values)
			}
			line := fmt.Sprintf("%6d %6d %8d %8d %10d %12.1f %10.2f",
				rep.Shard, rep.Cycle, len(rep.Batches), rep.Values, rep.Bits, perValue,
				float64(rep.Timing.Cycle)/float64(time.Millisecond))
			if len(rep.PeersDown) > 0 {
				line += fmt.Sprintf("  peersDown=%v", rep.PeersDown)
			}
			if rep.Degraded {
				line += fmt.Sprintf("  degraded=%v", rep.DegradedPeers)
			}
			lines <- line
		}
	}()
	defer reports.Wait()
	defer f.Close()

	// Keyed ingest: value i proposes under key "key-i", so the value→shard
	// mapping is the partitioner's, not the client's.
	ctx := context.Background()
	errs := make(chan error, opts.ingest)
	var clients sync.WaitGroup
	for g := 0; g < opts.ingest; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			for i := g; i < opts.values; i += opts.ingest {
				val := workload(i)
				key := []byte(fmt.Sprintf("key-%d", i))
				d, err := f.Propose(ctx, key, val)
				if err != nil {
					errs <- fmt.Errorf("serve: value %d: %w", i, err)
					return
				}
				if !bytes.Equal(d.Value, val) {
					errs <- fmt.Errorf("serve: value %d decided %x, want %x", i, d.Value, val)
					return
				}
			}
		}(g)
	}
	clients.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	if err := f.Drain(ctx); err != nil {
		return err
	}
	st := f.Stats()
	ws := f.WireStats()
	dials := f.MeshDials()
	snap := f.Snapshot()
	f.Close() // retire the Reports stream before the summary
	reports.Wait()

	agg := st.Aggregate
	printf("decided=%d defaulted=%d batches=%d cycles=%d shards=%d meshDials=%d",
		agg.Decided, agg.Defaulted, agg.Batches, agg.Cycles, st.Shards, dials)
	for s, ss := range st.PerShard {
		printf("shard %d: decided=%d batches=%d cycles=%d bits=%d", s, ss.Decided, ss.Batches, ss.Cycles, ss.Bits)
	}
	printf("pipelined rounds=%d totalBits=%d amortized=%.1f bits/value",
		agg.Rounds, agg.Bits, float64(agg.Bits)/float64(opts.values))
	if d := snap.Histograms["engine_decision_ns"]; d.Count > 0 {
		printf("decision latency: p50=%v p99=%v max=%v over %d decisions (worst shard percentiles)",
			time.Duration(d.P50), time.Duration(d.P99), time.Duration(d.Max), d.Count)
	}
	if ws.BytesSent > 0 {
		printf("wire: frames=%d conns=%d encodedBytes=%d encoded=%.1f bytes/value reconnects=%d peerFlaps=%d",
			ws.FramesSent, ws.Conns, ws.BytesSent, float64(ws.BytesSent)/float64(opts.values), ws.Reconnects, ws.PeerFlaps)
	}
	return nil
}

// serveSweep reruns the workload at doubling batch sizes (manual flushing,
// so each row is one deterministic drain) to render the amortization curve.
func serveSweep(printf func(string, ...any), cfg byzcons.Config, sc byzcons.Scenario, tk byzcons.TransportKind,
	values, batch, instances int, workload func(int) []byte) error {
	var batches []int
	for b := 1; b < batch; b *= 2 {
		batches = append(batches, b)
	}
	batches = append(batches, batch)
	printf("%8s %10s %10s %8s %14s", "batch", "instances", "rounds", "bits", "bits/value")
	ctx := context.Background()
	for _, b := range batches {
		s, err := byzcons.Open(byzcons.SessionConfig{
			Config:      cfg,
			Scenario:    sc,
			Transport:   tk,
			BatchValues: b,
			Instances:   instances,
			Policy:      byzcons.FlushPolicy{MaxValues: -1, MaxBytes: -1, MaxDelay: -1},
		})
		if err != nil {
			return err
		}
		pendings := make([]*byzcons.Pending, values)
		for i := range pendings {
			if pendings[i], err = s.ProposeAsync(ctx, workload(i)); err != nil {
				s.Close()
				return err
			}
		}
		if err := s.Drain(ctx); err != nil {
			s.Close()
			return err
		}
		for i, p := range pendings {
			if d := p.Wait(ctx); d.Err != nil {
				s.Close()
				return fmt.Errorf("serve: value %d: %w", i, d.Err)
			}
		}
		st := s.Stats()
		s.Close()
		printf("%8d %10d %10d %8d %14.1f",
			b, instances, st.Rounds, st.Bits, float64(st.Bits)/float64(values))
	}
	return nil
}

// report renders a run summary with the paper's closed-form predictions.
func report(w io.Writer, mode string, n, t, L int, kind byzcons.BroadcastKind, res *byzcons.Result) {
	fmt.Fprintf(w, "mode=%s n=%d t=%d L=%d bits bsb=%v\n", mode, n, t, L, kind)
	fmt.Fprintf(w, "consistent=%v defaulted=%v", res.Consistent, res.Defaulted)
	if res.Consistent && len(res.Value) > 0 {
		snippet := res.Value
		if len(snippet) > 16 {
			snippet = snippet[:16]
		}
		fmt.Fprintf(w, " value[0:16]=%x", snippet)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "generations=%d diagnosisRuns=%d (bound t(t+1)=%d) isolated=%v\n",
		res.Generations, res.DiagnosisRuns, t*(t+1), res.Isolated)
	fmt.Fprintf(w, "rounds=%d pipelinedRounds=%d squashes=%d totalBits=%d honestBits=%d\n",
		res.Rounds, res.PipelinedRounds, res.Squashes, res.Bits, res.HonestBits)

	tags := make([]string, 0, len(res.BitsByTag))
	for tag := range res.BitsByTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	fmt.Fprintln(w, "bits by stage:")
	for _, tag := range tags {
		fmt.Fprintf(w, "  %-12s %12d  (%.1f%%)\n", tag, res.BitsByTag[tag],
			100*float64(res.BitsByTag[tag])/float64(res.Bits))
	}

	if mode == "consensus" {
		B := byzcons.DefaultBroadcastCost(n)
		D := byzcons.OptimalD(n, t, 8, int64(L), B)
		fmt.Fprintln(w, "paper predictions:")
		fmt.Fprintf(w, "  Eq.1 worst case Ccon  = %d bits (D=%d, B=%d)\n", byzcons.PredictCcon(n, t, int64(L), D, B), D, B)
		fmt.Fprintf(w, "  Eq.3 leading term     = %d bits (n(n-1)/(n-2t)·L)\n", byzcons.PredictLeading(n, t, int64(L)))
		fmt.Fprintf(w, "  naive bitwise baseline = %d bits (2n²L)\n", byzcons.PredictNaive(byzcons.NaiveConfig{N: n, T: t}, int64(L)))
	}
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad faulty id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func advNames() []string {
	return []string{"none", "equivocator", "matchliar", "falsedetector", "trustliar",
		"symbolliar", "silent", "random", "edgemiser"}
}

func makeAdversary(name string, t int) (byzcons.Adversary, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "equivocator":
		return byzcons.Equivocator{}, nil
	case "matchliar":
		return byzcons.MatchLiar{}, nil
	case "falsedetector":
		return byzcons.FalseDetector{}, nil
	case "trustliar":
		return byzcons.Attacks{byzcons.Equivocator{}, byzcons.TrustLiar{}}, nil
	case "symbolliar":
		return byzcons.Attacks{byzcons.Equivocator{}, byzcons.SymbolLiar{}}, nil
	case "silent":
		return byzcons.Silent{}, nil
	case "random":
		return byzcons.RandomByz{P: 0.4}, nil
	case "edgemiser":
		return byzcons.EdgeMiser{T: t}, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q (want %s)", name, strings.Join(advNames(), ", "))
	}
}
