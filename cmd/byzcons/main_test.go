package main

import (
	"bytes"
	"strings"
	"testing"

	"byzcons"
)

func TestParseIDs(t *testing.T) {
	got, err := parseIDs("1, 4,6")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 6 {
		t.Errorf("parseIDs = %v, %v", got, err)
	}
	if got, err := parseIDs(""); err != nil || got != nil {
		t.Errorf("empty parse = %v, %v", got, err)
	}
	if _, err := parseIDs("1,x"); err == nil {
		t.Error("bad id accepted")
	}
}

func TestMakeAdversaryCoversAllNames(t *testing.T) {
	for _, name := range advNames() {
		adv, err := makeAdversary(name, 2)
		if err != nil {
			t.Errorf("makeAdversary(%q): %v", name, err)
		}
		if name != "none" && adv == nil {
			t.Errorf("makeAdversary(%q) returned nil", name)
		}
	}
	if _, err := makeAdversary("bogus", 2); err == nil {
		t.Error("bogus adversary accepted")
	}
}

func TestReportRendering(t *testing.T) {
	val := bytes.Repeat([]byte{0xAB}, 32)
	inputs := make([][]byte, 4)
	for i := range inputs {
		inputs[i] = val
	}
	res, err := byzcons.Consensus(byzcons.Config{N: 4, T: 1}, inputs, 256, byzcons.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report(&buf, "consensus", 4, 1, 256, byzcons.BroadcastOracle, res)
	out := buf.String()
	for _, want := range []string{"consistent=true", "bits by stage", "match.sym", "paper predictions", "Eq.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestServeModeReportsAmortizedBits(t *testing.T) {
	var buf bytes.Buffer
	cfg := byzcons.Config{N: 7, T: 2, Seed: 1}
	sc := byzcons.Scenario{Faulty: []int{1, 4}, Behavior: byzcons.Equivocator{Victims: []int{6}}}
	if err := serve(&buf, cfg, sc, byzcons.TransportSim, byzcons.PeerRetry{},
		serveOpts{values: 8, valBytes: 32, batch: 4, instances: 2, ingest: 4, maxDelay: byzcons.DefaultMaxDelay}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycle", "decided=8", "defaulted=0", "bits/value", "meshDials=0", "pipelined rounds="} {
		if !strings.Contains(out, want) {
			t.Errorf("serve report missing %q:\n%s", want, out)
		}
	}
}

// TestServeModeIngestOverTCP is the end-to-end smoke of the streaming ingest
// loop on a real transport: concurrent clients, policy-triggered cycles, one
// mesh dial for the whole run.
func TestServeModeIngestOverTCP(t *testing.T) {
	var buf bytes.Buffer
	cfg := byzcons.Config{N: 4, T: 1, Seed: 1}
	if err := serve(&buf, cfg, byzcons.Scenario{}, byzcons.TransportTCP, byzcons.PeerRetry{},
		serveOpts{values: 12, valBytes: 24, batch: 3, instances: 2, ingest: 4, maxDelay: byzcons.DefaultMaxDelay}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"decided=12", "meshDials=1", "conns=12", "wire: frames="} {
		if !strings.Contains(out, want) {
			t.Errorf("serve TCP report missing %q:\n%s", want, out)
		}
	}
}

func TestServeSweepRendersCurve(t *testing.T) {
	var buf bytes.Buffer
	cfg := byzcons.Config{N: 4, T: 1, Seed: 1}
	if err := serve(&buf, cfg, byzcons.Scenario{}, byzcons.TransportSim, byzcons.PeerRetry{},
		serveOpts{values: 8, valBytes: 32, batch: 4, instances: 2, ingest: 1, maxDelay: byzcons.DefaultMaxDelay, sweep: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One header plus rows for batch sizes 1, 2, 4.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("sweep rendered %d lines, want 5:\n%s", got, out)
	}
}

func TestClusterModeCrossChecksBackends(t *testing.T) {
	var buf bytes.Buffer
	cfg := byzcons.Config{N: 4, T: 1, Seed: 1}
	sc := byzcons.Scenario{Faulty: []int{1}, Behavior: byzcons.Equivocator{}}
	val := bytes.Repeat([]byte{0xEE}, 128)
	inputs := make([][]byte, 4)
	for i := range inputs {
		inputs[i] = val
	}
	if err := cluster(&buf, cfg, sc, inputs, 1024, byzcons.TransportBus); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"transport=bus", "decisions identical", "encodedBytes=", "encodedBits/meteredBits"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster report missing %q:\n%s", want, out)
		}
	}
}

func TestClusterModeRejectsSimTransport(t *testing.T) {
	if err := cluster(&bytes.Buffer{}, byzcons.Config{N: 4, T: 1}, byzcons.Scenario{}, nil, 8, byzcons.TransportSim); err == nil {
		t.Error("sim transport accepted for cluster mode")
	}
}

func TestParseTransportDefaults(t *testing.T) {
	if tk, err := parseTransport("", byzcons.TransportTCP); err != nil || tk != byzcons.TransportTCP {
		t.Errorf("empty = %v, %v", tk, err)
	}
	if tk, err := parseTransport("bus", byzcons.TransportTCP); err != nil || tk != byzcons.TransportBus {
		t.Errorf("bus = %v, %v", tk, err)
	}
	if _, err := parseTransport("carrier-pigeon", byzcons.TransportSim); err == nil {
		t.Error("bogus transport accepted")
	}
}

func TestServeRejectsBadWorkload(t *testing.T) {
	if err := serve(&bytes.Buffer{}, byzcons.Config{N: 4, T: 1}, byzcons.Scenario{}, byzcons.TransportSim, byzcons.PeerRetry{},
		serveOpts{values: 0, valBytes: 32, batch: 4, instances: 2, ingest: 1, maxDelay: byzcons.DefaultMaxDelay}); err == nil {
		t.Error("values=0 accepted")
	}
}

func TestTraceOutput(t *testing.T) {
	val := bytes.Repeat([]byte{0xCD}, 24)
	inputs := make([][]byte, 7)
	for i := range inputs {
		inputs[i] = val
	}
	var trace bytes.Buffer
	cfg := byzcons.Config{N: 7, T: 2, Lanes: 1, SymBits: 8, Trace: &trace}
	_, err := byzcons.Consensus(cfg, inputs, 192, byzcons.Scenario{
		Faulty:   []int{5, 6},
		Behavior: byzcons.FalseDetector{},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	if !strings.Contains(out, "diagnosis") || !strings.Contains(out, "isolated=[5 6]") {
		t.Errorf("trace missing diagnosis lines:\n%s", out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("trace missing clean generations:\n%s", out)
	}
}
