package byzcons_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPIManifest = flag.Bool("update", false, "rewrite testdata/api_manifest.txt from the current public API")

// TestPublicAPIManifest is the API drift tripwire: it type-checks package
// byzcons from source, renders every exported identifier — constants, vars,
// funcs, types, their exported fields and their full method sets, signatures
// included — and compares the result against the checked-in manifest. Any
// surface change (adding, removing or re-signaturing an identifier) fails
// with a diff until the manifest is regenerated with
//
//	go test -run TestPublicAPIManifest -update .
//
// so API evolution is always an explicit, reviewable artifact.
func TestPublicAPIManifest(t *testing.T) {
	pkg := typeCheckByzcons(t)
	got := renderAPI(pkg)

	const manifest = "testdata/api_manifest.txt"
	if *updateAPIManifest {
		if err := os.MkdirAll(filepath.Dir(manifest), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifest, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", manifest)
		return
	}
	wantBytes, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("missing API manifest (run with -update to create it): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotSet := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			t.Errorf("API removed or changed: %s", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			t.Errorf("API added or changed: %s", l)
		}
	}
	t.Error("public API drifted from testdata/api_manifest.txt; if intentional, regenerate with -update")
}

// typeCheckByzcons parses and type-checks the root package (and, through the
// module-aware importer below, its internal dependencies) from source.
func typeCheckByzcons(t *testing.T) *types.Package {
	t.Helper()
	imp := &moduleImporter{
		fset:     token.NewFileSet(),
		packages: map[string]*types.Package{},
		fallback: importer.Default(),
	}
	pkg, err := imp.Import("byzcons")
	if err != nil {
		t.Fatalf("type-checking package byzcons: %v", err)
	}
	return pkg
}

// moduleImporter resolves "byzcons/..." import paths to source directories
// under the repository root and type-checks them recursively; everything
// else (the standard library) goes through the default importer. Standard
// library only — no external tooling dependency.
type moduleImporter struct {
	fset     *token.FileSet
	packages map[string]*types.Package
	fallback types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.packages[path]; ok {
		return pkg, nil
	}
	var dir string
	switch {
	case path == "byzcons":
		dir = "."
	case strings.HasPrefix(path, "byzcons/"):
		dir = "./" + strings.TrimPrefix(path, "byzcons/")
	default:
		return im.fallback.Import(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	im.packages[path] = pkg
	return pkg, nil
}

// renderAPI flattens the package's exported surface into sorted manifest
// lines. Types contribute their exported fields and their full method sets
// (pointer receiver included), so identifiers aliased from internal packages
// — Decision, Pending, the report types — are pinned by what they actually
// expose, not by where they are declared.
func renderAPI(pkg *types.Package) string {
	qual := func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Path()
	}
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !token.IsExported(name) {
			continue
		}
		obj := scope.Lookup(name)
		switch obj := obj.(type) {
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", name, types.TypeString(obj.Type(), qual)))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", name, types.TypeString(obj.Type(), qual)))
		case *types.Func:
			lines = append(lines, fmt.Sprintf("func %s%s", name, strings.TrimPrefix(types.TypeString(obj.Type().(*types.Signature), qual), "func")))
		case *types.TypeName:
			kind := "type"
			if obj.IsAlias() {
				kind = "type (alias)"
			}
			lines = append(lines, fmt.Sprintf("%s %s = %s", kind, name, describeType(obj.Type(), qual)))
			if st, ok := obj.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if !f.Exported() {
						continue
					}
					lines = append(lines, fmt.Sprintf("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)))
				}
			}
			ms := types.NewMethodSet(types.NewPointer(obj.Type()))
			for i := 0; i < ms.Len(); i++ {
				m := ms.At(i).Obj()
				if !m.Exported() {
					continue
				}
				lines = append(lines, fmt.Sprintf("method %s.%s%s", name, m.Name(), strings.TrimPrefix(types.TypeString(m.Type().(*types.Signature), qual), "func")))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// describeType names a type tersely for the manifest header line: named and
// basic types by name, composites by their kind.
func describeType(t types.Type, qual types.Qualifier) string {
	switch u := t.(type) {
	case *types.Named:
		return types.TypeString(u, qual)
	case *types.Alias:
		return types.TypeString(u, qual)
	}
	switch t.Underlying().(type) {
	case *types.Struct:
		return "struct"
	case *types.Interface:
		return "interface"
	case *types.Signature:
		return "func"
	case *types.Basic:
		return types.TypeString(t.Underlying(), qual)
	default:
		return types.TypeString(t.Underlying(), qual)
	}
}
