// Beyondthird: Section 4 of the paper in action. Error-free consensus is
// impossible at t >= n/3, but the algorithm only needs Broadcast_Single_Bit
// at that resilience: substituting a probabilistically correct broadcast
// (e.g. the authenticated constructions the paper cites) lifts the fault
// tolerance to t < n/2, with errors only when the broadcast itself fails.
// This demo runs n=7 with t=3 Byzantine processors — beyond the n/3 barrier —
// first over a perfect substitute, then over increasingly unreliable ones,
// measuring how consensus errors track broadcast failures.
package main

import (
	"bytes"
	"fmt"
	"log"

	"byzcons"
)

func main() {
	const n, t = 7, 3 // t >= n/3: out of reach for any error-free protocol
	value := bytes.Repeat([]byte("beyond n/3! "), 16)
	L := len(value) * 8
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = value
	}
	scenario := byzcons.Scenario{
		Faulty:   []int{0, 3, 5},
		Behavior: byzcons.RandomByz{P: 0.4},
	}

	fmt.Printf("n=%d t=%d (n/3 = %.2f): three actively Byzantine processors\n\n", n, t, float64(n)/3)

	// A perfect higher-resilience broadcast: consensus must succeed always.
	cfg := byzcons.Config{N: n, T: t, Broadcast: byzcons.BroadcastProb, Seed: 1}
	res, err := byzcons.Consensus(cfg, inputs, L, scenario)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent || !bytes.Equal(res.Value, value) {
		log.Fatal("perfect substitute broadcast failed — impossible")
	}
	fmt.Printf("eps=0      agreed in %d generations, %d diagnosis stages, %d bits\n",
		res.Generations, res.DiagnosisRuns, res.Bits)

	// Unreliable substitutes: errors appear, and only broadcast-induced ones.
	// (A run makes tens of thousands of broadcast-bit deliveries, so even a
	// tiny per-delivery eps compounds to a visible per-run error rate.)
	for _, eps := range []float64{0.000002, 0.00002, 0.0002} {
		trials, errs := 40, 0
		for seed := 0; seed < trials; seed++ {
			cfg := byzcons.Config{
				N: n, T: t, Broadcast: byzcons.BroadcastProb,
				BroadcastEpsilon: eps, Seed: int64(seed),
			}
			r, err := byzcons.Consensus(cfg, inputs, L, scenario)
			if err != nil || !r.Consistent || !bytes.Equal(r.Value, value) {
				errs++
			}
		}
		fmt.Printf("eps=%-7g consensus errors: %d/%d runs (errors only when the broadcast fails)\n",
			eps, errs, trials)
	}
}
