// Quickstart: seven processors — two of them Byzantine equivocators — reach
// error-free consensus on a string value, and the run reports the exact
// number of bits that cost.
package main

import (
	"context"
	"fmt"
	"log"

	"byzcons"
)

func main() {
	const n, t = 7, 2
	// A batch of 128 state-machine commands (~7.4 KiB) — multi-valued
	// consensus pays off for long values (the paper's "large L" regime).
	var batch []byte
	for i := 0; i < 128; i++ {
		batch = append(batch, []byte(fmt.Sprintf("command #%03d: transfer %3d tokens from A to B\n", i, i%100))...)
	}
	value := batch
	L := len(value) * 8

	// Every processor starts with the same input (the interesting validity
	// case); processors 2 and 5 are Byzantine and equivocate their
	// matching-stage symbols toward processor 6.
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = value
	}
	res, err := byzcons.Consensus(
		byzcons.Config{N: n, T: t},
		inputs, L,
		byzcons.Scenario{
			Faulty:   []int{2, 5},
			Behavior: byzcons.Equivocator{Victims: []int{6}},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreed on %d-byte batch; first command: %q\n", len(res.Value), res.Value[:47])
	fmt.Printf("consistent:    %v (error-free, despite the attack)\n", res.Consistent)
	fmt.Printf("generations:   %d\n", res.Generations)
	fmt.Printf("diagnosis ran: %d times (Theorem 1 bound: t(t+1) = %d)\n", res.DiagnosisRuns, t*(t+1))
	fmt.Printf("total cost:    %d bits over %d synchronous rounds\n", res.Bits, res.Rounds)
	fmt.Printf("for reference: naive bitwise consensus would cost %d bits\n",
		byzcons.PredictNaive(byzcons.NaiveConfig{N: n, T: t}, int64(L)))

	// The same workload through the streaming Session: propose the commands
	// individually and let the background flush policy coalesce them into
	// long consensus inputs — each instance amortizes its broadcast overhead
	// over the whole batch, and instances are pipelined over shared rounds.
	ctx := context.Background()
	s, err := byzcons.Open(byzcons.SessionConfig{
		Config: byzcons.Config{N: n, T: t},
		Scenario: byzcons.Scenario{
			Faulty:   []int{2, 5},
			Behavior: byzcons.Equivocator{Victims: []int{6}},
		},
		BatchValues: 32,
		Instances:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	pendings := make([]*byzcons.Pending, 128)
	for i := range pendings {
		cmd := []byte(fmt.Sprintf("command #%03d: transfer %3d tokens from A to B\n", i, i%100))
		if pendings[i], err = s.ProposeAsync(ctx, cmd); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Drain(ctx); err != nil { // flush policy would also get there on its own
		log.Fatal(err)
	}
	first := pendings[0].Wait(ctx)
	st := s.Stats()
	fmt.Printf("\nstreaming session: %d commands decided in %d batches over %d pipelined rounds\n",
		st.Decided, st.Batches, st.Rounds)
	fmt.Printf("per-client decision #0: %q\n", first.Value)
	fmt.Printf("amortized cost: %.0f bits/command (batching shares each generation's broadcast overhead)\n",
		float64(st.Bits)/float64(st.Decided))
}
