// Voting: the paper's electronic-voting motivation (via Fitzi-Hirt): the
// election authorities must agree on the exact set of ballots to tally.
// A collector authority broadcasts the ballot batch with the Section 4
// multi-valued broadcast; the run is repeated with an equivocating Byzantine
// collector to show that the authorities still end up with one common batch
// (consistency) — the property that makes the tally well-defined.
package main

import (
	"bytes"
	"fmt"
	"log"

	"byzcons"
)

// ballot renders a fixed-size mock ballot record.
func ballot(voter int, choice string) []byte {
	return []byte(fmt.Sprintf("ballot{voter:%05d,choice:%-8s}", voter, choice))
}

func main() {
	const n, t = 7, 2
	const collector = 3

	// The ballot batch: 2048 fixed-size ballots (~78 KiB).
	var batch bytes.Buffer
	choices := []string{"alice", "bob", "carol"}
	for v := 0; v < 2048; v++ {
		batch.Write(ballot(v, choices[v%3]))
	}
	value := batch.Bytes()
	L := len(value) * 8

	// Case 1: honest collector.
	res, err := byzcons.Broadcast(
		byzcons.Config{N: n, T: t, Seed: 7},
		collector, value, L,
		byzcons.Scenario{Faulty: []int{0, 6}, Behavior: byzcons.RandomByz{P: 0.3}},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent || !bytes.Equal(res.Value, value) {
		log.Fatal("honest collector: authorities failed to obtain the batch")
	}
	fmt.Printf("honest collector: %d ballots distributed to %d authorities (2 Byzantine)\n", 2048, n)
	fmt.Printf("  traffic: %d bits = %.2fx the batch size (lower bound: %d = (n-1)L)\n",
		res.Bits, float64(res.Bits)/float64(L), (n-1)*L)

	// Case 2: the collector itself is Byzantine and equivocates. The
	// authorities must still agree on ONE batch (possibly a default),
	// so no two authorities ever tally different ballot sets.
	res2, err := byzcons.Broadcast(
		byzcons.Config{N: n, T: t, Seed: 8},
		collector, value, L,
		byzcons.Scenario{Faulty: []int{collector}, Behavior: byzcons.RandomByz{P: 0.5}},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res2.Consistent {
		log.Fatal("Byzantine collector broke consistency — impossible for this protocol")
	}
	outcome := "a single common batch"
	if res2.Defaulted {
		outcome = "the default (collector exposed; tally aborted consistently)"
	}
	fmt.Printf("byzantine collector: authorities still agreed on %s\n", outcome)
	fmt.Printf("  diagnosis stages: %d, isolated: %v\n", res2.DiagnosisRuns, res2.Isolated)
}
