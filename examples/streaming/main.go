// Streaming: a long-lived consensus Session fed by concurrent clients.
//
// Eight producer goroutines propose commands as they "arrive" (a trickle at
// first, then a burst), and nobody ever calls Flush: the session's
// FlushPolicy coalesces queued proposals into long consensus inputs on its
// own — a full cycle of batches when traffic is heavy, or after MaxDelay
// when it is not — so a lone command still decides interactively while a
// burst amortizes the per-generation broadcast overhead across whole
// batches (the paper's O(nL) large-L regime). Per-cycle reports stream live,
// and the run ends with the precise lifecycle: Drain (flush stragglers and
// wait), then Close.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"byzcons"
)

func main() {
	const n, t = 7, 2
	const producers, perProducer = 8, 24

	ctx := context.Background()
	s, err := byzcons.Open(byzcons.SessionConfig{
		Config: byzcons.Config{N: n, T: t, Seed: 1},
		Scenario: byzcons.Scenario{ // two Byzantine equivocators, as always
			Faulty:   []int{2, 5},
			Behavior: byzcons.Equivocator{Victims: []int{6}},
		},
		BatchValues: 16,
		Instances:   4,
		Policy: byzcons.FlushPolicy{
			MaxValues: 64,                   // a full cycle triggers immediately...
			MaxDelay:  2 * time.Millisecond, // ...a straggler waits at most 2ms
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per-cycle observability: one report per flush cycle, as it commits.
	var reports sync.WaitGroup
	reports.Add(1)
	go func() {
		defer reports.Done()
		for rep := range s.Reports() {
			fmt.Printf("cycle %d: %d values in %d batches, %d bits (%.0f bits/value)\n",
				rep.Cycle, rep.Values, len(rep.Batches), rep.Bits,
				float64(rep.Bits)/float64(max(rep.Values, 1)))
		}
	}()

	// A lone command first: nothing else is queued, so only the MaxDelay
	// trigger can flush it — this is the interactive path.
	start := time.Now()
	d, err := s.Propose(ctx, []byte("lone command: create account alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lone command decided in %v: %q\n\n", time.Since(start).Round(time.Millisecond), d.Value)

	// Then the burst: concurrent producers, decisions verified per client.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				cmd := fmt.Sprintf("producer %d command %02d: transfer %d tokens", p, i, (p*perProducer+i)%97)
				d, err := s.Propose(ctx, []byte(cmd))
				if err != nil {
					log.Fatalf("producer %d: %v", p, err)
				}
				if string(d.Value) != cmd {
					log.Fatalf("producer %d: decided %q, want %q", p, d.Value, cmd)
				}
			}
		}(p)
	}
	wg.Wait()

	if err := s.Drain(ctx); err != nil { // flush stragglers and wait for them
		log.Fatal(err)
	}
	st := s.Stats()
	if err := s.Close(); err != nil { // closes the Reports stream too
		log.Fatal(err)
	}
	reports.Wait()

	fmt.Printf("\n%d commands decided in %d batches over %d cycles, %d pipelined rounds\n",
		st.Decided, st.Batches, st.Cycles, st.Rounds)
	fmt.Printf("amortized cost: %.0f bits/command\n", float64(st.Bits)/float64(st.Decided))
}
