// Filestore: the paper's fault-tolerant distributed storage motivation.
// Ten replicas agree on a 64 KiB file blob before committing it; three are
// Byzantine. The example shows where the paper's O(nL) complexity pays off:
// the per-replica traffic stays near 3 file-sizes, an order of magnitude
// under the naive Ω(n²L) approach, and the breakdown shows the L-dependent
// matching data dominating the fixed broadcast overhead for a large value.
package main

import (
	"bytes"
	"fmt"
	"log"

	"byzcons"
)

func main() {
	const n, t = 10, 3
	const size = 64 << 10 // 64 KiB file
	L := size * 8

	// The file every replica fetched from the primary (identical content;
	// consensus certifies it before commit).
	file := make([]byte, size)
	for i := range file {
		file[i] = byte(i*2654435761 ^ i>>8)
	}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = file
	}

	res, err := byzcons.Consensus(
		byzcons.Config{N: n, T: t, Seed: 42},
		inputs, L,
		byzcons.Scenario{
			Faulty:   []int{1, 4, 8},
			Behavior: byzcons.RandomByz{P: 0.3}, // arbitrary corruption attempts
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Consistent || !bytes.Equal(res.Value, file) {
		log.Fatal("commit failed: replicas disagree (this must be impossible)")
	}

	naive := byzcons.PredictNaive(byzcons.NaiveConfig{N: n, T: t}, int64(L))
	fmt.Printf("committed %d KiB file across %d replicas (%d Byzantine)\n", size>>10, n, t)
	fmt.Printf("total traffic:      %d bits = %.1f file sizes\n", res.Bits, float64(res.Bits)/float64(L))
	fmt.Printf("per-replica:        %.1f file sizes\n", float64(res.Bits)/float64(L)/float64(n))
	fmt.Printf("naive bitwise:      %d bits = %.0f file sizes (%.1fx more)\n",
		naive, float64(naive)/float64(L), float64(naive)/float64(res.Bits))
	fmt.Printf("diagnosis stages:   %d (bound %d); isolated replicas: %v\n",
		res.DiagnosisRuns, t*(t+1), res.Isolated)
	fmt.Println("traffic by stage:")
	for _, tag := range []string{"match.sym", "match.M", "check.det", "diag.sym", "diag.trust"} {
		if bits, ok := res.BitsByTag[tag]; ok {
			fmt.Printf("  %-10s %12d bits (%.2f%%)\n", tag, bits, 100*float64(bits)/float64(res.Bits))
		}
	}
}
