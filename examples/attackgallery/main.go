// Attackgallery: runs the full Byzantine attack library against Algorithm 1
// and prints, for each attack, what the diagnosis machinery learned and that
// the error-free guarantees held. It finishes with the contrast experiment:
// the Fitzi-Hirt hash-based baseline visibly failing under hash collisions
// that Algorithm 1 is immune to by construction.
package main

import (
	"bytes"
	"fmt"
	"log"

	"byzcons"
)

func main() {
	const n, t = 7, 2
	value := bytes.Repeat([]byte("byzantine-proof "), 64) // 1 KiB
	L := len(value) * 8
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = value
	}

	attacks := []struct {
		name     string
		faulty   []int
		behavior byzcons.Adversary
	}{
		{"passive (protocol-conformant faults)", []int{2, 5}, nil},
		{"silent (crash)", []int{2, 5}, byzcons.Silent{}},
		{"equivocator", []int{0, 1}, byzcons.Equivocator{Victims: []int{5, 6}}},
		{"match-vector liar", []int{3, 6}, byzcons.MatchLiar{}},
		{"false detector", []int{5, 6}, byzcons.FalseDetector{}},
		{"trust liar", []int{1, 4}, byzcons.Attacks{byzcons.Equivocator{Victims: []int{6}}, byzcons.TrustLiar{}}},
		{"R# symbol liar", []int{0, 2}, byzcons.Attacks{byzcons.Equivocator{Victims: []int{6}}, byzcons.SymbolLiar{}}},
		{"random byzantine (p=0.5)", []int{2, 4}, byzcons.RandomByz{P: 0.5}},
		{"edge-miser (worst case, Theorem 1)", []int{0, 1}, byzcons.EdgeMiser{T: t}},
	}

	fmt.Printf("=== Algorithm 1 under attack (n=%d, t=%d, L=%d bits) ===\n\n", n, t, L)
	for _, a := range attacks {
		cfg := byzcons.Config{N: n, T: t, Lanes: 4, SymBits: 8, Seed: 99}
		res, err := byzcons.Consensus(cfg, inputs, L, byzcons.Scenario{Faulty: a.faulty, Behavior: a.behavior})
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		ok := res.Consistent && !res.Defaulted && bytes.Equal(res.Value, value)
		fmt.Printf("%-38s faulty=%v\n", a.name, a.faulty)
		fmt.Printf("    valid+consistent: %-5v  diagnoses: %2d/%d  isolated: %v  bits: %d\n",
			ok, res.DiagnosisRuns, t*(t+1), res.Isolated, res.Bits)
		if !ok {
			log.Fatal("error-free guarantee violated — impossible")
		}
	}

	// The contrast: hash-based matching (Fitzi-Hirt style) errs on colliding
	// inputs. Two honest camps hold different values; a correct protocol must
	// default. With a 4-bit hash, some seeds collide and break agreement.
	fmt.Println("\n=== Fitzi-Hirt baseline vs hash collisions (honest inputs differ) ===")
	small := bytes.Repeat([]byte{0xAA}, 64)
	large := bytes.Repeat([]byte{0x55}, 64)
	fhInputs := [][]byte{small, large, small, large, small, large, small}
	trials, fhErrs := 150, 0
	for seed := 0; seed < trials; seed++ {
		res, err := byzcons.FitziHirt(byzcons.FHConfig{N: n, T: t, Kappa: 4, Seed: int64(seed)},
			fhInputs, len(small)*8, byzcons.Scenario{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Consistent || !res.Defaulted {
			fhErrs++
		}
	}
	ourErrs := 0
	for seed := 0; seed < trials; seed++ {
		res, err := byzcons.Consensus(byzcons.Config{N: n, T: t, Seed: int64(seed)},
			fhInputs, len(small)*8, byzcons.Scenario{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Consistent || !res.Defaulted {
			ourErrs++
		}
	}
	fmt.Printf("fitzi-hirt (kappa=4): %d/%d runs erred (collision-induced)\n", fhErrs, trials)
	fmt.Printf("algorithm 1 (ours):   %d/%d runs erred — error-free by construction\n", ourErrs, trials)
}
