package byzcons

import "byzcons/internal/adversary"

// Re-exported Byzantine behaviours for fault-injection scenarios. Each
// implements Adversary and may be combined with Attacks{...}. See the
// internal/adversary package for the attack semantics; in short:
//
//   - Equivocator sends conflicting matching-stage symbols to victims,
//   - MatchLiar lies in the broadcast match vectors,
//   - FalseDetector raises spurious inconsistency alarms (and is provably
//     isolated for it, line 3(f)),
//   - TrustLiar broadcasts false accusations in the diagnosis stage,
//   - SymbolLiar re-broadcasts a different symbol than it sent (R# lie),
//   - Silent models crashed processors,
//   - RandomByz fuzzes every faulty message and broadcast bit,
//   - EdgeMiser is the worst-case budget adversary that forces the exact
//     Theorem 1 maximum of T(T+1) diagnosis stages.
type (
	// Equivocator sends corrupted matching-stage symbols to Victims only.
	Equivocator = adversary.Equivocator
	// MatchLiar flips faulty processors' broadcast M-vector entries.
	MatchLiar = adversary.MatchLiar
	// FalseDetector claims Detected=true in clean generations.
	FalseDetector = adversary.FalseDetector
	// TrustLiar falsely accuses every Pmatch member during diagnosis.
	TrustLiar = adversary.TrustLiar
	// SymbolLiar broadcasts corrupted R# symbols during diagnosis.
	SymbolLiar = adversary.SymbolLiar
	// Silent drops all faulty traffic (crash faults).
	Silent = adversary.Silent
	// RandomByz randomly corrupts faulty traffic with probability P.
	RandomByz = adversary.RandomByz
	// EdgeMiser spends exactly one faulty-incident edge per generation,
	// reaching the t(t+1) diagnosis bound of Theorem 1.
	EdgeMiser = adversary.EdgeMiser
)

// Attacks composes several adversaries; each sees the traffic as rewritten
// by the previous one.
type Attacks = adversary.Chain
