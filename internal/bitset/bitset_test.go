package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(100)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("spurious elements")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("remove failed")
	}
	if s.Min() != 0 {
		t.Errorf("Min = %d, want 0", s.Min())
	}
	s.Remove(0)
	if s.Min() != 64 {
		t.Errorf("Min = %d, want 64", s.Min())
	}
}

func TestFullAndSlice(t *testing.T) {
	s := Full(70)
	if s.Count() != 70 {
		t.Fatalf("Full(70).Count() = %d", s.Count())
	}
	sl := s.Slice()
	for i, v := range sl {
		if v != i {
			t.Fatalf("Slice[%d] = %d", i, v)
		}
	}
	if New(0).Min() != -1 {
		t.Error("empty Min != -1")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(10, []int{1, 3, 5, 7})
	b := FromSlice(10, []int{3, 4, 5, 6})
	if got := a.And(b).Slice(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("And = %v", got)
	}
	if got := a.AndNot(b).Slice(); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Errorf("AndNot = %v", got)
	}
	if got := a.Or(b).Count(); got != 6 {
		t.Errorf("Or count = %d", got)
	}
	if !a.And(b).Subset(a) || !a.And(b).Subset(b) {
		t.Error("intersection not subset of operands")
	}
	if a.Subset(b) {
		t.Error("a wrongly subset of b")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
	c := a.Clone()
	c.Add(2)
	if a.Equal(c) || a.Has(2) {
		t.Error("clone aliases original")
	}
}

func TestRemoveThrough(t *testing.T) {
	for _, v := range []int{-1, 0, 5, 63, 64, 65, 99, 150} {
		s := Full(100)
		s.RemoveThrough(v)
		for i := 0; i < 100; i++ {
			want := i > v
			if s.Has(i) != want {
				t.Fatalf("RemoveThrough(%d): Has(%d) = %v, want %v", v, i, s.Has(i), want)
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(10, []int{2, 4, 6})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return i < 4
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 4 {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 5}).String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Has(10) },
		func() { New(5).And(New(6)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on out-of-range")
				}
			}()
			fn()
		}()
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	err := quick.Check(func(raw []uint8) bool {
		n := 130
		var elems []int
		for _, b := range raw {
			elems = append(elems, int(b)%n)
		}
		s := FromSlice(n, elems)
		// Every listed element present; count matches distinct elements.
		distinct := map[int]bool{}
		for _, e := range elems {
			distinct[e] = true
			if !s.Has(e) {
				return false
			}
		}
		if s.Count() != len(distinct) {
			return false
		}
		// Slice is sorted ascending and reconstructs the same set.
		sl := s.Slice()
		for i := 1; i < len(sl); i++ {
			if sl[i-1] >= sl[i] {
				return false
			}
		}
		return FromSlice(n, sl).Equal(s)
	}, &quick.Config{MaxCount: 300, Rand: r})
	if err != nil {
		t.Error(err)
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(130, []int{0, 64, 129})
	s.Clear()
	if !s.Empty() || s.Cap() != 130 {
		t.Fatalf("Clear left %v (cap %d)", s.Slice(), s.Cap())
	}
	s.Add(7)
	if !s.Has(7) || s.Count() != 1 {
		t.Fatal("cleared set not reusable")
	}
}
