// Package bitset provides a small fixed-capacity bit set used for vertex and
// processor sets. Sets are value types backed by a slice; the zero value of
// Set is unusable, construct with New.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a set of small non-negative integers (processor / vertex ids).
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set that can hold elements 0..n-1.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Clear removes every element, keeping the capacity — the allocation-free
// way to reuse a set across generations.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Full returns the set {0, ..., n-1}.
func Full(n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// FromSlice returns a set containing the given elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Cap returns the capacity (maximum element + 1) of the set.
func (s Set) Cap() int { return s.n }

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes i from the set.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Has reports whether i is in the set.
func (s Set) Has(i int) bool {
	s.check(i)
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// And returns the intersection of s and o as a new set.
func (s Set) And(o Set) Set {
	s.mustMatch(o)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] & o.words[i]
	}
	return r
}

// AndNot returns s \ o as a new set.
func (s Set) AndNot(o Set) Set {
	s.mustMatch(o)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] &^ o.words[i]
	}
	return r
}

// Or returns the union of s and o as a new set.
func (s Set) Or(o Set) Set {
	s.mustMatch(o)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] | o.words[i]
	}
	return r
}

// Equal reports whether s and o contain the same elements.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in o.
func (s Set) Subset(o Set) bool {
	s.mustMatch(o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

func (s Set) mustMatch(o Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// RemoveThrough clears all elements <= v, in place.
func (s Set) RemoveThrough(v int) {
	if v < 0 {
		return
	}
	if v >= s.n {
		v = s.n - 1
	}
	word := (v + 1) / 64
	for i := 0; i < word && i < len(s.words); i++ {
		s.words[i] = 0
	}
	if word < len(s.words) {
		if rem := uint(v+1) % 64; rem != 0 {
			s.words[word] &^= (1 << rem) - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Slice returns the elements in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for each element in ascending order; if fn returns false
// iteration stops early.
func (s Set) ForEach(fn func(i int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*64 + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as "{0, 3, 5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
