// Package node is the networked runtime of the consensus stack: it runs the
// unmodified protocol code (internal/consensus, internal/bsb, internal/mvb)
// over encoded messages on a real transport instead of the single-host
// simulator's shared-memory barrier.
//
// Each processor of a deployment gets a runtime that implements sim.Backend:
// the protocol's Exchange and Sync barriers become wire frames (one per peer
// per step, encoded by internal/wire) pushed through a transport.Endpoint,
// and a round synchronizer that completes a step once the matching frame of
// every peer has arrived. Inbound frames arrive through the transport's
// push delivery (transport.Sink) — decoded and routed in the sender's or
// connection reader's context, with one wakeup per completed round — so the
// lock-step hot path crosses no receive queue and no dispatcher goroutine. Frames are demultiplexed into one FIFO per
// (peer, stream): per-peer FIFO order — guaranteed by every transport —
// makes the arrival ordinal within a stream the round identity; the frame
// header's step checksum cross-checks it, and a mismatch aborts the run
// exactly like the simulator's step-misalignment check. Stream 0 carries
// sequential protocol traffic; the speculative generation pipeline runs one
// stream per in-flight generation, and a squashed stream's queue is dropped
// and tombstoned so a peer's stale speculative frames are discarded by tag
// instead of corrupting live rounds.
//
// Byzantine behaviour is injected locally: a faulty node applies the
// configured sim.Adversary to its own outgoing traffic before encoding. The
// adversary therefore sees exactly one processor's outbox per call — the
// node's own — rather than the simulator's global rushing view. Every
// deterministic adversary in the bundled gallery deviates identically under
// both views, which is what makes the cross-backend parity tests exact; an
// adversary that exploits the global view (e.g. one reading honest traffic)
// degrades to its local-knowledge variant here, as it would on a real
// network.
//
// The model realised is the paper's: synchronous rounds over reliable
// authenticated channels, where a Byzantine processor chooses message
// contents but cannot change the round structure. Breaking the framing
// itself — undecodable headers, misaligned step checksums, dropped
// connections — is modelled as a crashed channel and fails the run;
// undecodable payloads inside a well-formed frame degrade to ⊥, mirroring
// the simulator's treatment of garbage adversarial payloads.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"byzcons/internal/metrics"
	"byzcons/internal/obs"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
	"byzcons/internal/wire"
)

// DefaultStepTimeout bounds how long a parked barrier step may go without
// any round completing on the node. In a lock-step protocol a missing peer
// frame means the round can never complete, so once progress stops entirely,
// waiting longer only delays the failure report; while other streams keep
// completing rounds (a speculative fiber waiting out its own squash), the
// timer re-arms instead of failing a live deployment.
const DefaultStepTimeout = 30 * time.Second

// DefaultStallTimeout bounds how long one peer may stay silent — no frame on
// any stream — while a parked round waits on its frame, before the stall
// detector marks the peer down for the cycle. It rides behind the node-wide
// progress timer: the step timeout fires only when the whole node stops
// completing rounds, which a single unresponsive peer can postpone
// indefinitely on a pipelined node (other streams keep re-arming the timer).
// The stall detector attributes the silence to the peer and isolates it for
// the current cycle only — the failure lives in the cycle's inboxes, not the
// persistent router state, so the peer participates again from the next
// epoch. Deliberately below DefaultStepTimeout, and generous enough that a
// compute-bound honest peer on a loaded host is not convicted.
const DefaultStallTimeout = 20 * time.Second

// options configures one processor runtime of one protocol instance.
type options struct {
	id       int
	n        int
	instTag  int // instance for error tagging; -1 = untagged single run
	wireInst int // instance id carried in frames (>= 0)
	faulty   []bool
	adv      sim.Adversary // applied locally when faulty[id]; may be nil
	procSeed int64         // deterministic per-processor seed (simulator derivation)
	procRand *rand.Rand    // protocol randomness (matches the simulator's derivation)
	advRand  *rand.Rand    // local adversary randomness
	meter    *metrics.Meter
	// countRounds marks the one runtime per instance that tallies rounds
	// into the shared meter (every node executes the same barriers, so
	// counting at each would multiply the round count by n).
	countRounds bool
	stepTimeout time.Duration
	// stallTimeout enables the per-peer stall detector (0 = default,
	// negative = disabled); onStall, when set, is notified once per peer the
	// detector isolates (used for the cycle's membership report).
	stallTimeout time.Duration
	onStall      func(peer int)
	// degrade, when > 0, is the graceful-degradation bound: a round missing
	// frames only from peers whose channels are known down completes with
	// synthesized ⊥ frames for up to degrade distinct peers, and transient
	// send failures are tolerated (the frame dies on the severed wire) instead
	// of aborting the run. 0 keeps the strict fail-fast behaviour.
	degrade int
	send    func(to int, data []byte) error
	// sendPrefixed, when non-nil, is the transport's zero-copy write path
	// (transport.PrefixedSender): frames are encoded once into a headroomed
	// buffer that becomes the wire image, with the length prefix back-filled
	// by the transport — no assembly copy per send, and one Sync template
	// buffer serves every peer. Nil when the transport lacks the capability
	// (the bus, which retains sent slices; wrapped endpoints).
	sendPrefixed func(to int, data []byte) error
	// recycleSendBufs enables pooling of encoded frame buffers; set only
	// when the transport does not retain sent slices (Endpoint.Retains).
	recycleSendBufs bool
	// roundWait, if non-nil, records the wall-clock each barrier spends in
	// its round synchronizer (send done, frames awaited) — recorded only at
	// the countRounds runtime, matching the round meter's single-tally
	// convention. Nil-safe (obs no-op receivers).
	roundWait *obs.Histogram
	// inboxDepth, if non-nil, gauges the frames buffered ahead of
	// consumption in the countRounds runtime's inbox (peers running ahead
	// of this node). Approximate across failed cycles: frames a failed run
	// abandoned stay counted until the gauge next moves.
	inboxDepth *obs.Gauge
}

// runtime drives one processor of one protocol instance over a transport.
// It implements sim.Backend; the body's fiber goroutines call Exchange/Sync
// concurrently (one fiber per stream), while the transport's delivery
// context feeds the inbox.
type runtime struct {
	opts  options
	inbox *inbox

	mu     sync.Mutex
	failed error
}

func newRuntime(opts options) *runtime {
	if opts.stepTimeout <= 0 {
		opts.stepTimeout = DefaultStepTimeout
	}
	switch {
	case opts.stallTimeout == 0:
		opts.stallTimeout = DefaultStallTimeout
	case opts.stallTimeout < 0:
		opts.stallTimeout = 0 // disabled
	}
	ib := newInbox(opts.n, opts.id)
	ib.stallTimeout = opts.stallTimeout
	ib.onStall = opts.onStall
	ib.degrade = opts.degrade
	if opts.countRounds {
		ib.depth = opts.inboxDepth
	}
	return &runtime{opts: opts, inbox: ib}
}

// run executes the protocol body at this runtime's processor.
func (rt *runtime) run(body func(*sim.Proc) any) (any, error) {
	p := sim.NewProc(rt.opts.id, rt.opts.n, max(rt.opts.instTag, 0), rt.opts.faulty[rt.opts.id], rt.opts.procSeed, rt.opts.procRand, rt)
	return sim.Invoke(p, body)
}

// errf tags a runtime error with the node; instance attribution is added
// once, by the cluster, when it collects the per-instance errors.
func (rt *runtime) errf(format string, args ...any) error {
	return fmt.Errorf("node %d: %w", rt.opts.id, fmt.Errorf(format, args...))
}

// abortf fails the run and unwinds the body goroutine.
func (rt *runtime) abortf(format string, args ...any) {
	err := rt.errf(format, args...)
	rt.Fail(err)
	sim.AbortRun(err)
}

// Fail implements sim.Backend: it records the failure and unblocks parked
// round synchronizers (the failure may come from another node of the
// instance, via the cluster's failure latch).
func (rt *runtime) Fail(err error) {
	rt.mu.Lock()
	if rt.failed == nil {
		rt.failed = err
	}
	rt.mu.Unlock()
	rt.inbox.fail(err)
}

// FirstHonest implements sim.Backend.
func (rt *runtime) FirstHonest() int {
	for i, f := range rt.opts.faulty {
		if !f {
			return i
		}
	}
	return -1
}

// Squash implements sim.Backend: the stream's queues are dropped, future
// frames for it are discarded by tag, and the fiber's pending or next await
// on it unwinds with a Squashed panic. Squash is local — peers drop the
// stream on their own (identical, deterministic) schedule.
func (rt *runtime) Squash(p, stream int) {
	rt.inbox.squash(stream)
}

// Release implements sim.Backend: a committed stream's (fully drained)
// queues are freed. Unlike Squash it leaves no tombstone — honest peers send
// exactly one frame per step, and a committed stream's steps have all been
// consumed, so nothing more can arrive on it.
func (rt *runtime) Release(p, stream int) {
	rt.inbox.release(stream)
}

// Exchange implements sim.Backend: one point-to-point synchronous round on
// one stream.
func (rt *runtime) Exchange(p, stream int, step sim.StepID, out []sim.Message, meta any) []sim.Message {
	o := &rt.opts
	rt.checkSquashed(stream)
	// Local Byzantine deviation: a faulty node rewrites its own outbox.
	if o.adv != nil && o.faulty[o.id] {
		outs := make([][]sim.Message, o.n)
		outs[o.id] = out
		o.adv.ReworkExchange(&sim.ExchangeCtx{
			Step: step, Instance: max(o.instTag, 0), Stream: stream, N: o.n, Faulty: o.faulty,
			Out: outs, Meta: meta, Rand: o.advRand,
		})
		out = outs[o.id]
	}
	sum := wire.StepSum(string(step))
	byTop := getByTo(o.n)
	byTo := *byTop
	for i := range out {
		m := &out[i]
		m.From = o.id // senders cannot forge their identity (channel model)
		if m.To < 0 || m.To >= o.n || m.To == o.id {
			rt.abortf("step %q: message with bad To=%d", step, m.To)
		}
		if m.Bits < 0 {
			rt.abortf("step %q: negative Bits", step)
		}
		o.meter.Add(m.Tag, m.Bits, o.faulty[o.id])
		byTo[m.To] = append(byTo[m.To], m.Payload)
	}
	f := wire.Frame{Kind: wire.StepExchange, Instance: o.wireInst, Stream: stream, StepSum: sum}
	for j := 0; j < o.n; j++ {
		if j != o.id {
			f.Payloads = byTo[j]
			rt.sendFrame(j, step, &f)
		}
	}
	putByTo(byTop)
	var waitT0 time.Time
	if o.countRounds && o.roundWait != nil {
		waitT0 = time.Now()
	}
	frames := rt.await(stream, step, wire.StepExchange, sum)
	if !waitT0.IsZero() {
		o.roundWait.Record(int64(time.Since(waitT0)))
	}
	total := 0
	for j := 0; j < o.n; j++ {
		if j != o.id {
			total += len(frames[j].Payloads)
		}
	}
	var in []sim.Message
	if total > 0 {
		in = make([]sim.Message, 0, total)
	}
	for j := 0; j < o.n; j++ {
		if j == o.id {
			continue
		}
		for _, pl := range frames[j].Payloads {
			in = append(in, sim.Message{From: j, To: o.id, Payload: pl})
		}
		wire.PutFrame(frames[j])
		frames[j] = nil
	}
	if o.countRounds {
		o.meter.AddRound()
	}
	return in
}

// Sync implements sim.Backend: the ideal all-to-all service becomes an
// all-to-all frame exchange on one stream. Note the weaker guarantee on a
// real network: a Byzantine node could deliver different contributions to
// different peers (the simulator's central delivery makes that impossible),
// so substrates whose correctness leans on consistent Sync delivery — the
// oracle broadcasters — keep their contract here only for deviations that
// rewrite the contribution once, like the bundled gallery's. The error-free
// substrates (EIG, PhaseKing) use Sync solely for zero-bit harness
// alignment.
func (rt *runtime) Sync(p, stream int, step sim.StepID, val any, bits int64, tag string, meta any) []any {
	o := &rt.opts
	rt.checkSquashed(stream)
	if bits < 0 {
		rt.abortf("step %q: negative Bits", step)
	}
	if bits > 0 {
		// The simulator meters contributions as submitted by the
		// protocol-conformant code, before adversarial rewriting.
		o.meter.Add(tag, bits, o.faulty[o.id])
	}
	if o.adv != nil && o.faulty[o.id] {
		vals := make([]any, o.n)
		vals[o.id] = val
		o.adv.ReworkSync(&sim.SyncCtx{
			Step: step, Instance: max(o.instTag, 0), Stream: stream, N: o.n, Faulty: o.faulty,
			Vals: vals, Meta: meta, Rand: o.advRand,
		})
		val = vals[o.id]
	}
	sum := wire.StepSum(string(step))
	// Every peer receives the identical frame (same header, same single
	// contribution payload): encode it once and replicate the bytes, instead
	// of walking the payload encoder n-1 times. On the zero-copy path even
	// the replication disappears — each prefixed send completes before the
	// next starts, so the one template buffer serves all n-1 peers (the
	// back-filled length prefix is identical every time).
	f := wire.Frame{Kind: wire.StepSync, Instance: o.wireInst, Stream: stream, StepSum: sum, Payloads: []any{val}}
	if o.sendPrefixed != nil {
		tmpl, err := f.Append(transport.GetPrefixedBuf())
		if err != nil {
			rt.abortf("step %q: %v", step, err)
		}
		for j := 0; j < o.n; j++ {
			if j != o.id {
				if err := o.sendPrefixed(j, tmpl); err != nil && !rt.sendTolerated(err) {
					rt.abortf("step %q: send to node %d: %v", step, j, err)
				}
			}
		}
		transport.PutBuf(tmpl)
	} else {
		tmpl, err := f.Append(transport.GetBuf())
		if err != nil {
			rt.abortf("step %q: %v", step, err)
		}
		for j := 0; j < o.n; j++ {
			if j != o.id {
				rt.sendRaw(j, step, append(transport.GetBuf(), tmpl...))
			}
		}
		transport.PutBuf(tmpl)
	}
	var waitT0 time.Time
	if o.countRounds && o.roundWait != nil {
		waitT0 = time.Now()
	}
	frames := rt.await(stream, step, wire.StepSync, sum)
	if !waitT0.IsZero() {
		o.roundWait.Record(int64(time.Since(waitT0)))
	}
	vals := make([]any, o.n)
	vals[o.id] = val
	for j := 0; j < o.n; j++ {
		if j == o.id {
			continue
		}
		if len(frames[j].Payloads) == 1 {
			// Any other payload count is Byzantine framing; it degrades to a
			// ⊥ contribution rather than killing the run.
			vals[j] = frames[j].Payloads[0]
		}
		wire.PutFrame(frames[j])
		frames[j] = nil
	}
	if o.countRounds {
		o.meter.AddRound()
	}
	return vals
}

// checkSquashed unwinds the calling fiber before it spends wire bytes on a
// stream its driver has already abandoned. The check is advisory — the
// authoritative unwind happens at await — so the fault-free fast path is a
// single atomic load: a run that never squashed takes no lock here, and a
// barely-raced squash at worst costs one more step of discarded traffic.
func (rt *runtime) checkSquashed(stream int) {
	if !rt.inbox.everSquashed.Load() {
		return
	}
	if rt.inbox.isDead(stream) {
		panic(sim.Squashed{Stream: stream})
	}
}

// byToPool recycles the per-step outgoing payload grouping of the barrier
// hot path. Payload values escape on their own terms; only the containers
// are reused.
var byToPool = sync.Pool{New: func() any { return new([][]any) }}

func getByTo(n int) *[][]any {
	p := byToPool.Get().(*[][]any)
	for cap(*p) < n {
		*p = append((*p)[:cap(*p)], nil)
	}
	*p = (*p)[:n]
	return p
}

func putByTo(p *[][]any) {
	byTo := *p
	for j := range byTo {
		for i := range byTo[j] {
			byTo[j][i] = nil
		}
		byTo[j] = byTo[j][:0]
	}
	byToPool.Put(p)
}

// sendFrame encodes and transmits one step frame, aborting the run on
// unencodable payloads (a protocol bug) or transport failure. Frame buffers
// come from the transport's shared pool: on the zero-copy path the frame is
// encoded behind the transport's prefix headroom and the buffer itself goes
// on the wire (the prefixed send completes synchronously, so the buffer is
// recycled right after); when the transport copies the bytes (plain TCP
// Send), the sender recycles its buffer right after Send; when it moves the
// slice by reference (bus), ownership travels with the frame and the
// receiving router recycles it after decoding — in every case the lock-step
// hot path allocates no frame buffers once the pool is warm.
func (rt *runtime) sendFrame(to int, step sim.StepID, f *wire.Frame) {
	if rt.opts.sendPrefixed != nil {
		data, err := f.Append(transport.GetPrefixedBuf())
		if err != nil {
			rt.abortf("step %q: %v", step, err)
		}
		err = rt.opts.sendPrefixed(to, data)
		transport.PutBuf(data)
		if err != nil && !rt.sendTolerated(err) {
			rt.abortf("step %q: send to node %d: %v", step, to, err)
		}
		return
	}
	data, err := f.Append(transport.GetBuf())
	if err != nil {
		rt.abortf("step %q: %v", step, err)
	}
	rt.sendRaw(to, step, data)
}

// sendRaw transmits pre-encoded frame bytes, recycling the buffer after the
// transport copied it (ownership otherwise travels to the receiving router).
func (rt *runtime) sendRaw(to int, step sim.StepID, data []byte) {
	err := rt.opts.send(to, data)
	if rt.opts.recycleSendBufs {
		transport.PutBuf(data)
	}
	if err != nil && !rt.sendTolerated(err) {
		rt.abortf("step %q: send to node %d: %v", step, to, err)
	}
}

// sendTolerated reports whether a send failure is absorbed under graceful
// degradation: a transient channel loss means the frame died on the severed
// wire — the receiver's round synchronizer attributes the gap to the channel
// — so the sender keeps running instead of aborting its own run.
func (rt *runtime) sendTolerated(err error) bool {
	return rt.opts.degrade > 0 && transport.Transient(err)
}

// await runs the round synchronizer and converts its failures into aborts —
// or, for a squashed stream, into the squash unwind the consensus pipeline
// recovers at the fiber boundary.
func (rt *runtime) await(stream int, step sim.StepID, kind wire.StepKind, sum uint16) []*wire.Frame {
	frames, err := rt.inbox.await(stream, kind, sum, rt.opts.stepTimeout)
	if err == errSquashed {
		panic(sim.Squashed{Stream: stream})
	}
	if err != nil {
		rt.Fail(rt.errf("step %q: %w", step, err))
		rt.mu.Lock()
		failed := rt.failed
		rt.mu.Unlock()
		sim.AbortRun(failed)
	}
	return frames
}

// errSquashed is the inbox's internal signal that an await lost its stream
// to a local squash; the runtime converts it into a sim.Squashed panic.
var errSquashed = errors.New("node: stream squashed")

// peerFault marks a run failure attributable to a broken peer channel rather
// than to this node's own protocol execution — a round that could not
// complete because a peer went down, a degrade bound exceeded, a node killed
// by chaos injection. Under graceful degradation the cluster tolerates
// peer-attributed failures (the node's value goes missing; the instance's
// other nodes keep running) instead of latching them instance-wide.
type peerFault struct{ err error }

func (e *peerFault) Error() string { return e.err.Error() }
func (e *peerFault) Unwrap() error { return e.err }

// isPeerFault reports whether err carries a peerFault anywhere in its chain.
func isPeerFault(err error) bool {
	var pf *peerFault
	return errors.As(err, &pf)
}

// inbox is the runtime's receive side: one FIFO of decoded frames per
// (peer, stream), fed by the transport's delivery context (the sender's
// goroutine on the bus, a connection reader on TCP), consumed by the fibers'
// round synchronizers. Streams are created on demand by either side — a
// fast peer's frames for a stream this node has not opened yet simply
// buffer — and are freed on release (committed streams, fully drained) or
// squash (speculative streams; a tombstone then discards stale frames).
//
// Wakeups are per stream and per completed round: each stream has its own
// condition variable, and push signals it only when the appended frame
// completes the stream's head row. A window of speculative fibers therefore
// costs no thundering herd — a frame arrival wakes at most the one fiber
// whose round it completed.
type inbox struct {
	mu      sync.Mutex
	n       int
	me      int
	streams map[int]*streamQueues
	dead    map[int]bool
	down    []error // per-peer channel failure; frames received first still count
	err     error   // run-level failure (body error latch)
	// delivered counts completed awaits (rounds popped). The step timeout
	// re-arms while it advances: a speculative fiber parked on a stream its
	// peers already abandoned must not fail the run while the node as a
	// whole keeps completing rounds — its driver will squash it as soon as
	// the diagnosing generation commits. A genuine wedge stops all
	// completions, so the timeout still fires within one period of the last
	// progress anywhere on the node.
	delivered uint64
	// pending counts streams created by push that no fiber has awaited yet
	// (see maxPendingStreams).
	pending int
	// everSquashed gates the advisory pre-send squash check: a fault-free
	// run never pays a lock for it.
	everSquashed atomic.Bool
	// Node-wide progress timer: one timer guards every parked await instead
	// of one timer per round (arming/stopping a runtime timer per barrier
	// step was a measurable slice of the round hot path). It is armed while
	// waiters > 0, tracks the last observed progress whenever delivered
	// advanced since the previous check, and marks timedOut — failing every
	// parked await — only when a full step-timeout passes with no round
	// completing anywhere on the node.
	waiters      int
	timer        *time.Timer
	timerSnap    uint64
	timerDur     time.Duration // the step timeout (wedge bound)
	timerPeriod  time.Duration // firing granularity: min(stall, step timeout)
	timerArmed   time.Time     // when the period began (guards stale fires)
	lastProgress time.Time     // when delivered last advanced (at fire granularity)
	timedOut     bool
	// Stall detector (see DefaultStallTimeout): lastSeen stamps each peer's
	// most recent frame on any stream; timer fires at stall granularity and
	// convicts a peer that stayed silent for a full stallTimeout while a
	// parked await was missing exactly its frame. The conviction writes
	// down[peer] — inbox state, hence scoped to this cycle — and notifies
	// onStall for the cycle's membership report.
	stallTimeout time.Duration // 0 = disabled
	onStall      func(peer int)
	lastSeen     []time.Time
	// depth, if non-nil, gauges the frames currently buffered across the
	// inbox's streams (options.inboxDepth; nil-safe).
	depth *obs.Gauge
	// Graceful degradation (options.degrade): a round missing frames only
	// from down peers synthesizes ⊥ frames for them instead of failing, for
	// up to degrade distinct peers. degradedSet/nDegraded track the distinct
	// peers defaulted anywhere in this inbox (the bound and the cycle's
	// attribution report); per-(stream, peer) defaulting lives in
	// streamQueues so frames a peer delivered before breaking still complete
	// their rounds.
	degrade     int
	degradedSet []bool
	nDegraded   int
}

// streamQueues holds one stream's per-peer FIFO queues and the stream's
// round-completion condition variable (sharing the inbox mutex). awaited
// records that a local fiber has attached to the stream; queues created by
// push alone are "pending" and counted against maxPendingStreams.
type streamQueues struct {
	cond *sync.Cond
	fifo [][]*wire.Frame
	// heads is the stream's reusable round buffer: await fills it with the
	// popped head row and the (single) consuming fiber is done with it
	// before its next await on this stream, so it never needs a pool.
	heads []*wire.Frame
	// nonEmpty counts peers whose FIFO currently holds at least one frame;
	// the head row is complete when it reaches n-1, making push's
	// round-completion check O(1).
	nonEmpty int
	// waiting counts fibers currently parked on this stream; the stall
	// detector only examines streams a round is actually blocked on.
	waiting int
	awaited bool
	// pendingCounted marks entries counted in inbox.pending (created by
	// push before any await attached).
	pendingCounted bool
	// defaulted marks peers this stream completes rounds against with
	// synthesized ⊥ frames (graceful degradation). Defaulting is per stream —
	// a down peer's frames buffered on another stream are real traffic and
	// still win — and permanent for the stream: once a round was synthesized
	// at ordinal r, a late frame from the peer would land at the wrong round
	// identity, so push discards the peer's frames for this stream.
	defaulted  []bool
	nDefaulted int
}

// maxPendingStreams bounds how many distinct streams may hold buffered
// frames before any local fiber awaits them. Honest peers run the same
// deterministic pipeline schedule, so they can be ahead of this node by at
// most a couple of windows of stream launches; a peer whose frames span more
// never-awaited streams than that is flooding attacker-chosen tags, which is
// a channel violation and fails loudly (the pre-stream runtime's behaviour
// for out-of-protocol frames) instead of buffering without bound.
const maxPendingStreams = 1024

func newInbox(n, me int) *inbox {
	return &inbox{
		n: n, me: me,
		streams: make(map[int]*streamQueues),
		dead:    make(map[int]bool),
		down:    make([]error, n),
	}
}

// get returns the stream's queues, creating them on demand. Caller holds
// ib.mu and has checked ib.dead.
func (ib *inbox) get(stream int) *streamQueues {
	sq := ib.streams[stream]
	if sq == nil {
		sq = &streamQueues{fifo: make([][]*wire.Frame, ib.n)}
		sq.cond = sync.NewCond(&ib.mu)
		ib.streams[stream] = sq
	}
	return sq
}

// wakeAllLocked wakes every stream's waiter for inbox-wide events (run
// failure, a peer going down). Caller holds ib.mu.
func (ib *inbox) wakeAllLocked() {
	for _, sq := range ib.streams {
		sq.cond.Broadcast()
	}
}

// push appends a frame from the given peer to the stream's queue; frames for
// squashed streams are discarded by tag. It reports false — a channel
// violation attributable to the peer — when the frame would open a stream
// beyond the never-awaited buffering bound.
func (ib *inbox) push(from, stream int, f *wire.Frame) bool {
	if from < 0 || from >= ib.n || from == ib.me {
		return true
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.stallTimeout > 0 && ib.lastSeen != nil {
		// Any frame on any stream is liveness, squashed or not.
		ib.lastSeen[from] = time.Now()
	}
	if ib.dead[stream] {
		return true
	}
	sq := ib.streams[stream]
	if sq == nil {
		if ib.pending >= maxPendingStreams {
			return false
		}
		ib.pending++
		sq = ib.get(stream)
		sq.pendingCounted = true
	}
	if sq.defaulted != nil && sq.defaulted[from] {
		// The stream already synthesized rounds for this peer; a late frame
		// would land at the wrong round ordinal, so it is discarded like a
		// squashed stream's.
		return true
	}
	sq.fifo[from] = append(sq.fifo[from], f)
	ib.depth.Add(1)
	if len(sq.fifo[from]) == 1 {
		sq.nonEmpty++
		if sq.nonEmpty == ib.n-1-sq.nDefaulted {
			// The head row is complete: wake the stream's fiber — one
			// wakeup per completed round.
			sq.cond.Broadcast()
		}
	}
	return true
}

// peerDown marks one peer's channel as broken. It fails only awaits that
// actually depend on that peer: a node that finished its run closes its
// endpoint, and peers one step behind must still complete from the frames
// it delivered first — an EOF from a finished peer is benign until a round
// genuinely misses its frame.
func (ib *inbox) peerDown(peer int, err error) {
	if peer < 0 || peer >= ib.n {
		return
	}
	ib.mu.Lock()
	if ib.down[peer] == nil {
		ib.down[peer] = err
	}
	ib.wakeAllLocked()
	ib.mu.Unlock()
}

// fail makes pending and future awaits return err once frames run short.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.wakeAllLocked()
	ib.mu.Unlock()
}

// squash drops a stream's queues, tombstones it against stale frames, and
// wakes a pending await so it can unwind.
func (ib *inbox) squash(stream int) {
	ib.everSquashed.Store(true)
	ib.mu.Lock()
	if !ib.dead[stream] {
		ib.dead[stream] = true
		sq := ib.streams[stream]
		ib.drop(stream)
		if sq != nil {
			sq.cond.Broadcast()
		}
	}
	ib.mu.Unlock()
}

// release retires a committed stream. Its queues are fully drained (every
// round was consumed, and honest peers send exactly one frame per step), so
// the empty entry is simply left in place: the map stays insert-only on the
// commit path — no delete/re-create churn per generation — and the whole
// inbox is dropped when its instance finishes. Only squash (which must
// tombstone against stale speculative frames) removes entries.
func (ib *inbox) release(stream int) {}

// drop removes a squashed stream's queues. They are deliberately NOT
// recycled: the squashed fiber may still be reading the heads row of its
// last completed round (it learns of the squash only at its next barrier),
// so the queue set goes to the collector with it. Cleanly committed streams
// never come through here — their ids are reused and their retained entries
// continue across incarnations. Caller holds ib.mu.
func (ib *inbox) drop(stream int) {
	if sq := ib.streams[stream]; sq != nil {
		if sq.pendingCounted {
			ib.pending--
		}
		if ib.depth != nil {
			buffered := 0
			for _, q := range sq.fifo {
				buffered += len(q)
			}
			ib.depth.Add(-int64(buffered))
		}
	}
	delete(ib.streams, stream)
}

// isDead reports whether the stream was squashed locally.
func (ib *inbox) isDead(stream int) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.dead[stream]
}

// await blocks until the head of every peer's FIFO for the stream is
// present, then pops and validates the heads against the expected
// (kind, stepsum). Frames already delivered win over a recorded failure — a
// broken peer must not swallow the round its final frames completed.
// Per-(peer, stream) FIFO order makes the arrival ordinal the round
// identity; a head with a mismatched header is protocol divergence and fails
// the round. A local squash of the stream unwinds the await with
// errSquashed.
func (ib *inbox) await(stream int, kind wire.StepKind, sum uint16, timeout time.Duration) ([]*wire.Frame, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.dead[stream] {
		return nil, errSquashed
	}
	sq := ib.get(stream)
	if sq.pendingCounted {
		sq.pendingCounted = false
		ib.pending--
	}
	sq.awaited = true
	parked := false
	defer func() {
		if parked {
			sq.waiting--
			ib.waiters--
			if ib.waiters == 0 && ib.timer != nil {
				ib.timer.Stop()
			}
		}
	}()

	for {
		if ib.dead[stream] {
			return nil, errSquashed
		}
		if sq.nonEmpty == ib.n-1-sq.nDefaulted {
			ib.delivered++
			ib.depth.Add(-int64(ib.n - 1 - sq.nDefaulted))
			if sq.heads == nil {
				sq.heads = make([]*wire.Frame, ib.n)
			}
			heads := sq.heads
			for j := 0; j < ib.n; j++ {
				if j == ib.me {
					continue
				}
				if sq.defaulted != nil && sq.defaulted[j] {
					// A defaulted peer contributes a synthesized payload-free
					// frame: the exact wire image of ⊥ (Sync sees no single
					// payload, Exchange sees no messages), aligned with the
					// round by construction.
					heads[j] = &wire.Frame{Kind: kind, StepSum: sum}
					continue
				}
				f := sq.fifo[j][0]
				sq.fifo[j][0] = nil
				sq.fifo[j] = sq.fifo[j][1:]
				if len(sq.fifo[j]) == 0 {
					sq.nonEmpty--
				}
				if f.Kind != kind || f.StepSum != sum {
					return nil, fmt.Errorf("protocol misalignment with node %d: got (kind %d, sum %#x), want (kind %d, sum %#x)",
						j, f.Kind, f.StepSum, kind, sum)
				}
				heads[j] = f
			}
			return heads, nil
		}
		if ib.err != nil {
			return nil, ib.err
		}
		downMissing, liveMissing := false, false
		var cause error
		for j := 0; j < ib.n; j++ {
			if j == ib.me || len(sq.fifo[j]) > 0 || (sq.defaulted != nil && sq.defaulted[j]) {
				continue
			}
			if ib.down[j] != nil {
				downMissing = true
				if cause == nil {
					cause = ib.down[j]
				}
			} else {
				liveMissing = true
			}
		}
		if downMissing {
			if ib.degrade <= 0 {
				return nil, &peerFault{fmt.Errorf("round cannot complete: %w", cause)}
			}
			// Graceful degradation: default the down peers for this stream —
			// their rounds complete with synthesized ⊥ frames from here on —
			// unless that would exceed the degrade bound. Frames they
			// delivered before breaking were consumed by earlier rounds, so
			// the synthesis starts exactly where their real traffic ended.
			if !ib.defaultDownLocked(sq) {
				return nil, &peerFault{fmt.Errorf("degrade bound %d exceeded: %w", ib.degrade, cause)}
			}
			if !liveMissing {
				continue // the head row is complete now; take the pop path
			}
		}
		if ib.timedOut {
			var missing []int
			for j := 0; j < ib.n; j++ {
				if j != ib.me && len(sq.fifo[j]) == 0 && (sq.defaulted == nil || !sq.defaulted[j]) {
					missing = append(missing, j)
				}
			}
			return nil, fmt.Errorf("no round completed for %v while waiting for frames from nodes %v on stream %d", timeout, missing, stream)
		}
		if !parked {
			parked = true
			sq.waiting++
			ib.waiters++
			if ib.waiters == 1 {
				ib.armTimerLocked(timeout)
			}
		}
		sq.cond.Wait()
	}
}

// defaultDownLocked marks every down peer the stream's head row is missing
// as defaulted for this stream, so its rounds complete with synthesized ⊥
// frames. It reports false — without marking further peers — when defaulting
// would push the count of distinct degraded peers past the bound. Caller
// holds ib.mu.
func (ib *inbox) defaultDownLocked(sq *streamQueues) bool {
	// Check the bound before marking anything: a failed degrade must leave
	// the attribution set untouched (partial marks would misattribute).
	newDistinct := 0
	for j := 0; j < ib.n; j++ {
		if j == ib.me || ib.down[j] == nil || len(sq.fifo[j]) > 0 {
			continue
		}
		if sq.defaulted != nil && sq.defaulted[j] {
			continue
		}
		if ib.degradedSet == nil || !ib.degradedSet[j] {
			newDistinct++
		}
	}
	if ib.nDegraded+newDistinct > ib.degrade {
		return false
	}
	for j := 0; j < ib.n; j++ {
		if j == ib.me || ib.down[j] == nil || len(sq.fifo[j]) > 0 {
			continue
		}
		if sq.defaulted != nil && sq.defaulted[j] {
			continue
		}
		if ib.degradedSet == nil {
			ib.degradedSet = make([]bool, ib.n)
		}
		if !ib.degradedSet[j] {
			ib.degradedSet[j] = true
			ib.nDegraded++
		}
		if sq.defaulted == nil {
			sq.defaulted = make([]bool, ib.n)
		}
		sq.defaulted[j] = true
		sq.nDefaulted++
	}
	return true
}

// degradedPeers returns the distinct peers this inbox completed rounds
// against with synthesized ⊥ frames (the cycle's fault-attribution report).
func (ib *inbox) degradedPeers() []int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	var peers []int
	for j, d := range ib.degradedSet {
		if d {
			peers = append(peers, j)
		}
	}
	return peers
}

// armTimerLocked (re)arms the node-wide progress timer. With the stall
// detector enabled the timer fires at stall granularity (detection within
// one period of the deadline) and the step timeout is judged across fires
// via lastProgress; without it the single period is the step timeout, as
// before. Arming restamps every peer's lastSeen: silence is measured from
// the start of the park window, so a peer idle while this node computed is
// not convicted the moment the node first parks. Caller holds ib.mu.
func (ib *inbox) armTimerLocked(timeout time.Duration) {
	period := timeout
	if ib.stallTimeout > 0 && ib.stallTimeout < period {
		period = ib.stallTimeout
	}
	ib.timerDur = timeout
	ib.timerPeriod = period
	ib.timerSnap = ib.delivered
	now := time.Now()
	ib.timerArmed = now
	ib.lastProgress = now
	if ib.stallTimeout > 0 {
		if ib.lastSeen == nil {
			ib.lastSeen = make([]time.Time, ib.n)
		}
		for j := range ib.lastSeen {
			ib.lastSeen[j] = now
		}
	}
	if ib.timer == nil {
		ib.timer = time.AfterFunc(period, ib.timerFire)
	} else {
		ib.timer.Reset(period)
	}
}

// timerFire is the progress timer callback: track progress while rounds
// complete (live progress elsewhere on the node — typically a speculative
// stream waiting out its own squash), convict individually stalled peers at
// stall granularity, and fail every parked await once a full step timeout
// passes with no progress at all.
func (ib *inbox) timerFire() {
	ib.mu.Lock()
	if ib.waiters == 0 {
		ib.mu.Unlock()
		return
	}
	now := time.Now()
	if remaining := ib.timerPeriod - now.Sub(ib.timerArmed); remaining > 0 {
		// A stale fire: the timer was stopped and re-armed while this
		// callback was blocked on the mutex. The current period has not
		// elapsed — sleep out its remainder instead of judging it early.
		ib.timer.Reset(remaining)
		ib.mu.Unlock()
		return
	}
	if ib.delivered != ib.timerSnap {
		ib.timerSnap = ib.delivered
		ib.lastProgress = now
	}
	if now.Sub(ib.lastProgress) >= ib.timerDur {
		ib.timedOut = true
		ib.wakeAllLocked()
		ib.mu.Unlock()
		return
	}
	var stalled []int
	if ib.stallTimeout > 0 {
		stalled = ib.stallCheckLocked(now)
	}
	ib.timerArmed = now
	ib.timer.Reset(ib.timerPeriod)
	ib.mu.Unlock()
	if ib.onStall != nil {
		for _, peer := range stalled {
			ib.onStall(peer)
		}
	}
}

// stallCheckLocked scans the streams a fiber is parked on for peers whose
// frame the round is missing and who delivered nothing anywhere on the node
// for a full stallTimeout, and marks them down — failing exactly the awaits
// that depend on them, like any other per-peer channel failure, but scoped
// to this inbox and hence to this cycle. Caller holds ib.mu.
func (ib *inbox) stallCheckLocked(now time.Time) []int {
	var stalled []int
	for _, sq := range ib.streams {
		if sq.waiting == 0 || sq.nonEmpty == ib.n-1-sq.nDefaulted {
			continue
		}
		for j := 0; j < ib.n; j++ {
			if j == ib.me || ib.down[j] != nil || len(sq.fifo[j]) > 0 {
				continue
			}
			if now.Sub(ib.lastSeen[j]) >= ib.stallTimeout {
				ib.down[j] = fmt.Errorf("peer %d stalled: no frame for %v while a round waits on it", j, ib.stallTimeout)
				stalled = append(stalled, j)
			}
		}
	}
	if len(stalled) > 0 {
		ib.wakeAllLocked()
	}
	return stalled
}
