// Package node is the networked runtime of the consensus stack: it runs the
// unmodified protocol code (internal/consensus, internal/bsb, internal/mvb)
// over encoded messages on a real transport instead of the single-host
// simulator's shared-memory barrier.
//
// Each processor of a deployment gets a runtime that implements sim.Backend:
// the protocol's Exchange and Sync barriers become wire frames (one per peer
// per step, encoded by internal/wire) pushed through a transport.Endpoint,
// and a round synchronizer that completes step k once the step-k frame of
// every peer has arrived. Per-peer FIFO order — guaranteed by every
// transport — makes the arrival ordinal the round identity; the frame
// header's step checksum cross-checks it, and a mismatch aborts the run
// exactly like the simulator's step-misalignment check.
//
// Byzantine behaviour is injected locally: a faulty node applies the
// configured sim.Adversary to its own outgoing traffic before encoding. The
// adversary therefore sees exactly one processor's outbox per call — the
// node's own — rather than the simulator's global rushing view. Every
// deterministic adversary in the bundled gallery deviates identically under
// both views, which is what makes the cross-backend parity tests exact; an
// adversary that exploits the global view (e.g. one reading honest traffic)
// degrades to its local-knowledge variant here, as it would on a real
// network.
//
// The model realised is the paper's: synchronous rounds over reliable
// authenticated channels, where a Byzantine processor chooses message
// contents but cannot change the round structure. Breaking the framing
// itself — undecodable headers, misaligned step checksums, dropped
// connections — is modelled as a crashed channel and fails the run;
// undecodable payloads inside a well-formed frame degrade to ⊥, mirroring
// the simulator's treatment of garbage adversarial payloads.
package node

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"byzcons/internal/metrics"
	"byzcons/internal/sim"
	"byzcons/internal/wire"
)

// DefaultStepTimeout bounds one barrier step: in a lock-step protocol a
// missing peer frame means the round can never complete, so waiting longer
// only delays the failure report.
const DefaultStepTimeout = 30 * time.Second

// options configures one processor runtime of one protocol instance.
type options struct {
	id       int
	n        int
	instTag  int // instance for error tagging; -1 = untagged single run
	wireInst int // instance id carried in frames (>= 0)
	faulty   []bool
	adv      sim.Adversary // applied locally when faulty[id]; may be nil
	procRand *rand.Rand    // protocol randomness (matches the simulator's derivation)
	advRand  *rand.Rand    // local adversary randomness
	meter    *metrics.Meter
	// countRounds marks the one runtime per instance that tallies rounds
	// into the shared meter (every node executes the same barriers, so
	// counting at each would multiply the round count by n).
	countRounds bool
	stepTimeout time.Duration
	send        func(to int, data []byte) error
}

// runtime drives one processor of one protocol instance over a transport.
// It implements sim.Backend; the body goroutine is the only caller of
// Exchange/Sync, while the node's dispatcher goroutine feeds the inbox.
type runtime struct {
	opts  options
	inbox *inbox

	mu     sync.Mutex
	failed error
}

func newRuntime(opts options) *runtime {
	if opts.stepTimeout <= 0 {
		opts.stepTimeout = DefaultStepTimeout
	}
	return &runtime{opts: opts, inbox: newInbox(opts.n, opts.id)}
}

// run executes the protocol body at this runtime's processor.
func (rt *runtime) run(body func(*sim.Proc) any) (any, error) {
	p := sim.NewProc(rt.opts.id, rt.opts.n, max(rt.opts.instTag, 0), rt.opts.faulty[rt.opts.id], rt.opts.procRand, rt)
	return sim.Invoke(p, body)
}

// errf tags a runtime error with the node; instance attribution is added
// once, by the cluster, when it collects the per-instance errors.
func (rt *runtime) errf(format string, args ...any) error {
	return fmt.Errorf("node %d: %w", rt.opts.id, fmt.Errorf(format, args...))
}

// abortf fails the run and unwinds the body goroutine.
func (rt *runtime) abortf(format string, args ...any) {
	err := rt.errf(format, args...)
	rt.Fail(err)
	sim.AbortRun(err)
}

// Fail implements sim.Backend: it records the failure and unblocks a parked
// round synchronizer (the failure may come from another node of the
// instance, via the cluster's failure latch).
func (rt *runtime) Fail(err error) {
	rt.mu.Lock()
	if rt.failed == nil {
		rt.failed = err
	}
	rt.mu.Unlock()
	rt.inbox.fail(err)
}

// FirstHonest implements sim.Backend.
func (rt *runtime) FirstHonest() int {
	for i, f := range rt.opts.faulty {
		if !f {
			return i
		}
	}
	return -1
}

// Exchange implements sim.Backend: one point-to-point synchronous round.
func (rt *runtime) Exchange(p int, step sim.StepID, out []sim.Message, meta any) []sim.Message {
	o := &rt.opts
	// Local Byzantine deviation: a faulty node rewrites its own outbox.
	if o.adv != nil && o.faulty[o.id] {
		outs := make([][]sim.Message, o.n)
		outs[o.id] = out
		o.adv.ReworkExchange(&sim.ExchangeCtx{
			Step: step, Instance: max(o.instTag, 0), N: o.n, Faulty: o.faulty,
			Out: outs, Meta: meta, Rand: o.advRand,
		})
		out = outs[o.id]
	}
	sum := wire.StepSum(string(step))
	byTo := make([][]any, o.n)
	for i := range out {
		m := &out[i]
		m.From = o.id // senders cannot forge their identity (channel model)
		if m.To < 0 || m.To >= o.n || m.To == o.id {
			rt.abortf("step %q: message with bad To=%d", step, m.To)
		}
		if m.Bits < 0 {
			rt.abortf("step %q: negative Bits", step)
		}
		o.meter.Add(m.Tag, m.Bits, o.faulty[o.id])
		byTo[m.To] = append(byTo[m.To], m.Payload)
	}
	for j := 0; j < o.n; j++ {
		if j != o.id {
			rt.sendFrame(j, step, &wire.Frame{
				Kind: wire.StepExchange, Instance: o.wireInst, StepSum: sum, Payloads: byTo[j],
			})
		}
	}
	frames := rt.await(step, wire.StepExchange, sum)
	var in []sim.Message
	for j := 0; j < o.n; j++ {
		if j == o.id {
			continue
		}
		for _, pl := range frames[j].Payloads {
			in = append(in, sim.Message{From: j, To: o.id, Payload: pl})
		}
	}
	if o.countRounds {
		o.meter.AddRound()
	}
	return in
}

// Sync implements sim.Backend: the ideal all-to-all service becomes an
// all-to-all frame exchange. Note the weaker guarantee on a real network: a
// Byzantine node could deliver different contributions to different peers
// (the simulator's central delivery makes that impossible), so substrates
// whose correctness leans on consistent Sync delivery — the oracle
// broadcasters — keep their contract here only for deviations that rewrite
// the contribution once, like the bundled gallery's. The error-free
// substrates (EIG, PhaseKing) use Sync solely for zero-bit harness
// alignment.
func (rt *runtime) Sync(p int, step sim.StepID, val any, bits int64, tag string, meta any) []any {
	o := &rt.opts
	if bits < 0 {
		rt.abortf("step %q: negative Bits", step)
	}
	if bits > 0 {
		// The simulator meters contributions as submitted by the
		// protocol-conformant code, before adversarial rewriting.
		o.meter.Add(tag, bits, o.faulty[o.id])
	}
	if o.adv != nil && o.faulty[o.id] {
		vals := make([]any, o.n)
		vals[o.id] = val
		o.adv.ReworkSync(&sim.SyncCtx{
			Step: step, Instance: max(o.instTag, 0), N: o.n, Faulty: o.faulty,
			Vals: vals, Meta: meta, Rand: o.advRand,
		})
		val = vals[o.id]
	}
	sum := wire.StepSum(string(step))
	for j := 0; j < o.n; j++ {
		if j != o.id {
			rt.sendFrame(j, step, &wire.Frame{
				Kind: wire.StepSync, Instance: o.wireInst, StepSum: sum, Payloads: []any{val},
			})
		}
	}
	frames := rt.await(step, wire.StepSync, sum)
	vals := make([]any, o.n)
	vals[o.id] = val
	for j := 0; j < o.n; j++ {
		if j != o.id && len(frames[j].Payloads) == 1 {
			// Any other payload count is Byzantine framing; it degrades to a
			// ⊥ contribution rather than killing the run.
			vals[j] = frames[j].Payloads[0]
		}
	}
	if o.countRounds {
		o.meter.AddRound()
	}
	return vals
}

// sendFrame encodes and transmits one step frame, aborting the run on
// unencodable payloads (a protocol bug) or transport failure.
func (rt *runtime) sendFrame(to int, step sim.StepID, f *wire.Frame) {
	data, err := f.Append(nil)
	if err != nil {
		rt.abortf("step %q: %v", step, err)
	}
	if err := rt.opts.send(to, data); err != nil {
		rt.abortf("step %q: send to node %d: %v", step, to, err)
	}
}

// await runs the round synchronizer and converts its failures into aborts.
func (rt *runtime) await(step sim.StepID, kind wire.StepKind, sum uint16) []*wire.Frame {
	frames, err := rt.inbox.await(kind, sum, rt.opts.stepTimeout)
	if err != nil {
		rt.Fail(rt.errf("step %q: %v", step, err))
		rt.mu.Lock()
		failed := rt.failed
		rt.mu.Unlock()
		sim.AbortRun(failed)
	}
	return frames
}

// inbox is the runtime's receive side: per-peer FIFO queues of decoded
// frames, fed by the node's dispatcher, consumed by the round synchronizer.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	me   int
	fifo [][]*wire.Frame
	down []error // per-peer channel failure; frames received first still count
	err  error   // run-level failure (body error latch)
}

func newInbox(n, me int) *inbox {
	ib := &inbox{n: n, me: me, fifo: make([][]*wire.Frame, n), down: make([]error, n)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// push appends a frame from the given peer.
func (ib *inbox) push(from int, f *wire.Frame) {
	if from < 0 || from >= ib.n || from == ib.me {
		return
	}
	ib.mu.Lock()
	ib.fifo[from] = append(ib.fifo[from], f)
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// peerDown marks one peer's channel as broken. It fails only awaits that
// actually depend on that peer: a node that finished its run closes its
// endpoint, and peers one step behind must still complete from the frames
// it delivered first — an EOF from a finished peer is benign until a round
// genuinely misses its frame.
func (ib *inbox) peerDown(peer int, err error) {
	if peer < 0 || peer >= ib.n {
		return
	}
	ib.mu.Lock()
	if ib.down[peer] == nil {
		ib.down[peer] = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// fail makes pending and future awaits return err once frames run short.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// await blocks until the head of every peer's FIFO is present, then pops and
// validates the heads against the expected (kind, stepsum). Frames already
// delivered win over a recorded failure — a broken peer must not swallow the
// round its final frames completed. Per-peer FIFO order makes the arrival
// ordinal the round identity; a head with a mismatched header is protocol
// divergence and fails the round.
func (ib *inbox) await(kind wire.StepKind, sum uint16, timeout time.Duration) ([]*wire.Frame, error) {
	timedOut := false
	timer := time.AfterFunc(timeout, func() {
		ib.mu.Lock()
		timedOut = true
		ib.cond.Broadcast()
		ib.mu.Unlock()
	})
	defer timer.Stop()

	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		ready := true
		for j := 0; j < ib.n; j++ {
			if j != ib.me && len(ib.fifo[j]) == 0 {
				ready = false
				break
			}
		}
		if ready {
			heads := make([]*wire.Frame, ib.n)
			for j := 0; j < ib.n; j++ {
				if j == ib.me {
					continue
				}
				f := ib.fifo[j][0]
				ib.fifo[j][0] = nil
				ib.fifo[j] = ib.fifo[j][1:]
				if f.Kind != kind || f.StepSum != sum {
					return nil, fmt.Errorf("protocol misalignment with node %d: got (kind %d, sum %#x), want (kind %d, sum %#x)",
						j, f.Kind, f.StepSum, kind, sum)
				}
				heads[j] = f
			}
			return heads, nil
		}
		if ib.err != nil {
			return nil, ib.err
		}
		for j := 0; j < ib.n; j++ {
			if j != ib.me && len(ib.fifo[j]) == 0 && ib.down[j] != nil {
				return nil, fmt.Errorf("round cannot complete: %w", ib.down[j])
			}
		}
		if timedOut {
			var missing []int
			for j := 0; j < ib.n; j++ {
				if j != ib.me && len(ib.fifo[j]) == 0 {
					missing = append(missing, j)
				}
			}
			return nil, fmt.Errorf("timed out after %v waiting for frames from nodes %v", timeout, missing)
		}
		ib.cond.Wait()
	}
}
