package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"byzcons/internal/metrics"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
	"byzcons/internal/wire"
)

// Cluster runs protocol deployments over a transport. It is the networked
// counterpart of sim.Run/sim.RunBatch with the same signatures and result
// types, so the consensus engine selects its backend by picking a runner,
// and everything downstream (batching, metrics, decision demux) is untouched.
//
// Every batched run gets a fresh mesh from the factory: transports are cheap
// on loopback, and a fresh mesh guarantees no frame of an aborted run can
// leak into the next. Pipelined instances of one batch share the mesh,
// demultiplexed by the instance id in every frame header.
type Cluster struct {
	factory transport.Factory
	// StepTimeout bounds each barrier step (0 = DefaultStepTimeout).
	StepTimeout time.Duration

	mu        sync.Mutex
	wireStats transport.Stats
}

// NewCluster returns a Cluster building meshes from the given factory.
func NewCluster(f transport.Factory) *Cluster {
	return &Cluster{factory: f}
}

// Kind names the cluster's transport.
func (c *Cluster) Kind() string { return c.factory.Kind() }

// WireStats returns the cumulative encoded-byte accounting of every mesh the
// cluster has run — the measured on-wire cost standing next to the
// protocol-level bit meters.
func (c *Cluster) WireStats() transport.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wireStats
}

// Run executes body at each of cfg.N processors over a fresh mesh, one
// networked node per processor — the Cluster analogue of sim.Run.
func (c *Cluster) Run(cfg sim.RunConfig, body func(p *sim.Proc) any) *sim.RunResult {
	br := c.runBatch(sim.BatchConfig{
		N: cfg.N, Faulty: cfg.Faulty, Adversary: cfg.Adversary, Seed: cfg.Seed, Instances: 1,
	}, false, func(_ int, p *sim.Proc) any { return body(p) })
	ir := br.Instances[0]
	return &sim.RunResult{Values: ir.Values, Meter: ir.Meter, Err: ir.Err}
}

// RunBatch executes cfg.Instances pipelined instances over one fresh mesh —
// the Cluster analogue of sim.RunBatch and the engine's Runner entry point.
func (c *Cluster) RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	return c.runBatch(cfg, true, body)
}

func (c *Cluster) runBatch(cfg sim.BatchConfig, tagged bool, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	b := cfg.Instances
	if b < 1 {
		b = 1
	}
	res := &sim.BatchResult{Instances: make([]sim.InstanceResult, b)}
	for k := range res.Instances {
		res.Instances[k].Meter = metrics.NewMeter()
		res.Instances[k].Values = make([]any, cfg.N)
	}
	failAll := func(err error) *sim.BatchResult {
		res.Err = err
		for k := range res.Instances {
			res.Instances[k].Err = err
		}
		return res
	}

	faulty := make([]bool, cfg.N)
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return failAll(fmt.Errorf("node: faulty id %d out of range [0,%d)", f, cfg.N))
		}
		faulty[f] = true
	}
	// One adversary is shared by all nodes and instances, serialized like in
	// sim.RunBatch. Under the cluster each faulty node applies it to its own
	// traffic, so a stateful adversary observes per-node call streams rather
	// than the simulator's global one; the bundled gallery is stateless.
	var adv sim.Adversary
	if cfg.Adversary != nil {
		adv = sim.LockAdversary(cfg.Adversary)
	}
	eps, err := c.factory.Mesh(cfg.N)
	if err != nil {
		return failAll(fmt.Errorf("node: building %s mesh: %w", c.factory.Kind(), err))
	}

	// One runtime per (instance, node); one dispatcher and one endpoint per
	// node, shared by the node's instances.
	runtimes := make([][]*runtime, b) // [instance][node]
	for k := 0; k < b; k++ {
		instSeed := sim.InstanceSeed(cfg.Seed, k)
		instTag := -1
		if tagged {
			instTag = k
		}
		runtimes[k] = make([]*runtime, cfg.N)
		for i := 0; i < cfg.N; i++ {
			runtimes[k][i] = newRuntime(options{
				id: i, n: cfg.N, instTag: instTag, wireInst: k,
				faulty: faulty, adv: adv,
				procSeed:        sim.ProcSeed(instSeed, i),
				procRand:        sim.LazyRand(sim.ProcSeed(instSeed, i)),
				advRand:         sim.LazyRand(sim.ProcSeed(instSeed^0x5DEECE66D, i)),
				meter:           res.Instances[k].Meter,
				countRounds:     i == 0,
				stepTimeout:     c.StepTimeout,
				send:            eps[i].Send,
				recycleSendBufs: !eps[i].Retains(),
			})
		}
	}

	// failInstance propagates one node's failure to the instance's other
	// nodes: the in-process analogue of the simulator's shared run failure.
	// (Over TCP a crashed node is also detected via its broken connections;
	// the latch just reports the original error instead of a generic EOF.)
	failInstance := func(k int, err error) {
		for _, rt := range runtimes[k] {
			rt.Fail(err)
		}
	}

	// Receive routing: push-capable transports deliver frames synchronously
	// in their own delivery context (the sender's goroutine on the bus, the
	// connection readers on TCP) through a Sink — no dispatcher goroutine,
	// no queue hop, no extra wakeup per frame. Endpoints without push
	// delivery fall back to a per-node dispatcher draining Recv.
	var dispatchers sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		router := &nodeRouter{runtimes: runtimes, node: i}
		if pc, ok := eps[i].(transport.PushCapable); ok {
			pc.SetSink(router)
			continue
		}
		dispatchers.Add(1)
		go func(i int, r *nodeRouter) {
			defer dispatchers.Done()
			c.dispatch(eps[i], r, failInstance)
		}(i, router)
	}

	// Per-node completion gates the endpoint teardown: a node's endpoint
	// must outlive every instance it serves.
	nodeWGs := make([]sync.WaitGroup, cfg.N)
	var instErrs []error = make([]error, b)
	var instMu sync.Mutex
	var bodies sync.WaitGroup
	for k := 0; k < b; k++ {
		for i := 0; i < cfg.N; i++ {
			bodies.Add(1)
			nodeWGs[i].Add(1)
			k, i := k, i
			go func() {
				defer bodies.Done()
				defer nodeWGs[i].Done()
				v, err := runtimes[k][i].run(func(p *sim.Proc) any { return body(k, p) })
				res.Instances[k].Values[i] = v
				if err != nil {
					instMu.Lock()
					if instErrs[k] == nil {
						instErrs[k] = err
					}
					instMu.Unlock()
					failInstance(k, err)
				}
			}()
		}
	}
	for i := 0; i < cfg.N; i++ {
		go func(i int) {
			nodeWGs[i].Wait()
			eps[i].Close()
		}(i)
	}
	bodies.Wait()
	dispatchers.Wait()

	var wireTotal transport.Stats
	for _, ep := range eps {
		ep.Close()
		wireTotal.Add(ep.Stats())
	}
	c.mu.Lock()
	c.wireStats.Add(wireTotal)
	c.mu.Unlock()

	for k := range res.Instances {
		ir := &res.Instances[k]
		ir.Err = instErrs[k]
		if ir.Err != nil && tagged {
			ir.Err = fmt.Errorf("inst %d: %w", k, ir.Err)
		}
		res.Bits += ir.Meter.TotalBits()
		if r := ir.Meter.Rounds(); r > res.Rounds {
			res.Rounds = r
		}
		if ir.Err != nil && res.Err == nil {
			res.Err = ir.Err
		}
	}
	return res
}

// nodeRouter is one node's receive routing: it decodes incoming frames and
// routes them to the owning instance runtime. It implements transport.Sink,
// so push-capable transports invoke it directly from their delivery context;
// the fallback dispatcher drives the same router from a Recv loop. Frames
// whose payloads do not decode degrade to payload-free frames (⊥ messages —
// a legal Byzantine payload); frames whose headers do not decode, unroutable
// instance ids, and broken connections are channel-level violations scoped
// to the offending peer: a round that already holds that peer's frames still
// completes, and only a round genuinely missing one fails. (A finished node
// closes its endpoint, so peers one step behind see a benign EOF after its
// final frames.)
type nodeRouter struct {
	runtimes [][]*runtime
	node     int
}

// PeerDown implements transport.Sink.
func (r *nodeRouter) PeerDown(peer int, err error) {
	err = fmt.Errorf("node %d: %w", r.node, err)
	for k := range r.runtimes {
		r.runtimes[k][r.node].inbox.peerDown(peer, err)
	}
}

// Deliver implements transport.Sink. Frame buffers are returned to the
// transport pool once decoded (the bus hands over the sender's encode
// buffer, TCP its connection reader's read buffer).
func (r *nodeRouter) Deliver(fr transport.Frame) {
	f, err := wire.DecodeFrame(fr.Data)
	if err != nil {
		hdr, hErr := wire.DecodeFrameHeader(fr.Data)
		if hErr != nil {
			transport.PutBuf(fr.Data)
			r.PeerDown(fr.From, fmt.Errorf("undecodable frame from node %d: %w", fr.From, hErr))
			return
		}
		hdr.Payloads = nil
		f = hdr
	}
	transport.PutBuf(fr.Data)
	if f.Instance >= len(r.runtimes) {
		r.PeerDown(fr.From, fmt.Errorf("frame from node %d for unknown instance %d", fr.From, f.Instance))
		return
	}
	if !r.runtimes[f.Instance][r.node].inbox.push(fr.From, f.Stream, f) {
		r.PeerDown(fr.From, fmt.Errorf("node %d floods never-awaited stream tags (stream %d)", fr.From, f.Stream))
	}
}

// dispatch is the fallback receive loop for endpoints without push delivery.
func (c *Cluster) dispatch(ep transport.Endpoint, r *nodeRouter, failInstance func(int, error)) {
	for {
		fr, err := ep.Recv()
		if err == transport.ErrClosed {
			return
		}
		if err != nil {
			var pe *transport.PeerError
			if errors.As(err, &pe) {
				r.PeerDown(pe.Peer, err)
			} else {
				for k := range r.runtimes {
					r.runtimes[k][r.node].Fail(fmt.Errorf("node %d: %w", r.node, err))
				}
			}
			continue
		}
		r.Deliver(fr)
	}
}
