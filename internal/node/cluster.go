package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"byzcons/internal/metrics"
	"byzcons/internal/obs"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
	"byzcons/internal/wire"
)

// Cluster runs protocol deployments over a transport. It is the networked
// counterpart of sim.Run/sim.RunBatch with the same signatures and result
// types, so the consensus engine selects its backend by picking a runner,
// and everything downstream (batching, metrics, decision demux) is untouched.
//
// The transport mesh is persistent: it is dialed once — eagerly via Connect,
// or lazily by the first run — and reused by every subsequent run until
// Close. Cycles are demultiplexed by a monotone global instance id carried in
// every frame header (the epoch tag): each run claims the next contiguous id
// range, per-node routers attach the run's runtimes for exactly those ids,
// and a frame whose id predates the current range is a stale leftover of an
// earlier (possibly aborted) cycle and is dropped by tag instead of being
// fenced off by a mesh teardown.
//
// Sharding generalizes the epoch tag to (shard, epoch): a cluster configured
// with Shards > 1 partitions its instance-id space into per-shard lanes
// (wire.ComposeInstance packs the shard into the id's low bits), each shard
// has its own run serialization, epoch pointer, instance high-water mark and
// observed-down set, and ShardRunner(k) is shard k's runner handle. Runs
// serialize per shard — one epoch per shard owns that shard's id lane at a
// time — while different shards' epochs run concurrently over the one mesh.
// The unsharded cluster is the Shards=1 special case: zero shard bits, so
// its frames are byte-identical to the pre-shard wire format.
type Cluster struct {
	factory transport.Factory
	// Shards is the number of independent shard lanes the cluster routes
	// (0 = 1). Set before Connect or the first run; the mesh resolves it
	// once, like n.
	Shards int
	// StepTimeout bounds each barrier step (0 = DefaultStepTimeout).
	StepTimeout time.Duration
	// StallTimeout bounds how long a peer may stay silent while a round
	// waits on its frame before the stall detector isolates it for the
	// cycle (0 = DefaultStallTimeout; negative = disabled). Unlike the
	// step timeout — which fires only when the whole node stops making
	// progress — a stall is attributed to the silent peer and scoped to the
	// cycle that observed it: the peer rejoins at the next epoch if its
	// channel is healthy.
	StallTimeout time.Duration
	// Obs, if non-nil, is the registry the cluster's runtimes record into:
	// round-sync wait histograms and inbox depth, tallied once per instance
	// (the countRounds runtime). Set before the first run.
	Obs *obs.Registry
	// Tracer, if non-nil and enabled, receives peer lifecycle trace events
	// (down, up, stall) from the per-node routers. Set before Connect.
	Tracer *obs.Tracer

	mu          sync.Mutex
	eps         []transport.Endpoint
	routers     []*nodeRouter
	dead        []bool // nodes hard-killed by Kill, not yet Restarted
	n           int
	shards      int        // resolved shard count (>= 1 once the mesh is up)
	shardBits   uint       // wire.ShardBits(shards)
	runs        []shardRun // per-shard run serialization and id high-water
	meshDials   int
	retired     transport.Stats // accounting of the mesh after Close
	closed      bool
	dispatchers sync.WaitGroup // fallback Recv loops of non-push endpoints
}

// shardRun is one shard's run state: runs within a shard serialize on mu
// (one epoch per shard owns the shard's id lane at a time), and nextInst is
// the shard-local instance-id high-water mark the next epoch claims from.
type shardRun struct {
	mu       sync.Mutex
	nextInst int
}

// NewCluster returns a Cluster building its mesh from the given factory.
func NewCluster(f transport.Factory) *Cluster {
	return &Cluster{factory: f}
}

// Kind names the cluster's transport.
func (c *Cluster) Kind() string { return c.factory.Kind() }

// Connect dials the n-endpoint mesh eagerly so transport failures surface at
// open time rather than at the first run. It is idempotent; a mesh already
// dialed for a different n is an error.
func (c *Cluster) Connect(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connectLocked(n)
}

// connectLocked dials the mesh if the cluster does not hold one yet and
// wires the persistent per-node routers. Caller holds c.mu.
func (c *Cluster) connectLocked(n int) error {
	if c.closed {
		return errors.New("node: cluster closed")
	}
	if c.eps != nil {
		if c.n != n {
			return fmt.Errorf("node: cluster mesh is dialed for n=%d, got a run with n=%d", c.n, n)
		}
		return nil
	}
	if n < 1 {
		return fmt.Errorf("node: mesh needs n >= 1, got %d", n)
	}
	shards := c.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > wire.MaxShards {
		return fmt.Errorf("node: shard count %d out of range [1,%d]", shards, wire.MaxShards)
	}
	eps, err := c.factory.Mesh(n)
	if err != nil {
		return fmt.Errorf("node: building %s mesh: %w", c.factory.Kind(), err)
	}
	c.shards, c.shardBits = shards, wire.ShardBits(shards)
	c.runs = make([]shardRun, shards)
	routers := make([]*nodeRouter, n)
	for i := range routers {
		routers[i] = newNodeRouter(i, n, shards, c.shardBits)
		routers[i].tracer = c.Tracer
		// Receive routing: push-capable transports deliver frames
		// synchronously in their own delivery context (the sender's goroutine
		// on the bus, the connection readers on TCP) through a Sink — no
		// dispatcher goroutine, no queue hop, no extra wakeup per frame.
		// Endpoints without push delivery fall back to a per-node dispatcher
		// draining Recv for the mesh's whole lifetime.
		if pc, ok := eps[i].(transport.PushCapable); ok {
			pc.SetSink(routers[i])
			continue
		}
		c.dispatchers.Add(1)
		go func(ep transport.Endpoint, r *nodeRouter) {
			defer c.dispatchers.Done()
			dispatch(ep, r)
		}(eps[i], routers[i])
	}
	c.eps, c.routers, c.n = eps, routers, n
	c.dead = make([]bool, n)
	c.meshDials++
	return nil
}

// nodeIsolator is the transport capability Kill/Restart need: cutting one
// node off from every peer and restoring it. transport.FaultyFactory
// implements it; a cluster over a bare factory cannot crash nodes.
type nodeIsolator interface {
	IsolateNode(i int)
	HealNode(i int)
}

// Kill hard-crashes one node: its endpoint is isolated from every peer (sends
// fail, deliveries blackhole, peers observe a transient channel loss) and its
// in-memory protocol state is dropped — the runtimes of the cycle in flight,
// if any, fail with a peer-attributed fault, and no body runs at the node in
// later cycles until Restart. The mesh itself stays up: the paper's model
// has no notion of a vanished processor, only one whose channels fell silent,
// and that is exactly what the surviving nodes observe.
func (c *Cluster) Kill(node int) error {
	c.mu.Lock()
	iso, router, err := c.crashTargetLocked("Kill", node)
	if err == nil && c.dead[node] {
		err = fmt.Errorf("node: Kill(%d): node is already dead", node)
	}
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.dead[node] = true
	c.mu.Unlock()
	iso.IsolateNode(node)
	// Drop the node's in-memory state: whatever cycles it is executing —
	// one per shard with an epoch in flight — fail at the node with a
	// peer-attributed fault (tolerated under graceful degradation; the other
	// nodes resolve each shard's cycle against its silence, and each shard's
	// report attributes the crash independently).
	fault := &peerFault{fmt.Errorf("node %d killed (crash injection)", node)}
	for s := range router.epochs {
		if ep := router.epochs[s].Load(); ep != nil {
			for _, rt := range ep.rts {
				rt.Fail(fault)
			}
		}
	}
	return nil
}

// Restart brings a killed node back: its channels are restored (both ends
// observe the recovery), and — per the resync-at-epoch-boundary rule — it
// rejoins as a clean member from the next cycle, with fresh per-cycle state.
// Restarting a node that is not dead is an error.
func (c *Cluster) Restart(node int) error {
	c.mu.Lock()
	iso, _, err := c.crashTargetLocked("Restart", node)
	if err == nil && !c.dead[node] {
		err = fmt.Errorf("node: Restart(%d): node is not dead", node)
	}
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.dead[node] = false
	c.mu.Unlock()
	iso.HealNode(node)
	return nil
}

// crashTargetLocked validates a Kill/Restart target and resolves the
// transport's isolation capability. Caller holds c.mu.
func (c *Cluster) crashTargetLocked(op string, node int) (nodeIsolator, *nodeRouter, error) {
	if c.closed {
		return nil, nil, fmt.Errorf("node: %s(%d): cluster closed", op, node)
	}
	if c.eps == nil {
		return nil, nil, fmt.Errorf("node: %s(%d): no mesh dialed", op, node)
	}
	if node < 0 || node >= c.n {
		return nil, nil, fmt.Errorf("node: %s(%d): node out of range [0,%d)", op, node, c.n)
	}
	iso, ok := c.factory.(nodeIsolator)
	if !ok {
		return nil, nil, fmt.Errorf("node: %s(%d): transport %q cannot isolate nodes (wrap it in a transport.FaultyFactory)", op, node, c.factory.Kind())
	}
	return iso, c.routers[node], nil
}

// MeshDials reports how many times the cluster built a transport mesh — the
// persistent-mesh invariant is that any number of runs over one cluster cost
// exactly one dial.
func (c *Cluster) MeshDials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meshDials
}

// Close tears the mesh down: endpoints close, fallback dispatchers drain,
// and the mesh's wire accounting is retained for WireStats. Close is
// idempotent; runs after Close fail.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	eps, routers := c.eps, c.routers
	// Fold the endpoints' accounting into retired in the same critical
	// section that unlinks them, so a WireStats racing Close never sees the
	// mesh half-gone (no live endpoints, empty retired). Close runs with no
	// cycle in flight, so the counters are quiescent up to teardown noise.
	for _, ep := range eps {
		c.retired.Add(ep.Stats())
	}
	c.eps, c.routers = nil, nil
	c.mu.Unlock()

	// Routers are closed before the endpoints: tearing a mesh down severs
	// every connection, and the remote readers racing it would otherwise
	// register the deliberate shutdown as peer failures.
	for _, r := range routers {
		r.close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	c.dispatchers.Wait()
	return nil
}

// WireStats returns the cumulative encoded-byte accounting of the cluster's
// mesh — the measured on-wire cost standing next to the protocol-level bit
// meters. With the mesh persistent, its Conns counter is flat across cycles:
// connections are established once at dial time, never per flush.
func (c *Cluster) WireStats() transport.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.retired
	for _, ep := range c.eps {
		st.Add(ep.Stats())
	}
	return st
}

// Run executes body at each of cfg.N processors over the persistent mesh,
// one networked node per processor — the Cluster analogue of sim.Run.
func (c *Cluster) Run(cfg sim.RunConfig, body func(p *sim.Proc) any) *sim.RunResult {
	br := c.runBatch(0, sim.BatchConfig{
		N: cfg.N, Faulty: cfg.Faulty, Adversary: cfg.Adversary, Seed: cfg.Seed, Instances: 1,
	}, false, func(_ int, p *sim.Proc) any { return body(p) })
	ir := br.Instances[0]
	return &sim.RunResult{Values: ir.Values, Meter: ir.Meter, Err: ir.Err}
}

// RunBatch executes cfg.Instances pipelined instances as one epoch of shard
// 0 over the persistent mesh — the Cluster analogue of sim.RunBatch and the
// engine's Runner entry point for an unsharded deployment.
func (c *Cluster) RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	return c.runBatch(0, cfg, true, body)
}

// ShardRunner is one shard's runner handle: an engine drives its cycles
// through it, and every cycle runs as an epoch of that shard's id lane.
// Handles of different shards run concurrently over the shared mesh.
type ShardRunner struct {
	c     *Cluster
	shard int
}

// ShardRunner returns the runner handle of shard k (0 <= k < Shards; range
// errors surface as run failures, like every other deployment fault).
func (c *Cluster) ShardRunner(k int) *ShardRunner {
	return &ShardRunner{c: c, shard: k}
}

// RunBatch executes one epoch on the handle's shard.
func (r *ShardRunner) RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	return r.c.runBatch(r.shard, cfg, true, body)
}

func (c *Cluster) runBatch(shard int, cfg sim.BatchConfig, tagged bool, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	b := cfg.Instances
	if b < 1 {
		b = 1
	}
	res := &sim.BatchResult{Instances: make([]sim.InstanceResult, b)}
	for k := range res.Instances {
		res.Instances[k].Meter = metrics.NewMeter()
		res.Instances[k].Values = make([]any, cfg.N)
	}
	failAll := func(err error) *sim.BatchResult {
		res.Err = err
		for k := range res.Instances {
			res.Instances[k].Err = err
		}
		return res
	}

	faulty := make([]bool, cfg.N)
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return failAll(fmt.Errorf("node: faulty id %d out of range [0,%d)", f, cfg.N))
		}
		faulty[f] = true
	}
	// One adversary is shared by all nodes and instances, serialized like in
	// sim.RunBatch. Under the cluster each faulty node applies it to its own
	// traffic, so a stateful adversary observes per-node call streams rather
	// than the simulator's global one; the bundled gallery is stateless.
	var adv sim.Adversary
	if cfg.Adversary != nil {
		adv = sim.LockAdversary(cfg.Adversary)
	}

	// Graceful-degradation bound: at most n-1 peers can ever be defaulted.
	degrade := cfg.DegradePeers
	if degrade >= cfg.N {
		degrade = cfg.N - 1
	}

	c.mu.Lock()
	if err := c.connectLocked(cfg.N); err != nil {
		c.mu.Unlock()
		return failAll(err)
	}
	if shard < 0 || shard >= c.shards {
		c.mu.Unlock()
		return failAll(fmt.Errorf("node: shard %d out of range [0,%d)", shard, c.shards))
	}
	sr := &c.runs[shard]
	shardBits := c.shardBits
	c.mu.Unlock()

	// Per-shard run serialization: one epoch at a time owns this shard's id
	// lane, while other shards' epochs proceed concurrently on the same mesh.
	sr.mu.Lock()
	defer sr.mu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return failAll(errors.New("node: cluster closed"))
	}
	base := sr.nextInst
	sr.nextInst += b
	eps, routers := c.eps, c.routers
	dead := append([]bool(nil), c.dead...)
	c.mu.Unlock()

	// One runtime per (instance, node); the persistent endpoint and router of
	// each node are shared by the node's instances and by every cycle.
	var roundWait *obs.Histogram
	var inboxDepth *obs.Gauge
	if c.Obs != nil {
		roundWait = c.Obs.Histogram("node_round_wait_ns")
		inboxDepth = c.Obs.Gauge("node_inbox_depth")
	}
	// Capability-detect the transport's zero-copy write path once per node.
	// The TCP mesh offers it; the bus (which moves frames by reference) and
	// wrapping transports like FaultyFactory (which must intercept every
	// send) surface only the base Endpoint and fall back to plain Send.
	sendPref := make([]func(int, []byte) error, cfg.N)
	for i, ep := range eps {
		if ps, ok := ep.(transport.PrefixedSender); ok {
			sendPref[i] = ps.SendPrefixed
		}
	}
	runtimes := make([][]*runtime, b) // [instance][node]
	for k := 0; k < b; k++ {
		instSeed := sim.InstanceSeed(cfg.Seed, k)
		instTag := -1
		if tagged {
			instTag = k
		}
		runtimes[k] = make([]*runtime, cfg.N)
		for i := 0; i < cfg.N; i++ {
			router := routers[i]
			runtimes[k][i] = newRuntime(options{
				id: i, n: cfg.N, instTag: instTag,
				wireInst: wire.ComposeInstance(base+k, shard, shardBits),
				faulty:   faulty, adv: adv,
				procSeed:     sim.ProcSeed(instSeed, i),
				procRand:     sim.LazyRand(sim.ProcSeed(instSeed, i)),
				advRand:      sim.LazyRand(sim.ProcSeed(instSeed^0x5DEECE66D, i)),
				meter:        res.Instances[k].Meter,
				countRounds:  i == 0,
				stepTimeout:  c.StepTimeout,
				stallTimeout: c.StallTimeout,
				// Stalls are attributed to the shard whose cycle observed them.
				onStall:         func(peer int) { router.observeStall(shard, peer) },
				degrade:         degrade,
				send:            eps[i].Send,
				sendPrefixed:    sendPref[i],
				recycleSendBufs: !eps[i].Retains(),
				roundWait:       roundWait,
				inboxDepth:      inboxDepth,
			})
		}
	}

	// failInstance propagates one node's failure to the instance's other
	// nodes: the in-process analogue of the simulator's shared run failure.
	// (Over TCP a crashed node is also detected via its broken connections;
	// the latch just reports the original error instead of a generic EOF.)
	failInstance := func(k int, err error) {
		for _, rt := range runtimes[k] {
			rt.Fail(err)
		}
	}

	// Attach this epoch to the persistent routers: incoming frames for the
	// claimed id range route to the fresh runtimes, frames of earlier epochs
	// are discarded by tag, and peer channels already known broken replay
	// into the new inboxes.
	for i := 0; i < cfg.N; i++ {
		rts := make([]*runtime, b)
		for k := 0; k < b; k++ {
			rts[k] = runtimes[k][i]
		}
		routers[i].begin(shard, base, rts)
	}

	var instErrs = make([]error, b)
	var instMu sync.Mutex
	var bodies sync.WaitGroup
	for k := 0; k < b; k++ {
		for i := 0; i < cfg.N; i++ {
			if dead[i] {
				// A hard-killed node runs nothing: its value stays missing and
				// the surviving nodes resolve the cycle against its silence.
				continue
			}
			bodies.Add(1)
			k, i := k, i
			go func() {
				defer bodies.Done()
				v, err := runtimes[k][i].run(func(p *sim.Proc) any { return body(k, p) })
				res.Instances[k].Values[i] = v
				if err != nil {
					if degrade > 0 && isPeerFault(err) {
						// The node's run failed on a broken peer channel (or
						// the node itself was killed): under graceful
						// degradation its value goes missing instead of
						// latching the failure instance-wide.
						return
					}
					instMu.Lock()
					if instErrs[k] == nil {
						instErrs[k] = err
					}
					instMu.Unlock()
					failInstance(k, err)
				}
			}()
		}
	}
	bodies.Wait()
	// Detach the epoch. Honest traffic is fully consumed once every body
	// returned (one frame per peer per step, every step awaited); whatever a
	// failed run left in flight is dropped by the next epoch's base check.
	// Each router also reports which peers it observed down during the cycle;
	// the union is the cycle's membership gap.
	// Nodes killed during the cycle are excluded as observers: a dead node's
	// router saw every channel sever at once, which says nothing about the
	// surviving membership.
	c.mu.Lock()
	deadNow := append([]bool(nil), c.dead...)
	c.mu.Unlock()
	downSet := make([]bool, cfg.N)
	degradedSet := make([]bool, cfg.N)
	for i := range routers {
		down := routers[i].end(shard)
		if dead[i] || deadNow[i] {
			continue
		}
		for _, peer := range down {
			downSet[peer] = true
		}
		for k := 0; k < b; k++ {
			for _, peer := range runtimes[k][i].inbox.degradedPeers() {
				degradedSet[peer] = true
			}
		}
	}
	for peer, d := range downSet {
		if d {
			res.PeersDown = append(res.PeersDown, peer)
		}
	}
	for peer, d := range degradedSet {
		if d {
			res.DegradedPeers = append(res.DegradedPeers, peer)
		}
	}

	for k := range res.Instances {
		ir := &res.Instances[k]
		ir.Err = instErrs[k]
		if ir.Err != nil && tagged {
			ir.Err = fmt.Errorf("inst %d: %w", k, ir.Err)
		}
		res.Bits += ir.Meter.TotalBits()
		if r := ir.Meter.Rounds(); r > res.Rounds {
			res.Rounds = r
		}
		if ir.Err != nil && res.Err == nil {
			res.Err = ir.Err
		}
	}
	return res
}

// routerEpoch is one run's attachment to a node's persistent router: the
// run's claimed global instance id range and the node's runtime per instance.
type routerEpoch struct {
	base int
	rts  []*runtime
}

// peerState is one peer channel's failure state at a router: the current
// failure (nil = healthy) and whether it is permanent. Transient losses —
// dropped connections, injected faults — are cleared by the transport's
// PeerUp once the channel recovers; protocol-level violations (undecodable
// frame headers, unknown instance ids, stream-tag floods, transports'
// permanent demotions) never are.
type peerState struct {
	err       error
	permanent bool
}

// nodeRouter is one node's persistent receive routing: it decodes incoming
// frames and routes them to the owning instance runtime of the current
// epoch. It implements transport.Sink (and transport.RecoverySink), so
// push-capable transports invoke it directly from their delivery context;
// the fallback dispatcher drives the same router from a Recv loop. Frames
// whose payloads do not decode degrade to payload-free frames (⊥ messages —
// a legal Byzantine payload); frames whose headers do not decode, instance
// ids beyond the current epoch's range, and broken connections are
// channel-level violations scoped to the offending peer: a round that
// already holds that peer's frames still completes, and only a round
// genuinely missing one fails. Frames whose instance id predates the current
// epoch are stale leftovers of an earlier cycle and are dropped silently.
//
// Failure scoping: a peer-channel failure is replayed into the inboxes of
// every epoch that begins while it stands — but no further. A transient loss
// cleared by the transport's recovery (PeerUp) leaves the next epoch clean;
// only protocol violations latch forever. Recovery is resynchronized at the
// epoch boundary: a PeerUp never touches the current epoch's inboxes, so a
// rejoining peer participates only from the next instance-id base — there is
// no mid-generation rejoin, preserving the synchronous-round model within
// each epoch.
//
// Shard scoping: epoch attachment, the observed-down set and the stale-frame
// base check are per shard — shard k's epoch routes only frames whose
// composed instance id names shard k, and a fault observed while only shard
// k has a cycle in flight appears in shard k's report alone. The peer
// failure state itself is physical (one channel per peer, shared by every
// shard riding the mesh), so a standing failure replays into whichever
// shard's epoch begins next — each shard attributing the same physical fault
// independently — and a recovery heals it for all shards' future epochs at
// once.
type nodeRouter struct {
	node      int
	n         int
	shardBits uint
	epochs    []atomic.Pointer[routerEpoch] // one per shard; nil between runs
	tracer    *obs.Tracer                   // peer lifecycle events; nil-safe

	mu       sync.Mutex
	peers    []peerState
	fatal    error    // first mesh-fatal (non-peer-attributable) receive failure
	observed [][]bool // [shard][peer] seen down during the shard's current epoch
	closed   bool     // cluster teardown: suppress further lifecycle events
}

func newNodeRouter(node, n, shards int, shardBits uint) *nodeRouter {
	r := &nodeRouter{
		node: node, n: n, shardBits: shardBits,
		epochs: make([]atomic.Pointer[routerEpoch], shards),
		peers:  make([]peerState, n),
	}
	r.observed = make([][]bool, shards)
	for s := range r.observed {
		r.observed[s] = make([]bool, n)
	}
	return r
}

// begin attaches a run's runtimes to one shard of the router and replays the
// currently standing failure state into their fresh inboxes. The epoch is
// published before the failure state is snapshotted: a PeerDown racing begin
// then either lands in the snapshot (replayed below) or sees the stored
// epoch and delivers live — possibly both, which inbox.peerDown's
// first-failure-wins makes idempotent. Snapshot-first would lose a failure
// arriving in between to neither path. The shard's per-epoch observation set
// starts as exactly the replayed failures: a peer healed before the epoch
// began is a clean member of this cycle.
func (r *nodeRouter) begin(shard, base int, rts []*runtime) {
	r.epochs[shard].Store(&routerEpoch{base: base, rts: rts})
	r.mu.Lock()
	down := make([]error, r.n)
	for peer := range r.peers {
		down[peer] = r.peers[peer].err
		r.observed[shard][peer] = down[peer] != nil
	}
	fatal := r.fatal
	r.mu.Unlock()
	for peer, err := range down {
		if err == nil {
			continue
		}
		for _, rt := range rts {
			rt.inbox.peerDown(peer, err)
		}
	}
	if fatal != nil {
		for _, rt := range rts {
			rt.Fail(fatal)
		}
	}
}

// end detaches one shard's current epoch and returns the peers that shard
// observed down during it (for the cycle's membership report); frames
// arriving for the shard until its next begin are stale by definition and
// dropped.
func (r *nodeRouter) end(shard int) []int {
	r.epochs[shard].Store(nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	var down []int
	for peer, seen := range r.observed[shard] {
		if seen {
			down = append(down, peer)
		}
	}
	return down
}

// close suppresses further lifecycle events: the cluster marks every router
// closed before it closes the endpoints, so the connection teardown of a
// deliberate mesh shutdown cannot register as peer failures.
func (r *nodeRouter) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// PeerDown implements transport.Sink. Transient channel losses (per
// transport.Transient) are recoverable — PeerUp clears them — while protocol
// violations latch permanently; either way the failure is delivered to the
// current epoch's inboxes, failing only rounds that genuinely miss the
// peer's frames.
func (r *nodeRouter) PeerDown(peer int, err error) {
	if peer < 0 || peer >= r.n {
		return
	}
	transient := transport.Transient(err)
	err = fmt.Errorf("node %d: %w", r.node, err)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	st := &r.peers[peer]
	switch {
	case st.err == nil:
		st.err, st.permanent = err, !transient
	case !st.permanent && !transient:
		// A permanent conviction upgrades a standing transient failure.
		st.err, st.permanent = err, true
	default:
		err = st.err // the epoch keeps seeing the first failure
	}
	// The fault is physical, so every shard with a cycle in flight observes
	// it (their inboxes receive it below); idle shards' marks are reset from
	// the then-standing failure state when their next epoch begins.
	for s := range r.observed {
		r.observed[s][peer] = true
	}
	r.mu.Unlock()
	if r.tracer.Enabled() {
		kind := "transient"
		if !transient {
			kind = "permanent"
		}
		r.tracer.Emit(obs.Event{Cat: "peer", Name: "down", Node: peer,
			Detail: fmt.Sprintf("at=%d %s: %v", r.node, kind, err)})
	}
	for s := range r.epochs {
		if ep := r.epochs[s].Load(); ep != nil {
			for _, rt := range ep.rts {
				rt.inbox.peerDown(peer, err)
			}
		}
	}
}

// PeerUp implements transport.RecoverySink: a recovered transient failure is
// cleared, so the next epoch begins with the peer as a clean member. The
// current epoch's inboxes are deliberately left untouched — the rejoining
// peer missed rounds this cycle already depends on, so it participates only
// from the next instance-id base (the resync-at-epoch-boundary rule).
func (r *nodeRouter) PeerUp(peer int) {
	if peer < 0 || peer >= r.n {
		return
	}
	r.mu.Lock()
	cleared := !r.closed && !r.peers[peer].permanent && r.peers[peer].err != nil
	if cleared {
		r.peers[peer].err = nil
	}
	r.mu.Unlock()
	if cleared && r.tracer.Enabled() {
		r.tracer.Emit(obs.Event{Cat: "peer", Name: "up", Node: peer,
			Detail: fmt.Sprintf("at=%d reconnected, rejoins next epoch", r.node)})
	}
}

// observeStall records a stall-detector isolation for one shard's cycle
// membership report. The stall is scoped to the inbox that detected it
// (inherently per-cycle, hence per-shard), so unlike PeerDown nothing
// latches in the router: the peer starts the next epoch clean unless its
// channel actually broke.
func (r *nodeRouter) observeStall(shard, peer int) {
	if peer < 0 || peer >= r.n {
		return
	}
	r.mu.Lock()
	stalled := !r.closed
	if stalled {
		r.observed[shard][peer] = true
	}
	r.mu.Unlock()
	if stalled && r.tracer.Enabled() {
		r.tracer.Emit(obs.Event{Cat: "peer", Name: "stall", Node: peer,
			Detail: fmt.Sprintf("at=%d isolated for this cycle", r.node)})
	}
}

// runFail records a mesh-fatal receive failure not attributable to one peer
// and fails every shard's current (and, via begin, every future) epoch
// runtimes: a broken mesh is broken for all shards riding it.
func (r *nodeRouter) runFail(err error) {
	err = fmt.Errorf("node %d: %w", r.node, err)
	r.mu.Lock()
	if r.fatal == nil {
		r.fatal = err
	} else {
		err = r.fatal
	}
	r.mu.Unlock()
	for s := range r.epochs {
		if ep := r.epochs[s].Load(); ep != nil {
			for _, rt := range ep.rts {
				rt.Fail(err)
			}
		}
	}
}

// Deliver implements transport.Sink. Frame buffers are returned to the
// transport pool once decoded (the bus hands over the sender's encode
// buffer, TCP its connection reader's read buffer).
func (r *nodeRouter) Deliver(fr transport.Frame) {
	f, err := wire.DecodeFrame(fr.Data)
	if err != nil {
		hdr, hErr := wire.DecodeFrameHeader(fr.Data)
		if hErr != nil {
			transport.PutBuf(fr.Data)
			r.PeerDown(fr.From, fmt.Errorf("undecodable frame from node %d: %w", fr.From, hErr))
			return
		}
		hdr.Payloads = nil
		f = hdr
	}
	transport.PutBuf(fr.Data)
	inst, shard := wire.SplitInstance(f.Instance, r.shardBits)
	if shard >= len(r.epochs) {
		// The shard field decodes but names no configured shard: a protocol
		// violation by the sender, convicted like an unknown instance id.
		wire.PutFrame(f)
		r.PeerDown(fr.From, fmt.Errorf("frame from node %d for unknown shard %d", fr.From, shard))
		return
	}
	ep := r.epochs[shard].Load()
	if ep == nil || inst < ep.base {
		// Stale: the frame belongs to an earlier epoch of its shard (an
		// aborted run's leftovers, or delivery racing a cycle's teardown).
		// The persistent mesh replaces the old fresh-mesh-per-run fence with
		// this per-shard tag check.
		wire.PutFrame(f)
		return
	}
	k := inst - ep.base
	if k >= len(ep.rts) {
		wire.PutFrame(f)
		r.PeerDown(fr.From, fmt.Errorf("frame from node %d for unknown instance %d (shard %d)", fr.From, f.Instance, shard))
		return
	}
	if !ep.rts[k].inbox.push(fr.From, f.Stream, f) {
		r.PeerDown(fr.From, fmt.Errorf("node %d floods never-awaited stream tags (stream %d)", fr.From, f.Stream))
	}
}

// dispatch is the fallback receive loop for endpoints without push delivery;
// it runs for the mesh's whole lifetime and exits when the endpoint closes.
func dispatch(ep transport.Endpoint, r *nodeRouter) {
	for {
		fr, err := ep.Recv()
		if err == transport.ErrClosed {
			return
		}
		if err != nil {
			var pe *transport.PeerError
			if errors.As(err, &pe) {
				r.PeerDown(pe.Peer, err)
			} else {
				r.runFail(err)
			}
			continue
		}
		r.Deliver(fr)
	}
}
