package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"byzcons/internal/sim"
	"byzcons/internal/transport"
)

// TestClusterShardsRunConcurrently is the load-bearing concurrency proof of
// the shard layer: two shards' epochs rendezvous mid-cycle — every body of
// shard 0 waits for shard 1's cycle to have started and vice versa — which
// can only complete if the cluster runs both epochs at once on the shared
// mesh. Under the old cluster-wide run lock this deadlocks (and fails via
// the timeout); with per-shard serialization both cycles interleave their
// frames on one mesh and still decide correctly.
func TestClusterShardsRunConcurrently(t *testing.T) {
	t.Parallel()
	const n = 3
	c := NewCluster(transport.BusFactory{})
	c.Shards = 2
	defer c.Close()
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	started := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	var once [2]sync.Once
	body := func(shard int) func(int, *sim.Proc) any {
		return func(_ int, p *sim.Proc) any {
			once[shard].Do(func() { close(started[shard]) })
			select {
			case <-started[1-shard]:
			case <-time.After(20 * time.Second):
				return fmt.Errorf("shard %d never saw shard %d start a cycle: shards are serialized", shard, 1-shard)
			}
			return gatherBody(p)
		}
	}

	var wg sync.WaitGroup
	results := make([]*sim.BatchResult, 2)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = c.ShardRunner(s).RunBatch(
				sim.BatchConfig{N: n, Seed: int64(100 + s), Instances: 2}, body(s))
		}(s)
	}
	wg.Wait()

	for s, res := range results {
		if res.Err != nil {
			t.Fatalf("shard %d: %v", s, res.Err)
		}
		for k, ir := range res.Instances {
			for i, v := range ir.Values {
				if err, ok := v.(error); ok {
					t.Fatalf("shard %d inst %d node %d: %v", s, k, i, err)
				}
				// gatherBody at n=3: every node's exchange sum is 0+1+2,
				// the sync total 3*3.
				if v != int64(9) {
					t.Errorf("shard %d inst %d node %d = %v, want 9", s, k, i, v)
				}
			}
		}
	}
	if d := c.MeshDials(); d != 1 {
		t.Errorf("two concurrent shard cycles dialed %d meshes, want 1", d)
	}
}

// TestClusterShardRunnerOutOfRange pins that a runner handle outside the
// configured shard count fails the run instead of corrupting routing state.
func TestClusterShardRunnerOutOfRange(t *testing.T) {
	t.Parallel()
	c := NewCluster(transport.BusFactory{})
	c.Shards = 2
	defer c.Close()
	res := c.ShardRunner(2).RunBatch(sim.BatchConfig{N: 3, Seed: 1, Instances: 1},
		func(_ int, p *sim.Proc) any { return gatherBody(p) })
	if res.Err == nil {
		t.Fatal("out-of-range shard runner must fail the run")
	}
}

// TestClusterShardedEpochsMatchUnsharded pins that a shard's consecutive
// epochs behave exactly like an unsharded cluster's: same results run after
// run, with per-shard instance ids advancing independently.
func TestClusterShardedEpochsMatchUnsharded(t *testing.T) {
	t.Parallel()
	const n = 4
	c := NewCluster(transport.BusFactory{})
	c.Shards = 3
	defer c.Close()
	for cycle := 0; cycle < 3; cycle++ {
		for s := 0; s < 3; s++ {
			res := c.ShardRunner(s).RunBatch(sim.BatchConfig{N: n, Seed: 7, Instances: 1},
				func(_ int, p *sim.Proc) any { return gatherBody(p) })
			if res.Err != nil {
				t.Fatalf("cycle %d shard %d: %v", cycle, s, res.Err)
			}
			for i, v := range res.Instances[0].Values {
				if v != int64(24) {
					t.Errorf("cycle %d shard %d node %d = %v, want 24", cycle, s, i, v)
				}
			}
		}
	}
	if d := c.MeshDials(); d != 1 {
		t.Errorf("9 shard cycles dialed %d meshes, want 1", d)
	}
}
