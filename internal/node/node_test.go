package node

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/consensus"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
)

func factories() map[string]transport.Factory {
	return map[string]transport.Factory{
		"bus": transport.BusFactory{},
		"tcp": transport.TCPFactory{Options: transport.TCPOptions{SetupTimeout: 10 * time.Second}},
	}
}

// gatherBody is a minimal protocol exercising both barrier primitives.
func gatherBody(p *sim.Proc) any {
	var out []sim.Message
	for j := 0; j < p.N; j++ {
		if j != p.ID {
			out = append(out, sim.Message{To: j, Payload: []byte{byte(p.ID)}, Bits: 8, Tag: "x"})
		}
	}
	in := p.Exchange("gather/ex", out, nil)
	sum := p.ID
	for _, m := range in {
		if b, ok := m.Payload.([]byte); ok && len(b) == 1 {
			sum += int(b[0])
		}
	}
	vals := p.Sync("gather/sync", int64(sum), 4, "y", nil)
	total := int64(0)
	for _, v := range vals {
		if x, ok := v.(int64); ok {
			total += x
		}
	}
	return total
}

func TestClusterRunsBarrierProtocol(t *testing.T) {
	t.Parallel()
	for kind, f := range factories() {
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			const n = 4
			c := NewCluster(f)
			defer c.Close()
			res := c.Run(sim.RunConfig{N: n, Seed: 7}, gatherBody)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			// Every node's exchange sum is 0+1+2+3 = 6; sync totals 4*6.
			for i, v := range res.Values {
				if v != int64(24) {
					t.Errorf("node %d = %v, want 24", i, v)
				}
			}
			if bits := res.Meter.TotalBits(); bits != int64(n*(n-1)*8+n*4) {
				t.Errorf("metered %d bits, want %d", bits, n*(n-1)*8+n*4)
			}
			if r := res.Meter.Rounds(); r != 2 {
				t.Errorf("rounds = %d, want 2", r)
			}
			st := c.WireStats()
			if st.FramesSent != int64(2*n*(n-1)) || st.BytesSent == 0 {
				t.Errorf("wire stats = %+v, want %d frames", st, 2*n*(n-1))
			}
		})
	}
}

// consensusOutputs runs Algorithm 1 at every processor over the given
// backend and returns the per-processor outputs plus the run result.
func consensusOutputs(t *testing.T, run func(sim.RunConfig, func(*sim.Proc) any) *sim.RunResult,
	par consensus.Params, inputs [][]byte, L int, faulty []int, adv sim.Adversary, seed int64) *sim.RunResult {
	t.Helper()
	res := run(sim.RunConfig{N: par.N, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return consensus.Run(p, par, inputs[p.ID], L)
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestClusterTCPMatchesSimulatorEquivocator is the canonical cross-backend
// check: an n=4, t=1 deployment with one Equivocator node over real loopback
// TCP must decide exactly what the simulator decides — value, generations,
// diagnosis activity, graph and metered traffic, since the Equivocator's
// deviation is deterministic and local.
func TestClusterTCPMatchesSimulatorEquivocator(t *testing.T) {
	t.Parallel()
	const n, tFaults, L = 4, 1, 1024
	par := consensus.Params{N: n, T: tFaults, BSB: bsb.EIG}
	val := bytes.Repeat([]byte{0xC3}, L/8)
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = val
	}
	faulty := []int{1}
	adv := adversary.Equivocator{}

	simRes := consensusOutputs(t, sim.Run, par, inputs, L, faulty, adv, 42)
	c := NewCluster(transport.TCPFactory{Options: transport.TCPOptions{SetupTimeout: 10 * time.Second}})
	defer c.Close()
	netRes := consensusOutputs(t, c.Run, par, inputs, L, faulty, adv, 42)

	for i := 0; i < n; i++ {
		if i == 1 {
			continue // faulty node's local view is not specified
		}
		so := simRes.Values[i].(*consensus.Output)
		no := netRes.Values[i].(*consensus.Output)
		if !bytes.Equal(so.Value, no.Value) || so.Defaulted != no.Defaulted {
			t.Errorf("node %d decided %x/%v over TCP, simulator decided %x/%v",
				i, no.Value, no.Defaulted, so.Value, so.Defaulted)
		}
		if so.Generations != no.Generations || so.DiagnosisRuns != no.DiagnosisRuns {
			t.Errorf("node %d: gens/diags %d/%d over TCP, %d/%d simulated",
				i, no.Generations, no.DiagnosisRuns, so.Generations, so.DiagnosisRuns)
		}
		if !so.Graph.Equal(no.Graph) {
			t.Errorf("node %d: diagnosis graphs diverge:\n tcp %v\n sim %v", i, no.Graph, so.Graph)
		}
		if !bytes.Equal(no.Value, val) {
			t.Errorf("node %d decided %x, want the common input", i, no.Value)
		}
	}
	if sb, nb := simRes.Meter.TotalBits(), netRes.Meter.TotalBits(); sb != nb {
		t.Errorf("metered bits diverge: %d over TCP, %d simulated", nb, sb)
	}
	if sr, nr := simRes.Meter.Rounds(), netRes.Meter.Rounds(); sr != nr {
		t.Errorf("rounds diverge: %d over TCP, %d simulated", nr, sr)
	}
	// Wire traffic happened and is accounted. (The encoded-vs-metered 2x
	// bound is asserted at root level in the paper's large-L regime — at
	// L=1024 and n=4 the per-frame headers dominate the tiny payloads.)
	st := c.WireStats()
	if st.BytesSent == 0 || st.BytesRecv != st.BytesSent {
		t.Errorf("wire accounting inconsistent: %+v", st)
	}
}

// TestClusterMatchesSimulatorPerTagMeters pins the strongest available
// equivalence on the bus transport: identical per-tag traffic tallies.
func TestClusterMatchesSimulatorPerTagMeters(t *testing.T) {
	t.Parallel()
	const n, tFaults, L = 5, 1, 512
	par := consensus.Params{N: n, T: tFaults, BSB: bsb.PhaseKing}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0x5A}, L/8)
	}
	simRes := consensusOutputs(t, sim.Run, par, inputs, L, []int{2}, adversary.Equivocator{}, 9)
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	netRes := consensusOutputs(t, c.Run, par, inputs, L, []int{2}, adversary.Equivocator{}, 9)

	simTags := simRes.Meter.Snapshot()
	netTags := netRes.Meter.Snapshot()
	if len(simTags) != len(netTags) {
		t.Fatalf("tag sets diverge: sim %v, cluster %v", simTags, netTags)
	}
	for tag, st := range simTags {
		if nt := netTags[tag]; nt != st {
			t.Errorf("tag %q: cluster %+v, sim %+v", tag, nt, st)
		}
	}
}

func TestClusterRunBatchPipelinesInstances(t *testing.T) {
	t.Parallel()
	const n, instances = 4, 3
	par := consensus.Params{N: n, T: 1}
	inputs := make([][]byte, instances)
	for k := range inputs {
		inputs[k] = bytes.Repeat([]byte{byte(0x10 + k)}, 32)
	}
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	res := c.RunBatch(sim.BatchConfig{N: n, Faulty: []int{3}, Adversary: adversary.Equivocator{}, Seed: 5, Instances: instances},
		func(inst int, p *sim.Proc) any {
			return consensus.Run(p, par, inputs[inst], len(inputs[inst])*8)
		})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for k := 0; k < instances; k++ {
		ir := res.Instances[k]
		for i := 0; i < n; i++ {
			if i == 3 {
				continue
			}
			out := ir.Values[i].(*consensus.Output)
			if !bytes.Equal(out.Value, inputs[k]) {
				t.Errorf("inst %d node %d decided %x, want %x", k, i, out.Value, inputs[k])
			}
		}
		if ir.Meter.TotalBits() == 0 || ir.Meter.Rounds() == 0 {
			t.Errorf("inst %d has empty meter", k)
		}
	}
	// Pipelined rounds: the max, not the sum.
	if res.Rounds != res.Instances[0].Meter.Rounds() {
		t.Errorf("batch rounds = %d, want per-instance max %d", res.Rounds, res.Instances[0].Meter.Rounds())
	}
}

func TestClusterBodyErrorFailsOnlyItsInstance(t *testing.T) {
	t.Parallel()
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	c.StepTimeout = 5 * time.Second
	res := c.RunBatch(sim.BatchConfig{N: 3, Seed: 5, Instances: 3}, func(inst int, p *sim.Proc) any {
		if inst == 0 && p.ID == 1 {
			panic("boom")
		}
		p.Sync("s", int64(p.ID), 1, "g", nil)
		return int64(p.ID)
	})
	if res.Err == nil {
		t.Fatal("expected batch error from failing instance")
	}
	if res.Instances[1].Err != nil || res.Instances[2].Err != nil {
		t.Errorf("healthy instances failed: %v / %v", res.Instances[1].Err, res.Instances[2].Err)
	}
	if err := res.Instances[0].Err; err == nil || !strings.Contains(err.Error(), "inst 0") {
		t.Errorf("failing instance error not tagged: %v", err)
	}
	for k := 1; k < 3; k++ {
		for id, v := range res.Instances[k].Values {
			if v != int64(id) {
				t.Errorf("inst %d lost values: %v", k, res.Instances[k].Values)
			}
		}
	}
}

func TestClusterDivergentNodeFailsRun(t *testing.T) {
	t.Parallel()
	for kind, f := range factories() {
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			c := NewCluster(f)
			defer c.Close()
			c.StepTimeout = 2 * time.Second
			res := c.Run(sim.RunConfig{N: 3, Seed: 1}, func(p *sim.Proc) any {
				if p.ID == 2 {
					return "left early" // never joins the round
				}
				p.Exchange("r1", nil, nil)
				return "done"
			})
			if res.Err == nil {
				t.Fatal("run with a divergent node reported no error")
			}
		})
	}
}

func TestClusterStepMismatchIsDetected(t *testing.T) {
	t.Parallel()
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	c.StepTimeout = 5 * time.Second
	res := c.Run(sim.RunConfig{N: 2, Seed: 1}, func(p *sim.Proc) any {
		if p.ID == 0 {
			p.Exchange("stepA", nil, nil)
		} else {
			p.Exchange("stepB", nil, nil)
		}
		return nil
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "misalignment") {
		t.Fatalf("step mismatch not detected: %v", res.Err)
	}
}

// TestClusterSeedsMatchSimulator pins that per-processor randomness derives
// identically under both backends, which the parity tests depend on.
func TestClusterSeedsMatchSimulator(t *testing.T) {
	t.Parallel()
	body := func(p *sim.Proc) any {
		draw := int64(p.Rand.Intn(1 << 30))
		vals := p.Sync("draw", draw, 0, "g", nil)
		out := make([]int64, len(vals))
		for i, v := range vals {
			out[i], _ = v.(int64)
		}
		return fmt.Sprintf("%v", out)
	}
	simRes := sim.Run(sim.RunConfig{N: 3, Seed: 77}, body)
	netRes := NewCluster(transport.BusFactory{}).Run(sim.RunConfig{N: 3, Seed: 77}, body)
	if simRes.Err != nil || netRes.Err != nil {
		t.Fatal(simRes.Err, netRes.Err)
	}
	for i := range simRes.Values {
		if simRes.Values[i] != netRes.Values[i] {
			t.Errorf("node %d draws diverge: sim %v, cluster %v", i, simRes.Values[i], netRes.Values[i])
		}
	}
}

// TestClusterGarbagePayloadDegradesToBot: a frame with a well-formed header
// but undecodable payloads must deliver as ⊥, not kill the run — it is a
// legal Byzantine payload.
func TestClusterGarbagePayloadDegradesToBot(t *testing.T) {
	t.Parallel()
	// Simulated via an adversary submitting a payload that round-trips to
	// nil contributions: faulty node sends a struct the codec rejects. The
	// sender aborts on unencodable payloads (protocol bug guard), so model
	// the garbage at the decode side instead: an adversary that replaces the
	// sync contribution with nil, the canonical ⊥.
	var sawNil atomic.Bool
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	res := c.Run(sim.RunConfig{N: 3, Faulty: []int{0}, Seed: 3,
		Adversary: adversary.Func{Sync: func(ctx *sim.SyncCtx) {
			ctx.Vals[0] = nil
		}}},
		func(p *sim.Proc) any {
			vals := p.Sync("s", int64(p.ID), 1, "g", nil)
			if vals[0] == nil {
				sawNil.Store(true)
			}
			return nil
		})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !sawNil.Load() {
		t.Error("nil contribution was not delivered as ⊥")
	}
}

// TestClusterMeshPersistsAcrossRuns pins the persistent-mesh contract: any
// number of runs over one cluster cost exactly one mesh dial, successive
// cycles are demultiplexed by the global instance id, and the connection
// counter stays flat — no re-dial between cycles.
func TestClusterMeshPersistsAcrossRuns(t *testing.T) {
	t.Parallel()
	for kind, f := range factories() {
		kind, f := kind, f
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			const n, runs = 4, 3
			c := NewCluster(f)
			defer c.Close()
			if err := c.Connect(n); err != nil {
				t.Fatal(err)
			}
			connsAtDial := c.WireStats().Conns
			for r := 0; r < runs; r++ {
				res := c.RunBatch(sim.BatchConfig{N: n, Seed: int64(r + 1), Instances: 2},
					func(inst int, p *sim.Proc) any { return gatherBody(p) })
				if res.Err != nil {
					t.Fatalf("run %d: %v", r, res.Err)
				}
				for k := range res.Instances {
					for i, v := range res.Instances[k].Values {
						if v != int64(24) {
							t.Errorf("run %d inst %d node %d = %v, want 24", r, k, i, v)
						}
					}
				}
				if conns := c.WireStats().Conns; conns != connsAtDial {
					t.Fatalf("run %d grew the connection counter %d -> %d: mesh was re-dialed", r, connsAtDial, conns)
				}
			}
			if dials := c.MeshDials(); dials != 1 {
				t.Errorf("%d mesh dials across %d runs, want exactly 1", dials, runs)
			}
			if kind == "tcp" {
				if conns := c.WireStats().Conns; conns != int64(n*(n-1)) {
					t.Errorf("connection counter = %d, want %d", conns, n*(n-1))
				}
			}
		})
	}
}

// TestClusterStaleFramesOfAbortedRunAreDropped: a run that aborts mid-round
// leaves frames in flight; the next run over the same mesh must drop them by
// epoch tag and complete normally — the persistent-mesh replacement for the
// old fresh-mesh-per-run fence.
func TestClusterStaleFramesOfAbortedRunAreDropped(t *testing.T) {
	t.Parallel()
	for kind, f := range factories() {
		kind, f := kind, f
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			const n = 3
			c := NewCluster(f)
			defer c.Close()
			c.StepTimeout = 5 * time.Second
			// Round 1 completes everywhere; node 2 then dies, so nodes 0 and
			// 1 send round-2 frames (to node 2 among others) that no await
			// will ever consume before the failure latch aborts them.
			res := c.Run(sim.RunConfig{N: n, Seed: 1}, func(p *sim.Proc) any {
				var out []sim.Message
				for j := 0; j < n; j++ {
					if j != p.ID {
						out = append(out, sim.Message{To: j, Payload: []byte{byte(p.ID)}, Bits: 8, Tag: "x"})
					}
				}
				p.Exchange("r1", out, nil)
				if p.ID == 2 {
					panic("die between rounds")
				}
				p.Exchange("r2", out, nil)
				return "done"
			})
			if res.Err == nil {
				t.Fatal("aborted run reported no error")
			}
			// The same mesh must now carry a clean run end to end: whatever
			// the aborted epoch left in flight is discarded by tag.
			res = c.Run(sim.RunConfig{N: n, Seed: 2}, gatherBody)
			if res.Err != nil {
				t.Fatalf("%s: clean run after aborted run failed: %v", kind, res.Err)
			}
			for i, v := range res.Values {
				// gatherBody at n=3: per-node exchange sum 0+1+2 = 3, synced
				// total 3 x 3 = 9.
				if v != int64(9) {
					t.Errorf("node %d = %v after recovery, want 9", i, v)
				}
			}
			if dials := c.MeshDials(); dials != 1 {
				t.Errorf("recovery re-dialed the mesh (%d dials)", dials)
			}
		})
	}
}
