package node

import (
	"bytes"
	goruntime "runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"byzcons/internal/bsb"
	"byzcons/internal/consensus"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
)

// degradedBatch runs one single-instance consensus cycle with graceful
// degradation enabled at the model bound (up to par.T peers defaulted).
func degradedBatch(par consensus.Params, inputs [][]byte, L int, seed int64, c *Cluster) *sim.BatchResult {
	return c.RunBatch(sim.BatchConfig{N: par.N, Seed: seed, Instances: 1, DegradePeers: par.T},
		func(_ int, p *sim.Proc) any {
			return consensus.Run(p, par, inputs[p.ID], L)
		})
}

// requireLiveAgreement asserts that every node outside skip produced an
// output and that those outputs agree bit for bit — the degraded-cycle
// contract: decisions or attributed defaults, never divergence.
func requireLiveAgreement(t *testing.T, label string, res *sim.BatchResult, skip int) {
	t.Helper()
	var ref *consensus.Output
	for i, v := range res.Instances[0].Values {
		if i == skip {
			continue
		}
		o, ok := v.(*consensus.Output)
		if !ok || o == nil {
			t.Fatalf("%s: live node %d produced no output (%v)", label, i, v)
		}
		if ref == nil {
			ref = o
			continue
		}
		if !bytes.Equal(ref.Value, o.Value) || ref.Defaulted != o.Defaulted {
			t.Errorf("%s: live node %d decided %x/%v, others %x/%v",
				label, i, o.Value, o.Defaulted, ref.Value, ref.Defaulted)
		}
	}
}

// TestClusterPartitionMinorityDegrades is the graceful-degradation
// acceptance test: a partition isolating a single node (within the t-bound)
// must not stall the cycle — the surviving majority completes it well inside
// the stall budget, attributes the isolated node in the degradation report,
// and after the heal the cluster is bit-identical to the simulator again.
// Not parallel: it brackets the cluster's lifetime with a goroutine-leak
// check, which needs a quiet package.
func TestClusterPartitionMinorityDegrades(t *testing.T) {
	const n, tFaults, L = 4, 1, 256
	par := consensus.Params{N: n, T: tFaults, BSB: bsb.EIG}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0xA5}, L/8)
	}

	// Settle to a goroutine baseline before the cluster exists.
	baseline := settledGoroutines()

	ff := &transport.FaultyFactory{Inner: transport.BusFactory{}}
	c := NewCluster(ff)
	c.StallTimeout = 300 * time.Millisecond
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	simRes := consensusBatch(par, inputs, L, 61, sim.RunBatch)
	netRes := consensusBatch(par, inputs, L, 61, c.RunBatch)
	requireCycleMatchesSim(t, "pre-partition cycle", simRes, netRes)

	// Isolate node 3: the unlisted remainder {0,1,2} keeps quorum.
	if err := ff.Partition([]int{3}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	degRes := degradedBatch(par, inputs, L, 62, c)
	elapsed := time.Since(start)
	if degRes.Err != nil {
		t.Fatalf("partitioned cycle failed instead of degrading: %v", degRes.Err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("partitioned cycle took %v — it stalled instead of degrading promptly", elapsed)
	}
	if !slices.Contains(degRes.DegradedPeers, 3) {
		t.Errorf("DegradedPeers = %v, want the isolated node 3", degRes.DegradedPeers)
	}
	if slices.Contains(degRes.DegradedPeers, 0) || slices.Contains(degRes.DegradedPeers, 1) {
		t.Errorf("DegradedPeers = %v names majority-side nodes: a failed degrade leaked partial marks", degRes.DegradedPeers)
	}
	if !slices.Contains(degRes.PeersDown, 3) {
		t.Errorf("PeersDown = %v, want the isolated node 3", degRes.PeersDown)
	}
	requireLiveAgreement(t, "partitioned cycle", degRes, 3)
	// The isolated node cannot resolve its rounds (3 silent peers exceed its
	// degrade bound of 1): its value goes missing rather than diverging.
	if v := degRes.Instances[0].Values[3]; v != nil {
		t.Errorf("isolated node produced a value (%v), want a missing output", v)
	}

	ff.HealAll()
	waitRoutersHealthy(t, c)
	for r := 0; r < 2; r++ {
		seed := int64(70 + r)
		simRes := consensusBatch(par, inputs, L, seed, sim.RunBatch)
		netRes := consensusBatch(par, inputs, L, seed, c.RunBatch)
		if netRes.Err != nil {
			t.Fatalf("cycle %d after heal: %v", r, netRes.Err)
		}
		if len(netRes.PeersDown) != 0 {
			t.Errorf("cycle %d after heal reports PeersDown = %v, want full membership", r, netRes.PeersDown)
		}
		requireCycleMatchesSim(t, "post-heal cycle", simRes, netRes)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for settledGoroutines() > baseline+2 {
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d at baseline, %d after Close — the degraded cycle leaked",
				baseline, goruntime.NumGoroutine())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// settledGoroutines samples the goroutine count after a short settling
// window, letting finished goroutines unwind.
func settledGoroutines() int {
	prev := goruntime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		cur := goruntime.NumGoroutine()
		if cur >= prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// TestClusterCrashRestartRejoins covers the crash-restart recovery path:
// a node hard-killed between cycles leaves the next cycle degraded but
// deciding (its silence attributed), and after Restart it rejoins at the
// epoch boundary — later cycles are bit-identical to the simulator.
func TestClusterCrashRestartRejoins(t *testing.T) {
	t.Parallel()
	const n, tFaults, L = 4, 1, 256
	par := consensus.Params{N: n, T: tFaults, BSB: bsb.EIG}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0x5A}, L/8)
	}
	ff := &transport.FaultyFactory{Inner: transport.BusFactory{}}
	c := NewCluster(ff)
	defer c.Close()
	c.StallTimeout = 300 * time.Millisecond
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	simRes := consensusBatch(par, inputs, L, 81, sim.RunBatch)
	netRes := consensusBatch(par, inputs, L, 81, c.RunBatch)
	requireCycleMatchesSim(t, "pre-crash cycle", simRes, netRes)

	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(2); err == nil || !strings.Contains(err.Error(), "already dead") {
		t.Errorf("second Kill = %v, want an already-dead error", err)
	}

	degRes := degradedBatch(par, inputs, L, 82, c)
	if degRes.Err != nil {
		t.Fatalf("cycle with a crashed node failed instead of degrading: %v", degRes.Err)
	}
	if !slices.Contains(degRes.DegradedPeers, 2) {
		t.Errorf("DegradedPeers = %v, want the crashed node 2", degRes.DegradedPeers)
	}
	requireLiveAgreement(t, "crashed cycle", degRes, 2)
	if v := degRes.Instances[0].Values[2]; v != nil {
		t.Errorf("dead node produced a value (%v), want no body run at all", v)
	}

	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(2); err == nil || !strings.Contains(err.Error(), "not dead") {
		t.Errorf("second Restart = %v, want a not-dead error", err)
	}
	waitRoutersHealthy(t, c)

	for r := 0; r < 2; r++ {
		seed := int64(90 + r)
		simRes := consensusBatch(par, inputs, L, seed, sim.RunBatch)
		netRes := consensusBatch(par, inputs, L, seed, c.RunBatch)
		if netRes.Err != nil {
			t.Fatalf("cycle %d after restart: %v", r, netRes.Err)
		}
		if len(netRes.PeersDown) != 0 {
			t.Errorf("cycle %d after restart reports PeersDown = %v, want full membership", r, netRes.PeersDown)
		}
		requireCycleMatchesSim(t, "post-restart cycle", simRes, netRes)
	}
}

// TestClusterKillMidCycle exercises the in-flight half of Kill: a node
// crashed while its cycle is parked mid-round fails with a peer-attributed
// fault, and under graceful degradation the surviving nodes resolve the
// cycle against its silence instead of latching the failure.
func TestClusterKillMidCycle(t *testing.T) {
	t.Parallel()
	ff := &transport.FaultyFactory{Inner: transport.BusFactory{}}
	c := NewCluster(ff)
	defer c.Close()
	c.StallTimeout = 300 * time.Millisecond
	if err := c.Connect(4); err != nil {
		t.Fatal(err)
	}

	// Gate every body until the kill lands, so the crash is observably
	// mid-epoch: the routers hold attached runtimes when Kill fires.
	gate := make(chan struct{})
	done := make(chan *sim.BatchResult, 1)
	go func() {
		done <- c.RunBatch(sim.BatchConfig{N: 4, Seed: 5, Instances: 1, DegradePeers: 1},
			func(_ int, p *sim.Proc) any {
				<-gate
				p.Exchange("r1", nil, nil)
				return "done"
			})
	}()
	// The epoch attaches before bodies spawn; give the spawn a moment, then
	// crash node 2 while everyone is parked on the gate.
	time.Sleep(10 * time.Millisecond)
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	close(gate)

	res := <-done
	if res.Err != nil {
		t.Fatalf("mid-cycle kill latched the run: %v", res.Err)
	}
	if !slices.Contains(res.DegradedPeers, 2) {
		t.Errorf("DegradedPeers = %v, want the killed node 2", res.DegradedPeers)
	}
	for i, v := range res.Instances[0].Values {
		want := any("done")
		if i == 2 {
			want = nil
		}
		if v != want {
			t.Errorf("node %d value = %v, want %v", i, v, want)
		}
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCrashGuards pins the Kill/Restart validation errors: bad
// targets, missing meshes, and transports without the isolation capability
// fail with clear messages.
func TestClusterCrashGuards(t *testing.T) {
	t.Parallel()
	bare := NewCluster(transport.BusFactory{})
	defer bare.Close()
	if err := bare.Kill(0); err == nil || !strings.Contains(err.Error(), "no mesh") {
		t.Errorf("Kill before Connect = %v, want a no-mesh error", err)
	}
	if err := bare.Connect(3); err != nil {
		t.Fatal(err)
	}
	if err := bare.Kill(0); err == nil || !strings.Contains(err.Error(), "cannot isolate") {
		t.Errorf("Kill over a bare factory = %v, want a capability error", err)
	}

	ff := &transport.FaultyFactory{Inner: transport.BusFactory{}}
	c := NewCluster(ff)
	defer c.Close()
	if err := c.Connect(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(7); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Kill(7) = %v, want an out-of-range error", err)
	}
	if err := c.Restart(1); err == nil || !strings.Contains(err.Error(), "not dead") {
		t.Errorf("Restart of a live node = %v, want a not-dead error", err)
	}
}
