package node

import (
	"bytes"
	"slices"
	"strings"
	"testing"
	"time"

	"byzcons/internal/bsb"
	"byzcons/internal/consensus"
	"byzcons/internal/sim"
	"byzcons/internal/transport"
)

// capturingFactory exposes the endpoints of the mesh it builds, so chaos
// tests can reach transport-level controls (ConnDropper) behind a cluster.
type capturingFactory struct {
	inner transport.Factory
	eps   []transport.Endpoint
}

func (f *capturingFactory) Mesh(n int) ([]transport.Endpoint, error) {
	eps, err := f.inner.Mesh(n)
	f.eps = eps
	return eps, err
}

func (f *capturingFactory) Kind() string { return f.inner.Kind() }

// fastRetry is a test-speed reconnect policy: prompt redials, a budget far
// beyond what a test outage needs.
func fastRetry() transport.RetryPolicy {
	return transport.RetryPolicy{
		MinBackoff:  2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		MaxAttempts: 500,
		MaxFlaps:    1000,
	}
}

// consensusBatch runs one single-instance consensus cycle over the given
// batch runner.
func consensusBatch(par consensus.Params, inputs [][]byte, L int, seed int64,
	run func(sim.BatchConfig, func(int, *sim.Proc) any) *sim.BatchResult) *sim.BatchResult {
	return run(sim.BatchConfig{N: par.N, Seed: seed, Instances: 1}, func(_ int, p *sim.Proc) any {
		return consensus.Run(p, par, inputs[p.ID], L)
	})
}

// requireCycleMatchesSim asserts a networked cycle reproduced the simulator
// bit for bit: decisions, generation counts, diagnosis graphs, metered
// traffic and round count.
func requireCycleMatchesSim(t *testing.T, label string, simRes, netRes *sim.BatchResult) {
	t.Helper()
	if simRes.Err != nil || netRes.Err != nil {
		t.Fatalf("%s: sim err %v, cluster err %v", label, simRes.Err, netRes.Err)
	}
	sv, nv := simRes.Instances[0].Values, netRes.Instances[0].Values
	for i := range sv {
		so := sv[i].(*consensus.Output)
		no := nv[i].(*consensus.Output)
		if !bytes.Equal(so.Value, no.Value) || so.Defaulted != no.Defaulted {
			t.Errorf("%s: node %d decided %x/%v, simulator %x/%v",
				label, i, no.Value, no.Defaulted, so.Value, so.Defaulted)
		}
		if so.Generations != no.Generations || so.DiagnosisRuns != no.DiagnosisRuns {
			t.Errorf("%s: node %d gens/diags %d/%d, simulator %d/%d",
				label, i, no.Generations, no.DiagnosisRuns, so.Generations, so.DiagnosisRuns)
		}
		if !so.Graph.Equal(no.Graph) {
			t.Errorf("%s: node %d diagnosis graphs diverge", label, i)
		}
	}
	if simRes.Bits != netRes.Bits {
		t.Errorf("%s: metered bits diverge: cluster %d, sim %d", label, netRes.Bits, simRes.Bits)
	}
	if simRes.Rounds != netRes.Rounds {
		t.Errorf("%s: rounds diverge: cluster %d, sim %d", label, netRes.Rounds, simRes.Rounds)
	}
}

// waitRoutersHealthy blocks until no router holds a standing peer failure —
// the cluster-visible signal that every transient loss has been cleared by
// the transport's recovery events.
func waitRoutersHealthy(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.mu.Lock()
		routers := c.routers
		c.mu.Unlock()
		healthy := true
		for _, r := range routers {
			r.mu.Lock()
			for i := range r.peers {
				if r.peers[i].err != nil {
					healthy = false
				}
			}
			r.mu.Unlock()
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("routers still hold standing peer failures")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterEpochScopedFailureRecovery is the regression test for the
// failure-latch bug: a peer-channel failure must be scoped to the cycles that
// observe it, not replayed into every later epoch. Cycle 1 runs with the
// 1<->3 channel cut and fails, naming both ends in its membership report;
// after the heal, cycles 2 and 3 start with full membership and reproduce the
// simulator bit for bit.
func TestClusterEpochScopedFailureRecovery(t *testing.T) {
	t.Parallel()
	const n, tFaults, L = 4, 1, 256
	par := consensus.Params{N: n, T: tFaults, BSB: bsb.EIG}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0xA5}, L/8)
	}
	ff := &transport.FaultyFactory{Inner: transport.BusFactory{}}
	c := NewCluster(ff)
	defer c.Close()
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	ff.CutPair(1, 3)
	res := consensusBatch(par, inputs, L, 11, c.RunBatch)
	if res.Err == nil {
		t.Fatal("cycle with a cut peer channel decided")
	}
	if !slices.Contains(res.PeersDown, 1) || !slices.Contains(res.PeersDown, 3) {
		t.Fatalf("PeersDown = %v, want both ends of the cut pair (1 and 3)", res.PeersDown)
	}

	ff.HealPair(1, 3)
	for r := 0; r < 2; r++ {
		seed := int64(20 + r)
		simRes := consensusBatch(par, inputs, L, seed, sim.RunBatch)
		netRes := consensusBatch(par, inputs, L, seed, c.RunBatch)
		if netRes.Err != nil {
			t.Fatalf("cycle %d after heal: %v", r+2, netRes.Err)
		}
		if len(netRes.PeersDown) != 0 {
			t.Errorf("cycle %d after heal reports PeersDown = %v, want full membership", r+2, netRes.PeersDown)
		}
		requireCycleMatchesSim(t, "post-heal cycle", simRes, netRes)
	}
	if dials := c.MeshDials(); dials != 1 {
		t.Errorf("recovery re-dialed the mesh (%d dials)", dials)
	}
}

// TestClusterPeerReconnectResync is the end-to-end chaos check over real
// sockets: mid-session, every TCP connection of one node is killed; the
// transport re-dials and re-handshakes, the rejoined peer participates from
// the next epoch, and subsequent cycles are bit-identical to the simulator —
// all without re-dialing the mesh or growing the connection counter.
func TestClusterPeerReconnectResync(t *testing.T) {
	t.Parallel()
	const n, L = 4, 256
	par := consensus.Params{N: n, T: 1, BSB: bsb.EIG}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0x3C}, L/8)
	}
	cf := &capturingFactory{inner: transport.TCPFactory{Options: transport.TCPOptions{
		SetupTimeout: 10 * time.Second,
		Retry:        fastRetry(),
	}}}
	c := NewCluster(cf)
	defer c.Close()
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	simRes := consensusBatch(par, inputs, L, 31, sim.RunBatch)
	netRes := consensusBatch(par, inputs, L, 31, c.RunBatch)
	requireCycleMatchesSim(t, "pre-drop cycle", simRes, netRes)

	// Kill every connection node 2 participates in — the mid-session analogue
	// of that node's process losing and regaining its network.
	dropper := cf.eps[2].(transport.ConnDropper)
	dropped := 0
	for j := 0; j < n; j++ {
		if j != 2 && dropper.DropConn(j) {
			dropped++
		}
	}
	if dropped != n-1 {
		t.Fatalf("dropped %d of node 2's connections, want %d", dropped, n-1)
	}

	// Each healed connection installs at both of its ends.
	wantReconnects := int64(2 * dropped)
	deadline := time.Now().Add(15 * time.Second)
	for {
		var got int64
		for _, ep := range cf.eps {
			got += ep.Stats().Reconnects
		}
		if got >= wantReconnects {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh healed %d connection ends, want %d", got, wantReconnects)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitRoutersHealthy(t, c)

	for r := 0; r < 2; r++ {
		seed := int64(40 + r)
		simRes := consensusBatch(par, inputs, L, seed, sim.RunBatch)
		netRes := consensusBatch(par, inputs, L, seed, c.RunBatch)
		if netRes.Err != nil {
			t.Fatalf("cycle %d after reconnect: %v", r+2, netRes.Err)
		}
		if len(netRes.PeersDown) != 0 {
			t.Errorf("cycle %d after reconnect reports PeersDown = %v, want full membership", r+2, netRes.PeersDown)
		}
		requireCycleMatchesSim(t, "post-reconnect cycle", simRes, netRes)
	}

	st := c.WireStats()
	if st.Reconnects != wantReconnects {
		t.Errorf("Reconnects = %d, want %d", st.Reconnects, wantReconnects)
	}
	if st.PeerFlaps == 0 {
		t.Error("PeerFlaps = 0 after dropping live connections")
	}
	if st.Conns != int64(n*(n-1)) {
		t.Errorf("Conns = %d after reconnect, want the flat dial-time count %d", st.Conns, n*(n-1))
	}
	if dials := c.MeshDials(); dials != 1 {
		t.Errorf("reconnect re-dialed the mesh (%d dials)", dials)
	}
}

// TestClusterFaultInjectionPerCycle is the fault-injection smoke over TCP:
// between every pair of cycles a rotating peer pair flaps (cut and healed via
// the faulty-transport wrapper). Every cycle must still decide with full
// membership, bit-identical to the simulator — transient losses between
// epochs leave no trace in the cycles around them.
func TestClusterFaultInjectionPerCycle(t *testing.T) {
	t.Parallel()
	const n, L, cycles = 4, 256, 4
	par := consensus.Params{N: n, T: 1, BSB: bsb.EIG}
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{0x71}, L/8)
	}
	ff := &transport.FaultyFactory{Inner: transport.TCPFactory{Options: transport.TCPOptions{
		SetupTimeout: 10 * time.Second,
		Retry:        fastRetry(),
	}}}
	c := NewCluster(ff)
	defer c.Close()
	if err := c.Connect(n); err != nil {
		t.Fatal(err)
	}

	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	for r := 0; r < cycles; r++ {
		seed := int64(50 + r)
		simRes := consensusBatch(par, inputs, L, seed, sim.RunBatch)
		netRes := consensusBatch(par, inputs, L, seed, c.RunBatch)
		if netRes.Err != nil {
			t.Fatalf("cycle %d: %v", r, netRes.Err)
		}
		if len(netRes.PeersDown) != 0 {
			t.Errorf("cycle %d reports PeersDown = %v, want full membership", r, netRes.PeersDown)
		}
		requireCycleMatchesSim(t, "fault-injection cycle", simRes, netRes)

		p := pairs[r%len(pairs)]
		ff.CutPair(p[0], p[1])
		ff.HealPair(p[0], p[1])
	}
	if dials := c.MeshDials(); dials != 1 {
		t.Errorf("flaps re-dialed the mesh (%d dials)", dials)
	}
}

// TestClusterStallDetectorIsolatesSilentPeer: a peer that goes silent while a
// round waits on its frame is isolated by the stall detector — attributed,
// well before the node-wide step timeout — and named in the cycle's
// membership report.
func TestClusterStallDetectorIsolatesSilentPeer(t *testing.T) {
	t.Parallel()
	c := NewCluster(transport.BusFactory{})
	defer c.Close()
	c.StallTimeout = 300 * time.Millisecond
	start := time.Now()
	res := c.RunBatch(sim.BatchConfig{N: 3, Seed: 1, Instances: 1}, func(_ int, p *sim.Proc) any {
		if p.ID == 2 {
			return "silent" // never joins the round: no frames, no progress
		}
		p.Exchange("r1", nil, nil)
		return "done"
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "stalled") {
		t.Fatalf("stall not detected: %v", res.Err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stall detection took %v — the node-wide step timeout fired instead", elapsed)
	}
	if !slices.Contains(res.PeersDown, 2) {
		t.Errorf("PeersDown = %v, want the stalled node 2", res.PeersDown)
	}
}

// TestClusterCloseDoesNotRegisterPeerFailures pins the shutdown ordering:
// Close severs every connection, and none of that teardown may register as a
// peer failure — routers are closed before the endpoints, so a clean shutdown
// leaves every router's failure state empty.
func TestClusterCloseDoesNotRegisterPeerFailures(t *testing.T) {
	t.Parallel()
	for kind, f := range factories() {
		kind, f := kind, f
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			c := NewCluster(f)
			res := c.Run(sim.RunConfig{N: 3, Seed: 1}, gatherBody)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			c.mu.Lock()
			routers := c.routers
			c.mu.Unlock()
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			for i, r := range routers {
				r.mu.Lock()
				for peer := range r.peers {
					if err := r.peers[peer].err; err != nil {
						t.Errorf("router %d holds peer %d failure after clean Close: %v", i, peer, err)
					}
				}
				if r.fatal != nil {
					t.Errorf("router %d holds fatal error after clean Close: %v", i, r.fatal)
				}
				r.mu.Unlock()
			}
		})
	}
}
