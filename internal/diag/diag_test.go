package diag

import (
	"math/rand"
	"testing"

	"byzcons/internal/bitset"
)

func TestNewCompleteTrustsEverything(t *testing.T) {
	g := NewComplete(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if !g.Trusts(i, j) {
				t.Errorf("(%d,%d) not trusted in complete graph", i, j)
			}
		}
		if g.RemovedCount(i) != 0 || g.Isolated(i) {
			t.Errorf("vertex %d has removals or isolation at start", i)
		}
	}
	if g.Active().Count() != 5 {
		t.Error("not all vertices active")
	}
}

func TestRemoveEdgeCountsOnce(t *testing.T) {
	g := NewComplete(5)
	if !g.RemoveEdge(1, 3) {
		t.Fatal("first removal reported absent")
	}
	if g.RemoveEdge(1, 3) || g.RemoveEdge(3, 1) {
		t.Error("repeat removal reported present (would inflate accusation counts)")
	}
	if g.Trusts(1, 3) || g.Trusts(3, 1) {
		t.Error("edge still trusted")
	}
	if g.RemovedCount(1) != 1 || g.RemovedCount(3) != 1 {
		t.Error("counts wrong")
	}
	if g.RemoveEdge(2, 2) {
		t.Error("self-loop removal reported present")
	}
}

func TestIsolateCountsOnlyIsolatedVertex(t *testing.T) {
	g := NewComplete(6)
	g.RemoveEdge(0, 1)
	g.Isolate(0)
	if !g.Isolated(0) || g.Trusts(0, 0) {
		t.Error("vertex 0 not isolated")
	}
	for j := 1; j < 6; j++ {
		if g.Trusts(0, j) {
			t.Errorf("edge (0,%d) survived isolation", j)
		}
	}
	// Neighbours' accusation budgets must be unaffected by the isolation
	// (only vertex 1 keeps its count from the explicit removal).
	if g.RemovedCount(1) != 1 {
		t.Errorf("vertex 1 count = %d, want 1", g.RemovedCount(1))
	}
	for j := 2; j < 6; j++ {
		if g.RemovedCount(j) != 0 {
			t.Errorf("vertex %d count = %d, want 0 after neighbour isolation", j, g.RemovedCount(j))
		}
	}
	if g.RemovedCount(0) != 5 {
		t.Errorf("vertex 0 count = %d, want 5", g.RemovedCount(0))
	}
	if g.Active().Has(0) || g.Active().Count() != 5 {
		t.Error("active set wrong")
	}
	// Idempotent.
	g.Isolate(0)
	if g.RemovedCount(0) != 5 {
		t.Error("re-isolation changed counts")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := NewComplete(5)
	g.RemoveEdge(1, 2)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.RemoveEdge(3, 4)
	if g.Equal(c) {
		t.Error("mutation of clone affected equality check")
	}
	if g.Trusts(3, 4) == false {
		t.Error("clone aliases original adjacency")
	}
}

func TestCliqueOnDiagGraph(t *testing.T) {
	g := NewComplete(7)
	// Remove edges at 5 and 6 so the unique 5-clique is {0,1,2,3,4}.
	g.RemoveEdge(5, 6)
	g.RemoveEdge(5, 0)
	g.RemoveEdge(6, 1)
	got := g.Clique(g.Active(), 5)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != 5 {
		t.Fatalf("clique = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clique = %v, want %v", got, want)
		}
	}
}

// bruteClique finds the lexicographically first clique of the given size by
// exhaustive enumeration.
func bruteClique(adj []bitset.Set, candidates []int, size int) []int {
	idx := make([]int, size)
	var rec func(start, depth int) []int
	rec = func(start, depth int) []int {
		if depth == size {
			out := make([]int, size)
			for i, v := range idx[:size] {
				out[i] = candidates[v]
			}
			return out
		}
		for i := start; i < len(candidates); i++ {
			v := candidates[i]
			ok := true
			for _, prev := range idx[:depth] {
				if !adj[candidates[prev]].Has(v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			idx[depth] = i
			if res := rec(i+1, depth+1); res != nil {
				return res
			}
		}
		return nil
	}
	return rec(0, 0)
}

func TestFindCliqueMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 6 + r.Intn(6)
		adj := make([]bitset.Set, n)
		for i := range adj {
			adj[i] = bitset.New(n)
		}
		p := 0.3 + r.Float64()*0.6
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < p {
					adj[i].Add(j)
					adj[j].Add(i)
				}
			}
		}
		size := 2 + r.Intn(n-2)
		cands := bitset.Full(n)
		got := FindClique(adj, cands, size)
		want := bruteClique(adj, cands.Slice(), size)
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: existence mismatch: got %v, want %v", trial, got, want)
		}
		if got == nil {
			continue
		}
		// Same (lexicographically first) clique, and it must actually be one.
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
		for i := 0; i < len(got); i++ {
			for j := i + 1; j < len(got); j++ {
				if !adj[got[i]].Has(got[j]) {
					t.Fatalf("trial %d: returned non-clique %v", trial, got)
				}
			}
		}
	}
}

func TestFindCliqueRespectsCandidates(t *testing.T) {
	adj := make([]bitset.Set, 5)
	for i := range adj {
		adj[i] = bitset.Full(5)
		adj[i].Remove(i)
	}
	cands := bitset.FromSlice(5, []int{1, 2, 4})
	got := FindClique(adj, cands, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("clique = %v, want [1 2 4]", got)
	}
	if FindClique(adj, cands, 4) != nil {
		t.Error("found 4-clique among 3 candidates")
	}
}

func TestFindCliqueEdgeCases(t *testing.T) {
	adj := []bitset.Set{bitset.New(1)}
	if got := FindClique(adj, bitset.Full(1), 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton clique = %v", got)
	}
	if got := FindClique(adj, bitset.Full(1), 0); got == nil || len(got) != 0 {
		t.Errorf("size-0 clique = %v, want empty non-nil", got)
	}
}

func TestStringSmoke(t *testing.T) {
	g := NewComplete(3)
	g.RemoveEdge(0, 2)
	if s := g.String(); s == "" {
		t.Error("empty String()")
	}
}
