package diag

import "byzcons/internal/bitset"

// FindClique finds a clique of exactly the given size among the candidate
// vertices of the graph described by adj (adj[i] = neighbours of i). The
// search is deterministic — vertices are tried in ascending order and the
// lexicographically first clique is returned — so every honest processor,
// running it on identical broadcast data, computes the identical set
// (required for Pmatch in line 1(e) and Pdecide in line 3(h) of Algorithm 1).
// It returns nil if no such clique exists.
//
// Finding a maximum clique is NP-hard in general; the paper does not account
// for local computation, and n is small in practice (<= 64 here). The
// branch-and-bound below prunes with the standard |current| + |candidates|
// bound, which is fast on the near-complete graphs that arise in fault-free
// generations and acceptable on adversarial ones at these sizes.
func FindClique(adj []bitset.Set, candidates bitset.Set, size int) []int {
	if size <= 0 {
		return []int{}
	}
	if candidates.Count() < size {
		return nil
	}
	cur := make([]int, 0, size)
	if res := cliqueSearch(adj, candidates, cur, size); res != nil {
		return res
	}
	return nil
}

// cliqueSearch extends cur with vertices from cand (all pairwise adjacent to
// cur) until size is reached. cand only ever contains vertices greater than
// the last element of cur, which makes the enumeration canonical.
func cliqueSearch(adj []bitset.Set, cand bitset.Set, cur []int, size int) []int {
	if len(cur) == size {
		out := make([]int, size)
		copy(out, cur)
		return out
	}
	if len(cur)+cand.Count() < size {
		return nil
	}
	var result []int
	cand.ForEach(func(v int) bool {
		// Candidates for the extended clique: strictly greater than v (to
		// enumerate each clique once, in lexicographic order) and adjacent
		// to v (and, inductively, to everything in cur).
		next := cand.And(adj[v])
		next.RemoveThrough(v)
		if res := cliqueSearch(adj, next, append(cur, v), size); res != nil {
			result = res
			return false
		}
		return true
	})
	return result
}
