// Package diag implements the paper's diagnosis graph: an undirected graph on
// the n processors in which an edge means mutual trust. It starts complete;
// the diagnosis stage removes edges, and the consensus layer maintains the
// invariants proved in Lemma 4:
//
//   - every removed edge has at least one faulty endpoint,
//   - honest-honest edges are never removed, and
//   - a vertex that has lost more than t edges is certainly faulty and is
//     isolated (all edges removed; honest processors stop talking to it).
//
// All mutations are driven exclusively by broadcast data, so every honest
// processor holds an identical copy; Equal supports asserting that in tests.
package diag

import (
	"fmt"

	"byzcons/internal/bitset"
)

// Graph is a diagnosis graph over n vertices.
type Graph struct {
	n        int
	adj      []bitset.Set
	removed  []int // cumulative removed-edge count per vertex
	isolated bitset.Set
}

// NewComplete returns the initial diagnosis graph: complete on n vertices.
func NewComplete(n int) *Graph {
	g := &Graph{
		n:        n,
		adj:      make([]bitset.Set, n),
		removed:  make([]int, n),
		isolated: bitset.New(n),
	}
	for i := 0; i < n; i++ {
		g.adj[i] = bitset.Full(n)
		g.adj[i].Remove(i)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Trusts reports whether i and j trust each other. A vertex trusts itself
// unless it has been isolated.
func (g *Graph) Trusts(i, j int) bool {
	if i == j {
		return !g.isolated.Has(i)
	}
	return g.adj[i].Has(j)
}

// RemoveEdge removes the undirected edge (i, j) and bumps both endpoints'
// removed counts. It reports whether the edge was present (repeat removals
// are no-ops, so accusation replays never inflate counts).
func (g *Graph) RemoveEdge(i, j int) bool {
	if i == j || !g.adj[i].Has(j) {
		return false
	}
	g.adj[i].Remove(j)
	g.adj[j].Remove(i)
	g.removed[i]++
	g.removed[j]++
	return true
}

// RemovedCount returns the number of edges removed at vertex i so far.
func (g *Graph) RemovedCount(i int) int { return g.removed[i] }

// Isolate removes every remaining edge at vertex i and marks it isolated.
// Honest processors call this only for vertices proven faulty.
//
// Unlike RemoveEdge, isolation does not bump the removed-edge counts of i's
// neighbours: those edges disappear as a consequence of identifying i, not as
// accusations against the neighbour. Counting them would still be sound for
// the "more than t removals ⇒ faulty" rule but would deflate the diagnosis
// budget of i's co-conspirators below the paper's per-processor t+1, making
// Theorem 1's t(t+1) bound unreachable; with this accounting the bound is
// exactly tight (exercised by the EdgeMiser adversary in tests and E3).
func (g *Graph) Isolate(i int) {
	if g.isolated.Has(i) {
		return
	}
	g.adj[i].Clone().ForEach(func(j int) bool {
		g.adj[i].Remove(j)
		g.adj[j].Remove(i)
		g.removed[i]++
		return true
	})
	g.isolated.Add(i)
}

// Isolated reports whether vertex i has been isolated.
func (g *Graph) Isolated(i int) bool { return g.isolated.Has(i) }

// Active returns the set of non-isolated vertices.
func (g *Graph) Active() bitset.Set {
	return bitset.Full(g.n).AndNot(g.isolated)
}

// Neighbors returns a copy of i's trusted set.
func (g *Graph) Neighbors(i int) bitset.Set { return g.adj[i].Clone() }

// TrustedWithin returns the subset of s that i trusts (excluding i itself).
func (g *Graph) TrustedWithin(i int, s bitset.Set) bitset.Set {
	return g.adj[i].And(s)
}

// Clique finds a clique of exactly the given size among candidates in the
// diagnosis graph, in deterministic (lexicographically first) order.
// It returns nil if none exists.
func (g *Graph) Clique(candidates bitset.Set, size int) []int {
	return FindClique(g.adj, candidates, size)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:        g.n,
		adj:      make([]bitset.Set, g.n),
		removed:  make([]int, g.n),
		isolated: g.isolated.Clone(),
	}
	for i := range g.adj {
		c.adj[i] = g.adj[i].Clone()
	}
	copy(c.removed, g.removed)
	return c
}

// Rebuild reconstructs a Graph from its serialized parts: the pairs of
// vertices whose edge is missing, the isolated vertex set, and the per-vertex
// removed-edge counts. It is the decoding counterpart of a wire-format graph
// (internal/wire): Isolate does not bump the counts of the isolated vertex's
// neighbours, so the counts cannot be derived from the edge set alone and
// must be restored explicitly. Rebuild validates shape, not protocol
// invariants — a Byzantine peer controls serialized graphs.
func Rebuild(n int, missing [][2]int, isolated []int, removed []int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("diag: negative graph order %d", n)
	}
	if len(removed) != n {
		return nil, fmt.Errorf("diag: %d removed counts for order %d", len(removed), n)
	}
	g := NewComplete(n)
	for _, e := range missing {
		i, j := e[0], e[1]
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			return nil, fmt.Errorf("diag: bad edge (%d,%d) for order %d", i, j, n)
		}
		g.adj[i].Remove(j)
		g.adj[j].Remove(i)
	}
	for _, v := range isolated {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("diag: bad isolated vertex %d for order %d", v, n)
		}
		g.isolated.Add(v)
	}
	for i, c := range removed {
		if c < 0 || c > n {
			return nil, fmt.Errorf("diag: bad removed count %d at vertex %d", c, i)
		}
		g.removed[i] = c
	}
	return g, nil
}

// Missing returns the removed undirected edges as sorted (i, j) pairs with
// i < j, and the isolated vertices — the serialized form consumed by Rebuild.
func (g *Graph) Missing() (missing [][2]int, isolated []int) {
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if !g.adj[i].Has(j) {
				missing = append(missing, [2]int{i, j})
			}
		}
	}
	g.isolated.ForEach(func(v int) bool {
		isolated = append(isolated, v)
		return true
	})
	return missing, isolated
}

// Removed returns a copy of the per-vertex removed-edge counts.
func (g *Graph) Removed() []int {
	return append([]int(nil), g.removed...)
}

// Equal reports whether two graphs are identical (edges, counts, isolation).
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n || !g.isolated.Equal(o.isolated) {
		return false
	}
	for i := range g.adj {
		if !g.adj[i].Equal(o.adj[i]) || g.removed[i] != o.removed[i] {
			return false
		}
	}
	return true
}

// String renders the removed edges and isolated set, for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("diag{n=%d isolated=%v removedEdges=[", g.n, g.isolated)
	first := true
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if !g.adj[i].Has(j) {
				if !first {
					s += " "
				}
				first = false
				s += fmt.Sprintf("(%d,%d)", i, j)
			}
		}
	}
	return s + "]}"
}
