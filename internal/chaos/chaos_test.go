package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeInjector records injection calls as canonical strings.
type fakeInjector struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeInjector) record(s string) {
	f.mu.Lock()
	f.calls = append(f.calls, s)
	f.mu.Unlock()
}

func (f *fakeInjector) CutPair(i, j int)  { f.record(fmt.Sprintf("cut(%d,%d)", i, j)) }
func (f *fakeInjector) HealPair(i, j int) { f.record(fmt.Sprintf("heal(%d,%d)", i, j)) }
func (f *fakeInjector) Partition(groups ...[]int) error {
	f.record(fmt.Sprintf("partition%v", groups))
	return nil
}
func (f *fakeInjector) HealAll() { f.record("healall") }
func (f *fakeInjector) DelayPair(i, j int, d, jitter time.Duration) {
	f.record(fmt.Sprintf("delay(%d,%d,%s,%s)", i, j, d, jitter))
}
func (f *fakeInjector) DelayAll(d, jitter time.Duration) {
	f.record(fmt.Sprintf("delayall(%s,%s)", d, jitter))
}
func (f *fakeInjector) HealDelays() { f.record("healdelays") }

func (f *fakeInjector) snapshot() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

// fakeCrasher records Kill/Restart calls.
type fakeCrasher struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeCrasher) Kill(node int) error {
	f.mu.Lock()
	f.calls = append(f.calls, fmt.Sprintf("kill(%d)", node))
	f.mu.Unlock()
	return nil
}

func (f *fakeCrasher) Restart(node int) error {
	f.mu.Lock()
	f.calls = append(f.calls, fmt.Sprintf("restart(%d)", node))
	f.mu.Unlock()
	return nil
}

// TestParseRoundTrip pins the schedule spec syntax: every event form parses,
// and rendering the parsed schedule reproduces a spec that parses to the same
// schedule (the canonical round-trip).
func TestParseRoundTrip(t *testing.T) {
	spec := "7:cut(1,3)@c2;heal(1,3)@c3;partition(0,1|2,3)@c1;healall@c4;" +
		"delay(0,2,5ms,2ms)@c1;delayall(5ms,2ms)@150ms;healdelays@c3;crash(2);restart(2)@c5"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Errorf("Seed = %d, want 7", s.Seed)
	}
	if len(s.Events) != 9 {
		t.Fatalf("parsed %d events, want 9", len(s.Events))
	}
	if e := s.Events[0]; e.Action != ActCut || e.A != 1 || e.B != 3 || e.Cycle != 2 {
		t.Errorf("event 0 = %+v, want cut(1,3)@c2", e)
	}
	if e := s.Events[2]; e.Action != ActPartition || !reflect.DeepEqual(e.Groups, [][]int{{0, 1}, {2, 3}}) {
		t.Errorf("event 2 = %+v, want partition(0,1|2,3)", e)
	}
	if e := s.Events[5]; e.Cycle != -1 || e.At != 150*time.Millisecond {
		t.Errorf("event 5 = %+v, want a wall-clock anchor at 150ms", e)
	}
	if e := s.Events[7]; e.Action != ActCrash || e.A != 2 || e.Cycle != 0 {
		t.Errorf("event 7 = %+v, want crash(2) defaulting to @c0", e)
	}

	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing the rendered schedule %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("round-trip drifted:\n  first:  %+v\n  second: %+v", s, s2)
	}
}

// TestParseErrors pins the rejection of malformed specs with clear messages.
func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ spec, want string }{
		{"cut(1,3)@c1", "seed:events"},
		{"x:cut(1,3)", "bad seed"},
		{"7:", "no events"},
		{"7:cut(1)", "wants (i,j)"},
		{"7:cut(1,3)@c-2", "bad cycle anchor"},
		{"7:cut(1,3)@banana", "bad wall-clock anchor"},
		{"7:explode(1)", "unknown action"},
		{"7:delay(0,1,5ms)", "wants (i,j,delay,jitter)"},
		{"7:cut(1,3", "unbalanced"},
		{"7:partition()", "at least one group"},
	} {
		if _, err := Parse(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want an error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestScheduleValidate pins the deployment-size check.
func TestScheduleValidate(t *testing.T) {
	s, err := Parse("1:cut(1,3)@c1;crash(2)@c2")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Errorf("Validate(4) = %v, want nil", err)
	}
	if err := s.Validate(3); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate(3) = %v, want an out-of-range error", err)
	}
	if s, err := Parse("1:cut(2,2)@c1"); err == nil {
		if err := s.Validate(4); err == nil {
			t.Error("Validate accepted a self-channel cut")
		}
	}
}

// TestEngineCycleDeterminism pins the replayability contract for
// cycle-anchored schedules: two engines over the same schedule, driven
// through the same cycle boundaries, fire the same events in the same order
// and produce identical fault logs.
func TestEngineCycleDeterminism(t *testing.T) {
	sched, err := Parse("3:partition(3)@c1;crash(2)@c1;restart(2)@c2;healall@c3;delayall(1ms,1ms)@c3;healdelays@c4")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]string, []string, []Record) {
		inj, cr := &fakeInjector{}, &fakeCrasher{}
		e := New(sched, inj, cr, nil)
		e.Start()
		for cycle := 0; cycle < 6; cycle++ {
			e.OnCycle(cycle)
		}
		e.Stop()
		return inj.snapshot(), cr.calls, e.Log()
	}
	inj1, cr1, log1 := run()
	inj2, cr2, log2 := run()
	if !reflect.DeepEqual(inj1, inj2) || !reflect.DeepEqual(cr1, cr2) {
		t.Errorf("two runs of the same schedule diverged:\n  %v %v\n  %v %v", inj1, cr1, inj2, cr2)
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Errorf("fault logs diverged:\n  %v\n  %v", log1, log2)
	}
	if len(log1) != len(sched.Events) {
		t.Fatalf("fired %d events, want all %d", len(log1), len(sched.Events))
	}
	for i, rec := range log1 {
		if rec.Index != i {
			t.Errorf("log[%d].Index = %d, want schedule order", i, rec.Index)
		}
		if rec.Err != "" {
			t.Errorf("event %q failed: %s", rec.Event, rec.Err)
		}
	}
	// Cycle anchors fire before their cycle: the partition and crash at c1
	// must land after cycle 0 completed, not at Start.
	if got := log1[0].Cycle; got != 1 {
		t.Errorf("first event anchored at cycle %d, want 1", got)
	}
}

// TestEngineWallClockAndStop covers wall-anchored events (fired by timers
// after Start) and Stop cancelling what has not fired yet.
func TestEngineWallClockAndStop(t *testing.T) {
	sched, err := Parse("1:cut(0,1)@1ms;heal(0,1)@10s")
	if err != nil {
		t.Fatal(err)
	}
	inj := &fakeInjector{}
	e := New(sched, inj, nil, nil)
	e.Start()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.Log()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("wall-clock event did not fire")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if log := e.Log(); len(log) != 1 || log[0].Event != "cut(0,1)@1ms" || log[0].Cycle != -1 {
		t.Errorf("log after Stop = %+v, want just the fired 1ms cut", log)
	}
	if calls := inj.snapshot(); !reflect.DeepEqual(calls, []string{"cut(0,1)"}) {
		t.Errorf("injections = %v, want just the cut (the 10s heal was cancelled)", calls)
	}
}

// TestEngineNoCrasher pins the graceful failure of crash events without a
// wired Crasher: the event is logged with an error instead of panicking.
func TestEngineNoCrasher(t *testing.T) {
	sched, err := Parse("1:crash(0)@c0")
	if err != nil {
		t.Fatal(err)
	}
	e := New(sched, &fakeInjector{}, nil, nil)
	e.Start()
	e.Stop()
	log := e.Log()
	if len(log) != 1 || !strings.Contains(log[0].Err, "no crasher") {
		t.Errorf("log = %+v, want one record carrying a no-crasher error", log)
	}
}
