// Package chaos is the deterministic fault-injection engine of the
// reproduction's robustness layer: a seeded, replayable timeline of network
// and node faults — cuts, partitions, delay storms, crash-restarts — driven
// against the transport's injection surface (transport.FaultyFactory) and
// the cluster's crash API (node.Cluster).
//
// A Schedule is parsed from a compact "seed:events" spec and fired by an
// Engine at two kinds of anchors:
//
//   - Cycle anchors ("@c2"): the event fires synchronously at the flush-cycle
//     boundary, before the anchored cycle runs. Cycle-anchored schedules are
//     fully deterministic — two runs with the same (seed, schedule) fire the
//     same events at the same protocol points and produce identical fault
//     logs and identical decision bits.
//   - Wall-clock anchors ("@150ms"): the event fires that long after
//     Engine.Start. Wall anchors model asynchronous outages; they are
//     replayable in fault-log terms (the log records the event and its spec,
//     not the wall time) but their interleaving with protocol rounds is
//     best-effort, so bit-identity claims only hold across windows the
//     schedule leaves fault-free.
//
// The seed drives every piece of injected randomness (today: delay jitter,
// via transport.FaultyFactory.Seed), so a chaos run is reproducible from
// (seed, schedule) alone. Every fired event is recorded in the engine's log
// and, when a tracer is wired, emitted as a Cat="chaos" trace event next to
// the peer-lifecycle events it causes.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"byzcons/internal/obs"
)

// Injector is the transport-level fault surface a schedule drives;
// transport.FaultyFactory implements it.
type Injector interface {
	CutPair(i, j int)
	HealPair(i, j int)
	Partition(groups ...[]int) error
	HealAll()
	DelayPair(i, j int, d, jitter time.Duration)
	DelayAll(d, jitter time.Duration)
	HealDelays()
}

// Crasher is the node-level crash-restart surface; node.Cluster implements
// it. Nil is allowed when the schedule contains no crash/restart events.
type Crasher interface {
	Kill(node int) error
	Restart(node int) error
}

// Action enumerates the fault primitives a schedule can fire.
type Action uint8

const (
	ActCut Action = iota
	ActHeal
	ActPartition
	ActHealAll
	ActDelay
	ActDelayAll
	ActHealDelays
	ActCrash
	ActRestart
)

var actionNames = [...]string{
	ActCut: "cut", ActHeal: "heal", ActPartition: "partition", ActHealAll: "healall",
	ActDelay: "delay", ActDelayAll: "delayall", ActHealDelays: "healdelays",
	ActCrash: "crash", ActRestart: "restart",
}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", a)
}

// Event is one scheduled fault. Exactly one anchor applies: Cycle >= 0
// anchors the event to a flush-cycle boundary (fired before that cycle
// runs); Cycle < 0 anchors it At after Engine.Start on the wall clock.
type Event struct {
	Action Action
	// A and B are the node operands of pair and node actions (cut, heal,
	// delay, crash, restart); B is unused by single-node actions.
	A, B int
	// Groups are the partition's node sets (ActPartition only); nodes listed
	// in none form one implicit group.
	Groups [][]int
	// Delay and Jitter parameterize ActDelay/ActDelayAll.
	Delay, Jitter time.Duration
	// Cycle is the cycle anchor (>= 0), or -1 for a wall-clock event.
	Cycle int
	// At is the wall-clock offset from Engine.Start (Cycle < 0 only).
	At time.Duration
}

// String renders the event in the schedule spec syntax it parses from.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Action.String())
	switch e.Action {
	case ActCut, ActHeal:
		fmt.Fprintf(&b, "(%d,%d)", e.A, e.B)
	case ActPartition:
		b.WriteByte('(')
		for g, members := range e.Groups {
			if g > 0 {
				b.WriteByte('|')
			}
			for m, id := range members {
				if m > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(id))
			}
		}
		b.WriteByte(')')
	case ActDelay:
		fmt.Fprintf(&b, "(%d,%d,%s,%s)", e.A, e.B, e.Delay, e.Jitter)
	case ActDelayAll:
		fmt.Fprintf(&b, "(%s,%s)", e.Delay, e.Jitter)
	case ActCrash, ActRestart:
		fmt.Fprintf(&b, "(%d)", e.A)
	}
	if e.Cycle >= 0 {
		fmt.Fprintf(&b, "@c%d", e.Cycle)
	} else {
		fmt.Fprintf(&b, "@%s", e.At)
	}
	return b.String()
}

// Schedule is a seeded fault timeline.
type Schedule struct {
	// Seed drives every piece of injected randomness (delay jitter); wire it
	// into transport.FaultyFactory.Seed so (Seed, Events) replays the run.
	Seed   int64
	Events []Event
}

// String renders the schedule in the "seed:events" spec syntax.
func (s Schedule) String() string {
	specs := make([]string, len(s.Events))
	for i, e := range s.Events {
		specs[i] = e.String()
	}
	return fmt.Sprintf("%d:%s", s.Seed, strings.Join(specs, ";"))
}

// Validate checks every event's node operands against a deployment of n
// nodes.
func (s Schedule) Validate(n int) error {
	check := func(ev Event, id int) error {
		if id < 0 || id >= n {
			return fmt.Errorf("chaos: event %q: node %d out of range [0,%d)", ev, id, n)
		}
		return nil
	}
	for _, ev := range s.Events {
		switch ev.Action {
		case ActCut, ActHeal, ActDelay:
			if err := check(ev, ev.A); err != nil {
				return err
			}
			if err := check(ev, ev.B); err != nil {
				return err
			}
			if ev.A == ev.B {
				return fmt.Errorf("chaos: event %q: a node has no channel to itself", ev)
			}
		case ActCrash, ActRestart:
			if err := check(ev, ev.A); err != nil {
				return err
			}
		case ActPartition:
			for _, g := range ev.Groups {
				for _, id := range g {
					if err := check(ev, id); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Parse reads a "seed:events" schedule spec. Events are ';'-separated, each
// "action(args)@anchor":
//
//	cut(1,3)@c2          sever the 1–3 channel before flush cycle 2
//	heal(1,3)@c3         restore it before cycle 3
//	partition(0,1|2,3)@c1  split the mesh into node sets {0,1} and {2,3}
//	healall@c4           restore a pristine mesh (cuts, delays, throttles)
//	delay(0,2,5ms,2ms)@c1  delay the 0–2 channel: 5ms + jitter in [0,2ms]
//	delayall(5ms,2ms)@c1   mesh-wide delay storm
//	healdelays@c3        end the storm
//	crash(2)@c2          hard-kill node 2 (state dropped, channels severed)
//	restart(2)@c4        restart it; it rejoins at the next epoch boundary
//
// Anchors: "@cN" fires at the cycle-N boundary (deterministic), "@150ms"
// fires on the wall clock after Engine.Start. A missing anchor means "@c0"
// (before the first cycle). Partition groups are '|'-separated node lists;
// unlisted nodes form one implicit group, so partition(3)@c1 isolates
// node 3.
func Parse(spec string) (Schedule, error) {
	seedStr, evSpec, ok := strings.Cut(spec, ":")
	if !ok {
		return Schedule{}, fmt.Errorf("chaos: spec %q: want \"seed:events\" (e.g. \"7:cut(1,3)@c1;heal(1,3)@c2\")", spec)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: spec %q: bad seed: %v", spec, err)
	}
	s := Schedule{Seed: seed}
	for _, part := range strings.Split(evSpec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Schedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	if len(s.Events) == 0 {
		return Schedule{}, fmt.Errorf("chaos: spec %q: no events", spec)
	}
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	body, anchor, hasAnchor := strings.Cut(spec, "@")
	ev := Event{Cycle: 0}
	if hasAnchor {
		anchor = strings.TrimSpace(anchor)
		if rest, ok := strings.CutPrefix(anchor, "c"); ok {
			cyc, err := strconv.Atoi(rest)
			if err != nil || cyc < 0 {
				return ev, fmt.Errorf("chaos: event %q: bad cycle anchor %q", spec, anchor)
			}
			ev.Cycle = cyc
		} else {
			d, err := time.ParseDuration(anchor)
			if err != nil || d < 0 {
				return ev, fmt.Errorf("chaos: event %q: bad wall-clock anchor %q", spec, anchor)
			}
			ev.Cycle, ev.At = -1, d
		}
	}
	name, argStr := body, ""
	if open := strings.IndexByte(body, '('); open >= 0 {
		if !strings.HasSuffix(body, ")") {
			return ev, fmt.Errorf("chaos: event %q: unbalanced parentheses", spec)
		}
		name, argStr = body[:open], body[open+1:len(body)-1]
	}
	name = strings.TrimSpace(strings.ToLower(name))
	args := splitArgs(argStr)
	argErr := func(want string) error {
		return fmt.Errorf("chaos: event %q: %s wants %s", spec, name, want)
	}
	switch name {
	case "cut", "heal":
		ev.Action = ActCut
		if name == "heal" {
			ev.Action = ActHeal
		}
		if len(args) != 2 {
			return ev, argErr("(i,j)")
		}
		var err error
		if ev.A, err = strconv.Atoi(args[0]); err != nil {
			return ev, argErr("(i,j)")
		}
		if ev.B, err = strconv.Atoi(args[1]); err != nil {
			return ev, argErr("(i,j)")
		}
	case "partition":
		ev.Action = ActPartition
		for _, gSpec := range strings.Split(argStr, "|") {
			var g []int
			for _, idStr := range splitArgs(gSpec) {
				id, err := strconv.Atoi(idStr)
				if err != nil {
					return ev, argErr("(i,j,...|k,l,...)")
				}
				g = append(g, id)
			}
			if len(g) > 0 {
				ev.Groups = append(ev.Groups, g)
			}
		}
		if len(ev.Groups) == 0 {
			return ev, argErr("at least one group")
		}
	case "healall":
		ev.Action = ActHealAll
	case "delay":
		ev.Action = ActDelay
		if len(args) != 4 {
			return ev, argErr("(i,j,delay,jitter)")
		}
		var err error
		if ev.A, err = strconv.Atoi(args[0]); err != nil {
			return ev, argErr("(i,j,delay,jitter)")
		}
		if ev.B, err = strconv.Atoi(args[1]); err != nil {
			return ev, argErr("(i,j,delay,jitter)")
		}
		if ev.Delay, err = time.ParseDuration(args[2]); err != nil {
			return ev, argErr("(i,j,delay,jitter)")
		}
		if ev.Jitter, err = time.ParseDuration(args[3]); err != nil {
			return ev, argErr("(i,j,delay,jitter)")
		}
	case "delayall":
		ev.Action = ActDelayAll
		if len(args) != 2 {
			return ev, argErr("(delay,jitter)")
		}
		var err error
		if ev.Delay, err = time.ParseDuration(args[0]); err != nil {
			return ev, argErr("(delay,jitter)")
		}
		if ev.Jitter, err = time.ParseDuration(args[1]); err != nil {
			return ev, argErr("(delay,jitter)")
		}
	case "healdelays":
		ev.Action = ActHealDelays
	case "crash", "restart":
		ev.Action = ActCrash
		if name == "restart" {
			ev.Action = ActRestart
		}
		if len(args) != 1 {
			return ev, argErr("(node)")
		}
		var err error
		if ev.A, err = strconv.Atoi(args[0]); err != nil {
			return ev, argErr("(node)")
		}
	default:
		return ev, fmt.Errorf("chaos: event %q: unknown action %q", spec, name)
	}
	return ev, nil
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// Record is one fired event in the engine's replayable fault log.
type Record struct {
	// Index is the event's position in Schedule.Events; the log is returned
	// sorted by it, so two runs of the same schedule compare equal
	// record-for-record whatever goroutine fired each event first.
	Index int
	// Event is the fired event's canonical spec string.
	Event string
	// Cycle is the cycle anchor the event fired at (-1 for wall-clock
	// events).
	Cycle int
	// Err carries an injection failure (e.g. crashing an already-dead
	// node), empty on success.
	Err string
}

// Engine fires a Schedule's events against an Injector (and optionally a
// Crasher), recording a deterministic fault log. Cycle-anchored events fire
// synchronously from OnCycle at flush-cycle boundaries; wall-clock events
// ride timers armed at Start. Every event fires at most once.
type Engine struct {
	sched  Schedule
	inj    Injector
	cr     Crasher
	tracer *obs.Tracer

	mu      sync.Mutex
	started bool
	stopped bool
	fired   []bool
	log     []Record
	timers  []*time.Timer
}

// New builds an engine over the schedule. cr may be nil when the schedule
// has no crash/restart events (firing one then records an error instead of
// crashing anything). tracer may be nil.
func New(sched Schedule, inj Injector, cr Crasher, tracer *obs.Tracer) *Engine {
	return &Engine{sched: sched, inj: inj, cr: cr, tracer: tracer,
		fired: make([]bool, len(sched.Events))}
}

// Start fires the events anchored before the first cycle (cycle 0) and arms
// the wall-clock timers. Idempotent.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.started = true
	var wall []int
	for i, ev := range e.sched.Events {
		if ev.Cycle < 0 {
			wall = append(wall, i)
		}
	}
	for _, i := range wall {
		i := i
		e.timers = append(e.timers, time.AfterFunc(e.sched.Events[i].At, func() {
			e.mu.Lock()
			defer e.mu.Unlock()
			e.fireLocked(i)
		}))
	}
	defer e.mu.Unlock()
	e.fireCycleLocked(0)
}

// OnCycle advances the cycle clock: the report of flush cycle `completed`
// is in, so events anchored at cycle completed+1 (and any earlier anchor a
// skipped report left behind) fire now, before the next cycle runs. Wire it
// after the session's per-cycle hook.
func (e *Engine) OnCycle(completed int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fireCycleLocked(completed + 1)
}

// fireCycleLocked fires every unfired event with a cycle anchor <= cycle, in
// schedule order. Caller holds e.mu.
func (e *Engine) fireCycleLocked(cycle int) {
	if e.stopped {
		return
	}
	for i, ev := range e.sched.Events {
		if !e.fired[i] && ev.Cycle >= 0 && ev.Cycle <= cycle {
			e.fireLocked(i)
		}
	}
}

// fireLocked executes one event and records it. Caller holds e.mu; the
// injection runs under it, serializing chaos mutations against each other.
func (e *Engine) fireLocked(i int) {
	if e.stopped || e.fired[i] {
		return
	}
	e.fired[i] = true
	ev := e.sched.Events[i]
	var err error
	switch ev.Action {
	case ActCut:
		e.inj.CutPair(ev.A, ev.B)
	case ActHeal:
		e.inj.HealPair(ev.A, ev.B)
	case ActPartition:
		err = e.inj.Partition(ev.Groups...)
	case ActHealAll:
		e.inj.HealAll()
	case ActDelay:
		e.inj.DelayPair(ev.A, ev.B, ev.Delay, ev.Jitter)
	case ActDelayAll:
		e.inj.DelayAll(ev.Delay, ev.Jitter)
	case ActHealDelays:
		e.inj.HealDelays()
	case ActCrash:
		if e.cr == nil {
			err = fmt.Errorf("chaos: no crasher wired for %q", ev)
		} else {
			err = e.cr.Kill(ev.A)
		}
	case ActRestart:
		if e.cr == nil {
			err = fmt.Errorf("chaos: no crasher wired for %q", ev)
		} else {
			err = e.cr.Restart(ev.A)
		}
	}
	rec := Record{Index: i, Event: ev.String(), Cycle: ev.Cycle}
	if err != nil {
		rec.Err = err.Error()
	}
	e.log = append(e.log, rec)
	if e.tracer.Enabled() {
		detail := rec.Event
		if rec.Err != "" {
			detail += " err=" + rec.Err
		}
		e.tracer.Emit(obs.Event{Cat: "chaos", Name: ev.Action.String(),
			Cycle: ev.Cycle, Detail: detail})
	}
}

// Stop cancels pending wall-clock timers; no further event fires. Idempotent.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stopped = true
	for _, t := range e.timers {
		t.Stop()
	}
	e.timers = nil
}

// Log returns the fired-event records sorted by schedule index — the
// replayable fault log: two runs of the same (seed, schedule) that fired the
// same events produce equal logs.
func (e *Engine) Log() []Record {
	e.mu.Lock()
	out := append([]Record(nil), e.log...)
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
