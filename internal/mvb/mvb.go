// Package mvb implements the paper's Section 4 extension: error-free
// multi-valued Byzantine broadcast (the "Byzantine Generals" problem) for a
// designated source holding an L-bit value, tolerating t < n/3 faults.
//
// Construction: the source sends its value to every processor ((n-1)·L bits),
// and all processors then run Algorithm 1 multi-valued consensus on what they
// received. Correctness is immediate from the consensus properties:
//
//   - source honest ⇒ all honest consensus inputs equal the source's value
//     ⇒ consensus validity delivers exactly that value to every honest
//     processor (broadcast validity);
//   - source faulty ⇒ consensus consistency still makes all honest outputs
//     identical (broadcast consistency).
//
// Total cost is (n-1)·L + Ccon(L) ≈ (1 + n/(n-2t))·(n-1)·L + O(n⁴√L), i.e.
// O(nL) for large L. The companion tech report the paper cites ([8]) reaches
// 1.5(n-1)·L + Θ(n⁴√L) with an optimised dissemination we do not reproduce;
// experiment E9 (cmd/experiments, index in DESIGN.md §8) reports this
// implementation's measured constant against the (n-1)·L lower bound the
// paper quotes.
package mvb

import (
	"fmt"

	"byzcons/internal/consensus"
	"byzcons/internal/sim"
)

// Params configures one broadcast run.
type Params struct {
	// Source is the broadcasting processor's id.
	Source int
	// Consensus configures the underlying Algorithm 1 instance.
	Consensus consensus.Params
}

// Output is the per-processor result of a broadcast run.
type Output struct {
	Value         []byte
	L             int
	Defaulted     bool
	Generations   int
	DiagnosisRuns int
	// PipelinedRounds and Squashes report the underlying consensus
	// pipeline's critical-path rounds and discarded speculative generations
	// (see consensus.Output); the dissemination round is not included.
	PipelinedRounds int64
	Squashes        int
}

// Run executes the broadcast at processor p. value is consulted only at the
// source; every processor must pass the same L.
func Run(p *sim.Proc, par Params, value []byte, L int) *Output {
	n := par.Consensus.N
	if par.Source < 0 || par.Source >= n {
		p.Abort(fmt.Errorf("mvb: source %d out of range [0,%d)", par.Source, n))
	}

	// Dissemination round: the source sends the full value to everyone.
	var out []sim.Message
	if p.ID == par.Source {
		for to := 0; to < n; to++ {
			if to != p.ID {
				out = append(out, sim.Message{To: to, Payload: value, Bits: int64(L), Tag: "mvb.send"})
			}
		}
	}
	in := p.Exchange("mvb/send", out, nil)
	received := make([]byte, (L+7)/8)
	if p.ID == par.Source {
		copy(received, value)
	} else {
		for _, m := range in {
			if m.From != par.Source {
				continue
			}
			if b, ok := m.Payload.([]byte); ok {
				copy(received, b)
			}
			break
		}
	}

	// Agreement on the received values via Algorithm 1.
	res := consensus.Run(p, par.Consensus, received, L)
	return &Output{
		Value:           res.Value,
		L:               L,
		Defaulted:       res.Defaulted,
		Generations:     res.Generations,
		DiagnosisRuns:   res.DiagnosisRuns,
		PipelinedRounds: res.PipelinedRounds,
		Squashes:        res.Squashes,
	}
}
