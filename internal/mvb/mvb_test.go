package mvb

import (
	"bytes"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/consensus"
	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

func runMVB(t *testing.T, par Params, value []byte, L int, faulty []int, adv sim.Adversary, seed int64) ([]*Output, *metrics.Meter) {
	t.Helper()
	res := sim.Run(sim.RunConfig{N: par.Consensus.N, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return Run(p, par, value, L)
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	outs := make([]*Output, par.Consensus.N)
	for i, v := range res.Values {
		outs[i], _ = v.(*Output)
	}
	return outs, res.Meter
}

func TestHonestSourceValidity(t *testing.T) {
	val := bytes.Repeat([]byte{0xF1, 0x07}, 30)
	L := len(val) * 8
	par := Params{Source: 2, Consensus: consensus.Params{N: 7, T: 2, BSB: bsb.Oracle}}
	outs, meter := runMVB(t, par, val, L, []int{0, 5}, adversary.RandomByz{P: 0.4}, 3)
	for i, o := range outs {
		if i == 0 || i == 5 {
			continue
		}
		if o.Defaulted || !bytes.Equal(o.Value, val) {
			t.Fatalf("proc %d: defaulted=%v wrong value", i, o.Defaulted)
		}
	}
	// The dissemination round must cost (n-1)·L bits.
	if got := meter.BitsByPrefix("mvb.send"); got != int64(6*L) {
		t.Errorf("dissemination cost = %d, want %d", got, 6*L)
	}
}

// equivocatingSource sends different values to different receivers.
type equivocatingSource struct{}

func (equivocatingSource) ReworkExchange(ctx *sim.ExchangeCtx) {
	if ctx.Step != "mvb/send" {
		return
	}
	for from := range ctx.Out {
		if !ctx.Faulty[from] {
			continue
		}
		for i := range ctx.Out[from] {
			m := &ctx.Out[from][i]
			if b, ok := m.Payload.([]byte); ok && m.To%2 == 0 {
				c := make([]byte, len(b))
				for j := range b {
					c[j] = b[j] ^ 0xFF
				}
				m.Payload = c
			}
		}
	}
}

func (equivocatingSource) ReworkSync(*sim.SyncCtx) {}

func TestFaultySourceConsistency(t *testing.T) {
	val := bytes.Repeat([]byte{0x33}, 24)
	L := len(val) * 8
	for seed := int64(0); seed < 5; seed++ {
		par := Params{Source: 1, Consensus: consensus.Params{N: 7, T: 2, BSB: bsb.Oracle}}
		outs, _ := runMVB(t, par, val, L, []int{1}, equivocatingSource{}, seed)
		var ref *Output
		for i, o := range outs {
			if i == 1 {
				continue
			}
			if ref == nil {
				ref = o
				continue
			}
			if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted {
				t.Fatalf("seed %d: honest outputs diverged under equivocating source", seed)
			}
		}
	}
}

func TestSilentSourceDefaults(t *testing.T) {
	// A silent faulty source delivers nothing; honest processors hold
	// distinct zero... equal zero values actually: missing payload = zeros,
	// so consensus decides the zero value consistently.
	val := bytes.Repeat([]byte{0x44}, 16)
	L := len(val) * 8
	par := Params{Source: 0, Consensus: consensus.Params{N: 4, T: 1, BSB: bsb.Oracle}}
	outs, _ := runMVB(t, par, val, L, []int{0}, adversary.Silent{}, 7)
	zero := make([]byte, 16)
	for i, o := range outs {
		if i == 0 {
			continue
		}
		if !bytes.Equal(o.Value, zero) {
			t.Fatalf("proc %d decided %x, want zeros", i, o.Value)
		}
	}
}

func TestSourceEquivocationTriggersDiagnosisOrDefault(t *testing.T) {
	// Splitting honest receivers between two values must end either in a
	// common default or one common value — never divergence; with a 4/2
	// honest split and symbol equivocation, the matching stage sorts it out.
	val := bytes.Repeat([]byte{0x5F}, 24)
	L := len(val) * 8
	par := Params{Source: 6, Consensus: consensus.Params{N: 7, T: 2, BSB: bsb.EIG, Lanes: 1, SymBits: 8}}
	outs, _ := runMVB(t, par, val, L, []int{6}, equivocatingSource{}, 11)
	var ref *Output
	for i, o := range outs {
		if i == 6 {
			continue
		}
		if ref == nil {
			ref = o
			continue
		}
		if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted {
			t.Fatal("honest outputs diverged")
		}
	}
}

func TestBadSourceRejected(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 4, Seed: 1}, func(p *sim.Proc) any {
		return Run(p, Params{Source: 9, Consensus: consensus.Params{N: 4, T: 1}}, []byte{1}, 8)
	})
	if res.Err == nil {
		t.Error("out-of-range source accepted")
	}
}
