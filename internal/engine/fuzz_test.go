package engine

import (
	"bytes"
	"testing"
)

// FuzzPackRoundTrip fuzzes the batch framing: any value set (decoded from
// the fuzzer's raw bytes with self-delimiting slicing) must round-trip
// through packValues/unpackValues exactly, and unpackValues must never panic
// or mis-parse arbitrary blobs.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(2))
	f.Add(bytes.Repeat([]byte{0xAB}, 400), uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, cuts uint8) {
		// Slice raw into up to cuts+1 values at deterministic cut points.
		n := int(cuts%16) + 1
		values := make([][]byte, 0, n)
		rest := raw
		for i := 0; i < n && len(rest) > 0; i++ {
			w := len(rest) / (n - i)
			values = append(values, rest[:w])
			rest = rest[w:]
		}
		packed := packValues(values)
		if len(packed)*8 != packedBits(values) {
			t.Fatalf("packedBits %d != %d", packedBits(values), len(packed)*8)
		}
		got, err := unpackValues(packed)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(got) != len(values) {
			t.Fatalf("count %d != %d", len(got), len(values))
		}
		for i := range values {
			if !bytes.Equal(got[i], values[i]) {
				t.Fatalf("value %d mismatch", i)
			}
		}

		// Arbitrary blobs must parse or fail cleanly — and any successful
		// parse must re-pack to the identical blob (canonical framing).
		if vals, err := unpackValues(raw); err == nil {
			if !bytes.Equal(packValues(vals), raw) {
				t.Fatal("non-canonical parse of arbitrary blob")
			}
		}
	})
}
