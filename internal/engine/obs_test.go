package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"byzcons/internal/obs"
)

// TestEngineTimingAndMetrics: a flush cycle fills in Report.Timing (cycle
// wall-clock, per-phase partition, exact decision percentiles), records the
// matching histograms and counters in the registry, and traces cycle and
// phase spans.
func TestEngineTimingAndMetrics(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 4
	cfg.Instances = 2
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(256, nil)
	cfg.Tracer.SetEnabled(true)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, pendings := submitN(t, e, 10, 16)
	rep, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pendings {
		if d := p.Wait(context.Background()); d.Err != nil {
			t.Fatal(d.Err)
		}
	}

	tm := rep.Timing
	if tm.Cycle <= 0 {
		t.Errorf("Timing.Cycle = %v, want > 0", tm.Cycle)
	}
	if tm.Decisions != 10 {
		t.Errorf("Timing.Decisions = %d, want 10", tm.Decisions)
	}
	if tm.DecisionP50 <= 0 {
		t.Errorf("DecisionP50 = %v, want > 0", tm.DecisionP50)
	}
	if tm.DecisionP90 < tm.DecisionP50 || tm.DecisionP99 < tm.DecisionP90 || tm.DecisionMax < tm.DecisionP99 {
		t.Errorf("percentiles out of order: p50=%v p90=%v p99=%v max=%v",
			tm.DecisionP50, tm.DecisionP90, tm.DecisionP99, tm.DecisionMax)
	}
	// Fail-free run: real matching/broadcast/RS work, no diagnoses.
	if tm.Broadcast <= 0 || tm.RS <= 0 {
		t.Errorf("phase partition empty: match=%v bcast=%v rs=%v", tm.Match, tm.Broadcast, tm.RS)
	}
	if tm.Match < 0 || tm.Diagnosis != 0 {
		t.Errorf("unexpected phase values: match=%v diag=%v", tm.Match, tm.Diagnosis)
	}

	snap := e.Metrics().Snapshot()
	if got := snap.Histograms["engine_decision_ns"].Count; got != 10 {
		t.Errorf("engine_decision_ns count = %d, want 10", got)
	}
	if got := snap.Histograms["engine_queue_wait_ns"].Count; got != 10 {
		t.Errorf("engine_queue_wait_ns count = %d, want 10", got)
	}
	if got := snap.Histograms["engine_cycle_ns"].Count; got < 1 {
		t.Errorf("engine_cycle_ns count = %d, want >= 1", got)
	}
	if got := snap.Counters["consensus_phase_broadcast_ns"]; got <= 0 {
		t.Errorf("consensus_phase_broadcast_ns = %d, want > 0", got)
	}
	if got := snap.Gauges["engine_decided"]; got != 10 {
		t.Errorf("engine_decided gauge = %d, want 10", got)
	}

	var sawCycle, sawPhase bool
	phases := map[string]bool{"match": true, "broadcast": true, "rs": true, "diagnosis": true}
	for _, ev := range cfg.Tracer.Events() {
		switch ev.Cat {
		case "cycle":
			if ev.Name == "flush" && ev.Dur > 0 {
				sawCycle = true
			}
		case "phase":
			if !phases[ev.Name] {
				t.Errorf("unknown phase event %q", ev.Name)
			}
			sawPhase = true
		}
	}
	if !sawCycle || !sawPhase {
		t.Errorf("trace missing spans: cycle=%v phase=%v (of %d events)",
			sawCycle, sawPhase, len(cfg.Tracer.Events()))
	}
}

// TestEngineTimingZeroWhenDisabled: DisableMetrics turns the whole layer
// off — Timing stays zeroed and nothing lands in the registry.
func TestEngineTimingZeroWhenDisabled(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 4
	cfg.DisableMetrics = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, e, 4, 16)
	rep, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timing != (Timing{}) {
		t.Errorf("Timing recorded with metrics disabled: %+v", rep.Timing)
	}
	if snap := e.Metrics().Snapshot(); len(snap.Histograms) != 0 {
		t.Errorf("histograms registered with metrics disabled: %v", snap.Histograms)
	}
}

// obsGuardThroughput runs one engine (metrics on or off) through the given
// number of identical flush cycles and returns decided values per second.
func obsGuardThroughput(t *testing.T, disable bool, cycles, values int) float64 {
	t.Helper()
	cfg := testConfig()
	cfg.BatchValues = 16
	cfg.Instances = 2
	cfg.DisableMetrics = disable
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for c := 0; c < cycles; c++ {
		pendings := make([]*Pending, values)
		for i := range pendings {
			v := []byte(fmt.Sprintf("guard-%d-%04d", c, i))
			if pendings[i], err = e.Submit(v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, p := range pendings {
			if d := p.Wait(context.Background()); d.Err != nil {
				t.Fatal(d.Err)
			}
		}
	}
	return float64(cycles*values) / time.Since(start).Seconds()
}

// TestMetricsOverheadGuard is the observability overhead guard: with the
// tracer off, full metric recording must stay within noise of the
// DisableMetrics twin. The instrumentation budget is 8%: the multi-core PR's
// parallel fibers and coalesced writes shortened the cycles the guard
// measures, so the same absolute noise is a larger fraction of a run and the
// old 5% bar tripped on clean builds. Scheduling noise on a loaded CI box is
// real on top of that, so each side takes its best of several interleaved
// runs and a failing comparison gets one clean retry before it counts.
func TestMetricsOverheadGuard(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU: simulator scheduling noise swamps the overhead budget")
	}
	cycles, values := 6, 32
	if testing.Short() {
		cycles = 2
	}
	best := func(disable bool, runs int) float64 {
		var b float64
		for i := 0; i < runs; i++ {
			if v := obsGuardThroughput(t, disable, cycles, values); v > b {
				b = v
			}
		}
		return b
	}
	const budget = 0.92
	for attempt := 0; ; attempt++ {
		off := best(true, 5)
		on := best(false, 5)
		ratio := on / off
		t.Logf("attempt %d: metrics on %.0f values/s, off %.0f values/s, ratio %.3f", attempt, on, off, ratio)
		if ratio >= budget {
			return
		}
		if attempt >= 1 {
			t.Fatalf("metrics overhead above budget: ratio %.3f < %.2f (on %.0f vs off %.0f values/s)",
				ratio, budget, on, off)
		}
	}
}
