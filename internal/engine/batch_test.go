package engine

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	t.Parallel()
	cases := [][][]byte{
		{},
		{nil},
		{{}},
		{{1, 2, 3}},
		{{1}, {2, 3}, {}, {4, 5, 6, 7}},
		{bytes.Repeat([]byte{0xFF}, 300)}, // multi-byte varint length
	}
	for i, values := range cases {
		packed := packValues(values)
		if len(packed)*8 != packedBits(values) {
			t.Errorf("case %d: packedBits = %d, want %d", i, packedBits(values), len(packed)*8)
		}
		got, err := unpackValues(packed)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(values) {
			t.Fatalf("case %d: %d values, want %d", i, len(got), len(values))
		}
		for j := range values {
			if !bytes.Equal(got[j], values[j]) {
				t.Errorf("case %d value %d: %x != %x", i, j, got[j], values[j])
			}
		}
	}
}

// TestPackUnpackProperty is the satellite property test: the engine's batch
// pack/unpack round-trips arbitrary value sets.
func TestPackUnpackProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		values := make([][]byte, rng.Intn(20))
		for i := range values {
			v := make([]byte, rng.Intn(100))
			rng.Read(v)
			values[i] = v
		}
		got, err := unpackValues(packValues(values))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got) != len(values) {
			t.Fatalf("iter %d: count %d != %d", iter, len(got), len(values))
		}
		for i := range values {
			if !bytes.Equal(got[i], values[i]) {
				t.Fatalf("iter %d value %d mismatch", iter, i)
			}
		}
	}
}

func TestUnpackRejectsMalformed(t *testing.T) {
	t.Parallel()
	for name, blob := range map[string][]byte{
		"empty":             {},
		"huge count":        {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"truncated value":   {1, 10, 1, 2},
		"trailing garbage":  {1, 1, 7, 9},
		"missing length":    {2, 1, 7},
		"truncated varint":  {0x80},
		"count over buffer": {5, 0},
	} {
		if _, err := unpackValues(blob); err == nil {
			t.Errorf("%s accepted: %x", name, blob)
		}
	}
}
