// Package engine is the streaming consensus engine behind the public Session
// API: it coalesces pending client values into one long L-bit input per
// consensus instance — amortizing the per-generation Broadcast_Single_Bit
// overhead exactly as the paper's O(nL) result intends — and pipelines up to
// Config.Instances concurrent instances over the deployment backend,
// demultiplexing the decided batches back into per-client decisions with
// per-instance and per-batch metrics.
//
// Flushing is driven by a background Policy (value-count, byte-size and delay
// triggers) so callers submit from any number of goroutines and decisions
// stream back; the manual Flush entry point remains for callers that want
// explicit batch boundaries. Each flush cycle runs over the configured Runner
// — the in-memory simulator by default, or a networked cluster whose
// transport mesh persists across cycles (internal/node).
//
// The engine models a replicated service: all n processors receive the same
// stream of client values (the validity case), while up to t of them are
// Byzantine and may deviate arbitrarily via the configured adversary. The
// error-free guarantee of Algorithm 1 then makes every per-client decision
// equal at all honest processors, whatever the adversary does.
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"byzcons/internal/consensus"
	"byzcons/internal/obs"
	"byzcons/internal/sim"
)

// ErrClosed is the sentinel for work that outlives its engine: Submit after
// Close returns it, and every submission still queued (not yet flushing) when
// Close is called resolves promptly with a Decision carrying it — a Wait
// never blocks on a closed engine.
var ErrClosed = errors.New("engine: closed")

// Runner abstracts the deployment backend that executes one flush cycle of
// batched consensus instances: the in-memory simulator (sim.RunBatch, the
// default) or a networked cluster (internal/node) that runs the same
// instances over encoded messages on a transport mesh dialed once and reused
// across cycles — per-cycle instance demux rides an epoch tag in the frames,
// not fresh connections. Both return the simulator's result types, so
// batching, metrics and decision demux are backend-agnostic. The engine
// serializes RunBatch calls: at most one cycle is in flight at a time.
type Runner interface {
	RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult
}

// simRunner is the default Runner: the single-host simulator.
type simRunner struct{}

func (simRunner) RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	return sim.RunBatch(cfg, body)
}

// Policy drives background flushing. A trigger with a non-positive value is
// disabled; the zero Policy disables auto-flushing entirely (manual Flush /
// Drain only).
type Policy struct {
	// MaxValues flushes once at least this many values are queued.
	MaxValues int
	// MaxBytes flushes once the queued values' packed payload bytes reach
	// this threshold.
	MaxBytes int
	// MaxDelay flushes at most this long after a value was enqueued, so a
	// trickle of submissions never waits indefinitely for a full batch.
	MaxDelay time.Duration
}

// active reports whether any trigger is enabled (the engine only runs a
// background flusher when one is).
func (p Policy) active() bool {
	return p.MaxValues > 0 || p.MaxBytes > 0 || p.MaxDelay > 0
}

// Config configures an Engine.
type Config struct {
	// Consensus carries the protocol parameters shared by every processor
	// (n, t, symbol width, lanes, broadcast substrate, default value).
	Consensus consensus.Params
	// Runner executes each cycle's batched instances; nil selects the
	// in-memory simulator.
	Runner Runner
	// Seed drives all randomness deterministically; each flush cycle and
	// instance derives its own sub-seed.
	Seed int64
	// Faulty lists the adversary-controlled processor ids (at most T).
	Faulty []int
	// Adversary injects Byzantine deviations; nil means fail-free execution.
	Adversary sim.Adversary
	// Degrade enables graceful degradation on a networked runner: a cycle
	// whose rounds miss frames only from peers with broken channels keeps
	// completing (the missing contributions degrade to ⊥, attributed in the
	// report) for up to Consensus.T such peers, instead of failing the
	// cycle's instances. The decision cross-check then tolerates up to T
	// missing honest outputs — agreement is still required of every output
	// that exists. No effect on the simulator runner.
	Degrade bool
	// BatchValues caps how many client values are coalesced into one
	// consensus instance (0 = 64).
	BatchValues int
	// BatchBytes caps the packed payload bytes per instance (0 = 1 MiB).
	// A single oversized value still forms its own batch.
	BatchBytes int
	// Instances is the number of consensus instances pipelined concurrently
	// over the deployment per flush cycle (0 = 4).
	Instances int
	// Policy drives background flushing; the zero value keeps the engine
	// fully manual (Flush/Drain/Close only).
	Policy Policy
	// ReportBuffer is the capacity of the Reports stream (0 = 16). The
	// stream is lossy: when the consumer lags, new per-cycle reports are
	// dropped (counted in Stats.ReportsDropped) rather than stalling flushes.
	ReportBuffer int
	// OnCycle, if non-nil, is called synchronously after every flush cycle
	// with that cycle's report — the per-cycle observability hook. It runs on
	// the flushing goroutine, so it must not block on engine progress, and it
	// must treat the report (including its Batches slice) as read-only.
	OnCycle func(Report)
	// Metrics is the registry the engine records runtime metrics into
	// (queue depth and wait, cycle/decision latency histograms, per-phase
	// wall-clock counters). nil creates a private registry; Metrics() on the
	// engine returns it either way.
	Metrics *obs.Registry
	// Tracer, if non-nil and enabled, receives structured protocol trace
	// events (cycle spans, per-generation phase spans, squashes, flush
	// triggers). A nil or disabled tracer costs one branch per event site.
	Tracer *obs.Tracer
	// DisableMetrics turns all metric recording off (the tracer too). It
	// exists for the observability overhead guard — an A/B benchmark needs
	// an instrumentation-free twin in the same binary — not for production
	// use: the record paths are a few atomics per event.
	DisableMetrics bool
}

// Decision is the consensus outcome for one submitted value.
type Decision struct {
	// Value is the decided value for this submission — equal to the
	// submitted value whenever the honest processors agree on the batch
	// (always, under the error-free guarantee).
	Value []byte
	// Batch is the global sequence number of the batch the value rode in
	// (-1 when the value never reached a batch, e.g. failed by Close).
	Batch int
	// Defaulted reports that the batch's instance decided the default value
	// (honest inputs provably differed), so Value is nil.
	Defaulted bool
	// Err is set when the batch's instance failed outright, or when the
	// engine was closed before the value flushed (ErrClosed).
	Err error
}

// Pending is a handle on a submitted value's eventual decision. A Pending
// always resolves: with the batch's decision once its flush cycle commits,
// or with ErrClosed when the engine closes first.
type Pending struct {
	once sync.Once
	done chan struct{}
	d    Decision
}

func newPending() *Pending { return &Pending{done: make(chan struct{})} }

// resolve delivers the decision; the first resolution wins.
func (p *Pending) resolve(d Decision) {
	p.once.Do(func() {
		p.d = d
		close(p.done)
	})
}

// Wait blocks until the submission's decision is available or ctx is done.
// On cancellation it returns a Decision carrying ctx.Err(); the submission
// itself stays in flight and a later Wait can still retrieve its decision.
// A decision that is already available wins over a cancelled context.
func (p *Pending) Wait(ctx context.Context) Decision {
	select {
	case <-p.done:
		return p.d
	case <-ctx.Done():
		select {
		case <-p.done:
			return p.d
		default:
			return Decision{Batch: -1, Err: ctx.Err()}
		}
	}
}

// Done returns a channel closed once the decision is available, for callers
// multiplexing pendings in their own select loops.
func (p *Pending) Done() <-chan struct{} { return p.done }

// BatchStats describes one consensus instance (= one batch of values).
type BatchStats struct {
	Batch      int // global batch sequence number
	Cycle      int // flush cycle the batch ran in
	Instance   int // instance slot within its cycle
	Values     int // client values coalesced into the batch
	PackedBits int // L of the packed input
	Bits       int64
	Rounds     int64
	// PipelinedRounds is the batch's generation-pipeline critical path in
	// rounds (consensus.Output.PipelinedRounds): the latency win of
	// Consensus.Window > 1 shows up here, while Rounds keeps counting all
	// executed barriers including squashed speculation.
	PipelinedRounds int64
	// Squashes counts the batch's discarded speculative generations.
	Squashes      int
	Generations   int
	DiagnosisRuns int
	Defaulted     bool
	// BitsPerValue is the amortized communication cost of the batch: total
	// protocol traffic divided by the number of client values it carried.
	BitsPerValue float64
}

// Report summarises flushed work: one cycle on the Reports stream and the
// OnCycle hook, or every cycle a manual Flush/Drain ran.
type Report struct {
	// Cycle is the cycle id of a per-cycle report; -1 on the aggregated
	// reports returned by Flush.
	Cycle   int
	Batches []BatchStats
	Values  int
	Bits    int64
	// Rounds is the pipelined round count: the maximum per-instance rounds
	// within a cycle (summed over cycles for aggregated reports).
	Rounds int64
	// PeersDown lists (sorted, deduplicated) the processors whose channels
	// were observed down during the covered cycles — dropped connections and
	// stall-detector isolations on a networked backend. A peer listed for
	// one cycle and absent from the next recovered and rejoined at the epoch
	// boundary; always empty on the simulator backend.
	PeersDown []int
	// Degraded reports that some round of the covered cycles completed
	// against synthesized ⊥ contributions under Config.Degrade — the cycle's
	// decisions stand, but fewer than n processors produced them.
	Degraded bool
	// DegradedPeers lists (sorted, deduplicated) the peers whose silence the
	// covered cycles degraded around: the fault-attribution view of Degraded.
	DegradedPeers []int
	// Timing is the cycle's wall-clock breakdown: total duration, the
	// per-phase partition of the consensus work, and exact decision-latency
	// percentiles for the values the cycle resolved. Zeroed when the
	// engine's metrics are disabled.
	Timing Timing
	// Err is the first instance failure of the covered cycles, if any.
	Err error
}

// Timing is one flush cycle's wall-clock accounting (Report.Timing).
type Timing struct {
	// Cycle is the cycle's wall-clock: input packing through decision
	// demux, consensus included.
	Cycle time.Duration
	// Match, Broadcast, RS and Diagnosis partition the per-generation
	// protocol wall-clock measured at processor 0 (consensus.Phase), summed
	// over the cycle's instances and generations. Instances run
	// concurrently, so the four phases' sum can exceed Cycle — it reads as
	// aggregate protocol work, while Cycle is elapsed wall-clock.
	Match, Broadcast, RS, Diagnosis time.Duration
	// DecisionP50/P90/P99/Max are exact (sorted, not histogram-estimated)
	// percentiles of the enqueue-to-decision latency of the values this
	// cycle resolved successfully.
	DecisionP50, DecisionP90, DecisionP99, DecisionMax time.Duration
	// Decisions is the latency sample count (values resolved this cycle).
	Decisions int
}

// merge folds a cycle's timing into an aggregate: durations and sample
// counts sum, percentiles keep the worst cycle's value (percentiles do not
// compose across cycles; the worst is the honest summary).
func (t *Timing) merge(c Timing) {
	t.Cycle += c.Cycle
	t.Match += c.Match
	t.Broadcast += c.Broadcast
	t.RS += c.RS
	t.Diagnosis += c.Diagnosis
	t.Decisions += c.Decisions
	t.DecisionP50 = maxDur(t.DecisionP50, c.DecisionP50)
	t.DecisionP90 = maxDur(t.DecisionP90, c.DecisionP90)
	t.DecisionP99 = maxDur(t.DecisionP99, c.DecisionP99)
	t.DecisionMax = maxDur(t.DecisionMax, c.DecisionMax)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// merge folds a per-cycle report into an aggregate.
func (r *Report) merge(c Report) {
	r.Batches = append(r.Batches, c.Batches...)
	r.Values += c.Values
	r.Bits += c.Bits
	r.Rounds += c.Rounds
	r.PeersDown = mergePeers(r.PeersDown, c.PeersDown)
	r.Degraded = r.Degraded || c.Degraded
	r.DegradedPeers = mergePeers(r.DegradedPeers, c.DegradedPeers)
	r.Timing.merge(c.Timing)
	if r.Err == nil {
		r.Err = c.Err
	}
}

// mergePeers unions two sorted peer-id lists.
func mergePeers(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]bool, len(a)+len(b))
	for _, p := range a {
		seen[p] = true
	}
	out := append([]int(nil), a...)
	for _, p := range b {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// Stats is the engine's cumulative accounting.
type Stats struct {
	Submitted int
	Decided   int
	Defaulted int
	// Failed counts submissions resolved with an error: their batch's
	// instance failed, or the engine closed before they flushed.
	Failed  int
	Batches int
	Cycles  int
	Bits    int64
	Rounds  int64 // pipelined rounds, summed over all cycles
	// ReportsDropped counts per-cycle reports the lossy Reports stream had
	// to drop because its consumer lagged.
	ReportsDropped int
}

type submission struct {
	value   []byte
	pending *Pending
	// enq stamps the submission's arrival for queue-wait and
	// Propose-to-decision latency accounting. Zero when metrics are
	// disabled (one time.Now saved per submission).
	enq time.Time
}

// packedSize is the bytes the submission contributes to a packed batch.
func (s submission) packedSize() int {
	return uvarintLen(uint64(len(s.value))) + len(s.value)
}

// Engine batches submissions and drives pipelined consensus instances.
// All methods are safe for concurrent use. Cycle execution serializes on an
// internal lock, but the submission queue stays open while a cycle runs, so
// Submit never blocks behind consensus progress.
type Engine struct {
	cfg Config

	// mu guards the submission queue, counters and stats. It is never held
	// across a cycle run.
	mu         sync.Mutex
	queue      []submission
	queueBytes int
	stats      Stats
	nextBatch  int
	nextCycle  int
	closed     bool
	timer      *time.Timer
	timerArmed bool

	// flushMu serializes cycle execution across the background flusher and
	// manual Flush/Drain callers.
	flushMu sync.Mutex

	trigger     chan struct{} // wakes the background flusher (cap 1)
	stop        chan struct{} // closed by Close to retire the flusher
	flusherDone chan struct{} // closed when the flusher goroutine exits; nil if never started

	repMu     sync.Mutex
	reports   chan Report
	repClosed bool

	reg *obs.Registry
	met engineMetrics
}

// engineMetrics caches the engine's registry entries so the hot path never
// takes the registry lock. All fields are nil when Config.DisableMetrics
// is set — every obs record method is a nil-safe no-op, so call sites need
// no guards.
type engineMetrics struct {
	enabled    bool
	queueDepth *obs.Gauge     // values waiting for a flush cycle
	queueWait  *obs.Histogram // ns from enqueue to cycle pack
	cycleDur   *obs.Histogram // ns per flush cycle
	decision   *obs.Histogram // ns from enqueue to decision resolve
	fibers     *obs.Gauge     // live generation fibers (processor 0)
	phases     [consensus.NumPhases]*obs.Counter
}

// registerMetrics wires the engine's metrics and read-through stat gauges
// into reg.
func (e *Engine) registerMetrics() {
	e.met = engineMetrics{
		enabled:    true,
		queueDepth: e.reg.Gauge("engine_queue_depth"),
		queueWait:  e.reg.Histogram("engine_queue_wait_ns"),
		cycleDur:   e.reg.Histogram("engine_cycle_ns"),
		decision:   e.reg.Histogram("engine_decision_ns"),
		fibers:     e.reg.Gauge("consensus_fibers_live"),
	}
	for ph := consensus.Phase(0); ph < consensus.NumPhases; ph++ {
		e.met.phases[ph] = e.reg.Counter("consensus_phase_" + ph.String() + "_ns")
	}
	for _, sf := range []struct {
		name string
		read func(Stats) int64
	}{
		{"engine_submitted", func(s Stats) int64 { return int64(s.Submitted) }},
		{"engine_decided", func(s Stats) int64 { return int64(s.Decided) }},
		{"engine_defaulted", func(s Stats) int64 { return int64(s.Defaulted) }},
		{"engine_failed", func(s Stats) int64 { return int64(s.Failed) }},
		{"engine_batches", func(s Stats) int64 { return int64(s.Batches) }},
		{"engine_cycles", func(s Stats) int64 { return int64(s.Cycles) }},
		{"engine_reports_dropped", func(s Stats) int64 { return int64(s.ReportsDropped) }},
	} {
		read := sf.read
		e.reg.Func(sf.name, func() int64 { return read(e.Stats()) })
	}
}

// New validates cfg, fills defaults, starts the background flusher when the
// policy enables one, and returns an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Consensus.N < 1 {
		return nil, fmt.Errorf("engine: need n >= 1, got %d", cfg.Consensus.N)
	}
	if len(cfg.Faulty) > cfg.Consensus.T {
		return nil, fmt.Errorf("engine: %d faulty processors exceed t=%d", len(cfg.Faulty), cfg.Consensus.T)
	}
	if cfg.BatchValues == 0 {
		cfg.BatchValues = 64
	}
	if cfg.BatchValues < 1 {
		return nil, fmt.Errorf("engine: BatchValues must be >= 1, got %d", cfg.BatchValues)
	}
	if cfg.BatchBytes == 0 {
		cfg.BatchBytes = 1 << 20
	}
	if cfg.BatchBytes < 1 {
		return nil, fmt.Errorf("engine: BatchBytes must be >= 1, got %d", cfg.BatchBytes)
	}
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("engine: Instances must be >= 1, got %d", cfg.Instances)
	}
	if cfg.ReportBuffer == 0 {
		cfg.ReportBuffer = 16
	}
	if cfg.ReportBuffer < 1 {
		return nil, fmt.Errorf("engine: ReportBuffer must be >= 1, got %d", cfg.ReportBuffer)
	}
	if cfg.Runner == nil {
		cfg.Runner = simRunner{}
	}
	e := &Engine{
		cfg:     cfg,
		trigger: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		reports: make(chan Report, cfg.ReportBuffer),
		reg:     cfg.Metrics,
	}
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	if !cfg.DisableMetrics {
		e.registerMetrics()
	}
	if cfg.Policy.active() {
		e.flusherDone = make(chan struct{})
		go e.flusher()
	}
	return e, nil
}

// Submit queues a client value for the next flush cycle and returns a handle
// on its decision. The value is copied; the caller may reuse the slice.
// Submit never blocks on consensus progress: it only appends to the queue
// and, when a policy threshold trips, nudges the background flusher.
func (e *Engine) Submit(value []byte) (*Pending, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	p := newPending()
	s := submission{value: append([]byte(nil), value...), pending: p}
	if e.met.enabled {
		s.enq = time.Now()
	}
	e.queue = append(e.queue, s)
	e.queueBytes += s.packedSize()
	e.stats.Submitted++
	e.met.queueDepth.Set(int64(len(e.queue)))
	pol := e.cfg.Policy
	byValues := pol.MaxValues > 0 && len(e.queue) >= pol.MaxValues
	byBytes := pol.MaxBytes > 0 && e.queueBytes >= pol.MaxBytes
	trigger := byValues || byBytes
	if pol.MaxDelay > 0 && !e.timerArmed {
		// Arm the delay trigger for the oldest unflushed value. The flag is
		// cleared only when the timer fires, so the timer always fires within
		// MaxDelay of any enqueue it covers — at worst it fires early
		// (a value enqueued mid-period is flushed sooner than MaxDelay).
		e.timerArmed = true
		if e.timer == nil {
			e.timer = time.AfterFunc(pol.MaxDelay, e.delayFire)
		} else {
			e.timer.Reset(pol.MaxDelay)
		}
	}
	e.mu.Unlock()
	if trigger {
		if e.cfg.Tracer.Enabled() {
			why := "values"
			if !byValues {
				why = "bytes"
			}
			e.cfg.Tracer.Emit(obs.Event{Cat: "flush", Name: "trigger", Detail: why})
		}
		e.signal()
	}
	return p, nil
}

// signal nudges the background flusher; a nudge already pending is enough.
func (e *Engine) signal() {
	select {
	case e.trigger <- struct{}{}:
	default:
	}
}

// delayFire is the MaxDelay timer callback.
func (e *Engine) delayFire() {
	e.mu.Lock()
	e.timerArmed = false
	pending := len(e.queue) > 0
	e.mu.Unlock()
	if pending {
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Emit(obs.Event{Cat: "flush", Name: "trigger", Detail: "delay"})
		}
		e.signal()
	}
}

// flusher is the background goroutine draining the queue whenever a policy
// trigger trips.
func (e *Engine) flusher() {
	defer close(e.flusherDone)
	for {
		select {
		case <-e.stop:
			return
		case <-e.trigger:
			e.flushAll() // failures land in the affected decisions and reports
		}
	}
}

// PendingCount returns the number of values queued for the next flush cycle.
func (e *Engine) PendingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Stats returns the engine's cumulative accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Reports returns the per-cycle report stream: one Report per flush cycle,
// in commit order. The channel is buffered and lossy (see
// Config.ReportBuffer) and is closed by Close once no further cycle can run.
func (e *Engine) Reports() <-chan Report { return e.reports }

// Close rejects further submissions and promptly fails every submission
// still queued with ErrClosed — a Pending.Wait never hangs on a closed
// engine. A cycle already in flight completes and resolves its own
// submissions with real decisions; Close waits for it, retires the
// background flusher, and closes the Reports stream. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	orphans := e.queue
	e.queue, e.queueBytes = nil, 0
	e.stats.Failed += len(orphans)
	if e.timer != nil {
		e.timer.Stop()
	}
	e.mu.Unlock()

	// Fail the queued-but-never-flushed submissions before waiting on the
	// in-flight cycle: their Wait callers unblock immediately.
	for _, s := range orphans {
		s.pending.resolve(Decision{Batch: -1, Err: ErrClosed})
	}
	close(e.stop)
	if e.flusherDone != nil {
		<-e.flusherDone
	}
	// Wait out a manual Flush/Drain cycle still running, then retire the
	// report stream: emissions only happen under flushMu, so after this
	// handover no send can race the close.
	e.flushMu.Lock()
	e.flushMu.Unlock() //nolint:staticcheck // lock/unlock is the handover barrier
	e.repMu.Lock()
	if !e.repClosed {
		e.repClosed = true
		close(e.reports)
	}
	e.repMu.Unlock()
	return nil
}

// Flush drains the queue synchronously: values are coalesced into batches of
// at most BatchValues values / BatchBytes bytes, batches run Instances at a
// time as pipelined consensus instances, and every flushed submission's
// Pending resolves with its per-client decision. Flush returns the
// aggregated per-batch metrics of everything it ran. With an active Policy,
// Flush remains the manual override — it serializes with the background
// flusher.
func (e *Engine) Flush() (*Report, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if e.cfg.Tracer.Enabled() {
		e.cfg.Tracer.Emit(obs.Event{Cat: "flush", Name: "trigger", Detail: "manual"})
	}
	return e.flushAll()
}

// Drain flushes everything queued and waits until those cycles committed, or
// until ctx is done. A nil return means every value submitted before Drain
// was called has resolved its Pending. On cancellation the flushing itself
// keeps running to completion in the background (cycles are not abortable);
// only the wait is abandoned.
func (e *Engine) Drain(ctx context.Context) error {
	done := make(chan error, 1)
	go func() {
		_, err := e.flushAll()
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flushAll runs flush cycles until the queue is empty. It is the single
// cycle-execution path shared by the background flusher, Flush and Drain;
// flushMu makes cycles mutually exclusive while the queue stays open for
// concurrent Submits.
func (e *Engine) flushAll() (*Report, error) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()

	agg := &Report{Cycle: -1}
	var firstErr error
	for {
		e.mu.Lock()
		cycle := e.takeCycleLocked()
		if len(cycle) == 0 {
			if len(e.queue) == 0 {
				// Release the drained backing array: e.queue is a tail slice
				// of it, and keeping it alive would pin every flushed
				// submission's value bytes.
				e.queue = nil
			}
			e.mu.Unlock()
			break
		}
		cycleID := e.nextCycle
		e.nextCycle++
		e.stats.Cycles++
		batchIDs := make([]int, len(cycle))
		for k := range cycle {
			batchIDs[k] = e.nextBatch
			e.nextBatch++
			e.stats.Batches++
		}
		e.met.queueDepth.Set(int64(len(e.queue)))
		e.mu.Unlock()

		rep := e.runCycle(cycleID, batchIDs, cycle)
		agg.merge(rep)
		if rep.Err != nil && firstErr == nil {
			firstErr = rep.Err
		}
		e.emit(rep)
	}
	return agg, firstErr
}

// takeCycleLocked carves up to Instances batches off the queue head.
// Caller holds e.mu.
func (e *Engine) takeCycleLocked() [][]submission {
	var cycle [][]submission
	for len(e.queue) > 0 && len(cycle) < e.cfg.Instances {
		var batch []submission
		size := 0
		for len(e.queue) > 0 && len(batch) < e.cfg.BatchValues {
			next := e.queue[0]
			need := next.packedSize()
			// The packed form also carries the count header; budget it so
			// the blob never exceeds BatchBytes (see packedBits).
			header := uvarintLen(uint64(len(batch) + 1))
			if len(batch) > 0 && header+size+need > e.cfg.BatchBytes {
				break
			}
			batch = append(batch, next)
			size += need
			e.queueBytes -= need
			e.queue = e.queue[1:]
		}
		cycle = append(cycle, batch)
	}
	return cycle
}

// emit delivers one cycle's report to the observability surfaces: the
// synchronous OnCycle hook and the lossy Reports stream.
func (e *Engine) emit(rep Report) {
	if e.cfg.OnCycle != nil {
		e.cfg.OnCycle(rep)
	}
	e.repMu.Lock()
	if !e.repClosed {
		select {
		case e.reports <- rep:
		default:
			e.mu.Lock()
			e.stats.ReportsDropped++
			e.mu.Unlock()
		}
	}
	e.repMu.Unlock()
}

// runCycle runs one cycle of batches as pipelined consensus instances and
// resolves every submission of the cycle. It holds no engine lock while the
// instances run.
func (e *Engine) runCycle(cycleID int, batchIDs []int, cycle [][]submission) Report {
	cycleStart := time.Now()
	inputs := make([][]byte, len(cycle))
	for k, batch := range cycle {
		values := make([][]byte, len(batch))
		for i, s := range batch {
			values[i] = s.value
			if !s.enq.IsZero() {
				e.met.queueWait.Record(int64(cycleStart.Sub(s.enq)))
			}
		}
		inputs[k] = packValues(values)
	}

	par := e.cfg.Consensus
	// Phase accumulation: each instance's processor 0 reports its
	// generation phase partition (consensus.Params.PhaseTimer); instances
	// run concurrently, so the cycle totals accumulate atomically.
	var phaseNS [consensus.NumPhases]atomic.Int64
	if e.met.enabled {
		prevTimer, prevGauge, tracer := par.PhaseTimer, par.FiberGauge, e.cfg.Tracer
		met := &e.met
		par.PhaseTimer = func(procID, gen int, ph consensus.Phase, d time.Duration) {
			phaseNS[ph].Add(int64(d))
			met.phases[ph].Add(int64(d))
			if tracer.Enabled() {
				tracer.Emit(obs.Event{
					TS: time.Now().Add(-d).UnixNano(), Dur: int64(d),
					Cat: "phase", Name: ph.String(), Cycle: cycleID, Gen: gen, Node: procID,
				})
			}
			if prevTimer != nil {
				prevTimer(procID, gen, ph, d)
			}
		}
		par.FiberGauge = func(procID, live int) {
			met.fibers.Set(int64(live))
			if prevGauge != nil {
				prevGauge(procID, live)
			}
		}
	}
	degrade := 0
	if e.cfg.Degrade {
		degrade = par.T
	}
	res := e.cfg.Runner.RunBatch(sim.BatchConfig{
		N:            par.N,
		Faulty:       e.cfg.Faulty,
		Adversary:    e.cfg.Adversary,
		Seed:         e.cfg.Seed + int64(cycleID)*0x2545F4914F6CDD1D,
		Instances:    len(cycle),
		DegradePeers: degrade,
	}, func(inst int, p *sim.Proc) any {
		return consensus.Run(p, par, inputs[inst], len(inputs[inst])*8)
	})

	rep := Report{Cycle: cycleID, Rounds: res.Rounds, Bits: res.Bits, PeersDown: res.PeersDown,
		Degraded: len(res.DegradedPeers) > 0, DegradedPeers: res.DegradedPeers}
	var decisionLats []time.Duration
	if e.met.enabled {
		decisionLats = make([]time.Duration, 0, len(batchIDs)*e.cfg.BatchValues)
	}
	var decided, defaulted, failed int
	for k, batch := range cycle {
		ir := res.Instances[k]
		st := BatchStats{
			Batch:      batchIDs[k],
			Cycle:      cycleID,
			Instance:   k,
			Values:     len(batch),
			PackedBits: len(inputs[k]) * 8,
			Bits:       ir.Meter.TotalBits(),
			Rounds:     ir.Meter.Rounds(),
		}
		err := ir.Err
		var out *consensus.Output
		if err == nil {
			out, err = e.agreedOutput(ir.Values)
		}
		if err != nil {
			err = fmt.Errorf("engine: batch %d: %w", batchIDs[k], err)
			resolveBatch(batch, Decision{Batch: batchIDs[k], Err: err})
			failed += len(batch)
			if rep.Err == nil {
				rep.Err = err
			}
			rep.Batches = append(rep.Batches, st)
			continue
		}
		st.Generations = out.Generations
		st.DiagnosisRuns = out.DiagnosisRuns
		st.PipelinedRounds = out.PipelinedRounds
		st.Squashes = out.Squashes
		st.Defaulted = out.Defaulted
		st.BitsPerValue = float64(st.Bits) / float64(len(batch))
		rep.Batches = append(rep.Batches, st)
		rep.Values += len(batch)

		if out.Defaulted {
			defaulted += len(batch)
			if out.Squashes > 0 && e.cfg.Tracer.Enabled() {
				e.cfg.Tracer.Emit(obs.Event{Cat: "gen", Name: "squash",
					Cycle: cycleID, Inst: k, Detail: fmt.Sprintf("count=%d", out.Squashes)})
			}
			for _, s := range batch {
				if !s.enq.IsZero() {
					lat := time.Since(s.enq)
					decisionLats = append(decisionLats, lat)
					e.met.decision.Record(int64(lat))
				}
			}
			resolveBatch(batch, Decision{Batch: batchIDs[k], Defaulted: true})
			continue
		}
		if out.Squashes > 0 && e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Emit(obs.Event{Cat: "gen", Name: "squash",
				Cycle: cycleID, Inst: k, Detail: fmt.Sprintf("count=%d", out.Squashes)})
		}
		values, err := unpackValues(out.Value)
		if err == nil && len(values) != len(batch) {
			err = fmt.Errorf("engine: decided %d values for a %d-value batch", len(values), len(batch))
		}
		if err != nil {
			err = fmt.Errorf("engine: batch %d: %w", batchIDs[k], err)
			resolveBatch(batch, Decision{Batch: batchIDs[k], Err: err})
			failed += len(batch)
			if rep.Err == nil {
				rep.Err = err
			}
			continue
		}
		for i, s := range batch {
			decided++
			if !s.enq.IsZero() {
				lat := time.Since(s.enq)
				decisionLats = append(decisionLats, lat)
				e.met.decision.Record(int64(lat))
			}
			s.pending.resolve(Decision{Value: values[i], Batch: batchIDs[k]})
		}
	}

	if e.met.enabled {
		rep.Timing = Timing{
			Cycle:     time.Since(cycleStart),
			Match:     time.Duration(phaseNS[consensus.PhaseMatch].Load()),
			Broadcast: time.Duration(phaseNS[consensus.PhaseBroadcast].Load()),
			RS:        time.Duration(phaseNS[consensus.PhaseRS].Load()),
			Diagnosis: time.Duration(phaseNS[consensus.PhaseDiagnosis].Load()),
		}
		rep.Timing.DecisionP50, rep.Timing.DecisionP90, rep.Timing.DecisionP99, rep.Timing.DecisionMax =
			latencyPercentiles(decisionLats)
		rep.Timing.Decisions = len(decisionLats)
		e.met.cycleDur.Record(int64(rep.Timing.Cycle))
		if e.cfg.Tracer.Enabled() {
			e.cfg.Tracer.Span(cycleStart, obs.Event{Cat: "cycle", Name: "flush", Cycle: cycleID,
				Detail: fmt.Sprintf("values=%d batches=%d", rep.Values, len(rep.Batches))})
		}
	}

	e.mu.Lock()
	e.stats.Rounds += rep.Rounds
	e.stats.Bits += rep.Bits
	e.stats.Decided += decided
	e.stats.Defaulted += defaulted
	e.stats.Failed += failed
	e.mu.Unlock()
	return rep
}

// latencyPercentiles returns exact p50/p90/p99/max over lats (sorted in
// place). Exactness is affordable here: a cycle resolves at most
// BatchValues*Instances values.
func latencyPercentiles(lats []time.Duration) (p50, p90, p99, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q int) time.Duration {
		rank := (len(lats)*q + 99) / 100 // ceil rank, 1-based
		if rank < 1 {
			rank = 1
		}
		return lats[rank-1]
	}
	return at(50), at(90), at(99), lats[len(lats)-1]
}

// Metrics returns the engine's registry (the one passed in Config.Metrics,
// or the private one created at New).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// agreedOutput cross-checks the honest processors' outputs of one instance
// and returns their common output. Any divergence means the error-free
// guarantee was broken and is reported as an error.
func (e *Engine) agreedOutput(values []any) (*consensus.Output, error) {
	isFaulty := make(map[int]bool, len(e.cfg.Faulty))
	for _, f := range e.cfg.Faulty {
		isFaulty[f] = true
	}
	var ref *consensus.Output
	missing := 0
	for i, v := range values {
		if isFaulty[i] {
			continue
		}
		out, ok := v.(*consensus.Output)
		if !ok {
			// Under graceful degradation up to T honest outputs may be
			// missing — nodes whose runs ended on broken peer channels. The
			// outputs that exist must still agree unanimously.
			if e.cfg.Degrade && missing < e.cfg.Consensus.T {
				missing++
				continue
			}
			return nil, fmt.Errorf("honest processor %d produced no output", i)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !bytes.Equal(out.Value, ref.Value) || out.Defaulted != ref.Defaulted {
			return nil, fmt.Errorf("honest processors %d disagreed (error-free guarantee broken)", i)
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("no honest processors")
	}
	return ref, nil
}

// resolveBatch delivers one decision to every submission of a batch.
func resolveBatch(batch []submission, d Decision) {
	for _, s := range batch {
		s.pending.resolve(d)
	}
}
