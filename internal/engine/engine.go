// Package engine is the batched multi-instance consensus engine behind the
// public Service API: it coalesces pending client values into one long L-bit
// input per consensus instance — amortizing the per-generation
// Broadcast_Single_Bit overhead exactly as the paper's O(nL) result intends —
// and pipelines up to Config.Instances concurrent instances over the
// simulator (sim.RunBatch), demultiplexing the decided batches back into
// per-client decisions with per-instance and per-batch metrics.
//
// The engine models a replicated service: all n processors receive the same
// stream of client values (the validity case), while up to t of them are
// Byzantine and may deviate arbitrarily via the configured adversary. The
// error-free guarantee of Algorithm 1 then makes every per-client decision
// equal at all honest processors, whatever the adversary does.
package engine

import (
	"bytes"
	"fmt"
	"sync"

	"byzcons/internal/consensus"
	"byzcons/internal/sim"
)

// Runner abstracts the deployment backend that executes a cycle of batched
// consensus instances: the in-memory simulator (sim.RunBatch, the default)
// or a networked cluster (internal/node) that runs the same instances over
// encoded messages on a transport. Both return the simulator's result types,
// so batching, metrics and decision demux are backend-agnostic.
type Runner interface {
	RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult
}

// simRunner is the default Runner: the single-host simulator.
type simRunner struct{}

func (simRunner) RunBatch(cfg sim.BatchConfig, body func(inst int, p *sim.Proc) any) *sim.BatchResult {
	return sim.RunBatch(cfg, body)
}

// Config configures an Engine.
type Config struct {
	// Consensus carries the protocol parameters shared by every processor
	// (n, t, symbol width, lanes, broadcast substrate, default value).
	Consensus consensus.Params
	// Runner executes each cycle's batched instances; nil selects the
	// in-memory simulator.
	Runner Runner
	// Seed drives all randomness deterministically; each flush cycle and
	// instance derives its own sub-seed.
	Seed int64
	// Faulty lists the adversary-controlled processor ids (at most T).
	Faulty []int
	// Adversary injects Byzantine deviations; nil means fail-free execution.
	Adversary sim.Adversary
	// BatchValues caps how many client values are coalesced into one
	// consensus instance (0 = 64).
	BatchValues int
	// BatchBytes caps the packed payload bytes per instance (0 = 1 MiB).
	// A single oversized value still forms its own batch.
	BatchBytes int
	// Instances is the number of consensus instances pipelined concurrently
	// over the simulator per flush cycle (0 = 4).
	Instances int
}

// Decision is the consensus outcome for one submitted value.
type Decision struct {
	// Value is the decided value for this submission — equal to the
	// submitted value whenever the honest processors agree on the batch
	// (always, under the error-free guarantee).
	Value []byte
	// Batch is the global sequence number of the batch the value rode in.
	Batch int
	// Defaulted reports that the batch's instance decided the default value
	// (honest inputs provably differed), so Value is nil.
	Defaulted bool
	// Err is set when the batch's instance failed outright.
	Err error
}

// Pending is a handle on a submitted value's eventual decision.
type Pending struct {
	ch chan Decision
}

// Wait blocks until the engine flushes the submission's batch and returns
// the decision.
func (p *Pending) Wait() Decision { return <-p.ch }

// BatchStats describes one consensus instance (= one batch of values).
type BatchStats struct {
	Batch      int // global batch sequence number
	Cycle      int // flush cycle the batch ran in
	Instance   int // instance slot within its cycle
	Values     int // client values coalesced into the batch
	PackedBits int // L of the packed input
	Bits       int64
	Rounds     int64
	// PipelinedRounds is the batch's generation-pipeline critical path in
	// rounds (consensus.Output.PipelinedRounds): the latency win of
	// Consensus.Window > 1 shows up here, while Rounds keeps counting all
	// executed barriers including squashed speculation.
	PipelinedRounds int64
	// Squashes counts the batch's discarded speculative generations.
	Squashes      int
	Generations   int
	DiagnosisRuns int
	Defaulted     bool
	// BitsPerValue is the amortized communication cost of the batch: total
	// protocol traffic divided by the number of client values it carried.
	BitsPerValue float64
}

// Report summarises one Flush.
type Report struct {
	Batches []BatchStats
	Values  int
	Bits    int64
	// Rounds is the pipelined round count: the sum over cycles of the
	// maximum per-instance rounds within each cycle.
	Rounds int64
}

// Stats is the engine's cumulative accounting.
type Stats struct {
	Submitted int
	Decided   int
	Defaulted int
	Batches   int
	Cycles    int
	Bits      int64
	Rounds    int64 // pipelined rounds, summed over all cycles
}

type submission struct {
	value   []byte
	pending *Pending
}

// Engine batches submissions and drives pipelined consensus instances.
// All methods are safe for concurrent use; Flush serializes with itself.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	queue     []submission
	stats     Stats
	nextBatch int
	nextCycle int
	closed    bool
}

// New validates cfg, fills defaults and returns an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Consensus.N < 1 {
		return nil, fmt.Errorf("engine: need n >= 1, got %d", cfg.Consensus.N)
	}
	if len(cfg.Faulty) > cfg.Consensus.T {
		return nil, fmt.Errorf("engine: %d faulty processors exceed t=%d", len(cfg.Faulty), cfg.Consensus.T)
	}
	if cfg.BatchValues == 0 {
		cfg.BatchValues = 64
	}
	if cfg.BatchValues < 1 {
		return nil, fmt.Errorf("engine: BatchValues must be >= 1, got %d", cfg.BatchValues)
	}
	if cfg.BatchBytes == 0 {
		cfg.BatchBytes = 1 << 20
	}
	if cfg.BatchBytes < 1 {
		return nil, fmt.Errorf("engine: BatchBytes must be >= 1, got %d", cfg.BatchBytes)
	}
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("engine: Instances must be >= 1, got %d", cfg.Instances)
	}
	if cfg.Runner == nil {
		cfg.Runner = simRunner{}
	}
	return &Engine{cfg: cfg}, nil
}

// Submit queues a client value for the next flush and returns a handle on
// its decision. The value is copied; the caller may reuse the slice.
func (e *Engine) Submit(value []byte) (*Pending, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("engine: closed")
	}
	p := &Pending{ch: make(chan Decision, 1)}
	e.queue = append(e.queue, submission{value: append([]byte(nil), value...), pending: p})
	e.stats.Submitted++
	return p, nil
}

// PendingCount returns the number of values queued for the next flush.
func (e *Engine) PendingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Stats returns the engine's cumulative accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close rejects further submissions, flushes any queued values and returns
// the final flush error (nil when the queue was empty).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	pending := len(e.queue) > 0
	e.mu.Unlock()
	if !pending {
		return nil
	}
	_, err := e.flush()
	return err
}

// Flush drains the queue: values are coalesced into batches of at most
// BatchValues values / BatchBytes bytes, batches are run Instances at a time
// as pipelined consensus instances, and every submission's Pending is
// resolved with its per-client decision. Flush returns the per-batch metrics
// of everything it ran.
func (e *Engine) Flush() (*Report, error) {
	return e.flush()
}

func (e *Engine) flush() (*Report, error) {
	// Serialize whole flushes against each other and against Submit bursts:
	// the simulator runs synchronously anyway, so holding the lock keeps the
	// cycle composition deterministic for a given submission order.
	e.mu.Lock()
	defer e.mu.Unlock()

	report := &Report{}
	var firstErr error
	for len(e.queue) > 0 {
		cycle := e.takeCycleLocked()
		if err := e.runCycleLocked(cycle, report); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Release the drained backing array: e.queue is a tail slice of it, and
	// keeping it alive would pin every flushed submission's value bytes.
	e.queue = nil
	return report, firstErr
}

// takeCycleLocked carves up to Instances batches off the queue head.
func (e *Engine) takeCycleLocked() [][]submission {
	var cycle [][]submission
	for len(e.queue) > 0 && len(cycle) < e.cfg.Instances {
		var batch []submission
		size := 0
		for len(e.queue) > 0 && len(batch) < e.cfg.BatchValues {
			next := e.queue[0]
			need := uvarintLen(uint64(len(next.value))) + len(next.value)
			// The packed form also carries the count header; budget it so
			// the blob never exceeds BatchBytes (see packedBits).
			header := uvarintLen(uint64(len(batch) + 1))
			if len(batch) > 0 && header+size+need > e.cfg.BatchBytes {
				break
			}
			batch = append(batch, next)
			size += need
			e.queue = e.queue[1:]
		}
		cycle = append(cycle, batch)
	}
	return cycle
}

// runCycleLocked runs one cycle of batches as pipelined consensus instances
// and resolves every submission of the cycle.
func (e *Engine) runCycleLocked(cycle [][]submission, report *Report) error {
	cycleID := e.nextCycle
	e.nextCycle++
	e.stats.Cycles++

	inputs := make([][]byte, len(cycle))
	batchIDs := make([]int, len(cycle))
	for k, batch := range cycle {
		values := make([][]byte, len(batch))
		for i, s := range batch {
			values[i] = s.value
		}
		inputs[k] = packValues(values)
		batchIDs[k] = e.nextBatch
		e.nextBatch++
		e.stats.Batches++
	}

	par := e.cfg.Consensus
	res := e.cfg.Runner.RunBatch(sim.BatchConfig{
		N:         par.N,
		Faulty:    e.cfg.Faulty,
		Adversary: e.cfg.Adversary,
		Seed:      e.cfg.Seed + int64(cycleID)*0x2545F4914F6CDD1D,
		Instances: len(cycle),
	}, func(inst int, p *sim.Proc) any {
		return consensus.Run(p, par, inputs[inst], len(inputs[inst])*8)
	})

	report.Rounds += res.Rounds
	report.Bits += res.Bits
	e.stats.Rounds += res.Rounds
	e.stats.Bits += res.Bits

	var firstErr error
	for k, batch := range cycle {
		ir := res.Instances[k]
		st := BatchStats{
			Batch:      batchIDs[k],
			Cycle:      cycleID,
			Instance:   k,
			Values:     len(batch),
			PackedBits: len(inputs[k]) * 8,
			Bits:       ir.Meter.TotalBits(),
			Rounds:     ir.Meter.Rounds(),
		}
		err := ir.Err
		var out *consensus.Output
		if err == nil {
			out, err = e.agreedOutput(ir.Values)
		}
		if err != nil {
			err = fmt.Errorf("engine: batch %d: %w", batchIDs[k], err)
			e.resolveBatch(batch, Decision{Batch: batchIDs[k], Err: err})
			if firstErr == nil {
				firstErr = err
			}
			report.Batches = append(report.Batches, st)
			continue
		}
		st.Generations = out.Generations
		st.DiagnosisRuns = out.DiagnosisRuns
		st.PipelinedRounds = out.PipelinedRounds
		st.Squashes = out.Squashes
		st.Defaulted = out.Defaulted
		st.BitsPerValue = float64(st.Bits) / float64(len(batch))
		report.Batches = append(report.Batches, st)
		report.Values += len(batch)

		if out.Defaulted {
			e.stats.Defaulted += len(batch)
			e.resolveBatch(batch, Decision{Batch: batchIDs[k], Defaulted: true})
			continue
		}
		decided, err := unpackValues(out.Value)
		if err == nil && len(decided) != len(batch) {
			err = fmt.Errorf("engine: decided %d values for a %d-value batch", len(decided), len(batch))
		}
		if err != nil {
			err = fmt.Errorf("engine: batch %d: %w", batchIDs[k], err)
			e.resolveBatch(batch, Decision{Batch: batchIDs[k], Err: err})
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for i, s := range batch {
			e.stats.Decided++
			s.pending.ch <- Decision{Value: decided[i], Batch: batchIDs[k]}
		}
	}
	return firstErr
}

// agreedOutput cross-checks the honest processors' outputs of one instance
// and returns their common output. Any divergence means the error-free
// guarantee was broken and is reported as an error.
func (e *Engine) agreedOutput(values []any) (*consensus.Output, error) {
	isFaulty := make(map[int]bool, len(e.cfg.Faulty))
	for _, f := range e.cfg.Faulty {
		isFaulty[f] = true
	}
	var ref *consensus.Output
	for i, v := range values {
		if isFaulty[i] {
			continue
		}
		out, ok := v.(*consensus.Output)
		if !ok {
			return nil, fmt.Errorf("honest processor %d produced no output", i)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !bytes.Equal(out.Value, ref.Value) || out.Defaulted != ref.Defaulted {
			return nil, fmt.Errorf("honest processors %d disagreed (error-free guarantee broken)", i)
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("no honest processors")
	}
	return ref, nil
}

// resolveBatch delivers one decision to every submission of a batch.
func (e *Engine) resolveBatch(batch []submission, d Decision) {
	for _, s := range batch {
		s.pending.ch <- d
	}
}
