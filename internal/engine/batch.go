package engine

import (
	"encoding/binary"
	"fmt"
)

// Batch framing: a batch of client values is coalesced into one long blob
// that a single consensus instance agrees on, amortizing the per-generation
// Broadcast_Single_Bit overhead over all values of the batch (the paper's
// large-L regime). The frame is byte-aligned:
//
//	uvarint   value count
//	per value uvarint byte length, then the raw bytes
//
// After the instance decides, the same frame is unpacked to recover the
// per-client decisions.

// packValues serializes a batch of values into one consensus input.
func packValues(values [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, v := range values {
		size += binary.MaxVarintLen64 + len(v)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(values)))
	for _, v := range values {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// packedBits returns the length in bits of the packed form of values without
// building it.
func packedBits(values [][]byte) int {
	bytes := uvarintLen(uint64(len(values)))
	for _, v := range values {
		bytes += uvarintLen(uint64(len(v))) + len(v)
	}
	return bytes * 8
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// unpackValues parses a packed batch back into its values. It is strict:
// every declared value must be fully present, and no bytes may remain (a
// consensus decision is exactly the packed blob, so any mismatch indicates a
// framing bug, not adversarial input — honest decisions are agreed).
func unpackValues(blob []byte) ([][]byte, error) {
	count, n := binary.Uvarint(blob)
	if n <= 0 {
		return nil, fmt.Errorf("engine: bad batch count header")
	}
	rest := blob[n:]
	if count > uint64(len(rest)) { // each value needs >= 1 header byte
		return nil, fmt.Errorf("engine: batch claims %d values in %d bytes", count, len(rest))
	}
	out := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("engine: bad length header of value %d", i)
		}
		rest = rest[n:]
		if l > uint64(len(rest)) {
			return nil, fmt.Errorf("engine: value %d truncated: need %d bytes, have %d", i, l, len(rest))
		}
		out = append(out, append([]byte(nil), rest[:l]...))
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("engine: %d trailing bytes after batch", len(rest))
	}
	return out, nil
}
