package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"testing"
	"time"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/consensus"
	"byzcons/internal/sim"
)

func testConfig() Config {
	return Config{
		Consensus: consensus.Params{N: 7, T: 2, SymBits: 8, BSB: bsb.Oracle},
		Seed:      1,
	}
}

// submitN queues count deterministic distinct values and returns them with
// their pendings.
func submitN(t *testing.T, e *Engine, count, size int) ([][]byte, []*Pending) {
	t.Helper()
	values := make([][]byte, count)
	pendings := make([]*Pending, count)
	for i := range values {
		v := make([]byte, size)
		for j := range v {
			v[j] = byte(i*31 + j)
		}
		values[i] = v
		p, err := e.Submit(v)
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	return values, pendings
}

func TestEngineBatchesAndDecides(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 4
	cfg.Instances = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values, pendings := submitN(t, e, 10, 16)
	if got := e.PendingCount(); got != 10 {
		t.Fatalf("PendingCount = %d", got)
	}
	report, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// 10 values at 4/batch -> batches of 4, 4, 2 over cycles of 2+1 instances.
	if len(report.Batches) != 3 {
		t.Fatalf("got %d batches, want 3: %+v", len(report.Batches), report.Batches)
	}
	wantSizes := []int{4, 4, 2}
	for i, st := range report.Batches {
		if st.Values != wantSizes[i] {
			t.Errorf("batch %d carried %d values, want %d", i, st.Values, wantSizes[i])
		}
		if st.Batch != i {
			t.Errorf("batch sequence = %d, want %d", st.Batch, i)
		}
		if st.Bits <= 0 || st.Rounds <= 0 || st.PackedBits <= 0 {
			t.Errorf("batch %d has empty accounting: %+v", i, st)
		}
		if st.BitsPerValue != float64(st.Bits)/float64(st.Values) {
			t.Errorf("batch %d BitsPerValue inconsistent", i)
		}
	}
	if report.Batches[0].Cycle != 0 || report.Batches[1].Cycle != 0 || report.Batches[2].Cycle != 1 {
		t.Errorf("cycle assignment wrong: %+v", report.Batches)
	}
	if report.Batches[1].Instance != 1 {
		t.Errorf("instance slot = %d, want 1", report.Batches[1].Instance)
	}
	for i, p := range pendings {
		d := p.Wait(context.Background())
		if d.Err != nil {
			t.Fatalf("value %d: %v", i, d.Err)
		}
		if !bytes.Equal(d.Value, values[i]) {
			t.Fatalf("value %d decided %x, want %x", i, d.Value, values[i])
		}
		if d.Defaulted {
			t.Fatalf("value %d unexpectedly defaulted", i)
		}
	}
	st := e.Stats()
	if st.Submitted != 10 || st.Decided != 10 || st.Batches != 3 || st.Cycles != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Rounds != report.Rounds || st.Bits != report.Bits {
		t.Errorf("stats/report accounting diverges: %+v vs %+v", st, report)
	}
	if e.PendingCount() != 0 {
		t.Error("queue not drained")
	}
}

func TestEnginePipelinedRoundsBelowSequentialSum(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 2
	cfg.Instances = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, e, 8, 32) // 4 batches, one cycle
	report, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, st := range report.Batches {
		sum += st.Rounds
	}
	if len(report.Batches) != 4 {
		t.Fatalf("want 4 batches, got %d", len(report.Batches))
	}
	if report.Rounds >= sum {
		t.Errorf("pipelined rounds %d not below sequential sum %d", report.Rounds, sum)
	}
}

func TestEngineBatchBytesCap(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 64
	cfg.BatchBytes = 40 // two 16-byte values (+1 header byte each) fit; three don't
	cfg.Instances = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, pendings := submitN(t, e, 6, 16)
	report, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Batches) != 3 {
		t.Fatalf("byte cap ignored: %d batches, want 3", len(report.Batches))
	}
	for _, st := range report.Batches {
		if st.Values != 2 {
			t.Errorf("batch carried %d values, want 2", st.Values)
		}
	}
	for _, p := range pendings {
		if d := p.Wait(context.Background()); d.Err != nil {
			t.Fatal(d.Err)
		}
	}
}

func TestEngineOversizedValueGetsOwnBatch(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchBytes = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 64)
	p, err := e.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := p.Wait(context.Background())
	if d.Err != nil || !bytes.Equal(d.Value, big) {
		t.Fatalf("oversized value mishandled: %+v", d)
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	t.Parallel()
	run := func() Stats {
		cfg := testConfig()
		cfg.BatchValues = 3
		cfg.Instances = 2
		cfg.Faulty = []int{1, 4}
		cfg.Adversary = adversary.RandomByz{P: 0.5}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, pendings := submitN(t, e, 7, 12)
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, p := range pendings {
			if d := p.Wait(context.Background()); d.Err != nil {
				t.Fatal(d.Err)
			}
		}
		return e.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different executions:\n%+v\n%+v", a, b)
	}
}

// TestEngineAdversaryGalleryAgreement is the acceptance-criteria test: under
// every bundled attack, every per-client decision must equal the submitted
// value (honest inputs are equal, so validity pins the decision), across
// pipelined instances, with the race detector enabled in CI.
func TestEngineAdversaryGalleryAgreement(t *testing.T) {
	t.Parallel()
	const n, tf = 7, 2
	gallery := []struct {
		name string
		adv  sim.Adversary
	}{
		{"passive", nil},
		{"equivocator", adversary.Equivocator{Victims: []int{6}}},
		{"matchliar", adversary.MatchLiar{}},
		{"falsedetector", adversary.FalseDetector{}},
		{"trustliar", adversary.Chain{adversary.Equivocator{Victims: []int{6}}, adversary.TrustLiar{}}},
		{"symbolliar", adversary.Chain{adversary.Equivocator{Victims: []int{6}}, adversary.SymbolLiar{}}},
		{"silent", adversary.Silent{}},
		{"random", adversary.RandomByz{P: 0.5}},
		{"edgemiser", adversary.EdgeMiser{T: tf}},
	}
	for _, tc := range gallery {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Consensus:   consensus.Params{N: n, T: tf, SymBits: 8, BSB: bsb.Oracle, Lanes: 2},
				Seed:        42,
				Faulty:      []int{0, 3},
				Adversary:   tc.adv,
				BatchValues: 3,
				Instances:   3,
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			values, pendings := submitN(t, e, 9, 20)
			report, err := e.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if report.Values != 9 {
				t.Fatalf("report.Values = %d", report.Values)
			}
			for i, p := range pendings {
				d := p.Wait(context.Background())
				if d.Err != nil {
					t.Fatalf("value %d: %v", i, d.Err)
				}
				if d.Defaulted {
					t.Fatalf("value %d defaulted despite equal honest inputs", i)
				}
				if !bytes.Equal(d.Value, values[i]) {
					t.Fatalf("%s: per-client decision %d diverged", tc.name, i)
				}
			}
		})
	}
}

// TestEngineAmortizedBitsDecrease pins the tentpole claim at engine level: a
// fixed workload costs strictly fewer amortized bits per value as the batch
// size grows (fixed n, t), because the per-generation broadcast overhead is
// shared among more values. Values must be large enough that the optimal
// generation size D* (Eq. 2, ~sqrt(L)) is not quantized to a single lane,
// or the sqrt(L) overhead term degenerates to linear and the curve flattens.
func TestEngineAmortizedBitsDecrease(t *testing.T) {
	t.Parallel()
	const workload = 32
	var prev float64
	for i, batch := range []int{1, 2, 4, 8, 16, 32} {
		cfg := testConfig()
		cfg.BatchValues = batch
		cfg.Instances = 4
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, pendings := submitN(t, e, workload, 64)
		if _, err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, p := range pendings {
			if d := p.Wait(context.Background()); d.Err != nil {
				t.Fatal(d.Err)
			}
		}
		perValue := float64(e.Stats().Bits) / workload
		if i > 0 && perValue >= prev {
			t.Errorf("batch=%d amortized %.1f bits/value, not below %.1f at previous size", batch, perValue, prev)
		}
		prev = perValue
	}
}

// TestEngineCloseFailsQueuedPendings pins the Close contract: submissions
// still queued when Close is called fail promptly with ErrClosed — a Wait
// caller never hangs on a closed engine — and further submissions are
// rejected with the same sentinel. Callers that want queued work decided
// flush (or Drain) first.
func TestEngineCloseFailsQueuedPendings(t *testing.T) {
	t.Parallel()
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, pendings := submitN(t, e, 3, 8)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		// The decisions are already resolved: an expired context must not
		// matter, since Wait prefers an available decision.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		d := p.Wait(ctx)
		if !errors.Is(d.Err, ErrClosed) {
			t.Fatalf("pending %d after Close: %+v, want ErrClosed", i, d)
		}
	}
	if _, err := e.Submit([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if st := e.Stats(); st.Failed != 3 {
		t.Errorf("Failed = %d, want 3", st.Failed)
	}
	if _, ok := <-e.Reports(); ok {
		t.Error("Reports stream not closed by Close")
	}
}

// TestEnginePolicyMaxValues: the background flusher must run a cycle once
// the queued value count trips the policy — no manual Flush anywhere.
func TestEnginePolicyMaxValues(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 4
	cfg.Policy = Policy{MaxValues: 4}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	values, pendings := submitN(t, e, 4, 8)
	for i, p := range pendings {
		d := p.Wait(context.Background())
		if d.Err != nil || !bytes.Equal(d.Value, values[i]) {
			t.Fatalf("auto-flushed value %d: %+v", i, d)
		}
	}
	rep, ok := <-e.Reports()
	if !ok || rep.Values != 4 || rep.Cycle != 0 {
		t.Errorf("per-cycle report = %+v, %v", rep, ok)
	}
}

// TestEnginePolicyMaxDelay: a single value below every size threshold must
// still flush within (roughly) MaxDelay.
func TestEnginePolicyMaxDelay(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Policy = Policy{MaxValues: 1 << 30, MaxDelay: 10 * time.Millisecond}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	p, err := e.Submit([]byte("lonely"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if d := p.Wait(ctx); d.Err != nil || !bytes.Equal(d.Value, []byte("lonely")) {
		t.Fatalf("delay-flushed value: %+v", d)
	}
}

// TestEngineWaitHonorsContext: Wait must return promptly with ctx.Err()
// while the submission stays pending (no auto-flush, nothing will decide
// it), and still deliver the real decision to a later Wait.
func TestEngineWaitHonorsContext(t *testing.T) {
	t.Parallel()
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Submit([]byte("parked"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if d := p.Wait(ctx); !errors.Is(d.Err, context.DeadlineExceeded) {
		t.Fatalf("Wait under expired ctx = %+v", d)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := p.Wait(context.Background()); d.Err != nil || !bytes.Equal(d.Value, []byte("parked")) {
		t.Fatalf("decision lost after cancelled Wait: %+v", d)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineDrainWaitsForEverything: after Drain returns nil, every prior
// submission has resolved.
func TestEngineDrainWaitsForEverything(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, pendings := submitN(t, e, 5, 8)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		select {
		case <-p.Done():
		default:
			t.Fatalf("pending %d unresolved after Drain", i)
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"zero n", func(c *Config) { c.Consensus.N = 0 }},
		{"too many faulty", func(c *Config) { c.Faulty = []int{0, 1, 2} }},
		{"negative batch", func(c *Config) { c.BatchValues = -1 }},
		{"negative bytes", func(c *Config) { c.BatchBytes = -1 }},
		{"negative instances", func(c *Config) { c.Instances = -1 }},
	} {
		cfg := testConfig()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestEngineEmptyFlush(t *testing.T) {
	t.Parallel()
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Batches) != 0 || report.Values != 0 {
		t.Errorf("empty flush produced work: %+v", report)
	}
}

func TestEngineRunErrorSurfacesInDecisions(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	// An out-of-range faulty id passes New's count check but fails in the
	// simulator, exercising the error path end to end.
	cfg.Faulty = []int{99}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Submit([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err == nil {
		t.Fatal("flush swallowed the run error")
	}
	if d := p.Wait(context.Background()); d.Err == nil {
		t.Fatal("decision swallowed the run error")
	}
}

func TestEngineZeroByteValue(t *testing.T) {
	t.Parallel()
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Submit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := p.Wait(context.Background())
	if d.Err != nil || len(d.Value) != 0 || d.Defaulted {
		t.Fatalf("zero-byte value mishandled: %+v", d)
	}
}

func ExampleEngine() {
	e, _ := New(Config{
		Consensus:   consensus.Params{N: 7, T: 2, SymBits: 8, BSB: bsb.Oracle},
		BatchValues: 8,
		Instances:   2,
	})
	var pendings []*Pending
	for i := 0; i < 4; i++ {
		p, _ := e.Submit([]byte(fmt.Sprintf("command %d", i)))
		pendings = append(pendings, p)
	}
	e.Flush()
	d := pendings[2].Wait(context.Background())
	fmt.Printf("%s batch=%d\n", d.Value, d.Batch)
	// Output: command 2 batch=0
}

// downRunner wraps the simulator runner and stamps every cycle's membership
// report, standing in for a networked backend with broken peer channels.
type downRunner struct{ peers []int }

func (d downRunner) RunBatch(cfg sim.BatchConfig, body func(int, *sim.Proc) any) *sim.BatchResult {
	res := simRunner{}.RunBatch(cfg, body)
	res.PeersDown = append([]int(nil), d.peers...)
	return res
}

// TestEngineReportsPeersDown pins the membership-report plumbing: a backend
// reporting peers down per cycle surfaces them on the flush report, unioned,
// deduplicated and sorted across the flush's cycles.
func TestEngineReportsPeersDown(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.BatchValues = 2
	cfg.Instances = 1
	cfg.Runner = downRunner{peers: []int{5, 2}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, e, 4, 8) // two batches -> two cycles, each reporting {5, 2}
	rep, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(rep.Batches))
	}
	if want := []int{2, 5}; !slices.Equal(rep.PeersDown, want) {
		t.Errorf("flush report PeersDown = %v, want %v", rep.PeersDown, want)
	}
}
