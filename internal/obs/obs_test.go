package obs

import (
	"bytes"
	"math/bits"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Each value must land in the bucket whose upper bound is the smallest
	// 2^k-1 >= v; a histogram holding only v must report exactly that
	// bound for every quantile.
	cases := []struct {
		v    int64
		want int64
	}{
		{0, 0}, {-5, 0},
		{1, 1},
		{2, 3}, {3, 3},
		{4, 7}, {7, 7},
		{8, 15},
		{1023, 1023}, {1024, 2047}, {1025, 2047},
		{1 << 40, 1<<41 - 1},
	}
	for _, c := range cases {
		var h Histogram
		h.Record(c.v)
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("Record(%d): count = %d, want 1", c.v, s.Count)
		}
		if s.P50 != c.want || s.P99 != c.want {
			t.Errorf("Record(%d): p50=%d p99=%d, want %d", c.v, s.P50, s.P99, c.want)
		}
		wantMax := c.v
		if wantMax < 0 {
			wantMax = 0
		}
		if s.Max != wantMax {
			t.Errorf("Record(%d): max = %d, want %d", c.v, s.Max, wantMax)
		}
	}
}

func TestHistogramQuantileRanks(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("snapshot = %+v, want count=100 sum=5050 max=100", s)
	}
	// Rank 50 is value 50 -> bucket upper 63; rank 90 is value 90 -> 127;
	// rank 99 is value 99 -> 127. Upper bounds, never under-estimates.
	wantUpper := func(v int64) int64 { return int64(1)<<bits.Len64(uint64(v)) - 1 }
	if s.P50 != wantUpper(50) {
		t.Errorf("p50 = %d, want %d", s.P50, wantUpper(50))
	}
	if s.P90 != wantUpper(90) {
		t.Errorf("p90 = %d, want %d", s.P90, wantUpper(90))
	}
	if s.P99 != wantUpper(99) {
		t.Errorf("p99 = %d, want %d", s.P99, wantUpper(99))
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > 2*s.Max {
		t.Errorf("quantiles not ordered/bounded: %+v", s)
	}
}

func TestHistogramConcurrentRecording(t *testing.T) {
	// Hammer one histogram from many goroutines while snapshotting
	// concurrently; under -race this doubles as the lock-freedom proof.
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.P50 > s.P99 {
				t.Errorf("mid-flight snapshot disordered: %+v", s)
				return
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(seed int64) {
			defer rec.Done()
			for i := int64(0); i < per; i++ {
				h.Record(seed*1000 + i)
			}
		}(int64(w))
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_cycles").Add(3)
	r.Gauge("engine_queue_depth").Set(7)
	r.Histogram("decision_ns").Record(100)
	r.Func("transport_conns", func() int64 { return 12 })

	s := r.Snapshot()
	if s.Counters["engine_cycles"] != 3 {
		t.Errorf("counter = %d, want 3", s.Counters["engine_cycles"])
	}
	if s.Gauges["engine_queue_depth"] != 7 {
		t.Errorf("gauge = %d, want 7", s.Gauges["engine_queue_depth"])
	}
	if s.Gauges["transport_conns"] != 12 {
		t.Errorf("func gauge = %d, want 12", s.Gauges["transport_conns"])
	}
	if s.Histograms["decision_ns"].Count != 1 {
		t.Errorf("hist count = %d, want 1", s.Histograms["decision_ns"].Count)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"engine_cycles 3\n",
		"engine_queue_depth 7\n",
		"transport_conns 12\n",
		"decision_ns_count 1\n",
		"decision_ns_p99 127\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Deterministic: sorted lines.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("exposition not sorted at line %d: %q > %q", i, lines[i-1], lines[i])
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Record(1)
	r.Func("f", func() int64 { return 0 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot non-empty")
	}
	var tr *Tracer
	tr.Emit(Event{Cat: "x", Name: "y"})
	if tr.Enabled() || tr.Dropped() != 0 || tr.Events() != nil {
		t.Errorf("nil tracer not inert")
	}
}
