package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured protocol trace record: a point event (Dur == 0)
// or a span (Dur > 0). TS is unix nanoseconds so events serialize to
// compact JSONL and survive round-trips without timezone churn.
//
// Cat groups events by subsystem ("cycle", "gen", "rs", "flush", "peer");
// Name is the specific event within the category. Cycle/Inst/Gen/Node are
// -1 when not applicable so that zero-valued ids stay distinguishable.
type Event struct {
	TS     int64  `json:"ts"`               // unix nanos
	Dur    int64  `json:"dur,omitempty"`    // span duration, nanos
	Cat    string `json:"cat"`              // subsystem
	Name   string `json:"name"`             // event name
	Cycle  int    `json:"cycle,omitempty"`  // flush cycle id, -1 if n/a
	Inst   int    `json:"inst,omitempty"`   // instance within cycle, -1 if n/a
	Gen    int    `json:"gen,omitempty"`    // generation, -1 if n/a
	Node   int    `json:"node,omitempty"`   // node/processor id, -1 if n/a
	Detail string `json:"detail,omitempty"` // free-form annotation
}

// Tracer records Events into a bounded ring buffer, optionally teeing each
// event to a JSONL sink. A disabled tracer costs exactly one atomic load
// and a branch per Emit call; nil tracers are safe everywhere. When the
// ring is full the oldest event is dropped and the drop counter advances —
// Events always returns the most recent writes in order.
type Tracer struct {
	enabled atomic.Bool
	dropped atomic.Int64

	mu   sync.Mutex
	ring []Event
	next int  // next write slot
	full bool // ring has wrapped at least once
	sink io.Writer
	enc  *json.Encoder
}

// DefaultTraceRing is the ring capacity used when NewTracer gets size <= 0.
const DefaultTraceRing = 4096

// NewTracer returns a tracer with a ring of the given capacity
// (DefaultTraceRing if size <= 0). If sink is non-nil every emitted event
// is also encoded to it as one JSON line. The tracer starts disabled.
func NewTracer(size int, sink io.Writer) *Tracer {
	if size <= 0 {
		size = DefaultTraceRing
	}
	t := &Tracer{ring: make([]Event, size), sink: sink}
	if sink != nil {
		t.enc = json.NewEncoder(sink)
	}
	return t
}

// SetEnabled turns event recording on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.enabled.Store(on)
}

// Enabled reports whether Emit records anything. This is the one branch a
// disabled tracer costs on the hot path.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit records e. If e.TS is zero it is stamped with the current time.
// No-op when the tracer is nil or disabled.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	if e.TS == 0 {
		e.TS = time.Now().UnixNano()
	}
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	if t.enc != nil {
		t.enc.Encode(e) // best-effort: a broken sink must not fail the protocol
	}
	t.mu.Unlock()
}

// Span emits a span event for work that started at t0, stamping TS with
// the start time and Dur with time-since.
func (t *Tracer) Span(t0 time.Time, e Event) {
	if !t.Enabled() {
		return
	}
	e.TS = t0.UnixNano()
	e.Dur = int64(time.Since(t0))
	t.Emit(e)
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
