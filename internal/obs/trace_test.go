package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.Emit(Event{Cat: "cycle", Name: "flush"})
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	tr.SetEnabled(true)
	tr.Emit(Event{Cat: "cycle", Name: "flush"})
	if got := tr.Events(); len(got) != 1 {
		t.Fatalf("enabled tracer recorded %d events, want 1", len(got))
	}
	tr.SetEnabled(false)
	tr.Emit(Event{Cat: "cycle", Name: "flush"})
	if got := tr.Events(); len(got) != 1 {
		t.Fatalf("re-disabled tracer recorded %d events, want 1", len(got))
	}
}

func TestTraceRingOverflowDropsOldest(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.SetEnabled(true)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{TS: int64(i + 1), Cat: "gen", Name: "commit", Gen: i})
	}
	got := tr.Events()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := 3 + i; e.Gen != want {
			t.Errorf("event %d: gen = %d, want %d (oldest must drop first)", i, e.Gen, want)
		}
	}
	if d := tr.Dropped(); d != 3 {
		t.Errorf("dropped = %d, want 3", d)
	}
}

func TestTracerJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2, &buf)
	tr.SetEnabled(true)
	tr.Emit(Event{TS: 10, Cat: "peer", Name: "down", Node: 2, Detail: "conn reset"})
	tr.Emit(Event{TS: 20, Dur: 5, Cat: "rs", Name: "encode", Gen: 1})
	tr.Emit(Event{TS: 30, Cat: "peer", Name: "up", Node: 2})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink holds %d lines, want 3 (sink must see every event, ring only the tail)", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e.Cat != "peer" || e.Name != "down" || e.Node != 2 || e.Detail != "conn reset" {
		t.Errorf("round-tripped event = %+v", e)
	}
	// Ring kept only the newest two despite the sink seeing all three.
	if got := tr.Events(); len(got) != 2 || got[0].TS != 20 {
		t.Errorf("ring = %+v, want the two newest", got)
	}
}

func TestTracerSpanStamps(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.SetEnabled(true)
	t0 := time.Now().Add(-time.Millisecond)
	tr.Span(t0, Event{Cat: "cycle", Name: "flush", Cycle: 3})
	got := tr.Events()
	if len(got) != 1 {
		t.Fatalf("span not recorded")
	}
	if got[0].TS != t0.UnixNano() {
		t.Errorf("span TS = %d, want start time %d", got[0].TS, t0.UnixNano())
	}
	if got[0].Dur < int64(time.Millisecond) {
		t.Errorf("span dur = %d, want >= 1ms", got[0].Dur)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64, nil)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{TS: 1, Cat: "gen", Name: "commit", Node: id, Gen: i})
				_ = tr.Events()
			}
		}(w)
	}
	wg.Wait()
	if got, want := int64(len(tr.Events()))+tr.Dropped(), int64(workers*per); got != want {
		t.Fatalf("events+dropped = %d, want %d", got, want)
	}
}
