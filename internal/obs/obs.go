// Package obs is the runtime observability core: zero-allocation,
// atomics-based counters, gauges and log-scale histograms collected in a
// Registry, plus a structured protocol event tracer (see trace.go).
//
// The package measures *time* where internal/metrics measures *bits*: the
// bit meter validates the paper's communication-complexity formulas, the
// obs registry tells you where a flush cycle's wall-clock goes and how
// long a proposal waits from Propose to decision.
//
// Every record path is a handful of atomic operations — safe for
// concurrent use from protocol hot paths without locks and without
// allocating. Registration (Registry.Counter and friends) takes a lock
// and is meant for setup; callers cache the returned pointer.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, live fibers, ...).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per power of two: bucket k holds values v with
// bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k). Bucket 0 holds v <= 0.
// 65 buckets cover the full non-negative int64 range.
const histBuckets = 65

// Histogram is a fixed-bucket log-scale histogram. Record costs three
// atomic adds plus a bounded CAS loop for the max — no locks, no
// allocation. Quantiles reported by Snapshot are bucket upper bounds, so
// they overestimate by at most 2x; that is plenty to tell a 50µs decision
// path from a 5ms one, which is what the histogram is for.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistSnapshot is a point-in-time summary of a Histogram. P50/P90/P99 are
// log-bucket upper bounds (≤2x overestimates); Max is exact.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram. It is safe to call while other
// goroutines record; the result is a consistent-enough view (counts may
// trail the bucket sums by in-flight records, never the reverse by more
// than the races inherent in lock-free reads).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	s.P50 = quantile(&counts, total, 50)
	s.P90 = quantile(&counts, total, 90)
	s.P99 = quantile(&counts, total, 99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// percentile observation (rank ceil(q/100 * total)).
func quantile(counts *[histBuckets]int64, total, q int64) int64 {
	if total == 0 {
		return 0
	}
	rank := (total*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is the largest value bucket k can hold: 2^k - 1 (0 for k=0).
func bucketUpper(k int) int64 {
	if k <= 0 {
		return 0
	}
	if k >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<k - 1
}

// Registry is a named collection of metrics. Get-or-create registration
// takes a lock; record paths on the returned metrics are lock-free.
// Func registers a live read-through gauge for values owned elsewhere
// (transport stats, engine counters) so one exposition covers them all.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it if new.
// A nil registry returns nil (all metric methods are nil-safe no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// new.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers fn as a read-through gauge under name; each Snapshot or
// WriteText call invokes it for a live value. Re-registering replaces the
// previous function.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of every metric in a Registry.
// Read-through Func gauges appear in Gauges.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	return s
}

// WriteText writes the registry in a flat, sorted, Prometheus-style text
// exposition: one "name value" line per scalar, histograms expanded to
// name_count / name_sum / name_max / name_p50 / name_p90 / name_p99.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// Merge folds other into s: counters and gauges sum, histogram counts and
// sums add, and max and the quantile estimates keep the larger value —
// quantiles do not compose across histograms, so the worst source is the
// honest summary (the same convention engine.Timing.merge uses across
// cycles). Merging lets a sharded service aggregate its per-shard
// registries into one view.
func (s Snapshot) Merge(other Snapshot) {
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, h := range other.Histograms {
		d := s.Histograms[k]
		d.Count += h.Count
		d.Sum += h.Sum
		d.Max = maxI64(d.Max, h.Max)
		d.P50 = maxI64(d.P50, h.P50)
		d.P90 = maxI64(d.P90, h.P90)
		d.P99 = maxI64(d.P99, h.P99)
		s.Histograms[k] = d
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteText writes the snapshot in the registry's text exposition format:
// one "name value" line per metric, sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	snap := s
	lines := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+6*len(snap.Histograms))
	for k, v := range snap.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range snap.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, h.Count),
			fmt.Sprintf("%s_sum %d", k, h.Sum),
			fmt.Sprintf("%s_max %d", k, h.Max),
			fmt.Sprintf("%s_p50 %d", k, h.P50),
			fmt.Sprintf("%s_p90 %d", k, h.P90),
			fmt.Sprintf("%s_p99 %d", k, h.P99),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
