package transport

import (
	"fmt"
	"sync"
)

// FaultyFactory wraps another transport factory and injects peer-channel
// faults deterministically: CutPair severs the channel between a pair of
// nodes in both directions — sends fail, deliveries are blackholed, and both
// sinks observe a transient PeerDown — and HealPair restores it, announcing
// the recovery via RecoverySink. The wrapper operates above the inner
// transport, so it composes with any backend (bus or TCP) and gives chaos
// tests an exact, schedulable analogue of a connection drop: cut between two
// flush cycles models a one-cycle outage, cut before a cycle models a peer
// that is down when the cycle starts.
type FaultyFactory struct {
	Inner Factory

	mu  sync.Mutex
	eps []*faultyEndpoint
}

// Mesh implements Factory.
func (f *FaultyFactory) Mesh(n int) ([]Endpoint, error) {
	inner, err := f.Inner.Mesh(n)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.eps = make([]*faultyEndpoint, n)
	out := make([]Endpoint, n)
	for i := range inner {
		fe := &faultyEndpoint{inner: inner[i], cut: make([]bool, n)}
		if pc, ok := inner[i].(PushCapable); ok {
			pc.SetSink(&filterSink{ep: fe})
		}
		f.eps[i] = fe
		out[i] = fe
	}
	return out, nil
}

// Kind implements Factory, keeping the inner transport's name so consumers'
// reporting is unchanged.
func (f *FaultyFactory) Kind() string { return f.Inner.Kind() }

// CutPair severs the channel between nodes i and j in both directions.
func (f *FaultyFactory) CutPair(i, j int) {
	f.mu.Lock()
	eps := f.eps
	f.mu.Unlock()
	eps[i].setCut(j, true)
	eps[j].setCut(i, true)
}

// HealPair restores the channel between nodes i and j in both directions.
func (f *FaultyFactory) HealPair(i, j int) {
	f.mu.Lock()
	eps := f.eps
	f.mu.Unlock()
	eps[i].setCut(j, false)
	eps[j].setCut(i, false)
}

// errInjected is the failure a cut channel reports.
type errInjected struct{ peer int }

func (e errInjected) Error() string {
	return fmt.Sprintf("injected fault: channel to peer %d cut", e.peer)
}

// faultyEndpoint is one node's fault-filtered view of its inner endpoint.
type faultyEndpoint struct {
	inner Endpoint

	mu   sync.Mutex
	cut  []bool
	sink Sink // the consumer's sink, when one was set
}

func (ep *faultyEndpoint) NodeID() int   { return ep.inner.NodeID() }
func (ep *faultyEndpoint) N() int        { return ep.inner.N() }
func (ep *faultyEndpoint) Retains() bool { return ep.inner.Retains() }
func (ep *faultyEndpoint) Close() error  { return ep.inner.Close() }
func (ep *faultyEndpoint) Stats() Stats  { return ep.inner.Stats() }
func (ep *faultyEndpoint) Recv() (Frame, error) {
	return ep.inner.Recv()
}

// Send fails on a cut channel exactly like a transport whose connection to
// the peer is down.
func (ep *faultyEndpoint) Send(to int, data []byte) error {
	ep.mu.Lock()
	isCut := to >= 0 && to < len(ep.cut) && ep.cut[to]
	ep.mu.Unlock()
	if isCut {
		return &PeerError{Peer: to, Err: errInjected{peer: to}, Transient: true}
	}
	return ep.inner.Send(to, data)
}

// SetSink implements PushCapable: the consumer's sink receives the filtered
// stream (the inner endpoint already delivers into the wrapper's filter).
func (ep *faultyEndpoint) SetSink(s Sink) {
	ep.mu.Lock()
	ep.sink = s
	ep.mu.Unlock()
}

// setCut flips one direction of an injected fault and synthesizes the
// matching lifecycle event for the consumer's sink.
func (ep *faultyEndpoint) setCut(peer int, cut bool) {
	ep.mu.Lock()
	changed := ep.cut[peer] != cut
	ep.cut[peer] = cut
	sink := ep.sink
	ep.mu.Unlock()
	if !changed || sink == nil {
		return
	}
	if cut {
		sink.PeerDown(peer, &PeerError{Peer: peer, Err: errInjected{peer: peer}, Transient: true})
		return
	}
	if rs, ok := sink.(RecoverySink); ok {
		rs.PeerUp(peer)
	}
}

// filterSink sits between the inner endpoint's delivery context and the
// consumer's sink, blackholing traffic of cut channels.
type filterSink struct{ ep *faultyEndpoint }

func (fs *filterSink) Deliver(f Frame) {
	fs.ep.mu.Lock()
	isCut := f.From >= 0 && f.From < len(fs.ep.cut) && fs.ep.cut[f.From]
	sink := fs.ep.sink
	fs.ep.mu.Unlock()
	if isCut || sink == nil {
		PutBuf(f.Data)
		return
	}
	sink.Deliver(f)
}

func (fs *filterSink) PeerDown(peer int, err error) {
	fs.ep.mu.Lock()
	sink := fs.ep.sink
	fs.ep.mu.Unlock()
	if sink != nil {
		sink.PeerDown(peer, err)
	}
}

// PeerUp forwards the inner transport's recovery events (a TCP reconnect
// under an injected cut still heals the real channel; the cut keeps
// filtering traffic until HealPair).
func (fs *filterSink) PeerUp(peer int) {
	fs.ep.mu.Lock()
	sink := fs.ep.sink
	fs.ep.mu.Unlock()
	if rs, ok := sink.(RecoverySink); ok {
		rs.PeerUp(peer)
	}
}
