package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultyFactory wraps another transport factory and injects peer-channel
// faults deterministically. It is the chaos layer's injection surface:
//
//   - CutPair / HealPair sever and restore one pair's channel in both
//     directions — sends fail, deliveries are blackholed, and both sinks
//     observe a transient PeerDown (HealPair announces recovery via
//     RecoverySink).
//   - Partition / HealAll generalize cuts to node sets: every cross-group
//     channel is cut, every intra-group channel healed, in one atomic sweep.
//   - IsolateNode / HealNode cut one node off from every peer — the
//     transport-level image of a crashed node.
//   - DelayPair / DelayAll / HealDelays inject per-channel delivery latency
//     with bounded deterministic jitter, and ThrottlePair adds a bandwidth
//     cap (frames pay size/rate of serialization delay). Delays apply at the
//     receiver: each (receiver, sender) channel releases frames in FIFO
//     order with monotone release times, so the per-peer FIFO guarantee the
//     round synchronizer depends on survives, while differential delays
//     across senders reorder frames between peers and streams — exactly the
//     reordering the synchronous-round model permits.
//
// The wrapper operates above the inner transport, so every primitive
// composes with any backend (bus or TCP) and gives chaos schedules an exact
// analogue of real network faults: a cut between two flush cycles models a
// one-cycle outage, a cut before a cycle models a peer that is down when the
// cycle starts, a delay storm models congestion without breaking channels.
type FaultyFactory struct {
	Inner Factory
	// Seed drives the deterministic jitter stream of injected delays; each
	// endpoint derives its own sub-generator, so one seed replays one jitter
	// timeline per receiver. Set before Mesh.
	Seed int64

	mu  sync.Mutex
	eps []*faultyEndpoint
}

// Mesh implements Factory. A FaultyFactory wraps exactly one mesh: calling
// Mesh again would silently detach the fault state already injected into the
// first one, so re-entry is an error.
func (f *FaultyFactory) Mesh(n int) ([]Endpoint, error) {
	f.mu.Lock()
	already := f.eps != nil
	f.mu.Unlock()
	if already {
		return nil, fmt.Errorf("transport: FaultyFactory.Mesh called twice (one factory wraps one mesh; its fault state cannot span two)")
	}
	inner, err := f.Inner.Mesh(n)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.eps != nil {
		return nil, fmt.Errorf("transport: FaultyFactory.Mesh called twice (one factory wraps one mesh; its fault state cannot span two)")
	}
	f.eps = make([]*faultyEndpoint, n)
	out := make([]Endpoint, n)
	for i := range inner {
		fe := &faultyEndpoint{
			inner:     inner[i],
			chans:     make([]chanFault, n),
			jitter:    rand.New(rand.NewSource(f.Seed*0x5851F42D4C957F2D + int64(i) + 1)),
			delayWake: make(chan struct{}, 1),
		}
		if pc, ok := inner[i].(PushCapable); ok {
			pc.SetSink(&filterSink{ep: fe})
		}
		f.eps[i] = fe
		out[i] = fe
	}
	return out, nil
}

// Kind implements Factory, keeping the inner transport's name so consumers'
// reporting is unchanged.
func (f *FaultyFactory) Kind() string { return f.Inner.Kind() }

// endpoints returns the mesh's endpoints, validating that Mesh ran and that
// every operand node id is in range. Injection before the mesh exists (or at
// a node that does not) is a harness bug; it panics with a clear message
// instead of the old nil-slice index crash.
func (f *FaultyFactory) endpoints(op string, ids ...int) []*faultyEndpoint {
	f.mu.Lock()
	eps := f.eps
	f.mu.Unlock()
	if eps == nil {
		panic("transport: FaultyFactory." + op + " called before Mesh built the endpoints")
	}
	for _, id := range ids {
		if id < 0 || id >= len(eps) {
			panic(fmt.Sprintf("transport: FaultyFactory.%s: node %d out of range [0,%d)", op, id, len(eps)))
		}
	}
	return eps
}

// CutPair severs the channel between nodes i and j in both directions.
func (f *FaultyFactory) CutPair(i, j int) {
	eps := f.endpoints("CutPair", i, j)
	eps[i].setCut(j, true)
	eps[j].setCut(i, true)
}

// HealPair restores the channel between nodes i and j in both directions.
func (f *FaultyFactory) HealPair(i, j int) {
	eps := f.endpoints("HealPair", i, j)
	eps[i].setCut(j, false)
	eps[j].setCut(i, false)
}

// Partition reshapes the whole mesh's cut state in one sweep: nodes in
// different groups lose their channels, nodes in the same group keep (or
// regain) theirs. Nodes not listed in any group form one implicit group of
// their own — Partition([]int{3}) isolates node 3 from everyone else, and
// Partition(nil...) with no groups is equivalent to HealAll. A node listed
// in two groups is an error.
func (f *FaultyFactory) Partition(groups ...[]int) error {
	eps := f.endpoints("Partition")
	n := len(eps)
	group := make([]int, n)
	for i := range group {
		group[i] = -1
	}
	for g, members := range groups {
		for _, id := range members {
			if id < 0 || id >= n {
				return fmt.Errorf("transport: Partition: node %d out of range [0,%d)", id, n)
			}
			if group[id] != -1 {
				return fmt.Errorf("transport: Partition: node %d listed in two groups", id)
			}
			group[id] = g
		}
	}
	for i := range group {
		if group[i] == -1 {
			group[i] = len(groups) // the implicit remainder group
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cut := group[i] != group[j]
			eps[i].setCut(j, cut)
			eps[j].setCut(i, cut)
		}
	}
	return nil
}

// HealAll restores a pristine mesh: every cut is healed and every injected
// delay, jitter and throttle removed. Frames already queued behind a delay
// still release on their original schedule (draining them early would
// reorder a channel against itself).
func (f *FaultyFactory) HealAll() {
	eps := f.endpoints("HealAll")
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].setCut(j, false)
			}
		}
		eps[i].clearDelays()
	}
}

// IsolateNode cuts node i off from every peer in both directions — the
// transport-level image of a crashed node: its sends fail, nothing it emits
// is delivered, and every peer observes a transient channel loss.
func (f *FaultyFactory) IsolateNode(i int) {
	eps := f.endpoints("IsolateNode", i)
	for j := range eps {
		if j != i {
			eps[i].setCut(j, true)
			eps[j].setCut(i, true)
		}
	}
}

// HealNode undoes IsolateNode: node i's channels to every peer are restored
// and both ends observe the recovery (PeerUp), so the node rejoins at the
// next epoch boundary.
func (f *FaultyFactory) HealNode(i int) {
	eps := f.endpoints("HealNode", i)
	for j := range eps {
		if j != i {
			eps[i].setCut(j, false)
			eps[j].setCut(i, false)
		}
	}
}

// DelayPair injects delivery latency on the channel between nodes i and j in
// both directions: every frame waits d plus a deterministic jitter in
// [0, jitter] before reaching the consumer's sink. Per-channel FIFO order is
// preserved (release times are monotone per sender); reordering happens only
// across senders, which the model permits. d <= 0 with jitter <= 0 removes
// the pair's delay.
func (f *FaultyFactory) DelayPair(i, j int, d, jitter time.Duration) {
	eps := f.endpoints("DelayPair", i, j)
	eps[i].setDelay(j, d, jitter)
	eps[j].setDelay(i, d, jitter)
}

// DelayAll injects the same delivery latency on every channel of the mesh —
// a mesh-wide delay storm. HealDelays (or HealAll) ends it.
func (f *FaultyFactory) DelayAll(d, jitter time.Duration) {
	eps := f.endpoints("DelayAll")
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].setDelay(j, d, jitter)
			}
		}
	}
}

// HealDelays removes every injected delay, jitter and throttle, mesh-wide.
// Frames already queued keep their assigned release times.
func (f *FaultyFactory) HealDelays() {
	eps := f.endpoints("HealDelays")
	for i := range eps {
		eps[i].clearDelays()
	}
}

// ThrottlePair caps the bandwidth of the channel between nodes i and j in
// both directions: each delivered frame pays size/bytesPerSec of
// serialization delay on top of any DelayPair latency. bytesPerSec <= 0
// removes the cap.
func (f *FaultyFactory) ThrottlePair(i, j int, bytesPerSec int64) {
	eps := f.endpoints("ThrottlePair", i, j)
	eps[i].setThrottle(j, bytesPerSec)
	eps[j].setThrottle(i, bytesPerSec)
}

// errInjected is the failure a cut channel reports.
type errInjected struct{ peer int }

func (e errInjected) Error() string {
	return fmt.Sprintf("injected fault: channel to peer %d cut", e.peer)
}

// chanFault is one (receiver, sender) channel's injected fault state.
type chanFault struct {
	cut    bool
	delay  time.Duration
	jitter time.Duration
	bps    int64 // bandwidth cap, bytes/sec; 0 = unlimited
	// lastRelease is the release time assigned to the channel's most recent
	// delayed frame; keeping each new release at or after it preserves the
	// per-channel FIFO guarantee whatever the delay parameters do.
	lastRelease time.Time
	// pending counts the channel's frames still queued in the delayer; a
	// healed channel keeps routing through the queue until it drains, so a
	// late heal cannot reorder a channel against itself.
	pending int
}

// delayed reports whether deliveries on the channel must go through the
// delay queue.
func (c *chanFault) delayed() bool {
	return c.delay > 0 || c.jitter > 0 || c.bps > 0 || c.pending > 0
}

// faultyEndpoint is one node's fault-filtered view of its inner endpoint.
type faultyEndpoint struct {
	inner Endpoint

	mu     sync.Mutex
	chans  []chanFault
	sink   Sink       // the consumer's sink, when one was set
	jitter *rand.Rand // deterministic jitter stream (guarded by mu)

	// Delay queue: frames under injected latency wait here, released in
	// global release-time order by a single lazily-started drain goroutine
	// per endpoint (running only while frames are queued, so an idle or
	// fault-free endpoint costs no goroutine).
	dq           delayHeap
	dqSeq        uint64
	delayRunning bool
	delayClosed  bool
	delayWake    chan struct{} // cap 1; nudges the drainer on earlier work / close
}

func (ep *faultyEndpoint) NodeID() int   { return ep.inner.NodeID() }
func (ep *faultyEndpoint) N() int        { return ep.inner.N() }
func (ep *faultyEndpoint) Retains() bool { return ep.inner.Retains() }
func (ep *faultyEndpoint) Stats() Stats  { return ep.inner.Stats() }
func (ep *faultyEndpoint) Recv() (Frame, error) {
	return ep.inner.Recv()
}

// Close drops queued delayed frames and closes the inner endpoint.
func (ep *faultyEndpoint) Close() error {
	ep.mu.Lock()
	ep.delayClosed = true
	for _, df := range ep.dq {
		PutBuf(df.f.Data)
	}
	ep.dq = nil
	ep.mu.Unlock()
	select {
	case ep.delayWake <- struct{}{}:
	default:
	}
	return ep.inner.Close()
}

// DropConn forwards to the inner endpoint's connection dropper, when it has
// one, so chaos scenarios can compose an injected cut with a real
// socket-level loss.
func (ep *faultyEndpoint) DropConn(peer int) bool {
	if cd, ok := ep.inner.(ConnDropper); ok {
		return cd.DropConn(peer)
	}
	return false
}

// Send fails on a cut channel exactly like a transport whose connection to
// the peer is down.
func (ep *faultyEndpoint) Send(to int, data []byte) error {
	ep.mu.Lock()
	isCut := to >= 0 && to < len(ep.chans) && ep.chans[to].cut
	ep.mu.Unlock()
	if isCut {
		return &PeerError{Peer: to, Err: errInjected{peer: to}, Transient: true}
	}
	return ep.inner.Send(to, data)
}

// SetSink implements PushCapable: the consumer's sink receives the filtered
// stream (the inner endpoint already delivers into the wrapper's filter).
func (ep *faultyEndpoint) SetSink(s Sink) {
	ep.mu.Lock()
	ep.sink = s
	ep.mu.Unlock()
}

// setCut flips one direction of an injected fault and synthesizes the
// matching lifecycle event for the consumer's sink. Cutting a channel also
// kills its frames still queued behind an injected delay: they were in
// flight on the wire the cut severed, and a later heal must not resurrect
// them.
func (ep *faultyEndpoint) setCut(peer int, cut bool) {
	ep.mu.Lock()
	changed := ep.chans[peer].cut != cut
	ep.chans[peer].cut = cut
	if cut && ep.chans[peer].pending > 0 {
		kept := ep.dq[:0]
		for _, df := range ep.dq {
			if df.f.From == peer {
				PutBuf(df.f.Data)
				ep.chans[peer].pending--
				continue
			}
			kept = append(kept, df)
		}
		ep.dq = kept
		heap.Init(&ep.dq)
	}
	sink := ep.sink
	ep.mu.Unlock()
	if !changed || sink == nil {
		return
	}
	if cut {
		sink.PeerDown(peer, &PeerError{Peer: peer, Err: errInjected{peer: peer}, Transient: true})
		return
	}
	if rs, ok := sink.(RecoverySink); ok {
		rs.PeerUp(peer)
	}
}

// setDelay configures one inbound channel's delivery latency.
func (ep *faultyEndpoint) setDelay(peer int, d, jitter time.Duration) {
	if d < 0 {
		d = 0
	}
	if jitter < 0 {
		jitter = 0
	}
	ep.mu.Lock()
	ep.chans[peer].delay = d
	ep.chans[peer].jitter = jitter
	ep.mu.Unlock()
}

// setThrottle configures one inbound channel's bandwidth cap.
func (ep *faultyEndpoint) setThrottle(peer int, bps int64) {
	if bps < 0 {
		bps = 0
	}
	ep.mu.Lock()
	ep.chans[peer].bps = bps
	ep.mu.Unlock()
}

// clearDelays removes every inbound channel's delay and throttle.
func (ep *faultyEndpoint) clearDelays() {
	ep.mu.Lock()
	for i := range ep.chans {
		ep.chans[i].delay, ep.chans[i].jitter, ep.chans[i].bps = 0, 0, 0
	}
	ep.mu.Unlock()
}

// delayedFrame is one frame waiting out its injected latency.
type delayedFrame struct {
	f       Frame
	release time.Time
	seq     uint64 // insertion order; ties release in arrival order
}

// delayHeap is a min-heap of delayed frames by (release, seq).
type delayHeap []*delayedFrame

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].release.Equal(h[j].release) {
		return h[i].release.Before(h[j].release)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(*delayedFrame)) }
func (h *delayHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return it }

// enqueueDelayedLocked queues a frame for delayed delivery and makes sure a
// drainer is running. Caller holds ep.mu.
func (ep *faultyEndpoint) enqueueDelayedLocked(f Frame, release time.Time) {
	ep.dqSeq++
	heap.Push(&ep.dq, &delayedFrame{f: f, release: release, seq: ep.dqSeq})
	if !ep.delayRunning {
		ep.delayRunning = true
		go ep.drainDelayed()
	} else {
		select {
		case ep.delayWake <- struct{}{}:
		default:
		}
	}
}

// drainDelayed releases queued frames in release-time order. It exits as
// soon as the queue empties (a new frame restarts it) or the endpoint
// closes, so chaos never leaks a goroutine past its faults.
func (ep *faultyEndpoint) drainDelayed() {
	for {
		ep.mu.Lock()
		if ep.delayClosed || len(ep.dq) == 0 {
			ep.delayRunning = false
			ep.mu.Unlock()
			return
		}
		now := time.Now()
		if wait := ep.dq[0].release.Sub(now); wait > 0 {
			ep.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ep.delayWake:
				t.Stop()
			}
			continue
		}
		df := heap.Pop(&ep.dq).(*delayedFrame)
		from := df.f.From
		ep.chans[from].pending--
		isCut := ep.chans[from].cut
		sink := ep.sink
		ep.mu.Unlock()
		if isCut || sink == nil {
			// The channel was cut while the frame waited: it dies in flight,
			// like bytes on a severed wire.
			PutBuf(df.f.Data)
			continue
		}
		sink.Deliver(df.f)
	}
}

// filterSink sits between the inner endpoint's delivery context and the
// consumer's sink, applying the injected fault state: cut channels blackhole
// traffic, delayed channels route it through the release queue.
type filterSink struct{ ep *faultyEndpoint }

func (fs *filterSink) Deliver(f Frame) {
	ep := fs.ep
	ep.mu.Lock()
	if f.From < 0 || f.From >= len(ep.chans) {
		sink := ep.sink
		ep.mu.Unlock()
		if sink == nil {
			PutBuf(f.Data)
			return
		}
		sink.Deliver(f)
		return
	}
	ch := &ep.chans[f.From]
	if ch.cut {
		ep.mu.Unlock()
		PutBuf(f.Data)
		return
	}
	if !ch.delayed() {
		sink := ep.sink
		ep.mu.Unlock()
		if sink == nil {
			PutBuf(f.Data)
			return
		}
		sink.Deliver(f)
		return
	}
	if ep.delayClosed {
		ep.mu.Unlock()
		PutBuf(f.Data)
		return
	}
	now := time.Now()
	rel := ch.lastRelease
	if rel.Before(now) {
		rel = now
	}
	rel = rel.Add(ch.delay)
	if ch.jitter > 0 {
		rel = rel.Add(time.Duration(ep.jitter.Int63n(int64(ch.jitter) + 1)))
	}
	if ch.bps > 0 {
		rel = rel.Add(time.Duration(int64(len(f.Data)) * int64(time.Second) / ch.bps))
	}
	ch.lastRelease = rel
	ch.pending++
	ep.enqueueDelayedLocked(f, rel)
	ep.mu.Unlock()
}

func (fs *filterSink) PeerDown(peer int, err error) {
	fs.ep.mu.Lock()
	sink := fs.ep.sink
	fs.ep.mu.Unlock()
	if sink != nil {
		sink.PeerDown(peer, err)
	}
}

// PeerUp forwards the inner transport's recovery events (a TCP reconnect
// under an injected cut still heals the real channel; the cut keeps
// filtering traffic until HealPair).
func (fs *filterSink) PeerUp(peer int) {
	fs.ep.mu.Lock()
	sink := fs.ep.sink
	fs.ep.mu.Unlock()
	if rs, ok := sink.(RecoverySink); ok {
		rs.PeerUp(peer)
	}
}
