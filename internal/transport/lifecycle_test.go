package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recSink records everything a sink observes: delivered payloads and peer
// lifecycle events.
type recSink struct {
	mu     sync.Mutex
	frames []string
	downs  []error
	ups    []int
}

func (s *recSink) Deliver(f Frame) {
	s.mu.Lock()
	s.frames = append(s.frames, string(f.Data))
	s.mu.Unlock()
	PutBuf(f.Data)
}

func (s *recSink) PeerDown(peer int, err error) {
	s.mu.Lock()
	s.downs = append(s.downs, fmt.Errorf("peer %d: %w", peer, err))
	s.mu.Unlock()
}

func (s *recSink) PeerUp(peer int) {
	s.mu.Lock()
	s.ups = append(s.ups, peer)
	s.mu.Unlock()
}

func (s *recSink) counts() (frames, downs, ups int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames), len(s.downs), len(s.ups)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPReconnectHealsChannel exercises the transport-level reconnect path
// in isolation: a dropped connection surfaces as a transient PeerDown at both
// ends, the dialing side re-dials and re-handshakes, both ends announce the
// recovery via PeerUp, and traffic flows again — with the reconnect and flap
// counters accounting for exactly one healed channel.
func TestTCPReconnectHealsChannel(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(2, TCPOptions{
		SetupTimeout: 10 * time.Second,
		Retry:        RetryPolicy{MinBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, MaxAttempts: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sinks := []*recSink{{}, {}}
	for i, ep := range eps {
		ep.(PushCapable).SetSink(sinks[i])
	}

	if err := eps[0].Send(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-drop delivery", func() bool { f, _, _ := sinks[1].counts(); return f == 1 })

	if !eps[1].(ConnDropper).DropConn(0) {
		t.Fatal("DropConn found no live connection")
	}
	waitFor(t, "both ends to notice the loss", func() bool {
		_, d0, _ := sinks[0].counts()
		_, d1, _ := sinks[1].counts()
		return d0 >= 1 && d1 >= 1
	})
	sinks[0].mu.Lock()
	firstLoss := sinks[0].downs[0]
	sinks[0].mu.Unlock()
	if !Transient(firstLoss) {
		t.Errorf("dropped connection reported as non-transient: %v", firstLoss)
	}

	// The higher id is the pair's dialer: it re-dials, both ends install the
	// fresh connection and announce the recovery.
	waitFor(t, "both ends to heal", func() bool {
		_, _, u0 := sinks[0].counts()
		_, _, u1 := sinks[1].counts()
		return u0 >= 1 && u1 >= 1
	})
	if err := eps[0].Send(1, []byte("after-a")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if err := eps[1].Send(0, []byte("after-b")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	waitFor(t, "post-heal deliveries", func() bool {
		f0, _, _ := sinks[0].counts()
		f1, _, _ := sinks[1].counts()
		return f0 >= 1 && f1 >= 2
	})

	var st Stats
	for _, ep := range eps {
		st.Add(ep.Stats())
	}
	if st.Reconnects != 2 {
		t.Errorf("Reconnects = %d, want 2 (one install per end)", st.Reconnects)
	}
	if st.PeerFlaps != 2 {
		t.Errorf("PeerFlaps = %d, want 2 (one transient loss per end)", st.PeerFlaps)
	}
	if st.Conns != 2 {
		t.Errorf("Conns = %d, want the flat dial-time count 2", st.Conns)
	}
}

// TestTCPCleanCloseNoPeerDown pins the Close race: an endpoint tearing itself
// down severs its own connections, and none of that may surface as peer
// failures at its own sink — a deliberate local Close is not a peer loss.
func TestTCPCleanCloseNoPeerDown(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(2, TCPOptions{SetupTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sinks := []*recSink{{}, {}}
	for i, ep := range eps {
		ep.(PushCapable).SetSink(sinks[i])
	}
	if err := eps[0].Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool { f, _, _ := sinks[1].counts(); return f == 1 })

	eps[0].Close()
	eps[1].Close()
	if _, d0, _ := sinks[0].counts(); d0 != 0 {
		sinks[0].mu.Lock()
		defer sinks[0].mu.Unlock()
		t.Errorf("clean Close surfaced %d peer failures at the closing endpoint's own sink: %v", d0, sinks[0].downs)
	}
}

// TestFaultyFactoryCutAndHeal covers the fault-injection wrapper: a cut pair
// fails sends with a transient PeerError and synthesizes PeerDown at both
// ends; the heal synthesizes PeerUp and restores traffic.
func TestFaultyFactoryCutAndHeal(t *testing.T) {
	t.Parallel()
	ff := &FaultyFactory{Inner: BusFactory{}}
	eps, err := ff.Mesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sinks := []*recSink{{}, {}}
	for i, ep := range eps {
		ep.(PushCapable).SetSink(sinks[i])
	}

	if err := eps[0].Send(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-cut delivery", func() bool { f, _, _ := sinks[1].counts(); return f == 1 })

	ff.CutPair(0, 1)
	err = eps[0].Send(1, []byte("lost"))
	if err == nil || !Transient(err) {
		t.Fatalf("send over a cut channel = %v, want a transient PeerError", err)
	}
	for i, s := range sinks {
		_, d, _ := s.counts()
		if d != 1 {
			t.Errorf("sink %d saw %d PeerDown events after the cut, want 1", i, d)
		}
	}

	ff.HealPair(0, 1)
	for i, s := range sinks {
		_, _, u := s.counts()
		if u != 1 {
			t.Errorf("sink %d saw %d PeerUp events after the heal, want 1", i, u)
		}
	}
	if err := eps[0].Send(1, []byte("post")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	waitFor(t, "post-heal delivery", func() bool { f, _, _ := sinks[1].counts(); return f == 2 })
}
