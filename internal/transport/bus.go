package transport

import (
	"fmt"
	"sync/atomic"
)

// busEndpoint is the in-process transport: frames move between endpoints as
// slice references pushed onto the receiver's queue. It is the fast path for
// tests and benchmarks, and the baseline the TCP transport is measured
// against — the bytes it accounts are the same encoded frames TCP would
// carry, minus the length prefix.
type busEndpoint struct {
	id    int
	n     int
	peers []*busEndpoint

	recv *queue
	// sink, when set (atomic.Value of Sink), receives this endpoint's
	// inbound frames synchronously on the sender's goroutine instead of
	// through the recv queue — the bus's whole transmission cost collapses
	// to one function call, with no dispatcher goroutine to wake.
	sink   atomic.Value
	closed atomic.Bool

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
}

// SetSink implements PushCapable.
func (ep *busEndpoint) SetSink(s Sink) { ep.sink.Store(&s) }

// NewBus returns n connected in-process endpoints, endpoint i for
// processor i.
func NewBus(n int) []Endpoint {
	eps := make([]*busEndpoint, n)
	for i := range eps {
		eps[i] = &busEndpoint{id: i, n: n, peers: eps, recv: newQueue()}
	}
	out := make([]Endpoint, n)
	for i, ep := range eps {
		out[i] = ep
	}
	return out
}

func (ep *busEndpoint) NodeID() int { return ep.id }
func (ep *busEndpoint) N() int      { return ep.n }

// Retains implements Endpoint: the bus hands the receiver the very slice
// the sender passed in, so senders must not reuse it.
func (ep *busEndpoint) Retains() bool { return true }

func (ep *busEndpoint) Send(to int, data []byte) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= ep.n || to == ep.id {
		return fmt.Errorf("transport: bad destination %d from node %d", to, ep.id)
	}
	peer := ep.peers[to]
	if peer.closed.Load() {
		return &PeerError{Peer: to, Err: ErrClosed}
	}
	ep.framesSent.Add(1)
	ep.bytesSent.Add(int64(len(data)))
	peer.framesRecv.Add(1)
	peer.bytesRecv.Add(int64(len(data)))
	if s := peer.sink.Load(); s != nil {
		(*s.(*Sink)).Deliver(Frame{From: ep.id, Data: data})
		return nil
	}
	peer.recv.push(Frame{From: ep.id, Data: data})
	return nil
}

func (ep *busEndpoint) Recv() (Frame, error) {
	return ep.recv.pop()
}

func (ep *busEndpoint) Close() error {
	if ep.closed.CompareAndSwap(false, true) {
		ep.recv.close()
	}
	return nil
}

func (ep *busEndpoint) Stats() Stats {
	return Stats{
		FramesSent: ep.framesSent.Load(),
		BytesSent:  ep.bytesSent.Load(),
		FramesRecv: ep.framesRecv.Load(),
		BytesRecv:  ep.bytesRecv.Load(),
	}
}

// BusFactory creates in-process bus meshes.
type BusFactory struct{}

// Mesh implements Factory.
func (BusFactory) Mesh(n int) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: mesh needs n >= 1, got %d", n)
	}
	return NewBus(n), nil
}

// Kind implements Factory.
func (BusFactory) Kind() string { return "bus" }
