package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func tcpPair(t *testing.T) []Endpoint {
	t.Helper()
	eps, err := NewTCPMesh(2, TCPOptions{SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeEndpoints(eps) })
	return eps
}

// TestSendPrefixedRoundTrip drives the zero-copy write path across prefix
// lengths (1-, 2- and 3-byte uvarints, and the empty frame) and checks the
// receiver decodes exactly the bytes behind the headroom — the back-filled
// prefix must land flush against the frame regardless of its width.
func TestSendPrefixedRoundTrip(t *testing.T) {
	t.Parallel()
	eps := tcpPair(t)
	ps := eps[0].(PrefixedSender)

	sizes := []int{0, 1, 100, 127, 128, 4000, 70000}
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		buf := append(GetPrefixedBuf(), payload...)
		if err := ps.SendPrefixed(1, buf); err != nil {
			t.Fatalf("SendPrefixed(%d bytes): %v", size, err)
		}
		// Synchronous completion: the buffer is ours again right away.
		PutBuf(buf)
		fr, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if fr.From != 0 || !bytes.Equal(fr.Data, payload) {
			t.Fatalf("frame of %d bytes arrived corrupted (from=%d, %d bytes)", size, fr.From, len(fr.Data))
		}
	}
	if st := eps[0].Stats(); st.FramesSent != int64(len(sizes)) {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, len(sizes))
	}

	if err := ps.SendPrefixed(1, make([]byte, SendHeadroom-1)); err == nil {
		t.Error("SendPrefixed accepted a buffer below the headroom")
	}
	if err := ps.SendPrefixed(0, GetPrefixedBuf()); err == nil {
		t.Error("SendPrefixed accepted self as destination")
	}
}

// TestSendPrefixedBroadcastReuse pins the broadcast fast path's contract: one
// template buffer, sent to every peer in turn without copies, arrives intact
// everywhere (the prefix back-fill is idempotent across sends).
func TestSendPrefixedBroadcastReuse(t *testing.T) {
	t.Parallel()
	const n = 4
	eps, err := NewTCPMesh(n, TCPOptions{SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)

	payload := []byte("broadcast template, one buffer for all peers")
	tmpl := append(GetPrefixedBuf(), payload...)
	ps := eps[0].(PrefixedSender)
	for j := 1; j < n; j++ {
		if err := ps.SendPrefixed(j, tmpl); err != nil {
			t.Fatal(err)
		}
	}
	PutBuf(tmpl)
	for j := 1; j < n; j++ {
		fr, err := eps[j].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fr.Data, payload) {
			t.Fatalf("peer %d received corrupted broadcast: %q", j, fr.Data)
		}
	}
}

// TestSendCoalescesConcurrentFrames hammers one peer pair from many sender
// goroutines, mixing the plain and prefixed paths, and checks every frame
// arrives exactly once and intact. With the write combiner this workload
// coalesces into far fewer vectored writes than frames; correctness here is
// that coalescing never tears, drops or duplicates a frame.
func TestSendCoalescesConcurrentFrames(t *testing.T) {
	t.Parallel()
	eps := tcpPair(t)
	ps := eps[0].(PrefixedSender)

	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				msg := fmt.Sprintf("sender %d frame %d", s, k)
				var err error
				if s%2 == 0 {
					buf := append(GetPrefixedBuf(), msg...)
					err = ps.SendPrefixed(1, buf)
					PutBuf(buf)
				} else {
					err = eps[0].Send(1, []byte(msg))
				}
				if err != nil {
					t.Errorf("send %q: %v", msg, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	seen := make(map[string]bool, senders*perSender)
	for i := 0; i < senders*perSender; i++ {
		fr, err := eps[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		msg := string(fr.Data)
		if seen[msg] {
			t.Fatalf("frame %q delivered twice", msg)
		}
		seen[msg] = true
	}
	if st := eps[0].Stats(); st.FramesSent != senders*perSender {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, senders*perSender)
	}
}
