package transport

import (
	"strings"
	"testing"
	"time"
)

// TestFaultyFactoryPartition covers the node-set generalization of cut/heal:
// a partition severs exactly the cross-group channels (with lifecycle events
// at both ends), keeps intra-group traffic flowing, and HealAll restores the
// pristine mesh.
func TestFaultyFactoryPartition(t *testing.T) {
	t.Parallel()
	ff := &FaultyFactory{Inner: BusFactory{}}
	eps, err := ff.Mesh(4)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sinks := make([]*recSink, 4)
	for i, ep := range eps {
		sinks[i] = &recSink{}
		ep.(PushCapable).SetSink(sinks[i])
	}

	// Nodes 2 and 3 are unlisted: they form the implicit remainder group.
	if err := ff.Partition([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("intra")); err != nil {
		t.Fatalf("intra-group send failed under partition: %v", err)
	}
	if err := eps[2].Send(3, []byte("intra")); err != nil {
		t.Fatalf("remainder-group send failed under partition: %v", err)
	}
	if err := eps[0].Send(2, []byte("cross")); err == nil || !Transient(err) {
		t.Fatalf("cross-group send = %v, want a transient PeerError", err)
	}
	waitFor(t, "intra-group deliveries", func() bool {
		f1, _, _ := sinks[1].counts()
		f3, _, _ := sinks[3].counts()
		return f1 == 1 && f3 == 1
	})
	// Each node lost exactly the 2 channels into the other group.
	for i, s := range sinks {
		if _, d, _ := s.counts(); d != 2 {
			t.Errorf("sink %d saw %d PeerDown events, want 2", i, d)
		}
	}

	ff.HealAll()
	for i, s := range sinks {
		if _, _, u := s.counts(); u != 2 {
			t.Errorf("sink %d saw %d PeerUp events after HealAll, want 2", i, u)
		}
	}
	if err := eps[0].Send(2, []byte("healed")); err != nil {
		t.Fatalf("cross-group send after HealAll: %v", err)
	}
	waitFor(t, "post-heal delivery", func() bool { f, _, _ := sinks[2].counts(); return f == 1 })

	if err := ff.Partition([]int{0, 1}, []int{1, 2}); err == nil {
		t.Error("Partition with a node in two groups succeeded, want an error")
	}
}

// TestFaultyFactoryIsolateNode covers the crash image: an isolated node's
// sends fail, nothing reaches it, every peer observes the loss, and HealNode
// restores it with recovery events at both ends.
func TestFaultyFactoryIsolateNode(t *testing.T) {
	t.Parallel()
	ff := &FaultyFactory{Inner: BusFactory{}}
	eps, err := ff.Mesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sinks := make([]*recSink, 3)
	for i, ep := range eps {
		sinks[i] = &recSink{}
		ep.(PushCapable).SetSink(sinks[i])
	}

	ff.IsolateNode(2)
	if err := eps[2].Send(0, []byte("x")); err == nil || !Transient(err) {
		t.Fatalf("send from isolated node = %v, want a transient PeerError", err)
	}
	if err := eps[0].Send(1, []byte("alive")); err != nil {
		t.Fatalf("send between live nodes under isolation: %v", err)
	}
	waitFor(t, "live-pair delivery", func() bool { f, _, _ := sinks[1].counts(); return f == 1 })
	if _, d, _ := sinks[2].counts(); d != 2 {
		t.Errorf("isolated node saw %d PeerDown events, want 2 (every channel)", d)
	}

	ff.HealNode(2)
	waitFor(t, "recovery events", func() bool {
		_, _, u0 := sinks[0].counts()
		_, _, u2 := sinks[2].counts()
		return u0 == 1 && u2 == 2
	})
	if err := eps[2].Send(0, []byte("back")); err != nil {
		t.Fatalf("send after HealNode: %v", err)
	}
	waitFor(t, "post-heal delivery", func() bool { f, _, _ := sinks[0].counts(); return f == 1 })
}

// TestFaultyFactoryDelayPreservesChannelFIFO pins the delay layer's model
// contract: injected latency (with jitter and a throttle) postpones delivery
// but never reorders one channel against itself — per-peer FIFO is what the
// round synchronizer's arrival-ordinal identity depends on.
func TestFaultyFactoryDelayPreservesChannelFIFO(t *testing.T) {
	t.Parallel()
	ff := &FaultyFactory{Inner: BusFactory{}, Seed: 42}
	eps, err := ff.Mesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sink := &recSink{}
	eps[1].(PushCapable).SetSink(sink)

	ff.DelayPair(0, 1, 3*time.Millisecond, 2*time.Millisecond)
	ff.ThrottlePair(0, 1, 1<<20)
	start := time.Now()
	const frames = 16
	for i := 0; i < frames; i++ {
		if err := eps[0].Send(1, []byte{'a' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "delayed deliveries", func() bool { f, _, _ := sink.counts(); return f == frames })
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("all frames delivered in %v, want at least the 3ms base delay", elapsed)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, data := range sink.frames {
		if want := string([]byte{'a' + byte(i)}); data != want {
			t.Fatalf("frame %d = %q, want %q: injected delay reordered a channel against itself", i, data, want)
		}
	}
}

// TestFaultyFactoryDelayedFrameDiesOnCut covers the interaction of the two
// fault layers: a frame queued behind an injected delay whose channel is cut
// before release dies in flight, like bytes on a severed wire.
func TestFaultyFactoryDelayedFrameDiesOnCut(t *testing.T) {
	t.Parallel()
	ff := &FaultyFactory{Inner: BusFactory{}}
	eps, err := ff.Mesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	sink := &recSink{}
	eps[1].(PushCapable).SetSink(sink)

	ff.DelayPair(0, 1, 30*time.Millisecond, 0)
	if err := eps[0].Send(1, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	ff.CutPair(0, 1)
	ff.HealPair(0, 1)
	if err := eps[0].Send(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-heal frame", func() bool { f, _, _ := sink.counts(); return f >= 1 })
	time.Sleep(50 * time.Millisecond) // past the doomed frame's release
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, data := range sink.frames {
		if data == "doomed" {
			t.Fatal("frame queued behind a delay survived the cut of its channel")
		}
	}
}

// TestFaultyFactoryGuards covers the harness-bug guards: injection before
// Mesh, out-of-range node ids, and Mesh re-entry all fail with clear
// messages instead of the old nil-slice crash.
func TestFaultyFactoryGuards(t *testing.T) {
	t.Parallel()
	mustPanic := func(what, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s did not panic", what)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Errorf("%s panicked with %v, want a message containing %q", what, r, want)
			}
		}()
		fn()
	}

	ff := &FaultyFactory{Inner: BusFactory{}}
	mustPanic("CutPair before Mesh", "before Mesh", func() { ff.CutPair(0, 1) })
	mustPanic("HealPair before Mesh", "before Mesh", func() { ff.HealPair(0, 1) })

	eps, err := ff.Mesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	mustPanic("CutPair out of range", "out of range", func() { ff.CutPair(0, 7) })

	if _, err := ff.Mesh(2); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("Mesh re-entry = %v, want a called-twice error", err)
	}
}

// TestTCPCloseDuringBackoff pins the redial-cancellation path: an endpoint
// whose re-dial loop is deep inside a long backoff window (its peer is gone
// for good) must still Close promptly — the dial context and the stop channel
// interrupt the loop instead of waiting out the retry budget.
func TestTCPCloseDuringBackoff(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(2, TCPOptions{
		SetupTimeout: 10 * time.Second,
		Retry:        RetryPolicy{MinBackoff: 30 * time.Second, MaxBackoff: 30 * time.Second, MaxAttempts: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	sinks := []*recSink{{}, {}}
	for i, ep := range eps {
		ep.(PushCapable).SetSink(sinks[i])
	}

	// Kill the lower id for good: the higher id (the pair's dialer) enters
	// its re-dial loop and, with every attempt failing fast against a dead
	// listener, parks in the 30s backoff sleep.
	eps[0].Close()
	waitFor(t, "dialer to notice the loss", func() bool { _, d, _ := sinks[1].counts(); return d >= 1 })

	start := time.Now()
	eps[1].Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a re-dial backoff in flight, want a prompt return", elapsed)
	}
}
