package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// meshes returns the factories under test; every test body must hold for
// both transports.
func meshes() []Factory {
	return []Factory{BusFactory{}, TCPFactory{Options: TCPOptions{SetupTimeout: 5 * time.Second}}}
}

func TestMeshDeliversAllToAll(t *testing.T) {
	t.Parallel()
	for _, f := range meshes() {
		t.Run(f.Kind(), func(t *testing.T) {
			t.Parallel()
			const n = 4
			eps, err := f.Mesh(n)
			if err != nil {
				t.Fatal(err)
			}
			defer closeEndpoints(eps)
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for i, ep := range eps {
				wg.Add(1)
				go func(i int, ep Endpoint) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						if j != i {
							if err := ep.Send(j, []byte(fmt.Sprintf("%d->%d", i, j))); err != nil {
								errs <- err
								return
							}
						}
					}
					got := map[int]string{}
					for len(got) < n-1 {
						fr, err := ep.Recv()
						if err != nil {
							errs <- err
							return
						}
						got[fr.From] = string(fr.Data)
					}
					for j := 0; j < n; j++ {
						if j != i && got[j] != fmt.Sprintf("%d->%d", j, i) {
							errs <- fmt.Errorf("node %d from %d: %q", i, j, got[j])
							return
						}
					}
					errs <- nil
				}(i, ep)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			st := eps[0].Stats()
			if st.FramesSent != n-1 || st.FramesRecv != n-1 || st.BytesSent == 0 || st.BytesRecv == 0 {
				t.Errorf("stats = %+v, want %d frames each way with nonzero bytes", st, n-1)
			}
		})
	}
}

func TestPerPeerOrderIsFIFO(t *testing.T) {
	t.Parallel()
	for _, f := range meshes() {
		t.Run(f.Kind(), func(t *testing.T) {
			t.Parallel()
			eps, err := f.Mesh(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeEndpoints(eps)
			const frames = 100
			for k := 0; k < frames; k++ {
				if err := eps[0].Send(1, []byte{byte(k)}); err != nil {
					t.Fatal(err)
				}
			}
			for k := 0; k < frames; k++ {
				fr, err := eps[1].Recv()
				if err != nil {
					t.Fatal(err)
				}
				if fr.From != 0 || fr.Data[0] != byte(k) {
					t.Fatalf("frame %d out of order: from=%d data=%v", k, fr.From, fr.Data)
				}
			}
		})
	}
}

// TestPeerDisconnectMidRound is the first transport failure mode the runtime
// depends on: when a peer goes away while others still wait for its frames,
// Recv must surface a PeerError naming it (after delivering everything that
// arrived first) instead of blocking forever.
func TestPeerDisconnectMidRound(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(3, TCPOptions{SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	// Peer 2 sends one frame of the "round" to node 0, then crashes before
	// completing it.
	if err := eps[2].Send(0, []byte("partial round")); err != nil {
		t.Fatal(err)
	}
	eps[2].Close()

	fr, err := eps[0].Recv()
	if err != nil || string(fr.Data) != "partial round" {
		t.Fatalf("pre-disconnect frame lost: %v, %v", fr, err)
	}
	_, err = eps[0].Recv()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != 2 {
		t.Fatalf("Recv after disconnect = %v, want PeerError{Peer: 2}", err)
	}
	// Sending to the dead peer must fail, not hang.
	if err := eps[0].Send(2, []byte("x")); err == nil {
		// TCP may buffer one write after FIN; the failure must surface by
		// the next write at the latest.
		err = eps[0].Send(2, []byte("x"))
		if err == nil {
			t.Error("sends to a closed peer keep succeeding")
		}
	}
}

// TestOversizedFrameIsRejected is the second failure mode: a Byzantine peer
// declaring an enormous frame must not cause an allocation or a hang — the
// receiver rejects the frame and fails that peer's channel.
func TestOversizedFrameIsRejected(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(2, TCPOptions{MaxFrame: 64, SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	// The sender does not pre-check (a Byzantine node would not), so the
	// receiver must.
	if err := eps[0].Send(1, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	_, err = eps[1].Recv()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != 0 {
		t.Fatalf("Recv = %v, want PeerError{Peer: 0}", err)
	}
	if got := pe.Err.Error(); !contains(got, "oversized") {
		t.Errorf("error %q does not name the oversized frame", got)
	}
}

// TestOversizedDeclarationWithoutBody writes a raw length prefix claiming
// 1 GiB with no body: the receiver must reject on the declaration alone.
func TestOversizedDeclarationWithoutBody(t *testing.T) {
	t.Parallel()
	eps, err := NewTCPMesh(2, TCPOptions{MaxFrame: 1 << 16, SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEndpoints(eps)
	raw := eps[0].(*tcpEndpoint)
	prefix := binary.AppendUvarint(nil, 1<<30)
	if _, err := raw.conns[1].Load().c.Write(prefix); err != nil {
		t.Fatal(err)
	}
	_, err = eps[1].Recv()
	var pe *PeerError
	if !errors.As(err, &pe) || !contains(pe.Err.Error(), "oversized") {
		t.Fatalf("Recv = %v, want oversized-frame PeerError", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	t.Parallel()
	for _, f := range meshes() {
		t.Run(f.Kind(), func(t *testing.T) {
			t.Parallel()
			eps, err := f.Mesh(2)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := eps[0].Recv()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			eps[0].Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Errorf("Recv after Close = %v, want ErrClosed", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv still blocked after Close")
			}
			eps[1].Close()
		})
	}
}

func TestBadDestination(t *testing.T) {
	t.Parallel()
	for _, f := range meshes() {
		t.Run(f.Kind(), func(t *testing.T) {
			t.Parallel()
			eps, err := f.Mesh(2)
			if err != nil {
				t.Fatal(err)
			}
			defer closeEndpoints(eps)
			for _, to := range []int{-1, 2, 0} { // 0 = self
				if err := eps[0].Send(to, []byte("x")); err == nil {
					t.Errorf("Send to %d succeeded", to)
				}
			}
		})
	}
}

func closeEndpoints(eps []Endpoint) {
	for _, ep := range eps {
		ep.Close()
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
