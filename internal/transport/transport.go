// Package transport provides the message-passing substrate of the networked
// runtime (internal/node): authenticated, ordered, point-to-point frame
// channels between the n processors of a deployment — the paper's system
// model realised as I/O instead of shared memory.
//
// Two implementations are provided: an in-process channel bus (the fast path
// for tests and benchmarks) and a TCP mesh (length-prefixed frames over one
// connection per peer pair). Both present the same Endpoint interface, so
// the node runtime, the consensus engine and the cluster command are
// transport-agnostic; the single-host simulator (internal/sim) remains the
// third backend, sharing the protocol code through sim.Backend rather than
// this interface because it delivers payloads by reference.
//
// The model guarantees carried by every implementation:
//
//   - sender authenticity: Frame.From is established by the transport (the
//     channel a frame arrived on), never by frame content;
//   - per-peer FIFO: frames from one peer arrive in the order sent;
//   - integrity is NOT guaranteed semantically — a Byzantine peer can send
//     arbitrary bytes, which is why frame decoding (internal/wire) is strict
//     and the receiving runtime treats every frame as adversarial input.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed endpoint once its receive
// queue has drained.
var ErrClosed = errors.New("transport: endpoint closed")

// PeerError reports a broken or misbehaving peer channel. In the lock-step
// protocols this runtime carries, a lost peer means the current round can
// never complete, so receivers treat it as fatal for the run in flight;
// whether the peer may ever come back is the Transient flag's call.
type PeerError struct {
	Peer int
	Err  error
	// Transient marks a recoverable channel loss — a dropped connection, a
	// truncated stream — as opposed to a protocol-level violation (oversized
	// frame declarations, handshake abuse), which convicts the peer
	// permanently. Transports with reconnect only re-dial transient losses,
	// and consumers scope transient failures to the cycle that observed them.
	Transient bool
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: peer %d: %v", e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Transient reports whether err describes a recoverable peer-channel loss
// (see PeerError.Transient). Errors that are not PeerErrors — mesh-fatal
// failures, protocol violations wrapped without the flag — are permanent.
func Transient(err error) bool {
	var pe *PeerError
	return errors.As(err, &pe) && pe.Transient
}

// RetryPolicy bounds a transport's peer-channel recovery: how aggressively a
// lost connection is re-dialed and when a flapping peer is demoted for good.
// The zero value enables recovery with the defaults below; Disabled restores
// the old fail-forever behaviour (one connection per peer pair for the mesh's
// whole life, any loss permanent).
type RetryPolicy struct {
	// Disabled turns reconnection off entirely: listeners close after mesh
	// setup and any connection loss permanently fails the peer's channel.
	Disabled bool
	// MinBackoff is the first re-dial delay (0 = 25ms). Each failed attempt
	// doubles it, capped at MaxBackoff, with up to 50% random jitter added so
	// a mesh-wide outage does not re-dial in lockstep.
	MinBackoff time.Duration
	// MaxBackoff caps the re-dial delay (0 = 1s).
	MaxBackoff time.Duration
	// MaxAttempts bounds re-dial attempts per outage before the channel is
	// demoted permanently (0 = 20; negative = unlimited).
	MaxAttempts int
	// MaxFlaps bounds how many times a peer's channel may be lost over the
	// endpoint's lifetime before it is demoted permanently — a flap budget,
	// so a pathologically unstable peer cannot keep a deployment churning
	// forever (0 = 64; negative = unlimited).
	MaxFlaps int
}

func (p RetryPolicy) minBackoff() time.Duration {
	if p.MinBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return p.MinBackoff
}

func (p RetryPolicy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return time.Second
	}
	if mb := p.minBackoff(); p.MaxBackoff < mb {
		return mb
	}
	return p.MaxBackoff
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts == 0 {
		return 20
	}
	if p.MaxAttempts < 0 {
		return 0 // unlimited
	}
	return p.MaxAttempts
}

func (p RetryPolicy) maxFlaps() int {
	if p.MaxFlaps == 0 {
		return 64
	}
	if p.MaxFlaps < 0 {
		return 0 // unlimited
	}
	return p.MaxFlaps
}

// Frame is one received message: opaque bytes from an authenticated sender.
type Frame struct {
	From int
	Data []byte
}

// Sink consumes delivered frames in the transport's delivery context — the
// in-process bus invokes it on the sender's goroutine, the TCP mesh on the
// per-connection reader. Implementations must be safe for concurrent calls
// (per-peer FIFO order is preserved per From; frames from different peers
// interleave) and must not block on protocol progress: a Deliver that waits
// for another frame deadlocks the mesh.
//
// Ownership of Frame.Data passes to the sink; once it is done decoding it
// should return the buffer via PutBuf so the sender/reader side can reuse
// it.
type Sink interface {
	Deliver(f Frame)
	// PeerDown reports a broken or misbehaving peer channel.
	PeerDown(peer int, err error)
}

// RecoverySink is an optional Sink extension: a transport with channel
// recovery (the TCP mesh's reconnect loop, the faulty-transport wrapper's
// heal) reports a re-established peer channel via PeerUp. Like the other
// sink callbacks it runs in the transport's delivery context and must not
// block. A sink that does not implement it simply never learns of
// recoveries — the channel then stays down from its point of view.
type RecoverySink interface {
	PeerUp(peer int)
}

// PushCapable is implemented by endpoints that can bypass the Recv queue and
// deliver frames synchronously to a Sink — removing one queue hop and two
// goroutine wakeups from every frame of the lock-step hot path. SetSink must
// be called before any traffic flows; afterwards Recv returns only ErrClosed
// at teardown.
type PushCapable interface {
	SetSink(s Sink)
}

// SendHeadroom is the number of bytes a prefixed send buffer reserves ahead
// of the frame for the transport's length prefix (the largest uvarint). A
// sender that encodes its frame into a GetPrefixedBuf buffer lets a
// PrefixedSender back-fill the prefix into the headroom and hand the single
// buffer to the socket — no second copy to assemble prefix+frame.
const SendHeadroom = binary.MaxVarintLen64

// PrefixedSender is the zero-copy write path implemented by endpoints that
// frame with a length prefix (the TCP mesh). SendPrefixed transmits
// data[SendHeadroom:] as one frame, back-filling the uvarint length into the
// headroom so the caller's buffer is the wire image. The call is synchronous:
// when it returns the bytes have been written (possibly coalesced with other
// concurrent frames to the same peer into one vectored write), so the caller
// may recycle or reuse the buffer — including sending the same buffer to
// several peers in turn, the broadcast fast path. The headroom bytes are
// clobbered by the prefix; everything from SendHeadroom on is read-only.
//
// Transports that move frames by reference (the bus) cannot offer this
// contract and simply do not implement the interface; capability detection
// at the consumer falls back to Send.
type PrefixedSender interface {
	SendPrefixed(to int, data []byte) error
}

// GetPrefixedBuf returns a pooled buffer whose first SendHeadroom bytes are
// reserved for a PrefixedSender's length prefix; append frame bytes after
// them. Return it with PutBuf when done.
func GetPrefixedBuf() []byte {
	return append(GetBuf(), make([]byte, SendHeadroom)...)
}

// bufPool recycles frame byte buffers across the send and receive sides of
// the in-process hot path: a sender (or TCP connection reader) obtains a
// buffer with GetBuf, and the consuming sink returns it with PutBuf once
// decoded. sync.Pool tolerates unbalanced callers, so transports and tests
// that do not participate simply miss the reuse.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetBuf returns a pooled, zero-length byte buffer.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf recycles a buffer previously obtained from GetBuf (or any buffer
// whose ownership ends at the caller).
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bufPool.Put(&b)
}

// Stats counts an endpoint's traffic in encoded on-wire bytes — the measured
// counterpart of the protocol-level bit meter. For TCP, bytes include the
// length prefix of every frame.
type Stats struct {
	FramesSent int64
	BytesSent  int64
	FramesRecv int64
	BytesRecv  int64
	// Conns counts the peer connections the endpoint established (n-1 per
	// TCP endpoint at mesh dial time; 0 for the in-process bus, which has no
	// connections). A consumer holding one mesh across many flush cycles
	// sees this stay flat — the persistent-mesh invariant — whereas
	// per-cycle redialing would grow it by n·(n-1) per cycle.
	Conns int64
	// Reconnects counts peer connections the endpoint re-established after a
	// transient loss (both ends count their own side of a healed channel).
	// Recovery does not grow Conns — that counter keeps proving the mesh was
	// dialed once — so reconnects are visible here and only here.
	Reconnects int64
	// PeerFlaps counts transient peer-channel losses observed by the
	// endpoint, whether or not the channel later recovered.
	PeerFlaps int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FramesSent += other.FramesSent
	s.BytesSent += other.BytesSent
	s.FramesRecv += other.FramesRecv
	s.BytesRecv += other.BytesRecv
	s.Conns += other.Conns
	s.Reconnects += other.Reconnects
	s.PeerFlaps += other.PeerFlaps
}

// Endpoint is one node's attachment to the deployment's n-processor mesh.
// Send is safe for concurrent use (pipelined instances share one endpoint);
// Recv is intended for a single dispatcher goroutine.
type Endpoint interface {
	// NodeID returns this endpoint's processor id in [0, N).
	NodeID() int
	// N returns the deployment size.
	N() int
	// Send transmits data to the given peer. When Retains reports true the
	// slice must not be modified after Send returns nil (the implementation
	// keeps a reference); when it reports false the implementation has
	// copied or written the bytes by the time Send returns and the caller
	// may recycle the buffer.
	Send(to int, data []byte) error
	// Retains reports whether Send keeps a reference to the data slice
	// (true for the in-process bus, which moves frames by reference; false
	// for TCP, which copies into the socket). Callers use it to gate
	// send-buffer pooling.
	Retains() bool
	// Recv blocks for the next received frame. It returns a *PeerError when
	// a peer channel breaks or misbehaves, and ErrClosed after Close once
	// all delivered frames have been consumed.
	Recv() (Frame, error)
	// Close tears the endpoint down. Frames already received remain
	// readable via Recv.
	Close() error
	// Stats returns a snapshot of the endpoint's byte accounting.
	Stats() Stats
}

// Factory creates fully connected meshes on demand. The cluster runtime
// (internal/node) dials one mesh per Cluster and keeps it for the cluster's
// whole life, demultiplexing successive runs by an epoch tag in the frame
// headers — stale frames of an aborted run are discarded by tag, not fenced
// off by a mesh teardown.
type Factory interface {
	// Mesh returns n connected endpoints, endpoint i for processor i.
	Mesh(n int) ([]Endpoint, error)
	// Kind names the transport for reports ("bus", "tcp").
	Kind() string
}

// queue is an unbounded FIFO of received frames shared by the bus and TCP
// endpoints. Unboundedness is deliberate: the receiving dispatcher must
// always drain the wire (otherwise lock-step traffic could deadlock behind
// transport backpressure), and the protocols' barrier structure bounds the
// number of in-flight frames per peer anyway.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Frame
	failed []error // peer failures delivered (in order) after the queued frames
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a frame; it is dropped if the queue is already closed.
func (q *queue) push(f Frame) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, f)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// fail records a peer failure, delivered by pop after the queued frames.
// Every failure is kept: with several peers breaking in one window, each
// down-mark matters to the consuming runtime's round bookkeeping.
func (q *queue) fail(err error) {
	q.mu.Lock()
	if !q.closed {
		q.failed = append(q.failed, err)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// close makes pop return ErrClosed once the queue drains.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// pop blocks for the next frame, a peer failure, or closure. Frames are
// delivered before a recorded failure (a broken peer must not swallow
// traffic that arrived first), and each failure is delivered exactly once so
// a consumer can keep draining frames from the surviving peers afterwards.
func (q *queue) pop() (Frame, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			f := q.items[0]
			q.items[0] = Frame{}
			q.items = q.items[1:]
			return f, nil
		}
		if q.closed {
			return Frame{}, ErrClosed
		}
		if len(q.failed) > 0 {
			err := q.failed[0]
			q.failed = q.failed[1:]
			return Frame{}, err
		}
		q.cond.Wait()
	}
}
