package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP wire format. Each connection starts with a hello — magic, protocol
// version, deployment size and the dialer's node id — and then carries
// length-prefixed frames: a uvarint byte count followed by the frame bytes.
// The prefix is bounded by MaxFrame before any allocation, so a Byzantine
// peer declaring a multi-gigabyte frame costs nothing but its connection.
var tcpMagic = [4]byte{'b', 'z', 'c', '1'}

const tcpVersion = 1

// DefaultMaxFrame bounds accepted frame sizes (16 MiB — comfortably above
// the largest protocol payload, a full batched consensus input).
const DefaultMaxFrame = 16 << 20

// TCPOptions tunes the TCP transport.
type TCPOptions struct {
	// MaxFrame is the largest accepted frame in bytes (0 = DefaultMaxFrame).
	// Frames declaring more are rejected and fail the sending peer's
	// channel.
	MaxFrame int
	// SetupTimeout bounds mesh construction: dials, handshakes and accepts
	// (0 = 10s).
	SetupTimeout time.Duration
}

func (o TCPOptions) maxFrame() int {
	if o.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return o.MaxFrame
}

func (o TCPOptions) setupTimeout() time.Duration {
	if o.SetupTimeout <= 0 {
		return 10 * time.Second
	}
	return o.SetupTimeout
}

// writeBuf is a pooled length-prefixed write buffer; Send copies every frame
// through one, so the hot path allocates nothing once the pool is warm.
type writeBuf struct{ b []byte }

var writeBufPool = sync.Pool{New: func() any { return new(writeBuf) }}

// tcpEndpoint is one node's end of a fully connected TCP mesh: one
// connection per peer, a reader goroutine per connection feeding the shared
// receive queue, and per-peer write locks so pipelined instances can send
// concurrently.
type tcpEndpoint struct {
	id  int
	n   int
	opt TCPOptions

	recv *queue
	// sink, when set (atomic.Value of Sink), receives inbound frames
	// directly on the per-connection reader goroutines instead of through
	// the recv queue (see PushCapable).
	sink   atomic.Value
	conns  []net.Conn // indexed by peer id; nil for self
	wmu    []sync.Mutex
	closed atomic.Bool

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
	// connsOpened counts established peer connections (n-1 at mesh dial
	// time); it only ever grows at dial, so a flat reading across flush
	// cycles proves the mesh was reused rather than rebuilt.
	connsOpened atomic.Int64
}

// SetSink implements PushCapable.
func (ep *tcpEndpoint) SetSink(s Sink) { ep.sink.Store(&s) }

func (ep *tcpEndpoint) NodeID() int { return ep.id }
func (ep *tcpEndpoint) N() int      { return ep.n }

// Retains implements Endpoint: Send copies data into its prefixed write
// buffer before returning, so callers may recycle the slice.
func (ep *tcpEndpoint) Retains() bool { return false }

func (ep *tcpEndpoint) Send(to int, data []byte) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= ep.n || to == ep.id {
		return fmt.Errorf("transport: bad destination %d from node %d", to, ep.id)
	}
	// One buffered write per frame: uvarint length prefix + frame bytes.
	// The write buffer is pooled — the socket write below is synchronous,
	// so the buffer is free again as soon as Write returns.
	wb := writeBufPool.Get().(*writeBuf)
	buf := binary.AppendUvarint(wb.b[:0], uint64(len(data)))
	buf = append(buf, data...)
	ep.wmu[to].Lock()
	_, err := ep.conns[to].Write(buf)
	ep.wmu[to].Unlock()
	wb.b = buf
	writeBufPool.Put(wb)
	if err != nil {
		if ep.closed.Load() {
			return ErrClosed
		}
		return &PeerError{Peer: to, Err: err}
	}
	ep.framesSent.Add(1)
	ep.bytesSent.Add(int64(len(buf)))
	return nil
}

func (ep *tcpEndpoint) Recv() (Frame, error) {
	return ep.recv.pop()
}

func (ep *tcpEndpoint) Close() error {
	if !ep.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, c := range ep.conns {
		if c != nil {
			c.Close()
		}
	}
	ep.recv.close()
	return nil
}

func (ep *tcpEndpoint) Stats() Stats {
	return Stats{
		FramesSent: ep.framesSent.Load(),
		BytesSent:  ep.bytesSent.Load(),
		FramesRecv: ep.framesRecv.Load(),
		BytesRecv:  ep.bytesRecv.Load(),
		Conns:      ep.connsOpened.Load(),
	}
}

// readFrom is the per-connection reader: it decodes length-prefixed frames
// from peer and feeds the receive queue until the connection breaks or the
// endpoint closes. Any protocol violation — oversized declaration, short
// read, EOF mid-round — fails the queue with a PeerError; whether that is
// fatal is the consuming runtime's call (for lock-step consensus it is).
func (ep *tcpEndpoint) readFrom(peer int, conn net.Conn) {
	r := bufio.NewReader(conn)
	maxFrame := uint64(ep.opt.maxFrame())
	for {
		size, err := binary.ReadUvarint(r)
		if err != nil {
			ep.peerDown(peer, fmt.Errorf("connection lost: %w", err))
			return
		}
		if size > maxFrame {
			ep.peerDown(peer, fmt.Errorf("oversized frame: %d bytes exceeds limit %d", size, maxFrame))
			conn.Close()
			return
		}
		// Frame buffers are pooled: the consuming sink returns them via
		// PutBuf once decoded. In queue mode ownership likewise passes to
		// whoever drains Recv.
		data := GetBuf()
		if cap(data) < int(size) {
			PutBuf(data)
			data = make([]byte, size)
		}
		data = data[:size]
		if _, err := io.ReadFull(r, data); err != nil {
			ep.peerDown(peer, fmt.Errorf("truncated frame: %w", err))
			return
		}
		ep.framesRecv.Add(1)
		ep.bytesRecv.Add(int64(size) + int64(uvarintLen(size)))
		if s := ep.sink.Load(); s != nil {
			(*s.(*Sink)).Deliver(Frame{From: peer, Data: data})
			continue
		}
		ep.recv.push(Frame{From: peer, Data: data})
	}
}

// peerDown records a broken peer channel unless the endpoint itself is
// closing (a deliberate local Close is not a peer failure).
func (ep *tcpEndpoint) peerDown(peer int, err error) {
	if ep.closed.Load() {
		return
	}
	if s := ep.sink.Load(); s != nil {
		(*s.(*Sink)).PeerDown(peer, err)
		return
	}
	ep.recv.fail(&PeerError{Peer: peer, Err: err})
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// NewTCPMesh builds a fully connected loopback TCP mesh of n endpoints: n
// listeners on 127.0.0.1, every pair connected by exactly one handshaked
// connection (the higher id dials the lower). It returns only when every
// connection is established, so the caller holds a ready mesh or an error —
// never a half-connected one.
func NewTCPMesh(n int, opt TCPOptions) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: mesh needs n >= 1, got %d", n)
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(lns[:i])
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	eps := make([]*tcpEndpoint, n)
	for i := range eps {
		eps[i] = &tcpEndpoint{
			id: i, n: n, opt: opt,
			recv:  newQueue(),
			conns: make([]net.Conn, n),
			wmu:   make([]sync.Mutex, n),
		}
	}

	deadline := time.Now().Add(opt.setupTimeout())
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- meshNode(eps[i], lns[i], addrs, deadline)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			for _, ep := range eps {
				ep.Close()
			}
			closeAll(lns)
			return nil, err
		}
	}
	// Mesh complete: start the readers and drop the listeners.
	closeAll(lns)
	out := make([]Endpoint, n)
	for i, ep := range eps {
		for peer, conn := range ep.conns {
			if conn != nil {
				ep.connsOpened.Add(1)
				go ep.readFrom(peer, conn)
			}
		}
		out[i] = ep
	}
	return out, nil
}

// meshNode establishes node i's connections: dial every lower peer, accept
// every higher one, handshaking both ways.
func meshNode(ep *tcpEndpoint, ln net.Listener, addrs []string, deadline time.Time) error {
	i := ep.id
	for j := 0; j < i; j++ {
		conn, err := net.DialTimeout("tcp", addrs[j], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("transport: node %d dial node %d: %w", i, j, err)
		}
		if err := writeHello(conn, ep.n, i, deadline); err != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d hello to node %d: %w", i, j, err)
		}
		ep.conns[j] = conn
	}
	type lnDeadline interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(lnDeadline); ok {
		d.SetDeadline(deadline)
	}
	for k := i + 1; k < ep.n; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: node %d accept: %w", i, err)
		}
		from, err := readHello(conn, ep.n, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d handshake: %w", i, err)
		}
		if from <= i || from >= ep.n || ep.conns[from] != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d got hello from unexpected peer %d", i, from)
		}
		ep.conns[from] = conn
	}
	return nil
}

func writeHello(conn net.Conn, n, from int, deadline time.Time) error {
	conn.SetWriteDeadline(deadline)
	defer conn.SetWriteDeadline(time.Time{})
	buf := append([]byte{}, tcpMagic[:]...)
	buf = append(buf, tcpVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(from))
	_, err := conn.Write(buf)
	return err
}

func readHello(conn net.Conn, n int, deadline time.Time) (int, error) {
	conn.SetReadDeadline(deadline)
	defer conn.SetReadDeadline(time.Time{})
	r := bufio.NewReaderSize(conn, 32)
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, err
	}
	if [4]byte(magic[:4]) != tcpMagic || magic[4] != tcpVersion {
		return 0, fmt.Errorf("bad magic/version %x", magic)
	}
	gotN, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if gotN != uint64(n) {
		return 0, fmt.Errorf("peer built for n=%d, want n=%d", gotN, n)
	}
	from, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if r.Buffered() > 0 {
		// Hand buffered post-hello bytes back is impossible with this
		// reader split; forbid peers from pipelining frames before the
		// handshake completes instead.
		return 0, fmt.Errorf("peer sent frames before handshake completion")
	}
	return int(from), nil
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

// TCPFactory creates loopback TCP meshes.
type TCPFactory struct {
	Options TCPOptions
}

// Mesh implements Factory.
func (f TCPFactory) Mesh(n int) ([]Endpoint, error) {
	return NewTCPMesh(n, f.Options)
}

// Kind implements Factory.
func (TCPFactory) Kind() string { return "tcp" }
