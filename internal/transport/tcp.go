package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"byzcons/internal/obs"
)

// TCP wire format. Each connection starts with a hello — magic, protocol
// version, deployment size and the dialer's node id — and then carries
// length-prefixed frames: a uvarint byte count followed by the frame bytes.
// The prefix is bounded by MaxFrame before any allocation, so a Byzantine
// peer declaring a multi-gigabyte frame costs nothing but its connection.
var tcpMagic = [4]byte{'b', 'z', 'c', '1'}

const tcpVersion = 1

// DefaultMaxFrame bounds accepted frame sizes (16 MiB — comfortably above
// the largest protocol payload, a full batched consensus input).
const DefaultMaxFrame = 16 << 20

// TCPOptions tunes the TCP transport.
type TCPOptions struct {
	// MaxFrame is the largest accepted frame in bytes (0 = DefaultMaxFrame).
	// Frames declaring more are rejected and fail the sending peer's
	// channel.
	MaxFrame int
	// SetupTimeout bounds mesh construction: dials, handshakes and accepts
	// (0 = 10s). Reconnect handshakes reuse the same bound per attempt.
	SetupTimeout time.Duration
	// Retry governs peer-channel recovery: when a connection drops, the
	// dialing side of the pair re-dials with capped exponential backoff and
	// jitter, the accepting side keeps its listener open for re-handshakes,
	// and a recovered channel is announced to the sink via RecoverySink.
	// The zero value enables recovery with defaults; Retry.Disabled restores
	// the old any-loss-is-permanent behaviour.
	Retry RetryPolicy
	// Obs, when set, receives sampled write timing: every 16th batch's
	// synchronous vectored socket write lands in the transport_write_ns
	// histogram. Sampling keeps the hot send path to one counter increment
	// per batch; nil disables timing entirely.
	Obs *obs.Registry
}

func (o TCPOptions) maxFrame() int {
	if o.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return o.MaxFrame
}

func (o TCPOptions) setupTimeout() time.Duration {
	if o.SetupTimeout <= 0 {
		return 10 * time.Second
	}
	return o.SetupTimeout
}

// sendBatch is one vectored write's worth of frames to a single peer: the
// wire slices (length prefix already back-filled in place) of every frame
// that coalesced while the previous batch was on the socket. The flusher
// writes the whole batch with one writev and closes done; every sender whose
// frame rode in the batch reads the shared outcome after the close.
type sendBatch struct {
	bufs      net.Buffers
	bytes     int64
	frames    int64
	done      chan struct{}
	err       error
	transient bool
}

// peerOut is one peer's write combiner. Concurrent senders to the same peer
// (pipelined instances, a window of speculative fibers) append their frames
// to the current batch under mu; the first of them becomes the flusher and
// loops batch swaps through the socket, so the others pay one channel wait
// instead of queueing on a write lock — and the kernel sees one writev per
// batch instead of one write per frame. The single-flusher invariant also
// serializes socket writes per peer, replacing the old per-peer write mutex.
// The trailing pad keeps adjacent peers' combiners off one cache line:
// senders to different peers are independent and must not false-share.
type peerOut struct {
	mu       sync.Mutex
	cur      *sendBatch
	flushing bool
	_        [64]byte
}

// ConnDropper is implemented by endpoints whose live peer connections can be
// severed on demand — the fault-injection hook chaos tests use to simulate a
// peer crash without reaching into transport internals. Dropping a
// connection closes it at the socket level, so both ends observe the loss
// exactly as they would a real failure (and recover through the same
// reconnect path, when enabled).
type ConnDropper interface {
	// DropConn severs the live connection to the given peer. It reports
	// whether there was one to drop.
	DropConn(peer int) bool
}

// connBox wraps one live peer connection so the slot can be swapped
// atomically: readers compare their own box against the slot to tell a
// superseded connection's teardown from the current one's.
type connBox struct{ c net.Conn }

// peerLife is one peer channel's lifecycle state (guarded by tcpEndpoint.mu):
// the current failure (nil = healthy), whether it is permanent (protocol
// violation, exhausted retry or flap budget), the lifetime flap count, and
// whether a re-dial loop is already running for it.
type peerLife struct {
	down      error
	permanent bool
	flaps     int
	redialing bool
}

// tcpEndpoint is one node's end of a fully connected TCP mesh: one
// connection per peer, a reader goroutine per connection feeding the shared
// receive queue, and a per-peer write combiner that coalesces pipelined
// instances' concurrent frames into vectored writes. With recovery enabled the endpoint also keeps its listener
// open for the mesh's whole life: the dialing side of a dropped pair
// re-dials with backoff, the accepting side re-handshakes fresh dials, and
// the slot's atomic connection box makes the swap safe against the old
// connection's reader.
type tcpEndpoint struct {
	id    int
	n     int
	opt   TCPOptions
	addrs []string     // peer listen addresses, for re-dials
	ln    net.Listener // kept open for re-handshakes; nil when retry is disabled

	recv *queue
	// sink, when set (atomic.Value of Sink), receives inbound frames
	// directly on the per-connection reader goroutines instead of through
	// the recv queue (see PushCapable).
	sink   atomic.Value
	conns  []atomic.Pointer[connBox] // indexed by peer id; nil slot = down (or self)
	out    []peerOut                 // per-peer write combiners (see peerOut)
	closed atomic.Bool
	stop   chan struct{} // closed by Close; interrupts re-dial backoff sleeps
	// dialCtx is canceled by Close so a re-dial blocked inside connect(2)
	// aborts immediately — without it, Close during an active backoff window
	// would return promptly but leave the dial goroutine waiting out its
	// timeout. redials tracks those goroutines so Close can wait them out.
	dialCtx    context.Context
	dialCancel context.CancelFunc
	redials    sync.WaitGroup

	mu    sync.Mutex
	peers []peerLife

	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
	// connsOpened counts established peer connections (n-1 at mesh dial
	// time); it only ever grows at dial, so a flat reading across flush
	// cycles proves the mesh was reused rather than rebuilt. Recovery is
	// accounted separately (reconnects), so the invariant survives flaps.
	connsOpened atomic.Int64
	reconnects  atomic.Int64
	flaps       atomic.Int64

	// writeLat, when non-nil, records every 16th frame's socket write time
	// (see TCPOptions.Obs); sendSeq is the shared sampling counter.
	writeLat *obs.Histogram
	sendSeq  atomic.Int64
}

// SetSink implements PushCapable.
func (ep *tcpEndpoint) SetSink(s Sink) { ep.sink.Store(&s) }

func (ep *tcpEndpoint) NodeID() int { return ep.id }
func (ep *tcpEndpoint) N() int      { return ep.n }

// Retains implements Endpoint: both send paths complete their socket write
// (or copy, for plain Send) before returning, so callers may recycle the
// slice.
func (ep *tcpEndpoint) Retains() bool { return false }

func (ep *tcpEndpoint) Send(to int, data []byte) error {
	if err := ep.checkDest(to); err != nil {
		return err
	}
	// Plain Send owns no headroom, so the frame is copied once into a pooled
	// prefixed buffer and rides the same combiner as SendPrefixed. The write
	// completes before sendPrefixed returns, freeing the buffer immediately.
	buf := append(GetPrefixedBuf(), data...)
	err := ep.sendPrefixed(to, buf)
	PutBuf(buf)
	return err
}

// SendPrefixed implements PrefixedSender: data[SendHeadroom:] goes on the
// wire as one frame with its uvarint length back-filled into the headroom —
// the caller's encode buffer is the wire image, no assembly copy. The call
// returns once the frame's batch has been written, so the buffer is the
// caller's again (broadcasters reuse one buffer across peers).
func (ep *tcpEndpoint) SendPrefixed(to int, data []byte) error {
	if err := ep.checkDest(to); err != nil {
		return err
	}
	if len(data) < SendHeadroom {
		return fmt.Errorf("transport: prefixed buffer %d bytes, below %d-byte headroom", len(data), SendHeadroom)
	}
	return ep.sendPrefixed(to, data)
}

func (ep *tcpEndpoint) checkDest(to int) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= ep.n || to == ep.id {
		return fmt.Errorf("transport: bad destination %d from node %d", to, ep.id)
	}
	return nil
}

// sendPrefixed back-fills the length prefix and runs the frame through the
// peer's write combiner: the frame joins the batch currently accumulating,
// and the caller either becomes the flusher (first in) or waits for the
// batch's shared write outcome.
func (ep *tcpEndpoint) sendPrefixed(to int, data []byte) error {
	size := uint64(len(data) - SendHeadroom)
	start := SendHeadroom - uvarintLen(size)
	binary.PutUvarint(data[start:], size)
	wire := data[start:]

	po := &ep.out[to]
	po.mu.Lock()
	b := po.cur
	if b == nil {
		b = &sendBatch{done: make(chan struct{})}
		po.cur = b
	}
	b.bufs = append(b.bufs, wire)
	b.bytes += int64(len(wire))
	b.frames++
	if po.flushing {
		// A flusher is on the socket; it will pick this batch up next.
		po.mu.Unlock()
		<-b.done
	} else {
		po.flushing = true
		for po.cur != nil {
			cur := po.cur
			po.cur = nil
			po.mu.Unlock()
			ep.writeBatch(to, cur)
			po.mu.Lock()
		}
		po.flushing = false
		po.mu.Unlock()
	}
	if b.err != nil {
		if ep.closed.Load() {
			return ErrClosed
		}
		return &PeerError{Peer: to, Err: b.err, Transient: b.transient}
	}
	return nil
}

// writeBatch puts one coalesced batch on the peer's socket with a single
// vectored write and publishes the shared outcome. Only the peer's single
// flusher calls it, so writes stay serialized per connection.
func (ep *tcpEndpoint) writeBatch(to int, b *sendBatch) {
	defer close(b.done)
	box := ep.conns[to].Load()
	if box == nil {
		b.err, b.transient = ep.downErr(to)
		return
	}
	timed := ep.writeLat != nil && ep.sendSeq.Add(1)&15 == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if _, err := b.bufs.WriteTo(box.c); err != nil {
		b.err, b.transient = err, true
		return
	}
	if timed {
		ep.writeLat.Record(int64(time.Since(t0)))
	}
	ep.framesSent.Add(b.frames)
	ep.bytesSent.Add(b.bytes)
}

// downErr returns the recorded failure behind an empty connection slot and
// whether it is still considered transient (a reconnect may be in flight).
func (ep *tcpEndpoint) downErr(peer int) (error, bool) {
	ep.mu.Lock()
	err := ep.peers[peer].down
	permanent := ep.peers[peer].permanent
	ep.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("peer %d channel down", peer)
	}
	return err, !permanent
}

func (ep *tcpEndpoint) Recv() (Frame, error) {
	return ep.recv.pop()
}

// DropConn implements ConnDropper: it closes the live connection to peer at
// the socket level, so both ends' readers observe the loss like a real
// failure.
func (ep *tcpEndpoint) DropConn(peer int) bool {
	if peer < 0 || peer >= ep.n || peer == ep.id {
		return false
	}
	box := ep.conns[peer].Load()
	if box == nil {
		return false
	}
	box.c.Close()
	return true
}

func (ep *tcpEndpoint) Close() error {
	if !ep.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(ep.stop)
	ep.dialCancel()
	if ep.ln != nil {
		ep.ln.Close()
	}
	// Connections are closed without going through the write combiners: a
	// flusher blocked in a vectored write is unblocked exactly by the socket
	// close, after which it publishes the failure to its batch's waiters.
	// The atomic slot swap keeps this race-clean.
	for i := range ep.conns {
		if box := ep.conns[i].Swap(nil); box != nil {
			box.c.Close()
		}
	}
	ep.recv.close()
	// Flush any connLost critical section in flight: once this mutex cycles,
	// every later loss sees closed and registers no redial, so the Wait
	// below can race with no Add (a redial decided before the cycle already
	// added inside its critical section).
	ep.mu.Lock()
	ep.mu.Unlock() //nolint:staticcheck // empty section is the point: a barrier
	// Re-dial loops exit promptly: the stop channel interrupts backoff
	// sleeps and the canceled dial context aborts an in-flight connect, so
	// this wait bounds Close by a goroutine handoff, not a retry budget.
	ep.redials.Wait()
	return nil
}

func (ep *tcpEndpoint) Stats() Stats {
	return Stats{
		FramesSent: ep.framesSent.Load(),
		BytesSent:  ep.bytesSent.Load(),
		FramesRecv: ep.framesRecv.Load(),
		BytesRecv:  ep.bytesRecv.Load(),
		Conns:      ep.connsOpened.Load(),
		Reconnects: ep.reconnects.Load(),
		PeerFlaps:  ep.flaps.Load(),
	}
}

// readFrom is the per-connection reader: it decodes length-prefixed frames
// from peer and feeds the receive queue until the connection breaks or the
// endpoint closes. Read failures are transient channel losses (the peer may
// come back); an oversized declaration is a protocol violation and convicts
// the peer permanently. Whether a loss is fatal for the run in flight is the
// consuming runtime's call (for lock-step consensus it is).
func (ep *tcpEndpoint) readFrom(peer int, box *connBox) {
	conn := box.c
	r := bufio.NewReader(conn)
	maxFrame := uint64(ep.opt.maxFrame())
	for {
		size, err := binary.ReadUvarint(r)
		if err != nil {
			ep.connLost(peer, box, fmt.Errorf("connection lost: %w", err), true)
			return
		}
		if size > maxFrame {
			ep.connLost(peer, box, fmt.Errorf("oversized frame: %d bytes exceeds limit %d", size, maxFrame), false)
			return
		}
		// Frame buffers are pooled: the consuming sink returns them via
		// PutBuf once decoded. In queue mode ownership likewise passes to
		// whoever drains Recv.
		data := GetBuf()
		if cap(data) < int(size) {
			PutBuf(data)
			data = make([]byte, size)
		}
		data = data[:size]
		if _, err := io.ReadFull(r, data); err != nil {
			ep.connLost(peer, box, fmt.Errorf("truncated frame: %w", err), true)
			return
		}
		ep.framesRecv.Add(1)
		ep.bytesRecv.Add(int64(size) + int64(uvarintLen(size)))
		if s := ep.sink.Load(); s != nil {
			(*s.(*Sink)).Deliver(Frame{From: peer, Data: data})
			continue
		}
		ep.recv.push(Frame{From: peer, Data: data})
	}
}

// connLost tears one peer connection down and records the failure: the slot
// is cleared only if it still holds this reader's connection (a reconnect
// may already have superseded it, in which case the loss is stale and
// silent), the flap is accounted against the peer's budget, the sink or
// queue is notified, and — for a transient loss on the dialing side of the
// pair, with retry enabled — a re-dial loop is started.
func (ep *tcpEndpoint) connLost(peer int, box *connBox, err error, transient bool) {
	current := ep.conns[peer].CompareAndSwap(box, nil)
	box.c.Close()
	if !current || ep.closed.Load() {
		// Superseded by a newer connection, or a deliberate local Close — in
		// neither case is this a live peer failure.
		return
	}
	retry := ep.opt.Retry
	ep.mu.Lock()
	pl := &ep.peers[peer]
	if pl.permanent {
		err = pl.down
		ep.mu.Unlock()
		ep.notifyDown(peer, err, false)
		return
	}
	if transient {
		pl.flaps++
		ep.flaps.Add(1)
		if budget := retry.maxFlaps(); budget > 0 && pl.flaps > budget {
			transient = false
			err = fmt.Errorf("peer channel flapped %d times (budget %d), demoted permanently: %w", pl.flaps, budget, err)
		}
	}
	pl.down = err
	pl.permanent = !transient
	// The redial is registered on the WaitGroup inside the critical section,
	// re-checking closed there: Close sets closed and then passes through
	// this mutex before it waits, so a loss that slipped past the earlier
	// closed check can never Add against a Wait already in progress.
	redial := transient && !retry.Disabled && peer < ep.id && !pl.redialing && !ep.closed.Load()
	if redial {
		pl.redialing = true
		ep.redials.Add(1)
	}
	ep.mu.Unlock()
	ep.notifyDown(peer, err, transient)
	if redial {
		go func() {
			defer ep.redials.Done()
			ep.redial(peer)
		}()
	}
}

// notifyDown reports a broken peer channel to the sink (or the fallback
// receive queue) unless the endpoint itself is closing — a deliberate local
// Close is not a peer failure.
func (ep *tcpEndpoint) notifyDown(peer int, err error, transient bool) {
	if ep.closed.Load() {
		return
	}
	pe := &PeerError{Peer: peer, Err: err, Transient: transient}
	if s := ep.sink.Load(); s != nil {
		(*s.(*Sink)).PeerDown(peer, pe)
		return
	}
	ep.recv.fail(pe)
}

// notifyUp announces a recovered peer channel to a recovery-aware sink.
func (ep *tcpEndpoint) notifyUp(peer int) {
	if ep.closed.Load() {
		return
	}
	if s := ep.sink.Load(); s != nil {
		if rs, ok := (*s.(*Sink)).(RecoverySink); ok {
			rs.PeerUp(peer)
		}
	}
}

// install wires a fresh (handshaked) connection into the peer's slot, starts
// its reader and announces the recovery. It refuses permanently demoted
// peers and loses gracefully against a concurrent Close.
func (ep *tcpEndpoint) install(peer int, conn net.Conn) bool {
	ep.mu.Lock()
	if ep.closed.Load() || ep.peers[peer].permanent {
		ep.mu.Unlock()
		conn.Close()
		return false
	}
	ep.peers[peer].down = nil
	ep.peers[peer].redialing = false
	ep.mu.Unlock()
	box := &connBox{c: conn}
	if old := ep.conns[peer].Swap(box); old != nil {
		// A half-open leftover: the remote noticed the loss and re-dialed
		// before our reader did. Closing it here makes that reader's
		// eventual error a stale, silent one.
		old.c.Close()
	}
	if ep.closed.Load() {
		// Raced Close's teardown sweep: undo.
		if ep.conns[peer].CompareAndSwap(box, nil) {
			conn.Close()
		}
		return false
	}
	ep.reconnects.Add(1)
	go ep.readFrom(peer, box)
	ep.notifyUp(peer)
	return true
}

// redial is the per-outage reconnect loop run by the dialing side of a pair
// (the higher id dials the lower, at mesh setup and ever after): capped
// exponential backoff with jitter, a fresh handshake per attempt, permanent
// demotion when the attempt budget runs out.
func (ep *tcpEndpoint) redial(peer int) {
	retry := ep.opt.Retry
	backoff := retry.minBackoff()
	maxBackoff := retry.maxBackoff()
	var lastErr error
	for attempt := 1; ; attempt++ {
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		t := time.NewTimer(delay)
		select {
		case <-ep.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if ep.closed.Load() {
			return
		}
		// DialContext, not DialTimeout: the endpoint's dial context is
		// canceled by Close, so a Session teardown mid-attempt aborts the
		// connect instead of waiting out the setup timeout.
		dialer := net.Dialer{Timeout: ep.opt.setupTimeout()}
		conn, err := dialer.DialContext(ep.dialCtx, "tcp", ep.addrs[peer])
		if err == nil {
			err = writeHello(conn, ep.n, ep.id, time.Now().Add(ep.opt.setupTimeout()))
			if err == nil {
				ep.install(peer, conn)
				return
			}
			conn.Close()
		}
		lastErr = err
		if budget := retry.maxAttempts(); budget > 0 && attempt >= budget {
			derr := fmt.Errorf("reconnect to peer %d failed after %d attempts, demoted permanently: %w", peer, attempt, lastErr)
			ep.mu.Lock()
			pl := &ep.peers[peer]
			pl.redialing = false
			pl.permanent = true
			pl.down = derr
			ep.mu.Unlock()
			ep.notifyDown(peer, derr, false)
			return
		}
		backoff = min(2*backoff, maxBackoff)
	}
}

// acceptLoop keeps the endpoint's listener serving re-handshakes for the
// mesh's whole life: a valid hello from a higher-id peer (the pair's
// designated dialer) replaces that peer's connection slot. It exits when
// Close closes the listener.
func (ep *tcpEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			from, err := readHello(conn, ep.n, time.Now().Add(ep.opt.setupTimeout()))
			if err != nil || from <= ep.id || from >= ep.n {
				conn.Close()
				return
			}
			ep.install(from, conn)
		}(conn)
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// NewTCPMesh builds a fully connected loopback TCP mesh of n endpoints: n
// listeners on 127.0.0.1, every pair connected by exactly one handshaked
// connection (the higher id dials the lower). It returns only when every
// connection is established, so the caller holds a ready mesh or an error —
// never a half-connected one. Unless opt.Retry.Disabled is set, listeners
// stay open for the endpoints' whole life so dropped connections can be
// re-dialed and re-handshaked.
func NewTCPMesh(n int, opt TCPOptions) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: mesh needs n >= 1, got %d", n)
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(lns[:i])
			return nil, fmt.Errorf("transport: listen for node %d: %w", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	eps := make([]*tcpEndpoint, n)
	for i := range eps {
		dialCtx, dialCancel := context.WithCancel(context.Background())
		eps[i] = &tcpEndpoint{
			id: i, n: n, opt: opt, addrs: addrs,
			recv:       newQueue(),
			conns:      make([]atomic.Pointer[connBox], n),
			out:        make([]peerOut, n),
			peers:      make([]peerLife, n),
			stop:       make(chan struct{}),
			dialCtx:    dialCtx,
			dialCancel: dialCancel,
			writeLat:   opt.Obs.Histogram("transport_write_ns"),
		}
	}

	deadline := time.Now().Add(opt.setupTimeout())
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- meshNode(eps[i], lns[i], addrs, deadline)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			for _, ep := range eps {
				ep.Close()
			}
			closeAll(lns)
			return nil, err
		}
	}
	// Mesh complete: start the readers. With recovery enabled the listeners
	// stay attached — each endpoint keeps accepting re-handshakes from the
	// peers that dial it; with recovery disabled they are dropped, restoring
	// the fixed-mesh behaviour.
	out := make([]Endpoint, n)
	for i, ep := range eps {
		for peer := range ep.conns {
			if box := ep.conns[peer].Load(); box != nil {
				ep.connsOpened.Add(1)
				go ep.readFrom(peer, box)
			}
		}
		if opt.Retry.Disabled {
			lns[i].Close()
		} else {
			type lnDeadline interface{ SetDeadline(time.Time) error }
			if d, ok := lns[i].(lnDeadline); ok {
				d.SetDeadline(time.Time{}) // undo the setup deadline
			}
			ep.ln = lns[i]
			go ep.acceptLoop()
		}
		out[i] = ep
	}
	return out, nil
}

// meshNode establishes node i's connections: dial every lower peer, accept
// every higher one, handshaking both ways.
func meshNode(ep *tcpEndpoint, ln net.Listener, addrs []string, deadline time.Time) error {
	i := ep.id
	for j := 0; j < i; j++ {
		conn, err := net.DialTimeout("tcp", addrs[j], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("transport: node %d dial node %d: %w", i, j, err)
		}
		if err := writeHello(conn, ep.n, i, deadline); err != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d hello to node %d: %w", i, j, err)
		}
		ep.conns[j].Store(&connBox{c: conn})
	}
	type lnDeadline interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(lnDeadline); ok {
		d.SetDeadline(deadline)
	}
	for k := i + 1; k < ep.n; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: node %d accept: %w", i, err)
		}
		from, err := readHello(conn, ep.n, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d handshake: %w", i, err)
		}
		if from <= i || from >= ep.n || ep.conns[from].Load() != nil {
			conn.Close()
			return fmt.Errorf("transport: node %d got hello from unexpected peer %d", i, from)
		}
		ep.conns[from].Store(&connBox{c: conn})
	}
	return nil
}

func writeHello(conn net.Conn, n, from int, deadline time.Time) error {
	conn.SetWriteDeadline(deadline)
	defer conn.SetWriteDeadline(time.Time{})
	buf := append([]byte{}, tcpMagic[:]...)
	buf = append(buf, tcpVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(from))
	_, err := conn.Write(buf)
	return err
}

// byteReader reads a connection one byte at a time — the hello decoder must
// not buffer past the handshake, because a reconnecting dialer may pipeline
// frames right behind its hello and those bytes belong to the frame reader.
type byteReader struct {
	conn net.Conn
	buf  [1]byte
}

func (br *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(br.conn, br.buf[:]); err != nil {
		return 0, err
	}
	return br.buf[0], nil
}

func readHello(conn net.Conn, n int, deadline time.Time) (int, error) {
	conn.SetReadDeadline(deadline)
	defer conn.SetReadDeadline(time.Time{})
	var magic [5]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		return 0, err
	}
	if [4]byte(magic[:4]) != tcpMagic || magic[4] != tcpVersion {
		return 0, fmt.Errorf("bad magic/version %x", magic)
	}
	r := &byteReader{conn: conn}
	gotN, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if gotN != uint64(n) {
		return 0, fmt.Errorf("peer built for n=%d, want n=%d", gotN, n)
	}
	from, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	return int(from), nil
}

func closeAll(lns []net.Listener) {
	for _, ln := range lns {
		if ln != nil {
			ln.Close()
		}
	}
}

// TCPFactory creates loopback TCP meshes.
type TCPFactory struct {
	Options TCPOptions
}

// Mesh implements Factory.
func (f TCPFactory) Mesh(n int) ([]Endpoint, error) {
	return NewTCPMesh(n, f.Options)
}

// Kind implements Factory.
func (TCPFactory) Kind() string { return "tcp" }
