package consensus

import (
	"bytes"
	"fmt"
	"testing"

	"byzcons/internal/bsb"
	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

// runConsensus executes one simulated run and returns the per-processor
// outputs (nil for entries whose body did not produce an Output).
func runConsensus(t *testing.T, par Params, inputs [][]byte, L int, faulty []int, adv sim.Adversary, seed int64) ([]*Output, *metrics.Meter) {
	t.Helper()
	res := sim.Run(sim.RunConfig{N: par.N, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return Run(p, par, inputs[p.ID], L)
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	outs := make([]*Output, par.N)
	for i, v := range res.Values {
		if o, ok := v.(*Output); ok {
			outs[i] = o
		}
	}
	return outs, res.Meter
}

// checkAgreement asserts consistency and (if allEqual) validity among honest
// processors, plus that all honest processors hold identical diagnosis graphs.
func checkAgreement(t *testing.T, outs []*Output, faulty []int, want []byte, wantDefault bool) {
	t.Helper()
	isFaulty := make(map[int]bool)
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var ref *Output
	for i, o := range outs {
		if isFaulty[i] {
			continue
		}
		if o == nil {
			t.Fatalf("honest processor %d returned no output", i)
		}
		if ref == nil {
			ref = o
			continue
		}
		if !bytes.Equal(o.Value, ref.Value) {
			t.Fatalf("consistency violated: proc %d value %x != %x", i, o.Value, ref.Value)
		}
		if o.Defaulted != ref.Defaulted {
			t.Fatalf("consistency violated: proc %d defaulted=%v, ref=%v", i, o.Defaulted, ref.Defaulted)
		}
		if !o.Graph.Equal(ref.Graph) {
			t.Fatalf("diagnosis graphs diverged between honest processors")
		}
	}
	if ref == nil {
		t.Fatal("no honest processors")
	}
	if wantDefault != ref.Defaulted {
		t.Fatalf("defaulted = %v, want %v", ref.Defaulted, wantDefault)
	}
	if want != nil && !ref.Defaulted && !bytes.Equal(ref.Value, want) {
		t.Fatalf("validity violated: decided %x, want %x", ref.Value, want)
	}
}

func sameInputs(n int, val []byte) [][]byte {
	in := make([][]byte, n)
	for i := range in {
		in[i] = val
	}
	return in
}

func TestFailFreeAllEqual(t *testing.T) {
	t.Parallel()
	val := []byte("the quick brown fox jumps over the lazy dog, twice over!")
	L := len(val) * 8
	cases := []struct {
		n, t int
		kind bsb.Kind
	}{
		{4, 1, bsb.Oracle},
		{7, 2, bsb.Oracle},
		{10, 3, bsb.Oracle},
		{13, 4, bsb.Oracle},
		{4, 1, bsb.EIG},
		{7, 2, bsb.EIG},
		{5, 1, bsb.PhaseKing},
		{9, 2, bsb.PhaseKing},
		{1, 0, bsb.Oracle},
		{3, 0, bsb.Oracle},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_t%d_%v", tc.n, tc.t, tc.kind), func(t *testing.T) {
			par := Params{N: tc.n, T: tc.t, BSB: tc.kind}
			outs, _ := runConsensus(t, par, sameInputs(tc.n, val), L, nil, nil, 1)
			checkAgreement(t, outs, nil, val, false)
			for i, o := range outs {
				if o.DiagnosisRuns != 0 {
					t.Errorf("proc %d ran %d diagnosis stages in a fail-free run", i, o.DiagnosisRuns)
				}
			}
		})
	}
}

func TestPassiveFaultyStillValid(t *testing.T) {
	t.Parallel()
	// Faulty processors that follow the protocol (Passive adversary) must not
	// disturb validity.
	val := bytes.Repeat([]byte{0xA5, 0x3C}, 40)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, []int{2, 5}, nil, 7)
	checkAgreement(t, outs, []int{2, 5}, val, false)
}

func TestDifferingInputsDefault(t *testing.T) {
	t.Parallel()
	// With every processor holding a different value there can be no Pmatch,
	// so all honest processors must decide the default, consistently.
	n := 7
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(i + 1)}, 32)
	}
	par := Params{N: n, T: 2, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, inputs, 32*8, nil, nil, 3)
	checkAgreement(t, outs, nil, nil, true)
	zero := make([]byte, 32)
	if !bytes.Equal(outs[0].Value, zero) {
		t.Fatalf("default value = %x, want all-zero", outs[0].Value)
	}
}

func TestMultiGeneration(t *testing.T) {
	t.Parallel()
	// Force many generations with Lanes=1 and verify the value survives
	// the split/reassemble round trip.
	val := bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 16)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, nil, nil, 11)
	checkAgreement(t, outs, nil, val, false)
	wantGens := (L + par.D() - 1) / par.D()
	if outs[0].Generations != wantGens {
		t.Fatalf("generations = %d, want %d", outs[0].Generations, wantGens)
	}
}

func TestNonByteAlignedLength(t *testing.T) {
	t.Parallel()
	// L that is not a multiple of 8 or D.
	val := []byte{0xFF, 0xF0}
	L := 12
	par := Params{N: 4, T: 1, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, sameInputs(4, val), L, nil, nil, 5)
	want := []byte{0xFF, 0xF0}
	checkAgreement(t, outs, nil, want, false)
}
