package consensus

import (
	"bytes"
	"fmt"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
)

// checkDiagInvariants asserts the Lemma 4 properties on the final diagnosis
// graphs of honest processors: honest-honest edges are never removed, no
// honest processor is isolated, and all graphs are identical.
func checkDiagInvariants(t *testing.T, outs []*Output, faulty []int) {
	t.Helper()
	isFaulty := make(map[int]bool)
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var ref *Output
	for i, o := range outs {
		if isFaulty[i] || o == nil {
			continue
		}
		if ref == nil {
			ref = o
		}
		if !o.Graph.Equal(ref.Graph) {
			t.Fatal("honest diagnosis graphs diverged")
		}
	}
	if ref == nil {
		t.Fatal("no honest output")
	}
	n := ref.Graph.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !isFaulty[i] && !isFaulty[j] && !ref.Graph.Trusts(i, j) {
				t.Errorf("honest-honest edge (%d,%d) was removed (Lemma 4 violated)", i, j)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !isFaulty[i] && ref.Graph.Isolated(i) {
			t.Errorf("honest processor %d was isolated", i)
		}
	}
}

func TestEquivocatorTriggersDiagnosisAndStaysValid(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x42, 0x17, 0x99}, 20)
	L := len(val) * 8
	for _, kind := range []bsb.Kind{bsb.Oracle, bsb.EIG} {
		t.Run(kind.String(), func(t *testing.T) {
			par := Params{N: 7, T: 2, BSB: kind, Lanes: 2, SymBits: 8}
			faulty := []int{0, 1}
			adv := adversary.Equivocator{Victims: []int{5, 6}}
			outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adv, 21)
			checkAgreement(t, outs, faulty, val, false)
			checkDiagInvariants(t, outs, faulty)
			if outs[2].DiagnosisRuns == 0 {
				t.Error("expected at least one diagnosis stage under equivocation")
			}
			if outs[2].DiagnosisRuns > 2*3 {
				t.Errorf("diagnosis ran %d times, above the t(t+1)=6 bound", outs[2].DiagnosisRuns)
			}
		})
	}
}

func TestMatchLiar(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0xAB}, 30)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle}
	faulty := []int{3, 6}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adversary.MatchLiar{}, 2)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
}

func TestFalseDetectorGetsIsolated(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x5A}, 24)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	faulty := []int{5, 6} // high ids stay out of the lexicographically-first Pmatch
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adversary.FalseDetector{}, 4)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
	var honest *Output
	for i, o := range outs {
		if i != 5 && i != 6 {
			honest = o
			break
		}
	}
	if !honest.Graph.Isolated(5) || !honest.Graph.Isolated(6) {
		t.Errorf("false detectors not isolated: graph %v", honest.Graph)
	}
	if honest.DiagnosisRuns != 1 {
		t.Errorf("diagnosis ran %d times, want exactly 1 (both liars isolated at once)", honest.DiagnosisRuns)
	}
}

func TestTrustLiarOnlyBurnsFaultyEdges(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0xC3}, 24)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	faulty := []int{1, 4}
	adv := adversary.Chain{adversary.Equivocator{Victims: []int{6}}, adversary.TrustLiar{}}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adv, 8)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
}

func TestSymbolLiar(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x3C}, 24)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	faulty := []int{0, 2}
	adv := adversary.Chain{adversary.Equivocator{Victims: []int{6}}, adversary.SymbolLiar{}}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adv, 9)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
}

func TestSilentFaulty(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x99, 0x11}, 20)
	L := len(val) * 8
	par := Params{N: 10, T: 3, BSB: bsb.Oracle}
	faulty := []int{2, 5, 8}
	outs, _ := runConsensus(t, par, sameInputs(10, val), L, faulty, adversary.Silent{}, 6)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
	if outs[0].DiagnosisRuns != 0 {
		t.Errorf("silent faults caused %d diagnosis stages, want 0 (mismatch is not inconsistency)", outs[0].DiagnosisRuns)
	}
}

func TestEdgeMiserHitsTheoremOneBound(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, tf int }{{4, 1}, {7, 2}, {10, 3}} {
		t.Run(fmt.Sprintf("n%d_t%d", tc.n, tc.tf), func(t *testing.T) {
			bound := tc.tf * (tc.tf + 1)
			par := Params{N: tc.n, T: tc.tf, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
			// Enough generations for the full budget plus clean tail.
			gens := bound + 2
			L := par.D() * gens
			val := bytes.Repeat([]byte{0x7E}, (L+7)/8)
			faulty := make([]int, tc.tf)
			for i := range faulty {
				faulty[i] = i
			}
			outs, _ := runConsensus(t, par, sameInputs(tc.n, val), L, faulty, adversary.EdgeMiser{T: tc.tf}, 13)
			want := val[:(L+7)/8]
			checkAgreement(t, outs, faulty, want, false)
			checkDiagInvariants(t, outs, faulty)
			honest := outs[tc.n-1]
			if honest.DiagnosisRuns != bound {
				t.Errorf("diagnosis ran %d times, want the exact t(t+1)=%d bound", honest.DiagnosisRuns, bound)
			}
			for _, f := range faulty {
				if !honest.Graph.Isolated(f) {
					t.Errorf("faulty processor %d not isolated after exhausting its budget", f)
				}
			}
		})
	}
}

func TestRandomByzFuzz(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0xF0, 0x0D}, 12)
	L := len(val) * 8
	for seed := int64(0); seed < 12; seed++ {
		par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 2, SymBits: 8}
		faulty := []int{int(seed) % 7, (int(seed) + 3) % 7}
		outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adversary.RandomByz{P: 0.5}, seed)
		checkAgreement(t, outs, faulty, val, false)
		checkDiagInvariants(t, outs, faulty)
	}
}

func TestRandomByzFuzzEIG(t *testing.T) {
	t.Parallel()
	// End-to-end with the real (non-oracle) broadcast under random Byzantine
	// noise, including corruption of EIG relay traffic.
	val := bytes.Repeat([]byte{0x0F}, 6)
	L := len(val) * 8
	for seed := int64(0); seed < 6; seed++ {
		par := Params{N: 4, T: 1, BSB: bsb.EIG, Lanes: 2, SymBits: 8}
		faulty := []int{int(seed) % 4}
		outs, _ := runConsensus(t, par, sameInputs(4, val), L, faulty, adversary.RandomByz{P: 0.4}, seed)
		checkAgreement(t, outs, faulty, val, false)
		checkDiagInvariants(t, outs, faulty)
	}
}

func TestTwoFacedInputsStayConsistent(t *testing.T) {
	t.Parallel()
	// Honest processors split between two values; faulty processors may do
	// anything. Validity is vacuous but consistency must hold: either a
	// common default or one common value.
	n := 7
	inputs := make([][]byte, n)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = bytes.Repeat([]byte{0x11}, 24)
		} else {
			inputs[i] = bytes.Repeat([]byte{0x22}, 24)
		}
	}
	for seed := int64(0); seed < 8; seed++ {
		par := Params{N: n, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
		faulty := []int{0, 3}
		outs, _ := runConsensus(t, par, inputs, 24*8, faulty, adversary.RandomByz{P: 0.4}, seed)
		checkAgreement(t, outs, faulty, nil, outs[1].Defaulted)
		checkDiagInvariants(t, outs, faulty)
	}
}
