package consensus

import (
	"bytes"
	"sync"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/diag"
	"byzcons/internal/sim"
)

// TestForkAttackImpossible mounts the strongest consistent-equivocation
// attack: faulty Pmatch members shift the symbols sent to a victim group by
// a valid nonzero codeword, so the victims' received word is itself a
// perfect codeword of a DIFFERENT value. If the victims decoded it silently
// the protocol would fork. Lemma 2/3's dimension argument says the mixture
// of shifted and unshifted symbols can never be consistent: the attack MUST
// be detected, diagnosed, and must not affect validity.
func TestForkAttackImpossible(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0xE9, 0x4D}, 30)
	L := len(val) * 8
	for _, tc := range []struct {
		n, tf   int
		faulty  []int
		victims []int
	}{
		{7, 2, []int{0, 1}, []int{5, 6}},
		{7, 2, []int{0, 1}, []int{6}},
		{10, 3, []int{0, 1, 2}, []int{7, 8, 9}},
		{4, 1, []int{0}, []int{3}},
	} {
		par := Params{N: tc.n, T: tc.tf, BSB: bsb.Oracle, Lanes: 2, SymBits: 8}
		adv := adversary.CodewordFork{N: tc.n, T: tc.tf, Lanes: 2, SymBits: 8, Victims: tc.victims}
		outs, _ := runConsensus(t, par, sameInputs(tc.n, val), L, tc.faulty, adv, 29)
		checkAgreement(t, outs, tc.faulty, val, false)
		checkDiagInvariants(t, outs, tc.faulty)
		honest := outs[tc.victims[0]]
		if honest.DiagnosisRuns == 0 {
			t.Errorf("n=%d t=%d: fork attack went undetected — Lemma 2/3 violated", tc.n, tc.tf)
		}
	}
}

// TestGraphsIdenticalEveryGeneration strengthens the final-state check: the
// honest processors' diagnosis graphs must be identical after EVERY
// generation (they are driven purely by broadcast data), under randomized
// Byzantine behaviour.
func TestGraphsIdenticalEveryGeneration(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x3B}, 24)
	L := len(val) * 8
	n, tf := 7, 2
	faulty := []int{2, 6}
	isFaulty := map[int]bool{2: true, 6: true}

	var mu sync.Mutex
	graphs := make(map[int]map[int]*diag.Graph) // gen -> proc -> graph
	diagnosed := make(map[int]map[int]bool)

	par := Params{N: n, T: tf, BSB: bsb.Oracle, Lanes: 1, SymBits: 8,
		Observer: func(procID, gen int, info GenInfo) {
			mu.Lock()
			defer mu.Unlock()
			if graphs[gen] == nil {
				graphs[gen] = make(map[int]*diag.Graph)
				diagnosed[gen] = make(map[int]bool)
			}
			graphs[gen][procID] = info.Graph
			diagnosed[gen][procID] = info.Diagnosed
		}}
	outs, _ := runConsensus(t, par, sameInputs(n, val), L, faulty, adversary.RandomByz{P: 0.5}, 31)
	checkAgreement(t, outs, faulty, val, false)

	for gen, perProc := range graphs {
		var ref *diag.Graph
		refDiag := false
		for proc, g := range perProc {
			if isFaulty[proc] {
				continue
			}
			if ref == nil {
				ref = g
				refDiag = diagnosed[gen][proc]
				continue
			}
			if !g.Equal(ref) {
				t.Fatalf("generation %d: honest diagnosis graphs diverged", gen)
			}
			if diagnosed[gen][proc] != refDiag {
				t.Fatalf("generation %d: honest processors disagree on whether diagnosis ran", gen)
			}
		}
	}
	if len(graphs) == 0 {
		t.Fatal("observer never called")
	}
}

// TestObserverDoesNotChangeOutcome guards the instrumentation contract.
func TestObserverDoesNotChangeOutcome(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x77}, 16)
	L := len(val) * 8
	run := func(obs func(int, int, GenInfo)) int64 {
		par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8, Observer: obs}
		res := sim.Run(sim.RunConfig{N: 7, Faulty: []int{1}, Seed: 41}, func(p *sim.Proc) any {
			return Run(p, par, val, L)
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Meter.TotalBits()
	}
	withObs := run(func(int, int, GenInfo) {})
	without := run(nil)
	if withObs != without {
		t.Errorf("observer changed metered traffic: %d vs %d", withObs, without)
	}
}
