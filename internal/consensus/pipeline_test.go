package consensus_test

import (
	"bytes"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/consensus"
	"byzcons/internal/sim"
)

// pipeRun executes one simulated consensus with the given window.
func pipeRun(t *testing.T, window, n, tf, L int, faulty []int, adv sim.Adversary, seed int64) (*sim.RunResult, *consensus.Output) {
	t.Helper()
	val := make([]byte, (L+7)/8)
	for i := range val {
		val[i] = byte(0x41 + i%26)
	}
	par := consensus.Params{N: n, T: tf, Window: window}
	res := sim.Run(sim.RunConfig{N: n, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return consensus.Run(p, par, val, L)
	})
	if res.Err != nil {
		t.Fatalf("window %d: %v", window, res.Err)
	}
	isFaulty := make(map[int]bool)
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var ref *consensus.Output
	for i, v := range res.Values {
		if isFaulty[i] {
			continue
		}
		o := v.(*consensus.Output)
		if ref == nil {
			ref = o
			continue
		}
		if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted || !o.Graph.Equal(ref.Graph) ||
			o.PipelinedRounds != ref.PipelinedRounds || o.Squashes != ref.Squashes {
			t.Fatalf("window %d: honest processor %d diverges from the reference", window, i)
		}
	}
	return res, ref
}

// TestWindowOneMatchesPreRefactorGolden pins the Window = 1 path against
// outputs recorded from the sequential implementation before the pipeline
// refactor: identical decisions, generations, diagnosis counts, metered bits
// and rounds, for clean and attacked runs. This is the "Window = 1
// reproduces the sequential protocol exactly" guarantee.
func TestWindowOneMatchesPreRefactorGolden(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name        string
		n, tf, L    int
		faulty      []int
		adv         sim.Adversary
		rounds      int64
		bits        int64
		gens, diags int
	}{
		// Golden numbers recorded from the pre-pipeline sequential
		// implementation (PR 2) at Seed 1 with all-equal inputs.
		{"clean-n7", 7, 2, 8192, nil, nil, 129, 301000, 43, 0},
		{"equivocator-n7", 7, 2, 8192, []int{1, 4}, adversary.Equivocator{}, 131, 325038, 43, 1},
		{"silent-n7", 7, 2, 8192, []int{1, 4}, adversary.Silent{}, 129, 267976, 43, 0},
		{"matchliar-n7", 7, 2, 8192, []int{1, 4}, adversary.MatchLiar{}, 129, 301000, 43, 0},
		{"edgemiser-n7", 7, 2, 65536, []int{0, 1}, adversary.EdgeMiser{T: 2}, 387, 1246624, 125, 6},
		{"clean-n4", 4, 1, 4096, nil, nil, 96, 37888, 32, 0},
		{"equivocator-n4", 4, 1, 4096, []int{2}, adversary.Equivocator{}, 98, 40448, 32, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, ref := pipeRun(t, 1, tc.n, tc.tf, tc.L, tc.faulty, tc.adv, 1)
			if got := res.Meter.Rounds(); got != tc.rounds {
				t.Errorf("rounds = %d, want pre-refactor %d", got, tc.rounds)
			}
			if got := res.Meter.TotalBits(); got != tc.bits {
				t.Errorf("bits = %d, want pre-refactor %d", got, tc.bits)
			}
			if ref.Generations != tc.gens || ref.DiagnosisRuns != tc.diags {
				t.Errorf("gens/diags = %d/%d, want %d/%d", ref.Generations, ref.DiagnosisRuns, tc.gens, tc.diags)
			}
			if ref.Squashes != 0 {
				t.Errorf("sequential run reported %d squashes", ref.Squashes)
			}
			if ref.PipelinedRounds != res.Meter.Rounds() {
				t.Errorf("Window=1 PipelinedRounds = %d, want the plain round sum %d",
					ref.PipelinedRounds, res.Meter.Rounds())
			}
			want := make([]byte, (tc.L+7)/8)
			for i := range want {
				want[i] = byte(0x41 + i%26)
			}
			if !bytes.Equal(ref.Value, want) {
				t.Errorf("decided %x..., want the common input", ref.Value[:4])
			}
		})
	}
}

// TestWindowDecisionsBitIdentical is the pipeline's correctness invariant:
// for every window size, honest processors decide exactly the sequential
// decision — value, generations, diagnosis count and final graph — under
// clean runs and under every squash-forcing gallery adversary.
func TestWindowDecisionsBitIdentical(t *testing.T) {
	t.Parallel()
	scenarios := []struct {
		name   string
		faulty []int
		adv    sim.Adversary
	}{
		{"clean", nil, nil},
		{"equivocator", []int{1, 4}, adversary.Equivocator{}},
		{"silent", []int{1, 4}, adversary.Silent{}},
		{"matchliar", []int{1, 4}, adversary.MatchLiar{}},
		{"edgemiser", []int{0, 1}, adversary.EdgeMiser{T: 2}},
	}
	const n, tf, L = 7, 2, 32768
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			_, seq := pipeRun(t, 1, n, tf, L, sc.faulty, sc.adv, 1)
			for _, w := range []int{2, 4, 8} {
				_, ref := pipeRun(t, w, n, tf, L, sc.faulty, sc.adv, 1)
				if !bytes.Equal(ref.Value, seq.Value) || ref.Defaulted != seq.Defaulted {
					t.Errorf("window %d decision diverges from sequential", w)
				}
				if ref.Generations != seq.Generations || ref.DiagnosisRuns != seq.DiagnosisRuns {
					t.Errorf("window %d progress %d/%d, sequential %d/%d",
						w, ref.Generations, ref.DiagnosisRuns, seq.Generations, seq.DiagnosisRuns)
				}
				if !ref.Graph.Equal(seq.Graph) {
					t.Errorf("window %d final diagnosis graph diverges from sequential", w)
				}
				if ref.PipelinedRounds > seq.PipelinedRounds {
					t.Errorf("window %d pipelined rounds %d exceed sequential %d",
						w, ref.PipelinedRounds, seq.PipelinedRounds)
				}
				if ref.DiagnosisRuns == 0 && ref.Squashes != 0 {
					t.Errorf("window %d: %d squashes without any diagnosis", w, ref.Squashes)
				}
			}
		})
	}
}

// TestWindowPipelinesFaultFreeRounds is the latency acceptance criterion: a
// fault-free n=7, t=2, L=65536 run at Window >= 4 completes in far fewer
// synchronized rounds than the sequential protocol.
func TestWindowPipelinesFaultFreeRounds(t *testing.T) {
	t.Parallel()
	const n, tf, L = 7, 2, 65536
	_, seq := pipeRun(t, 1, n, tf, L, nil, nil, 1)
	_, pipe := pipeRun(t, 4, n, tf, L, nil, nil, 1)
	if pipe.PipelinedRounds*2 > seq.PipelinedRounds {
		t.Errorf("window 4 pipelined rounds %d, want well below sequential %d",
			pipe.PipelinedRounds, seq.PipelinedRounds)
	}
	if pipe.Squashes != 0 {
		t.Errorf("fault-free pipeline squashed %d generations", pipe.Squashes)
	}
}

// TestWindowMidWindowSquash forces a diagnosis in the middle of a full
// window (the equivocator attacks only generations 6..7) and checks that the
// squash-and-replay path actually ran and still produced the sequential
// decision.
func TestWindowMidWindowSquash(t *testing.T) {
	t.Parallel()
	const n, tf, L = 7, 2, 32768
	adv := adversary.Equivocator{FromGen: 6, ToGen: 7}
	faulty := []int{1, 4}
	_, seq := pipeRun(t, 1, n, tf, L, faulty, adv, 1)
	_, pipe := pipeRun(t, 4, n, tf, L, faulty, adv, 1)
	if pipe.Squashes == 0 {
		t.Fatal("mid-window diagnosis did not squash any speculative generation")
	}
	if !bytes.Equal(pipe.Value, seq.Value) || pipe.Defaulted != seq.Defaulted {
		t.Error("squash-and-replay decision diverges from sequential")
	}
	if pipe.DiagnosisRuns != seq.DiagnosisRuns || !pipe.Graph.Equal(seq.Graph) {
		t.Error("squash-and-replay diagnosis state diverges from sequential")
	}
}

// TestWindowDefaultedRun checks the pipeline's early-exit path: differing
// honest inputs default in generation 0 while speculative generations are in
// flight; they must be squashed cleanly and the default decided.
func TestWindowDefaultedRun(t *testing.T) {
	t.Parallel()
	const n, tf, L = 4, 1, 8192
	par := consensus.Params{N: n, T: tf, Window: 4}
	res := sim.Run(sim.RunConfig{N: n, Seed: 1}, func(p *sim.Proc) any {
		input := make([]byte, L/8)
		for i := range input {
			input[i] = byte(p.ID) // every processor starts with a different value
		}
		return consensus.Run(p, par, input, L)
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, v := range res.Values {
		o := v.(*consensus.Output)
		if !o.Defaulted {
			t.Errorf("processor %d did not default", i)
		}
		if o.Generations != 1 {
			t.Errorf("processor %d ran %d generations, want 1", i, o.Generations)
		}
	}
}

// TestWindowValidation pins the Params.Window contract: 0 defaults to the
// sequential protocol, negatives are rejected.
func TestWindowValidation(t *testing.T) {
	t.Parallel()
	par := consensus.Params{N: 4, T: 1, Window: -1}
	res := sim.Run(sim.RunConfig{N: 4, Seed: 1}, func(p *sim.Proc) any {
		return consensus.Run(p, par, []byte{0xAA}, 8)
	})
	if res.Err == nil {
		t.Fatal("Window = -1 accepted")
	}
	_, ref := pipeRun(t, 0, 4, 1, 4096, nil, nil, 1)
	if ref.Squashes != 0 || ref.PipelinedRounds == 0 {
		t.Errorf("Window = 0 did not run as the sequential default: %+v", ref)
	}
}

// TestWindowWordKernelBitIdentical pins the multi-core hot path end to end:
// wide lanes put every RS sweep on the word-sliced kernel tier (gf/word.go),
// Window 4 runs generation fibers concurrently, and the decisions must still
// be bit-identical to the sequential, narrow-lane-oracle-checked protocol —
// clean and through a squash-forcing mid-window diagnosis. Run under -race
// with -cpu 2,4 (the CI multi-core smoke matrix) this is also the data-race
// check for the off-lock input reads and deferred output assembly of the
// commit cascade.
func TestWindowWordKernelBitIdentical(t *testing.T) {
	t.Parallel()
	const n, tf, L = 7, 2, 65536
	const lanes = 64 // >= rs wordMinLanes: every sweep runs word-sliced
	run := func(window int, faulty []int, adv sim.Adversary) *consensus.Output {
		t.Helper()
		val := make([]byte, L/8)
		for i := range val {
			val[i] = byte(0xA7 * (i + 3))
		}
		par := consensus.Params{N: n, T: tf, Window: window, Lanes: lanes}
		res := sim.Run(sim.RunConfig{N: n, Faulty: faulty, Adversary: adv, Seed: 1}, func(p *sim.Proc) any {
			return consensus.Run(p, par, val, L)
		})
		if res.Err != nil {
			t.Fatalf("window %d: %v", window, res.Err)
		}
		isFaulty := make(map[int]bool)
		for _, f := range faulty {
			isFaulty[f] = true
		}
		var ref *consensus.Output
		for i, v := range res.Values {
			if isFaulty[i] {
				continue
			}
			o := v.(*consensus.Output)
			if ref == nil {
				ref = o
			} else if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted {
				t.Fatalf("window %d: honest processor %d diverges", window, i)
			}
		}
		return ref
	}
	for _, sc := range []struct {
		name   string
		faulty []int
		adv    sim.Adversary
	}{
		{"clean", nil, nil},
		{"midwindow-squash", []int{1, 4}, adversary.Equivocator{FromGen: 2, ToGen: 3}},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			seq := run(1, sc.faulty, sc.adv)
			pipe := run(4, sc.faulty, sc.adv)
			if !bytes.Equal(pipe.Value, seq.Value) || pipe.Defaulted != seq.Defaulted {
				t.Error("word-kernel pipelined decision diverges from sequential")
			}
			if pipe.Generations != seq.Generations || pipe.DiagnosisRuns != seq.DiagnosisRuns {
				t.Errorf("progress %d/%d, sequential %d/%d",
					pipe.Generations, pipe.DiagnosisRuns, seq.Generations, seq.DiagnosisRuns)
			}
			if !pipe.Graph.Equal(seq.Graph) {
				t.Error("word-kernel pipelined graph diverges from sequential")
			}
			if sc.adv != nil && pipe.Squashes == 0 {
				t.Error("mid-window diagnosis did not squash any speculative generation")
			}
		})
	}
}
