package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"byzcons/internal/gf"
)

// The diagnosis stage serialises words to bits for Broadcast_Single_Bit and
// back (lines 3(a)/3(b)); any asymmetry there would corrupt R# and break
// Lemma 5. Property: bitsToWord(wordToBits(w)) == w for all words and both
// symbol widths.
func TestWordBitsRoundTripProperty(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(63))
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	for _, c := range []uint{8, 16} {
		c := c
		err := quick.Check(func(raw []uint16, mSeed uint8) bool {
			m := int(mSeed%8) + 1
			w := make([]gf.Sym, m)
			for i := range w {
				if i < len(raw) {
					w[i] = gf.Sym(raw[i])
				}
				if c == 8 {
					w[i] &= 0xFF
				}
			}
			bits := wordToBits(w, c)
			if len(bits) != m*int(c) {
				return false
			}
			got := bitsToWord(bits, m, c)
			for i := range w {
				if got[i] != w[i] {
					return false
				}
			}
			return true
		}, cfg)
		if err != nil {
			t.Errorf("c=%d: %v", c, err)
		}
	}
}

func TestBitsToWordShortInputZeroPads(t *testing.T) {
	t.Parallel()
	// Broadcast results for absent (e.g. isolated) sources may be short;
	// missing bits must read as zero, deterministically at every processor.
	w := bitsToWord([]bool{true}, 2, 8)
	if w[0] != 0x80 || w[1] != 0 {
		t.Errorf("short bits decoded to %v", w)
	}
}

func TestDefaultValuePadding(t *testing.T) {
	t.Parallel()
	got := defaultValue([]byte{0xAB}, 20)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0] != 0xAB || got[1] != 0 || got[2] != 0 {
		t.Errorf("default = %x", got)
	}
	// Longer default truncated to L bits.
	got = defaultValue([]byte{0xFF, 0xFF, 0xFF}, 12)
	if len(got) != 2 || got[1] != 0xF0 {
		t.Errorf("truncated default = %x", got)
	}
}
