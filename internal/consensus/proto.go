package consensus

import (
	"fmt"
	"sync"
	"sync/atomic"

	"byzcons/internal/bitio"
	"byzcons/internal/bitset"
	"byzcons/internal/bsb"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
	"byzcons/internal/rs"
	"byzcons/internal/sim"
)

// Output is the per-processor result of a consensus run. Every honest
// processor of the same run returns identical Value/Defaulted/Graph contents
// (asserted extensively in tests).
type Output struct {
	Value         []byte      // decided value: exactly ceil(L/8) bytes, L meaningful bits
	L             int         // value length in bits
	Defaulted     bool        // true if decided the default (no Pmatch: honest inputs differ)
	Generations   int         // generations executed, including a defaulting one
	DiagnosisRuns int         // diagnosis stages executed (Theorem 1: <= t(t+1))
	Graph         *diag.Graph // final diagnosis graph
	// PipelinedRounds is the synchronized-round count of the generation
	// pipeline's critical path: the virtual time at which the last
	// generation committed, with up to Params.Window generations advancing
	// concurrently. With Window = 1 it equals the plain sum of the
	// per-generation round counts (the sequential protocol's latency). It
	// is identical at every processor and across backends.
	PipelinedRounds int64
	// Squashes counts speculative generation executions that were discarded
	// because an earlier generation's diagnosis (or default) invalidated
	// them. Always 0 with Window = 1; bounded by the diagnosis budget
	// t(t+1) times Window-1 otherwise.
	Squashes int
}

// workerEnv is the immutable per-run machinery shared by all generation
// workers: the field and code are lookup-table objects, safe for concurrent
// readers.
type workerEnv struct {
	field *gf.Field
	ic    *rs.Interleaved
}

// worker is the execution context of one generation at one processor: a
// processor handle bound to the generation's round stream, a broadcaster on
// that handle, and this execution's view of the diagnosis graph (the
// authoritative graph for the sequential path, a launch-time snapshot for a
// speculative fiber).
type worker struct {
	p     *sim.Proc
	par   Params
	field *gf.Field
	ic    *rs.Interleaved
	bcast bsb.Broadcaster
	g     *diag.Graph
	diags int
	// sc is the worker's generation scratch, attached once per worker from
	// the cross-run pool: per-generation pool traffic would churn slots
	// when a window of fibers interleaves on few cores, while per-run
	// scratch would pay the batch buffers' growth on every run.
	sc *genScratch
}

// newBroadcaster constructs the configured Broadcast_Single_Bit
// implementation bound to p. par must already be normalized (the kind was
// validated once at run start, so construction cannot fail here except for
// programming errors, which abort).
func newBroadcaster(p *sim.Proc, par Params) bsb.Broadcaster {
	bcast, err := bsb.New(par.BSB, p, par.N, par.T)
	if err != nil {
		p.Abort(err)
	}
	switch {
	case par.BSB == bsb.Oracle && par.BSBCost > 0:
		bcast = bsb.NewOracle(p, par.N, par.T, par.BSBCost)
	case par.BSB == bsb.ProbOracle:
		bcast = bsb.NewProbOracle(p, par.N, par.T, par.BSBCost, par.BSBEpsilon)
	}
	return bcast
}

// Run executes Algorithm 1 at processor p over the L-bit input. All
// processors of a run must pass the same par and L. The same code runs at
// honest and faulty processors; Byzantine deviation is injected by the
// simulator's adversary.
//
// Generations execute through the speculative pipeline of pipeline.go: up to
// par.Window generations are in flight concurrently, with squash-and-replay
// preserving the sequential protocol's decisions bit for bit. Window = 1
// (the default) is exactly the sequential protocol.
func Run(p *sim.Proc, par Params, input []byte, L int) *Output {
	par, err := par.normalized(L)
	if err != nil {
		p.Abort(err)
	}
	field, err := gf.New(par.SymBits)
	if err != nil {
		p.Abort(err)
	}
	code, err := rs.New(field, par.N, par.K())
	if err != nil {
		p.Abort(err)
	}
	ic, err := rs.NewInterleaved(code, par.Lanes)
	if err != nil {
		p.Abort(err)
	}

	D := ic.DataBits()
	gens := (L + D - 1) / D
	d := &pipeline{
		p:      p,
		par:    par,
		window: par.Window,
		gens:   gens,
		reader: bitio.NewReader(input),
		data:   make([][]gf.Sym, gens),
		shared: workerEnv{field: field, ic: ic},
		graph:  diag.NewComplete(par.N),
		fibers: make([]*genFiber, max(par.Window, 1)),
		// Stream ids for speculative fibers start above the caller's own
		// stream, which keeps carrying the run's sequential traffic (and
		// all Window = 1 generations).
		nextStream: p.Stream + 1,
	}
	if d.window == 1 {
		d.seq = &worker{
			p: p, par: par, field: field, ic: ic,
			bcast: newBroadcaster(p, par), g: d.graph,
			sc: scratchPool.Get().(*genScratch),
		}
	}
	out := &Output{L: L}
	d.run(out)
	d.releaseScratch()
	return out
}

// defaultValue pads/truncates def to exactly L bits.
func defaultValue(def []byte, L int) []byte {
	w := bitio.NewWriter()
	r := bitio.NewReader(def)
	for w.Bits() < L {
		width := uint(8)
		if rem := L - w.Bits(); rem < 8 {
			width = uint(rem)
		}
		w.Write(r.Read(width), width)
	}
	return w.Truncate(L)
}

// genLabels is one generation's set of step labels. Labels repeat across
// processors, instances and replays (replays reuse their generation's
// original labels — the squash-and-replay invariant depends on it), so they
// are interned once per generation index instead of concatenated per step
// per processor.
type genLabels struct {
	matchSym, matchM, checkDet, diagSym, diagTrust sim.StepID
}

// labelCache is a grow-only table indexed by generation (atomic pointer to
// an immutable slice: the lookup is one load and one index, with no map
// hashing on the per-generation path).
var (
	labelCache   atomic.Pointer[[]*genLabels]
	labelCacheMu sync.Mutex
)

// labelsFor returns generation g's interned step labels.
func labelsFor(g int) *genLabels {
	if t := labelCache.Load(); t != nil && g < len(*t) && (*t)[g] != nil {
		return (*t)[g]
	}
	labelCacheMu.Lock()
	defer labelCacheMu.Unlock()
	var table []*genLabels
	if t := labelCache.Load(); t != nil {
		if g < len(*t) && (*t)[g] != nil {
			return (*t)[g]
		}
		table = append(table, *t...)
	}
	for len(table) <= g {
		table = append(table, nil)
	}
	prefix := fmt.Sprintf("g%d", g)
	l := &genLabels{
		matchSym:  sim.StepID(prefix + "/match.sym"),
		matchM:    sim.StepID(prefix + "/match.M"),
		checkDet:  sim.StepID(prefix + "/check.det"),
		diagSym:   sim.StepID(prefix + "/diag.sym"),
		diagTrust: sim.StepID(prefix + "/diag.trust"),
	}
	table[g] = l
	labelCache.Store(&table)
	return l
}

// genScratch is one generation's pooled working storage. A generation at
// n=7 made ~40 small allocations (outboxes, match matrices, broadcast
// instance batches) — over half the runtime allocation volume of a pipelined
// deployment — all with lifetimes that end inside the generation call:
// outgoing message slices are consumed by the barrier before Exchange
// returns, broadcast instance batches are read by adversaries only during
// the step they are metadata of, and the match/trust matrices are local.
// Concurrent generation fibers each grab their own scratch.
type genScratch struct {
	n          int
	out        []sim.Message
	R          [][]gf.Sym
	M          []bool
	insts      []bsb.Inst
	mine       []bool
	mall       [][]bool
	mallB      []bool
	adj        []bitset.Set
	detected   []bool
	trust      [][]bool
	trustB     []bool
	removedNow []int
	pos        []int
	words      [][]gf.Sym
}

var scratchPool = sync.Pool{New: func() any { return new(genScratch) }}

// grab sizes the scratch for n processors and clears everything a
// generation reads before writing.
func (sc *genScratch) grab(n int) {
	if sc.n != n {
		sc.n = n
		sc.out = nil
		sc.R = make([][]gf.Sym, n)
		sc.M = make([]bool, n)
		sc.mallB = make([]bool, n*n)
		sc.mall = make([][]bool, n)
		sc.trustB = make([]bool, n*n)
		sc.trust = make([][]bool, n)
		for i := 0; i < n; i++ {
			sc.mall[i] = sc.mallB[i*n : (i+1)*n]
			sc.trust[i] = sc.trustB[i*n : (i+1)*n]
		}
		sc.adj = make([]bitset.Set, n)
		for i := range sc.adj {
			sc.adj[i] = bitset.New(n)
		}
		sc.detected = make([]bool, n)
		sc.removedNow = make([]int, n)
	}
	sc.out = sc.out[:0]
	for i := 0; i < n; i++ {
		sc.R[i] = nil
		sc.detected[i] = false
		sc.removedNow[i] = 0
		sc.adj[i].Clear()
	}
	for i := range sc.mallB {
		sc.mallB[i] = false
		sc.trustB[i] = false
	}
	sc.insts = sc.insts[:0]
	sc.mine = sc.mine[:0]
	sc.pos = sc.pos[:0]
	sc.words = sc.words[:0]
}

// release clears payload references (they must not outlive their run; the
// scratch itself stays with its worker).
func (sc *genScratch) release() {
	for i := range sc.R {
		sc.R[i] = nil
	}
	for i := range sc.out {
		sc.out[i] = sim.Message{}
	}
	for i := range sc.words {
		sc.words[i] = nil
	}
}

// generation runs Algorithm 1 for generation g on this processor's D-bit
// input (as data symbols). It returns the decided data symbols, or
// defaulted=true when no Pmatch exists.
func (pr *worker) generation(g int, data []gf.Sym) (decided []gf.Sym, defaulted bool) {
	n, t, k := pr.par.N, pr.par.T, pr.par.K()
	me := pr.p.ID
	labels := labelsFor(g)
	sc := pr.sc
	sc.grab(n)
	defer func() {
		if r := recover(); r != nil {
			// Unwinding (squash, abort): a barrier this fiber submitted to
			// may still be finalized later by the remaining participants,
			// which reads the outbox and broadcast-batch slices living in
			// this scratch. Abandon the scratch to the garbage collector —
			// the network's references keep it alive and intact — instead of
			// recycling storage the simulator may still read. Squashes are
			// rare (bounded by the diagnosis count), so the leak is bounded;
			// the worker's next launch grabs a fresh scratch.
			pr.sc = nil
			panic(r)
		}
		sc.release()
	}()
	pc := pr.clock(g)
	defer pc.finish()
	active := pr.g.Active()

	// --- Matching stage ---------------------------------------------------
	// 1(a): encode and send my codeword symbol to every trusted processor.
	pt := pc.now()
	S := pr.ic.Encode(data)
	pc.addRS(pt)
	out := sc.out
	active.ForEach(func(j int) bool {
		if j != me && pr.g.Trusts(me, j) {
			out = append(out, sim.Message{
				To: j, Payload: S[me], Bits: int64(pr.ic.WordBits()), Tag: "match.sym",
			})
		}
		return true
	})
	sc.out = out // keep the grown buffer pooled
	in := pr.p.Exchange(labels.matchSym, out, nil)

	// 1(b): received symbols; ⊥ (nil) for untrusted or malformed senders.
	R := sc.R
	for _, m := range in {
		if !pr.g.Trusts(me, m.From) || R[m.From] != nil {
			continue
		}
		R[m.From] = pr.validWord(m.Payload)
	}
	R[me] = S[me]

	// 1(c): M_i[j] — does j's symbol match my codeword?
	M := sc.M
	for j := 0; j < n; j++ {
		switch {
		case j == me:
			M[j] = pr.g.Trusts(me, me)
		default:
			M[j] = pr.g.Trusts(me, j) && rs.WordsEqual(R[j], S[j])
		}
	}

	// 1(d): broadcast M (n-1 bits per active processor; isolated processors
	// neither broadcast nor appear as entries — everyone knows them faulty).
	insts, mine := sc.insts, sc.mine
	active.ForEach(func(p int) bool {
		active.ForEach(func(j int) bool {
			if j != p {
				insts = append(insts, bsb.Inst{Src: p, Kind: "M", A: p, B: j})
				mine = append(mine, p == me && M[j])
			}
			return true
		})
		return true
	})
	sc.insts, sc.mine = insts, mine
	pt = pc.now()
	res := pr.bcast.Broadcast(labels.matchM, insts, mine, "match.M")
	pc.addBcast(pt)
	Mall := sc.mall
	for idx, inst := range insts {
		Mall[inst.A][inst.B] = res[idx]
	}
	active.ForEach(func(p int) bool {
		Mall[p][p] = true
		return true
	})

	// 1(e): find Pmatch, a clique of size n-t in the mutual-match graph.
	adj := sc.adj
	active.ForEach(func(i int) bool {
		active.ForEach(func(j int) bool {
			if i < j && Mall[i][j] && Mall[j][i] {
				adj[i].Add(j)
				adj[j].Add(i)
			}
			return true
		})
		return true
	})
	pm := diag.FindClique(adj, active, n-t)
	if pm == nil {
		// 1(f): honest processors provably do not share one input value.
		return nil, true
	}
	pmSet := bitset.FromSlice(n, pm)

	// --- Checking stage ---------------------------------------------------
	// 2(a)+2(b): non-members check consistency of Pmatch symbols and
	// broadcast a 1-bit Detected flag.
	nonMembers := active.AndNot(pmSet)
	// The match batch is fully consumed (res read into Mall): its scratch
	// backing is reused for the remaining broadcast batches of the
	// generation.
	dInsts, dMine := sc.insts[:0], sc.mine[:0]
	myDetected := false
	if nonMembers.Has(me) {
		pos, words := pr.trustedWords(sc, pmSet, R)
		pt = pc.now()
		myDetected = !pr.ic.Consistent(pos, words)
		pc.addRS(pt)
	}
	nonMembers.ForEach(func(j int) bool {
		dInsts = append(dInsts, bsb.Inst{Src: j, Kind: "Det", A: j})
		dMine = append(dMine, j == me && myDetected)
		return true
	})
	pt = pc.now()
	dRes := pr.bcast.Broadcast(labels.checkDet, dInsts, dMine, "check.det")
	pc.addBcast(pt)
	detected := sc.detected
	anyDetected := false
	for idx, inst := range dInsts {
		detected[inst.A] = dRes[idx]
		anyDetected = anyDetected || dRes[idx]
	}

	// 2(c): if nobody detected, decide directly.
	if !anyDetected {
		if pmSet.Has(me) {
			// A member's own symbols match Pmatch (M_i[j] = true for all
			// members), so its decode equals its own input (Lemma 3).
			dec := make([]gf.Sym, len(data))
			copy(dec, data)
			return dec, false
		}
		pos, words := pr.trustedWords(sc, pmSet, R)
		if len(pos) < k {
			// Only possible at an isolated (hence faulty) processor, whose
			// return value is irrelevant; honest processors trust all >= n-2t
			// honest members of Pmatch.
			return make([]gf.Sym, len(data)), false
		}
		pt = pc.now()
		dec, err := pr.ic.Decode(pos, words)
		pc.addRS(pt)
		if err != nil {
			pr.p.Abort(fmt.Errorf("consensus: g%d: undetected inconsistency at decode: %v", g, err))
		}
		return dec, false
	}

	// --- Diagnosis stage ----------------------------------------------------
	pc.enterDiag()
	pr.diags++
	// Copy-on-write: speculative fibers launch sharing the driver's graph
	// read-only; the diagnosis stage is the only writer, so the snapshot
	// clone happens here — once per diagnosis (≤ t(t+1) per execution,
	// Theorem 1) instead of once per launched fiber. The driver adopts the
	// clone when this generation commits.
	pr.g = pr.g.Clone()
	wordBits := pr.ic.WordBits()

	// 3(a)+3(b): members broadcast their own codeword symbol bit by bit; the
	// results R#[j] are identical at all processors.
	sInsts, sMine := sc.insts[:0], sc.mine[:0]
	myWordBits := wordToBits(S[me], pr.par.SymBits)
	for _, j := range pm {
		for b := 0; b < wordBits; b++ {
			sInsts = append(sInsts, bsb.Inst{Src: j, Kind: "Rsym", A: j, B: b})
			sMine = append(sMine, j == me && myWordBits[b])
		}
	}
	sc.insts, sc.mine = sInsts[:0], sMine[:0] // keep any growth pooled
	pt = pc.now()
	sRes := pr.bcast.Broadcast(labels.diagSym, sInsts, sMine, "diag.sym")
	pc.addBcast(pt)
	Rhash := make([][]gf.Sym, n)
	for mi, j := range pm {
		Rhash[j] = bitsToWord(sRes[mi*wordBits:(mi+1)*wordBits], pr.par.Lanes, pr.par.SymBits)
	}

	// 3(c)+3(d): broadcast trust vectors over Pmatch.
	tInsts, tMine := sc.insts[:0], sc.mine[:0]
	active.ForEach(func(p int) bool {
		for _, j := range pm {
			tInsts = append(tInsts, bsb.Inst{Src: p, Kind: "Trust", A: p, B: j})
			tMine = append(tMine, p == me && pr.g.Trusts(me, j) && rs.WordsEqual(R[j], Rhash[j]))
		}
		return true
	})
	sc.insts, sc.mine = tInsts, tMine
	pt = pc.now()
	tRes := pr.bcast.Broadcast(labels.diagTrust, tInsts, tMine, "diag.trust")
	pc.addBcast(pt)
	trust := sc.trust
	for idx, inst := range tInsts {
		trust[inst.A][inst.B] = tRes[idx]
	}

	// 3(e): remove edges that lost trust; remember fresh removals per vertex.
	removedNow := sc.removedNow
	active.ForEach(func(p int) bool {
		for _, j := range pm {
			if p != j && !trust[p][j] {
				if pr.g.RemoveEdge(p, j) {
					removedNow[p]++
					removedNow[j]++
				}
			}
		}
		return true
	})

	// 3(f): with a consistent R#, a non-member that claimed detection but had
	// no incident edge removed lied, hence is faulty: isolate it.
	pmPos := append([]int(nil), pm...)
	pmWords := make([][]gf.Sym, len(pm))
	for i, j := range pm {
		pmWords[i] = Rhash[j]
	}
	pt = pc.now()
	pmOK := pr.ic.Consistent(pmPos, pmWords)
	pc.addRS(pt)
	if pmOK {
		nonMembers.ForEach(func(j int) bool {
			if detected[j] && removedNow[j] == 0 {
				pr.g.Isolate(j)
			}
			return true
		})
	}

	// 3(g): a vertex that has lost more than t edges is certainly faulty.
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if !pr.g.Isolated(v) && pr.g.RemovedCount(v) >= t+1 {
				pr.g.Isolate(v)
				changed = true
			}
		}
	}

	// 3(h): Pdecide — n-2t mutually trusting members in the updated graph.
	pd := pr.g.Clique(pmSet.And(pr.g.Active()), k)
	if pd == nil {
		pr.p.Abort(fmt.Errorf("consensus: g%d: no Pdecide despite >= n-2t honest members (invariant broken)", g))
	}

	// 3(i): decide from the commonly-known R# restricted to Pdecide.
	pdWords := make([][]gf.Sym, len(pd))
	for i, j := range pd {
		pdWords[i] = Rhash[j]
	}
	pt = pc.now()
	dec, err := pr.ic.Decode(pd, pdWords)
	pc.addRS(pt)
	if err != nil {
		pr.p.Abort(fmt.Errorf("consensus: g%d: Pdecide decode failed: %v", g, err))
	}
	return dec, false
}

// trustedWords returns the sorted positions within set that this processor
// trusts, along with the corresponding received words (never nil for trusted
// senders that delivered well-formed symbols; nil entries are skipped since
// an honest processor's consistency check only uses symbols it actually
// received from processors it trusts).
func (pr *worker) trustedWords(sc *genScratch, set bitset.Set, R [][]gf.Sym) ([]int, [][]gf.Sym) {
	pos, words := sc.pos[:0], sc.words[:0]
	set.ForEach(func(j int) bool {
		if pr.g.Trusts(pr.p.ID, j) && R[j] != nil {
			pos = append(pos, j)
			words = append(words, R[j])
		}
		return true
	})
	sc.pos, sc.words = pos, words
	return pos, words
}

// validWord checks an incoming matching-stage payload: it must be a word of
// exactly Lanes symbols, each within the field. Anything else is ⊥.
func (pr *worker) validWord(payload any) []gf.Sym {
	w, ok := payload.([]gf.Sym)
	if !ok || len(w) != pr.par.Lanes {
		return nil
	}
	for _, s := range w {
		if int(s) >= pr.field.Order() {
			return nil
		}
	}
	return w
}

// wordToBits flattens a word to bits, lane-major, MSB first per symbol.
func wordToBits(w []gf.Sym, c uint) []bool {
	bits := make([]bool, 0, len(w)*int(c))
	for _, s := range w {
		for b := int(c) - 1; b >= 0; b-- {
			bits = append(bits, s>>uint(b)&1 == 1)
		}
	}
	return bits
}

// bitsToWord reassembles m symbols of c bits each from bits.
func bitsToWord(bits []bool, m int, c uint) []gf.Sym {
	w := make([]gf.Sym, m)
	idx := 0
	for l := 0; l < m; l++ {
		var s gf.Sym
		for b := 0; b < int(c); b++ {
			s <<= 1
			if idx < len(bits) && bits[idx] {
				s |= 1
			}
			idx++
		}
		w[l] = s
	}
	return w
}
