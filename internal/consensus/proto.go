package consensus

import (
	"fmt"

	"byzcons/internal/bitio"
	"byzcons/internal/bitset"
	"byzcons/internal/bsb"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
	"byzcons/internal/rs"
	"byzcons/internal/sim"
)

// Output is the per-processor result of a consensus run. Every honest
// processor of the same run returns identical Value/Defaulted/Graph contents
// (asserted extensively in tests).
type Output struct {
	Value         []byte      // decided value: exactly ceil(L/8) bytes, L meaningful bits
	L             int         // value length in bits
	Defaulted     bool        // true if decided the default (no Pmatch: honest inputs differ)
	Generations   int         // generations executed, including a defaulting one
	DiagnosisRuns int         // diagnosis stages executed (Theorem 1: <= t(t+1))
	Graph         *diag.Graph // final diagnosis graph
	// PipelinedRounds is the synchronized-round count of the generation
	// pipeline's critical path: the virtual time at which the last
	// generation committed, with up to Params.Window generations advancing
	// concurrently. With Window = 1 it equals the plain sum of the
	// per-generation round counts (the sequential protocol's latency). It
	// is identical at every processor and across backends.
	PipelinedRounds int64
	// Squashes counts speculative generation executions that were discarded
	// because an earlier generation's diagnosis (or default) invalidated
	// them. Always 0 with Window = 1; bounded by the diagnosis budget
	// t(t+1) times Window-1 otherwise.
	Squashes int
}

// workerEnv is the immutable per-run machinery shared by all generation
// workers: the field and code are lookup-table objects, safe for concurrent
// readers.
type workerEnv struct {
	field *gf.Field
	ic    *rs.Interleaved
}

// worker is the execution context of one generation at one processor: a
// processor handle bound to the generation's round stream, a broadcaster on
// that handle, and this execution's view of the diagnosis graph (the
// authoritative graph for the sequential path, a launch-time snapshot for a
// speculative fiber).
type worker struct {
	p     *sim.Proc
	par   Params
	field *gf.Field
	ic    *rs.Interleaved
	bcast bsb.Broadcaster
	g     *diag.Graph
	diags int
}

// newBroadcaster constructs the configured Broadcast_Single_Bit
// implementation bound to p. par must already be normalized (the kind was
// validated once at run start, so construction cannot fail here except for
// programming errors, which abort).
func newBroadcaster(p *sim.Proc, par Params) bsb.Broadcaster {
	bcast, err := bsb.New(par.BSB, p, par.N, par.T)
	if err != nil {
		p.Abort(err)
	}
	switch {
	case par.BSB == bsb.Oracle && par.BSBCost > 0:
		bcast = bsb.NewOracle(p, par.N, par.T, par.BSBCost)
	case par.BSB == bsb.ProbOracle:
		bcast = bsb.NewProbOracle(p, par.N, par.T, par.BSBCost, par.BSBEpsilon)
	}
	return bcast
}

// Run executes Algorithm 1 at processor p over the L-bit input. All
// processors of a run must pass the same par and L. The same code runs at
// honest and faulty processors; Byzantine deviation is injected by the
// simulator's adversary.
//
// Generations execute through the speculative pipeline of pipeline.go: up to
// par.Window generations are in flight concurrently, with squash-and-replay
// preserving the sequential protocol's decisions bit for bit. Window = 1
// (the default) is exactly the sequential protocol.
func Run(p *sim.Proc, par Params, input []byte, L int) *Output {
	par, err := par.normalized(L)
	if err != nil {
		p.Abort(err)
	}
	field, err := gf.New(par.SymBits)
	if err != nil {
		p.Abort(err)
	}
	code, err := rs.New(field, par.N, par.K())
	if err != nil {
		p.Abort(err)
	}
	ic, err := rs.NewInterleaved(code, par.Lanes)
	if err != nil {
		p.Abort(err)
	}

	D := ic.DataBits()
	gens := (L + D - 1) / D
	d := &pipeline{
		p:      p,
		par:    par,
		window: par.Window,
		gens:   gens,
		reader: bitio.NewReader(input),
		data:   make([][]gf.Sym, gens),
		shared: workerEnv{field: field, ic: ic},
		graph:  diag.NewComplete(par.N),
		fibers: make(map[int]*genFiber),
		// Stream ids for speculative fibers start above the caller's own
		// stream, which keeps carrying the run's sequential traffic (and
		// all Window = 1 generations).
		nextStream: p.Stream + 1,
	}
	if d.window == 1 {
		d.seq = &worker{
			p: p, par: par, field: field, ic: ic,
			bcast: newBroadcaster(p, par), g: d.graph,
		}
	}
	out := &Output{L: L}
	d.run(out)
	return out
}

// defaultValue pads/truncates def to exactly L bits.
func defaultValue(def []byte, L int) []byte {
	w := bitio.NewWriter()
	r := bitio.NewReader(def)
	for w.Bits() < L {
		width := uint(8)
		if rem := L - w.Bits(); rem < 8 {
			width = uint(rem)
		}
		w.Write(r.Read(width), width)
	}
	return w.Truncate(L)
}

// generation runs Algorithm 1 for generation g on this processor's D-bit
// input (as data symbols). It returns the decided data symbols, or
// defaulted=true when no Pmatch exists.
func (pr *worker) generation(g int, data []gf.Sym) (decided []gf.Sym, defaulted bool) {
	n, t, k := pr.par.N, pr.par.T, pr.par.K()
	me := pr.p.ID
	prefix := sim.StepID(fmt.Sprintf("g%d", g))
	active := pr.g.Active()

	// --- Matching stage ---------------------------------------------------
	// 1(a): encode and send my codeword symbol to every trusted processor.
	S := pr.ic.Encode(data)
	var out []sim.Message
	active.ForEach(func(j int) bool {
		if j != me && pr.g.Trusts(me, j) {
			out = append(out, sim.Message{
				To: j, Payload: S[me], Bits: int64(pr.ic.WordBits()), Tag: "match.sym",
			})
		}
		return true
	})
	in := pr.p.Exchange(prefix+"/match.sym", out, nil)

	// 1(b): received symbols; ⊥ (nil) for untrusted or malformed senders.
	R := make([][]gf.Sym, n)
	for _, m := range in {
		if !pr.g.Trusts(me, m.From) || R[m.From] != nil {
			continue
		}
		R[m.From] = pr.validWord(m.Payload)
	}
	R[me] = S[me]

	// 1(c): M_i[j] — does j's symbol match my codeword?
	M := make([]bool, n)
	for j := 0; j < n; j++ {
		switch {
		case j == me:
			M[j] = pr.g.Trusts(me, me)
		default:
			M[j] = pr.g.Trusts(me, j) && rs.WordsEqual(R[j], S[j])
		}
	}

	// 1(d): broadcast M (n-1 bits per active processor; isolated processors
	// neither broadcast nor appear as entries — everyone knows them faulty).
	var insts []bsb.Inst
	var mine []bool
	active.ForEach(func(p int) bool {
		active.ForEach(func(j int) bool {
			if j != p {
				insts = append(insts, bsb.Inst{Src: p, Kind: "M", A: p, B: j})
				if p == me {
					mine = append(mine, M[j])
				} else {
					mine = append(mine, false)
				}
			}
			return true
		})
		return true
	})
	res := pr.bcast.Broadcast(prefix+"/match.M", insts, mine, "match.M")
	Mall := make([][]bool, n)
	for i := range Mall {
		Mall[i] = make([]bool, n)
	}
	for idx, inst := range insts {
		Mall[inst.A][inst.B] = res[idx]
	}
	active.ForEach(func(p int) bool {
		Mall[p][p] = true
		return true
	})

	// 1(e): find Pmatch, a clique of size n-t in the mutual-match graph.
	adj := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		adj[i] = bitset.New(n)
	}
	active.ForEach(func(i int) bool {
		active.ForEach(func(j int) bool {
			if i < j && Mall[i][j] && Mall[j][i] {
				adj[i].Add(j)
				adj[j].Add(i)
			}
			return true
		})
		return true
	})
	pm := diag.FindClique(adj, active, n-t)
	if pm == nil {
		// 1(f): honest processors provably do not share one input value.
		return nil, true
	}
	pmSet := bitset.FromSlice(n, pm)

	// --- Checking stage ---------------------------------------------------
	// 2(a)+2(b): non-members check consistency of Pmatch symbols and
	// broadcast a 1-bit Detected flag.
	nonMembers := active.AndNot(pmSet)
	var dInsts []bsb.Inst
	var dMine []bool
	myDetected := false
	if nonMembers.Has(me) {
		pos, words := pr.trustedWords(pmSet, R)
		myDetected = !pr.ic.Consistent(pos, words)
	}
	nonMembers.ForEach(func(j int) bool {
		dInsts = append(dInsts, bsb.Inst{Src: j, Kind: "Det", A: j})
		dMine = append(dMine, j == me && myDetected)
		return true
	})
	dRes := pr.bcast.Broadcast(prefix+"/check.det", dInsts, dMine, "check.det")
	detected := make([]bool, n)
	anyDetected := false
	for idx, inst := range dInsts {
		detected[inst.A] = dRes[idx]
		anyDetected = anyDetected || dRes[idx]
	}

	// 2(c): if nobody detected, decide directly.
	if !anyDetected {
		if pmSet.Has(me) {
			// A member's own symbols match Pmatch (M_i[j] = true for all
			// members), so its decode equals its own input (Lemma 3).
			dec := make([]gf.Sym, len(data))
			copy(dec, data)
			return dec, false
		}
		pos, words := pr.trustedWords(pmSet, R)
		if len(pos) < k {
			// Only possible at an isolated (hence faulty) processor, whose
			// return value is irrelevant; honest processors trust all >= n-2t
			// honest members of Pmatch.
			return make([]gf.Sym, len(data)), false
		}
		dec, err := pr.ic.Decode(pos, words)
		if err != nil {
			pr.p.Abort(fmt.Errorf("consensus: g%d: undetected inconsistency at decode: %v", g, err))
		}
		return dec, false
	}

	// --- Diagnosis stage ----------------------------------------------------
	pr.diags++
	wordBits := pr.ic.WordBits()

	// 3(a)+3(b): members broadcast their own codeword symbol bit by bit; the
	// results R#[j] are identical at all processors.
	var sInsts []bsb.Inst
	var sMine []bool
	myWordBits := wordToBits(S[me], pr.par.SymBits)
	for _, j := range pm {
		for b := 0; b < wordBits; b++ {
			sInsts = append(sInsts, bsb.Inst{Src: j, Kind: "Rsym", A: j, B: b})
			sMine = append(sMine, j == me && myWordBits[b])
		}
	}
	sRes := pr.bcast.Broadcast(prefix+"/diag.sym", sInsts, sMine, "diag.sym")
	Rhash := make([][]gf.Sym, n)
	for mi, j := range pm {
		Rhash[j] = bitsToWord(sRes[mi*wordBits:(mi+1)*wordBits], pr.par.Lanes, pr.par.SymBits)
	}

	// 3(c)+3(d): broadcast trust vectors over Pmatch.
	var tInsts []bsb.Inst
	var tMine []bool
	active.ForEach(func(p int) bool {
		for _, j := range pm {
			tInsts = append(tInsts, bsb.Inst{Src: p, Kind: "Trust", A: p, B: j})
			tMine = append(tMine, p == me && pr.g.Trusts(me, j) && rs.WordsEqual(R[j], Rhash[j]))
		}
		return true
	})
	tRes := pr.bcast.Broadcast(prefix+"/diag.trust", tInsts, tMine, "diag.trust")
	trust := make([][]bool, n)
	for i := range trust {
		trust[i] = make([]bool, n)
	}
	for idx, inst := range tInsts {
		trust[inst.A][inst.B] = tRes[idx]
	}

	// 3(e): remove edges that lost trust; remember fresh removals per vertex.
	removedNow := make([]int, n)
	active.ForEach(func(p int) bool {
		for _, j := range pm {
			if p != j && !trust[p][j] {
				if pr.g.RemoveEdge(p, j) {
					removedNow[p]++
					removedNow[j]++
				}
			}
		}
		return true
	})

	// 3(f): with a consistent R#, a non-member that claimed detection but had
	// no incident edge removed lied, hence is faulty: isolate it.
	pmPos := append([]int(nil), pm...)
	pmWords := make([][]gf.Sym, len(pm))
	for i, j := range pm {
		pmWords[i] = Rhash[j]
	}
	if pr.ic.Consistent(pmPos, pmWords) {
		nonMembers.ForEach(func(j int) bool {
			if detected[j] && removedNow[j] == 0 {
				pr.g.Isolate(j)
			}
			return true
		})
	}

	// 3(g): a vertex that has lost more than t edges is certainly faulty.
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if !pr.g.Isolated(v) && pr.g.RemovedCount(v) >= t+1 {
				pr.g.Isolate(v)
				changed = true
			}
		}
	}

	// 3(h): Pdecide — n-2t mutually trusting members in the updated graph.
	pd := pr.g.Clique(pmSet.And(pr.g.Active()), k)
	if pd == nil {
		pr.p.Abort(fmt.Errorf("consensus: g%d: no Pdecide despite >= n-2t honest members (invariant broken)", g))
	}

	// 3(i): decide from the commonly-known R# restricted to Pdecide.
	pdWords := make([][]gf.Sym, len(pd))
	for i, j := range pd {
		pdWords[i] = Rhash[j]
	}
	dec, err := pr.ic.Decode(pd, pdWords)
	if err != nil {
		pr.p.Abort(fmt.Errorf("consensus: g%d: Pdecide decode failed: %v", g, err))
	}
	return dec, false
}

// trustedWords returns the sorted positions within set that this processor
// trusts, along with the corresponding received words (never nil for trusted
// senders that delivered well-formed symbols; nil entries are skipped since
// an honest processor's consistency check only uses symbols it actually
// received from processors it trusts).
func (pr *worker) trustedWords(set bitset.Set, R [][]gf.Sym) ([]int, [][]gf.Sym) {
	var pos []int
	var words [][]gf.Sym
	set.ForEach(func(j int) bool {
		if pr.g.Trusts(pr.p.ID, j) && R[j] != nil {
			pos = append(pos, j)
			words = append(words, R[j])
		}
		return true
	})
	return pos, words
}

// validWord checks an incoming matching-stage payload: it must be a word of
// exactly Lanes symbols, each within the field. Anything else is ⊥.
func (pr *worker) validWord(payload any) []gf.Sym {
	w, ok := payload.([]gf.Sym)
	if !ok || len(w) != pr.par.Lanes {
		return nil
	}
	for _, s := range w {
		if int(s) >= pr.field.Order() {
			return nil
		}
	}
	return w
}

// wordToBits flattens a word to bits, lane-major, MSB first per symbol.
func wordToBits(w []gf.Sym, c uint) []bool {
	bits := make([]bool, 0, len(w)*int(c))
	for _, s := range w {
		for b := int(c) - 1; b >= 0; b-- {
			bits = append(bits, s>>uint(b)&1 == 1)
		}
	}
	return bits
}

// bitsToWord reassembles m symbols of c bits each from bits.
func bitsToWord(bits []bool, m int, c uint) []gf.Sym {
	w := make([]gf.Sym, m)
	idx := 0
	for l := 0; l < m; l++ {
		var s gf.Sym
		for b := 0; b < int(c); b++ {
			s <<= 1
			if idx < len(bits) && bits[idx] {
				s |= 1
			}
			idx++
		}
		w[l] = s
	}
	return w
}
