// Package consensus implements the paper's primary contribution: Algorithm 1,
// the deterministic error-free multi-valued Byzantine consensus protocol, and
// the generation driver that applies it to an L-bit value in L/D parts.
//
// Per generation of D = (n-2t)·m·c bits (m = interleaving lanes, c = bits per
// Reed-Solomon symbol) the protocol runs three stages:
//
//  1. Matching: every processor encodes its generation input with the
//     (n, n-2t) code C2t, sends its own codeword symbol to every trusted
//     processor, compares received symbols with its own codeword, and
//     broadcasts the resulting match vector M with Broadcast_Single_Bit.
//     From the (identical) broadcast vectors everyone deterministically
//     computes a set Pmatch of n-t processors whose members mutually match;
//     its honest members are then guaranteed to hold identical inputs
//     (Lemma 2). No Pmatch ⇒ honest inputs differ ⇒ decide default.
//  2. Checking: processors outside Pmatch verify that the symbols received
//     from Pmatch lie on one codeword and broadcast a 1-bit Detected flag.
//     If nobody detects, everyone decodes and decides (Lemma 3).
//  3. Diagnosis: on detection, Pmatch members re-broadcast their symbol with
//     Broadcast_Single_Bit (R#), everyone broadcasts whom they still trust,
//     and the diagnosis graph loses at least one edge incident to a faulty
//     processor (Lemma 4) — never an honest-honest edge. Vertices that lose
//     more than t edges are provably faulty and are isolated. The decision
//     is decoded from R# restricted to a clique Pdecide of n-2t mutually
//     trusting members (Lemma 5).
package consensus

import (
	"fmt"
	"math"
	"time"

	"byzcons/internal/bsb"
	"byzcons/internal/diag"
)

// Params configures one consensus execution.
type Params struct {
	N int // number of processors
	T int // max Byzantine faults, t < n/3

	// SymBits is c, the Reed-Solomon symbol width in bits (8 or 16; the code
	// needs n <= 2^c - 1). 0 selects 8, or 16 when n > 255.
	SymBits uint

	// Lanes is the interleaving depth m, making the generation size
	// D = (n-2t)*m*c bits. 0 selects the optimal D* of Eq. 2 for the given L
	// and broadcaster cost.
	Lanes int

	// BSB selects the Broadcast_Single_Bit implementation.
	BSB bsb.Kind

	// BSBCost overrides the oracle broadcaster's per-bit cost B(n)
	// (0 = default 2n²). Ignored for EIG and PhaseKing.
	BSBCost int64

	// BSBEpsilon is the per-receiver bit-flip probability of the ProbOracle
	// broadcaster (Section 4: substituting a probabilistically correct
	// broadcast). Ignored for other kinds.
	BSBEpsilon float64

	// Window is the speculative generation pipeline's width: how many
	// generations may be in flight concurrently (pipeline.go). Window = 1
	// (the default; 0 selects it) reproduces the sequential protocol
	// exactly — same steps, same rounds, same random draws, bit-identical
	// outputs. Window > 1 pipelines fault-free generations and preserves
	// the decisions via squash-and-replay; values below 1 are rejected.
	Window int

	// Default is the value decided when no Pmatch exists (honest inputs
	// provably differ). It is truncated/zero-padded to the input length L.
	// nil means all-zero.
	Default []byte

	// Observer, if non-nil, is called after every generation with a snapshot
	// of this processor's protocol state. It is test/trace instrumentation,
	// not protocol state: it must not influence behaviour.
	Observer func(procID, gen int, info GenInfo)

	// PhaseTimer, if non-nil, receives per-generation wall-clock phase
	// durations, measured at processor 0 only (the same single-tally
	// convention as the runtime's round meter, so n processors do not
	// record the same wall-clock n times). The four phases partition a
	// generation's duration without overlap: Broadcast and RS are the time
	// inside Broadcast_Single_Bit and Reed-Solomon kernel calls, Match and
	// Diagnosis the stage-1/2 and stage-3 residuals. Speculative fibers may
	// invoke it concurrently. Instrumentation only: it must not influence
	// behaviour.
	PhaseTimer func(procID, gen int, ph Phase, d time.Duration)

	// FiberGauge, if non-nil, observes the number of live generation fibers
	// whenever it changes (processor 0 only; Window > 1 pipelines).
	// Instrumentation only: it must not influence behaviour.
	FiberGauge func(procID, live int)
}

// Phase names one timed slice of a generation's wall-clock, reported
// through Params.PhaseTimer. The four phases are disjoint and sum to the
// generation's total duration.
type Phase int

const (
	// PhaseMatch is the matching+checking residual: symbol exchange rounds,
	// match-vector assembly, clique search — stages 1-2 minus the time spent
	// inside broadcast and RS calls.
	PhaseMatch Phase = iota
	// PhaseBroadcast is the time inside Broadcast_Single_Bit calls, across
	// all stages.
	PhaseBroadcast
	// PhaseRS is the time inside Reed-Solomon kernel calls
	// (Encode/Decode/Consistent), across all stages.
	PhaseRS
	// PhaseDiagnosis is the stage-3 residual: trust bookkeeping, graph
	// updates, Pdecide search — minus broadcast and RS time.
	PhaseDiagnosis
	// NumPhases bounds the enum for array-indexed accumulators.
	NumPhases
)

// String names the phase for traces and expositions.
func (ph Phase) String() string {
	switch ph {
	case PhaseMatch:
		return "match"
	case PhaseBroadcast:
		return "broadcast"
	case PhaseRS:
		return "rs"
	case PhaseDiagnosis:
		return "diagnosis"
	}
	return fmt.Sprintf("phase(%d)", int(ph))
}

// GenInfo is the per-generation snapshot passed to Params.Observer.
type GenInfo struct {
	Defaulted bool        // this generation ended the run with the default
	Diagnosed bool        // the diagnosis stage ran in this generation
	Graph     *diag.Graph // clone of the diagnosis graph after the generation
}

// Validate checks the parameters without running a protocol: it normalizes
// against a nominal 8-bit value length, so every length-independent
// constraint (n, the resilience bound, symbol width, lanes, window) is
// checked up front by the public configuration surface.
func (par Params) Validate() error {
	_, err := par.normalized(8)
	return err
}

// normalized fills derived defaults and validates; L is the value length in
// bits (used for auto lane selection).
func (par Params) normalized(L int) (Params, error) {
	if par.N < 1 {
		return par, fmt.Errorf("consensus: need n >= 1, got n=%d", par.N)
	}
	if par.BSB == 0 {
		par.BSB = bsb.Oracle
	}
	// t < n/3 is needed only for the error-free Broadcast_Single_Bit
	// (Section 4): with a probabilistically correct broadcast the
	// construction stands up to t < n/2 (code dimension n-2t >= 1 and the
	// diagnosis-graph counting still require an honest majority).
	if par.BSB == bsb.ProbOracle {
		if par.T < 0 || 2*par.T >= par.N {
			return par, fmt.Errorf("consensus: need 0 <= t < n/2 with proboracle, got n=%d t=%d", par.N, par.T)
		}
	} else if par.T < 0 || 3*par.T >= par.N {
		return par, fmt.Errorf("consensus: need 0 <= t < n/3, got n=%d t=%d", par.N, par.T)
	}
	if par.SymBits == 0 {
		if par.N > 255 {
			par.SymBits = 16
		} else {
			par.SymBits = 8
		}
	}
	if par.SymBits != 8 && par.SymBits != 16 {
		return par, fmt.Errorf("consensus: SymBits must be 8 or 16, got %d", par.SymBits)
	}
	if par.N > (1<<par.SymBits)-1 {
		return par, fmt.Errorf("consensus: n=%d exceeds max code length %d for c=%d", par.N, (1<<par.SymBits)-1, par.SymBits)
	}
	if L < 1 {
		return par, fmt.Errorf("consensus: need L >= 1 bit, got %d", L)
	}
	if par.Lanes == 0 {
		par.Lanes = OptimalLanes(par.N, par.T, par.SymBits, int64(L), par.bsbCost())
	}
	if par.Lanes < 1 {
		return par, fmt.Errorf("consensus: Lanes must be >= 1, got %d", par.Lanes)
	}
	if par.Window == 0 {
		par.Window = 1
	}
	if par.Window < 1 {
		return par, fmt.Errorf("consensus: Window must be >= 1, got %d", par.Window)
	}
	return par, nil
}

// bsbCost returns the per-bit broadcast cost B used for D* tuning and for
// the closed-form predictions.
func (par Params) bsbCost() int64 {
	switch par.BSB {
	case bsb.Oracle, 0:
		if par.BSBCost > 0 {
			return par.BSBCost
		}
		return bsb.DefaultOracleCost(par.N)
	default:
		// EIG / PhaseKing costs are computed by the implementations; for
		// tuning purposes use the paper's Θ(n²) figure, since D* only shifts
		// slowly with B.
		return bsb.DefaultOracleCost(par.N)
	}
}

// K returns the code dimension n-2t.
func (par Params) K() int { return par.N - 2*par.T }

// D returns the generation size in bits, (n-2t)*m*c.
func (par Params) D() int { return par.K() * par.Lanes * int(par.SymBits) }

// OptimalLanes computes the interleaving depth m whose generation size
// D = (n-2t)*m*c best approximates the optimal D* of Eq. 2:
//
//	D* = sqrt( (n²-n+t)(n-2t)·L / (t(t+1)(n-t)) )
//
// For t = 0 no diagnosis can ever occur and the whole value fits one
// generation. The result is clamped to [1, ceil(L/((n-2t)c))] so a
// generation never exceeds the value.
func OptimalLanes(n, t int, c uint, L int64, B int64) int {
	k := int64(n - 2*t)
	unit := k * int64(c) // D per lane
	maxLanes := (L + unit - 1) / unit
	if maxLanes < 1 {
		maxLanes = 1
	}
	if t == 0 {
		return int(maxLanes)
	}
	num := float64(int64(n)*int64(n)-int64(n)+int64(t)) * float64(k) * float64(L)
	den := float64(t) * float64(t+1) * float64(n-t)
	dstar := math.Sqrt(num / den)
	lanes := int64(math.Round(dstar / float64(unit)))
	if lanes < 1 {
		lanes = 1
	}
	if lanes > maxLanes {
		lanes = maxLanes
	}
	return int(lanes)
}
