package consensus

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

func TestSymBits16(t *testing.T) {
	t.Parallel()
	// GF(2^16) symbols: same protocol, wider lanes.
	val := bytes.Repeat([]byte{0xCA, 0xFE, 0xBA, 0xBE}, 24)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, SymBits: 16, Lanes: 2}
	faulty := []int{0, 3}
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adversary.Equivocator{Victims: []int{6}}, 3)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
}

func TestLargeN(t *testing.T) {
	t.Parallel()
	// n=40, t=13: close to the t < n/3 boundary at a size where the clique
	// search and code are well beyond toy dimensions.
	val := bytes.Repeat([]byte{0x88, 0x44, 0x22}, 40)
	L := len(val) * 8
	n, tf := 40, 13
	par := Params{N: n, T: tf, BSB: bsb.Oracle}
	faulty := []int{5, 11, 17, 23, 29, 35}
	outs, _ := runConsensus(t, par, sameInputs(n, val), L, faulty, adversary.Equivocator{Victims: []int{38, 39}}, 9)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
}

func TestAutoSymBitsAboveByteLimit(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("n=300 run dominates the package's wall-time; skipped with -short")
	}
	// n = 300 > 255 forces GF(2^16) automatically. Single generation,
	// fail-free (keep it fast at this size).
	n := 300
	tf := 0
	val := bytes.Repeat([]byte{0xAB}, 600)
	L := len(val) * 8
	par := Params{N: n, T: tf, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, sameInputs(n, val), L, nil, nil, 1)
	checkAgreement(t, outs, nil, val, false)
}

func TestConfiguredDefaultValue(t *testing.T) {
	t.Parallel()
	n := 4
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(i + 1)}, 8)
	}
	def := bytes.Repeat([]byte{0xEE}, 8)
	par := Params{N: n, T: 1, BSB: bsb.Oracle, Default: def}
	outs, _ := runConsensus(t, par, inputs, 64, nil, nil, 2)
	checkAgreement(t, outs, nil, nil, true)
	if !bytes.Equal(outs[0].Value, def) {
		t.Fatalf("default = %x, want %x", outs[0].Value, def)
	}
}

func TestOneBitValue(t *testing.T) {
	t.Parallel()
	par := Params{N: 4, T: 1, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, sameInputs(4, []byte{0x80}), 1, nil, nil, 1)
	checkAgreement(t, outs, nil, []byte{0x80}, false)
	if outs[0].Generations != 1 {
		t.Errorf("generations = %d, want 1", outs[0].Generations)
	}
}

func TestSingleProcessor(t *testing.T) {
	t.Parallel()
	par := Params{N: 1, T: 0, BSB: bsb.Oracle}
	outs, _ := runConsensus(t, par, sameInputs(1, []byte{0x5A}), 8, nil, nil, 1)
	if !bytes.Equal(outs[0].Value, []byte{0x5A}) {
		t.Fatal("n=1 wrong value")
	}
}

func TestInvalidParams(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		par  Params
		L    int
	}{
		{"t too big", Params{N: 6, T: 2}, 8},
		{"negative t", Params{N: 4, T: -1}, 8},
		{"zero n", Params{N: 0, T: 0}, 8},
		{"bad symbits", Params{N: 4, T: 1, SymBits: 12}, 8},
		{"n over field", Params{N: 300, T: 0, SymBits: 8}, 8},
		{"zero L", Params{N: 4, T: 1}, 0},
		{"negative lanes", Params{N: 4, T: 1, Lanes: -1}, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := sim.Run(sim.RunConfig{N: max(tc.par.N, 1), Seed: 1}, func(p *sim.Proc) any {
				return Run(p, tc.par, []byte{1}, tc.L)
			})
			if res.Err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

// TestRandomizedScenarioSweep is the broad property test: across a random
// grid of sizes, inputs patterns, fault sets and adversary stacks, every run
// must satisfy Termination (implicitly), Consistency, Validity-when-equal,
// the Lemma 4 graph invariants and the Theorem 1 bound.
func TestRandomizedScenarioSweep(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(77))
	advPool := []func(tf int) sim.Adversary{
		func(int) sim.Adversary { return nil },
		func(int) sim.Adversary { return adversary.Silent{} },
		func(int) sim.Adversary { return adversary.RandomByz{P: 0.4} },
		func(int) sim.Adversary { return adversary.MatchLiar{} },
		func(int) sim.Adversary { return adversary.FalseDetector{} },
		func(int) sim.Adversary {
			return adversary.Chain{adversary.Equivocator{}, adversary.TrustLiar{}}
		},
		func(tf int) sim.Adversary { return adversary.EdgeMiser{T: tf} },
	}
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(10)
		tf := r.Intn((n-1)/3 + 1)
		lanes := 1 + r.Intn(4)
		gens := 1 + r.Intn(5)
		L := (n - 2*tf) * lanes * 8 * gens
		allEqual := r.Intn(3) > 0
		inputs := make([][]byte, n)
		base := bytes.Repeat([]byte{byte(trial + 1)}, (L+7)/8)
		for i := range inputs {
			if allEqual || i%2 == 0 {
				inputs[i] = base
			} else {
				inputs[i] = bytes.Repeat([]byte{byte(trial + 101)}, (L+7)/8)
			}
		}
		var faulty []int
		for _, f := range r.Perm(n)[:tf] {
			faulty = append(faulty, f)
		}
		adv := advPool[r.Intn(len(advPool))](tf)
		par := Params{N: n, T: tf, BSB: bsb.Oracle, Lanes: lanes, SymBits: 8}

		name := fmt.Sprintf("trial%d_n%d_t%d_eq%v", trial, n, tf, allEqual)
		outs, _ := runConsensus(t, par, inputs, L, faulty, adv, int64(trial))
		var want []byte
		if allEqual {
			want = base
		}
		checkAgreement(t, outs, faulty, want, outsDefaulted(outs, faulty))
		checkDiagInvariants(t, outs, faulty)
		for i, o := range outs {
			if o != nil && o.DiagnosisRuns > tf*(tf+1) {
				t.Fatalf("%s: proc %d saw %d diagnoses > bound %d", name, i, o.DiagnosisRuns, tf*(tf+1))
			}
		}
	}
}

// outsDefaulted returns the defaulted flag of the first honest output so the
// agreement check can assert it is uniform.
func outsDefaulted(outs []*Output, faulty []int) bool {
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	for i, o := range outs {
		if o != nil && !isFaulty[i] {
			return o.Defaulted
		}
	}
	return false
}

func TestPhaseKingFullStackWithDiagnosis(t *testing.T) {
	t.Parallel()
	// Equivocation end-to-end over the real phase-king broadcast.
	val := bytes.Repeat([]byte{0x21}, 15)
	L := len(val) * 8
	par := Params{N: 9, T: 2, BSB: bsb.PhaseKing, Lanes: 1, SymBits: 8}
	faulty := []int{0, 1}
	outs, _ := runConsensus(t, par, sameInputs(9, val), L, faulty, adversary.Equivocator{Victims: []int{8}}, 4)
	checkAgreement(t, outs, faulty, val, false)
	checkDiagInvariants(t, outs, faulty)
	if outs[8].DiagnosisRuns == 0 {
		t.Error("no diagnosis over phase-king stack")
	}
}

func TestOptimalLanesProperties(t *testing.T) {
	t.Parallel()
	// D* grows like sqrt(L) and never exceeds the whole value.
	l1 := OptimalLanes(16, 5, 8, 100_000, 512)
	l2 := OptimalLanes(16, 5, 8, 400_000, 512)
	if l2 < l1 || l2 > 2*l1+1 {
		t.Errorf("D* scaling wrong: lanes(4L)=%d vs lanes(L)=%d (want ~2x)", l2, l1)
	}
	if OptimalLanes(4, 1, 8, 16, 32) != 1 {
		t.Error("tiny L must clamp to one lane")
	}
	// t=0: k*c = 32 bits per lane, whole value in one generation.
	if OptimalLanes(4, 0, 8, 1_000_000, 32) != (1_000_000+31)/32 {
		t.Error("t=0 must put everything in one generation")
	}
}

func TestPredictCconMatchesManualSum(t *testing.T) {
	t.Parallel()
	n, tf := 10, 3
	D, B := int64(320), int64(200)
	g := PredictGenCost(n, tf, D, B)
	L := int64(3200) // 10 generations
	want := 10*g.FailFree() + int64(tf*(tf+1))*g.Diagnosis()
	if got := PredictCcon(n, tf, L, D, B); got != want {
		t.Errorf("PredictCcon = %d, want %d", got, want)
	}
}
