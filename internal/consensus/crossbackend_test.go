package consensus

import (
	"bytes"
	"fmt"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

// backendDecision runs one scenario over the given broadcast backend and
// returns the (asserted common) honest decision and Defaulted flag.
func backendDecision(t *testing.T, kind bsb.Kind, inputs [][]byte, L int, faulty []int, adv sim.Adversary, seed int64) ([]byte, bool) {
	t.Helper()
	par := Params{N: len(inputs), T: 1, BSB: kind, Lanes: 1, SymBits: 8}
	outs, _ := runConsensus(t, par, inputs, L, faulty, adv, seed)
	checkAgreement(t, outs, faulty, nil, outsDefaulted(outs, faulty))
	for i, o := range outs {
		if o != nil && !contains(faulty, i) {
			return o.Value, o.Defaulted
		}
	}
	t.Fatal("no honest output")
	return nil, false
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestCrossBackendAgreement asserts that the three error-free
// Broadcast_Single_Bit substrates are interchangeable: with identical seeds
// and the full adversary gallery, Oracle, EIG and PhaseKing all yield
// identical honest decisions and identical Defaulted flags for the same
// inputs. n=5, t=1 satisfies every backend's resilience bound (PhaseKing
// needs t < n/4).
func TestCrossBackendAgreement(t *testing.T) {
	t.Parallel()
	const n = 5
	backends := []bsb.Kind{bsb.Oracle, bsb.EIG, bsb.PhaseKing}
	val := bytes.Repeat([]byte{0xD1, 0x5C}, 12)
	L := len(val) * 8

	gallery := []struct {
		name string
		adv  sim.Adversary
	}{
		{"passive", nil},
		{"equivocator", adversary.Equivocator{Victims: []int{4}}},
		{"matchliar", adversary.MatchLiar{}},
		{"falsedetector", adversary.FalseDetector{}},
		{"trustliar", adversary.Chain{adversary.Equivocator{Victims: []int{4}}, adversary.TrustLiar{}}},
		{"symbolliar", adversary.Chain{adversary.Equivocator{Victims: []int{4}}, adversary.SymbolLiar{}}},
		{"silent", adversary.Silent{}},
		{"random", adversary.RandomByz{P: 0.5}},
		{"edgemiser", adversary.EdgeMiser{T: 1}},
	}
	for _, tc := range gallery {
		for seed := int64(1); seed <= 3; seed++ {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s_seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				// All honest processors share one input, so validity pins the
				// decision: every backend must decide val, never default.
				refVal, refDef := backendDecision(t, backends[0], sameInputs(n, val), L, []int{0}, tc.adv, seed)
				for _, kind := range backends[1:] {
					gotVal, gotDef := backendDecision(t, kind, sameInputs(n, val), L, []int{0}, tc.adv, seed)
					if !bytes.Equal(gotVal, refVal) || gotDef != refDef {
						t.Errorf("%v decided (%x, defaulted=%v); %v decided (%x, defaulted=%v)",
							kind, gotVal, gotDef, backends[0], refVal, refDef)
					}
				}
				if !bytes.Equal(refVal, val) || refDef {
					t.Errorf("decision (%x, defaulted=%v) violates validity", refVal, refDef)
				}
			})
		}
	}
}

// TestCrossBackendDefaultAgreement covers the defaulting path: with honest
// inputs that provably differ and no active deviation, every backend must
// come to the identical "no Pmatch" verdict and decide the same default.
func TestCrossBackendDefaultAgreement(t *testing.T) {
	t.Parallel()
	const n = 5
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(0x10 * (i + 1))}, 8)
	}
	L := 64
	refVal, refDef := backendDecision(t, bsb.Oracle, inputs, L, nil, nil, 9)
	if !refDef {
		t.Fatal("differing inputs did not default")
	}
	for _, kind := range []bsb.Kind{bsb.EIG, bsb.PhaseKing} {
		gotVal, gotDef := backendDecision(t, kind, inputs, L, nil, nil, 9)
		if !bytes.Equal(gotVal, refVal) || gotDef != refDef {
			t.Errorf("%v default decision (%x, %v) != oracle (%x, %v)", kind, gotVal, gotDef, refVal, refDef)
		}
	}
}
