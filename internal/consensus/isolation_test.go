package consensus

import (
	"bytes"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

// TestIsolationReducesTraffic checks the flip side of the diagnosis cost:
// once faulty processors are identified and isolated, honest processors stop
// sending to them and skip their broadcast instances, so a long run that
// isolates its faults early ends up CHEAPER than the fail-free run of the
// same length — the paper's "effectively isolated from the network".
func TestIsolationReducesTraffic(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x42}, 120)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	faulty := []int{5, 6}

	run := func(adv sim.Adversary) *metrics.Meter {
		res := sim.Run(sim.RunConfig{N: 7, Faulty: faulty, Adversary: adv, Seed: 3}, func(p *sim.Proc) any {
			return Run(p, par, val, L)
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for i, v := range res.Values {
			o := v.(*Output)
			if i < 5 && !bytes.Equal(o.Value, val) {
				t.Fatal("validity violated")
			}
		}
		return res.Meter
	}

	failFree := run(nil)
	// FalseDetector gets both faulty processors isolated in generation 0;
	// the remaining ~39 generations then run on 5 active processors.
	attacked := run(adversary.FalseDetector{})
	if attacked.TotalBits() >= failFree.TotalBits() {
		t.Errorf("isolation did not pay off: attacked=%d >= fail-free=%d bits",
			attacked.TotalBits(), failFree.TotalBits())
	}
	// The per-generation match traffic with 5 active processors is
	// 5·4/5·D = 4D vs 7·6/5·D = 8.4D; over ~40 generations the attacked run
	// must land well under 60% of fail-free matching traffic.
	if got, want := attacked.BitsByPrefix("match.sym"), failFree.BitsByPrefix("match.sym"); got*100 >= want*60 {
		t.Errorf("match.sym after isolation = %d, want well under 60%% of %d", got, want)
	}
}

// TestIsolatedProcessorCannotReenter: once isolated, a processor's later
// protocol-conformant behaviour must not restore any trust edges or let it
// rejoin Pmatch (there is no forgiveness in the paper's diagnosis graph).
func TestIsolatedProcessorCannotReenter(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x11}, 60)
	L := len(val) * 8
	par := Params{N: 7, T: 2, BSB: bsb.Oracle, Lanes: 1, SymBits: 8}
	faulty := []int{5, 6}
	// FalseDetector fires only in generation 0 (member sets keep it from
	// firing later once isolated — its det instances no longer exist), so
	// the faulty processors behave perfectly from generation 1 on.
	outs, _ := runConsensus(t, par, sameInputs(7, val), L, faulty, adversary.FalseDetector{}, 5)
	checkAgreement(t, outs, faulty, val, false)
	g := outs[0].Graph
	if !g.Isolated(5) || !g.Isolated(6) {
		t.Fatal("liars not isolated")
	}
	for _, f := range faulty {
		for j := 0; j < 7; j++ {
			if j != f && g.Trusts(f, j) {
				t.Errorf("isolated processor %d regained trust of %d", f, j)
			}
		}
	}
}
