package consensus

import "time"

// phaseClock measures one generation's wall-clock partition for
// Params.PhaseTimer. A nil clock (hook unset, or not processor 0) makes
// every method a nil-check no-op, so the untimed hot path pays a handful
// of predictable branches per generation and nothing else.
//
// The partition: broadcast and rs accumulate the time inside
// Broadcast_Single_Bit and RS kernel calls wherever they occur;
// enterDiag snapshots the accumulators at the stage-3 boundary, so finish
// can attribute the stage-1/2 residual to PhaseMatch and the stage-3
// residual to PhaseDiagnosis. The four reported durations are disjoint
// and sum to the generation's total.
type phaseClock struct {
	timer       func(procID, gen int, ph Phase, d time.Duration)
	procID, gen int
	start       time.Time
	bcast, rs   time.Duration // accumulated over the whole generation
	bcast12     time.Duration // snapshot of bcast at diagnosis entry
	rs12        time.Duration // snapshot of rs at diagnosis entry
	diagStart   time.Time     // zero when the diagnosis stage never ran
}

// clock returns a running phase clock for generation g, or nil when timing
// is off or this is not the metering processor.
func (pr *worker) clock(g int) *phaseClock {
	if pr.par.PhaseTimer == nil || pr.p.ID != 0 {
		return nil
	}
	return &phaseClock{timer: pr.par.PhaseTimer, procID: pr.p.ID, gen: g, start: time.Now()}
}

// now returns the current time, or the zero time on a nil clock.
func (c *phaseClock) now() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// addBcast charges time since t0 to the broadcast phase.
func (c *phaseClock) addBcast(t0 time.Time) {
	if c != nil {
		c.bcast += time.Since(t0)
	}
}

// addRS charges time since t0 to the RS phase.
func (c *phaseClock) addRS(t0 time.Time) {
	if c != nil {
		c.rs += time.Since(t0)
	}
}

// enterDiag marks the stage-3 boundary.
func (c *phaseClock) enterDiag() {
	if c != nil {
		c.diagStart = time.Now()
		c.bcast12, c.rs12 = c.bcast, c.rs
	}
}

// finish emits the four phase durations. Deferred from generation, so a
// squashed fiber's partial work is still attributed (it is real wall-clock
// the pipeline spent).
func (c *phaseClock) finish() {
	if c == nil {
		return
	}
	end := time.Now()
	// With no diagnosis all broadcast/RS time belongs to stages 1-2.
	stage12End, b12, r12 := end, c.bcast, c.rs
	var diagDur time.Duration
	if !c.diagStart.IsZero() {
		stage12End, b12, r12 = c.diagStart, c.bcast12, c.rs12
		diagDur = end.Sub(c.diagStart) - (c.bcast - b12) - (c.rs - r12)
	}
	matchDur := stage12End.Sub(c.start) - b12 - r12
	if matchDur < 0 {
		matchDur = 0
	}
	if diagDur < 0 {
		diagDur = 0
	}
	c.timer(c.procID, c.gen, PhaseMatch, matchDur)
	c.timer(c.procID, c.gen, PhaseBroadcast, c.bcast)
	c.timer(c.procID, c.gen, PhaseRS, c.rs)
	c.timer(c.procID, c.gen, PhaseDiagnosis, diagDur)
}
