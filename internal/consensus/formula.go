package consensus

// GenCost is the per-generation bit cost of each stage as given by the
// paper's complexity analysis (Section 3.4). The experiments compare these
// closed forms against metered traffic.
type GenCost struct {
	MatchData int64 // matching stage symbols:     n(n-1)/(n-2t) · D
	MatchM    int64 // matching stage M vectors:   n(n-1) · B
	CheckDet  int64 // checking stage flags:       t · B
	DiagSym   int64 // diagnosis R# symbols:       (n-t)/(n-2t) · D · B
	DiagTrust int64 // diagnosis trust vectors:    n(n-t) · B
}

// FailFree returns the bits of a generation in which no diagnosis runs.
func (g GenCost) FailFree() int64 { return g.MatchData + g.MatchM + g.CheckDet }

// Diagnosis returns the extra bits of one diagnosis stage.
func (g GenCost) Diagnosis() int64 { return g.DiagSym + g.DiagTrust }

// PredictGenCost evaluates Eq. 1's per-stage terms for one generation of D
// bits with broadcast cost B.
func PredictGenCost(n, t int, D, B int64) GenCost {
	nn := int64(n)
	tt := int64(t)
	k := nn - 2*tt
	return GenCost{
		MatchData: nn * (nn - 1) * D / k,
		MatchM:    nn * (nn - 1) * B,
		CheckDet:  tt * B,
		DiagSym:   (nn - tt) * D * B / k,
		DiagTrust: nn * (nn - tt) * B,
	}
}

// PredictCcon evaluates Eq. 1: the worst-case total communication for an
// L-bit consensus run with generation size D and broadcast cost B, assuming
// the matching and checking stages run in every one of the ceil(L/D)
// generations and the diagnosis stage runs the maximal t(t+1) times.
func PredictCcon(n, t int, L, D, B int64) int64 {
	g := PredictGenCost(n, t, D, B)
	gens := (L + D - 1) / D
	diag := int64(t) * int64(t+1)
	return g.FailFree()*gens + g.Diagnosis()*diag
}

// PredictCconLeading returns the leading term of Eq. 2/3,
// n(n-1)/(n-2t) · L: the asymptotic cost for large L. Dividing measured
// totals by L and comparing with this over growing L reproduces the paper's
// headline "O(nL) for sufficiently large L" claim.
func PredictCconLeading(n, t int, L int64) int64 {
	return int64(n) * int64(n-1) * L / int64(n-2*t)
}
