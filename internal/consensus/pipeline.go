package consensus

import (
	"fmt"
	"math/rand"

	"byzcons/internal/bitio"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
	"byzcons/internal/sim"
)

// This file is the generation pipeline: the driver state machine that
// executes Algorithm 1's generations through a speculative sliding window.
//
// The sequential protocol runs generations one at a time, so its end-to-end
// latency is generations × rounds-per-generation even though fault-free
// generations are data-independent. The pipeline exploits exactly the
// property the paper's complexity argument rests on — expensive fault
// handling is rare (at most t(t+1) diagnosis stages in a whole execution,
// Theorem 1) — by running up to Window generations concurrently and betting
// that the diagnosis graph does not change:
//
//   - Every in-flight generation executes as a fiber: a goroutine running
//     the unmodified generation body on its own round stream (sim.Backend
//     streams), under a snapshot of the diagnosis graph taken at launch.
//   - Generations commit strictly in order. Committing generation g adopts
//     its fiber's graph and appends its decided symbols.
//   - If generation g ran a diagnosis stage (the only way the graph can
//     change), every in-flight generation > g speculated under a stale
//     trust assumption: their fibers are squashed — their streams abandoned
//     mid-round, their results discarded — and the generations re-launched
//     on fresh streams under the updated graph. Step labels are unchanged
//     on replay, so a deterministic step-keyed adversary (the whole bundled
//     gallery) attacks the replay exactly as it attacks the sequential
//     execution.
//
// The squash-and-replay invariant: the committed execution of generation g
// is bit-identical to the sequential protocol's — same input symbols, same
// starting graph, same step labels, hence the same messages, broadcasts and
// adversary deviations. By induction over g, honest processors decide
// exactly the sequential (Window = 1) decision, whatever the window size.
// Speculative executions that get squashed consume real rounds and bits
// (they are measured, and nondeterministically interleaved with live
// traffic), but never influence any committed state.
//
// Every processor runs this driver with the same deterministic schedule:
// commit outcomes (defaulted, diagnosis-ran) are common knowledge from the
// broadcasts, so all processors launch, squash and relaunch the same
// generations on the same stream ids in the same order — which is what
// keeps the per-stream lock-step barriers of every backend aligned without
// any extra coordination. A processor squashes only its own fibers; a
// partially filled barrier of a squashed stream is either completed by the
// remaining peers (and its result discarded everywhere) or abandoned by all.
type pipeline struct {
	p      *sim.Proc
	par    Params
	window int
	gens   int
	// reader streams the input; data[g] holds generation g's symbols from
	// its first launch (replays reuse them) until its commit frees them, so
	// at most a window's worth of symbol slices is resident at a time.
	reader *bitio.Reader
	data   [][]gf.Sym
	read   int // generations read off the input so far
	shared workerEnv

	// seq is the single reused worker of the sequential (Window = 1) path,
	// which runs generations inline on the caller's stream — reproducing
	// the pre-pipeline protocol exactly, step for step and random draw for
	// random draw.
	seq *worker

	graph    *diag.Graph // authoritative graph: after the last committed generation
	diags    int
	squashes int
	vcommit  int64 // virtual clock: pipelined rounds through the last commit

	fibers     map[int]*genFiber
	nextLaunch int
	nextStream int
}

// genFiber is one speculative generation execution in flight.
type genFiber struct {
	gen    int
	stream int
	base   int64 // virtual launch time: the pipeline clock at launch
	res    chan fiberOut
}

// fiberOut is what a fiber reports back to the driver.
type fiberOut struct {
	decided   []gf.Sym
	defaulted bool
	graph     *diag.Graph
	diags     int
	rounds    int64 // barrier rounds the fiber consumed (its local clock)
	squashed  bool
	panicked  any
}

// dataFor returns generation g's input symbols, reading the input stream
// forward on demand (launches are issued in non-decreasing generation order;
// replays hit generations that are already resident).
func (d *pipeline) dataFor(g int) []gf.Sym {
	for d.read <= g {
		syms := make([]gf.Sym, d.shared.ic.DataSyms())
		for i := range syms {
			syms[i] = gf.Sym(d.reader.Read(d.par.SymBits))
		}
		d.data[d.read] = syms
		d.read++
	}
	return d.data[g]
}

// run drives the window to completion and fills out.
func (d *pipeline) run(out *Output) {
	writer := bitio.NewWriter()
	committed := 0
	for committed < d.gens {
		for d.nextLaunch < d.gens && d.nextLaunch < committed+d.window {
			d.fibers[d.nextLaunch] = d.launch(d.nextLaunch)
			d.nextLaunch++
		}
		f := d.fibers[committed]
		delete(d.fibers, committed)
		r := d.collect(f)
		if r.squashed {
			d.p.Abort(fmt.Errorf("consensus: g%d: committed generation's fiber squashed (driver bug)", committed))
		}
		if vEnd := f.base + r.rounds; vEnd > d.vcommit {
			d.vcommit = vEnd
		}
		d.graph = r.graph
		d.diags += r.diags
		out.Generations++
		if d.par.Observer != nil {
			d.par.Observer(d.p.ID, committed, GenInfo{
				Defaulted: r.defaulted,
				Diagnosed: r.diags > 0,
				Graph:     d.graph.Clone(),
			})
		}
		if r.defaulted {
			d.squashFrom(committed + 1)
			out.Defaulted = true
			out.Value = defaultValue(d.par.Default, out.L)
			d.finish(out)
			return
		}
		for _, s := range r.decided {
			writer.Write(uint32(s), d.par.SymBits)
		}
		d.data[committed] = nil // committed: can never be relaunched
		committed++
		if r.diags > 0 {
			// The diagnosis updated the trust graph: every generation
			// launched beyond the commit point speculated under a stale
			// graph. Squash them and let the window refill from the commit
			// point with fresh streams under the updated graph.
			d.squashFrom(committed)
		}
	}
	out.Value = writer.Truncate(out.L)
	d.finish(out)
}

// finish records the driver's accumulated accounting.
func (d *pipeline) finish(out *Output) {
	out.DiagnosisRuns = d.diags
	out.Graph = d.graph
	out.PipelinedRounds = d.vcommit
	out.Squashes = d.squashes
}

// collect joins one fiber, propagating protocol aborts (and stray panics)
// onto the driver's goroutine.
func (d *pipeline) collect(f *genFiber) fiberOut {
	r := <-f.res
	if r.panicked != nil {
		panic(r.panicked)
	}
	return r
}

// squashFrom abandons every in-flight fiber for generations >= g and rolls
// the launch cursor back so the window refills from the commit point. A
// fiber that already finished its (stale) speculative run needs no unwind —
// its result is simply discarded, and its stream was already released by
// the fiber itself, so no squash state is created for it.
func (d *pipeline) squashFrom(g int) {
	for i := g; i < d.nextLaunch; i++ {
		f := d.fibers[i]
		delete(d.fibers, i)
		select {
		case r := <-f.res:
			if r.panicked != nil {
				panic(r.panicked)
			}
		default:
			d.p.SquashStream(f.stream)
			d.collect(f) // result, if any, is stale speculation: discard
		}
		d.squashes++
	}
	if d.nextLaunch > g {
		d.nextLaunch = g
	}
}

// launch starts generation g. With Window = 1 it runs the generation inline
// on the caller's processor handle — the sequential protocol, unchanged.
// Otherwise it spawns a fiber on a fresh stream under a snapshot of the
// current graph.
func (d *pipeline) launch(g int) *genFiber {
	f := &genFiber{gen: g, res: make(chan fiberOut, 1)}
	if d.window == 1 {
		f.base = d.vcommit
		f.stream = d.p.Stream
		w := d.seq
		diags0, rounds0 := w.diags, d.p.LocalRounds()
		decided, defaulted := w.generation(g, d.dataFor(g))
		f.res <- fiberOut{
			decided: decided, defaulted: defaulted, graph: w.g,
			diags: w.diags - diags0, rounds: d.p.LocalRounds() - rounds0,
		}
		return f
	}

	f.base = d.vcommit
	f.stream = d.nextStream
	d.nextStream++
	// The fiber's randomness is derived from the driver's deterministic
	// stream: launches happen in a deterministic order, so every backend
	// derives identical per-fiber seeds.
	fp := d.p.WithStream(f.stream, rand.New(rand.NewSource(d.p.Rand.Int63())))
	w := &worker{
		p: fp, par: d.par, field: d.shared.field, ic: d.shared.ic,
		bcast: newBroadcaster(fp, d.par), g: d.graph.Clone(),
	}
	data := d.dataFor(g)
	go func() {
		var r fiberOut
		// Defers run LIFO: recover, then the result send, then the stream
		// release. Releasing strictly after the send lets the driver treat
		// "result available" as "stream already safe to leave alone" — a
		// squash decision races only against fibers that have not sent yet,
		// whose streams are guaranteed still registered (the fiber's own
		// release is what completes a stream's teardown).
		defer fp.ReleaseStream(f.stream)
		defer func() { f.res <- r }()
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(sim.Squashed); ok {
					r = fiberOut{squashed: true}
					return
				}
				r = fiberOut{panicked: rec}
			}
		}()
		decided, defaulted := w.generation(g, data)
		r = fiberOut{
			decided: decided, defaulted: defaulted, graph: w.g,
			diags: w.diags, rounds: fp.LocalRounds(),
		}
	}()
	return f
}
