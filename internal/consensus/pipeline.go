package consensus

import (
	"fmt"
	"math/rand"
	"sync"

	"byzcons/internal/bitio"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
	"byzcons/internal/sim"
)

// This file is the generation pipeline: the driver state machine that
// executes Algorithm 1's generations through a speculative sliding window.
//
// The sequential protocol runs generations one at a time, so its end-to-end
// latency is generations × rounds-per-generation even though fault-free
// generations are data-independent. The pipeline exploits exactly the
// property the paper's complexity argument rests on — expensive fault
// handling is rare (at most t(t+1) diagnosis stages in a whole execution,
// Theorem 1) — by running up to Window generations concurrently and betting
// that the diagnosis graph does not change:
//
//   - Every in-flight generation executes as a fiber: a goroutine running
//     the unmodified generation body on its own round stream (sim.Backend
//     streams), under a shared snapshot of the diagnosis graph (the
//     diagnosis stage copies on write, so fault-free fibers never clone).
//   - Generations commit strictly in order. Committing generation g adopts
//     its fiber's graph and appends its decided symbols.
//   - If generation g ran a diagnosis stage (the only way the graph can
//     change), every in-flight generation > g speculated under a stale
//     trust assumption: their fibers are squashed — their streams abandoned
//     mid-round, their results discarded — and the generations re-launched
//     on fresh streams under the updated graph. Step labels are unchanged
//     on replay, so a deterministic step-keyed adversary (the whole bundled
//     gallery) attacks the replay exactly as it attacks the sequential
//     execution.
//
// The scheduler is self-driving: there is no dedicated driver goroutine
// joining fibers through channels. A fiber that finishes its generation
// records its result and, if the commit cursor has reached it, performs the
// commit cascade itself — and then its goroutine continues directly as the
// fiber of the generation that refills the window. In the fault-free steady
// state a windowed execution therefore costs the same goroutine wakeups per
// round as the sequential protocol: no per-generation goroutine spawn, no
// driver handoff, no extra scheduling tax (which is what used to make
// Window > 1 lose wall-clock on a single host). Launch order — and with it
// every stream id and per-fiber random seed — is the commit order, which is
// common knowledge, so all processors still derive identical schedules.
//
// The squash-and-replay invariant: the committed execution of generation g
// is bit-identical to the sequential protocol's — same input symbols, same
// starting graph, same step labels, hence the same messages, broadcasts and
// adversary deviations. By induction over g, honest processors decide
// exactly the sequential (Window = 1) decision, whatever the window size.
// Speculative executions that get squashed consume real rounds and bits
// (they are measured, and nondeterministically interleaved with live
// traffic), but never influence any committed state.
//
// Every processor runs this driver with the same deterministic schedule:
// commit outcomes (defaulted, diagnosis-ran) are common knowledge from the
// broadcasts, so all processors launch, squash and relaunch the same
// generations on the same stream ids in the same order — which is what
// keeps the per-stream lock-step barriers of every backend aligned without
// any extra coordination. A processor squashes only its own fibers; a
// partially filled barrier of a squashed stream is either completed by the
// remaining peers (and its result discarded everywhere) or abandoned by all.
type pipeline struct {
	p      *sim.Proc
	par    Params
	window int
	gens   int
	// reader streams the input; data[g] holds generation g's symbols from
	// its first launch (replays reuse them) until its commit frees them, so
	// at most a window's worth of symbol slices is resident at a time.
	// readMu (not the scheduler's mu) guards the read cursor: input reads
	// are L-proportional, so pipelined fibers perform them on their own
	// goroutine before entering the generation body, keeping launch and
	// commit O(1) under mu instead of serializing every fiber behind a
	// window's worth of bit-stream reads. Commit's data[g] = nil writes
	// touch only committed (hence long-since-read) entries — disjoint
	// elements from the cursor's writes.
	readMu sync.Mutex
	reader *bitio.Reader
	data   [][]gf.Sym
	read   int // generations read off the input so far
	shared workerEnv

	// seq is the single reused worker of the sequential (Window = 1) path,
	// which runs generations inline on the caller's stream — reproducing
	// the pre-pipeline protocol exactly, step for step and random draw for
	// random draw.
	seq *worker

	graph    *diag.Graph // authoritative graph: after the last committed generation
	diags    int
	squashes int
	vcommit  int64 // virtual clock: pipelined rounds through the last commit

	// Pipelined-mode shared state, guarded by mu. cond wakes the caller
	// waiting for the run to drain (finished and live == 0).
	mu   sync.Mutex
	cond *sync.Cond
	out  *Output
	// outSyms collects the decided symbols in commit order; the bit-packing
	// into writer happens once after the run drains, so the commit cascade —
	// which runs under mu while every other fiber wanting to record a result
	// waits — appends one slice header per generation instead of doing
	// L-proportional bit I/O.
	outSyms [][]gf.Sym
	writer  *bitio.Writer
	// fibers is the in-flight ring: generation g lives in slot g mod window
	// (at most window generations are in flight, and they are consecutive).
	fibers     []*genFiber
	boxes      []*fiberBox // recycled launch contexts
	committed  int
	nextLaunch int
	nextStream int
	// freeStreams holds the ids of cleanly committed streams for reuse:
	// commits happen in the same order everywhere, so every processor's
	// free list — and hence every launch's stream id — is identical. Reuse
	// keeps stream tags within the frame header's inline range and the
	// backends' per-stream state hot. Squashed streams' ids are never
	// reused (their tombstones must keep discarding stale frames).
	freeStreams []int
	// seedState drives the per-fiber seed sequence: a splitmix64 walk from
	// the processor's deterministic Seed0, advanced once per launch in
	// commit order. Deriving sub-seeds this way (instead of drawing from
	// Proc.Rand) keeps the windowed scheduler from ever initializing the
	// lazy protocol randomness — a 600-step state build per processor that
	// only Window > 1 used to pay.
	seedState uint64
	live      int // fiber bodies currently executing (incl. the caller's)
	finished  bool
	defaulted bool
	abortErr  error // driver-detected invariant violation (abort after drain)
	panicked  any   // first fiber panic, re-raised on the caller
}

// fiberBox bundles one launch's context objects — fiber, worker, processor
// handle, lazy randomness and (rebindable) broadcaster — so the per-launch
// cost in the fault-free steady state is a reseed and a few field writes
// instead of half a dozen allocations. Boxes recycle when their generation
// commits or their stale result is discarded.
type fiberBox struct {
	f genFiber
	// The scheduler flips f's flags (done, stale) under pipeline.mu while
	// the fiber's goroutine is hammering w's fields on another core; the pad
	// keeps the two on separate cache lines so commit-cascade flag writes
	// never bounce the line the worker's hot state lives on.
	_      [64]byte
	w      worker
	a      assignment
	fp     *sim.Proc
	rng    *rand.Rand
	reseed func(int64)
}

// genFiber is one speculative generation execution in flight.
type genFiber struct {
	box    *fiberBox
	gen    int
	stream int
	base   int64 // virtual launch time: the pipeline clock at launch
	// done is set (under pipeline.mu) when the fiber's body finished (res
	// then holds the result); stale marks a squashed or superseded fiber
	// whose result is discarded.
	res   fiberOut
	done  bool
	stale bool
}

// fiberOut is what a fiber reports back to the scheduler.
type fiberOut struct {
	decided   []gf.Sym
	defaulted bool
	graph     *diag.Graph
	diags     int
	rounds    int64 // barrier rounds the fiber consumed (its local clock)
	squashed  bool
	panicked  any
}

// assignment is one generation body ready to execute: a fiber, its worker
// and its input symbols.
type assignment struct {
	f    *genFiber
	w    *worker
	data []gf.Sym
}

// releaseScratch returns every worker's generation scratch to the
// cross-run pool once the run has fully drained.
func (d *pipeline) releaseScratch() {
	if d.seq != nil && d.seq.sc != nil {
		scratchPool.Put(d.seq.sc)
		d.seq.sc = nil
	}
	for _, b := range d.boxes {
		if b.w.sc != nil {
			scratchPool.Put(b.w.sc)
			b.w.sc = nil
		}
	}
	d.boxes = nil
}

// dataFor returns generation g's input symbols, reading the input stream
// forward on demand (fibers may arrive out of order; whichever arrives first
// reads the stream forward through its generation, and replays hit
// generations that are already resident). Safe from any goroutine. A nil
// return means g has already committed and its symbols were freed — only
// possible for a fiber that was squashed before its body started, whose
// replay twin raced ahead; the caller unwinds without running the body.
func (d *pipeline) dataFor(g int) []gf.Sym {
	d.readMu.Lock()
	defer d.readMu.Unlock()
	for d.read <= g {
		syms := make([]gf.Sym, d.shared.ic.DataSyms())
		for i := range syms {
			syms[i] = gf.Sym(d.reader.Read(d.par.SymBits))
		}
		d.data[d.read] = syms
		d.read++
	}
	return d.data[g]
}

// run drives the window to completion and fills out.
func (d *pipeline) run(out *Output) {
	if d.window == 1 {
		d.runSequential(out)
		return
	}
	d.runPipelined(out)
}

// runSequential is the Window = 1 path: generations run inline on the
// caller's processor handle and stream — the sequential protocol, unchanged
// step for step.
func (d *pipeline) runSequential(out *Output) {
	writer := bitio.NewWriter()
	w := d.seq
	for g := 0; g < d.gens; g++ {
		diags0, rounds0 := w.diags, d.p.LocalRounds()
		decided, defaulted := w.generation(g, d.dataFor(g))
		d.vcommit += d.p.LocalRounds() - rounds0
		d.graph = w.g
		d.diags += w.diags - diags0
		out.Generations++
		if d.par.Observer != nil {
			d.par.Observer(d.p.ID, g, GenInfo{
				Defaulted: defaulted,
				Diagnosed: w.diags > diags0,
				Graph:     d.graph.Clone(),
			})
		}
		if defaulted {
			out.Defaulted = true
			out.Value = defaultValue(d.par.Default, out.L)
			d.finish(out)
			return
		}
		for _, s := range decided {
			writer.Write(uint32(s), d.par.SymBits)
		}
		d.data[g] = nil
	}
	out.Value = writer.Truncate(out.L)
	d.finish(out)
}

// runPipelined executes the windowed schedule. The caller participates as
// the first fiber body and then waits for the run to drain.
func (d *pipeline) runPipelined(out *Output) {
	d.cond = sync.NewCond(&d.mu)
	d.out = out
	d.writer = bitio.NewWriter()
	d.seedState = uint64(d.p.Seed0) ^ 0x9E3779B97F4A7C15*uint64(d.p.Instance+1) ^ uint64(d.p.Stream)<<32
	d.mu.Lock()
	d.live++
	d.fiberGaugeLocked()
	a := d.driveLocked()
	d.mu.Unlock()
	d.workLoop(a)

	d.mu.Lock()
	for !d.finished || d.live > 0 {
		d.cond.Wait()
	}
	abortErr, panicked := d.abortErr, d.panicked
	d.mu.Unlock()
	if panicked != nil {
		panic(panicked)
	}
	if abortErr != nil {
		d.p.Abort(abortErr)
	}
	if d.defaulted {
		out.Defaulted = true
		out.Value = defaultValue(d.par.Default, out.L)
	} else {
		for _, syms := range d.outSyms {
			for _, s := range syms {
				d.writer.Write(uint32(s), d.par.SymBits)
			}
		}
		out.Value = d.writer.Truncate(out.L)
	}
	d.finish(out)
}

// finish records the driver's accumulated accounting.
func (d *pipeline) finish(out *Output) {
	out.DiagnosisRuns = d.diags
	out.Graph = d.graph
	out.PipelinedRounds = d.vcommit
	out.Squashes = d.squashes
}

// workLoop runs generation bodies until its chain dies: execute the
// assignment, record the result, drive the commit cascade, and continue as
// the first refill fiber the cascade produced (additional refills get fresh
// goroutines). This chaining is what keeps the fault-free steady state free
// of per-generation goroutine spawns and driver handoffs.
//
// A fiber's stream is released strictly after its result is recorded: the
// scheduler squashes only fibers without a recorded result, so a squash
// decision always targets a stream that is still registered with the
// backend.
func (d *pipeline) workLoop(a *assignment) {
	for a != nil {
		// The input symbols are fetched here, off the scheduler lock: the
		// launch left a.data nil so that driveLocked never does
		// L-proportional work under mu.
		var r fiberOut
		if a.data = d.dataFor(a.f.gen); a.data == nil {
			// The generation committed (via a replay) before this squashed
			// fiber ever started its body: unwind as a squash — the stream
			// was already marked squashed when the fiber went stale.
			r = fiberOut{squashed: true}
		} else {
			r = runGeneration(a)
		}
		f := a.f
		fp, stream := a.w.p, f.stream
		var next *assignment
		wasStale := false
		d.mu.Lock()
		if f.stale {
			// Squashed while running: the result is discarded without
			// influencing committed state (a panic still surfaces — a bug
			// in speculative code must not vanish with the speculation) and
			// the context recycles. The unwound stream is released below by
			// this goroutine; committed and finished-then-squashed fibers
			// are instead released by the scheduler, which guarantees a
			// stream id enters the reuse list only after its release.
			wasStale = true
			if r.panicked != nil && d.panicked == nil {
				d.panicked = r.panicked
				d.finishRunLocked(false)
			}
			d.recycleLocked(f)
		} else {
			f.res = r
			f.done = true
			if r.panicked != nil && d.panicked == nil {
				d.panicked = r.panicked
				d.finishRunLocked(false)
			}
			next = d.driveLocked()
		}
		d.mu.Unlock()
		if wasStale {
			fp.ReleaseStream(stream)
		}
		a = next
	}
	d.mu.Lock()
	d.live--
	d.fiberGaugeLocked()
	if d.live == 0 {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// runGeneration executes one generation body, converting a squash unwind
// (or a stray panic) into its fiberOut.
func runGeneration(a *assignment) (r fiberOut) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(sim.Squashed); ok {
				r = fiberOut{squashed: true}
				return
			}
			r = fiberOut{panicked: rec}
		}
	}()
	decided, defaulted := a.w.generation(a.f.gen, a.data)
	return fiberOut{
		decided: decided, defaulted: defaulted, graph: a.w.g,
		diags: a.w.diags, rounds: a.w.p.LocalRounds(),
	}
}

// driveLocked is the scheduler step, run under d.mu by whichever fiber (or
// the caller) last recorded a result: refill the window, then commit every
// consecutive finished generation at the cursor — launching each slot's
// refill before inspecting the next commit so the virtual launch clock
// matches the sequential driver exactly. It returns one launched assignment
// for the calling goroutine to continue with (nil when none).
func (d *pipeline) driveLocked() (next *assignment) {
	for {
		for !d.finished && d.nextLaunch < d.gens && d.nextLaunch < d.committed+d.window {
			a := d.launchLocked(d.nextLaunch)
			d.nextLaunch++
			if next == nil {
				next = a
			} else {
				d.spawnLocked(a)
			}
		}
		if d.finished {
			return next
		}
		f := d.fibers[d.committed%d.window]
		if f == nil || !f.done {
			return next
		}
		d.commitLocked(f)
	}
}

// recycleLocked returns a drained fiber's context to the pool. Caller holds
// d.mu; the fiber must no longer be referenced by the ring.
func (d *pipeline) recycleLocked(f *genFiber) {
	if f.box == nil {
		return
	}
	f.res = fiberOut{}
	f.done = false
	f.stale = false
	d.boxes = append(d.boxes, f.box)
}

// commitLocked commits the finished generation at the cursor. Caller holds
// d.mu.
func (d *pipeline) commitLocked(f *genFiber) {
	r := f.res
	d.fibers[f.gen%d.window] = nil
	if r.squashed {
		d.abortErr = fmt.Errorf("consensus: g%d: committed generation's fiber squashed (driver bug)", f.gen)
		d.finishRunLocked(false)
		return
	}
	if vEnd := f.base + r.rounds; vEnd > d.vcommit {
		d.vcommit = vEnd
	}
	d.graph = r.graph
	d.diags += r.diags
	d.out.Generations++
	if d.par.Observer != nil {
		d.par.Observer(d.p.ID, f.gen, GenInfo{
			Defaulted: r.defaulted,
			Diagnosed: r.diags > 0,
			Graph:     d.graph.Clone(),
		})
	}
	if r.defaulted {
		d.defaulted = true
		d.p.ReleaseStream(f.stream)
		d.finishRunLocked(true)
		return
	}
	d.outSyms = append(d.outSyms, r.decided) // bit-packed after the drain
	// Free the committed input under readMu: a stale twin squashed before
	// its body started may concurrently probe data[f.gen] (dataFor), and
	// must observe either the symbols or the nil, never a torn mix.
	d.readMu.Lock()
	d.data[f.gen] = nil // committed: can never be relaunched
	d.readMu.Unlock()
	// The scheduler releases the committed stream (the fiber's goroutine
	// may still be between recording its result and exiting): release
	// happens-before the id enters the reuse list, so a reusing launch
	// always rendezvouses on the id's next incarnation.
	d.p.ReleaseStream(f.stream)
	d.freeStreams = append(d.freeStreams, f.stream)
	d.recycleLocked(f)
	d.committed++
	if r.diags > 0 {
		// The diagnosis updated the trust graph: every generation launched
		// beyond the commit point speculated under a stale graph. Squash
		// them and let the window refill from the commit point with fresh
		// streams under the updated graph.
		d.squashFromLocked(d.committed, true)
	}
	if d.committed == d.gens {
		d.finished = true
		d.cond.Broadcast()
	}
}

// finishRunLocked ends the run early (default decision, abort, panic),
// squashing every in-flight fiber so the drain completes. Caller holds d.mu.
func (d *pipeline) finishRunLocked(countSquashes bool) {
	d.squashFromLocked(d.committed, countSquashes)
	d.finished = true
	d.cond.Broadcast()
}

// squashFromLocked abandons every in-flight fiber for generations >= g and
// rolls the launch cursor back so the window refills from the commit point.
// A fiber that already finished its (stale) speculative run needs no unwind
// — its result is simply discarded, and its stream was already released by
// the fiber itself; a still-running fiber's stream is squashed, unwinding
// its body at the next barrier. Caller holds d.mu.
func (d *pipeline) squashFromLocked(g int, count bool) {
	for i := g; i < d.nextLaunch; i++ {
		f := d.fibers[i%d.window]
		if f == nil || f.gen != i {
			continue
		}
		d.fibers[i%d.window] = nil
		f.stale = true
		if f.done {
			// Already finished: the result is discarded, the stream (which
			// the fiber's goroutine no longer owns) is released, and the
			// context recycles here (no goroutine will visit it again). The
			// id is NOT reused — nothing distinguishes it from a squashed
			// one on the wire, where peers may still float stale frames.
			if f.res.panicked != nil && d.panicked == nil {
				d.panicked = f.res.panicked
			}
			d.p.ReleaseStream(f.stream)
			d.recycleLocked(f)
		} else {
			d.p.SquashStream(f.stream)
		}
		if count {
			d.squashes++
		}
	}
	if d.nextLaunch > g {
		d.nextLaunch = g
	}
}

// spawnLocked starts a fresh goroutine for an assignment the committing
// fiber cannot chain into (cascades that unblock several refills at once).
// Caller holds d.mu.
func (d *pipeline) spawnLocked(a *assignment) {
	d.live++
	d.fiberGaugeLocked()
	go d.workLoop(a)
}

// fiberGaugeLocked reports the live-fiber count to Params.FiberGauge
// (processor 0 only — same convention as PhaseTimer). Caller holds d.mu.
func (d *pipeline) fiberGaugeLocked() {
	if d.par.FiberGauge != nil && d.p.ID == 0 {
		d.par.FiberGauge(d.p.ID, d.live)
	}
}

// splitmix64 advances the seed-derivation state (Vigna's SplitMix64).
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// launchLocked prepares generation g's fiber on a fresh stream. The fiber's
// randomness seed is the next step of the splitmix walk from Proc.Seed0:
// launches happen in commit order under d.mu, so every backend — and every
// processor — derives identical per-fiber seeds and stream ids, and the
// fiber's lazy source means a fiber that never draws randomness (all of
// them, outside the probabilistic broadcaster) never seeds anything. The
// graph snapshot is copy-on-write: fibers share the driver's graph
// read-only, and the (rare) diagnosis stage clones before its first
// mutation (worker.generation), so the common fault-free launch pays no
// clone at all. Caller holds d.mu.
func (d *pipeline) launchLocked(g int) *assignment {
	seed := int64(splitmix64(&d.seedState) >> 1)
	var box *fiberBox
	if l := len(d.boxes); l > 0 {
		box = d.boxes[l-1]
		d.boxes = d.boxes[:l-1]
		box.reseed(seed)
		if box.w.sc == nil {
			// The previous occupant unwound on a squash and abandoned its
			// scratch to the network (worker.generation's defer).
			box.w.sc = scratchPool.Get().(*genScratch)
		}
	} else {
		box = &fiberBox{}
		box.rng, box.reseed = sim.LazyRandReseedable(seed)
		box.fp = d.p.WithStream(0, box.rng)
		box.f.box = box
		box.w = worker{par: d.par, field: d.shared.field, ic: d.shared.ic, p: box.fp,
			sc: scratchPool.Get().(*genScratch)}
		box.a = assignment{f: &box.f, w: &box.w}
	}
	f := &box.f
	f.gen, f.base = g, d.vcommit
	if l := len(d.freeStreams); l > 0 {
		f.stream = d.freeStreams[l-1]
		d.freeStreams = d.freeStreams[:l-1]
	} else {
		f.stream = d.nextStream
		d.nextStream++
	}
	box.fp.RebindStream(f.stream, box.rng)
	box.w.g = d.graph
	box.w.diags = 0
	if rb, ok := box.w.bcast.(interface{ Rebind(*sim.Proc) }); ok {
		rb.Rebind(box.fp)
	} else {
		box.w.bcast = newBroadcaster(box.fp, d.par)
	}
	d.fibers[g%d.window] = f
	// a.data is filled by the fiber's own goroutine (workLoop) off this
	// lock; input reads are L-proportional.
	box.a.data = nil
	return &box.a
}
