package consensus

import (
	"bytes"
	"fmt"
	"testing"

	"byzcons/internal/adversary"
	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

// TestHighResilienceTolerated: Section 4 claims that substituting a 1-bit
// broadcast of higher resilience lifts the whole algorithm's tolerance to
// match. With the probabilistic oracle at eps=0 (perfect delivery), t >= n/3
// must now be accepted and the error-free guarantees must hold under attack.
func TestHighResilienceTolerated(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x6E, 0x21}, 24)
	L := len(val) * 8
	cases := []struct {
		n, tf  int
		faulty []int
	}{
		{7, 3, []int{0, 1, 2}}, // t = 3 >= n/3 = 2.33
		{5, 2, []int{3, 4}},    // t = 2 >= n/3 = 1.67
		{9, 4, []int{0, 2, 4, 6}},
	}
	attacks := map[string]sim.Adversary{
		"passive":     nil,
		"equivocator": adversary.Equivocator{Victims: []int{1}},
		"random":      adversary.RandomByz{P: 0.5},
		"falsedetect": adversary.FalseDetector{},
		"symbolliar":  adversary.Chain{adversary.Equivocator{Victims: []int{1}}, adversary.SymbolLiar{}},
	}
	for _, tc := range cases {
		for name, adv := range attacks {
			t.Run(fmt.Sprintf("n%d_t%d_%s", tc.n, tc.tf, name), func(t *testing.T) {
				par := Params{N: tc.n, T: tc.tf, BSB: bsb.ProbOracle, Lanes: 2, SymBits: 8}
				outs, _ := runConsensus(t, par, sameInputs(tc.n, val), L, tc.faulty, adv, 17)
				checkAgreement(t, outs, tc.faulty, val, false)
			})
		}
	}
}

// TestHighResilienceRejectedByErrorFreeKinds: without the probabilistic
// substitution, t >= n/3 must still be rejected (error-free consensus at
// that resilience is impossible).
func TestHighResilienceRejectedByErrorFreeKinds(t *testing.T) {
	t.Parallel()
	for _, kind := range []bsb.Kind{bsb.Oracle, bsb.EIG, bsb.PhaseKing} {
		res := sim.Run(sim.RunConfig{N: 7, Seed: 1}, func(p *sim.Proc) any {
			return Run(p, Params{N: 7, T: 3, BSB: kind}, []byte{1}, 8)
		})
		if res.Err == nil {
			t.Errorf("%v accepted t >= n/3", kind)
		}
	}
	// And t >= n/2 is out of reach even for the probabilistic kind.
	res := sim.Run(sim.RunConfig{N: 6, Seed: 1}, func(p *sim.Proc) any {
		return Run(p, Params{N: 6, T: 3, BSB: bsb.ProbOracle}, []byte{1}, 8)
	})
	if res.Err == nil {
		t.Error("proboracle accepted t >= n/2")
	}
}

// TestProbBroadcastFailuresCauseOnlyBoundedErrors: with eps > 0 some runs
// err (inconsistent delivery can split honest control flow or decisions) —
// exactly the paper's "makes an error only if the 1-bit broadcast fails".
// Errors must show up as detectable outcomes (run abort or output
// divergence), never as silent partial corruption of an agreed value, and
// must vanish as eps -> 0.
func TestProbBroadcastFailuresCauseOnlyBoundedErrors(t *testing.T) {
	t.Parallel()
	val := bytes.Repeat([]byte{0x42}, 16)
	L := len(val) * 8
	errsAt := func(eps float64, trials int) int {
		errs := 0
		for seed := 0; seed < trials; seed++ {
			par := Params{N: 7, T: 3, BSB: bsb.ProbOracle, BSBEpsilon: eps, Lanes: 2, SymBits: 8}
			res := sim.Run(sim.RunConfig{N: 7, Faulty: []int{0}, Seed: int64(seed)}, func(p *sim.Proc) any {
				return Run(p, par, val, L)
			})
			if res.Err != nil {
				errs++ // control-flow divergence: an honest-visible failure
				continue
			}
			consistent := true
			var ref *Output
			for i, v := range res.Values {
				if i == 0 {
					continue
				}
				o := v.(*Output)
				if ref == nil {
					ref = o
					continue
				}
				if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted {
					consistent = false
				}
			}
			if !consistent || ref.Defaulted || !bytes.Equal(ref.Value, val) {
				errs++
			}
		}
		return errs
	}
	if got := errsAt(0.02, 30); got == 0 {
		t.Error("eps=0.02: expected some broadcast-failure-induced errors, saw none")
	}
	if got := errsAt(0, 30); got != 0 {
		t.Errorf("eps=0: saw %d errors; must be none", got)
	}
}
