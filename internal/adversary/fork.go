package adversary

import (
	"byzcons/internal/gf"
	"byzcons/internal/rs"
	"byzcons/internal/sim"
)

// CodewordFork is the strongest consistent-equivocation attack against the
// matching/checking stages: faulty processors offset the symbols they send
// to the victim set by a *valid nonzero codeword* Z = C2t(delta). Because
// the code is linear, the victims receive symbols of S+Z — itself a perfect
// codeword — so if the attack succeeded, victims would decode a different
// value than everyone else without ever detecting an inconsistency (a value
// fork, the worst possible outcome for a consensus protocol).
//
// Lemma 2/3's algebra makes this impossible: the victims' view mixes honest
// symbols (on S) with shifted ones (on S+Z), and any codeword explaining the
// mixture would have to differ from S by a codeword vanishing on the
// >= n-2t honest member positions — but a nonzero codeword is a polynomial
// of degree < n-2t and has at most n-2t-1 roots. The mixture is therefore
// never consistent, the checking stage fires, and the diagnosis stage
// removes faulty-incident edges. TestForkAttackImpossible asserts exactly
// this outcome.
type CodewordFork struct {
	N, T    int
	Lanes   int
	SymBits uint
	// Victims are the processors receiving the shifted codeword; empty
	// selects the top quarter of processor ids.
	Victims []int
}

// ReworkExchange implements sim.Adversary.
func (a CodewordFork) ReworkExchange(ctx *sim.ExchangeCtx) {
	if Phase(ctx.Step) != "match.sym" {
		return
	}
	f, err := gf.New(a.SymBits)
	if err != nil {
		return
	}
	code, err := rs.New(f, a.N, a.N-2*a.T)
	if err != nil {
		return
	}
	// Z = C2t(delta) for delta = (1, 0, ..., 0): a valid nonzero codeword.
	delta := make([]gf.Sym, a.N-2*a.T)
	delta[0] = 1
	z := code.Encode(delta)

	victims := a.Victims
	if len(victims) == 0 {
		for v := a.N - 1; v >= a.N-1-a.N/4 && v >= 0; v-- {
			victims = append(victims, v)
		}
	}
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}
	EachFaultyMessage(ctx, func(from int, m *sim.Message) {
		if !isVictim[m.To] {
			return
		}
		w, ok := m.Payload.([]gf.Sym)
		if !ok {
			return
		}
		shifted := make([]gf.Sym, len(w))
		for l := range w {
			shifted[l] = w[l] ^ z[from] // add Z's symbol at the sender's position, every lane
		}
		m.Payload = shifted
	})
}

// ReworkSync implements sim.Adversary.
func (CodewordFork) ReworkSync(*sim.SyncCtx) {}
