package adversary

import (
	"math/rand"
	"testing"

	"byzcons/internal/bsb"
	"byzcons/internal/gf"
	"byzcons/internal/rs"
	"byzcons/internal/sim"
)

// exchangeCtx builds a synthetic matching-stage step with one faulty sender
// (processor 0) sending word {0x10, 0x20} to processors 1 and 2.
func exchangeCtx(step sim.StepID) *sim.ExchangeCtx {
	return &sim.ExchangeCtx{
		Step:   step,
		N:      3,
		Faulty: []bool{true, false, false},
		Out: [][]sim.Message{
			{
				{To: 1, Payload: []gf.Sym{0x10, 0x20}, Bits: 16},
				{To: 2, Payload: []gf.Sym{0x10, 0x20}, Bits: 16},
			},
			{{To: 0, Payload: []gf.Sym{0x30}, Bits: 8}},
			{},
		},
		Rand: rand.New(rand.NewSource(1)),
	}
}

func TestEquivocatorTargetsVictimsOnly(t *testing.T) {
	ctx := exchangeCtx("g0/match.sym")
	Equivocator{Victims: []int{2}}.ReworkExchange(ctx)
	toward1 := ctx.Out[0][0].Payload.([]gf.Sym)
	toward2 := ctx.Out[0][1].Payload.([]gf.Sym)
	if toward1[0] != 0x10 {
		t.Error("non-victim message was corrupted")
	}
	if toward2[0] == 0x10 {
		t.Error("victim message was not corrupted")
	}
	if honest := ctx.Out[1][0].Payload.([]gf.Sym); honest[0] != 0x30 {
		t.Error("honest sender's message was touched")
	}
}

func TestEquivocatorGenerationWindow(t *testing.T) {
	ctx := exchangeCtx("g5/match.sym")
	Equivocator{Victims: []int{2}, FromGen: 6}.ReworkExchange(ctx)
	if w := ctx.Out[0][1].Payload.([]gf.Sym); w[0] != 0x10 {
		t.Error("attack fired before FromGen")
	}
	ctx = exchangeCtx("g5/match.sym")
	Equivocator{Victims: []int{2}, FromGen: 2, ToGen: 4}.ReworkExchange(ctx)
	if w := ctx.Out[0][1].Payload.([]gf.Sym); w[0] != 0x10 {
		t.Error("attack fired after ToGen")
	}
}

func TestEquivocatorIgnoresOtherPhases(t *testing.T) {
	ctx := exchangeCtx("g0/diag.sym")
	Equivocator{Victims: []int{2}}.ReworkExchange(ctx)
	if w := ctx.Out[0][1].Payload.([]gf.Sym); w[0] != 0x10 {
		t.Error("attack fired outside match.sym")
	}
}

func TestEquivocatorDefaultVictim(t *testing.T) {
	ctx := exchangeCtx("g0/match.sym")
	Equivocator{}.ReworkExchange(ctx) // default victim: highest id (2)
	if w := ctx.Out[0][1].Payload.([]gf.Sym); w[0] == 0x10 {
		t.Error("default victim not attacked")
	}
}

// syncCtx builds a broadcast batch where processor 0 (faulty) owns the first
// two instances of the given kind.
func syncCtx(step sim.StepID, kind string) *sim.SyncCtx {
	insts := []bsb.Inst{
		{Src: 0, Kind: kind, A: 0, B: 1},
		{Src: 0, Kind: kind, A: 0, B: 2},
		{Src: 1, Kind: kind, A: 1, B: 0},
	}
	return &sim.SyncCtx{
		Step:   step,
		N:      3,
		Faulty: []bool{true, false, false},
		Vals:   []any{[]bool{true, true}, []bool{true}, nil},
		Meta:   insts,
		Rand:   rand.New(rand.NewSource(2)),
	}
}

func TestMatchLiarFlipsOwnEntries(t *testing.T) {
	ctx := syncCtx("g0/match.M", "M")
	MatchLiar{}.ReworkSync(ctx)
	got := ctx.Vals[0].([]bool)
	if got[0] || got[1] {
		t.Error("faulty M entries not flipped")
	}
	if honest := ctx.Vals[1].([]bool); !honest[0] {
		t.Error("honest M entries touched")
	}
	// Wrong phase: untouched.
	ctx = syncCtx("g0/check.det", "Det")
	MatchLiar{}.ReworkSync(ctx)
	if got := ctx.Vals[0].([]bool); !got[0] {
		t.Error("MatchLiar fired outside match.M")
	}
}

func TestFalseDetectorForcesTrue(t *testing.T) {
	ctx := syncCtx("g3/check.det", "Det")
	ctx.Vals[0] = []bool{false, false}
	FalseDetector{}.ReworkSync(ctx)
	got := ctx.Vals[0].([]bool)
	if !got[0] || !got[1] {
		t.Error("Detected flags not forced true")
	}
}

func TestTrustLiarForcesFalse(t *testing.T) {
	ctx := syncCtx("g3/diag.trust", "Trust")
	TrustLiar{}.ReworkSync(ctx)
	got := ctx.Vals[0].([]bool)
	if got[0] || got[1] {
		t.Error("Trust entries not forced false")
	}
}

func TestSymbolLiarFlipsRsym(t *testing.T) {
	ctx := syncCtx("g3/diag.sym", "Rsym")
	SymbolLiar{}.ReworkSync(ctx)
	got := ctx.Vals[0].([]bool)
	if got[0] || got[1] {
		t.Error("R# bits not flipped")
	}
}

func TestSilentDropsEverything(t *testing.T) {
	ectx := exchangeCtx("g0/match.sym")
	Silent{}.ReworkExchange(ectx)
	if ectx.Out[0] != nil {
		t.Error("faulty messages not dropped")
	}
	if len(ectx.Out[1]) != 1 {
		t.Error("honest messages dropped")
	}
	sctx := syncCtx("g0/match.M", "M")
	Silent{}.ReworkSync(sctx)
	if sctx.Vals[0] != nil {
		t.Error("faulty contribution not dropped")
	}
	if sctx.Vals[1] == nil {
		t.Error("honest contribution dropped")
	}
}

func TestRandomByzCorruptsEventually(t *testing.T) {
	changed := false
	for seed := int64(0); seed < 20 && !changed; seed++ {
		ctx := exchangeCtx("g0/match.sym")
		ctx.Rand = rand.New(rand.NewSource(seed))
		RandomByz{P: 0.9}.ReworkExchange(ctx)
		w := ctx.Out[0][0].Payload.([]gf.Sym)
		changed = w[0] != 0x10 || w[1] != 0x20
	}
	if !changed {
		t.Error("RandomByz never corrupted anything at P=0.9")
	}
	// Bool payloads too (broadcast relays).
	ctx := exchangeCtx("g0/match.M/eig.r2")
	ctx.Out[0] = []sim.Message{{To: 1, Payload: []bool{true, true, true, true}, Bits: 4}}
	RandomByz{P: 1}.ReworkExchange(ctx)
	if _, ok := ctx.Out[0][0].Payload.([]bool); !ok {
		t.Error("bool payload type lost")
	}
}

func TestEdgeMiserSchedule(t *testing.T) {
	e := EdgeMiser{T: 2}
	for g, want := range map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 5: 1, 6: -1, 100: -1} {
		step := sim.StepID("g" + itoa(g) + "/match.M")
		if got := e.actor(step); got != want {
			t.Errorf("actor(g%d) = %d, want %d", g, got, want)
		}
	}
	if (EdgeMiser{T: 0}).actor("g0/match.M") != -1 {
		t.Error("T=0 should never act")
	}
	if e.actor("fh/keys") != -1 {
		t.Error("non-generation step should never act")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestEdgeMiserTrustLieIsSingleFreshHonest(t *testing.T) {
	// Trust batch: actor f=0 owns entries toward members 1 (faulty), 2, 3.
	insts := []bsb.Inst{
		{Src: 0, Kind: "Trust", A: 0, B: 1},
		{Src: 0, Kind: "Trust", A: 0, B: 2},
		{Src: 0, Kind: "Trust", A: 0, B: 3},
		{Src: 2, Kind: "Trust", A: 2, B: 1},
	}
	ctx := &sim.SyncCtx{
		Step:   "g0/diag.trust",
		N:      4,
		Faulty: []bool{true, true, false, false},
		// Entry toward member 2 is already false (edge gone): must skip it.
		Vals: []any{[]bool{true, false, true}, nil, []bool{true}, nil},
		Meta: insts,
	}
	EdgeMiser{T: 2}.ReworkSync(ctx)
	got := ctx.Vals[0].([]bool)
	if got[0] != true {
		t.Error("accused a faulty co-conspirator (would share edge budget)")
	}
	if got[1] != false {
		t.Error("re-accused an already-removed edge")
	}
	if got[2] != false {
		t.Error("did not accuse the fresh honest member")
	}
}

func TestCodewordForkShiftsByValidCodeword(t *testing.T) {
	const n, tf = 7, 2
	f, _ := gf.New(8)
	code, _ := rs.New(f, n, n-2*tf)
	delta := make([]gf.Sym, n-2*tf)
	delta[0] = 1
	z := code.Encode(delta)

	ctx := &sim.ExchangeCtx{
		Step:   "g0/match.sym",
		N:      n,
		Faulty: []bool{true, false, false, false, false, false, false},
		Out: [][]sim.Message{
			{
				{To: 5, Payload: []gf.Sym{0x11, 0x22}, Bits: 16},
				{To: 6, Payload: []gf.Sym{0x11, 0x22}, Bits: 16},
			},
		},
	}
	CodewordFork{N: n, T: tf, Lanes: 2, SymBits: 8, Victims: []int{6}}.ReworkExchange(ctx)
	unshifted := ctx.Out[0][0].Payload.([]gf.Sym)
	shifted := ctx.Out[0][1].Payload.([]gf.Sym)
	if unshifted[0] != 0x11 {
		t.Error("non-victim shifted")
	}
	want0 := gf.Sym(0x11) ^ z[0]
	want1 := gf.Sym(0x22) ^ z[0]
	if shifted[0] != want0 || shifted[1] != want1 {
		t.Errorf("victim word = %v, want shift by z[0]=%#x", shifted, z[0])
	}
}
