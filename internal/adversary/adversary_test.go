package adversary

import (
	"testing"

	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

func TestPhaseParsing(t *testing.T) {
	cases := map[sim.StepID]string{
		"g12/match.sym":       "match.sym",
		"g0/match.M":          "match.M",
		"g3/match.M/eig.r2":   "match.M",
		"g7/check.det/pk.src": "check.det",
		"g1/diag.trust/align": "diag.trust",
		"fh/keys":             "keys",
		"nogeneration":        "nogeneration",
	}
	for step, want := range cases {
		if got := Phase(step); got != want {
			t.Errorf("Phase(%q) = %q, want %q", step, got, want)
		}
	}
}

func TestGenerationParsing(t *testing.T) {
	cases := map[sim.StepID]int{
		"g12/match.sym": 12,
		"g0/x":          0,
		"fh/keys":       -1,
		"gX/y":          -1,
		"g5":            5,
	}
	for step, want := range cases {
		if got := Generation(step); got != want {
			t.Errorf("Generation(%q) = %d, want %d", step, got, want)
		}
	}
}

func TestEditSyncBitsTouchesOnlyFaultySources(t *testing.T) {
	insts := []bsb.Inst{
		{Src: 0, Kind: "M", B: 1}, {Src: 1, Kind: "M", B: 0},
		{Src: 0, Kind: "M", B: 2}, {Src: 2, Kind: "M", B: 0},
	}
	ctx := &sim.SyncCtx{
		N:      3,
		Faulty: []bool{true, false, false},
		Vals:   []any{[]bool{true, true}, []bool{true}, []bool{false}},
		Meta:   insts,
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return !cur })
	got := ctx.Vals[0].([]bool)
	if got[0] != false || got[1] != false {
		t.Errorf("faulty contributions not flipped: %v", got)
	}
	if ctx.Vals[1].([]bool)[0] != true || ctx.Vals[2].([]bool)[0] != false {
		t.Error("honest contributions were modified")
	}
}

func TestEditSyncBitsHandlesMissingContributions(t *testing.T) {
	insts := []bsb.Inst{{Src: 0, Kind: "D"}, {Src: 0, Kind: "D"}}
	ctx := &sim.SyncCtx{
		N:      1,
		Faulty: []bool{true},
		Vals:   []any{nil}, // silent faulty: no contribution at all
		Meta:   insts,
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return true })
	got := ctx.Vals[0].([]bool)
	if len(got) != 2 || !got[0] || !got[1] {
		t.Errorf("missing contribution not synthesized: %v", got)
	}
}

func TestEditSyncBitsNoMetaNoop(t *testing.T) {
	ctx := &sim.SyncCtx{N: 1, Faulty: []bool{true}, Vals: []any{[]bool{true}}}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return !cur })
	if ctx.Vals[0].([]bool)[0] != true {
		t.Error("edited without instance metadata")
	}
}

func TestChainOrder(t *testing.T) {
	var trace []string
	a := Func{Sync: func(*sim.SyncCtx) { trace = append(trace, "a") }}
	b := Func{Sync: func(*sim.SyncCtx) { trace = append(trace, "b") }}
	Chain{a, b}.ReworkSync(&sim.SyncCtx{})
	if len(trace) != 2 || trace[0] != "a" || trace[1] != "b" {
		t.Errorf("chain order = %v", trace)
	}
}

func TestEachFaultyMessage(t *testing.T) {
	ctx := &sim.ExchangeCtx{
		N:      2,
		Faulty: []bool{false, true},
		Out: [][]sim.Message{
			{{To: 1, Bits: 1}},
			{{To: 0, Bits: 1}, {To: 0, Bits: 2}},
		},
	}
	count := 0
	EachFaultyMessage(ctx, func(from int, m *sim.Message) {
		count++
		m.Bits = 99
	})
	if count != 2 {
		t.Errorf("visited %d messages, want 2", count)
	}
	if ctx.Out[0][0].Bits != 1 {
		t.Error("honest message mutated")
	}
	if ctx.Out[1][0].Bits != 99 || ctx.Out[1][1].Bits != 99 {
		t.Error("faulty messages not mutated")
	}
}
