package adversary

import (
	"byzcons/internal/bsb"
	"byzcons/internal/gf"
	"byzcons/internal/sim"
)

// corruptWord returns a corrupted copy of a matching-stage word payload
// ([]gf.Sym): every symbol is XORed with 1, which stays within any GF(2^c).
func corruptWord(payload any) any {
	w, ok := payload.([]gf.Sym)
	if !ok {
		return payload
	}
	c := make([]gf.Sym, len(w))
	for i, s := range w {
		c[i] = s ^ 1
	}
	return c
}

// Equivocator makes every faulty processor send a corrupted matching-stage
// symbol to the victim processors while sending the correct symbol to
// everyone else — the canonical equivocation the checking stage is built to
// catch (proof of Lemma 4, case 1). Victims lists target processor ids;
// empty means the highest-numbered processor. Generations outside
// [FromGen, ToGen] (ToGen 0 = unbounded) are left untouched, which lets
// tests interleave clean and attacked generations.
type Equivocator struct {
	Victims []int
	FromGen int
	ToGen   int
}

// ReworkExchange implements sim.Adversary.
func (e Equivocator) ReworkExchange(ctx *sim.ExchangeCtx) {
	if Phase(ctx.Step) != "match.sym" {
		return
	}
	if g := Generation(ctx.Step); g < e.FromGen || (e.ToGen > 0 && g > e.ToGen) {
		return
	}
	victims := e.Victims
	if len(victims) == 0 {
		victims = []int{ctx.N - 1}
	}
	isVictim := make(map[int]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}
	EachFaultyMessage(ctx, func(from int, m *sim.Message) {
		if isVictim[m.To] {
			m.Payload = corruptWord(m.Payload)
		}
	})
}

// ReworkSync implements sim.Adversary.
func (Equivocator) ReworkSync(*sim.SyncCtx) {}

// MatchLiar flips the broadcast M-vector entries of faulty processors:
// they claim to match processors they do not and deny matches they have.
// The checking stage must still keep honest decisions consistent.
type MatchLiar struct{}

// ReworkExchange implements sim.Adversary.
func (MatchLiar) ReworkExchange(*sim.ExchangeCtx) {}

// ReworkSync implements sim.Adversary.
func (MatchLiar) ReworkSync(ctx *sim.SyncCtx) {
	if Phase(ctx.Step) != "match.M" {
		return
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return !cur })
}

// FalseDetector makes faulty non-members of Pmatch claim Detected = true in
// clean generations. Per line 3(f), such processors must be isolated by the
// very diagnosis stage they trigger.
type FalseDetector struct{}

// ReworkExchange implements sim.Adversary.
func (FalseDetector) ReworkExchange(*sim.ExchangeCtx) {}

// ReworkSync implements sim.Adversary.
func (FalseDetector) ReworkSync(ctx *sim.SyncCtx) {
	if Phase(ctx.Step) != "check.det" {
		return
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return true })
}

// TrustLiar makes faulty processors broadcast false accusations in the
// diagnosis stage: they claim to distrust every member of Pmatch. Lemma 4
// guarantees only faulty-incident edges are removed as a result.
type TrustLiar struct{}

// ReworkExchange implements sim.Adversary.
func (TrustLiar) ReworkExchange(*sim.ExchangeCtx) {}

// ReworkSync implements sim.Adversary.
func (TrustLiar) ReworkSync(ctx *sim.SyncCtx) {
	if Phase(ctx.Step) != "diag.trust" {
		return
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return false })
}

// SymbolLiar makes faulty Pmatch members broadcast a corrupted R# symbol in
// the diagnosis stage (different from what they sent in the matching stage),
// which must cost them edges to every honest receiver.
type SymbolLiar struct{}

// ReworkExchange implements sim.Adversary.
func (SymbolLiar) ReworkExchange(*sim.ExchangeCtx) {}

// ReworkSync implements sim.Adversary.
func (SymbolLiar) ReworkSync(ctx *sim.SyncCtx) {
	if Phase(ctx.Step) != "diag.sym" {
		return
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool { return !cur })
}

// Silent drops every message sent by faulty processors and zeroes their
// broadcast contributions — crash-like behaviour expressed in the Byzantine
// model.
type Silent struct{}

// ReworkExchange implements sim.Adversary.
func (Silent) ReworkExchange(ctx *sim.ExchangeCtx) {
	for from := range ctx.Out {
		if ctx.Faulty[from] {
			ctx.Out[from] = nil
		}
	}
}

// ReworkSync implements sim.Adversary.
func (Silent) ReworkSync(ctx *sim.SyncCtx) {
	for i, f := range ctx.Faulty {
		if f {
			ctx.Vals[i] = nil
		}
	}
}

// RandomByz is a fuzzing adversary: with probability P (default 0.3 when 0)
// it corrupts each faulty message payload and flips each faulty broadcast
// contribution bit. Useful for property tests: whatever it does, honest
// consistency and the diagnosis-graph invariants must hold.
type RandomByz struct {
	P float64
}

func (r RandomByz) p() float64 {
	if r.P <= 0 {
		return 0.3
	}
	return r.P
}

// ReworkExchange implements sim.Adversary.
func (r RandomByz) ReworkExchange(ctx *sim.ExchangeCtx) {
	EachFaultyMessage(ctx, func(from int, m *sim.Message) {
		if ctx.Rand.Float64() >= r.p() {
			return
		}
		switch payload := m.Payload.(type) {
		case []gf.Sym:
			c := make([]gf.Sym, len(payload))
			for i, s := range payload {
				c[i] = s ^ gf.Sym(ctx.Rand.Intn(256))
			}
			m.Payload = c
		case []bool:
			c := make([]bool, len(payload))
			for i, b := range payload {
				c[i] = b != (ctx.Rand.Float64() < 0.5)
			}
			m.Payload = c
		}
	})
}

// ReworkSync implements sim.Adversary.
func (r RandomByz) ReworkSync(ctx *sim.SyncCtx) {
	if Insts(ctx.Meta) == nil {
		return
	}
	EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool {
		if ctx.Rand.Float64() < r.p() {
			return !cur
		}
		return cur
	})
}

// EdgeMiser is the worst-case budget adversary for Theorem 1: it triggers the
// maximum possible number of diagnosis stages, t(t+1), spending exactly one
// faulty-incident edge per generation. In generation g = f*(t+1)+r the
// designated faulty processor f (ids 0..t-1 must be the faulty set):
//
//   - broadcasts an all-false M vector, keeping itself out of Pmatch,
//   - claims Detected = true as a non-member, and
//   - falsely distrusts one Pmatch member in its Trust vector, so line 3(e)
//     removes exactly one edge at f — which, per line 3(f), also shields f
//     from immediate isolation.
//
// After t+1 such generations f has lost t+1 edges and line 3(g) isolates it.
// Total: t(t+1) diagnosis stages, matching the Theorem 1 bound exactly.
type EdgeMiser struct {
	T int // the fault bound t (faulty ids are 0..T-1)
}

func (e EdgeMiser) actor(step sim.StepID) int {
	g := Generation(step)
	if g < 0 || e.T == 0 {
		return -1
	}
	f := g / (e.T + 1)
	if f >= e.T {
		return -1 // budget exhausted; all faulty isolated by now
	}
	return f
}

// ReworkExchange implements sim.Adversary.
func (EdgeMiser) ReworkExchange(*sim.ExchangeCtx) {}

// ReworkSync implements sim.Adversary.
func (e EdgeMiser) ReworkSync(ctx *sim.SyncCtx) {
	f := e.actor(ctx.Step)
	if f < 0 {
		return
	}
	switch Phase(ctx.Step) {
	case "match.M":
		EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool {
			if inst.Src == f {
				return false // accuse everyone: stay out of Pmatch
			}
			return cur
		})
	case "check.det":
		EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool {
			if inst.Src == f {
				return true // false alarm: trigger diagnosis
			}
			return cur
		})
	case "diag.trust":
		// Falsely distrust exactly one still-trusted honest member (cur is
		// f's honestly computed trust bit, so cur=true means the edge is
		// fresh; ids >= T are honest). Accusing a fresh honest victim each
		// turn removes exactly one new (faulty, honest) edge per diagnosis —
		// never wasting budget on an already-removed or faulty-faulty edge,
		// which would trigger early isolation via line 3(f) or shared edge
		// counts. Pmatch always has >= n-2t >= t+1 honest members, so f
		// finds a fresh victim in each of its t+1 turns.
		done := false
		EditSyncBits(ctx, func(inst bsb.Inst, cur bool) bool {
			if inst.Src == f && inst.A == f && !done && inst.B >= e.T && cur {
				done = true
				return false
			}
			return cur
		})
	}
}
