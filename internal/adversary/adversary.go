// Package adversary is the attack library: implementations of sim.Adversary
// that model Byzantine strategies against Algorithm 1 and its substrates.
//
// The simulator hands the adversary every message and broadcast contribution
// submitted in a step — including the honest ones, modelling the paper's
// rushing adversary with complete knowledge — and lets it rewrite the traffic
// of faulty processors. Faulty processors execute the honest protocol code,
// so the adversary receives protocol-conformant traffic and deviates from it,
// which is exactly the set of behaviours available to a Byzantine processor
// in a synchronous network (it can alter message contents, not the round
// structure).
package adversary

import (
	"strconv"
	"strings"

	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

// Func adapts plain functions to sim.Adversary; nil fields mean no deviation.
type Func struct {
	Exchange func(ctx *sim.ExchangeCtx)
	Sync     func(ctx *sim.SyncCtx)
}

// ReworkExchange implements sim.Adversary.
func (f Func) ReworkExchange(ctx *sim.ExchangeCtx) {
	if f.Exchange != nil {
		f.Exchange(ctx)
	}
}

// ReworkSync implements sim.Adversary.
func (f Func) ReworkSync(ctx *sim.SyncCtx) {
	if f.Sync != nil {
		f.Sync(ctx)
	}
}

// Chain composes adversaries; each sees the traffic as left by the previous.
type Chain []sim.Adversary

// ReworkExchange implements sim.Adversary.
func (c Chain) ReworkExchange(ctx *sim.ExchangeCtx) {
	for _, a := range c {
		a.ReworkExchange(ctx)
	}
}

// ReworkSync implements sim.Adversary.
func (c Chain) ReworkSync(ctx *sim.SyncCtx) {
	for _, a := range c {
		a.ReworkSync(ctx)
	}
}

// Phase extracts the protocol phase from a step id: "g12/match.sym" yields
// "match.sym"; broadcaster-internal suffixes are stripped ("g3/match.M/eig.r2"
// also yields "match.M").
func Phase(step sim.StepID) string {
	s := string(step)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Generation extracts the generation index from a step id ("g12/..." yields
// 12); it returns -1 when the step has no generation prefix.
func Generation(step sim.StepID) int {
	s := string(step)
	if !strings.HasPrefix(s, "g") {
		return -1
	}
	s = s[1:]
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	g, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return g
}

// Insts returns the batch instance descriptors attached to a broadcast step,
// or nil when the step carries none.
func Insts(meta any) []bsb.Inst {
	insts, _ := meta.([]bsb.Inst)
	return insts
}

// EditSyncBits rewrites the oracle-broadcast contributions of faulty sources:
// for every instance whose source is faulty, fn receives the instance and the
// currently contributed bit and returns the bit to deliver. Contributions of
// honest sources are never touched.
func EditSyncBits(ctx *sim.SyncCtx, fn func(inst bsb.Inst, cur bool) bool) {
	insts := Insts(ctx.Meta)
	if insts == nil {
		return
	}
	// Per-source position counters mirror the oracle's assembly order.
	next := make([]int, ctx.N)
	edited := make(map[int][]bool, ctx.N)
	for _, inst := range insts {
		src := inst.Src
		if src < 0 || src >= ctx.N {
			continue
		}
		i := next[src]
		next[src]++
		if !ctx.Faulty[src] {
			continue
		}
		bits, ok := edited[src]
		if !ok {
			orig, _ := ctx.Vals[src].([]bool)
			bits = append([]bool(nil), orig...)
			edited[src] = bits
		}
		for len(bits) <= i {
			bits = append(bits, false)
		}
		bits[i] = fn(inst, bits[i])
		edited[src] = bits
	}
	for src, bits := range edited {
		ctx.Vals[src] = bits
	}
}

// EachFaultyMessage calls fn with a pointer to every message sent by a faulty
// processor in this step, allowing in-place mutation.
func EachFaultyMessage(ctx *sim.ExchangeCtx, fn func(from int, m *sim.Message)) {
	for from := range ctx.Out {
		if !ctx.Faulty[from] {
			continue
		}
		for i := range ctx.Out[from] {
			fn(from, &ctx.Out[from][i])
		}
	}
}
