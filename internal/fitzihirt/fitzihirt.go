// Package fitzihirt implements the probabilistic multi-valued Byzantine
// consensus baseline that the paper improves upon: Fitzi & Hirt, "Optimally
// efficient multi-valued Byzantine agreement" (PODC 2006), as characterised
// in the paper's introduction — an L-bit value is first reduced to a short
// universal-hash digest, consensus is performed on the short digests, and
// the L bits are then delivered by the processors whose input matches the
// agreed digest. Its communication complexity is O(nL + n³(n+κ)) for hash
// width κ, but it is NOT error-free: universal-hash collisions occur with
// probability ~ L/(κ·2^κ) per processor pair and can break consistency —
// exactly the deficiency the paper's error-free algorithm removes.
//
// Faithfulness notes (see DESIGN.md §3): this is a reimplementation from the
// protocol's published description, structured to mirror Algorithm 1's
// matching skeleton so that the comparison is apples-to-apples:
//
//   - matching uses hash equality (H_kj(v_i) == h_j) instead of the paper's
//     error-detecting code symbols; match vectors are broadcast identically;
//   - value dissemination to the t processors outside Pmatch uses an
//     (n, n-3t) Reed-Solomon code decoded with Berlekamp-Welch error
//     correction (up to t corrupted fragments), verified against the agreed
//     hashes, instead of FH06's player-elimination machinery. At t << n the
//     complexity envelope matches FH06; near t = n/3 this substitution pays
//     a larger constant.
//   - private per-processor hash keys stand in for FH06's joint coin; note
//     that any hash-based protocol necessarily weakens the paper's
//     "no secrets hidden from the adversary" model — which is the point of
//     the comparison.
package fitzihirt

import (
	"fmt"

	"byzcons/internal/bitio"
	"byzcons/internal/bitset"
	"byzcons/internal/bsb"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
	"byzcons/internal/hashu"
	"byzcons/internal/rs"
	"byzcons/internal/sim"
)

// Params configures one FH06-style run.
type Params struct {
	N int
	T int
	// Kappa is the universal-hash width in bits (1..16; default 16). The
	// error probability scales as ~ L/(κ·2^κ) per processor pair.
	Kappa uint
	// SymBits is the dissemination-code symbol width (default 8).
	SymBits uint
	BSB     bsb.Kind
	BSBCost int64
	Default []byte
}

// Output is the per-processor result.
type Output struct {
	Value []byte
	L     int
	// Defaulted is true when no hash-matching set existed (honest inputs
	// differ for sure) or reconstruction failed verification.
	Defaulted bool
}

func (par Params) normalized() (Params, error) {
	if par.N < 1 || par.T < 0 || 3*par.T >= par.N {
		return par, fmt.Errorf("fitzihirt: need 0 <= t < n/3, got n=%d t=%d", par.N, par.T)
	}
	if par.Kappa == 0 {
		par.Kappa = 16
	}
	if par.Kappa > 16 {
		return par, fmt.Errorf("fitzihirt: kappa=%d out of range [1,16]", par.Kappa)
	}
	if par.SymBits == 0 {
		par.SymBits = 8
	}
	if par.BSB == 0 {
		par.BSB = bsb.Oracle
	}
	if par.N > (1<<par.SymBits)-1 {
		return par, fmt.Errorf("fitzihirt: n=%d exceeds code length for c=%d", par.N, par.SymBits)
	}
	return par, nil
}

// DissemDim returns the dissemination-code dimension n-3t (min 1), which
// allows Berlekamp-Welch correction of t corrupted fragments out of the n-t
// delivered by Pmatch members.
func (par Params) DissemDim() int {
	k := par.N - 3*par.T
	if k < 1 {
		k = 1
	}
	return k
}

// PredictCost returns the modelled fault-free communication in bits:
// dissemination t(n-t)·L/(n-3t) plus key/hash broadcasts 2κ·n·B plus match
// vector broadcasts n(n-1)·B.
func (par Params) PredictCost(L int64) int64 {
	par, err := par.normalized()
	if err != nil {
		return 0
	}
	B := par.BSBCost
	if B <= 0 {
		B = bsb.DefaultOracleCost(par.N)
	}
	n := int64(par.N)
	t := int64(par.T)
	dis := t * (n - t) * L / int64(par.DissemDim())
	return dis + 2*int64(par.Kappa)*n*B + n*(n-1)*B
}

// Run executes the FH06-style protocol at processor p.
func Run(p *sim.Proc, par Params, input []byte, L int) *Output {
	par, err := par.normalized()
	if err != nil {
		p.Abort(err)
	}
	n, t := par.N, par.T
	me := p.ID
	hasher, err := hashu.New(par.Kappa)
	if err != nil {
		p.Abort(err)
	}

	// Phase 1: broadcast private hash key and own digest (2κ bits each).
	myKey := hasher.RandomKey(p.Rand)
	myHash := hasher.Sum(myKey, input, L)
	kh := append(symBits(myKey, par.Kappa), symBits(myHash, par.Kappa)...)
	var insts []bsb.Inst
	var mine []bool
	for s := 0; s < n; s++ {
		for b := 0; b < 2*int(par.Kappa); b++ {
			insts = append(insts, bsb.Inst{Src: s, Kind: "KH", A: s, B: b})
			mine = append(mine, s == me && kh[b])
		}
	}
	bcast := newBroadcaster(p, par)
	res := bcast.Broadcast("fh/keys", insts, mine, "fh.keys")
	keys := make([]gf.Sym, n)
	hashes := make([]gf.Sym, n)
	for s := 0; s < n; s++ {
		base := s * 2 * int(par.Kappa)
		keys[s] = bitsSym(res[base:base+int(par.Kappa)], par.Kappa)
		hashes[s] = bitsSym(res[base+int(par.Kappa):base+2*int(par.Kappa)], par.Kappa)
	}

	// Phase 2: broadcast match vectors. M[me][j] = "my value hashes to j's
	// digest under j's key", i.e. evidence that v_me == v_j. For honest
	// equal pairs this is certain; for unequal pairs it is false except with
	// the hash collision probability — the protocol's error source.
	M := make([]bool, n)
	for j := 0; j < n; j++ {
		M[j] = j == me || hasher.Sum(keys[j], input, L) == hashes[j]
	}
	insts = insts[:0]
	mine = mine[:0]
	for s := 0; s < n; s++ {
		for j := 0; j < n; j++ {
			if j != s {
				insts = append(insts, bsb.Inst{Src: s, Kind: "M", A: s, B: j})
				mine = append(mine, s == me && M[j])
			}
		}
	}
	res = bcast.Broadcast("fh/match", insts, mine, "fh.M")
	Mall := make([][]bool, n)
	for i := range Mall {
		Mall[i] = make([]bool, n)
		Mall[i][i] = true
	}
	for idx, inst := range insts {
		Mall[inst.A][inst.B] = res[idx]
	}
	adj := make([]bitset.Set, n)
	for i := range adj {
		adj[i] = bitset.New(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Mall[i][j] && Mall[j][i] {
				adj[i].Add(j)
				adj[j].Add(i)
			}
		}
	}
	pm := diag.FindClique(adj, bitset.Full(n), n-t)
	if pm == nil {
		return &Output{Value: defaultValue(par.Default, L), L: L, Defaulted: true}
	}
	pmSet := bitset.FromSlice(n, pm)

	// Phase 3: dissemination. Members hold the (whp common) value already;
	// they encode it with the (n, n-3t) code and send their fragment to the
	// t processors outside Pmatch, who Berlekamp-Welch-decode (tolerating up
	// to t corrupt fragments) and verify against the agreed digests.
	field, err := gf.New(par.SymBits)
	if err != nil {
		p.Abort(err)
	}
	k2 := par.DissemDim()
	code, err := rs.New(field, n, k2)
	if err != nil {
		p.Abort(err)
	}
	lanes := (L + k2*int(par.SymBits) - 1) / (k2 * int(par.SymBits))
	ic, err := rs.NewInterleaved(code, lanes)
	if err != nil {
		p.Abort(err)
	}

	var out []sim.Message
	if pmSet.Has(me) {
		data := make([]gf.Sym, ic.DataSyms())
		rd := bitio.NewReader(input)
		for i := range data {
			data[i] = gf.Sym(rd.Read(par.SymBits))
		}
		words := ic.Encode(data)
		for j := 0; j < n; j++ {
			if !pmSet.Has(j) {
				out = append(out, sim.Message{To: j, Payload: words[me], Bits: int64(ic.WordBits()), Tag: "fh.sym"})
			}
		}
	}
	in := p.Exchange("fh/dissem", out, nil)
	if pmSet.Has(me) {
		// Members decide their own value (equal to every honest member's whp).
		v := make([]byte, (L+7)/8)
		copy(v, input)
		return &Output{Value: trimBits(v, L), L: L}
	}

	// Non-member: collect fragments from members, decode with error
	// correction, verify against >= n-2t of the broadcast digests.
	var pos []int
	var words [][]gf.Sym
	seen := make(map[int]bool)
	for _, m := range in {
		if !pmSet.Has(m.From) || seen[m.From] {
			continue
		}
		w, ok := m.Payload.([]gf.Sym)
		if !ok || len(w) != lanes {
			continue
		}
		seen[m.From] = true
		pos = append(pos, m.From)
		words = append(words, w)
	}
	value, ok := decodeVerified(par, hasher, ic, pos, words, keys, hashes, pm, L)
	if !ok {
		return &Output{Value: defaultValue(par.Default, L), L: L, Defaulted: true}
	}
	return &Output{Value: value, L: L}
}

// decodeVerified reconstructs the value from member fragments and accepts it
// only when it matches at least n-2t of the members' broadcast digests (at
// least n-2t members are honest, and a wrong candidate can match at most the
// t faulty digests plus colliding honest ones).
func decodeVerified(par Params, hasher *hashu.Hasher, ic *rs.Interleaved, pos []int, words [][]gf.Sym,
	keys, hashes []gf.Sym, pm []int, L int) ([]byte, bool) {
	if len(pos) < ic.C.K {
		return nil, false
	}
	lane := make([]gf.Sym, len(words))
	data := make([]gf.Sym, ic.DataSyms())
	for l := 0; l < ic.M; l++ {
		for i, w := range words {
			lane[i] = w[l]
		}
		d, err := ic.C.CorrectErrors(pos, lane)
		if err != nil {
			return nil, false
		}
		copy(data[l*ic.C.K:(l+1)*ic.C.K], d)
	}
	w := bitio.NewWriter()
	for _, s := range data {
		w.Write(uint32(s), par.SymBits)
	}
	value := w.Truncate(L)
	matches := 0
	for _, j := range pm {
		if hasher.Sum(keys[j], value, L) == hashes[j] {
			matches++
		}
	}
	if matches < par.N-2*par.T {
		return nil, false
	}
	return value, true
}

func newBroadcaster(p *sim.Proc, par Params) bsb.Broadcaster {
	if par.BSB == bsb.Oracle && par.BSBCost > 0 {
		return bsb.NewOracle(p, par.N, par.T, par.BSBCost)
	}
	b, err := bsb.New(par.BSB, p, par.N, par.T)
	if err != nil {
		p.Abort(err)
	}
	return b
}

func symBits(s gf.Sym, width uint) []bool {
	bits := make([]bool, width)
	for i := uint(0); i < width; i++ {
		bits[i] = s>>(width-1-i)&1 == 1
	}
	return bits
}

func bitsSym(bits []bool, width uint) gf.Sym {
	var s gf.Sym
	for i := uint(0); i < width; i++ {
		s <<= 1
		if int(i) < len(bits) && bits[i] {
			s |= 1
		}
	}
	return s
}

func defaultValue(def []byte, L int) []byte {
	out := make([]byte, (L+7)/8)
	copy(out, def)
	return trimBits(out, L)
}

func trimBits(b []byte, L int) []byte {
	if rem := L % 8; rem != 0 {
		b[len(b)-1] &= byte(0xFF << (8 - uint(rem)))
	}
	return b
}
