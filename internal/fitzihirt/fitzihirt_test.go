package fitzihirt

import (
	"bytes"
	"fmt"
	"testing"

	"byzcons/internal/gf"
	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

func run(t *testing.T, par Params, inputs [][]byte, L int, faulty []int, adv sim.Adversary, seed int64) ([]*Output, *metrics.Meter) {
	t.Helper()
	res := sim.Run(sim.RunConfig{N: par.N, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return Run(p, par, inputs[p.ID], L)
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	outs := make([]*Output, par.N)
	for i, v := range res.Values {
		outs[i], _ = v.(*Output)
	}
	return outs, res.Meter
}

func same(n int, val []byte) [][]byte {
	in := make([][]byte, n)
	for i := range in {
		in[i] = val
	}
	return in
}

// honestConsistent reports whether all honest outputs agree, and whether they
// (non-defaulted) equal want.
func honestConsistent(outs []*Output, faulty []int, want []byte) (consistent, valid bool) {
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var ref *Output
	consistent, valid = true, true
	for i, o := range outs {
		if isFaulty[i] || o == nil {
			continue
		}
		if ref == nil {
			ref = o
			continue
		}
		if !bytes.Equal(o.Value, ref.Value) || o.Defaulted != ref.Defaulted {
			consistent = false
		}
	}
	if ref == nil || ref.Defaulted || (want != nil && !bytes.Equal(ref.Value, want)) {
		valid = false
	}
	return consistent, valid
}

func TestFailFreeEqualInputs(t *testing.T) {
	val := bytes.Repeat([]byte{0xD4, 0x2B}, 24)
	L := len(val) * 8
	for _, tc := range []struct{ n, tf int }{{4, 1}, {7, 2}, {10, 3}, {7, 1}} {
		t.Run(fmt.Sprintf("n%d_t%d", tc.n, tc.tf), func(t *testing.T) {
			par := Params{N: tc.n, T: tc.tf}
			outs, _ := run(t, par, same(tc.n, val), L, nil, nil, 1)
			if c, v := honestConsistent(outs, nil, val); !c || !v {
				t.Fatalf("consistent=%v valid=%v", c, v)
			}
		})
	}
}

func TestNonMembersReconstructDespiteCorruptFragments(t *testing.T) {
	// Faulty Pmatch members corrupt the fragments they send to non-members;
	// Berlekamp-Welch must correct up to t of them.
	val := bytes.Repeat([]byte{0x61}, 40)
	L := len(val) * 8
	corrupter := fragCorrupter{}
	for seed := int64(0); seed < 6; seed++ {
		par := Params{N: 7, T: 2}
		// Faulty low ids land inside the lexicographically-first Pmatch, so
		// their corrupted fragments actually reach the non-members.
		outs, _ := run(t, par, same(7, val), L, []int{0, 1}, corrupter, seed)
		if c, v := honestConsistent(outs, []int{0, 1}, val); !c || !v {
			t.Fatalf("seed %d: consistent=%v valid=%v", seed, c, v)
		}
	}
}

// fragCorrupter flips dissemination fragments sent by faulty processors.
type fragCorrupter struct{}

func (fragCorrupter) ReworkExchange(ctx *sim.ExchangeCtx) {
	if ctx.Step != "fh/dissem" {
		return
	}
	for from := range ctx.Out {
		if !ctx.Faulty[from] {
			continue
		}
		for i := range ctx.Out[from] {
			if w, ok := ctx.Out[from][i].Payload.([]gf.Sym); ok {
				c := make([]gf.Sym, len(w))
				for j, s := range w {
					c[j] = s ^ 0x5B
				}
				ctx.Out[from][i].Payload = c
			}
		}
	}
}

func (fragCorrupter) ReworkSync(*sim.SyncCtx) {}

func TestSilentMembersStillReconstruct(t *testing.T) {
	val := bytes.Repeat([]byte{0x10, 0x20, 0x30}, 16)
	L := len(val) * 8
	par := Params{N: 10, T: 3}
	outs, _ := run(t, par, same(10, val), L, []int{0, 1, 2}, dropDissem{}, 3)
	if c, v := honestConsistent(outs, []int{0, 1, 2}, val); !c || !v {
		t.Fatalf("consistent=%v valid=%v", c, v)
	}
}

type dropDissem struct{}

func (dropDissem) ReworkExchange(ctx *sim.ExchangeCtx) {
	if ctx.Step != "fh/dissem" {
		return
	}
	for from := range ctx.Out {
		if ctx.Faulty[from] {
			ctx.Out[from] = nil
		}
	}
}

func (dropDissem) ReworkSync(*sim.SyncCtx) {}

func TestAllDifferentInputsDefault(t *testing.T) {
	n := 7
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte{byte(0x10 * (i + 1))}, 16)
	}
	par := Params{N: n, T: 2, Kappa: 16}
	outs, _ := run(t, par, inputs, 16*8, nil, nil, 7)
	for i, o := range outs {
		if !o.Defaulted {
			t.Fatalf("proc %d did not default despite all-distinct inputs", i)
		}
	}
}

func TestCollisionErrorObservableAtTinyKappa(t *testing.T) {
	// The headline difference from the paper's algorithm: with κ small, two
	// honest processors holding DIFFERENT values collide under some hash keys
	// and end up in one Pmatch together, breaking consistency/validity. With
	// κ=16 the same inputs never misbehave across these seeds. This is E7's
	// mechanism in miniature.
	n := 4
	inputs := make([][]byte, n)
	a := bytes.Repeat([]byte{0xAA}, 64)
	b := bytes.Repeat([]byte{0xBB}, 64)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = a
		} else {
			inputs[i] = b
		}
	}
	L := 64 * 8
	errsAt := func(kappa uint, seeds int) int {
		errs := 0
		for seed := 0; seed < seeds; seed++ {
			par := Params{N: n, T: 1, Kappa: kappa}
			outs, _ := run(t, par, inputs, L, nil, nil, int64(seed))
			consistent, _ := honestConsistent(outs, nil, nil)
			// An error is any outcome other than "consistent decision":
			// with distinct honest inputs the protocol may legitimately
			// default, but all honest processors must say the same thing.
			agreedNonDefault := consistent && !outs[0].Defaulted
			// With two value groups of size 2 < n-t=3, a correct run must
			// default; deciding a value at all means a collision mixed the
			// groups (validity-style error), and inconsistency is an error
			// outright.
			if !consistent || agreedNonDefault {
				errs++
			}
		}
		return errs
	}
	if got := errsAt(2, 40); got == 0 {
		t.Error("κ=2: expected observable hash-collision errors, saw none")
	}
	if got := errsAt(16, 40); got != 0 {
		t.Errorf("κ=16: saw %d errors across seeds; collision probability should be ~2^-13", got)
	}
}

func TestPredictCostPositive(t *testing.T) {
	par := Params{N: 7, T: 2}
	if c := par.PredictCost(1 << 20); c <= 0 {
		t.Errorf("PredictCost = %d", c)
	}
	if par.DissemDim() != 1 {
		t.Errorf("DissemDim = %d, want 1 for n=7,t=2", par.DissemDim())
	}
	if (Params{N: 10, T: 2}).DissemDim() != 4 {
		t.Error("DissemDim wrong for n=10,t=2")
	}
}

func TestParamValidation(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 6, Seed: 1}, func(p *sim.Proc) any {
		return Run(p, Params{N: 6, T: 2}, []byte{1}, 8)
	})
	if res.Err == nil {
		t.Error("t >= n/3 accepted")
	}
}
