package bsb

import (
	"testing"

	"byzcons/internal/sim"
)

func TestProbOracleZeroEpsMatchesOracle(t *testing.T) {
	insts := mixedInsts(5, 3)
	res := sim.Run(sim.RunConfig{N: 5, Seed: 9}, func(p *sim.Proc) any {
		b := NewProbOracle(p, 5, 2, 0, 0)
		mine := make([]bool, len(insts))
		for i, inst := range insts {
			if inst.Src == p.ID {
				mine[i] = patternBits(p.ID, i)
			}
		}
		return b.Broadcast("step", insts, mine, "tag")
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	decided := make([][]bool, 5)
	for i, v := range res.Values {
		decided[i], _ = v.([]bool)
	}
	checkBroadcast(t, insts, decided, func(i int) bool { return patternBits(insts[i].Src, i) }, nil)
}

func TestProbOracleFlipsAtHighEps(t *testing.T) {
	insts := mixedInsts(5, 10)
	res := sim.Run(sim.RunConfig{N: 5, Seed: 11}, func(p *sim.Proc) any {
		b := NewProbOracle(p, 5, 2, 0, 0.5)
		mine := make([]bool, len(insts))
		for i, inst := range insts {
			if inst.Src == p.ID {
				mine[i] = patternBits(p.ID, i)
			}
		}
		return b.Broadcast("step", insts, mine, "tag")
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// With eps = 0.5 the processors' views must diverge somewhere.
	a := res.Values[0].([]bool)
	b := res.Values[1].([]bool)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("eps=0.5 produced perfectly consistent broadcast; flips not applied")
	}
}

func TestProbOracleResilience(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 7, Seed: 1}, func(p *sim.Proc) any {
		b := NewProbOracle(p, 7, 3, 0, 0)
		return b.MaxFaulty()
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := res.Values[0].(int); got != 3 {
		t.Errorf("MaxFaulty = %d, want 3 (t < n/2)", got)
	}
}

func TestProbOracleCostMatchesOracle(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 7, Seed: 1}, func(p *sim.Proc) any {
		return NewProbOracle(p, 7, 2, 0, 0.1).CostPerBit()
	})
	if got := res.Values[0].(int64); got != DefaultOracleCost(7) {
		t.Errorf("CostPerBit = %d, want %d", got, DefaultOracleCost(7))
	}
}

func TestParseProbOracle(t *testing.T) {
	k, err := ParseKind("proboracle")
	if err != nil || k != ProbOracle || k.String() != "proboracle" {
		t.Errorf("ParseKind(proboracle) = %v, %v", k, err)
	}
}
