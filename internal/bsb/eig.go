package bsb

import (
	"fmt"

	"byzcons/internal/sim"
)

// eig implements Broadcast_Single_Bit with the Lamport-Shostak-Pease
// oral-messages algorithm, expressed on the exponential information
// gathering (EIG) tree. It is deterministic, error-free and tolerates the
// optimal t < n/3, at the price of message complexity exponential in t —
// which is why the paper replaces it with Θ(n²)-bit constructions; here it
// serves as the ground-truth broadcast for end-to-end validation at small n.
//
// Tree shape: nodes are labelled by sequences of distinct processor ids
// beginning with the source; the value a processor holds at node σ·j is
// "what j told me it holds at node σ". After t+1 relay rounds, values are
// resolved bottom-up by strict majority (ties and missing values resolve to
// the default, false) and the decision is the resolved root.
type eig struct {
	p    *sim.Proc
	n, t int
	// levels caches, per source, the node labels of each tree level
	// (level l holds labels of length l), in lexicographic order. The
	// enumeration is identical at every processor, which is what lets
	// payloads be flat bit vectors.
	levels map[int][][]string
}

// NewEIG returns the EIG broadcaster; it requires n > 3t.
func NewEIG(p *sim.Proc, n, t int) (Broadcaster, error) {
	if n <= 3*t {
		return nil, fmt.Errorf("bsb: EIG requires n > 3t, got n=%d t=%d", n, t)
	}
	return &eig{p: p, n: n, t: t, levels: make(map[int][][]string)}, nil
}

func (e *eig) MaxFaulty() int { return (e.n - 1) / 3 }

// CostPerBit returns the worst-case bits to broadcast one bit: at round r,
// every processor sends each level-(r-1) node value to n-1 others.
func (e *eig) CostPerBit() int64 {
	var total int64
	levelSize := int64(1)
	remaining := int64(e.n - 1)
	// Round 1: the source sends 1 bit to n-1 processors.
	total = int64(e.n - 1)
	for r := 2; r <= e.t+1; r++ {
		// Level r-1 has levelSize nodes; each of n processors relays at most
		// all of them to n-1 others.
		total += levelSize * int64(e.n) * int64(e.n-1)
		levelSize *= remaining
		remaining--
	}
	return total
}

// levelNodes returns the labels of tree level l (1-based; level 1 is {⟨src⟩})
// for the given source, cached.
func (e *eig) levelNodes(src, l int) []string {
	lv, ok := e.levels[src]
	if !ok {
		lv = make([][]string, e.t+2)
		lv[1] = []string{string([]byte{byte(src)})}
		for d := 2; d <= e.t+1; d++ {
			var next []string
			for _, σ := range lv[d-1] {
				for j := 0; j < e.n; j++ {
					if !pathContains(σ, j) {
						next = append(next, σ+string([]byte{byte(j)}))
					}
				}
			}
			lv[d] = next
		}
		e.levels[src] = lv
	}
	return lv[l]
}

func pathContains(σ string, j int) bool {
	for i := 0; i < len(σ); i++ {
		if int(σ[i]) == j {
			return true
		}
	}
	return false
}

func (e *eig) Broadcast(step sim.StepID, insts []Inst, mine []bool, tag string) []bool {
	if len(insts) == 0 {
		return nil
	}
	vals := make([]map[string]bool, len(insts))
	for i := range vals {
		vals[i] = make(map[string]bool)
	}

	// Round 1: each source sends its bit for each of its instances to all.
	var myBits []bool
	for i, inst := range insts {
		if inst.Src == e.p.ID {
			b := boolsAt(mine, i)
			myBits = append(myBits, b)
			vals[i][pathKey(inst.Src)] = b
		}
	}
	out := make([]sim.Message, 0, e.n-1)
	for r := 0; r < e.n; r++ {
		if r != e.p.ID && len(myBits) > 0 {
			out = append(out, sim.Message{To: r, Payload: myBits, Bits: int64(len(myBits)), Tag: tag})
		}
	}
	in := e.p.Exchange(step+"/eig.r1", out, insts)
	bySender := payloadsBySender(in, e.n)
	counter := make([]int, e.n)
	for i, inst := range insts {
		if inst.Src != e.p.ID {
			vals[i][pathKey(inst.Src)] = boolsAt(bySender[inst.Src], counter[inst.Src])
			counter[inst.Src]++
		}
	}

	// Rounds 2..t+1: relay the previous level. A processor also "relays to
	// itself": val[σ·me] = val[σ] (omitting this self-child biases the
	// majority resolution toward the default and breaks validity).
	for round := 2; round <= e.t+1; round++ {
		var payload []bool
		for i, inst := range insts {
			for _, σ := range e.levelNodes(inst.Src, round-1) {
				if !pathContains(σ, e.p.ID) {
					payload = append(payload, vals[i][σ])
					vals[i][σ+string([]byte{byte(e.p.ID)})] = vals[i][σ]
				}
			}
		}
		out = out[:0]
		for r := 0; r < e.n; r++ {
			if r != e.p.ID && len(payload) > 0 {
				out = append(out, sim.Message{To: r, Payload: payload, Bits: int64(len(payload)), Tag: tag})
			}
		}
		in = e.p.Exchange(sim.StepID(fmt.Sprintf("%s/eig.r%d", step, round)), out, insts)
		bySender = payloadsBySender(in, e.n)
		for j := 0; j < e.n; j++ {
			if j == e.p.ID {
				continue
			}
			pj := bySender[j]
			idx := 0
			for i, inst := range insts {
				for _, σ := range e.levelNodes(inst.Src, round-1) {
					if pathContains(σ, j) {
						continue
					}
					vals[i][σ+string([]byte{byte(j)})] = boolsAt(pj, idx)
					idx++
				}
			}
		}
	}

	// Resolve bottom-up.
	decided := make([]bool, len(insts))
	for i, inst := range insts {
		decided[i] = e.resolve(vals[i], pathKey(inst.Src), 1)
	}
	return alignFaulty(e.p, step, decided)
}

// resolve computes the resolved value of node σ at level l: leaves use the
// stored value; internal nodes take the strict majority of their children,
// defaulting to false on ties.
func (e *eig) resolve(vals map[string]bool, σ string, l int) bool {
	if l == e.t+1 {
		return vals[σ]
	}
	trues, total := 0, 0
	for j := 0; j < e.n; j++ {
		if pathContains(σ, j) {
			continue
		}
		total++
		if e.resolve(vals, σ+string([]byte{byte(j)}), l+1) {
			trues++
		}
	}
	return 2*trues > total
}

func pathKey(src int) string { return string([]byte{byte(src)}) }

// payloadsBySender indexes the received bool-vector payloads by sender,
// ignoring duplicate or non-conforming messages (a duplicate sender entry is
// Byzantine behaviour; the first message wins deterministically since
// inboxes are sorted by sender).
func payloadsBySender(in []sim.Message, n int) [][]bool {
	out := make([][]bool, n)
	for _, m := range in {
		if m.From >= 0 && m.From < n && out[m.From] == nil {
			out[m.From] = asBools(m.Payload)
		}
	}
	return out
}
