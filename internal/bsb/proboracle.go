package bsb

import (
	"byzcons/internal/sim"
)

// probOracle models the Section 4 modification: substituting the error-free
// Broadcast_Single_Bit with a *probabilistically correct* 1-bit broadcast
// that tolerates more failures (the paper suggests the authenticated
// constructions of Pfitzmann-Waidner / Dolev-Strong, which reach t >= n/3 at
// the price of a non-zero failure probability). The paper claims the
// modified consensus then tolerates as many faults as the broadcast does and
// errs only when a broadcast instance errs.
//
// The model: delivery works like the ideal oracle, but every receiver
// independently flips each delivered bit with probability eps — a broadcast
// instance has therefore failed (inconsistent delivery) with probability at
// most n·eps. eps = 0 gives a perfect broadcast at resilience t < n/2,
// isolating the fault-tolerance claim from the failure-probability claim.
type probOracle struct {
	inner Broadcaster
	p     *sim.Proc
	n     int
	eps   float64
}

// NewProbOracle returns the probabilistic broadcaster; see probOracle.
// costPerBit <= 0 selects DefaultOracleCost(n).
func NewProbOracle(p *sim.Proc, n, t int, costPerBit int64, eps float64) Broadcaster {
	return &probOracle{inner: NewOracle(p, n, t, costPerBit), p: p, n: n, eps: eps}
}

func (o *probOracle) CostPerBit() int64 { return o.inner.CostPerBit() }

// MaxFaulty reflects the higher resilience of authenticated 1-bit broadcast:
// the consensus construction on top still needs an honest majority
// (n - 2t >= 1 code dimension and the diagnosis-graph counting arguments),
// so t < n/2.
func (o *probOracle) MaxFaulty() int { return (o.n - 1) / 2 }

func (o *probOracle) Broadcast(step sim.StepID, insts []Inst, mine []bool, tag string) []bool {
	decided := o.inner.Broadcast(step, insts, mine, tag)
	if o.eps <= 0 {
		return decided
	}
	// Independent per-receiver corruption; faulty processors' local views are
	// irrelevant, and honest receivers flipping independently is exactly an
	// inconsistent (failed) broadcast.
	for i := range decided {
		if o.p.Rand.Float64() < o.eps {
			decided[i] = !decided[i]
		}
	}
	return decided
}
