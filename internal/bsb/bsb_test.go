package bsb

import (
	"fmt"
	"testing"

	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

// runBroadcast executes one batch of broadcasts under the given kind and
// returns the honest processors' decided vectors plus the meter.
func runBroadcast(t *testing.T, kind Kind, n, tf int, insts []Inst, bits func(p int, i int) bool,
	faulty []int, adv sim.Adversary, seed int64) ([][]bool, *metrics.Meter) {
	t.Helper()
	res := sim.Run(sim.RunConfig{N: n, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		b, err := New(kind, p, n, tf)
		if err != nil {
			p.Abort(err)
		}
		mine := make([]bool, len(insts))
		for i, inst := range insts {
			if inst.Src == p.ID {
				mine[i] = bits(p.ID, i)
			}
		}
		return b.Broadcast("step", insts, mine, "tag")
	})
	if res.Err != nil {
		t.Fatalf("broadcast run failed: %v", res.Err)
	}
	out := make([][]bool, n)
	for i, v := range res.Values {
		out[i], _ = v.([]bool)
	}
	return out, res.Meter
}

func isFaultyIn(faulty []int, p int) bool {
	for _, f := range faulty {
		if f == p {
			return true
		}
	}
	return false
}

// checkBroadcast asserts consistency among honest processors and validity
// for honest sources.
func checkBroadcast(t *testing.T, insts []Inst, decided [][]bool, want func(i int) bool, faulty []int) {
	t.Helper()
	var ref []bool
	refID := -1
	for p, d := range decided {
		if isFaultyIn(faulty, p) || d == nil {
			continue
		}
		if ref == nil {
			ref, refID = d, p
			continue
		}
		for i := range insts {
			if d[i] != ref[i] {
				t.Fatalf("consistency violated: inst %d differs between procs %d and %d", i, refID, p)
			}
		}
	}
	if ref == nil {
		t.Fatal("no honest decisions")
	}
	for i, inst := range insts {
		if !isFaultyIn(faulty, inst.Src) && want != nil {
			if ref[i] != want(i) {
				t.Errorf("validity violated: inst %d (src %d) decided %v, want %v", i, inst.Src, ref[i], want(i))
			}
		}
	}
}

// mixedInsts builds one instance per (source, idx) pair covering all sources.
func mixedInsts(n, perSrc int) []Inst {
	var insts []Inst
	for s := 0; s < n; s++ {
		for i := 0; i < perSrc; i++ {
			insts = append(insts, Inst{Src: s, Kind: "T", A: s, B: i})
		}
	}
	return insts
}

// patternBits gives a deterministic, source- and index-dependent bit.
func patternBits(p, i int) bool { return (p+i)%3 == 0 }

func TestAllKindsFaultFree(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		n, t int
	}{
		{Oracle, 4, 1}, {Oracle, 7, 2}, {EIG, 4, 1}, {EIG, 7, 2}, {EIG, 5, 1},
		{PhaseKing, 5, 1}, {PhaseKing, 9, 2}, {Oracle, 1, 0}, {EIG, 2, 0}, {PhaseKing, 2, 0},
	} {
		t.Run(fmt.Sprintf("%v_n%d_t%d", tc.kind, tc.n, tc.t), func(t *testing.T) {
			insts := mixedInsts(tc.n, 3)
			decided, _ := runBroadcast(t, tc.kind, tc.n, tc.t, insts, patternBits, nil, nil, 1)
			checkBroadcast(t, insts, decided, func(i int) bool { return patternBits(insts[i].Src, i) }, nil)
		})
	}
}

// equivocatingSource makes faulty sources send different bits to different
// receivers in the initial dispersal round of EIG / PhaseKing.
type equivocatingSource struct{}

func (equivocatingSource) ReworkExchange(ctx *sim.ExchangeCtx) {
	step := string(ctx.Step)
	if !(len(step) > 3 && (step[len(step)-3:] == ".r1" || step[len(step)-4:] == ".src")) {
		return
	}
	for from := range ctx.Out {
		if !ctx.Faulty[from] {
			continue
		}
		for i := range ctx.Out[from] {
			m := &ctx.Out[from][i]
			if bits, ok := m.Payload.([]bool); ok {
				flipped := make([]bool, len(bits))
				for j, b := range bits {
					flipped[j] = b != (m.To%2 == 0) // lie to even receivers
				}
				m.Payload = flipped
			}
		}
	}
}

func (equivocatingSource) ReworkSync(ctx *sim.SyncCtx) {}

func TestEquivocatingSourceStillConsistent(t *testing.T) {
	// A Byzantine source sends different bits to different receivers; all
	// honest processors must still decide identically (the broadcast's whole
	// point). Validity is only claimed for honest sources.
	for _, tc := range []struct {
		kind Kind
		n, t int
	}{
		{EIG, 4, 1}, {EIG, 7, 2}, {PhaseKing, 5, 1}, {PhaseKing, 9, 2},
	} {
		t.Run(fmt.Sprintf("%v_n%d_t%d", tc.kind, tc.n, tc.t), func(t *testing.T) {
			insts := mixedInsts(tc.n, 2)
			faulty := []int{0}
			decided, _ := runBroadcast(t, tc.kind, tc.n, tc.t, insts, patternBits, faulty, equivocatingSource{}, 3)
			checkBroadcast(t, insts, decided, func(i int) bool { return patternBits(insts[i].Src, i) }, faulty)
		})
	}
}

// relayCorrupter randomly corrupts every bool payload sent by faulty
// processors in any round (dispersal and relay alike).
type relayCorrupter struct{}

func (relayCorrupter) ReworkExchange(ctx *sim.ExchangeCtx) {
	for from := range ctx.Out {
		if !ctx.Faulty[from] {
			continue
		}
		for i := range ctx.Out[from] {
			m := &ctx.Out[from][i]
			if bits, ok := m.Payload.([]bool); ok {
				flipped := make([]bool, len(bits))
				for j, b := range bits {
					flipped[j] = b != (ctx.Rand.Float64() < 0.5)
				}
				m.Payload = flipped
			}
		}
	}
}

func (relayCorrupter) ReworkSync(ctx *sim.SyncCtx) {}

func TestCorruptRelaysTolerated(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		n, t int
	}{
		{EIG, 4, 1}, {EIG, 7, 2}, {PhaseKing, 5, 1}, {PhaseKing, 9, 2},
	} {
		for seed := int64(0); seed < 5; seed++ {
			t.Run(fmt.Sprintf("%v_n%d_t%d_s%d", tc.kind, tc.n, tc.t, seed), func(t *testing.T) {
				insts := mixedInsts(tc.n, 2)
				faulty := []int{tc.n - 1} // honest sources include 0..n-2
				decided, _ := runBroadcast(t, tc.kind, tc.n, tc.t, insts, patternBits, faulty, relayCorrupter{}, seed)
				checkBroadcast(t, insts, decided, func(i int) bool { return patternBits(insts[i].Src, i) }, faulty)
			})
		}
	}
}

func TestTwoFaultyRelaysEIG(t *testing.T) {
	insts := mixedInsts(7, 1)
	faulty := []int{2, 4}
	for seed := int64(0); seed < 5; seed++ {
		decided, _ := runBroadcast(t, EIG, 7, 2, insts, patternBits, faulty, relayCorrupter{}, seed)
		checkBroadcast(t, insts, decided, func(i int) bool { return patternBits(insts[i].Src, i) }, faulty)
	}
}

func TestOracleCostAccounting(t *testing.T) {
	n, tf := 7, 2
	insts := mixedInsts(n, 4) // 28 instances
	_, meter := runBroadcast(t, Oracle, n, tf, insts, patternBits, nil, nil, 1)
	want := DefaultOracleCost(n) * int64(len(insts))
	if got := meter.TotalBits(); got != want {
		t.Errorf("oracle metered %d bits, want %d", got, want)
	}
}

func TestResilienceValidation(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 4, Seed: 1}, func(p *sim.Proc) any {
		_, err := NewEIG(p, 4, 2) // 4 <= 3*2
		return err
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, v := range res.Values {
		if v == nil {
			t.Error("EIG accepted n <= 3t")
		}
	}
	res = sim.Run(sim.RunConfig{N: 8, Seed: 1}, func(p *sim.Proc) any {
		_, err := NewPhaseKing(p, 8, 2) // 8 <= 4*2
		return err
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, v := range res.Values {
		if v == nil {
			t.Error("PhaseKing accepted n <= 4t")
		}
	}
}

func TestEmptyBatchIsFree(t *testing.T) {
	for _, kind := range []Kind{Oracle, EIG, PhaseKing} {
		decided, meter := runBroadcast(t, kind, 5, 1, nil, patternBits, nil, nil, 1)
		for _, d := range decided {
			if len(d) != 0 {
				t.Errorf("%v: non-empty result for empty batch", kind)
			}
		}
		if meter.TotalBits() != 0 {
			t.Errorf("%v: empty batch cost %d bits", kind, meter.TotalBits())
		}
	}
}

func TestCostPerBitPositive(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 7, Seed: 1}, func(p *sim.Proc) any {
		var out []int64
		for _, kind := range []Kind{Oracle, EIG, PhaseKing} {
			b, err := New(kind, p, 7, 1)
			if err != nil {
				p.Abort(err)
			}
			out = append(out, b.CostPerBit())
		}
		return out
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	costs := res.Values[0].([]int64)
	if costs[0] != 2*49 {
		t.Errorf("oracle cost = %d, want 98", costs[0])
	}
	for i, c := range costs {
		if c <= 0 {
			t.Errorf("cost[%d] = %d", i, c)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"oracle", "eig", "phaseking"} {
		k, err := ParseKind(name)
		if err != nil || k.String() != name {
			t.Errorf("ParseKind(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMeasuredCostWithinCostPerBit(t *testing.T) {
	// The closed-form CostPerBit must upper-bound the measured per-instance
	// cost for the real broadcasters (it assumes worst-case relay counts).
	for _, tc := range []struct {
		kind Kind
		n, t int
	}{
		{EIG, 7, 2}, {PhaseKing, 9, 2},
	} {
		insts := mixedInsts(tc.n, 2)
		_, meter := runBroadcast(t, tc.kind, tc.n, tc.t, insts, patternBits, nil, nil, 1)
		res := sim.Run(sim.RunConfig{N: tc.n, Seed: 1}, func(p *sim.Proc) any {
			b, _ := New(tc.kind, p, tc.n, tc.t)
			return b.CostPerBit()
		})
		bound := res.Values[0].(int64) * int64(len(insts))
		if got := meter.TotalBits(); got > bound {
			t.Errorf("%v: measured %d bits > closed-form bound %d", tc.kind, got, bound)
		}
	}
}
