// Package bsb implements Broadcast_Single_Bit, the error-free 1-bit Byzantine
// broadcast primitive that Algorithm 1 uses to distribute all of its control
// information (match vectors, detection flags, diagnostic symbols and trust
// vectors). The paper treats this primitive as a black box with communication
// cost B = Θ(n²) bits per broadcast bit, citing Berman-Garay-Perry and
// Coan-Welch; it guarantees:
//
//   - Consistency: all honest processors output the same bit, and
//   - Validity: if the source is honest, that bit is the source's input.
//
// Three interchangeable implementations are provided:
//
//   - Oracle: an ideal broadcast charged at a configurable B(n) (default 2n²)
//     with exactly the contract above — a faulty source yields one
//     adversary-chosen bit delivered identically to all. Used by the
//     complexity experiments, mirroring the paper's B = Θ(n²) accounting.
//   - EIG: the Lamport-Shostak-Pease oral-messages algorithm on the
//     exponential information gathering tree. Error-free at the optimal
//     resilience t < n/3, but with message complexity exponential in t;
//     used to validate the full stack end-to-end under attack at small n.
//   - PhaseKing: Berman-Garay-Perry phase-king consensus prefixed with a
//     source round. Error-free with polynomial cost O(t·n²) bits per bit,
//     at resilience t < n/4.
//
// All implementations run whole batches of instances in shared rounds, so a
// generation's n(n-1) match-vector broadcasts cost the same number of
// synchronous rounds as a single one.
package bsb

import (
	"fmt"

	"byzcons/internal/sim"
)

// Inst identifies one broadcast instance in a batch. Src is the broadcasting
// processor. Kind and the A/B indices are protocol-level labels (for example
// {Kind: "M", A: i, B: j} for entry M_i[j]) that are exposed to the adversary
// as step metadata, so attacks can target specific protocol fields.
type Inst struct {
	Src  int
	Kind string
	A, B int
}

// Broadcaster runs batches of 1-bit Byzantine broadcasts. One Broadcaster is
// constructed per processor per run; all processors must call Broadcast with
// identical step, insts and tag (they derive them from common state).
type Broadcaster interface {
	// Broadcast runs one batch. mine[i] is this processor's input for
	// instance i and is consulted only where insts[i].Src is this processor.
	// The returned slice holds the decided bit of every instance and is
	// identical at all honest processors.
	Broadcast(step sim.StepID, insts []Inst, mine []bool, tag string) []bool
	// CostPerBit returns the (worst-case) communication cost B of
	// broadcasting one bit, used by the D* tuning formula (Eq. 2).
	CostPerBit() int64
	// MaxFaulty returns the largest t this implementation tolerates.
	MaxFaulty() int
}

// Kind selects a Broadcast_Single_Bit implementation.
type Kind int

// Available broadcaster kinds.
const (
	Oracle Kind = iota + 1
	EIG
	PhaseKing
	// ProbOracle is the Section 4 substitution: a probabilistically correct
	// broadcast tolerating t < n/2, failing (delivering inconsistently) with
	// a configurable probability. See NewProbOracle.
	ProbOracle
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Oracle:
		return "oracle"
	case EIG:
		return "eig"
	case PhaseKing:
		return "phaseking"
	case ProbOracle:
		return "proboracle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "oracle":
		return Oracle, nil
	case "eig":
		return EIG, nil
	case "phaseking":
		return PhaseKing, nil
	case "proboracle":
		return ProbOracle, nil
	default:
		return 0, fmt.Errorf("bsb: unknown broadcaster %q (want oracle, eig, phaseking or proboracle)", s)
	}
}

// New constructs the given kind of broadcaster for processor p in a network
// of n processors with at most t faults. ProbOracle is constructed with a
// zero failure probability here; use NewProbOracle directly to set one.
func New(kind Kind, p *sim.Proc, n, t int) (Broadcaster, error) {
	switch kind {
	case Oracle:
		return NewOracle(p, n, t, 0), nil
	case EIG:
		return NewEIG(p, n, t)
	case PhaseKing:
		return NewPhaseKing(p, n, t)
	case ProbOracle:
		return NewProbOracle(p, n, t, 0, 0), nil
	default:
		return nil, fmt.Errorf("bsb: unknown kind %d", kind)
	}
}

// boolsAt returns v[i] treating out-of-range or missing entries as the
// default bit (false). Broadcast implementations use it so that malformed
// adversarial payloads degrade to a consistent default instead of a panic.
func boolsAt(v []bool, i int) bool {
	if i < 0 || i >= len(v) {
		return false
	}
	return v[i]
}

// asBools converts an arbitrary payload to []bool, returning nil when the
// payload is not a bool slice (adversaries may submit anything).
func asBools(payload any) []bool {
	b, _ := payload.([]bool)
	return b
}

// alignFaulty keeps the simulation synchronised: EIG and phase-king give
// agreement guarantees to honest processors only, so a faulty processor's
// locally resolved bits may diverge — and since faulty goroutines execute the
// honest code to preserve the round structure, a diverging view would split
// their control flow. A zero-cost Sync lets faulty processors adopt an honest
// processor's decision vector; honest processors keep their own. This is
// harness scaffolding, not protocol traffic (0 bits), and mirrors the fact
// that a real Byzantine processor's local "decision" is meaningless anyway.
func alignFaulty(p *sim.Proc, step sim.StepID, decided []bool) []bool {
	vals := p.Sync(step+"/align", decided, 0, "align", nil)
	if !p.Faulty {
		return decided
	}
	if h := p.FirstHonest(); h >= 0 {
		if v, ok := vals[h].([]bool); ok && len(v) == len(decided) {
			return v
		}
	}
	return decided
}
