package bsb

import (
	"fmt"

	"byzcons/internal/sim"
)

// phaseKing implements Broadcast_Single_Bit as a source round followed by
// Berman-Garay-Perry phase-king binary consensus on the received bits. It is
// deterministic and error-free with polynomial communication O(t·n²) bits per
// broadcast bit, at resilience t < n/4 (the simple, non-recursive phase king;
// the recursive variant the paper cites reaches t < n/3 at Θ(n²) bits but is
// substantially more intricate — see DESIGN.md §3).
//
// Each phase k (k = 0..t) has two rounds: all processors exchange their
// current preferences and compute the majority value and its multiplicity;
// then the phase's king (processor k) announces its majority value, which a
// processor adopts unless its own multiplicity exceeded n/2 + t. With t+1
// phases at least one king is honest, which establishes agreement; the
// n/2 + t threshold preserves it afterwards, and unanimity is never broken
// (validity) because n > 4t.
type phaseKing struct {
	p    *sim.Proc
	n, t int
}

// NewPhaseKing returns the phase-king broadcaster; it requires n > 4t.
func NewPhaseKing(p *sim.Proc, n, t int) (Broadcaster, error) {
	if n <= 4*t {
		return nil, fmt.Errorf("bsb: phase king requires n > 4t, got n=%d t=%d", n, t)
	}
	return &phaseKing{p: p, n: n, t: t}, nil
}

func (pk *phaseKing) MaxFaulty() int { return (pk.n - 1) / 4 }

// CostPerBit returns the bits needed to broadcast one bit: the source round
// plus t+1 phases of an all-to-all round and a king round.
func (pk *phaseKing) CostPerBit() int64 {
	n := int64(pk.n)
	return (n - 1) + int64(pk.t+1)*(n*(n-1)+(n-1))
}

func (pk *phaseKing) Broadcast(step sim.StepID, insts []Inst, mine []bool, tag string) []bool {
	if len(insts) == 0 {
		return nil
	}
	cur := make([]bool, len(insts))

	// Source round: each source disperses its bits; everyone adopts the
	// received bit as its initial preference for that instance.
	var myBits []bool
	for i, inst := range insts {
		if inst.Src == pk.p.ID {
			b := boolsAt(mine, i)
			myBits = append(myBits, b)
			cur[i] = b
		}
	}
	out := make([]sim.Message, 0, pk.n-1)
	for r := 0; r < pk.n; r++ {
		if r != pk.p.ID && len(myBits) > 0 {
			out = append(out, sim.Message{To: r, Payload: myBits, Bits: int64(len(myBits)), Tag: tag})
		}
	}
	in := pk.p.Exchange(step+"/pk.src", out, insts)
	bySender := payloadsBySender(in, pk.n)
	counter := make([]int, pk.n)
	for i, inst := range insts {
		if inst.Src != pk.p.ID {
			cur[i] = boolsAt(bySender[inst.Src], counter[inst.Src])
			counter[inst.Src]++
		}
	}

	maj := make([]bool, len(insts))
	mult := make([]int, len(insts))
	for k := 0; k <= pk.t; k++ {
		// Round 1: everyone exchanges current preferences.
		payload := make([]bool, len(insts))
		copy(payload, cur)
		out = out[:0]
		for r := 0; r < pk.n; r++ {
			if r != pk.p.ID {
				out = append(out, sim.Message{To: r, Payload: payload, Bits: int64(len(payload)), Tag: tag})
			}
		}
		in = pk.p.Exchange(sim.StepID(fmt.Sprintf("%s/pk.p%d.all", step, k)), out, insts)
		bySender = payloadsBySender(in, pk.n)
		for i := range insts {
			trues := 0
			if cur[i] {
				trues++
			}
			for j := 0; j < pk.n; j++ {
				if j != pk.p.ID && boolsAt(bySender[j], i) {
					trues++
				}
			}
			if 2*trues > pk.n {
				maj[i], mult[i] = true, trues
			} else {
				maj[i], mult[i] = false, pk.n-trues
			}
		}

		// Round 2: the king announces its majority values.
		out = out[:0]
		if pk.p.ID == k {
			kingPayload := make([]bool, len(insts))
			copy(kingPayload, maj)
			for r := 0; r < pk.n; r++ {
				if r != pk.p.ID {
					out = append(out, sim.Message{To: r, Payload: kingPayload, Bits: int64(len(kingPayload)), Tag: tag})
				}
			}
		}
		in = pk.p.Exchange(sim.StepID(fmt.Sprintf("%s/pk.p%d.king", step, k)), out, insts)
		bySender = payloadsBySender(in, pk.n)
		kingMaj := bySender[k]
		for i := range insts {
			if mult[i] > pk.n/2+pk.t {
				cur[i] = maj[i]
			} else if pk.p.ID == k {
				cur[i] = maj[i]
			} else {
				cur[i] = boolsAt(kingMaj, i)
			}
		}
	}
	return alignFaulty(pk.p, step, cur)
}
