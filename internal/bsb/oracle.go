package bsb

import (
	"byzcons/internal/sim"
)

// DefaultOracleCost returns the default charged cost B(n) = 2n² bits per
// broadcast bit, the order achieved by the error-free 1-bit broadcast
// algorithms the paper cites (Berman-Garay-Perry; Coan-Welch).
func DefaultOracleCost(n int) int64 { return 2 * int64(n) * int64(n) }

// oracle is an ideal Broadcast_Single_Bit: delivery is performed by the
// simulator's Sync service, which gives exactly the error-free broadcast
// contract (a faulty source's bit is chosen by the adversary but delivered
// identically to everyone). Each broadcast bit is charged costPerBit.
type oracle struct {
	p          *sim.Proc
	n, t       int
	costPerBit int64
	// next and out are per-broadcaster scratch: a broadcaster serves one
	// fiber, and the caller consumes the returned batch before its next
	// Broadcast call, so both recycle across batches. (The contribution
	// slice myBits is NOT reusable: the simulator delivers it by reference
	// and peers may still be reading it while this processor runs ahead.)
	next []int
	out  []bool
}

// NewOracle returns an oracle broadcaster charging costPerBit bits per
// broadcast bit; costPerBit <= 0 selects DefaultOracleCost(n).
func NewOracle(p *sim.Proc, n, t int, costPerBit int64) Broadcaster {
	if costPerBit <= 0 {
		costPerBit = DefaultOracleCost(n)
	}
	return &oracle{p: p, n: n, t: t, costPerBit: costPerBit}
}

// Rebind re-targets a pooled oracle at a new processor handle (the
// speculative pipeline reuses fiber contexts across generations).
func (o *oracle) Rebind(p *sim.Proc) { o.p = p }

func (o *oracle) CostPerBit() int64 { return o.costPerBit }

func (o *oracle) MaxFaulty() int { return (o.n - 1) / 3 }

func (o *oracle) Broadcast(step sim.StepID, insts []Inst, mine []bool, tag string) []bool {
	// Contribute my bits for the instances I am the source of, in batch order.
	var myBits []bool
	for i, inst := range insts {
		if inst.Src == o.p.ID {
			myBits = append(myBits, boolsAt(mine, i))
		}
	}
	cost := o.costPerBit * int64(len(myBits))
	vals := o.p.Sync(step, myBits, cost, tag, insts)

	// Assemble the decided bits: instance i takes the next bit from its
	// source's contribution. All processors read the same vals slice, so a
	// faulty source that submitted garbage still yields one consistent bit.
	if cap(o.next) < o.n {
		o.next = make([]int, o.n)
	}
	next := o.next[:o.n]
	for i := range next {
		next[i] = 0
	}
	if cap(o.out) < len(insts) {
		o.out = make([]bool, len(insts))
	}
	out := o.out[:len(insts)]
	for i := range out {
		out[i] = false
	}
	for i, inst := range insts {
		src := inst.Src
		if src < 0 || src >= o.n {
			continue // leave default false; caller bug guarded in tests
		}
		out[i] = boolsAt(asBools(vals[src]), next[src])
		next[src]++
	}
	return out
}
