package bitio

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: reading any data in width-c chunks and writing the chunks
// back must reproduce the input exactly — the property the generation
// splitter/merger depends on for validity.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, uint8(8))
	f.Add([]byte{0x01}, uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xFF}, uint8(13))
	f.Add([]byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8) {
		width := uint(widthSeed%32) + 1
		r := NewReader(data)
		w := NewWriter()
		for w.Bits() < len(data)*8 {
			w.Write(r.Read(width), width)
		}
		if !bytes.Equal(w.Truncate(len(data)*8), data) {
			t.Fatalf("round trip failed for width %d", width)
		}
	})
}

// FuzzTruncateInvariant: truncation never exposes bits past the limit.
func FuzzTruncateInvariant(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF}, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, nbitsSeed uint8) {
		w := NewWriter()
		for _, b := range data {
			w.Write(uint32(b), 8)
		}
		nbits := int(nbitsSeed) % (len(data)*8 + 9)
		out := w.Truncate(nbits)
		if len(out) != (nbits+7)/8 {
			t.Fatalf("Truncate(%d) returned %d bytes", nbits, len(out))
		}
		if rem := nbits % 8; rem != 0 && len(out) > 0 {
			if out[len(out)-1]&(0xFF>>uint(rem)) != 0 {
				t.Fatalf("bits beyond %d not cleared", nbits)
			}
		}
	})
}
