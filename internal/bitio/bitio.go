// Package bitio provides bit-granular readers and writers used to pack
// L-bit consensus values into c-bit field symbols and back. Bits are
// consumed most-significant-bit first within each byte, so packing followed
// by unpacking is the identity for any symbol width.
package bitio

import "fmt"

// Reader reads fixed-width bit chunks from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Read returns the next width bits as an integer (MSB first). Reading past
// the end yields zero bits, which implements the zero-padding of the final
// consensus generation.
func (r *Reader) Read(width uint) uint32 {
	if width > 32 {
		panic(fmt.Sprintf("bitio: width %d > 32", width))
	}
	var v uint32
	for i := uint(0); i < width; i++ {
		v <<= 1
		byteIdx := r.pos / 8
		if byteIdx < len(r.data) {
			bit := (r.data[byteIdx] >> (7 - uint(r.pos)%8)) & 1
			v |= uint32(bit)
		}
		r.pos++
	}
	return v
}

// Writer writes fixed-width bit chunks to a growing byte slice.
type Writer struct {
	data []byte
	pos  int // bit position
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Write appends the low width bits of v (MSB first).
func (w *Writer) Write(v uint32, width uint) {
	if width > 32 {
		panic(fmt.Sprintf("bitio: width %d > 32", width))
	}
	for i := int(width) - 1; i >= 0; i-- {
		byteIdx := w.pos / 8
		if byteIdx >= len(w.data) {
			w.data = append(w.data, 0)
		}
		if v>>(uint(i))&1 != 0 {
			w.data[byteIdx] |= 1 << (7 - uint(w.pos)%8)
		}
		w.pos++
	}
}

// Bits returns the number of bits written.
func (w *Writer) Bits() int { return w.pos }

// Bytes returns the written data, zero-padded to a whole number of bytes.
func (w *Writer) Bytes() []byte { return w.data }

// Truncate returns the first nbits of the written data, zero-padded to a
// whole number of bytes, without modifying the writer.
func (w *Writer) Truncate(nbits int) []byte {
	nbytes := (nbits + 7) / 8
	out := make([]byte, nbytes)
	copy(out, w.data)
	if nbytes > len(w.data) {
		return out
	}
	// Clear any bits past nbits in the final byte.
	if rem := nbits % 8; rem != 0 {
		out[nbytes-1] &= byte(0xFF << (8 - uint(rem)))
	}
	return out
}
