// Package bitio provides bit-granular readers and writers used to pack
// L-bit consensus values into c-bit field symbols and back. Bits are
// consumed most-significant-bit first within each byte, so packing followed
// by unpacking is the identity for any symbol width.
package bitio

import "fmt"

// Reader reads fixed-width bit chunks from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Read returns the next width bits as an integer (MSB first). Reading past
// the end yields zero bits, which implements the zero-padding of the final
// consensus generation. Bits are consumed byte-at-a-time, not bit-at-a-time:
// this sits on the per-generation input path (L bits re-read as c-bit
// symbols every run), so the constant matters.
func (r *Reader) Read(width uint) uint32 {
	if width > 32 {
		panic(fmt.Sprintf("bitio: width %d > 32", width))
	}
	var v uint32
	pos := r.pos
	r.pos += int(width)
	for width > 0 {
		byteIdx := pos >> 3
		if byteIdx >= len(r.data) {
			v <<= width // past the end: zero padding
			break
		}
		off := uint(pos & 7)
		avail := 8 - off
		rem := uint32(r.data[byteIdx]) & (0xFF >> off) // the byte's unread bits
		if width < avail {
			v = v<<width | rem>>(avail-width)
			break
		}
		v = v<<avail | rem
		width -= avail
		pos += int(avail)
	}
	return v
}

// Writer writes fixed-width bit chunks to a growing byte slice.
type Writer struct {
	data []byte
	pos  int // bit position
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Write appends the low width bits of v (MSB first), a whole byte at a time.
func (w *Writer) Write(v uint32, width uint) {
	if width > 32 {
		panic(fmt.Sprintf("bitio: width %d > 32", width))
	}
	for need := (w.pos + int(width) + 7) / 8; len(w.data) < need; {
		w.data = append(w.data, 0)
	}
	PackBits(w.data, w.pos, v, width)
	w.pos += int(width)
}

// PackBits ORs the low width bits of v (MSB first) into dst at bit offset
// pos, a whole byte at a time. dst must already span the written range and
// hold zero bits there. It is the shared packer behind Writer.Write and the
// wire codec's in-place payload encoders.
func PackBits(dst []byte, pos int, v uint32, width uint) {
	if width < 32 {
		v &= 1<<width - 1
	}
	for width > 0 {
		byteIdx := pos >> 3
		off := uint(pos & 7)
		avail := 8 - off
		if width <= avail {
			dst[byteIdx] |= byte(v << (avail - width))
			return
		}
		dst[byteIdx] |= byte(v >> (width - avail))
		pos += int(avail)
		width -= avail
	}
}

// Bits returns the number of bits written.
func (w *Writer) Bits() int { return w.pos }

// Bytes returns the written data, zero-padded to a whole number of bytes.
func (w *Writer) Bytes() []byte { return w.data }

// Truncate returns the first nbits of the written data, zero-padded to a
// whole number of bytes, without modifying the writer.
func (w *Writer) Truncate(nbits int) []byte {
	nbytes := (nbits + 7) / 8
	out := make([]byte, nbytes)
	copy(out, w.data)
	if nbytes > len(w.data) {
		return out
	}
	// Clear any bits past nbits in the final byte.
	if rem := nbits % 8; rem != 0 {
		out[nbytes-1] &= byte(0xFF << (8 - uint(rem)))
	}
	return out
}
