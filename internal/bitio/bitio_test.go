package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Write(0b101, 3)
	w.Write(0xFF, 8)
	w.Write(0, 2)
	w.Write(0b1, 1)
	if w.Bits() != 14 {
		t.Fatalf("bits = %d, want 14", w.Bits())
	}
	r := NewReader(w.Bytes())
	if got := r.Read(3); got != 0b101 {
		t.Errorf("read 3 = %b", got)
	}
	if got := r.Read(8); got != 0xFF {
		t.Errorf("read 8 = %x", got)
	}
	if got := r.Read(2); got != 0 {
		t.Errorf("read 2 = %b", got)
	}
	if got := r.Read(1); got != 1 {
		t.Errorf("read 1 = %b", got)
	}
}

func TestReadPastEndYieldsZeros(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.Read(8); got != 0xFF {
		t.Fatalf("first byte = %x", got)
	}
	if got := r.Read(16); got != 0 {
		t.Errorf("past-end read = %x, want 0 (zero padding)", got)
	}
	if r.Remaining() >= 0 && r.Remaining() > 8 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Packing arbitrary data into width-c chunks and writing them back is the
	// identity (this is exactly what the generation split/merge does).
	r := rand.New(rand.NewSource(3))
	err := quick.Check(func(data []byte, widthSeed uint8) bool {
		width := uint(widthSeed%16) + 1
		rd := NewReader(data)
		w := NewWriter()
		for w.Bits() < len(data)*8 {
			w.Write(rd.Read(width), width)
		}
		return bytes.Equal(w.Truncate(len(data)*8), data)
	}, &quick.Config{MaxCount: 300, Rand: r})
	if err != nil {
		t.Error(err)
	}
}

func TestTruncate(t *testing.T) {
	w := NewWriter()
	w.Write(0xFFFF, 16)
	got := w.Truncate(12)
	want := []byte{0xFF, 0xF0}
	if !bytes.Equal(got, want) {
		t.Errorf("Truncate(12) = %x, want %x", got, want)
	}
	if got := w.Truncate(20); len(got) != 3 {
		t.Errorf("Truncate(20) len = %d, want 3 (zero-padded)", len(got))
	}
	if got := w.Truncate(0); len(got) != 0 {
		t.Errorf("Truncate(0) len = %d", len(got))
	}
}

func TestWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for width > 32")
		}
	}()
	NewWriter().Write(0, 33)
}

func TestMSBFirstLayout(t *testing.T) {
	// Writing 4-bit nibbles 0xA, 0xB must produce byte 0xAB (MSB first).
	w := NewWriter()
	w.Write(0xA, 4)
	w.Write(0xB, 4)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xAB {
		t.Errorf("bytes = %x, want AB", got)
	}
}
