package naive

import (
	"bytes"
	"testing"

	"byzcons/internal/bsb"
	"byzcons/internal/metrics"
	"byzcons/internal/sim"
)

func runNaive(t *testing.T, par Params, inputs [][]byte, L int, faulty []int, adv sim.Adversary, seed int64) ([]*Output, *metrics.Meter) {
	t.Helper()
	res := sim.Run(sim.RunConfig{N: par.N, Faulty: faulty, Adversary: adv, Seed: seed}, func(p *sim.Proc) any {
		return Run(p, par, inputs[p.ID], L)
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	outs := make([]*Output, par.N)
	for i, v := range res.Values {
		outs[i], _ = v.(*Output)
	}
	return outs, res.Meter
}

func same(n int, val []byte) [][]byte {
	in := make([][]byte, n)
	for i := range in {
		in[i] = val
	}
	return in
}

func TestValidityAndExactCost(t *testing.T) {
	val := bytes.Repeat([]byte{0x96, 0x69}, 33)
	L := len(val) * 8
	par := Params{N: 7, T: 2, Chunk: 100} // non-divisible chunking
	outs, meter := runNaive(t, par, same(7, val), L, nil, nil, 1)
	for i, o := range outs {
		if !bytes.Equal(o.Value, val) {
			t.Fatalf("proc %d decided wrong value", i)
		}
	}
	if got, want := meter.TotalBits(), par.Cost(int64(L)); got != want {
		t.Errorf("cost = %d, want exactly %d = 2n²L", got, want)
	}
}

// bitFlipper flips the contributions of faulty processors to the ideal
// consensus service — the only Byzantine power against it.
type bitFlipper struct{}

func (bitFlipper) ReworkExchange(*sim.ExchangeCtx) {}
func (bitFlipper) ReworkSync(ctx *sim.SyncCtx) {
	for i, f := range ctx.Faulty {
		if !f {
			continue
		}
		if bits, ok := ctx.Vals[i].([]bool); ok {
			fl := make([]bool, len(bits))
			for j, b := range bits {
				fl[j] = !b
			}
			ctx.Vals[i] = fl
		}
	}
}

func TestMajorityDefeatsFaultyFlips(t *testing.T) {
	val := bytes.Repeat([]byte{0x0F}, 8)
	L := len(val) * 8
	par := Params{N: 7, T: 2}
	outs, _ := runNaive(t, par, same(7, val), L, []int{2, 4}, bitFlipper{}, 3)
	for i, o := range outs {
		if i == 2 || i == 4 {
			continue
		}
		if !bytes.Equal(o.Value, val) {
			t.Fatalf("honest proc %d decided wrong value under flips", i)
		}
	}
}

func TestUseBSBMode(t *testing.T) {
	val := []byte{0xA5, 0x5A}
	L := 16
	par := Params{N: 4, T: 1, UseBSB: true, BSB: bsb.Oracle, Chunk: 8}
	outs, meter := runNaive(t, par, same(4, val), L, []int{3}, bitFlipper{}, 2)
	for i, o := range outs {
		if i != 3 && !bytes.Equal(o.Value, val) {
			t.Fatalf("proc %d wrong value in BSB mode", i)
		}
	}
	// Real construction: n broadcasts per bit at B(n) each.
	want := int64(L) * int64(par.N) * bsb.DefaultOracleCost(par.N)
	if meter.TotalBits() != want {
		t.Errorf("BSB-mode cost = %d, want %d", meter.TotalBits(), want)
	}
}

func TestValidationRejectsBadParams(t *testing.T) {
	res := sim.Run(sim.RunConfig{N: 3, Seed: 1}, func(p *sim.Proc) any {
		return Run(p, Params{N: 3, T: 1}, []byte{1}, 8)
	})
	if res.Err == nil {
		t.Error("t >= n/3 accepted")
	}
}
