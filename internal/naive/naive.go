// Package naive implements the baseline the paper's introduction argues
// against: achieving L-bit consensus by running L independent instances of
// 1-bit Byzantine consensus, one per bit. Since 1-bit consensus costs Ω(n²)
// bits (Dolev-Reischuk), this approach costs Ω(n²·L) — a factor ~n worse
// than Algorithm 1's O(nL) for large L.
//
// The 1-bit consensus primitive is modelled as an ideal service charged at a
// configurable γ(n) bits per decided bit, defaulting to the Dolev-Reischuk
// lower bound figure 2n² — deliberately generous to the baseline, so the
// measured crossover against Algorithm 1 is conservative. (A real
// construction from 1-bit broadcast pays n·B(n) = Θ(n³) per bit; that mode
// is available too.)
package naive

import (
	"fmt"

	"byzcons/internal/bitio"
	"byzcons/internal/bsb"
	"byzcons/internal/sim"
)

// Params configures the naive bitwise baseline.
type Params struct {
	N int
	T int
	// ConsensusCost is γ(n), the charged bits per 1-bit consensus instance;
	// 0 selects 2n² (the lower-bound figure).
	ConsensusCost int64
	// UseBSB switches to a real construction: every processor broadcasts its
	// bit with Broadcast_Single_Bit and takes the majority, costing n·B(n)
	// per bit instead of γ(n).
	UseBSB bool
	BSB    bsb.Kind
	// Chunk is the number of bit instances run per synchronous batch
	// (bounds memory; 0 selects 4096).
	Chunk int
}

// Output is the per-processor result.
type Output struct {
	Value []byte
	L     int
}

// Cost returns the modelled total communication for an L-bit value.
func (par Params) Cost(L int64) int64 {
	g := par.ConsensusCost
	if g <= 0 {
		g = 2 * int64(par.N) * int64(par.N)
	}
	return g * L
}

// Run executes the baseline at processor p. Every processor must pass the
// same L; decisions are the per-bit majority of the broadcast inputs, which
// inherits validity and consistency from the 1-bit primitive.
func Run(p *sim.Proc, par Params, input []byte, L int) *Output {
	if par.N < 1 || 3*par.T >= par.N {
		p.Abort(fmt.Errorf("naive: need 0 <= t < n/3, got n=%d t=%d", par.N, par.T))
	}
	chunk := par.Chunk
	if chunk <= 0 {
		chunk = 4096
	}
	gamma := par.ConsensusCost
	if gamma <= 0 {
		gamma = 2 * int64(par.N) * int64(par.N)
	}

	var bcast bsb.Broadcaster
	if par.UseBSB {
		var err error
		bcast, err = bsb.New(par.BSB, p, par.N, par.T)
		if err != nil {
			p.Abort(err)
		}
	}

	reader := bitio.NewReader(input)
	writer := bitio.NewWriter()
	for off := 0; off < L; off += chunk {
		size := chunk
		if rem := L - off; rem < size {
			size = rem
		}
		myBits := make([]bool, size)
		for i := range myBits {
			myBits[i] = reader.Read(1) == 1
		}
		step := sim.StepID(fmt.Sprintf("naive/c%d", off/chunk))
		var all [][]bool
		if par.UseBSB {
			// One broadcast instance per (bit, source).
			insts := make([]bsb.Inst, 0, size*par.N)
			mine := make([]bool, 0, size*par.N)
			for i := 0; i < size; i++ {
				for s := 0; s < par.N; s++ {
					insts = append(insts, bsb.Inst{Src: s, Kind: "naive", A: i})
					mine = append(mine, s == p.ID && myBits[i])
				}
			}
			res := bcast.Broadcast(step, insts, mine, "naive.bits")
			all = make([][]bool, par.N)
			for s := 0; s < par.N; s++ {
				all[s] = make([]bool, size)
			}
			for idx, inst := range insts {
				all[inst.Src][inst.A] = res[idx]
			}
		} else {
			// Ideal 1-bit consensus service: γ(n) bits per instance, shared
			// evenly across the n symmetric participants (remainder to the
			// first processor so totals are exact).
			share := gamma * int64(size) / int64(par.N)
			if p.ID == 0 {
				share += gamma*int64(size) - share*int64(par.N)
			}
			vals := p.Sync(step, myBits, share, "naive.bits", nil)
			all = make([][]bool, par.N)
			for s := 0; s < par.N; s++ {
				if b, ok := vals[s].([]bool); ok {
					all[s] = b
				}
			}
		}
		// Majority per bit: at most t < n/2 faulty inputs cannot overturn a
		// unanimous honest majority (validity); all processors see identical
		// broadcast bits (consistency).
		for i := 0; i < size; i++ {
			trues := 0
			for s := 0; s < par.N; s++ {
				if s < len(all) && i < len(all[s]) && all[s][i] {
					trues++
				}
			}
			if 2*trues > par.N {
				writer.Write(1, 1)
			} else {
				writer.Write(0, 1)
			}
		}
	}
	return &Output{Value: writer.Truncate(L), L: L}
}
