package rs

import (
	"errors"
	"math/rand"
	"testing"

	"byzcons/internal/gf"
)

func newCode(t testing.TB, c uint, n, k int) *Code {
	t.Helper()
	f, err := gf.New(c)
	if err != nil {
		t.Fatal(err)
	}
	code, err := New(f, n, k)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func randData(r *rand.Rand, f *gf.Field, k int) []gf.Sym {
	d := make([]gf.Sym, k)
	for i := range d {
		d[i] = gf.Sym(r.Intn(f.Order()))
	}
	return d
}

// randSubset returns a random subset of {0..n-1} of the given size, sorted.
func randSubset(r *rand.Rand, n, size int) []int {
	perm := r.Perm(n)[:size]
	// insertion sort (tiny sizes)
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j-1] > perm[j]; j-- {
			perm[j-1], perm[j] = perm[j], perm[j-1]
		}
	}
	return perm
}

func TestNewValidation(t *testing.T) {
	f, _ := gf.New(8)
	if _, err := New(f, 7, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(f, 7, 8); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := New(f, 256, 3); err == nil {
		t.Error("n>2^c-1 accepted")
	}
	if _, err := New(f, 255, 255); err != nil {
		t.Errorf("max-length code rejected: %v", err)
	}
}

func TestEncodeDecodeAnySubset(t *testing.T) {
	// The defining property the consensus proofs rely on: ANY k codeword
	// positions determine the data.
	r := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		c    uint
		n, k int
	}{
		{8, 7, 3}, {8, 10, 4}, {8, 13, 5}, {8, 255, 85}, {16, 40, 14}, {8, 4, 2}, {8, 1, 1},
	} {
		code := newCode(t, tc.c, tc.n, tc.k)
		for trial := 0; trial < 25; trial++ {
			data := randData(r, code.F, tc.k)
			cw := code.Encode(data)
			size := tc.k + r.Intn(tc.n-tc.k+1)
			pos := randSubset(r, tc.n, size)
			vals := make([]gf.Sym, size)
			for i, p := range pos {
				vals[i] = cw[p]
			}
			got, err := code.Decode(pos, vals)
			if err != nil {
				t.Fatalf("(n=%d,k=%d) Decode: %v", tc.n, tc.k, err)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("(n=%d,k=%d) decode mismatch at %d", tc.n, tc.k, i)
				}
			}
		}
	}
}

func TestDecodeTooFew(t *testing.T) {
	code := newCode(t, 8, 7, 3)
	_, err := code.Decode([]int{0, 1}, []gf.Sym{1, 2})
	if !errors.Is(err, ErrTooFew) {
		t.Errorf("err = %v, want ErrTooFew", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	// With more than k positions, corrupting any single symbol must be
	// detected, no matter which position is corrupted (this is the checking
	// stage's Detected test).
	r := rand.New(rand.NewSource(7))
	code := newCode(t, 8, 7, 3)
	for trial := 0; trial < 200; trial++ {
		data := randData(r, code.F, 3)
		cw := code.Encode(data)
		size := 4 + r.Intn(4) // > k
		pos := randSubset(r, 7, size)
		vals := make([]gf.Sym, size)
		for i, p := range pos {
			vals[i] = cw[p]
		}
		bad := r.Intn(size)
		vals[bad] ^= gf.Sym(1 + r.Intn(254))
		if code.Consistent(pos, vals) {
			t.Fatalf("corruption at position %d of %v not detected", pos[bad], pos)
		}
	}
}

func TestExactlyKAlwaysConsistent(t *testing.T) {
	// Any assignment to k (or fewer) positions extends to a codeword: the
	// code has dimension k, so no detection is possible there.
	r := rand.New(rand.NewSource(9))
	code := newCode(t, 8, 7, 3)
	for trial := 0; trial < 100; trial++ {
		size := 1 + r.Intn(3)
		pos := randSubset(r, 7, size)
		vals := randData(r, code.F, size)
		if !code.Consistent(pos, vals) {
			t.Fatalf("%d arbitrary positions reported inconsistent", size)
		}
	}
}

func TestMinimumDistance(t *testing.T) {
	// Distinct codewords must differ in at least n-k+1 positions (C2t has
	// distance 2t+1 for k = n-2t, which Lemma 2's argument needs).
	r := rand.New(rand.NewSource(11))
	code := newCode(t, 8, 9, 3) // n-k+1 = 7
	for trial := 0; trial < 200; trial++ {
		d1 := randData(r, code.F, 3)
		d2 := randData(r, code.F, 3)
		same := true
		for i := range d1 {
			if d1[i] != d2[i] {
				same = false
			}
		}
		if same {
			continue
		}
		c1, c2 := code.Encode(d1), code.Encode(d2)
		diff := 0
		for i := range c1 {
			if c1[i] != c2[i] {
				diff++
			}
		}
		if diff < code.Distance() {
			t.Fatalf("codewords differ in %d < %d positions", diff, code.Distance())
		}
	}
}

func TestInterpolateMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	code := newCode(t, 16, 20, 6)
	for trial := 0; trial < 50; trial++ {
		data := randData(r, code.F, 6)
		cw := code.Encode(data)
		pos := randSubset(r, 20, 6)
		vals := make([]gf.Sym, 6)
		for i, p := range pos {
			vals[i] = cw[p]
		}
		got := code.Interpolate(pos, vals)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("interpolate mismatch")
			}
		}
	}
}

func TestDecodePanicsOnBadInput(t *testing.T) {
	code := newCode(t, 8, 7, 3)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"dup positions", func() { code.Interpolate([]int{1, 1, 2}, []gf.Sym{0, 0, 0}) }},
		{"out of range", func() { code.Interpolate([]int{0, 1, 9}, []gf.Sym{0, 0, 0}) }},
		{"len mismatch", func() { _, _ = code.Decode([]int{0, 1, 2}, []gf.Sym{0}) }},
		{"encode wrong len", func() { code.Encode([]gf.Sym{1}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	code := newCode(t, 8, 7, 3)
	for _, m := range []int{1, 2, 5, 16} {
		ic, err := NewInterleaved(code, m)
		if err != nil {
			t.Fatal(err)
		}
		if ic.DataBits() != 3*m*8 || ic.WordBits() != m*8 {
			t.Fatalf("m=%d: wrong bit geometry", m)
		}
		data := randData(r, code.F, ic.DataSyms())
		words := ic.Encode(data)
		pos := randSubset(r, 7, 3+r.Intn(5))
		sub := make([][]gf.Sym, len(pos))
		for i, p := range pos {
			sub[i] = words[p]
		}
		got, err := ic.Decode(pos, sub)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("m=%d: mismatch", m)
			}
		}
	}
}

func TestInterleavedLaneCorruptionDetected(t *testing.T) {
	// Corrupting any single lane of any word must fail the whole-word
	// consistency check (the M flags AND across lanes).
	r := rand.New(rand.NewSource(19))
	code := newCode(t, 8, 7, 3)
	ic, _ := NewInterleaved(code, 4)
	for trial := 0; trial < 100; trial++ {
		data := randData(r, code.F, ic.DataSyms())
		words := ic.Encode(data)
		pos := randSubset(r, 7, 5)
		sub := make([][]gf.Sym, len(pos))
		for i, p := range pos {
			w := make([]gf.Sym, 4)
			copy(w, words[p])
			sub[i] = w
		}
		sub[r.Intn(5)][r.Intn(4)] ^= 0x2A
		if ic.Consistent(pos, sub) {
			t.Fatal("lane corruption not detected")
		}
	}
}

func TestInterleavedRejectsBadDepth(t *testing.T) {
	code := newCode(t, 8, 7, 3)
	if _, err := NewInterleaved(code, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestWordsEqual(t *testing.T) {
	a := []gf.Sym{1, 2, 3}
	b := []gf.Sym{1, 2, 3}
	c := []gf.Sym{1, 2, 4}
	if !WordsEqual(a, b) || WordsEqual(a, c) || WordsEqual(a, nil) || WordsEqual(nil, a) {
		t.Error("WordsEqual wrong on basic cases")
	}
	if !WordsEqual(nil, nil) {
		t.Error("nil words (⊥) must equal each other")
	}
	if WordsEqual(a, a[:2]) {
		t.Error("length mismatch not detected")
	}
}

func BenchmarkEncode255_85(b *testing.B) {
	code := newCode(b, 8, 255, 85)
	r := rand.New(rand.NewSource(1))
	data := randData(r, code.F, 85)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(data)
	}
}

func BenchmarkDecode255_85(b *testing.B) {
	code := newCode(b, 8, 255, 85)
	r := rand.New(rand.NewSource(1))
	data := randData(r, code.F, 85)
	cw := code.Encode(data)
	pos := make([]int, 85)
	vals := make([]gf.Sym, 85)
	for i := range pos {
		pos[i] = i * 3
		vals[i] = cw[i*3]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(pos, vals); err != nil {
			b.Fatal(err)
		}
	}
}
