package rs

import (
	"testing"

	"byzcons/internal/gf"
)

// benchInterleaved builds the n=7, t=2 code of the acceptance scenarios with
// a generation-sized lane count.
func benchInterleaved(b *testing.B, lanes int) (*Interleaved, []gf.Sym) {
	b.Helper()
	field, err := gf.New(8)
	if err != nil {
		b.Fatal(err)
	}
	code, err := New(field, 7, 3)
	if err != nil {
		b.Fatal(err)
	}
	ic, err := NewInterleaved(code, lanes)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(i * 37 % 251)
	}
	return ic, data
}

// benchLanes is the lane width of the headline interleaved benchmarks: wide
// enough that the matrix sweeps dominate, matching a large-L generation.
const benchLanes = 512

// BenchmarkInterleavedEncode measures the matching-stage encode of one
// generation (the per-generation hot path of every processor), through the
// allocation-free stripe entry point.
func BenchmarkInterleavedEncode(b *testing.B) {
	ic, data := benchInterleaved(b, benchLanes)
	stripe := make([]gf.Sym, ic.C.N*ic.M)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.EncodeStripe(data, stripe)
	}
}

// BenchmarkInterleavedDecode measures the checking-stage decode from K+2
// positions, the consistency-check hot path.
func BenchmarkInterleavedDecode(b *testing.B) {
	ic, data := benchInterleaved(b, benchLanes)
	words := ic.Encode(data)
	positions := []int{0, 2, 3, 5, 6}
	sub := make([][]gf.Sym, len(positions))
	for i, p := range positions {
		sub[i] = words[p]
	}
	out := make([]gf.Sym, ic.DataSyms())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ic.DecodeInto(positions, sub, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterleavedConsistent measures the surplus-position membership
// test run by every non-member of Pmatch in every generation.
func BenchmarkInterleavedConsistent(b *testing.B) {
	ic, data := benchInterleaved(b, benchLanes)
	words := ic.Encode(data)
	positions := []int{0, 1, 2, 3, 5, 6}
	sub := make([][]gf.Sym, len(positions))
	for i, p := range positions {
		sub[i] = words[p]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ic.Consistent(positions, sub) {
			b.Fatal("inconsistent")
		}
	}
}

// BenchmarkInterleavedScalarRef keeps the scalar reference path measured, so
// the matrix-vs-scalar ratio stays visible PR over PR.
func BenchmarkInterleavedScalarRef(b *testing.B) {
	ic, data := benchInterleaved(b, benchLanes)
	stripe := make([]gf.Sym, ic.C.N*ic.M)
	ic.EncodeStripe(data, stripe)
	words := make([][]gf.Sym, ic.C.N)
	for j := range words {
		words[j] = stripe[j*ic.M : (j+1)*ic.M]
	}
	positions := []int{0, 2, 3, 5, 6}
	sub := make([][]gf.Sym, len(positions))
	for i, p := range positions {
		sub[i] = words[p]
	}
	out := make([]gf.Sym, ic.DataSyms())
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ic.encodeScalar(data, stripe)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ic.decodeIntoScalar(positions, sub, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
