package rs

import (
	"testing"

	"byzcons/internal/gf"
)

// benchInterleaved builds the n=7, t=2 code of the acceptance scenarios with
// a generation-sized lane count.
func benchInterleaved(b *testing.B, lanes int) (*Interleaved, []gf.Sym) {
	b.Helper()
	field, err := gf.New(8)
	if err != nil {
		b.Fatal(err)
	}
	code, err := New(field, 7, 3)
	if err != nil {
		b.Fatal(err)
	}
	ic, err := NewInterleaved(code, lanes)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(i * 37 % 251)
	}
	return ic, data
}

// BenchmarkInterleavedEncode measures the matching-stage encode of one
// generation (the per-generation hot path of every processor).
func BenchmarkInterleavedEncode(b *testing.B) {
	ic, data := benchInterleaved(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.Encode(data)
	}
}

// BenchmarkInterleavedDecode measures the checking-stage decode from K+2
// positions, the consistency-check hot path.
func BenchmarkInterleavedDecode(b *testing.B) {
	ic, data := benchInterleaved(b, 64)
	words := ic.Encode(data)
	positions := []int{0, 2, 3, 5, 6}
	sub := make([][]gf.Sym, len(positions))
	for i, p := range positions {
		sub[i] = words[p]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ic.Decode(positions, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterleavedConsistent measures the surplus-position membership
// test run by every non-member of Pmatch in every generation.
func BenchmarkInterleavedConsistent(b *testing.B) {
	ic, data := benchInterleaved(b, 64)
	words := ic.Encode(data)
	positions := []int{0, 1, 2, 3, 5, 6}
	sub := make([][]gf.Sym, len(positions))
	for i, p := range positions {
		sub[i] = words[p]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ic.Consistent(positions, sub) {
			b.Fatal("inconsistent")
		}
	}
}
