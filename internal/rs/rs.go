// Package rs implements Reed-Solomon evaluation codes over GF(2^c), providing
// exactly the three operations the consensus algorithm needs from the code
// C2t (an (n, n-2t) code of distance 2t+1):
//
//   - Encode: k data symbols -> n coded symbols,
//   - Decode from any subset of >= k positions (with consistency verification
//     of the surplus positions), and
//   - the membership test V/A ∈ C2t from the paper (Consistent).
//
// Data symbols are the coefficients of a polynomial f with deg f < k; the
// codeword is (f(x_1), ..., f(x_n)) at distinct nonzero points x_j = alpha^(j-1).
// Any k positions of a codeword therefore determine the data uniquely, which
// is the property Lemmas 2, 3 and 5 of the paper rely on.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"byzcons/internal/gf"
)

// ErrInconsistent is returned when the supplied symbols do not lie on any
// single codeword (the paper's "V/A not in C2t" case).
var ErrInconsistent = errors.New("rs: symbols inconsistent with any codeword")

// ErrTooFew is returned when fewer than K positions are supplied to Decode.
var ErrTooFew = errors.New("rs: fewer than K symbols supplied")

// Code is an (N, K) Reed-Solomon code over the field F. Codes are interned:
// New returns one shared, concurrency-safe instance per (field, n, k), so
// the matrix-form tables (matrix.go) are built once per process.
type Code struct {
	F  *gf.Field
	N  int      // code length
	K  int      // dimension
	xs []gf.Sym // evaluation points, xs[j] = alpha^j

	// enc holds the K×N encode-matrix tables (nil for codes longer than
	// maxMatrixN, which stay on the scalar path); encW is the same matrix in
	// word-sliced form for the packed-lane sweeps of wide stripes (word.go).
	enc  []gf.MulTab
	encW []gf.WordTab
	// subs caches the interpolation/check matrices per present-position
	// bitmask (see matrix.go).
	subMu sync.RWMutex
	subs  map[uint64]*subsetTabs
}

// New returns the (n, k) Reed-Solomon code over f. Construction is cached:
// repeated calls with the same parameters return the same instance (every
// simulated processor of every generation constructs its codes).
func New(f *gf.Field, n, k int) (*Code, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("rs: invalid dimension k=%d for n=%d", k, n)
	}
	if n > f.MaxCodeLen() {
		return nil, fmt.Errorf("rs: length n=%d exceeds max %d for GF(2^%d)", n, f.MaxCodeLen(), f.C())
	}
	key := codeKey{c: f.C(), n: n, k: k}
	if v, ok := codeCache.Load(key); ok {
		return v.(*Code), nil
	}
	xs := make([]gf.Sym, n)
	for j := 0; j < n; j++ {
		xs[j] = f.Exp(j)
	}
	c := &Code{F: f, N: n, K: k, xs: xs}
	c.buildEncTabs()
	v, _ := codeCache.LoadOrStore(key, c)
	return v.(*Code), nil
}

// Distance returns the minimum distance of the code, n-k+1.
func (c *Code) Distance() int { return c.N - c.K + 1 }

// Encode maps k data symbols to the n symbols of the corresponding codeword.
func (c *Code) Encode(data []gf.Sym) []gf.Sym {
	return c.EncodeInto(data, make([]gf.Sym, c.N))
}

// EncodeInto writes the codeword for data into out (length N) and returns
// it. It is the allocation-free variant of Encode for hot paths that reuse a
// scratch codeword across calls.
func (c *Code) EncodeInto(data, out []gf.Sym) []gf.Sym {
	if len(data) != c.K {
		panic(fmt.Sprintf("rs: Encode got %d symbols, want K=%d", len(data), c.K))
	}
	if len(out) != c.N {
		panic(fmt.Sprintf("rs: EncodeInto got a %d-symbol buffer, want N=%d", len(out), c.N))
	}
	for j := 0; j < c.N; j++ {
		out[j] = c.F.EvalPoly(data, c.xs[j])
	}
	return out
}

// interpScratch holds Interpolate's working buffers. They are pooled: every
// generation of every processor interpolates (decode and consistency checks
// are the per-generation hot path), and under the pipelined window several
// generation fibers interpolate concurrently, so per-call allocation would
// churn while a plain per-Code buffer would race.
type interpScratch struct {
	xs     []gf.Sym
	master []gf.Sym
	q      []gf.Sym
	seen   []bool
}

var interpPool = sync.Pool{New: func() any { return new(interpScratch) }}

// grab sizes the scratch for a (k, n) interpolation, clearing the seen set.
func (sc *interpScratch) grab(k, n int) {
	if cap(sc.xs) < k {
		sc.xs = make([]gf.Sym, k)
		sc.q = make([]gf.Sym, k)
		sc.master = make([]gf.Sym, k+1)
	}
	sc.xs = sc.xs[:k]
	sc.q = sc.q[:k]
	sc.master = sc.master[:k+1]
	for i := range sc.master {
		sc.master[i] = 0
	}
	if cap(sc.seen) < n {
		sc.seen = make([]bool, n)
	}
	sc.seen = sc.seen[:n]
	for i := range sc.seen {
		sc.seen[i] = false
	}
}

// Interpolate recovers the data (polynomial coefficients) from exactly K
// (position, value) pairs. Positions are zero-based codeword indices and must
// be distinct and in range.
func (c *Code) Interpolate(positions []int, vals []gf.Sym) []gf.Sym {
	return c.interpolateInto(positions, vals, make([]gf.Sym, c.K))
}

// interpolateInto is Interpolate writing into caller-provided coefficient
// storage, with pooled working buffers.
func (c *Code) interpolateInto(positions []int, vals, coeffs []gf.Sym) []gf.Sym {
	k := c.K
	if len(positions) != k || len(vals) != k {
		panic(fmt.Sprintf("rs: Interpolate needs exactly K=%d points, got %d/%d", k, len(positions), len(vals)))
	}
	f := c.F
	sc := interpPool.Get().(*interpScratch)
	defer interpPool.Put(sc)
	sc.grab(k, c.N)
	xs, seen := sc.xs, sc.seen
	for i, p := range positions {
		if p < 0 || p >= c.N {
			panic(fmt.Sprintf("rs: position %d out of range [0,%d)", p, c.N))
		}
		if seen[p] {
			panic(fmt.Sprintf("rs: duplicate position %d", p))
		}
		seen[p] = true
		xs[i] = c.xs[p]
	}

	// master(x) = prod_i (x + xs[i]); char 2 so minus == plus.
	master := sc.master
	master[0] = 1
	deg := 0
	for _, xi := range xs {
		// master *= (x + xi)
		for d := deg + 1; d >= 1; d-- {
			master[d] = master[d-1] ^ f.Mul(master[d], xi)
		}
		master[0] = f.Mul(master[0], xi)
		deg++
	}

	for d := range coeffs {
		coeffs[d] = 0
	}
	q := sc.q // quotient master/(x+xi), degree k-1
	for i := 0; i < k; i++ {
		xi := xs[i]
		// Synthetic division of master by (x + xi) == (x - xi).
		q[k-1] = master[k]
		for d := k - 2; d >= 0; d-- {
			q[d] = master[d+1] ^ f.Mul(q[d+1], xi)
		}
		// denom = prod_{j != i} (xi + xs[j]) = q(xi).
		denom := f.EvalPoly(q, xi)
		scale := f.Div(vals[i], denom)
		for d := 0; d < k; d++ {
			coeffs[d] ^= f.Mul(scale, q[d])
		}
	}
	return coeffs
}

// Decode recovers the data from at least K (position, value) pairs,
// verifying that every supplied symbol lies on the interpolated codeword.
// It returns ErrTooFew with fewer than K points and ErrInconsistent if the
// points do not agree on a single codeword.
func (c *Code) Decode(positions []int, vals []gf.Sym) ([]gf.Sym, error) {
	if len(positions) < c.K {
		return nil, ErrTooFew
	}
	data := make([]gf.Sym, c.K)
	if err := c.DecodeInto(positions, vals, data); err != nil {
		return nil, err
	}
	return data, nil
}

// DecodeInto is Decode writing the K data symbols into out — the
// allocation-free variant for hot paths decoding many lanes into one
// preallocated buffer.
func (c *Code) DecodeInto(positions []int, vals, out []gf.Sym) error {
	if len(positions) != len(vals) {
		panic("rs: positions/vals length mismatch")
	}
	if len(out) != c.K {
		panic(fmt.Sprintf("rs: DecodeInto got a %d-symbol buffer, want K=%d", len(out), c.K))
	}
	if len(positions) < c.K {
		return ErrTooFew
	}
	data := c.interpolateInto(positions[:c.K], vals[:c.K], out)
	for i := c.K; i < len(positions); i++ {
		p := positions[i]
		if p < 0 || p >= c.N {
			panic(fmt.Sprintf("rs: position %d out of range [0,%d)", p, c.N))
		}
		if c.F.EvalPoly(data, c.xs[p]) != vals[i] {
			return ErrInconsistent
		}
	}
	return nil
}

// Consistent implements the paper's membership test V/A ∈ C2t: it reports
// whether there exists a codeword agreeing with vals at the given positions.
// With |A| <= K any assignment is consistent (the code has dimension K).
func (c *Code) Consistent(positions []int, vals []gf.Sym) bool {
	if len(positions) <= c.K {
		return true
	}
	_, err := c.Decode(positions, vals)
	return err == nil
}
