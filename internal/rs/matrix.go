package rs

import (
	"sync"

	"byzcons/internal/gf"
)

// This file is the matrix-form fast path of the code: instead of running the
// scalar log/exp interpolation per lane (K·N·M single-symbol multiplications
// per interleaved operation), every operation is expressed as a small matrix
// of cached per-scalar multiplication tables applied to contiguous M-symbol
// lane slabs with gf.MulTab sweeps:
//
//   - Encode: the K×N Vandermonde encode matrix E[i][j] = x_j^i is fixed per
//     code, so its tables are built once at construction (encTabs).
//   - Decode/Consistent: for a given set of present positions, the K×K
//     interpolation matrix (columns are the Lagrange basis polynomials of
//     the first K positions) and the surplus check rows (which map the K
//     chosen values directly to the expected value at every surplus
//     position) depend only on the position set. They are cached per code,
//     keyed by the present-position bitmask — position subsets recur across
//     generations because the trust graph changes rarely (at most t(t+1)
//     times per execution, Theorem 1).
//
// The fast path requires strictly ascending positions (the bitmask is then a
// canonical key; every protocol path builds its position sets ascending) and
// N <= maxMatrixN so the mask fits a word. Anything else — and every
// matrix-built result, via the cross-check fuzz tests — falls back to the
// scalar reference path in rs.go.

// maxMatrixN bounds the code length for the matrix fast path: the subset
// cache keys present-position sets by a uint64 bitmask, and table memory
// grows with K·N. Longer codes (the n=300 scaling experiments) keep the
// scalar path.
const maxMatrixN = 64

// maxSubsets bounds the per-code subset cache. Position subsets are keyed by
// the diagnosis graph's trust state and recur heavily; an adversary that
// forces graph churn gets the cache reset, never unbounded growth.
const maxSubsets = 256

// subsetTabs holds the cached matrices of one present-position set. Every
// matrix entry is cached in two table forms: the gf.MulTab split/full tables
// swept over []gf.Sym slabs (narrow stripes), and the gf.WordTab word-sliced
// tables swept over packed []uint64 lanes (wide stripes, see word.go). Both
// are built once per subset — subsets recur since the trust graph changes at
// most t(t+1) times — so the per-generation hot path only ever sweeps.
type subsetTabs struct {
	// dec[i*K+m] maps the value at the m-th chosen position onto coefficient
	// i: coeffs[i] = Σ_m dec[i*K+m]·vals[m]. It is the inverse of the K×K
	// Vandermonde submatrix of the first K present positions.
	dec  []gf.MulTab
	decW []gf.WordTab
	// chk[si*K+m] maps the K chosen values directly onto the expected value
	// at the si-th surplus position: expected = Σ_m chk[si*K+m]·vals[m].
	chk  []gf.MulTab
	chkW []gf.WordTab
}

// buildEncTabs constructs the K×N encode-matrix tables. Entries with i = 0
// (codeword position j receives coefficient 0 with weight x_j^0 = 1) and
// j = 0 (x_0 = 1, so every weight is 1) are handled with copies/AddSlice by
// the encode sweep and left as zero tables here.
func (c *Code) buildEncTabs() {
	if c.N > maxMatrixN {
		return
	}
	c.enc = make([]gf.MulTab, c.K*c.N)
	c.encW = make([]gf.WordTab, c.K*c.N)
	for i := 1; i < c.K; i++ {
		for j := 1; j < c.N; j++ {
			y := c.F.Exp(i * j) // x_j^i = alpha^(i·j)
			c.enc[i*c.N+j] = c.F.TabFull(y)
			c.encW[i*c.N+j] = c.F.WordTabFull(y)
		}
	}
}

// posMask folds strictly ascending, in-range positions into the subset-cache
// bitmask. ok is false when the fast path does not apply.
func (c *Code) posMask(positions []int) (uint64, bool) {
	if c.N > maxMatrixN {
		return 0, false
	}
	prev := -1
	var mask uint64
	for _, p := range positions {
		if p <= prev || p >= c.N {
			return 0, false
		}
		prev = p
		mask |= 1 << uint(p)
	}
	return mask, true
}

// subsetFor returns the cached matrices for the given present positions,
// building them on first use, or nil when the matrix path does not apply.
func (c *Code) subsetFor(positions []int) *subsetTabs {
	if len(positions) < c.K {
		return nil
	}
	mask, ok := c.posMask(positions)
	if !ok {
		return nil
	}
	c.subMu.RLock()
	st := c.subs[mask]
	c.subMu.RUnlock()
	if st != nil {
		return st
	}
	st = c.buildSubset(positions)
	c.subMu.Lock()
	if c.subs == nil || len(c.subs) >= maxSubsets {
		c.subs = make(map[uint64]*subsetTabs)
	}
	if prev := c.subs[mask]; prev != nil {
		st = prev // lost a build race: keep the first (identical) result
	} else {
		c.subs[mask] = st
	}
	c.subMu.Unlock()
	return st
}

// buildSubset computes the interpolation and check matrices for one position
// set using the scalar field operations (construction is off the hot path;
// the sweeps are what run per generation).
func (c *Code) buildSubset(positions []int) *subsetTabs {
	f, k := c.F, c.K
	chosen := positions[:k]

	// master(x) = prod_m (x + x_m) over the chosen evaluation points.
	master := make([]gf.Sym, k+1)
	master[0] = 1
	deg := 0
	for _, p := range chosen {
		xm := c.xs[p]
		for d := deg + 1; d >= 1; d-- {
			master[d] = master[d-1] ^ f.Mul(master[d], xm)
		}
		master[0] = f.Mul(master[0], xm)
		deg++
	}

	// Column m of the inverse Vandermonde is the Lagrange basis polynomial
	// of x_m: L_m = (master/(x+x_m)) / q(x_m).
	cols := make([][]gf.Sym, k)
	q := make([]gf.Sym, k)
	for m, p := range chosen {
		xm := c.xs[p]
		q[k-1] = master[k]
		for d := k - 2; d >= 0; d-- {
			q[d] = master[d+1] ^ f.Mul(q[d+1], xm)
		}
		inv := f.Inv(f.EvalPoly(q, xm))
		col := make([]gf.Sym, k)
		for d := 0; d < k; d++ {
			col[d] = f.Mul(q[d], inv)
		}
		cols[m] = col
	}

	st := &subsetTabs{dec: make([]gf.MulTab, k*k), decW: make([]gf.WordTab, k*k)}
	for i := 0; i < k; i++ {
		for m := 0; m < k; m++ {
			st.dec[i*k+m] = f.TabFull(cols[m][i])
			st.decW[i*k+m] = f.WordTabFull(cols[m][i])
		}
	}
	surplus := positions[k:]
	st.chk = make([]gf.MulTab, len(surplus)*k)
	st.chkW = make([]gf.WordTab, len(surplus)*k)
	for si, p := range surplus {
		xp := c.xs[p]
		for m := 0; m < k; m++ {
			// Expected value at x_p from chosen value m: L_m(x_p).
			y := f.EvalPoly(cols[m], xp)
			st.chk[si*k+m] = f.TabFull(y)
			st.chkW[si*k+m] = f.WordTabFull(y)
		}
	}
	return st
}

// codeKey identifies a cached Code: fields are singletons per width, so the
// width stands in for the field.
type codeKey struct {
	c    uint
	n, k int
}

// codeCache interns constructed codes. A Code is immutable except for its
// internal subset cache (itself concurrency-safe), so every processor of
// every run shares one instance per (field, n, k) — the encode tables and
// recurring interpolation matrices are built once per process, not once per
// processor per run.
var codeCache sync.Map // codeKey -> *Code
