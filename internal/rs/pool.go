package rs

import (
	"runtime"
	"sync"
)

// Lane fan-out: interleaved operations on very wide stripes (large-L
// generations) split their lane range across a bounded worker pool. The
// matrix sweeps are embarrassingly parallel in the lane dimension — every
// chunk reads the shared tables and writes a disjoint lane sub-range — so
// the workers need no synchronization beyond the completion wait.

// laneChunk is the minimum number of lanes a worker chunk carries. A var so
// tests can lower it to drive the parallel path with small stripes.
var laneChunk = 4096

// maxLaneWorkers caps the pool: beyond a handful of workers the sweeps are
// memory-bound and extra goroutines only add completion-wait latency.
const maxLaneWorkers = 8

// laneWorkers resolves the usable pool width at call time, not package init:
// programs (and tests under -cpu) adjust GOMAXPROCS after package load, and a
// width captured at init would either leave cores idle or oversubscribe a
// shrunken P count for the process's whole lifetime.
func laneWorkers() int {
	return min(runtime.GOMAXPROCS(0), maxLaneWorkers)
}

// lanePool is the grow-only worker set behind forLanes. Workers are started
// lazily up to the current laneWorkers() width; if GOMAXPROCS grows later,
// the next oversized stripe starts the difference. Idle excess workers after
// a GOMAXPROCS shrink just block on the channel — the scheduler keeps at
// most P of them runnable, and forLanes fans out at most laneWorkers()
// chunks anyway.
var lanePool struct {
	mu      sync.Mutex
	started int
	jobs    chan func()
}

// ensureLaneWorkers brings the started worker count up to want.
func ensureLaneWorkers(want int) chan func() {
	lanePool.mu.Lock()
	defer lanePool.mu.Unlock()
	if lanePool.jobs == nil {
		lanePool.jobs = make(chan func(), maxLaneWorkers)
	}
	for ; lanePool.started < want; lanePool.started++ {
		go func() {
			for job := range lanePool.jobs {
				job()
			}
		}()
	}
	return lanePool.jobs
}

// parallelLanes reports whether a stripe of m lanes is worth fanning out.
// Callers use it to run narrow stripes through straight-line range methods
// (no closure allocation on the per-generation hot path).
func parallelLanes(m int) bool {
	return m >= 2*laneChunk && laneWorkers() >= 2
}

// forLanes runs fn over [0, m) — inline when the stripe is small or the pool
// would not help, in parallel lane chunks otherwise. fn must only touch lane
// indices within its [lo, hi) range.
func forLanes(m int, fn func(lo, hi int)) {
	if !parallelLanes(m) {
		fn(0, m)
		return
	}
	workers := laneWorkers()
	jobs := ensureLaneWorkers(workers)
	chunks := min((m+laneChunk-1)/laneChunk, workers)
	per := (m + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += per {
		hi := min(lo+per, m)
		wg.Add(1)
		job := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case jobs <- job:
		default:
			job() // pool saturated: run inline rather than queue behind it
		}
	}
	wg.Wait()
}
