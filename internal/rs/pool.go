package rs

import (
	"runtime"
	"sync"
)

// Lane fan-out: interleaved operations on very wide stripes (large-L
// generations) split their lane range across a bounded worker pool. The
// matrix sweeps are embarrassingly parallel in the lane dimension — every
// chunk reads the shared tables and writes a disjoint lane sub-range — so
// the workers need no synchronization beyond the completion wait.

// laneChunk is the minimum number of lanes a worker chunk carries. A var so
// tests can lower it to drive the parallel path with small stripes.
var laneChunk = 4096

// laneWorkers bounds the pool. The pool is lazy: no goroutines exist until
// the first oversized stripe.
var laneWorkers = min(runtime.GOMAXPROCS(0), 8)

var (
	laneOnce sync.Once
	laneJobs chan func()
)

// parallelLanes reports whether a stripe of m lanes is worth fanning out.
// Callers use it to run narrow stripes through straight-line range methods
// (no closure allocation on the per-generation hot path).
func parallelLanes(m int) bool {
	return m >= 2*laneChunk && laneWorkers >= 2
}

// forLanes runs fn over [0, m) — inline when the stripe is small or the pool
// would not help, in parallel lane chunks otherwise. fn must only touch lane
// indices within its [lo, hi) range.
func forLanes(m int, fn func(lo, hi int)) {
	if !parallelLanes(m) {
		fn(0, m)
		return
	}
	laneOnce.Do(func() {
		laneJobs = make(chan func(), laneWorkers)
		for i := 0; i < laneWorkers; i++ {
			go func() {
				for job := range laneJobs {
					job()
				}
			}()
		}
	})
	chunks := min((m+laneChunk-1)/laneChunk, laneWorkers)
	per := (m + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += per {
		hi := min(lo+per, m)
		wg.Add(1)
		job := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case laneJobs <- job:
		default:
			job() // pool saturated: run inline rather than queue behind it
		}
	}
	wg.Wait()
}
