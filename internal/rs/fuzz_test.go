package rs

import (
	"testing"

	"byzcons/internal/gf"
)

// FuzzDecodeRoundTrip fuzzes the encode → subset → decode pipeline: for any
// data and any subset selector, decoding any >= K positions of a codeword
// must return the original data, and corrupting one selected symbol must
// never yield a *different* successful decode when more than K positions are
// present (detection), matching the checking stage's requirements.
func FuzzDecodeRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(0x1F), uint8(0))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55}, uint8(0x7F), uint8(3))
	f.Add([]byte{9}, uint8(0xFF), uint8(200))
	f.Fuzz(func(t *testing.T, raw []byte, mask uint8, corrupt uint8) {
		field, err := gf.New(8)
		if err != nil {
			t.Fatal(err)
		}
		const n, k = 7, 3
		code, err := New(field, n, k)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]gf.Sym, k)
		for i := range data {
			if i < len(raw) {
				data[i] = gf.Sym(raw[i])
			}
		}
		cw := code.Encode(data)

		var pos []int
		var vals []gf.Sym
		for j := 0; j < n; j++ {
			if mask>>uint(j)&1 == 1 {
				pos = append(pos, j)
				vals = append(vals, cw[j])
			}
		}
		if len(pos) < k {
			if _, err := code.Decode(pos, vals); err != ErrTooFew {
				t.Fatalf("want ErrTooFew, got %v", err)
			}
			return
		}
		got, err := code.Decode(pos, vals)
		if err != nil {
			t.Fatalf("clean decode failed: %v", err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatal("round trip mismatch")
			}
		}

		// Single-symbol corruption: with > K positions it must be detected;
		// with exactly K it must decode to something (dimension-K freedom).
		delta := gf.Sym(corrupt)
		if delta == 0 {
			delta = 1
		}
		bad := int(corrupt) % len(pos)
		vals[bad] ^= delta
		if len(pos) > k {
			if code.Consistent(pos, vals) {
				t.Fatal("corruption not detected with surplus positions")
			}
		} else if !code.Consistent(pos, vals) {
			t.Fatal("exactly-K positions must always be consistent")
		}
	})
}

// FuzzInterleavedRoundTrip fuzzes the interleaved code the consensus
// generations ride on: for any data and any erasure pattern, decoding from
// any >= K surviving positions must return the original K*M data symbols
// (erasures model the symbols an honest processor never received from
// untrusted or silent senders), fewer than K survivors must fail with
// ErrTooFew, and a single corrupted lane symbol must be detected whenever
// surplus positions are present.
func FuzzInterleavedRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(0x1F), uint8(1), uint8(0))
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint8(0x55), uint8(3), uint8(9))
	f.Add([]byte{}, uint8(0x07), uint8(2), uint8(100))
	f.Add([]byte{4, 4, 4, 4, 4, 4, 4, 4}, uint8(0x6D), uint8(7), uint8(31))
	f.Fuzz(func(t *testing.T, raw []byte, mask uint8, lanesSeed uint8, corrupt uint8) {
		field, err := gf.New(8)
		if err != nil {
			t.Fatal(err)
		}
		const n, k = 7, 3
		code, err := New(field, n, k)
		if err != nil {
			t.Fatal(err)
		}
		m := int(lanesSeed%8) + 1
		ic, err := NewInterleaved(code, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]gf.Sym, ic.DataSyms())
		for i := range data {
			if i < len(raw) {
				data[i] = gf.Sym(raw[i])
			}
		}
		words := ic.Encode(data)

		// The words must be views over one contiguous position-major stripe,
		// and EncodeStripe into a caller buffer must reproduce it exactly.
		stripe := ic.EncodeStripe(data, make([]gf.Sym, n*m))
		for j := 0; j < n; j++ {
			for l := 0; l < m; l++ {
				if words[j][l] != stripe[j*m+l] {
					t.Fatalf("Encode/EncodeStripe disagree at word %d lane %d", j, l)
				}
			}
		}

		// The mask selects the surviving positions; the rest are erased.
		var pos []int
		var surv [][]gf.Sym
		for j := 0; j < n; j++ {
			if mask>>uint(j)&1 == 1 {
				pos = append(pos, j)
				surv = append(surv, words[j])
			}
		}
		if len(pos) < k {
			if _, err := ic.Decode(pos, surv); err != ErrTooFew {
				t.Fatalf("want ErrTooFew with %d survivors, got %v", len(pos), err)
			}
			return
		}
		got, err := ic.Decode(pos, surv)
		if err != nil {
			t.Fatalf("decode with %d erasures failed: %v", n-len(pos), err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatal("interleaved round trip mismatch")
			}
		}
		into := make([]gf.Sym, ic.DataSyms())
		if err := ic.DecodeInto(pos, surv, into); err != nil {
			t.Fatalf("DecodeInto failed where Decode succeeded: %v", err)
		}
		for i := range data {
			if into[i] != data[i] {
				t.Fatal("DecodeInto round trip mismatch")
			}
		}
		if !ic.Consistent(pos, surv) {
			t.Fatal("clean survivors reported inconsistent")
		}

		// Corrupt one lane symbol of one surviving word (copy first: words
		// share Encode's backing array).
		delta := gf.Sym(corrupt)
		if delta == 0 {
			delta = 1
		}
		bad := int(corrupt) % len(pos)
		tampered := append([]gf.Sym(nil), surv[bad]...)
		tampered[int(corrupt/8)%m] ^= delta
		surv[bad] = tampered
		if len(pos) > k {
			if ic.Consistent(pos, surv) {
				t.Fatal("corrupted lane not detected with surplus positions")
			}
		} else if !ic.Consistent(pos, surv) {
			t.Fatal("exactly-K positions must always be consistent")
		}
	})
}

// FuzzMatrixVsScalar fuzzes the matrix-form fast path against the scalar
// log/exp reference across field widths, lane counts, erasure patterns and
// corruptions: EncodeStripe must equal the per-lane scalar encode, and
// DecodeInto/Consistent must agree with the scalar decode — same data, same
// error — on both clean and corrupted stripes.
func FuzzMatrixVsScalar(f *testing.F) {
	f.Add(uint8(8), uint8(3), uint8(0x1F), uint8(0), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint8(16), uint8(2), uint8(0x2D), uint8(9), []byte{0xFF, 0, 0xAA})
	f.Add(uint8(4), uint8(1), uint8(0x7F), uint8(77), []byte{})
	f.Add(uint8(11), uint8(4), uint8(0x3B), uint8(200), []byte{7, 7, 7, 7})
	f.Add(uint8(5), uint8(18), uint8(0x5D), uint8(41), []byte{9, 0, 3}) // 19 lanes: word tier, ragged tail
	f.Add(uint8(13), uint8(16), uint8(0x6B), uint8(5), []byte{1, 2, 3}) // 17 lanes, c > 8 half-word packing
	f.Fuzz(func(t *testing.T, cRaw, lanesRaw, mask, corrupt uint8, raw []byte) {
		c := uint(cRaw)%14 + 3 // field widths 3..16 (n=7 needs order > 7)
		field, err := gf.New(c)
		if err != nil {
			t.Fatal(err)
		}
		const n, k = 7, 3
		code, err := New(field, n, k)
		if err != nil {
			t.Fatal(err)
		}
		// 1..37 lanes: spans the scalar tier, the gf.MulTab sym sweeps and —
		// from wordMinLanes up, including counts that straddle a packed-word
		// boundary — the word-sliced tier of word.go.
		m := int(lanesRaw%37) + 1
		ic, err := NewInterleaved(code, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]gf.Sym, ic.DataSyms())
		for i := range data {
			if i < len(raw) {
				data[i] = gf.Sym(int(raw[i]) % field.Order())
			}
		}

		// Matrix encode == scalar encode, stripe for stripe.
		stripe := ic.EncodeStripe(data, make([]gf.Sym, n*m))
		ref := make([]gf.Sym, n*m)
		ic.encodeScalar(data, ref)
		for i := range stripe {
			if stripe[i] != ref[i] {
				t.Fatalf("c=%d m=%d: encode stripe[%d] = %#x, scalar %#x", c, m, i, stripe[i], ref[i])
			}
		}

		var pos []int
		var surv [][]gf.Sym
		for j := 0; j < n; j++ {
			if mask>>uint(j)&1 == 1 {
				pos = append(pos, j)
				surv = append(surv, stripe[j*m:(j+1)*m])
			}
		}
		if len(pos) < k {
			return
		}
		check := func(stage string) {
			t.Helper()
			got := make([]gf.Sym, ic.DataSyms())
			errMatrix := ic.DecodeInto(pos, surv, got)
			want := make([]gf.Sym, ic.DataSyms())
			errScalar := ic.decodeIntoScalar(pos, surv, want)
			if (errMatrix == nil) != (errScalar == nil) {
				t.Fatalf("c=%d m=%d %s: matrix err %v, scalar err %v", c, m, stage, errMatrix, errScalar)
			}
			if errMatrix == nil {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("c=%d m=%d %s: decode[%d] = %#x, scalar %#x", c, m, stage, i, got[i], want[i])
					}
				}
			}
			if ic.Consistent(pos, surv) != (errScalar == nil) {
				t.Fatalf("c=%d m=%d %s: Consistent disagrees with scalar decode", c, m, stage)
			}
		}
		check("clean")

		// Corrupt one lane symbol of one surviving word and re-compare.
		delta := gf.Sym(int(corrupt)%(field.Order()-1)) + 1
		bad := int(corrupt) % len(pos)
		tampered := append([]gf.Sym(nil), surv[bad]...)
		tampered[int(corrupt/8)%m] ^= delta
		surv[bad] = tampered
		check("corrupted")
	})
}

// FuzzCorrectErrors fuzzes the Berlekamp-Welch decoder within its radius.
func FuzzCorrectErrors(f *testing.F) {
	f.Add([]byte{1, 2}, uint16(0x035A))
	f.Add([]byte{0xF0}, uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, raw []byte, noise uint16) {
		field, err := gf.New(8)
		if err != nil {
			t.Fatal(err)
		}
		const n, k, m = 10, 2, 8 // corrects up to 3 errors
		code, err := New(field, n, k)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]gf.Sym, k)
		for i := range data {
			if i < len(raw) {
				data[i] = gf.Sym(raw[i])
			}
		}
		cw := code.Encode(data)
		pos := make([]int, m)
		vals := make([]gf.Sym, m)
		for i := 0; i < m; i++ {
			pos[i] = i
			vals[i] = cw[i]
		}
		// Corrupt up to (m-k)/2 = 3 positions chosen by the noise bits.
		errs := 0
		for i := 0; i < m && errs < (m-k)/2; i++ {
			if noise>>uint(i)&1 == 1 {
				vals[i] ^= gf.Sym(noise>>8) | 1
				errs++
			}
		}
		got, err := code.CorrectErrors(pos, vals)
		if err != nil {
			t.Fatalf("within-radius correction failed (%d errors): %v", errs, err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("wrong correction with %d errors", errs)
			}
		}
	})
}
