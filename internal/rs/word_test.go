package rs

import (
	"math/rand"
	"testing"

	"byzcons/internal/gf"
)

// TestWordPathMatchesScalar forces the word-sliced tier onto tiny stripes
// (wordMinLanes = 1) across field widths and lane counts — including counts
// that straddle a packed-word boundary — and checks encode, decode and the
// consistency test symbol-for-symbol against the scalar per-lane oracle,
// clean and corrupted. Not parallel: it rebinds the word-tier threshold.
func TestWordPathMatchesScalar(t *testing.T) {
	oldMin := wordMinLanes
	wordMinLanes = 1
	defer func() { wordMinLanes = oldMin }()

	r := rand.New(rand.NewSource(8))
	for _, c := range []uint{3, 4, 7, 8, 9, 12, 16} {
		field, err := gf.New(c)
		if err != nil {
			t.Fatal(err)
		}
		code, err := New(field, 7, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33} {
			ic, err := NewInterleaved(code, m)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]gf.Sym, ic.DataSyms())
			for i := range data {
				data[i] = gf.Sym(r.Intn(field.Order()))
			}
			stripe := ic.EncodeStripe(data, make([]gf.Sym, 7*m))
			ref := make([]gf.Sym, 7*m)
			ic.encodeScalar(data, ref)
			for i := range stripe {
				if stripe[i] != ref[i] {
					t.Fatalf("c=%d m=%d: word encode stripe[%d] = %#x, scalar %#x", c, m, i, stripe[i], ref[i])
				}
			}

			pos := []int{0, 2, 3, 5, 6} // K=3 chosen + 2 surplus rows
			words := make([][]gf.Sym, len(pos))
			for i, p := range pos {
				words[i] = stripe[p*m : (p+1)*m]
			}
			out := make([]gf.Sym, ic.DataSyms())
			if err := ic.DecodeInto(pos, words, out); err != nil {
				t.Fatalf("c=%d m=%d: word decode: %v", c, m, err)
			}
			for i := range data {
				if out[i] != data[i] {
					t.Fatalf("c=%d m=%d: word decode mismatch at %d", c, m, i)
				}
			}
			if !ic.Consistent(pos, words) {
				t.Fatalf("c=%d m=%d: word consistent rejected a clean stripe", c, m)
			}

			// Corrupt the last lane of a surplus word — the ragged packed
			// tail — and the first lane of a chosen word.
			for _, tc := range []struct{ wi, lane int }{{4, m - 1}, {1, 0}} {
				tampered := append([]gf.Sym(nil), words[tc.wi]...)
				tampered[tc.lane] ^= 1
				saved := words[tc.wi]
				words[tc.wi] = tampered
				if ic.Consistent(pos, words) {
					t.Fatalf("c=%d m=%d: word consistent missed corruption in word %d lane %d", c, m, tc.wi, tc.lane)
				}
				if err := ic.DecodeInto(pos, words, out); err != ErrInconsistent {
					t.Fatalf("c=%d m=%d: word decode of corrupted stripe: got %v, want ErrInconsistent", c, m, err)
				}
				words[tc.wi] = saved
			}
		}
	}
}

// TestWordPathParallelLanes combines the word tier with the lane worker pool
// (chunk threshold shrunk so ranges fan out) and checks chunked word results
// against the scalar oracle — chunk-local packing must keep ragged chunk
// boundaries exact.
func TestWordPathParallelLanes(t *testing.T) {
	oldMin, oldChunk := wordMinLanes, laneChunk
	wordMinLanes, laneChunk = 1, 8
	defer func() { wordMinLanes, laneChunk = oldMin, oldChunk }()

	field, err := gf.New(8)
	if err != nil {
		t.Fatal(err)
	}
	code, err := New(field, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	const m = 101 // parallel chunks of 8 lanes with a ragged final chunk
	ic, err := NewInterleaved(code, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(88))
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(r.Intn(field.Order()))
	}
	stripe := ic.EncodeStripe(data, make([]gf.Sym, 7*m))
	ref := make([]gf.Sym, 7*m)
	ic.encodeScalar(data, ref)
	for i := range stripe {
		if stripe[i] != ref[i] {
			t.Fatalf("parallel word encode diverges from scalar at %d", i)
		}
	}
	pos := []int{1, 2, 4, 5, 6}
	words := make([][]gf.Sym, len(pos))
	for i, p := range pos {
		words[i] = stripe[p*m : (p+1)*m]
	}
	out := make([]gf.Sym, ic.DataSyms())
	if err := ic.DecodeInto(pos, words, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("parallel word decode mismatch at %d", i)
		}
	}
	tampered := append([]gf.Sym(nil), words[3]...)
	tampered[m-1] ^= 0x40
	words[3] = tampered
	if ic.Consistent(pos, words) {
		t.Fatal("parallel word consistent missed a corrupted lane")
	}
}
