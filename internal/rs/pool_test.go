package rs

import (
	"runtime"
	"testing"
)

// TestLaneWorkersTracksGOMAXPROCS pins the call-time resolution of the pool
// width: programs (and the -cpu test matrix) adjust GOMAXPROCS after package
// init, and the fan-out decision must follow. Not parallel: it rebinds
// GOMAXPROCS.
func TestLaneWorkersTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	if got := laneWorkers(); got != 1 {
		t.Fatalf("laneWorkers() = %d at GOMAXPROCS=1, want 1", got)
	}
	if parallelLanes(4 * laneChunk) {
		t.Fatal("parallelLanes fanned out on a single-P process")
	}

	runtime.GOMAXPROCS(4)
	if got := laneWorkers(); got != 4 {
		t.Fatalf("laneWorkers() = %d at GOMAXPROCS=4, want 4", got)
	}
	if !parallelLanes(4 * laneChunk) {
		t.Fatal("parallelLanes stayed inline for a wide stripe at GOMAXPROCS=4")
	}

	// The pool itself must work at the new width: a fan-out wide enough to
	// need every worker, after the width change.
	oldChunk := laneChunk
	laneChunk = 8
	defer func() { laneChunk = oldChunk }()
	seen := make([]bool, 64)
	forLanes(64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("lane %d not covered after GOMAXPROCS change", i)
		}
	}
}
