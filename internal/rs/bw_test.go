package rs

import (
	"errors"
	"math/rand"
	"testing"

	"byzcons/internal/gf"
)

func TestCorrectErrorsRecovers(t *testing.T) {
	// Up to floor((m-k)/2) arbitrary corruptions must be corrected, for a
	// spread of geometries including the FH06 dissemination shape
	// (m = n-t symbols, k = n-3t data).
	r := rand.New(rand.NewSource(31))
	for _, tc := range []struct{ n, k, m int }{
		{7, 2, 6}, {7, 1, 6}, {10, 4, 8}, {13, 4, 12}, {15, 3, 11}, {9, 3, 9},
	} {
		code := newCode(t, 8, tc.n, tc.k)
		maxE := (tc.m - tc.k) / 2
		for trial := 0; trial < 50; trial++ {
			data := randData(r, code.F, tc.k)
			cw := code.Encode(data)
			pos := randSubset(r, tc.n, tc.m)
			vals := make([]gf.Sym, tc.m)
			for i, p := range pos {
				vals[i] = cw[p]
			}
			nerr := r.Intn(maxE + 1)
			for _, bad := range r.Perm(tc.m)[:nerr] {
				vals[bad] ^= gf.Sym(1 + r.Intn(254))
			}
			got, err := code.CorrectErrors(pos, vals)
			if err != nil {
				t.Fatalf("(n=%d,k=%d,m=%d,e=%d): %v", tc.n, tc.k, tc.m, nerr, err)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("(n=%d,k=%d,m=%d,e=%d): wrong data", tc.n, tc.k, tc.m, nerr)
				}
			}
		}
	}
}

func TestCorrectErrorsBeyondRadiusFails(t *testing.T) {
	// With e+1 corruptions placed to land far from every codeword, the
	// decoder must not silently return wrong data: it either errors or
	// (rarely, if the corrupted word lands within radius of another
	// codeword) returns a codeword consistent with m-e positions.
	r := rand.New(rand.NewSource(37))
	code := newCode(t, 8, 10, 3)
	m := 9
	maxE := (m - 3) / 2 // 3
	failures := 0
	for trial := 0; trial < 100; trial++ {
		data := randData(r, code.F, 3)
		cw := code.Encode(data)
		pos := randSubset(r, 10, m)
		vals := make([]gf.Sym, m)
		for i, p := range pos {
			vals[i] = cw[p]
		}
		for _, bad := range r.Perm(m)[:maxE+2] {
			vals[bad] ^= gf.Sym(1 + r.Intn(254))
		}
		got, err := code.CorrectErrors(pos, vals)
		if err != nil {
			failures++
			continue
		}
		// If it decoded, the result must agree with >= m-maxE positions.
		agree := 0
		recoded := code.Encode(got)
		for i, p := range pos {
			if recoded[p] == vals[i] {
				agree++
			}
		}
		if agree < m-maxE {
			t.Fatalf("decoder returned word agreeing on only %d/%d positions", agree, m)
		}
	}
	if failures == 0 {
		t.Error("no over-radius corruption was ever rejected; suspicious")
	}
}

func TestCorrectErrorsNoErrorsFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	code := newCode(t, 8, 7, 4)
	data := randData(r, code.F, 4)
	cw := code.Encode(data)
	pos := []int{0, 2, 3, 5, 6}
	vals := make([]gf.Sym, len(pos))
	for i, p := range pos {
		vals[i] = cw[p]
	}
	got, err := code.CorrectErrors(pos, vals) // e = 0 geometry
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("mismatch")
		}
	}
}

func TestCorrectErrorsTooFew(t *testing.T) {
	code := newCode(t, 8, 7, 4)
	_, err := code.CorrectErrors([]int{0, 1}, []gf.Sym{1, 2})
	if !errors.Is(err, ErrTooFew) {
		t.Errorf("err = %v, want ErrTooFew", err)
	}
}

func TestCorrectErrorsGF16Field(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	code := newCode(t, 16, 12, 4)
	data := randData(r, code.F, 4)
	cw := code.Encode(data)
	pos := randSubset(r, 12, 10)
	vals := make([]gf.Sym, 10)
	for i, p := range pos {
		vals[i] = cw[p]
	}
	vals[1] ^= 0x1234
	vals[7] ^= 0x0F0F
	vals[4] ^= 0x4321
	got, err := code.CorrectErrors(pos, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("mismatch under GF(2^16)")
		}
	}
}
