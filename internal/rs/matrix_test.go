package rs

import (
	"math/rand"
	"sync"
	"testing"

	"byzcons/internal/gf"
)

// TestMatrixParallelLanes drives the lane worker pool by shrinking the chunk
// threshold, checking that fanned-out encode/decode/consistent results are
// identical to the inline ones (disjoint lane chunks, shared tables).
func TestMatrixParallelLanes(t *testing.T) {
	old := laneChunk
	laneChunk = 8
	defer func() { laneChunk = old }()

	field, err := gf.New(8)
	if err != nil {
		t.Fatal(err)
	}
	code, err := New(field, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	const m = 100 // >= 2*laneChunk: parallel path
	ic, err := NewInterleaved(code, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(r.Intn(field.Order()))
	}
	stripe := ic.EncodeStripe(data, make([]gf.Sym, 7*m))
	ref := make([]gf.Sym, 7*m)
	ic.encodeScalar(data, ref)
	for i := range stripe {
		if stripe[i] != ref[i] {
			t.Fatalf("parallel encode diverges from scalar at %d", i)
		}
	}

	pos := []int{0, 1, 3, 4, 6}
	words := make([][]gf.Sym, len(pos))
	for i, p := range pos {
		words[i] = stripe[p*m : (p+1)*m]
	}
	out := make([]gf.Sym, ic.DataSyms())
	if err := ic.DecodeInto(pos, words, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("parallel decode mismatch at %d", i)
		}
	}
	if !ic.Consistent(pos, words) {
		t.Fatal("parallel consistent rejected a clean stripe")
	}
	tampered := append([]gf.Sym(nil), words[2]...)
	tampered[m-1] ^= 1
	words[2] = tampered
	if ic.Consistent(pos, words) {
		t.Fatal("parallel consistent missed a corrupted lane")
	}
	if err := ic.DecodeInto(pos, words, out); err != ErrInconsistent {
		t.Fatalf("parallel decode of corrupted stripe: got %v, want ErrInconsistent", err)
	}
}

// TestMatrixFallbackUnsorted pins the scalar fallback: unsorted (but valid)
// position lists bypass the subset cache and still decode correctly.
func TestMatrixFallbackUnsorted(t *testing.T) {
	t.Parallel()
	field, err := gf.New(8)
	if err != nil {
		t.Fatal(err)
	}
	code, err := New(field, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewInterleaved(code, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]gf.Sym, ic.DataSyms())
	for i := range data {
		data[i] = gf.Sym(i * 11 % 251)
	}
	words := ic.Encode(data)
	pos := []int{6, 0, 3, 5, 1} // unsorted: must take the scalar path
	sub := make([][]gf.Sym, len(pos))
	for i, p := range pos {
		sub[i] = words[p]
	}
	if st := code.subsetFor(pos); st != nil {
		t.Fatal("unsorted positions must not hit the matrix path")
	}
	got, err := ic.Decode(pos, sub)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("fallback decode mismatch at %d", i)
		}
	}
	if !ic.Consistent(pos, sub) {
		t.Fatal("fallback consistent rejected a clean word set")
	}
}

// TestCodeInterning pins the construction cache: same parameters, same
// instance — the matrix tables amortize across every processor of every run.
func TestCodeInterning(t *testing.T) {
	t.Parallel()
	field, err := gf.New(8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(field, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(field, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("New did not intern equal codes")
	}
	c, err := New(field, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct dimensions interned to one code")
	}
}

// TestSubsetCacheConcurrent hammers one shared code from concurrent
// goroutines over many distinct position subsets — the shape of pipelined
// generation fibers sharing the interned code — and checks every result.
// Run under -race this is the flake check for the pooled stripe buffers.
func TestSubsetCacheConcurrent(t *testing.T) {
	t.Parallel()
	field, err := gf.New(8)
	if err != nil {
		t.Fatal(err)
	}
	code, err := New(field, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewInterleaved(code, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			data := make([]gf.Sym, ic.DataSyms())
			out := make([]gf.Sym, ic.DataSyms())
			stripe := make([]gf.Sym, 10*16)
			for iter := 0; iter < 200; iter++ {
				for i := range data {
					data[i] = gf.Sym(r.Intn(field.Order()))
				}
				ic.EncodeStripe(data, stripe)
				var pos []int
				var words [][]gf.Sym
				for j := 0; j < 10; j++ {
					if r.Intn(2) == 0 || 10-j <= 4-len(pos) {
						pos = append(pos, j)
						words = append(words, stripe[j*16:(j+1)*16])
					}
				}
				if err := ic.DecodeInto(pos, words, out); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				for i := range data {
					if out[i] != data[i] {
						t.Errorf("round trip mismatch at %d", i)
						return
					}
				}
			}
		}(int64(g) * 977)
	}
	wg.Wait()
}
