package rs

import (
	"fmt"
	"sync"

	"byzcons/internal/gf"
)

// Interleaved is an (N, K) Reed-Solomon code interleaved M ways: a "word" at
// codeword position j is the vector of the j-th symbols of M independent
// codewords ("lanes"). Interleaving lets a consensus generation carry
// D = K*M*c bits while preserving the property that any K positions determine
// all the data, so the paper's D parameter can be tuned freely without
// changing the field.
type Interleaved struct {
	C *Code
	M int // number of lanes
}

// NewInterleaved wraps code c with m >= 1 lanes.
func NewInterleaved(c *Code, m int) (*Interleaved, error) {
	if m < 1 {
		return nil, fmt.Errorf("rs: interleave depth m=%d < 1", m)
	}
	return &Interleaved{C: c, M: m}, nil
}

// DataSyms returns the number of data symbols per generation, K*M.
func (ic *Interleaved) DataSyms() int { return ic.C.K * ic.M }

// DataBits returns the number of data bits per generation, D = K*M*c.
func (ic *Interleaved) DataBits() int { return ic.C.K * ic.M * int(ic.C.F.C()) }

// WordBits returns the number of bits in one interleaved word, M*c.
func (ic *Interleaved) WordBits() int { return ic.M * int(ic.C.F.C()) }

// symPool recycles scratch symbol slices for the per-lane working buffers of
// the interleaved hot paths. The returned words/results escape to callers
// and stay freshly allocated; only buffers whose lifetime ends inside the
// call are pooled, so concurrent generation fibers can share the pool.
var symPool = sync.Pool{New: func() any { return new([]gf.Sym) }}

// getSyms returns a pooled slice of n symbols (contents undefined).
func getSyms(n int) *[]gf.Sym {
	p := symPool.Get().(*[]gf.Sym)
	if cap(*p) < n {
		*p = make([]gf.Sym, n)
	}
	*p = (*p)[:n]
	return p
}

// Encode maps K*M data symbols (lane-major: data[l*K:(l+1)*K] is lane l) to N
// words of M symbols each (out[j][l] is lane l's symbol at position j).
func (ic *Interleaved) Encode(data []gf.Sym) [][]gf.Sym {
	if len(data) != ic.DataSyms() {
		panic(fmt.Sprintf("rs: interleaved Encode got %d symbols, want %d", len(data), ic.DataSyms()))
	}
	out := make([][]gf.Sym, ic.C.N)
	flat := make([]gf.Sym, ic.C.N*ic.M)
	for j := range out {
		out[j] = flat[j*ic.M : (j+1)*ic.M]
	}
	cwp := getSyms(ic.C.N)
	defer symPool.Put(cwp)
	cw := *cwp
	for l := 0; l < ic.M; l++ {
		ic.C.EncodeInto(data[l*ic.C.K:(l+1)*ic.C.K], cw)
		for j := 0; j < ic.C.N; j++ {
			out[j][l] = cw[j]
		}
	}
	return out
}

// Decode recovers the K*M data symbols from words at >= K positions,
// verifying surplus positions lane by lane.
func (ic *Interleaved) Decode(positions []int, words [][]gf.Sym) ([]gf.Sym, error) {
	if len(positions) != len(words) {
		panic("rs: positions/words length mismatch")
	}
	if len(positions) < ic.C.K {
		return nil, ErrTooFew
	}
	data := make([]gf.Sym, ic.DataSyms())
	if err := ic.decodeInto(positions, words, data); err != nil {
		return nil, err
	}
	return data, nil
}

// decodeInto is Decode writing into a caller-provided buffer, with pooled
// lane scratch.
func (ic *Interleaved) decodeInto(positions []int, words [][]gf.Sym, data []gf.Sym) error {
	lanep := getSyms(len(words))
	defer symPool.Put(lanep)
	lane := *lanep
	for l := 0; l < ic.M; l++ {
		for i, w := range words {
			if len(w) != ic.M {
				panic(fmt.Sprintf("rs: word %d has %d lanes, want %d", i, len(w), ic.M))
			}
			lane[i] = w[l]
		}
		if err := ic.C.DecodeInto(positions, lane, data[l*ic.C.K:(l+1)*ic.C.K]); err != nil {
			return err
		}
	}
	return nil
}

// Consistent reports whether there is a single interleaved codeword agreeing
// with the given words at the given positions (every lane must agree). The
// decoded symbols are discarded, so the whole check runs on pooled scratch.
func (ic *Interleaved) Consistent(positions []int, words [][]gf.Sym) bool {
	if len(positions) <= ic.C.K {
		return true
	}
	datap := getSyms(ic.DataSyms())
	defer symPool.Put(datap)
	return ic.decodeInto(positions, words, *datap) == nil
}

// WordsEqual reports whether two interleaved words are identical.
// A nil word (the paper's ⊥) is equal only to another nil word.
func WordsEqual(a, b []gf.Sym) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
