package rs

import (
	"fmt"

	"byzcons/internal/gf"
)

// Interleaved is an (N, K) Reed-Solomon code interleaved M ways: a "word" at
// codeword position j is the vector of the j-th symbols of M independent
// codewords ("lanes"). Interleaving lets a consensus generation carry
// D = K*M*c bits while preserving the property that any K positions determine
// all the data, so the paper's D parameter can be tuned freely without
// changing the field.
type Interleaved struct {
	C *Code
	M int // number of lanes
}

// NewInterleaved wraps code c with m >= 1 lanes.
func NewInterleaved(c *Code, m int) (*Interleaved, error) {
	if m < 1 {
		return nil, fmt.Errorf("rs: interleave depth m=%d < 1", m)
	}
	return &Interleaved{C: c, M: m}, nil
}

// DataSyms returns the number of data symbols per generation, K*M.
func (ic *Interleaved) DataSyms() int { return ic.C.K * ic.M }

// DataBits returns the number of data bits per generation, D = K*M*c.
func (ic *Interleaved) DataBits() int { return ic.C.K * ic.M * int(ic.C.F.C()) }

// WordBits returns the number of bits in one interleaved word, M*c.
func (ic *Interleaved) WordBits() int { return ic.M * int(ic.C.F.C()) }

// Encode maps K*M data symbols (lane-major: data[l*K:(l+1)*K] is lane l) to N
// words of M symbols each (out[j][l] is lane l's symbol at position j).
func (ic *Interleaved) Encode(data []gf.Sym) [][]gf.Sym {
	if len(data) != ic.DataSyms() {
		panic(fmt.Sprintf("rs: interleaved Encode got %d symbols, want %d", len(data), ic.DataSyms()))
	}
	out := make([][]gf.Sym, ic.C.N)
	flat := make([]gf.Sym, ic.C.N*ic.M)
	for j := range out {
		out[j] = flat[j*ic.M : (j+1)*ic.M]
	}
	for l := 0; l < ic.M; l++ {
		cw := ic.C.Encode(data[l*ic.C.K : (l+1)*ic.C.K])
		for j := 0; j < ic.C.N; j++ {
			out[j][l] = cw[j]
		}
	}
	return out
}

// Decode recovers the K*M data symbols from words at >= K positions,
// verifying surplus positions lane by lane.
func (ic *Interleaved) Decode(positions []int, words [][]gf.Sym) ([]gf.Sym, error) {
	if len(positions) != len(words) {
		panic("rs: positions/words length mismatch")
	}
	if len(positions) < ic.C.K {
		return nil, ErrTooFew
	}
	data := make([]gf.Sym, ic.DataSyms())
	lane := make([]gf.Sym, len(words))
	for l := 0; l < ic.M; l++ {
		for i, w := range words {
			if len(w) != ic.M {
				panic(fmt.Sprintf("rs: word %d has %d lanes, want %d", i, len(w), ic.M))
			}
			lane[i] = w[l]
		}
		d, err := ic.C.Decode(positions, lane)
		if err != nil {
			return nil, err
		}
		copy(data[l*ic.C.K:(l+1)*ic.C.K], d)
	}
	return data, nil
}

// Consistent reports whether there is a single interleaved codeword agreeing
// with the given words at the given positions (every lane must agree).
func (ic *Interleaved) Consistent(positions []int, words [][]gf.Sym) bool {
	if len(positions) <= ic.C.K {
		return true
	}
	_, err := ic.Decode(positions, words)
	return err == nil
}

// WordsEqual reports whether two interleaved words are identical.
// A nil word (the paper's ⊥) is equal only to another nil word.
func WordsEqual(a, b []gf.Sym) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
