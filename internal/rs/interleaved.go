package rs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"byzcons/internal/gf"
)

// Interleaved is an (N, K) Reed-Solomon code interleaved M ways: a "word" at
// codeword position j is the vector of the j-th symbols of M independent
// codewords ("lanes"). Interleaving lets a consensus generation carry
// D = K*M*c bits while preserving the property that any K positions determine
// all the data, so the paper's D parameter can be tuned freely without
// changing the field.
//
// Layout. Data is lane-major (data[l*K:(l+1)*K] is lane l, matching the
// order generation inputs are read off the bit stream); codewords are stripe
// buffers — one contiguous []gf.Sym of N*M symbols, position-major, where
// stripe[j*M:(j+1)*M] is the word sent to position j. All hot operations run
// matrix-form (matrix.go) as contiguous M-symbol sweeps over the lane slabs
// instead of per-lane, per-symbol scalar arithmetic — gf.MulTab sym sweeps
// for narrow stripes, the packed word-sliced kernels of word.go from
// wordMinLanes up — and stripes wide enough to matter additionally fan their
// lane range out across the bounded worker pool (pool.go). The scalar
// per-lane path is kept as the reference oracle and as the fallback for
// codes outside the matrix path's domain.
type Interleaved struct {
	C *Code
	M int // number of lanes
}

// NewInterleaved wraps code c with m >= 1 lanes.
func NewInterleaved(c *Code, m int) (*Interleaved, error) {
	if m < 1 {
		return nil, fmt.Errorf("rs: interleave depth m=%d < 1", m)
	}
	return &Interleaved{C: c, M: m}, nil
}

// DataSyms returns the number of data symbols per generation, K*M.
func (ic *Interleaved) DataSyms() int { return ic.C.K * ic.M }

// DataBits returns the number of data bits per generation, D = K*M*c.
func (ic *Interleaved) DataBits() int { return ic.C.K * ic.M * int(ic.C.F.C()) }

// WordBits returns the number of bits in one interleaved word, M*c.
func (ic *Interleaved) WordBits() int { return ic.M * int(ic.C.F.C()) }

// symPool recycles scratch symbol slices for the working buffers of the
// interleaved hot paths. The returned words/results escape to callers and
// stay freshly allocated; only buffers whose lifetime ends inside the call
// are pooled, so concurrent generation fibers can share the pool.
var symPool = sync.Pool{New: func() any { return new([]gf.Sym) }}

// getSyms returns a pooled slice of n symbols (contents undefined).
func getSyms(n int) *[]gf.Sym {
	p := symPool.Get().(*[]gf.Sym)
	if cap(*p) < n {
		*p = make([]gf.Sym, n)
	}
	*p = (*p)[:n]
	return p
}

// Encode maps K*M data symbols (lane-major) to N words of M symbols each
// (out[j][l] is lane l's symbol at position j). The returned words are views
// over one freshly allocated stripe; use EncodeStripe to control the buffer.
// The transpose scratch rides in the same allocation as the stripe, so the
// per-generation protocol path stays off the shared pool (whose slots churn
// when a window of fibers interleaves).
func (ic *Interleaved) Encode(data []gf.Sym) [][]gf.Sym {
	n, k, m := ic.C.N, ic.C.K, ic.M
	if len(data) != ic.DataSyms() {
		panic(fmt.Sprintf("rs: interleaved Encode got %d symbols, want %d", len(data), ic.DataSyms()))
	}
	block := make([]gf.Sym, (n+k)*m)
	flat := block[: n*m : n*m]
	if ic.C.enc == nil {
		ic.encodeScalar(data, flat)
	} else {
		ic.encodeStripeWith(data, flat, block[n*m:])
	}
	out := make([][]gf.Sym, n)
	for j := range out {
		out[j] = flat[j*m : (j+1)*m]
	}
	return out
}

// EncodeStripe writes the interleaved codeword into the position-major
// stripe (length N*M) and returns it — the allocation-free matrix-form
// encode: one copy/AddSlice/MulSliceXor sweep per encode-matrix entry.
func (ic *Interleaved) EncodeStripe(data, stripe []gf.Sym) []gf.Sym {
	k, n, m := ic.C.K, ic.C.N, ic.M
	if len(data) != ic.DataSyms() {
		panic(fmt.Sprintf("rs: interleaved Encode got %d symbols, want %d", len(data), ic.DataSyms()))
	}
	if len(stripe) != n*m {
		panic(fmt.Sprintf("rs: EncodeStripe got a %d-symbol stripe, want N*M=%d", len(stripe), n*m))
	}
	if ic.C.enc == nil {
		ic.encodeScalar(data, stripe)
		return stripe
	}
	coefp := getSyms(k * m)
	defer symPool.Put(coefp)
	ic.encodeStripeWith(data, stripe, *coefp)
	return stripe
}

// encodeStripeWith runs the matrix-form encode with caller-provided
// transpose scratch (length K*M), on the word tier for wide stripes and the
// gf.MulTab sym sweeps for narrow ones.
func (ic *Interleaved) encodeStripeWith(data, stripe, coefT []gf.Sym) {
	// Dispatch branches (rather than binding a method value) so the
	// narrow-stripe path stays allocation-free: a method value captures the
	// receiver in a heap closure on every call.
	word := ic.wordsOK(ic.M)
	if parallelLanes(ic.M) {
		forLanes(ic.M, func(lo, hi int) {
			if word {
				ic.encodeWordRange(data, stripe, coefT, lo, hi)
			} else {
				ic.encodeRange(data, stripe, coefT, lo, hi)
			}
		})
	} else if word {
		ic.encodeWordRange(data, stripe, coefT, 0, ic.M)
	} else {
		ic.encodeRange(data, stripe, coefT, 0, ic.M)
	}
}

// encodeRange runs the matrix-form encode over the lane sub-range [lo, hi):
// transpose the lane-major data into coefficient-major slabs (coefT[i*M+l]
// is lane l's coefficient i), then sweep the encode matrix.
func (ic *Interleaved) encodeRange(data, stripe, coefT []gf.Sym, lo, hi int) {
	k, n, m := ic.C.K, ic.C.N, ic.M
	for l := lo; l < hi; l++ {
		for i := 0; i < k; i++ {
			coefT[i*m+l] = data[l*k+i]
		}
	}
	for j := 0; j < n; j++ {
		dst := stripe[j*m+lo : j*m+hi]
		copy(dst, coefT[lo:hi]) // coefficient 0: weight x_j^0 = 1
		if j == 0 {
			for i := 1; i < k; i++ {
				gf.AddSlice(coefT[i*m+lo:i*m+hi], dst) // x_0 = 1
			}
			continue
		}
		for i := 1; i < k; i++ {
			ic.C.enc[i*n+j].MulSliceXor(coefT[i*m+lo:i*m+hi], dst)
		}
	}
}

// encodeScalar is the per-lane reference encode (codes beyond the matrix
// path's domain, and the oracle the fuzz tests compare against).
func (ic *Interleaved) encodeScalar(data, stripe []gf.Sym) {
	k, n, m := ic.C.K, ic.C.N, ic.M
	cwp := getSyms(n)
	defer symPool.Put(cwp)
	cw := *cwp
	for l := 0; l < m; l++ {
		ic.C.EncodeInto(data[l*k:(l+1)*k], cw)
		for j := 0; j < n; j++ {
			stripe[j*m+l] = cw[j]
		}
	}
}

// Decode recovers the K*M data symbols from words at >= K positions,
// verifying surplus positions.
func (ic *Interleaved) Decode(positions []int, words [][]gf.Sym) ([]gf.Sym, error) {
	if len(positions) != len(words) {
		panic("rs: positions/words length mismatch")
	}
	if len(positions) < ic.C.K {
		return nil, ErrTooFew
	}
	data := make([]gf.Sym, ic.DataSyms())
	if err := ic.DecodeInto(positions, words, data); err != nil {
		return nil, err
	}
	return data, nil
}

// checkWords validates the incoming word shapes once per operation.
func (ic *Interleaved) checkWords(words [][]gf.Sym) {
	for i, w := range words {
		if len(w) != ic.M {
			panic(fmt.Sprintf("rs: word %d has %d lanes, want %d", i, len(w), ic.M))
		}
	}
}

// DecodeInto is Decode writing into a caller-provided K*M buffer — the
// allocation-free variant. On the matrix path it runs K×K interpolation
// sweeps plus one check-row sweep per surplus position; otherwise it decodes
// lane by lane through the scalar reference.
func (ic *Interleaved) DecodeInto(positions []int, words [][]gf.Sym, out []gf.Sym) error {
	if len(positions) != len(words) {
		panic("rs: positions/words length mismatch")
	}
	if len(out) != ic.DataSyms() {
		panic(fmt.Sprintf("rs: DecodeInto got a %d-symbol buffer, want K*M=%d", len(out), ic.DataSyms()))
	}
	if len(positions) < ic.C.K {
		return ErrTooFew
	}
	ic.checkWords(words)
	st := ic.C.subsetFor(positions)
	if st == nil {
		return ic.decodeIntoScalar(positions, words, out)
	}
	k, m := ic.C.K, ic.M
	if !ic.checkSurplus(st, words) {
		return ErrInconsistent
	}
	coefp := getSyms(k * m)
	defer symPool.Put(coefp)
	coefT := *coefp
	word := ic.wordsOK(m)
	if parallelLanes(m) {
		forLanes(m, func(lo, hi int) {
			if word {
				ic.interpolateWordRange(st, words, out, coefT, lo, hi)
			} else {
				ic.interpolateRange(st, words, out, coefT, lo, hi)
			}
		})
	} else if word {
		ic.interpolateWordRange(st, words, out, coefT, 0, m)
	} else {
		ic.interpolateRange(st, words, out, coefT, 0, m)
	}
	return nil
}

// interpolateRange runs the K×K interpolation sweeps over the lane sub-range
// [lo, hi) and transposes the coefficient slabs back into lane-major order.
func (ic *Interleaved) interpolateRange(st *subsetTabs, words [][]gf.Sym, out, coefT []gf.Sym, lo, hi int) {
	k, m := ic.C.K, ic.M
	for i := 0; i < k; i++ {
		slab := coefT[i*m+lo : i*m+hi]
		st.dec[i*k].MulSlice(words[0][lo:hi], slab)
		for mi := 1; mi < k; mi++ {
			st.dec[i*k+mi].MulSliceXor(words[mi][lo:hi], slab)
		}
	}
	for l := lo; l < hi; l++ {
		for i := 0; i < k; i++ {
			out[l*k+i] = coefT[i*m+l]
		}
	}
}

// checkSurplus verifies every surplus position's word against the value the
// K chosen words predict for it — the membership test V/A ∈ C2t as cached
// check-row sweeps, no interpolation needed.
func (ic *Interleaved) checkSurplus(st *subsetTabs, words [][]gf.Sym) bool {
	if len(words) == ic.C.K {
		return true
	}
	word := ic.wordsOK(ic.M)
	if !parallelLanes(ic.M) {
		if word {
			return ic.checkWordRange(st, words, nil, 0, ic.M)
		}
		return ic.checkRange(st, words, nil, 0, ic.M)
	}
	var bad atomic.Bool
	forLanes(ic.M, func(lo, hi int) {
		ok := false
		if word {
			ok = ic.checkWordRange(st, words, &bad, lo, hi)
		} else {
			ok = ic.checkRange(st, words, &bad, lo, hi)
		}
		if !ok {
			bad.Store(true)
		}
	})
	return !bad.Load()
}

// checkRange verifies the surplus rows over the lane sub-range [lo, hi);
// stop, when non-nil, lets parallel chunks short-circuit on a peer's
// mismatch.
func (ic *Interleaved) checkRange(st *subsetTabs, words [][]gf.Sym, stop *atomic.Bool, lo, hi int) bool {
	k := ic.C.K
	surplus := len(words) - k
	predp := getSyms(hi - lo)
	defer symPool.Put(predp)
	pred := *predp
	for si := 0; si < surplus; si++ {
		if stop != nil && stop.Load() {
			return false
		}
		st.chk[si*k].MulSlice(words[0][lo:hi], pred)
		for mi := 1; mi < k; mi++ {
			st.chk[si*k+mi].MulSliceXor(words[mi][lo:hi], pred)
		}
		got := words[k+si][lo:hi]
		for i := range pred {
			if pred[i] != got[i] {
				return false
			}
		}
	}
	return true
}

// decodeIntoScalar is the per-lane reference decode.
func (ic *Interleaved) decodeIntoScalar(positions []int, words [][]gf.Sym, out []gf.Sym) error {
	lanep := getSyms(len(words))
	defer symPool.Put(lanep)
	lane := *lanep
	for l := 0; l < ic.M; l++ {
		for i, w := range words {
			lane[i] = w[l]
		}
		if err := ic.C.DecodeInto(positions, lane, out[l*ic.C.K:(l+1)*ic.C.K]); err != nil {
			return err
		}
	}
	return nil
}

// Consistent implements the paper's membership test V/A ∈ C2t: it reports
// whether there exists a single interleaved codeword agreeing with the given
// words at the given positions (every lane must agree). On the matrix path
// this runs only the surplus check rows — no interpolation at all. With
// |A| <= K any assignment is consistent (the code has dimension K).
func (ic *Interleaved) Consistent(positions []int, words [][]gf.Sym) bool {
	if len(positions) != len(words) {
		panic("rs: positions/words length mismatch")
	}
	if len(positions) <= ic.C.K {
		return true
	}
	ic.checkWords(words)
	if st := ic.C.subsetFor(positions); st != nil {
		return ic.checkSurplus(st, words)
	}
	datap := getSyms(ic.DataSyms())
	defer symPool.Put(datap)
	return ic.decodeIntoScalar(positions, words, *datap) == nil
}

// WordsEqual reports whether two interleaved words are identical.
// A nil word (the paper's ⊥) is equal only to another nil word.
func WordsEqual(a, b []gf.Sym) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
