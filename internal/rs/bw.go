package rs

import (
	"errors"
	"fmt"

	"byzcons/internal/gf"
)

// ErrTooManyErrors is returned when the received word is not within the
// guaranteed correction radius of any codeword.
var ErrTooManyErrors = errors.New("rs: more errors than the code can correct")

// CorrectErrors decodes the data from m (position, value) pairs of which up
// to e = floor((m-K)/2) may be arbitrarily wrong (Byzantine corruptions,
// not erasures — absent positions are simply omitted from the arguments).
// It implements the Berlekamp-Welch algorithm: find polynomials E (monic,
// degree e, the error locator) and Q (degree < K+e) with
//
//	Q(x_i) = y_i · E(x_i)  for all received pairs,
//
// by Gaussian elimination; then F = Q/E is the data polynomial whenever the
// number of actual errors is at most e. The result is verified against the
// received word; if fewer than m-e positions agree, ErrTooManyErrors is
// returned.
func (c *Code) CorrectErrors(positions []int, vals []gf.Sym) ([]gf.Sym, error) {
	m := len(positions)
	if len(vals) != m {
		panic("rs: positions/vals length mismatch")
	}
	if m < c.K {
		return nil, ErrTooFew
	}
	e := (m - c.K) / 2
	if e == 0 {
		return c.Decode(positions, vals)
	}
	f := c.F
	xs := make([]gf.Sym, m)
	seen := make(map[int]bool, m)
	for i, p := range positions {
		if p < 0 || p >= c.N {
			panic(fmt.Sprintf("rs: position %d out of range [0,%d)", p, c.N))
		}
		if seen[p] {
			panic(fmt.Sprintf("rs: duplicate position %d", p))
		}
		seen[p] = true
		xs[i] = c.xs[p]
	}

	// Unknowns: q_0..q_{K+e-1}, then ε_0..ε_{e-1} (E = x^e + Σ ε_j x^j).
	// Row i: Σ_j q_j·x_i^j - y_i·Σ_j ε_j·x_i^j = y_i·x_i^e.
	// (Char 2: subtraction is addition.)
	nq := c.K + e
	cols := nq + e
	mat := make([][]gf.Sym, m)
	for i := 0; i < m; i++ {
		row := make([]gf.Sym, cols+1)
		pw := gf.Sym(1)
		for j := 0; j < nq; j++ {
			row[j] = pw
			if j < e {
				row[nq+j] = f.Mul(vals[i], pw)
			}
			pw = f.Mul(pw, xs[i])
		}
		// pw is now x_i^(K+e); recompute x_i^e for the RHS.
		xe := gf.Sym(1)
		for j := 0; j < e; j++ {
			xe = f.Mul(xe, xs[i])
		}
		row[cols] = f.Mul(vals[i], xe)
		mat[i] = row
	}

	sol, ok := solve(f, mat, cols)
	if !ok {
		return nil, ErrTooManyErrors
	}
	q := sol[:nq]
	eloc := make([]gf.Sym, e+1)
	copy(eloc, sol[nq:])
	eloc[e] = 1 // monic

	// F = Q / E; the division must be exact.
	fpoly, rem := polyDiv(f, q, eloc)
	for _, r := range rem {
		if r != 0 {
			return nil, ErrTooManyErrors
		}
	}
	data := make([]gf.Sym, c.K)
	copy(data, fpoly)

	// Verify the correction radius.
	agree := 0
	for i := 0; i < m; i++ {
		if f.EvalPoly(data, xs[i]) == vals[i] {
			agree++
		}
	}
	if agree < m-e {
		return nil, ErrTooManyErrors
	}
	return data, nil
}

// solve performs Gaussian elimination on the augmented matrix (cols unknowns,
// last column RHS) and returns a particular solution with free variables set
// to zero. ok is false when the system is inconsistent.
func solve(f *gf.Field, mat [][]gf.Sym, cols int) ([]gf.Sym, bool) {
	rows := len(mat)
	pivotCol := make([]int, 0, cols)
	r := 0
	for col := 0; col < cols && r < rows; col++ {
		// Find a pivot.
		pivot := -1
		for i := r; i < rows; i++ {
			if mat[i][col] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		mat[r], mat[pivot] = mat[pivot], mat[r]
		inv := f.Inv(mat[r][col])
		for j := col; j <= cols; j++ {
			mat[r][j] = f.Mul(mat[r][j], inv)
		}
		for i := 0; i < rows; i++ {
			if i != r && mat[i][col] != 0 {
				factor := mat[i][col]
				for j := col; j <= cols; j++ {
					mat[i][j] ^= f.Mul(factor, mat[r][j])
				}
			}
		}
		pivotCol = append(pivotCol, col)
		r++
	}
	// Inconsistent if a zero row has nonzero RHS.
	for i := r; i < rows; i++ {
		if mat[i][cols] != 0 {
			return nil, false
		}
	}
	sol := make([]gf.Sym, cols)
	for i, col := range pivotCol {
		sol[col] = mat[i][cols]
	}
	return sol, true
}

// polyDiv divides polynomial a by b (b non-zero leading coefficient),
// returning quotient and remainder.
func polyDiv(f *gf.Field, a, b []gf.Sym) (quot, rem []gf.Sym) {
	degB := len(b) - 1
	for degB > 0 && b[degB] == 0 {
		degB--
	}
	rem = append([]gf.Sym(nil), a...)
	if len(rem) <= degB {
		return []gf.Sym{0}, rem
	}
	quot = make([]gf.Sym, len(rem)-degB)
	for d := len(rem) - 1; d >= degB; d-- {
		coef := f.Div(rem[d], b[degB])
		quot[d-degB] = coef
		if coef == 0 {
			continue
		}
		for j := 0; j <= degB; j++ {
			rem[d-degB+j] ^= f.Mul(coef, b[j])
		}
	}
	return quot, rem[:degB]
}
