package rs

import (
	"sync"
	"sync/atomic"

	"byzcons/internal/gf"
)

// This file runs the matrix-form sweeps of interleaved.go on the word-sliced
// kernel tier (gf/word.go): lane slabs are packed into []uint64 words — 8
// symbols per word for c <= 8, 4 for c <= 16 — swept with the cached
// per-scalar word tables, and unpacked at the stripe boundary. The packing
// passes are linear and amortize over the K sweeps every packed slab
// receives (the encode matrix sweeps each coefficient slab N times, the
// interpolation matrix K times), so for the protocol's wide stripes the word
// tier moves 4-8x less memory per sweep than the gf.MulTab path, which
// stays as the narrow-stripe path and — together with the scalar log/exp
// lane decode — as the correctness oracle (FuzzMatrixVsScalar exercises all
// three tiers against each other).

// wordMinLanes is the narrowest stripe the word tier accepts: below it the
// pack/unpack boundary costs more than the sweeps save. A var so tests can
// force the word path onto tiny stripes.
var wordMinLanes = 16

// wordsOK reports whether the word tier applies to an m-lane operation.
func (ic *Interleaved) wordsOK(m int) bool {
	return m >= wordMinLanes
}

// wordPool recycles the packed-lane workspaces of the word-tier sweeps.
var wordPool = sync.Pool{New: func() any { return new([]uint64) }}

// getWords returns a pooled slice of n lane words (contents undefined).
func getWords(n int) *[]uint64 {
	p := wordPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

// encodeWordRange runs the matrix-form encode over the lane sub-range
// [lo, hi) in the packed word domain: transpose the lane-major data into
// coefficient-major slabs, pack each slab once, sweep the word-table encode
// matrix per position, and unpack each position's row into the stripe.
// Chunks are self-contained (chunk-local packing), so parallel lane ranges
// need no word-boundary alignment.
func (ic *Interleaved) encodeWordRange(data, stripe, coefT []gf.Sym, lo, hi int) {
	k, n, m, c := ic.C.K, ic.C.N, ic.M, ic.C.F.C()
	for l := lo; l < hi; l++ {
		for i := 0; i < k; i++ {
			coefT[i*m+l] = data[l*k+i]
		}
	}
	mw := gf.PackedLen(c, hi-lo)
	wsp := getWords((k + 1) * mw)
	defer wordPool.Put(wsp)
	ws := *wsp
	pc, row := ws[:k*mw], ws[k*mw:]
	for i := 0; i < k; i++ {
		gf.Pack(c, coefT[i*m+lo:i*m+hi], pc[i*mw:(i+1)*mw])
	}
	for j := 0; j < n; j++ {
		copy(row, pc[:mw]) // coefficient 0: weight x_j^0 = 1
		if j == 0 {
			for i := 1; i < k; i++ {
				gf.AddWords(pc[i*mw:(i+1)*mw], row) // x_0 = 1
			}
		} else {
			for i := 1; i < k; i++ {
				ic.C.encW[i*n+j].MulWordsXor(pc[i*mw:(i+1)*mw], row)
			}
		}
		gf.Unpack(c, row, stripe[j*m+lo:j*m+hi])
	}
}

// interpolateWordRange runs the K×K interpolation over the lane sub-range
// [lo, hi) in the packed word domain and transposes the recovered
// coefficient slabs back into lane-major order.
func (ic *Interleaved) interpolateWordRange(st *subsetTabs, words [][]gf.Sym, out, coefT []gf.Sym, lo, hi int) {
	k, m, c := ic.C.K, ic.M, ic.C.F.C()
	mw := gf.PackedLen(c, hi-lo)
	wsp := getWords((k + 1) * mw)
	defer wordPool.Put(wsp)
	ws := *wsp
	pw, row := ws[:k*mw], ws[k*mw:]
	for mi := 0; mi < k; mi++ {
		gf.Pack(c, words[mi][lo:hi], pw[mi*mw:(mi+1)*mw])
	}
	for i := 0; i < k; i++ {
		st.decW[i*k].MulWords(pw[:mw], row)
		for mi := 1; mi < k; mi++ {
			st.decW[i*k+mi].MulWordsXor(pw[mi*mw:(mi+1)*mw], row)
		}
		gf.Unpack(c, row, coefT[i*m+lo:i*m+hi])
	}
	for l := lo; l < hi; l++ {
		for i := 0; i < k; i++ {
			out[l*k+i] = coefT[i*m+l]
		}
	}
}

// checkWordRange verifies the surplus rows over the lane sub-range [lo, hi)
// in the packed word domain: the K chosen words pack once, each surplus
// position's prediction is swept packed, and the comparison runs word
// against word (both sides zero-pad their tails identically, so padded
// words compare equal). stop, when non-nil, lets parallel chunks
// short-circuit on a peer's mismatch.
func (ic *Interleaved) checkWordRange(st *subsetTabs, words [][]gf.Sym, stop *atomic.Bool, lo, hi int) bool {
	k, c := ic.C.K, ic.C.F.C()
	surplus := len(words) - k
	mw := gf.PackedLen(c, hi-lo)
	wsp := getWords((k + 2) * mw)
	defer wordPool.Put(wsp)
	ws := *wsp
	pw, pred, got := ws[:k*mw], ws[k*mw:(k+1)*mw], ws[(k+1)*mw:]
	for mi := 0; mi < k; mi++ {
		gf.Pack(c, words[mi][lo:hi], pw[mi*mw:(mi+1)*mw])
	}
	for si := 0; si < surplus; si++ {
		if stop != nil && stop.Load() {
			return false
		}
		st.chkW[si*k].MulWords(pw[:mw], pred)
		for mi := 1; mi < k; mi++ {
			st.chkW[si*k+mi].MulWordsXor(pw[mi*mw:(mi+1)*mw], pred)
		}
		gf.Pack(c, words[k+si][lo:hi], got)
		for w := range pred {
			if pred[w] != got[w] {
				return false
			}
		}
	}
	return true
}
