package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestExchangeDeliversSorted(t *testing.T) {
	res := Run(RunConfig{N: 4, Seed: 1}, func(p *Proc) any {
		var out []Message
		for to := 0; to < 4; to++ {
			if to != p.ID {
				out = append(out, Message{To: to, Payload: p.ID * 10, Bits: 8, Tag: "x"})
			}
		}
		in := p.Exchange("s1", out, nil)
		froms := make([]int, len(in))
		for i, m := range in {
			froms[i] = m.From
		}
		return froms
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for id, v := range res.Values {
		froms := v.([]int)
		if len(froms) != 3 {
			t.Fatalf("proc %d got %d messages", id, len(froms))
		}
		for i := 1; i < len(froms); i++ {
			if froms[i-1] >= froms[i] {
				t.Fatalf("proc %d inbox not sorted by sender: %v", id, froms)
			}
		}
	}
	if got := res.Meter.TotalBits(); got != 4*3*8 {
		t.Errorf("metered %d bits, want %d", got, 4*3*8)
	}
	if res.Meter.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", res.Meter.Rounds())
	}
}

func TestStepMismatchAborts(t *testing.T) {
	res := Run(RunConfig{N: 3, Seed: 1}, func(p *Proc) any {
		step := StepID("a")
		if p.ID == 2 {
			step = "b"
		}
		p.Exchange(step, nil, nil)
		return nil
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "step mismatch") {
		t.Fatalf("err = %v, want step mismatch", res.Err)
	}
}

func TestEarlyExitAborts(t *testing.T) {
	res := Run(RunConfig{N: 3, Seed: 1}, func(p *Proc) any {
		if p.ID == 0 {
			return nil // exits without joining the barrier
		}
		p.Exchange("s", nil, nil)
		return nil
	})
	if res.Err == nil {
		t.Fatal("expected abort when a processor exits early")
	}
}

func TestBodyPanicAborts(t *testing.T) {
	res := Run(RunConfig{N: 3, Seed: 1}, func(p *Proc) any {
		if p.ID == 1 {
			panic("boom")
		}
		p.Exchange("s", nil, nil)
		return nil
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic propagation", res.Err)
	}
}

func TestAbortPropagates(t *testing.T) {
	sentinel := errors.New("deliberate")
	res := Run(RunConfig{N: 3, Seed: 1}, func(p *Proc) any {
		if p.ID == 0 {
			p.Abort(sentinel)
		}
		p.Exchange("s", nil, nil)
		return nil
	})
	if !errors.Is(res.Err, sentinel) {
		t.Fatalf("err = %v, want sentinel", res.Err)
	}
}

func TestSelfSendRejected(t *testing.T) {
	res := Run(RunConfig{N: 2, Seed: 1}, func(p *Proc) any {
		p.Exchange("s", []Message{{To: p.ID, Bits: 1, Tag: "x"}}, nil)
		return nil
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "bad To") {
		t.Fatalf("err = %v, want bad To", res.Err)
	}
}

func TestSenderIdentityEnforced(t *testing.T) {
	// The paper's channel model: a receiver always knows which channel a
	// message arrived on, so From cannot be forged even by the adversary.
	adv := Func(func(ctx *ExchangeCtx) {
		for i := range ctx.Out[1] {
			ctx.Out[1][i].From = 0 // attempt to impersonate processor 0
		}
	})
	res := Run(RunConfig{N: 3, Faulty: []int{1}, Adversary: adv, Seed: 1}, func(p *Proc) any {
		var out []Message
		if p.ID == 1 {
			out = append(out, Message{To: 2, Payload: "spoof", Bits: 8, Tag: "x"})
		}
		in := p.Exchange("s", out, nil)
		if p.ID == 2 {
			return in[0].From
		}
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Values[2].(int) != 1 {
		t.Errorf("forged From accepted: got %v", res.Values[2])
	}
}

// Func adapts a function to Adversary for tests.
type Func func(ctx *ExchangeCtx)

func (f Func) ReworkExchange(ctx *ExchangeCtx) { f(ctx) }
func (f Func) ReworkSync(ctx *SyncCtx)         {}

func TestSyncDeliversAllContributions(t *testing.T) {
	res := Run(RunConfig{N: 4, Seed: 1}, func(p *Proc) any {
		vals := p.Sync("gather", p.ID*7, 3, "g", nil)
		sum := 0
		for _, v := range vals {
			sum += v.(int)
		}
		return sum
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for id, v := range res.Values {
		if v.(int) != (0 + 7 + 14 + 21) {
			t.Errorf("proc %d sum = %v", id, v)
		}
	}
	if got := res.Meter.TotalBits(); got != 4*3 {
		t.Errorf("sync metered %d bits, want 12", got)
	}
}

type syncAdv struct{ touched *bool }

func (syncAdv) ReworkExchange(*ExchangeCtx) {}
func (a syncAdv) ReworkSync(ctx *SyncCtx) {
	*a.touched = true
	for i, f := range ctx.Faulty {
		if f {
			ctx.Vals[i] = -1
		}
	}
}

func TestSyncAdversaryRewritesFaultyOnly(t *testing.T) {
	touched := false
	res := Run(RunConfig{N: 3, Faulty: []int{2}, Adversary: syncAdv{&touched}, Seed: 1}, func(p *Proc) any {
		vals := p.Sync("g", p.ID, 0, "g", nil)
		return fmt.Sprintf("%v", vals)
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !touched {
		t.Fatal("adversary hook not invoked")
	}
	want := "[0 1 -1]"
	for id, v := range res.Values {
		if v.(string) != want {
			t.Errorf("proc %d saw %v, want %v", id, v, want)
		}
	}
}

func TestFaultyBitsAccountedSeparately(t *testing.T) {
	res := Run(RunConfig{N: 3, Faulty: []int{0}, Seed: 1}, func(p *Proc) any {
		var out []Message
		for to := 0; to < 3; to++ {
			if to != p.ID {
				out = append(out, Message{To: to, Bits: 10, Tag: "x"})
			}
		}
		p.Exchange("s", out, nil)
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	snap := res.Meter.Snapshot()["x"]
	if snap.Bits != 40 || snap.FaultyBits != 20 {
		t.Errorf("honest=%d faulty=%d, want 40/20", snap.Bits, snap.FaultyBits)
	}
	if res.Meter.HonestBits() != 40 {
		t.Errorf("HonestBits = %d", res.Meter.HonestBits())
	}
}

func TestManyRoundsDeterministic(t *testing.T) {
	run := func() []any {
		res := Run(RunConfig{N: 5, Seed: 42}, func(p *Proc) any {
			acc := 0
			for r := 0; r < 50; r++ {
				var out []Message
				for to := 0; to < 5; to++ {
					if to != p.ID {
						out = append(out, Message{To: to, Payload: acc + p.ID, Bits: 4, Tag: "t"})
					}
				}
				in := p.Exchange(StepID(fmt.Sprintf("r%d", r)), out, nil)
				for _, m := range in {
					acc += m.Payload.(int)
				}
			}
			return acc
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Values
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic value at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	res := Run(RunConfig{N: 3, Faulty: []int{5}}, func(p *Proc) any { return nil })
	if res.Err == nil {
		t.Error("out-of-range faulty id accepted")
	}
}

func TestHonestValues(t *testing.T) {
	res := Run(RunConfig{N: 4, Faulty: []int{1}, Seed: 1}, func(p *Proc) any { return p.ID })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ids, vals := res.HonestValues([]int{1})
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("ids = %v", ids)
	}
	if vals[1].(int) != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func TestFirstHonest(t *testing.T) {
	res := Run(RunConfig{N: 3, Faulty: []int{0}, Seed: 1}, func(p *Proc) any { return p.FirstHonest() })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, v := range res.Values {
		if v.(int) != 1 {
			t.Errorf("FirstHonest = %v, want 1", v)
		}
	}
}
