package sim

import (
	"fmt"
	"sync"

	"byzcons/internal/metrics"
)

// RunConfig configures one simulated execution.
type RunConfig struct {
	N         int
	Faulty    []int     // processor ids controlled by the adversary
	Adversary Adversary // nil means Passive (no deviation)
	Seed      int64     // drives all randomness in the run deterministically
}

// RunResult is the outcome of one simulated execution.
type RunResult struct {
	// Values[i] is the value returned by processor i's body.
	Values []any
	Meter  *metrics.Meter
	Err    error
}

// Run executes body at each of n processors concurrently under the
// synchronous model and returns their results. Any protocol misalignment,
// invalid message, or panic in a body aborts the whole run and is reported
// in RunResult.Err.
func Run(cfg RunConfig, body func(p *Proc) any) *RunResult {
	return runInstance(cfg, -1, body)
}

// runInstance is the shared single-instance runner behind Run and RunBatch;
// instance tags the network's steps, errors and adversary contexts (-1 for a
// plain Run, which reports itself as instance 0 to protocol code but keeps
// its errors untagged).
func runInstance(cfg RunConfig, instance int, body func(p *Proc) any) *RunResult {
	meter := metrics.NewMeter()
	faulty := make([]bool, cfg.N)
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return &RunResult{Meter: meter, Err: fmt.Errorf("sim: faulty id %d out of range [0,%d)", f, cfg.N)}
		}
		faulty[f] = true
	}
	net := NewNetwork(cfg.N, instance, faulty, cfg.Adversary, meter, LazyRand(cfg.Seed^0x5DEECE66D))

	values := make([]any, cfg.N)
	var wg sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		p := &Proc{
			ID:       i,
			N:        cfg.N,
			Instance: max(instance, 0),
			Faulty:   faulty[i],
			Rand:     LazyRand(ProcSeed(cfg.Seed, i)),
			Seed0:    ProcSeed(cfg.Seed, i),
			rt:       net,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer net.procDone()
			defer func() {
				if r := recover(); r != nil {
					switch e := r.(type) {
					case abortError:
						net.fail(e.err)
					case Squashed:
						net.fail(net.errf("sim: processor %d: squash of stream %d escaped its fiber", p.ID, e.Stream))
					default:
						net.fail(net.errf("sim: processor %d panicked: %v", p.ID, r))
					}
				}
			}()
			values[p.ID] = body(p)
		}()
	}
	wg.Wait()

	net.mu.Lock()
	err := net.failed
	net.mu.Unlock()
	return &RunResult{Values: values, Meter: meter, Err: err}
}

// ProcSeed derives the deterministic per-processor randomness seed used for
// Proc.Rand. Exported so alternative backends (internal/node) reproduce the
// simulator's randomness bit for bit.
func ProcSeed(seed int64, id int) int64 {
	return seed + int64(id)*0x9E3779B9
}

// HonestValues returns the body results of honest processors only, in id
// order, along with their ids.
func (r *RunResult) HonestValues(faulty []int) (ids []int, vals []any) {
	isFaulty := make(map[int]bool, len(faulty))
	for _, f := range faulty {
		isFaulty[f] = true
	}
	for i, v := range r.Values {
		if !isFaulty[i] {
			ids = append(ids, i)
			vals = append(vals, v)
		}
	}
	return ids, vals
}
