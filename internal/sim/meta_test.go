package sim

import (
	"testing"
)

// metaRecorder captures the Meta the network hands to the adversary.
type metaRecorder struct {
	exMeta   any
	syncMeta any
}

func (m *metaRecorder) ReworkExchange(ctx *ExchangeCtx) { m.exMeta = ctx.Meta }
func (m *metaRecorder) ReworkSync(ctx *SyncCtx)         { m.syncMeta = ctx.Meta }

func TestMetaReachesAdversary(t *testing.T) {
	rec := &metaRecorder{}
	res := Run(RunConfig{N: 3, Faulty: []int{0}, Adversary: rec, Seed: 1}, func(p *Proc) any {
		p.Exchange("ex", nil, "exchange-meta")
		p.Sync("sy", p.ID, 0, "t", "sync-meta")
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if rec.exMeta != "exchange-meta" {
		t.Errorf("exchange meta = %v", rec.exMeta)
	}
	if rec.syncMeta != "sync-meta" {
		t.Errorf("sync meta = %v", rec.syncMeta)
	}
}

func TestMetaResetBetweenSteps(t *testing.T) {
	rec := &metaRecorder{}
	res := Run(RunConfig{N: 2, Faulty: []int{1}, Adversary: rec, Seed: 1}, func(p *Proc) any {
		p.Exchange("one", nil, "first")
		p.Exchange("two", nil, nil) // no meta this step
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if rec.exMeta != nil {
		t.Errorf("stale meta leaked into next step: %v", rec.exMeta)
	}
}

func TestParallelRunsIndependent(t *testing.T) {
	// Two concurrent simulations must not interfere (separate networks,
	// meters and rands) — callers may sweep scenarios in parallel.
	done := make(chan int64, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res := Run(RunConfig{N: 4, Seed: 7}, func(p *Proc) any {
				for r := 0; r < 20; r++ {
					var out []Message
					for to := 0; to < 4; to++ {
						if to != p.ID {
							out = append(out, Message{To: to, Bits: 3, Tag: "x"})
						}
					}
					p.Exchange(StepID("r")+StepID(rune('0'+r)), out, nil)
				}
				return nil
			})
			if res.Err != nil {
				done <- -1
				return
			}
			done <- res.Meter.TotalBits()
		}()
	}
	a, b := <-done, <-done
	if a != b || a < 0 {
		t.Errorf("parallel runs diverged: %d vs %d", a, b)
	}
}
