package sim

import "math/rand"

// Proc is one processor's handle on the simulated network. Protocol code is
// written as a function of a Proc; the same code runs at honest and faulty
// processors (the adversary rewrites faulty traffic at the network layer).
type Proc struct {
	ID int
	N  int
	// Instance is the protocol instance this processor handle belongs to
	// (RunBatch multiplexes several independent instances over one
	// deployment; Run uses instance 0 throughout).
	Instance int
	Faulty   bool // whether this processor is adversary-controlled
	Rand     *rand.Rand
	net      *Network
}

// Exchange submits this processor's point-to-point messages for the given
// step and returns the messages delivered to it, sorted by sender. All
// processors must call Exchange with the same step (one synchronous round).
// meta, if non-nil, is step metadata made visible to the adversary; it must
// be identical at every processor (by construction: it is derived from
// common state).
func (p *Proc) Exchange(step StepID, out []Message, meta any) []Message {
	return p.net.exchange(p.ID, step, out, meta)
}

// Sync submits a contribution to an ideal all-to-all service and returns all
// n contributions (identical at every processor). bits are metered under tag
// against this processor; use 0 for accounting-free gathers.
func (p *Proc) Sync(step StepID, val any, bits int64, tag string, meta any) []any {
	return p.net.syncStep(p.ID, step, val, bits, tag, meta)
}

// Abort terminates the whole run with the given error.
func (p *Proc) Abort(err error) {
	p.net.fail(err)
	panic(abortError{err})
}

// FirstHonest returns the lowest id of a non-faulty processor, or -1 if all
// are faulty. It exists for simulation scaffolding only: a faulty processor's
// goroutine runs the honest protocol code to keep the synchronous round
// structure aligned, but primitives that guarantee agreement only among
// honest processors (e.g. EIG broadcast) may leave a faulty processor with a
// diverging local view, which a real Byzantine processor could act on freely
// but which would desynchronise the simulation. Such primitives realign the
// faulty processor's view with an honest one's.
func (p *Proc) FirstHonest() int {
	for i, f := range p.net.faulty {
		if !f {
			return i
		}
	}
	return -1
}
