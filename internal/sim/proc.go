package sim

import (
	"fmt"
	"math/rand"
)

// Backend is the execution substrate behind a Proc: it implements the two
// barrier primitives of the synchronous model plus run-level failure
// handling. The in-memory Network of this package is the reference backend
// (a single-host barrier with a centrally injected adversary); internal/node
// provides a distributed backend that realises the same semantics over
// encoded messages on a real transport.
//
// Every barrier step belongs to a stream: an independent sequence of
// lock-step rounds. Stream 0 is the default used by plain sequential
// protocol code; the consensus pipeline runs one stream per in-flight
// generation so that several logical rounds of one processor can be on the
// wire concurrently. Streams are fully ordered internally (round k+1 of a
// stream starts only after round k delivered) but unordered against each
// other.
type Backend interface {
	// Exchange delivers processor p's point-to-point messages for one
	// synchronous round of the given stream and returns the messages
	// addressed to p, ordered by sender id.
	Exchange(p, stream int, step StepID, out []Message, meta any) []Message
	// Sync submits processor p's contribution to the ideal all-to-all
	// service on the given stream and returns all n contributions.
	Sync(p, stream int, step StepID, val any, bits int64, tag string, meta any) []any
	// Squash abandons processor p's participation in a stream: p's fiber
	// blocked at (or arriving at) one of the stream's barriers unwinds with
	// a Squashed panic instead of a result. Squash is local to p — other
	// processors' fibers on the stream are untouched until they squash it
	// themselves — and is how the speculative consensus pipeline discards
	// generations invalidated by a diagnosis.
	Squash(p, stream int)
	// Release declares that processor p will never submit to the stream
	// again, letting the backend free the stream's buffered state once all
	// processors released it. Must be called exactly once per (p, stream)
	// after the last barrier use (fiber exit).
	Release(p, stream int)
	// Fail records a run-level failure so that every processor of the run
	// terminates with the given error.
	Fail(err error)
	// FirstHonest returns the lowest id of a non-faulty processor, or -1.
	FirstHonest() int
}

// Squashed is the panic value that unwinds a fiber whose stream was
// squashed. It is not an error: the squashing driver discards the fiber's
// work deliberately and must recover this value at the fiber boundary.
type Squashed struct{ Stream int }

// Proc is one processor's handle on the deployment. Protocol code is written
// as a function of a Proc; the same code runs at honest and faulty processors
// (the adversary rewrites faulty traffic at the backend layer) and over any
// Backend (simulator barrier or networked runtime).
type Proc struct {
	ID int
	N  int
	// Instance is the protocol instance this processor handle belongs to
	// (RunBatch multiplexes several independent instances over one
	// deployment; Run uses instance 0 throughout).
	Instance int
	// Stream is the round stream this handle's barrier steps run on.
	// Sequential protocol code keeps the default stream 0; the consensus
	// pipeline derives one handle per speculative generation (WithStream).
	Stream int
	Faulty bool // whether this processor is adversary-controlled
	Rand   *rand.Rand
	// Seed0 is the deterministic per-processor seed Rand was created from.
	// Derivation layers (the pipeline's per-fiber seeds) mix sub-seeds from
	// it directly, so spinning up fibers never pays Rand's lazy state
	// initialization — protocol code that never draws randomness never
	// seeds anything.
	Seed0  int64
	rt     Backend
	rounds int64
}

// NewProc binds a processor handle to a backend. It exists for alternative
// runtimes (internal/node); simulator runs construct their Procs internally.
func NewProc(id, n, instance int, faulty bool, seed0 int64, rng *rand.Rand, rt Backend) *Proc {
	return &Proc{ID: id, N: n, Instance: instance, Faulty: faulty, Seed0: seed0, Rand: rng, rt: rt}
}

// WithStream returns a handle equal to p but submitting to the given stream,
// with its own randomness and a fresh local round counter. The consensus
// pipeline uses it to run one fiber per speculative generation; the derived
// handle must only be used by one goroutine at a time.
func (p *Proc) WithStream(stream int, rng *rand.Rand) *Proc {
	return &Proc{
		ID: p.ID, N: p.N, Instance: p.Instance, Stream: stream,
		Faulty: p.Faulty, Rand: rng, Seed0: p.Seed0, rt: p.rt,
	}
}

// LocalRounds returns the number of barrier steps this handle has completed.
// It is a logical, processor-local count: every processor executes the same
// step sequence, so the count is identical at all processors and backends —
// the pipeline's virtual clock is built on it.
func (p *Proc) LocalRounds() int64 { return p.rounds }

// Exchange submits this processor's point-to-point messages for the given
// step and returns the messages delivered to it, sorted by sender. All
// processors must call Exchange with the same step on the same stream (one
// synchronous round). meta, if non-nil, is step metadata made visible to the
// adversary; it must be identical at every processor (by construction: it is
// derived from common state).
func (p *Proc) Exchange(step StepID, out []Message, meta any) []Message {
	in := p.rt.Exchange(p.ID, p.Stream, step, out, meta)
	p.rounds++
	return in
}

// Sync submits a contribution to an ideal all-to-all service and returns all
// n contributions (identical at every processor). bits are metered under tag
// against this processor; use 0 for accounting-free gathers.
func (p *Proc) Sync(step StepID, val any, bits int64, tag string, meta any) []any {
	vals := p.rt.Sync(p.ID, p.Stream, step, val, bits, tag, meta)
	p.rounds++
	return vals
}

// SquashStream abandons this processor's participation in a stream (see
// Backend.Squash).
func (p *Proc) SquashStream(stream int) { p.rt.Squash(p.ID, stream) }

// ReleaseStream frees this processor's share of a stream's backend state
// (see Backend.Release).
func (p *Proc) ReleaseStream(stream int) { p.rt.Release(p.ID, stream) }

// Abort terminates the whole run with the given error.
func (p *Proc) Abort(err error) {
	p.rt.Fail(err)
	panic(abortError{err})
}

// AbortRun aborts the calling processor's run from inside a Backend
// implementation: the panic is recovered by Invoke (or the simulator's
// runner) and converted back into the error. Backends must call their own
// Fail before AbortRun so concurrent processors of the run fail too.
func AbortRun(err error) {
	panic(abortError{err})
}

// Invoke runs body at p, converting protocol aborts (Proc.Abort, AbortRun)
// and stray panics into an error. It reports the failure to the backend so
// the other processors of the run terminate as well. Alternative backends
// use it as their body driver; the simulator keeps its own equivalent with
// instance-tagged errors.
func Invoke(p *Proc, body func(*Proc) any) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case abortError:
				err = e.err
			case Squashed:
				err = fmt.Errorf("sim: processor %d: squash of stream %d escaped its fiber", p.ID, e.Stream)
			default:
				err = fmt.Errorf("sim: processor %d panicked: %v", p.ID, r)
			}
			p.rt.Fail(err)
		}
	}()
	return body(p), nil
}

// FirstHonest returns the lowest id of a non-faulty processor, or -1 if all
// are faulty. It exists for simulation scaffolding only: a faulty processor's
// goroutine runs the honest protocol code to keep the synchronous round
// structure aligned, but primitives that guarantee agreement only among
// honest processors (e.g. EIG broadcast) may leave a faulty processor with a
// diverging local view, which a real Byzantine processor could act on freely
// but which would desynchronise the simulation. Such primitives realign the
// faulty processor's view with an honest one's.
func (p *Proc) FirstHonest() int {
	return p.rt.FirstHonest()
}
