package sim

import (
	"fmt"
	"math/rand"
)

// Backend is the execution substrate behind a Proc: it implements the two
// barrier primitives of the synchronous model plus run-level failure
// handling. The in-memory Network of this package is the reference backend
// (a single-host barrier with a centrally injected adversary); internal/node
// provides a distributed backend that realises the same semantics over
// encoded messages on a real transport.
type Backend interface {
	// Exchange delivers processor p's point-to-point messages for one
	// synchronous round and returns the messages addressed to p, ordered by
	// sender id.
	Exchange(p int, step StepID, out []Message, meta any) []Message
	// Sync submits processor p's contribution to the ideal all-to-all
	// service and returns all n contributions.
	Sync(p int, step StepID, val any, bits int64, tag string, meta any) []any
	// Fail records a run-level failure so that every processor of the run
	// terminates with the given error.
	Fail(err error)
	// FirstHonest returns the lowest id of a non-faulty processor, or -1.
	FirstHonest() int
}

// Proc is one processor's handle on the deployment. Protocol code is written
// as a function of a Proc; the same code runs at honest and faulty processors
// (the adversary rewrites faulty traffic at the backend layer) and over any
// Backend (simulator barrier or networked runtime).
type Proc struct {
	ID int
	N  int
	// Instance is the protocol instance this processor handle belongs to
	// (RunBatch multiplexes several independent instances over one
	// deployment; Run uses instance 0 throughout).
	Instance int
	Faulty   bool // whether this processor is adversary-controlled
	Rand     *rand.Rand
	rt       Backend
}

// NewProc binds a processor handle to a backend. It exists for alternative
// runtimes (internal/node); simulator runs construct their Procs internally.
func NewProc(id, n, instance int, faulty bool, rng *rand.Rand, rt Backend) *Proc {
	return &Proc{ID: id, N: n, Instance: instance, Faulty: faulty, Rand: rng, rt: rt}
}

// Exchange submits this processor's point-to-point messages for the given
// step and returns the messages delivered to it, sorted by sender. All
// processors must call Exchange with the same step (one synchronous round).
// meta, if non-nil, is step metadata made visible to the adversary; it must
// be identical at every processor (by construction: it is derived from
// common state).
func (p *Proc) Exchange(step StepID, out []Message, meta any) []Message {
	return p.rt.Exchange(p.ID, step, out, meta)
}

// Sync submits a contribution to an ideal all-to-all service and returns all
// n contributions (identical at every processor). bits are metered under tag
// against this processor; use 0 for accounting-free gathers.
func (p *Proc) Sync(step StepID, val any, bits int64, tag string, meta any) []any {
	return p.rt.Sync(p.ID, step, val, bits, tag, meta)
}

// Abort terminates the whole run with the given error.
func (p *Proc) Abort(err error) {
	p.rt.Fail(err)
	panic(abortError{err})
}

// AbortRun aborts the calling processor's run from inside a Backend
// implementation: the panic is recovered by Invoke (or the simulator's
// runner) and converted back into the error. Backends must call their own
// Fail before AbortRun so concurrent processors of the run fail too.
func AbortRun(err error) {
	panic(abortError{err})
}

// Invoke runs body at p, converting protocol aborts (Proc.Abort, AbortRun)
// and stray panics into an error. It reports the failure to the backend so
// the other processors of the run terminate as well. Alternative backends
// use it as their body driver; the simulator keeps its own equivalent with
// instance-tagged errors.
func Invoke(p *Proc, body func(*Proc) any) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case abortError:
				err = e.err
			default:
				err = fmt.Errorf("sim: processor %d panicked: %v", p.ID, r)
			}
			p.rt.Fail(err)
		}
	}()
	return body(p), nil
}

// FirstHonest returns the lowest id of a non-faulty processor, or -1 if all
// are faulty. It exists for simulation scaffolding only: a faulty processor's
// goroutine runs the honest protocol code to keep the synchronous round
// structure aligned, but primitives that guarantee agreement only among
// honest processors (e.g. EIG broadcast) may leave a faulty processor with a
// diverging local view, which a real Byzantine processor could act on freely
// but which would desynchronise the simulation. Such primitives realign the
// faulty processor's view with an honest one's.
func (p *Proc) FirstHonest() int {
	return p.rt.FirstHonest()
}
