package sim

import "math/rand"

// lazySource defers the expensive rngSource seeding (607 feedback steps in
// math/rand) until the first draw. Protocol code draws from Proc.Rand only
// on rare paths (the probabilistic broadcaster, Fitzi-Hirt keys), yet every
// speculative generation fiber and every node runtime carries its own
// deterministic Rand — eagerly seeding them all was a measurable slice of
// the pipelined hot path. The draw sequence is bit-identical to
// rand.New(rand.NewSource(seed)).
type lazySource struct {
	seed int64
	src  rand.Source64
}

func (s *lazySource) init() rand.Source64 {
	if s.src == nil {
		s.src = rand.NewSource(s.seed).(rand.Source64)
	}
	return s.src
}

func (s *lazySource) Int63() int64 { return s.init().Int63() }

func (s *lazySource) Uint64() uint64 { return s.init().Uint64() }

func (s *lazySource) Seed(seed int64) {
	s.seed = seed
	s.src = nil
}

// LazyRand returns a deterministic *rand.Rand seeded with seed whose
// underlying source state is built on first use. Exported so every backend
// derives per-processor and per-fiber randomness identically (and equally
// lazily).
func LazyRand(seed int64) *rand.Rand {
	return rand.New(&lazySource{seed: seed})
}

// LazyRandReseedable is LazyRand returning also a reseed function, for
// pooled fiber contexts that re-target one Rand at a new deterministic seed
// per launch (reseeding restores the exact state LazyRand(seed) would
// construct).
func LazyRandReseedable(seed int64) (*rand.Rand, func(int64)) {
	src := &lazySource{seed: seed}
	return rand.New(src), src.Seed
}

// RebindStream re-targets a fiber handle at a new stream with fresh
// randomness and a zero local round counter — WithStream for pooled
// handles, without the allocation. The handle must not be in use by any
// other goroutine.
func (p *Proc) RebindStream(stream int, rng *rand.Rand) {
	p.Stream = stream
	p.Rand = rng
	p.rounds = 0
}
