package sim

import (
	"strings"
	"testing"
)

// echoBody is a small protocol: every processor sends its (instance, id)
// product to everyone, runs `rounds` Exchange rounds, and returns the sum of
// everything it received.
func echoBody(rounds int) func(inst int, p *Proc) any {
	return func(inst int, p *Proc) any {
		acc := 0
		for r := 0; r < rounds; r++ {
			var out []Message
			for to := 0; to < p.N; to++ {
				if to != p.ID {
					out = append(out, Message{To: to, Payload: (inst+1)*100 + p.ID, Bits: 8, Tag: "echo"})
				}
			}
			in := p.Exchange(StepID("r")+StepID(rune('0'+r)), out, nil)
			for _, m := range in {
				acc += m.Payload.(int)
			}
		}
		return acc
	}
}

func TestRunBatchIndependentInstances(t *testing.T) {
	t.Parallel()
	const n, b = 4, 3
	res := RunBatch(BatchConfig{N: n, Seed: 1, Instances: b}, echoBody(2))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Instances) != b {
		t.Fatalf("got %d instances, want %d", len(res.Instances), b)
	}
	for k, ir := range res.Instances {
		// Each round every processor receives the other three ids offset by
		// the instance marker; two rounds double it.
		want := 0
		for id := 0; id < n; id++ {
			want += (k+1)*100 + id
		}
		for id, v := range ir.Values {
			got := v.(int)
			wantHere := 2 * (want - ((k+1)*100 + id))
			if got != wantHere {
				t.Errorf("inst %d proc %d = %d, want %d", k, id, got, wantHere)
			}
		}
		if bits := ir.Meter.TotalBits(); bits != 2*int64(n)*int64(n-1)*8 {
			t.Errorf("inst %d metered %d bits", k, bits)
		}
		if r := ir.Meter.Rounds(); r != 2 {
			t.Errorf("inst %d rounds = %d, want 2", k, r)
		}
	}
	if res.Bits != int64(b)*2*4*3*8 {
		t.Errorf("batch bits = %d", res.Bits)
	}
	if res.Rounds != 2 {
		t.Errorf("batch rounds = %d, want max over instances = 2", res.Rounds)
	}
}

func TestRunBatchRoundsAreMaxNotSum(t *testing.T) {
	t.Parallel()
	// Instances of different lengths: pipelined rounds must be the max.
	res := RunBatch(BatchConfig{N: 3, Seed: 2, Instances: 3}, func(inst int, p *Proc) any {
		for r := 0; r <= inst; r++ {
			p.Sync(StepID("s")+StepID(rune('0'+r)), p.ID, 1, "g", nil)
		}
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (longest instance)", res.Rounds)
	}
	var sum int64
	for _, ir := range res.Instances {
		sum += ir.Meter.Rounds()
	}
	if sum != 1+2+3 {
		t.Errorf("per-instance rounds sum = %d, want 6", sum)
	}
}

func TestRunBatchDeterministicPerInstance(t *testing.T) {
	t.Parallel()
	run := func() []any {
		res := RunBatch(BatchConfig{N: 4, Seed: 7, Instances: 4}, func(inst int, p *Proc) any {
			// Mix in per-processor randomness so seeds matter.
			v := p.Rand.Intn(1000)
			vals := p.Sync("mix", v, 4, "g", nil)
			sum := 0
			for _, x := range vals {
				sum += x.(int)
			}
			return sum
		})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		out := make([]any, 0, 4*4)
		for _, ir := range res.Instances {
			out = append(out, ir.Values...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic batch value at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunBatchSingleInstanceMatchesRun(t *testing.T) {
	t.Parallel()
	body := func(p *Proc) any {
		v := p.Rand.Intn(1 << 20)
		vals := p.Sync("v", v, 8, "g", nil)
		sum := 0
		for _, x := range vals {
			sum += x.(int)
		}
		return sum
	}
	single := Run(RunConfig{N: 5, Seed: 99}, body)
	batch := RunBatch(BatchConfig{N: 5, Seed: 99, Instances: 1}, func(inst int, p *Proc) any { return body(p) })
	if single.Err != nil || batch.Err != nil {
		t.Fatal(single.Err, batch.Err)
	}
	for i := range single.Values {
		if single.Values[i] != batch.Instances[0].Values[i] {
			t.Fatalf("instance 0 diverges from Run at proc %d", i)
		}
	}
}

// countingAdv carries unsynchronized mutable state across steps; RunBatch's
// adversary lock must keep it race-clean (this test is meaningful under
// -race). It also records which instances it observed via the step context.
type countingAdv struct {
	calls int
	insts map[int]bool
}

func (a *countingAdv) ReworkExchange(ctx *ExchangeCtx) {
	a.calls++
	a.insts[ctx.Instance] = true
}

func (a *countingAdv) ReworkSync(ctx *SyncCtx) {
	a.calls++
	a.insts[ctx.Instance] = true
}

func TestRunBatchSharedAdversaryIsSerializedAndInstanceTagged(t *testing.T) {
	t.Parallel()
	const b = 6
	adv := &countingAdv{insts: make(map[int]bool)}
	res := RunBatch(BatchConfig{N: 3, Faulty: []int{0}, Adversary: adv, Seed: 3, Instances: b}, func(inst int, p *Proc) any {
		if p.Instance != inst {
			t.Errorf("Proc.Instance = %d, want %d", p.Instance, inst)
		}
		p.Sync("a", p.ID, 1, "g", nil)
		p.Exchange("b", nil, nil)
		return nil
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if adv.calls != 2*b {
		t.Errorf("adversary saw %d steps, want %d", adv.calls, 2*b)
	}
	for k := 0; k < b; k++ {
		if !adv.insts[k] {
			t.Errorf("adversary never saw instance %d", k)
		}
	}
}

func TestRunBatchInstanceErrorIsTaggedAndIsolated(t *testing.T) {
	t.Parallel()
	// Instance 0 fails: errors of every batch slot — including slot 0 —
	// must carry the instance tag, while the other instances complete.
	res := RunBatch(BatchConfig{N: 3, Seed: 5, Instances: 3}, func(inst int, p *Proc) any {
		if inst == 0 && p.ID == 1 {
			panic("boom")
		}
		p.Sync("s", p.ID, 1, "g", nil)
		return p.ID
	})
	if res.Err == nil {
		t.Fatal("expected batch error from failing instance")
	}
	if res.Instances[1].Err != nil || res.Instances[2].Err != nil {
		t.Errorf("healthy instances failed: %v / %v", res.Instances[1].Err, res.Instances[2].Err)
	}
	if res.Instances[0].Err == nil {
		t.Fatal("failing instance reported no error")
	}
	if !strings.Contains(res.Instances[0].Err.Error(), "inst 0") {
		t.Errorf("error not instance-tagged: %v", res.Instances[0].Err)
	}
	for _, ir := range res.Instances[1:] {
		for id, v := range ir.Values {
			if v.(int) != id {
				t.Errorf("healthy instance lost values: %v", ir.Values)
			}
		}
	}

	// A plain (non-batched) Run must keep its errors untagged.
	single := Run(RunConfig{N: 2, Seed: 5}, func(p *Proc) any {
		if p.ID == 1 {
			panic("boom")
		}
		p.Sync("s", p.ID, 1, "g", nil)
		return nil
	})
	if single.Err == nil || strings.Contains(single.Err.Error(), "inst ") {
		t.Errorf("single-run error wrongly instance-tagged: %v", single.Err)
	}
}
