package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"byzcons/internal/metrics"
)

const (
	kindExchange = iota + 1
	kindSync
)

// Network implements the synchronous barrier rounds shared by all processor
// goroutines of one run. Barriers are stream-scoped: each stream is an
// independent lock-step round sequence (the consensus pipeline runs one
// stream per in-flight generation), with the same per-stream semantics the
// single-stream network of the sequential runtime had globally.
type Network struct {
	n        int
	instance int // instance id when multiplexed by RunBatch; -1 for single runs
	faulty   []bool
	adv      Adversary
	meter    *metrics.Meter
	rand     *rand.Rand

	mu   sync.Mutex
	done int // processors whose body has returned
	// streams is keyed by (id, incarnation): the pipeline reuses the ids of
	// cleanly committed streams (keeping the wire tag small and the barrier
	// state hot), and each processor's Release advances its own incarnation
	// counter for the id. Processors at different speeds therefore
	// rendezvous on distinct states for the same id — per-processor
	// incarnation counts are equal exactly when the processors are on the
	// same logical use of the id, because the launch/release schedule is
	// deterministic and identical everywhere.
	streams map[streamKey]*streamState
	// epochs[p] maps a stream id to processor p's incarnation count (how
	// many times p has released the id). Ids not present are at 0.
	epochs []map[int]int
	failed error
}

// streamKey identifies one incarnation of a stream id.
type streamKey struct{ id, epoch int }

// stream is the barrier state of one round stream. A stream's phases are
// strictly ordered; distinct streams rendezvous independently. Each stream
// has its own condition variable (sharing the network mutex), so completing
// a round wakes exactly that round's waiters — one wakeup per completed
// round instead of a broadcast herding every parked fiber of every stream.
type streamState struct {
	id      int
	cond    *sync.Cond
	phase   uint64
	arrived int
	step    StepID
	kind    int
	meta    any
	outs    [][]Message
	vals    []any
	bits    []int64
	tags    []string
	inboxes [][]Message // result of the last Exchange, indexed by receiver
	synced  []any       // result of the last Sync
	// squashed[p] marks processor p's fiber as withdrawn from the stream:
	// its next (or currently blocked) rendezvous unwinds with a Squashed
	// panic. squashedAny disables the exited-processor deadlock heuristics,
	// which assume every non-exited processor still owes the stream a
	// contribution.
	squashed    []bool
	squashedAny bool
	// released counts processors that declared the stream finished; at n the
	// stream's state is dropped. Stream ids are never reused, so late map
	// lookups cannot resurrect freed state.
	released   int
	releasedBy []bool
}

// NewNetwork creates a network for n processors. faulty marks the
// adversary-controlled processors; adv rewrites their traffic (Passive for
// fail-free runs). rng drives adversary randomness deterministically.
// instance tags the network's steps and errors when several instances are
// multiplexed over one deployment (-1 for single-instance runs).
func NewNetwork(n, instance int, faulty []bool, adv Adversary, meter *metrics.Meter, rng *rand.Rand) *Network {
	if adv == nil {
		adv = Passive{}
	}
	net := &Network{
		n:        n,
		instance: instance,
		faulty:   faulty,
		adv:      adv,
		meter:    meter,
		rand:     rng,
		streams:  make(map[streamKey]*streamState),
		epochs:   make([]map[int]int, n),
	}
	return net
}

// keyFor returns processor p's current key for a stream id. Caller holds
// net.mu.
func (net *Network) keyFor(p, id int) streamKey {
	if m := net.epochs[p]; m != nil {
		return streamKey{id: id, epoch: m[id]}
	}
	return streamKey{id: id}
}

// Meter returns the network's bit meter.
func (net *Network) Meter() *metrics.Meter { return net.meter }

// Exchange implements Backend.
func (net *Network) Exchange(p, stream int, step StepID, out []Message, meta any) []Message {
	res := net.rendezvous(p, stream, step, kindExchange, func(ss *streamState) {
		ss.outs[p] = out
		if meta != nil && ss.meta == nil {
			ss.meta = meta
		}
	}, net.finalizeExchange)
	return res.([]Message)
}

// Sync implements Backend.
func (net *Network) Sync(p, stream int, step StepID, val any, bits int64, tag string, meta any) []any {
	res := net.rendezvous(p, stream, step, kindSync, func(ss *streamState) {
		ss.vals[p] = val
		ss.bits[p] = bits
		ss.tags[p] = tag
		if meta != nil && ss.meta == nil {
			ss.meta = meta
		}
	}, net.finalizeSync)
	return res.([]any)
}

// Squash implements Backend: it withdraws processor p's fiber from the
// stream. The stream's other participants are unaffected — each processor
// squashes speculative streams on its own (identical, deterministic)
// schedule, so a partially filled barrier either completes with the stale
// contribution already submitted or is abandoned by everyone. Squash may
// create the stream's state (the fiber may not have reached its first
// barrier yet); it never resurrects a freed one, because a driver only
// squashes fibers that have not yet delivered a result, and a fiber
// releases its stream strictly after delivering.
func (net *Network) Squash(p, stream int) {
	net.mu.Lock()
	defer net.mu.Unlock()
	ss := net.getStream(p, stream)
	if !ss.squashed[p] {
		ss.squashed[p] = true
		ss.squashedAny = true
		ss.cond.Broadcast()
	}
}

// Release implements Backend: processor p declares its use of the stream id
// finished and advances to the id's next incarnation; when all n processors
// have, the incarnation's barrier state is dropped.
func (net *Network) Release(p, stream int) {
	net.mu.Lock()
	defer net.mu.Unlock()
	key := net.keyFor(p, stream)
	if net.epochs[p] == nil {
		net.epochs[p] = make(map[int]int)
	}
	net.epochs[p][stream] = key.epoch + 1
	ss, ok := net.streams[key]
	if !ok || ss.releasedBy[p] {
		return
	}
	ss.releasedBy[p] = true
	ss.released++
	if ss.released == net.n {
		delete(net.streams, key)
	}
}

// Fail implements Backend.
func (net *Network) Fail(err error) { net.fail(err) }

// FirstHonest implements Backend.
func (net *Network) FirstHonest() int {
	for i, f := range net.faulty {
		if !f {
			return i
		}
	}
	return -1
}

// getStream returns the barrier state of processor p's current incarnation
// of the stream id, creating it on first use (first rendezvous arrival, or
// an early squash). Caller holds net.mu.
func (net *Network) getStream(p, id int) *streamState {
	key := net.keyFor(p, id)
	ss := net.streams[key]
	if ss == nil {
		ss = &streamState{
			id:         id,
			cond:       sync.NewCond(&net.mu),
			outs:       make([][]Message, net.n),
			vals:       make([]any, net.n),
			bits:       make([]int64, net.n),
			tags:       make([]string, net.n),
			squashed:   make([]bool, net.n),
			releasedBy: make([]bool, net.n),
		}
		net.streams[key] = ss
	}
	return ss
}

// errf builds a run-level error tagged with the network's instance when it is
// part of a multiplexed batch, so failures are attributable to one instance.
func (net *Network) errf(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	if net.instance >= 0 {
		err = fmt.Errorf("inst %d: %w", net.instance, err)
	}
	return err
}

// wakeAllLocked wakes every parked participant of every stream, for
// run-level events (failure) that any waiter must observe. Caller holds
// net.mu.
func (net *Network) wakeAllLocked() {
	for _, ss := range net.streams {
		ss.cond.Broadcast()
	}
}

// procDone records that one processor's body returned. If other processors
// are parked at a barrier that can now never be completed, the run is failed
// rather than deadlocked. Streams squashed anywhere are exempt: a processor
// that exited after squashing a stream legitimately owes it nothing, and the
// remaining participants will be unwound by their own squashes.
func (net *Network) procDone() {
	net.mu.Lock()
	net.done++
	for _, ss := range net.streams {
		if ss.arrived > 0 && !ss.squashedAny && ss.arrived+net.done >= net.n && net.failed == nil {
			net.failed = net.errf("sim: %d processor(s) exited while others wait at step %q", net.done, ss.step)
			net.wakeAllLocked()
		}
	}
	net.mu.Unlock()
}

// fail aborts the whole run with the given error: every processor blocked at
// (or arriving at) a barrier panics with an abortError, which Run recovers.
func (net *Network) fail(err error) {
	net.mu.Lock()
	if net.failed == nil {
		net.failed = err
	}
	net.wakeAllLocked()
	net.mu.Unlock()
}

// rendezvous runs one barrier on one stream: each participant submits its
// data; the last arrival finalizes the step (adversary rework, routing,
// metering) and wakes the others. The finalized result for the phase is
// captured before any participant can start the stream's next phase, because
// the next finalize needs all n participants to have arrived again. A
// participant whose fiber was squashed unwinds with a Squashed panic instead
// of submitting (or instead of a result, if the squash landed while it was
// parked and the phase has not completed).
func (net *Network) rendezvous(p, streamID int, step StepID, kind int, submit func(*streamState), finalize func(*streamState)) any {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.failed != nil {
		panic(abortError{net.failed})
	}
	ss := net.getStream(p, streamID)
	if ss.squashed[p] {
		panic(Squashed{Stream: streamID})
	}
	if ss.arrived == 0 {
		ss.step = step
		ss.kind = kind
		ss.meta = nil
	} else if ss.step != step || ss.kind != kind {
		err := net.errf("sim: step mismatch: processor %d at %q (kind %d), stream %d barrier at %q (kind %d)",
			p, step, kind, streamID, ss.step, ss.kind)
		net.failed = err
		net.wakeAllLocked()
		panic(abortError{err})
	}
	submit(ss)
	ss.arrived++
	myPhase := ss.phase
	if net.done > 0 && !ss.squashedAny && ss.arrived+net.done >= net.n {
		err := net.errf("sim: step %q can never complete: %d processor(s) already exited", step, net.done)
		net.failed = err
		net.wakeAllLocked()
		panic(abortError{err})
	}
	if ss.arrived == net.n {
		finalize(ss)
		if net.failed != nil {
			net.wakeAllLocked()
			panic(abortError{net.failed})
		}
		net.meter.AddRound()
		ss.arrived = 0
		ss.phase++
		ss.cond.Broadcast()
	} else {
		for ss.phase == myPhase && !ss.squashed[p] && net.failed == nil {
			ss.cond.Wait()
		}
		if net.failed != nil {
			panic(abortError{net.failed})
		}
		if ss.phase == myPhase && ss.squashed[p] {
			panic(Squashed{Stream: streamID})
		}
	}
	if kind == kindExchange {
		return ss.inboxes[p]
	}
	return ss.synced
}

// finalizeExchange runs under the lock once all processors submitted.
func (net *Network) finalizeExchange(ss *streamState) {
	ctx := &ExchangeCtx{
		Step: ss.step, Instance: max(net.instance, 0), Stream: ss.id, N: net.n, Faulty: net.faulty,
		Out: ss.outs, Meta: ss.meta, Rand: net.rand,
	}
	net.adv.ReworkExchange(ctx)
	inboxes := make([][]Message, net.n)
	for from := 0; from < net.n; from++ {
		for _, m := range ss.outs[from] {
			m.From = from // senders cannot forge their identity (paper's channel model)
			if m.To < 0 || m.To >= net.n || m.To == from {
				net.failed = net.errf("sim: step %q: processor %d sent message with bad To=%d", ss.step, from, m.To)
				return
			}
			if m.Bits < 0 {
				net.failed = net.errf("sim: step %q: negative Bits from processor %d", ss.step, from)
				return
			}
			net.meter.Add(m.Tag, m.Bits, net.faulty[from])
			inboxes[m.To] = append(inboxes[m.To], m)
		}
		ss.outs[from] = nil
	}
	ss.inboxes = inboxes
}

// finalizeSync runs under the lock once all processors submitted.
func (net *Network) finalizeSync(ss *streamState) {
	ctx := &SyncCtx{
		Step: ss.step, Instance: max(net.instance, 0), Stream: ss.id, N: net.n, Faulty: net.faulty,
		Vals: ss.vals, Meta: ss.meta, Rand: net.rand,
	}
	net.adv.ReworkSync(ctx)
	out := make([]any, net.n)
	copy(out, ss.vals)
	for p := 0; p < net.n; p++ {
		if ss.bits[p] > 0 {
			net.meter.Add(ss.tags[p], ss.bits[p], net.faulty[p])
		}
		ss.vals[p] = nil
		ss.bits[p] = 0
		ss.tags[p] = ""
	}
	ss.synced = out
}
