package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"byzcons/internal/metrics"
)

const (
	kindExchange = iota + 1
	kindSync
)

// Network implements the synchronous barrier rounds shared by all processor
// goroutines of one run.
type Network struct {
	n        int
	instance int // instance id when multiplexed by RunBatch; -1 for single runs
	faulty   []bool
	adv      Adversary
	meter    *metrics.Meter
	rand     *rand.Rand

	mu      sync.Mutex
	cond    *sync.Cond
	phase   uint64
	arrived int
	done    int // processors whose body has returned
	step    StepID
	kind    int
	meta    any
	outs    [][]Message
	vals    []any
	bits    []int64
	tags    []string
	inboxes [][]Message // result of the last Exchange, indexed by receiver
	synced  []any       // result of the last Sync
	failed  error
}

// NewNetwork creates a network for n processors. faulty marks the
// adversary-controlled processors; adv rewrites their traffic (Passive for
// fail-free runs). rng drives adversary randomness deterministically.
// instance tags the network's steps and errors when several instances are
// multiplexed over one deployment (-1 for single-instance runs).
func NewNetwork(n, instance int, faulty []bool, adv Adversary, meter *metrics.Meter, rng *rand.Rand) *Network {
	if adv == nil {
		adv = Passive{}
	}
	net := &Network{
		n:        n,
		instance: instance,
		faulty:   faulty,
		adv:      adv,
		meter:    meter,
		rand:     rng,
		outs:     make([][]Message, n),
		vals:     make([]any, n),
		bits:     make([]int64, n),
		tags:     make([]string, n),
	}
	net.cond = sync.NewCond(&net.mu)
	return net
}

// Meter returns the network's bit meter.
func (net *Network) Meter() *metrics.Meter { return net.meter }

// Exchange implements Backend.
func (net *Network) Exchange(p int, step StepID, out []Message, meta any) []Message {
	return net.exchange(p, step, out, meta)
}

// Sync implements Backend.
func (net *Network) Sync(p int, step StepID, val any, bits int64, tag string, meta any) []any {
	return net.syncStep(p, step, val, bits, tag, meta)
}

// Fail implements Backend.
func (net *Network) Fail(err error) { net.fail(err) }

// FirstHonest implements Backend.
func (net *Network) FirstHonest() int {
	for i, f := range net.faulty {
		if !f {
			return i
		}
	}
	return -1
}

// errf builds a run-level error tagged with the network's instance when it is
// part of a multiplexed batch, so failures are attributable to one instance.
func (net *Network) errf(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	if net.instance >= 0 {
		err = fmt.Errorf("inst %d: %w", net.instance, err)
	}
	return err
}

// procDone records that one processor's body returned. If other processors
// are parked at a barrier that can now never be completed, the run is failed
// rather than deadlocked.
func (net *Network) procDone() {
	net.mu.Lock()
	net.done++
	if net.arrived > 0 && net.arrived+net.done >= net.n && net.failed == nil {
		net.failed = net.errf("sim: %d processor(s) exited while others wait at step %q", net.done, net.step)
		net.cond.Broadcast()
	}
	net.mu.Unlock()
}

// fail aborts the whole run with the given error: every processor blocked at
// (or arriving at) a barrier panics with an abortError, which Run recovers.
func (net *Network) fail(err error) {
	net.mu.Lock()
	if net.failed == nil {
		net.failed = err
	}
	net.cond.Broadcast()
	net.mu.Unlock()
}

// exchange is the Exchange barrier body for processor p.
func (net *Network) exchange(p int, step StepID, out []Message, meta any) []Message {
	res := net.rendezvous(p, step, kindExchange, func() {
		net.outs[p] = out
		if meta != nil && net.meta == nil {
			net.meta = meta
		}
	}, net.finalizeExchange)
	return res.([]Message)
}

// syncStep is the Sync barrier body for processor p.
func (net *Network) syncStep(p int, step StepID, val any, bits int64, tag string, meta any) []any {
	res := net.rendezvous(p, step, kindSync, func() {
		net.vals[p] = val
		net.bits[p] = bits
		net.tags[p] = tag
		if meta != nil && net.meta == nil {
			net.meta = meta
		}
	}, net.finalizeSync)
	return res.([]any)
}

// rendezvous runs one barrier: each participant submits its data; the last
// arrival finalizes the step (adversary rework, routing, metering) and wakes
// the others. The finalized result for the phase is captured before any
// participant can start the next phase, because the next finalize needs all
// n participants to have arrived again.
func (net *Network) rendezvous(p int, step StepID, kind int, submit func(), finalize func()) any {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.failed != nil {
		panic(abortError{net.failed})
	}
	if net.arrived == 0 {
		net.step = step
		net.kind = kind
		net.meta = nil
	} else if net.step != step || net.kind != kind {
		err := net.errf("sim: step mismatch: processor %d at %q (kind %d), barrier at %q (kind %d)",
			p, step, kind, net.step, net.kind)
		net.failed = err
		net.cond.Broadcast()
		panic(abortError{err})
	}
	submit()
	net.arrived++
	myPhase := net.phase
	if net.done > 0 && net.arrived+net.done >= net.n {
		err := net.errf("sim: step %q can never complete: %d processor(s) already exited", step, net.done)
		net.failed = err
		net.cond.Broadcast()
		panic(abortError{err})
	}
	if net.arrived == net.n {
		finalize()
		if net.failed != nil {
			net.cond.Broadcast()
			panic(abortError{net.failed})
		}
		net.meter.AddRound()
		net.arrived = 0
		net.phase++
		net.cond.Broadcast()
	} else {
		for net.phase == myPhase && net.failed == nil {
			net.cond.Wait()
		}
		if net.failed != nil {
			panic(abortError{net.failed})
		}
	}
	if kind == kindExchange {
		return net.inboxes[p]
	}
	return net.synced
}

// finalizeExchange runs under the lock once all processors submitted.
func (net *Network) finalizeExchange() {
	ctx := &ExchangeCtx{
		Step: net.step, Instance: max(net.instance, 0), N: net.n, Faulty: net.faulty,
		Out: net.outs, Meta: net.meta, Rand: net.rand,
	}
	net.adv.ReworkExchange(ctx)
	inboxes := make([][]Message, net.n)
	for from := 0; from < net.n; from++ {
		for _, m := range net.outs[from] {
			m.From = from // senders cannot forge their identity (paper's channel model)
			if m.To < 0 || m.To >= net.n || m.To == from {
				net.failed = net.errf("sim: step %q: processor %d sent message with bad To=%d", net.step, from, m.To)
				return
			}
			if m.Bits < 0 {
				net.failed = net.errf("sim: step %q: negative Bits from processor %d", net.step, from)
				return
			}
			net.meter.Add(m.Tag, m.Bits, net.faulty[from])
			inboxes[m.To] = append(inboxes[m.To], m)
		}
		net.outs[from] = nil
	}
	net.inboxes = inboxes
}

// finalizeSync runs under the lock once all processors submitted.
func (net *Network) finalizeSync() {
	ctx := &SyncCtx{
		Step: net.step, Instance: max(net.instance, 0), N: net.n, Faulty: net.faulty,
		Vals: net.vals, Meta: net.meta, Rand: net.rand,
	}
	net.adv.ReworkSync(ctx)
	out := make([]any, net.n)
	copy(out, net.vals)
	for p := 0; p < net.n; p++ {
		if net.bits[p] > 0 {
			net.meter.Add(net.tags[p], net.bits[p], net.faulty[p])
		}
		net.vals[p] = nil
		net.bits[p] = 0
		net.tags[p] = ""
	}
	net.synced = out
}
