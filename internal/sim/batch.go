package sim

import (
	"sync"

	"byzcons/internal/metrics"
)

// BatchConfig configures one batched execution: Instances independent
// protocol instances multiplexed over the same simulated deployment of N
// processors with a common faulty set and a shared adversary.
//
// Each instance gets its own barrier network, meter and deterministic
// randomness (derived from Seed and the instance id), so instances are fully
// independent executions that happen to run concurrently — the model of a
// pipelined deployment where every synchronous round carries the traffic of
// all in-flight instances. The shared adversary sees every instance's steps
// (tagged with ExchangeCtx/SyncCtx.Instance) but is invoked under a batch-wide
// lock, so stateful adversaries need no locking of their own.
type BatchConfig struct {
	N         int
	Faulty    []int     // processor ids controlled by the adversary (all instances)
	Adversary Adversary // shared across instances; calls are serialized
	Seed      int64     // per-instance seeds are derived deterministically
	Instances int       // number of concurrent instances (0 or 1 = single)
	// DegradePeers, when > 0, enables graceful degradation in backends with
	// real channels (internal/node): a round missing frames only from peers
	// whose channels are known down completes with synthesized ⊥ frames, and a
	// node whose own run fails on a peer-attributed fault yields a missing
	// value instead of failing the whole instance — for up to DegradePeers
	// distinct peers per node. The simulator's shared-memory barrier has no
	// channels to lose, so it ignores the field.
	DegradePeers int
}

// InstanceResult is the outcome of one instance of a batched execution.
type InstanceResult struct {
	// Values[i] is the value returned by processor i's body for this instance.
	Values []any
	// Meter holds this instance's own traffic and round accounting.
	Meter *metrics.Meter
	Err   error
}

// BatchResult aggregates a batched execution.
type BatchResult struct {
	Instances []InstanceResult
	// Rounds is the pipelined round count of the batch: instances advance
	// through their synchronous rounds concurrently, so the deployment needs
	// the maximum (not the sum) of the per-instance round counts.
	Rounds int64
	// Bits is the total protocol traffic summed over all instances.
	Bits int64
	// PeersDown lists (sorted, deduplicated) the processors whose channels
	// were observed down at any node during the batch — broken or dropped
	// connections, stall-detector isolations. It is filled by the networked
	// cluster backend (internal/node); the simulator's shared-memory barrier
	// has no channels to lose, so it leaves the list empty.
	PeersDown []int
	// DegradedPeers lists (sorted, deduplicated) the peers whose missing
	// frames some round completed against with synthesized ⊥ values under
	// BatchConfig.DegradePeers. Filled by the networked cluster backend; empty
	// under the simulator.
	DegradedPeers []int
	// Err is the first per-instance error, if any instance failed.
	Err error
}

// LockAdversary wraps an adversary so that concurrent Rework calls are
// serialized, keeping stateful adversary implementations race-clean without
// requiring their own locking. RunBatch applies it to the adversary shared
// by a batch's concurrently finalizing instance networks; the networked
// cluster (internal/node) applies it to the adversary shared by its nodes
// and instances.
func LockAdversary(adv Adversary) Adversary {
	return &lockedAdversary{adv: adv}
}

// lockedAdversary is the wrapper behind LockAdversary.
type lockedAdversary struct {
	mu  sync.Mutex
	adv Adversary
}

func (l *lockedAdversary) ReworkExchange(ctx *ExchangeCtx) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.adv.ReworkExchange(ctx)
}

func (l *lockedAdversary) ReworkSync(ctx *SyncCtx) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.adv.ReworkSync(ctx)
}

// InstanceSeed derives a distinct deterministic seed for each instance of a
// batch (instance 0 keeps the base seed, so a 1-instance batch reproduces the
// equivalent Run bit for bit). Exported so alternative backends
// (internal/node) derive identical per-instance randomness.
func InstanceSeed(seed int64, inst int) int64 {
	if inst == 0 {
		return seed
	}
	return seed + int64(inst)*0x61C8864680B583EB
}

// RunBatch executes body(inst, p) at each of cfg.N processors for each of
// cfg.Instances independent instances, multiplexed concurrently over the
// deployment. Results are deterministic per instance for a given Seed as long
// as the adversary's behaviour depends only on its per-step context (every
// adversary in the bundled gallery does); an adversary carrying mutable state
// across steps observes instances in scheduling order.
func RunBatch(cfg BatchConfig, body func(inst int, p *Proc) any) *BatchResult {
	b := cfg.Instances
	if b < 1 {
		b = 1
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = Passive{}
	}
	shared := LockAdversary(adv)

	res := &BatchResult{Instances: make([]InstanceResult, b)}
	var wg sync.WaitGroup
	for k := 0; k < b; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r := runInstance(RunConfig{
				N:         cfg.N,
				Faulty:    cfg.Faulty,
				Adversary: shared,
				Seed:      InstanceSeed(cfg.Seed, k),
			}, k, func(p *Proc) any { return body(k, p) })
			res.Instances[k] = InstanceResult{Values: r.Values, Meter: r.Meter, Err: r.Err}
		}(k)
	}
	wg.Wait()

	for k := range res.Instances {
		ir := &res.Instances[k]
		res.Bits += ir.Meter.TotalBits()
		if r := ir.Meter.Rounds(); r > res.Rounds {
			res.Rounds = r
		}
		if ir.Err != nil && res.Err == nil {
			res.Err = ir.Err
		}
	}
	return res
}
