// Package sim is a single-host simulator for the paper's system model: a
// synchronous, fully connected network of n processors with a pair of
// directed point-to-point channels between every two processors, and a
// Byzantine adversary with complete knowledge of all processors' states.
//
// Execution model. Every processor (honest or faulty) runs the protocol body
// in its own goroutine. Communication happens at labelled barrier steps:
//
//   - Exchange: point-to-point messages submitted by all processors are
//     delivered together at the end of the step (one synchronous round);
//   - Sync: an ideal all-to-all service used to implement oracle primitives
//     (notably the Broadcast_Single_Bit oracle) and to gather results.
//
// Faulty processors execute the same protocol code as honest ones, which
// keeps every goroutine's control flow aligned (in a synchronous system a
// Byzantine processor can only choose message contents, not change the round
// structure). Their deviation is injected centrally: after all processors
// have submitted their traffic for a step, the Adversary may rewrite the
// outgoing messages or contributions of faulty processors with full knowledge
// of everything submitted in that step. This models the strongest "rushing"
// adversary of the paper.
//
// Every delivered message is metered under a protocol-stage tag, which is how
// the experiments check the paper's communication-complexity formulas.
package sim

import (
	"fmt"
	"math/rand"
)

// StepID labels one barrier step. All processors must arrive at the same
// step in the same order; any divergence is a protocol bug and aborts the
// run immediately.
type StepID string

// Message is a point-to-point protocol message. Bits is the protocol-level
// size of the payload (what the paper's complexity measure counts), which is
// deliberately independent of the in-memory representation.
type Message struct {
	From    int
	To      int
	Payload any
	Bits    int64
	Tag     string
}

// ExchangeCtx is handed to the adversary at every Exchange step after all
// processors submitted their protocol-conformant messages.
type ExchangeCtx struct {
	Step StepID
	// Instance identifies the protocol instance this step belongs to when
	// several instances are multiplexed over one deployment (RunBatch);
	// single-instance runs use instance 0.
	Instance int
	// Stream identifies the round stream this step belongs to (0 for
	// sequential protocol code; one stream per in-flight generation under
	// the speculative consensus pipeline). Steps of a squashed stream were
	// speculative: their results are discarded and the generation re-runs on
	// a fresh stream with the same step labels.
	Stream int
	N      int
	Faulty []bool // Faulty[i] reports whether processor i is adversary-controlled
	// Out[i] is processor i's outbox for this step. The adversary may
	// mutate, replace, extend or drop entries of faulty processors only.
	Out [][]Message
	// Meta is protocol-supplied step metadata (identical at every processor),
	// e.g. the instance descriptors of a batch of broadcasts.
	Meta any
	Rand *rand.Rand
}

// SyncCtx is handed to the adversary at every Sync step.
type SyncCtx struct {
	Step StepID
	// Instance identifies the protocol instance of this step (see
	// ExchangeCtx.Instance).
	Instance int
	// Stream identifies the round stream of this step (see
	// ExchangeCtx.Stream).
	Stream int
	N      int
	Faulty []bool
	// Vals[i] is processor i's contribution. The adversary may replace
	// entries of faulty processors only.
	Vals []any
	Meta any
	Rand *rand.Rand
}

// Adversary injects Byzantine behaviour. Implementations may assume they are
// called under the network lock, one step at a time, and must only modify
// state belonging to faulty processors.
type Adversary interface {
	ReworkExchange(ctx *ExchangeCtx)
	ReworkSync(ctx *SyncCtx)
}

// Passive is an adversary that corrupts processors but never deviates from
// the protocol (fail-free execution with a designated faulty set).
type Passive struct{}

// ReworkExchange implements Adversary (no deviation).
func (Passive) ReworkExchange(*ExchangeCtx) {}

// ReworkSync implements Adversary (no deviation).
func (Passive) ReworkSync(*SyncCtx) {}

// abortError carries a run-level failure through panics across goroutine
// barriers; it never escapes Run.
type abortError struct{ err error }

func abortf(format string, args ...any) abortError {
	return abortError{fmt.Errorf(format, args...)}
}
