package gf

import (
	"math/rand"
	"testing"
)

// wordMulViaPack runs the word tier end to end over a []Sym slice: pack,
// sweep, unpack. xor selects MulWordsXor (dst pre-loaded) vs MulWords.
func wordMulViaPack(t *testing.T, f *Field, tab WordTab, src, dst []Sym, xor bool) {
	t.Helper()
	c := f.C()
	mw := PackedLen(c, len(src))
	ps := make([]uint64, mw)
	pd := make([]uint64, mw)
	Pack(c, src, ps)
	if xor {
		Pack(c, dst[:len(src)], pd)
		tab.MulWordsXor(ps, pd)
	} else {
		tab.MulWords(ps, pd)
	}
	Unpack(c, pd, dst[:len(src)])
}

// TestWordKernelsAllWidths cross-checks every word-kernel variant against
// the scalar field operations for every width, over misaligned sub-slices.
func TestWordKernelsAllWidths(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	for c := uint(1); c <= 16; c++ {
		f, err := New(c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		for trial := 0; trial < 8; trial++ {
			y := Sym(rng.Intn(f.Order()))
			tabs := []WordTab{f.WordTab(y), f.WordTabFull(y)}
			n := 1 + rng.Intn(70)
			head := rng.Intn(3)
			back := make([]Sym, head+n)
			for i := range back {
				back[i] = Sym(rng.Intn(f.Order()))
			}
			src := back[head:]
			acc0 := make([]Sym, n)
			for i := range acc0 {
				acc0[i] = Sym(rng.Intn(f.Order()))
			}
			for ti, tab := range tabs {
				for _, xor := range []bool{false, true} {
					got := append([]Sym(nil), acc0...)
					wordMulViaPack(t, f, tab, src, got, xor)
					for i, s := range src {
						want := f.Mul(y, s)
						if xor {
							want ^= acc0[i]
						}
						if got[i] != want {
							t.Fatalf("c=%d tab=%d xor=%v y=%#x src[%d]=%#x: got %#x want %#x",
								c, ti, xor, y, i, s, got[i], want)
						}
					}
				}
			}
			// AddWords against AddSlice.
			mw := PackedLen(c, n)
			pa := make([]uint64, mw)
			pb := make([]uint64, mw)
			Pack(c, src, pa)
			Pack(c, acc0, pb)
			AddWords(pa, pb)
			got := make([]Sym, n)
			Unpack(c, pb, got)
			want := append([]Sym(nil), acc0...)
			AddSlice(src, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("c=%d AddWords[%d]: got %#x want %#x", c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPackRoundTripTailPadding pins the layout contract: the packed tail
// word is zero past the last symbol, and Unpack restores exactly the
// original slice for every residue of len mod syms-per-word.
func TestPackRoundTripTailPadding(t *testing.T) {
	t.Parallel()
	for _, c := range []uint{3, 8, 11, 16} {
		f, _ := New(c)
		spw := SymsPerWord(c)
		for n := 1; n <= 3*spw+1; n++ {
			src := make([]Sym, n)
			for i := range src {
				src[i] = Sym((i*31 + 7) % f.Order())
			}
			words := make([]uint64, PackedLen(c, n))
			for i := range words {
				words[i] = ^uint64(0) // Pack must overwrite, including padding
			}
			Pack(c, src, words)
			if rem := n % spw; rem != 0 {
				last := words[len(words)-1]
				bits := uint(16)
				if c <= 8 {
					bits = 8
				}
				if pad := last >> (uint(rem) * bits); pad != 0 {
					t.Fatalf("c=%d n=%d: tail padding not zero: %#x", c, n, pad)
				}
			}
			got := make([]Sym, n)
			Unpack(c, words, got)
			for i := range got {
				if got[i] != src[i] {
					t.Fatalf("c=%d n=%d: roundtrip[%d] = %#x, want %#x", c, n, i, got[i], src[i])
				}
			}
		}
	}
}

// FuzzWordVsScalar cross-checks the word tier against the scalar oracle for
// all c in [1,16], with fuzz-chosen slice lengths and misaligned heads and
// tails (the packed pipeline must agree with the scalar sweep whatever the
// sub-slice offsets of the symbol data are).
func FuzzWordVsScalar(f *testing.F) {
	f.Add(uint(8), uint16(0x35), []byte("hello word kernels"), 0, 0)
	f.Add(uint(16), uint16(0x1234), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1)
	f.Add(uint(3), uint16(5), []byte{0xFF, 0x00, 0x7}, 2, 0)
	f.Add(uint(12), uint16(0xABC), []byte("misaligned heads and tails"), 3, 2)
	f.Fuzz(func(t *testing.T, c uint, yRaw uint16, raw []byte, head, tail int) {
		if c < 1 || c > 16 {
			t.Skip()
		}
		fld, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		y := Sym(int(yRaw) % fld.Order())
		head = head & 7
		tail = tail & 7
		syms := make([]Sym, len(raw))
		for i, b := range raw {
			syms[i] = Sym(int(b) % fld.Order())
		}
		if head+tail >= len(syms) {
			t.Skip()
		}
		src := syms[head : len(syms)-tail]
		n := len(src)
		acc := make([]Sym, n)
		for i := range acc {
			acc[i] = Sym((i * 13) % fld.Order())
		}
		scalarTab := fld.Tab(y)
		for ti, tab := range []WordTab{fld.WordTab(y), fld.WordTabFull(y)} {
			for _, xor := range []bool{false, true} {
				want := append([]Sym(nil), acc...)
				if xor {
					scalarTab.MulSliceXor(src, want)
				} else {
					scalarTab.MulSlice(src, want)
				}
				got := append([]Sym(nil), acc...)
				wordMulViaPack(t, fld, tab, src, got, xor)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("c=%d tab=%d xor=%v y=%#x i=%d: word %#x != scalar %#x",
							c, ti, xor, y, i, got[i], want[i])
					}
				}
			}
		}
	})
}

func BenchmarkMulWordsXor(b *testing.B) {
	f, _ := New(8)
	const n = 4096
	src := make([]Sym, n)
	dst := make([]Sym, n)
	for i := range src {
		src[i] = Sym(i % 256)
	}
	ps := make([]uint64, PackedLen(8, n))
	pd := make([]uint64, PackedLen(8, n))
	Pack(8, src, ps)
	Pack(8, dst, pd)
	b.Run("word-full", func(b *testing.B) {
		tab := f.WordTabFull(0x35)
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			tab.MulWordsXor(ps, pd)
		}
	})
	b.Run("word-split", func(b *testing.B) {
		tab := f.WordTab(0x35)
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			tab.MulWordsXor(ps, pd)
		}
	})
	b.Run("scalar-full", func(b *testing.B) {
		tab := f.TabFull(0x35)
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			tab.MulSliceXor(src, dst)
		}
	})
}
