// Package gf implements arithmetic in binary extension fields GF(2^c) for
// 1 <= c <= 16, using exponent/logarithm tables built from a primitive
// polynomial. These fields underlie the Reed-Solomon code C2t used by the
// consensus algorithm: one field symbol carries c bits, and the code length n
// must satisfy n <= 2^c - 1.
package gf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sym is a field element of GF(2^c) for some c <= 16. Only the low c bits are
// meaningful; constructing symbols with higher bits set is a programmer error
// that field operations will reject.
type Sym uint16

// Field holds the arithmetic tables for GF(2^c). A Field is immutable and
// safe for concurrent use after construction.
type Field struct {
	c     uint // bits per symbol
	order int  // 2^c
	poly  uint32
	exp   []Sym   // exp[i] = alpha^i for i in [0, 2*(order-1)); doubled to avoid mod
	log   []int32 // log[x] defined for x in [1, order)
}

// defaultPoly[c] is a primitive polynomial of degree c (bit c is the leading
// term). Each entry is validated for primitivity at construction time; if an
// entry were wrong, New falls back to an exhaustive search.
var defaultPoly = [17]uint32{
	0, 0x3, 0x7, 0xB, 0x13, 0x25, 0x43, 0x89,
	0x11D, 0x211, 0x409, 0x805, 0x1053, 0x201B, 0x4443, 0x8003, 0x1100B,
}

// fieldCache holds the constructed fields. Lookups are lock-free atomic
// loads — every processor of every run constructs its codes through New, so
// a plain mutex here serializes all of them on a single cache line; only the
// one-time construction of a missing width takes buildMu.
var (
	buildMu    sync.Mutex
	fieldCache [17]atomic.Pointer[Field]
)

func init() {
	// Pre-build the two fields used in practice so hot paths never pay
	// construction cost. Other widths are built on demand by New.
	for _, c := range []uint{8, 16} {
		f, err := build(c, defaultPoly[c])
		if err != nil {
			panic(fmt.Sprintf("gf: default polynomial for c=%d not primitive: %v", c, err))
		}
		fieldCache[c].Store(f)
	}
}

// New returns the field GF(2^c). Fields are cached: repeated calls with the
// same c return the same instance. Safe for concurrent use (each simulated
// processor constructs its codes independently); the cache hit path is a
// single atomic pointer load.
func New(c uint) (*Field, error) {
	if c < 1 || c > 16 {
		return nil, fmt.Errorf("gf: symbol width c=%d out of range [1,16]", c)
	}
	if f := fieldCache[c].Load(); f != nil {
		return f, nil
	}
	buildMu.Lock()
	defer buildMu.Unlock()
	if f := fieldCache[c].Load(); f != nil {
		return f, nil
	}
	f, err := build(c, defaultPoly[c])
	if err != nil {
		// Fall back to searching for a primitive polynomial of degree c.
		f, err = search(c)
		if err != nil {
			return nil, err
		}
	}
	fieldCache[c].Store(f)
	return f, nil
}

// build constructs the tables for GF(2^c) with the given polynomial and
// verifies that x (alpha = 2) generates the full multiplicative group, i.e.
// that poly is primitive.
func build(c uint, poly uint32) (*Field, error) {
	order := 1 << c
	f := &Field{
		c:     c,
		order: order,
		poly:  poly,
		exp:   make([]Sym, 2*(order-1)),
		log:   make([]int32, order),
	}
	seen := make([]bool, order)
	x := uint32(1)
	for i := 0; i < order-1; i++ {
		if seen[x] {
			return nil, fmt.Errorf("gf: poly %#x of degree %d is not primitive (period < %d)", poly, c, order-1)
		}
		seen[x] = true
		f.exp[i] = Sym(x)
		f.log[x] = int32(i)
		x <<= 1
		if x&uint32(order) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: poly %#x of degree %d does not cycle back to 1", poly, c)
	}
	copy(f.exp[order-1:], f.exp[:order-1])
	return f, nil
}

// search finds some primitive polynomial of degree c by brute force.
func search(c uint) (*Field, error) {
	order := uint32(1) << c
	for p := order + 1; p < order<<1; p += 2 {
		if f, err := build(c, p); err == nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("gf: no primitive polynomial of degree %d found", c)
}

// C returns the number of bits per symbol.
func (f *Field) C() uint { return f.c }

// Order returns the number of field elements, 2^c.
func (f *Field) Order() int { return f.order }

// MaxCodeLen returns the maximum Reed-Solomon code length over this field
// using distinct nonzero evaluation points: 2^c - 1.
func (f *Field) MaxCodeLen() int { return f.order - 1 }

func (f *Field) checkRange(a Sym) {
	if int(a) >= f.order {
		panic(fmt.Sprintf("gf: symbol %#x out of range for GF(2^%d)", a, f.c))
	}
}

// Add returns a + b (= a - b) in the field.
func (f *Field) Add(a, b Sym) Sym {
	f.checkRange(a)
	f.checkRange(b)
	return a ^ b
}

// Mul returns a * b in the field.
func (f *Field) Mul(a, b Sym) Sym {
	f.checkRange(a)
	f.checkRange(b)
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0, which is
// always a programmer error in this codebase (decoders guard the zero case).
func (f *Field) Inv(a Sym) Sym {
	f.checkRange(a)
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[(f.order-1)-int(f.log[a])]
}

// Div returns a / b. It panics if b == 0.
func (f *Field) Div(a, b Sym) Sym {
	f.checkRange(a)
	f.checkRange(b)
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.order - 1
	}
	return f.exp[d]
}

// Exp returns alpha^i where alpha is the canonical generator (x, i.e. 2).
// Negative exponents are reduced modulo the group order.
func (f *Field) Exp(i int) Sym {
	m := i % (f.order - 1)
	if m < 0 {
		m += f.order - 1
	}
	return f.exp[m]
}

// Log returns the discrete logarithm of a base alpha. It panics if a == 0.
func (f *Field) Log(a Sym) int {
	f.checkRange(a)
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(f.log[a])
}

// EvalPoly evaluates the polynomial with the given coefficients (coeffs[i] is
// the coefficient of x^i) at the point x, using Horner's rule.
func (f *Field) EvalPoly(coeffs []Sym, x Sym) Sym {
	var acc Sym
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ coeffs[i]
	}
	return acc
}
