package gf

// This file is the word-sliced kernel tier: bulk multiplication over symbol
// slices packed into 64-bit lane words, processing 8 symbols per word for
// c <= 8 (byte-packed) or 4 symbols per word for c <= 16 (half-word-packed).
// It sits above the split-table tier of bulk.go the same way bulk.go sits
// above the scalar log/exp path: the scalar operations remain the checked
// reference oracle (FuzzWordVsScalar cross-checks every word kernel against
// MulTab and the scalar Mul for all c in [1,16], including misaligned slice
// heads and tails), and the word kernels trade per-symbol loads, stores and
// loop overhead for throughput on validated data.
//
// Why packing wins: a gf.Sym is a uint16 in memory whatever the field width,
// so a scalar table sweep over an M-symbol slice moves 2M bytes in and 2M
// bytes out and runs M loop iterations. The packed form holds 8 (c <= 8) or
// 4 (c <= 16) symbols per uint64, so the same sweep moves 4-8x less memory,
// performs one wide load and one wide store per word, and retires an
// unrolled straight-line body per word instead of 8 (resp. 4) dependent
// read-modify-write iterations. The table lookups themselves do not
// disappear — each packed symbol still pays its one (full-table) or two
// (split-table) lookups — but they pipeline against each other inside a word
// because the products combine with independent shifts into one accumulator.
//
// Packing is only worth its two linear passes when the packed lanes are
// swept more than once, which is exactly the shape of the Reed-Solomon
// matrix sweeps (internal/rs): K packed source slabs are swept K·N times by
// the encode matrix and K·K times by the interpolation matrix, so the
// pack/unpack boundary cost amortizes to ~1/K of one sweep.

// SymsPerWord returns how many packed symbols one uint64 lane word carries
// for a field of width c: 8 for c <= 8, 4 for c <= 16.
func SymsPerWord(c uint) int {
	if c <= 8 {
		return 8
	}
	return 4
}

// PackedLen returns the number of lane words needed to pack n symbols of
// width c (the final word is zero-padded past n).
func PackedLen(c uint, n int) int {
	spw := SymsPerWord(c)
	return (n + spw - 1) / spw
}

// Pack packs src into little-endian lane words: symbol i of a c <= 8 field
// lands in byte i%8 of word i/8, symbol i of a wider field in half-word i%4
// of word i/4. dst must hold PackedLen(c, len(src)) words; the tail of the
// last word is zero-filled (zero-padding is harmless to every kernel:
// y·0 = 0). Symbols are masked to c bits on the way in, matching the bulk
// tier's contract that out-of-range inputs yield masked products, never
// panics.
func Pack(c uint, src []Sym, dst []uint64) {
	mask := uint64(1)<<c - 1
	if c <= 8 {
		n := len(src) / 8 * 8
		w := 0
		for i := 0; i < n; i += 8 {
			s := src[i : i+8 : i+8]
			dst[w] = uint64(s[0])&mask |
				uint64(s[1])&mask<<8 |
				uint64(s[2])&mask<<16 |
				uint64(s[3])&mask<<24 |
				uint64(s[4])&mask<<32 |
				uint64(s[5])&mask<<40 |
				uint64(s[6])&mask<<48 |
				uint64(s[7])&mask<<56
			w++
		}
		if n < len(src) {
			var last uint64
			for i, s := range src[n:] {
				last |= uint64(s) & mask << (8 * uint(i))
			}
			dst[w] = last
		}
		return
	}
	n := len(src) / 4 * 4
	w := 0
	for i := 0; i < n; i += 4 {
		s := src[i : i+4 : i+4]
		dst[w] = uint64(s[0])&mask |
			uint64(s[1])&mask<<16 |
			uint64(s[2])&mask<<32 |
			uint64(s[3])&mask<<48
		w++
	}
	if n < len(src) {
		var last uint64
		for i, s := range src[n:] {
			last |= uint64(s) & mask << (16 * uint(i))
		}
		dst[w] = last
	}
}

// Unpack writes the first len(dst) packed symbols of src back into dst,
// undoing Pack's layout.
func Unpack(c uint, src []uint64, dst []Sym) {
	if c <= 8 {
		n := len(dst) / 8 * 8
		w := 0
		for i := 0; i < n; i += 8 {
			x := src[w]
			w++
			s := dst[i : i+8 : i+8]
			s[0] = Sym(x & 0xFF)
			s[1] = Sym(x >> 8 & 0xFF)
			s[2] = Sym(x >> 16 & 0xFF)
			s[3] = Sym(x >> 24 & 0xFF)
			s[4] = Sym(x >> 32 & 0xFF)
			s[5] = Sym(x >> 40 & 0xFF)
			s[6] = Sym(x >> 48 & 0xFF)
			s[7] = Sym(x >> 56)
		}
		if n < len(dst) {
			x := src[w]
			for i := range dst[n:] {
				dst[n+i] = Sym(x >> (8 * uint(i)) & 0xFF)
			}
		}
		return
	}
	n := len(dst) / 4 * 4
	w := 0
	for i := 0; i < n; i += 4 {
		x := src[w]
		w++
		s := dst[i : i+4 : i+4]
		s[0] = Sym(x & 0xFFFF)
		s[1] = Sym(x >> 16 & 0xFFFF)
		s[2] = Sym(x >> 32 & 0xFFFF)
		s[3] = Sym(x >> 48)
	}
	if n < len(dst) {
		x := src[w]
		for i := range dst[n:] {
			dst[n+i] = Sym(x >> (16 * uint(i)) & 0xFFFF)
		}
	}
}

// WordTab is a per-scalar multiplication table for the word-sliced kernels.
// The zero value is not usable; build one with Field.WordTab or
// Field.WordTabFull. Table shapes mirror bulk.go's split tables, narrowed to
// the packed symbol width:
//
//   - c <= 8 split: two 16-entry nibble tables of byte products,
//     y·s = lo[s&0xF] ^ hi[s>>4], applied to each of a word's 8 bytes;
//   - c <= 8 full (WordTabFull): one 256-entry byte table, one lookup per
//     packed byte — the fastest form, affordable only for cached matrices;
//   - c > 8: two 256-entry half-word tables, y·s = lo[s&0xFF] ^ hi[s>>8],
//     applied to each of a word's 4 half-words.
type WordTab struct {
	lo8, hi8 *[16]byte    // c <= 8 split
	full8    *[256]byte   // c <= 8 full
	lo16     *[256]uint16 // c > 8 split
	hi16     *[256]uint16
}

// WordTab builds the split word-kernel table for the scalar y.
func (f *Field) WordTab(y Sym) WordTab {
	f.checkRange(y)
	if f.c <= 8 {
		var lo, hi [16]byte
		for v := 0; v < 16; v++ {
			if v < f.order {
				lo[v] = byte(f.Mul(y, Sym(v)))
			}
			if vh := v << 4; vh < f.order {
				hi[v] = byte(f.Mul(y, Sym(vh)))
			}
		}
		return WordTab{lo8: &lo, hi8: &hi}
	}
	var lo, hi [256]uint16
	for v := 0; v < 256; v++ {
		lo[v] = uint16(f.Mul(y, Sym(v)))
		if vh := v << 8; vh < f.order {
			hi[v] = uint16(f.Mul(y, Sym(vh)))
		}
	}
	return WordTab{lo16: &lo, hi16: &hi}
}

// WordTabFull builds the fastest word table: a direct-indexed 256-entry byte
// table for c <= 8 (one lookup per packed symbol), falling back to the split
// form for wider fields. Like TabFull it costs 2^c multiplications to build
// and is meant for cached matrices (internal/rs), not per-call use.
func (f *Field) WordTabFull(y Sym) WordTab {
	if f.c > 8 {
		return f.WordTab(y)
	}
	f.checkRange(y)
	var full [256]byte
	for v := 0; v < f.order; v++ {
		full[v] = byte(f.Mul(y, Sym(v)))
	}
	return WordTab{full8: &full}
}

// MulWordsXor accumulates dst[w] ^= y·src[w] over packed lane words (y being
// the table's scalar, applied to every packed symbol independently). dst
// must be at least as long as src.
func (t *WordTab) MulWordsXor(src, dst []uint64) {
	dst = dst[:len(src)]
	switch {
	case t.full8 != nil:
		full := t.full8
		for w, x := range src {
			dst[w] ^= uint64(full[x&0xFF]) |
				uint64(full[x>>8&0xFF])<<8 |
				uint64(full[x>>16&0xFF])<<16 |
				uint64(full[x>>24&0xFF])<<24 |
				uint64(full[x>>32&0xFF])<<32 |
				uint64(full[x>>40&0xFF])<<40 |
				uint64(full[x>>48&0xFF])<<48 |
				uint64(full[x>>56])<<56
		}
	case t.lo8 != nil:
		lo, hi := t.lo8, t.hi8
		for w, x := range src {
			dst[w] ^= uint64(lo[x&0xF]^hi[x>>4&0xF]) |
				uint64(lo[x>>8&0xF]^hi[x>>12&0xF])<<8 |
				uint64(lo[x>>16&0xF]^hi[x>>20&0xF])<<16 |
				uint64(lo[x>>24&0xF]^hi[x>>28&0xF])<<24 |
				uint64(lo[x>>32&0xF]^hi[x>>36&0xF])<<32 |
				uint64(lo[x>>40&0xF]^hi[x>>44&0xF])<<40 |
				uint64(lo[x>>48&0xF]^hi[x>>52&0xF])<<48 |
				uint64(lo[x>>56&0xF]^hi[x>>60])<<56
		}
	default:
		lo, hi := t.lo16, t.hi16
		for w, x := range src {
			dst[w] ^= uint64(lo[x&0xFF]^hi[x>>8&0xFF]) |
				uint64(lo[x>>16&0xFF]^hi[x>>24&0xFF])<<16 |
				uint64(lo[x>>32&0xFF]^hi[x>>40&0xFF])<<32 |
				uint64(lo[x>>48&0xFF]^hi[x>>56])<<48
		}
	}
}

// MulWords writes dst[w] = y·src[w], the overwriting variant of MulWordsXor.
func (t *WordTab) MulWords(src, dst []uint64) {
	dst = dst[:len(src)]
	switch {
	case t.full8 != nil:
		full := t.full8
		for w, x := range src {
			dst[w] = uint64(full[x&0xFF]) |
				uint64(full[x>>8&0xFF])<<8 |
				uint64(full[x>>16&0xFF])<<16 |
				uint64(full[x>>24&0xFF])<<24 |
				uint64(full[x>>32&0xFF])<<32 |
				uint64(full[x>>40&0xFF])<<40 |
				uint64(full[x>>48&0xFF])<<48 |
				uint64(full[x>>56])<<56
		}
	case t.lo8 != nil:
		lo, hi := t.lo8, t.hi8
		for w, x := range src {
			dst[w] = uint64(lo[x&0xF]^hi[x>>4&0xF]) |
				uint64(lo[x>>8&0xF]^hi[x>>12&0xF])<<8 |
				uint64(lo[x>>16&0xF]^hi[x>>20&0xF])<<16 |
				uint64(lo[x>>24&0xF]^hi[x>>28&0xF])<<24 |
				uint64(lo[x>>32&0xF]^hi[x>>36&0xF])<<32 |
				uint64(lo[x>>40&0xF]^hi[x>>44&0xF])<<40 |
				uint64(lo[x>>48&0xF]^hi[x>>52&0xF])<<48 |
				uint64(lo[x>>56&0xF]^hi[x>>60])<<56
		}
	default:
		lo, hi := t.lo16, t.hi16
		for w, x := range src {
			dst[w] = uint64(lo[x&0xFF]^hi[x>>8&0xFF]) |
				uint64(lo[x>>16&0xFF]^hi[x>>24&0xFF])<<16 |
				uint64(lo[x>>32&0xFF]^hi[x>>40&0xFF])<<32 |
				uint64(lo[x>>48&0xFF]^hi[x>>56])<<48
		}
	}
}

// AddWords accumulates dst[w] ^= src[w] — field addition over 8 (resp. 4)
// packed symbols per operation. dst must be at least as long as src.
func AddWords(src, dst []uint64) {
	dst = dst[:len(src)]
	for w, x := range src {
		dst[w] ^= x
	}
}
