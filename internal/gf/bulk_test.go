package gf

import (
	"math/rand"
	"testing"
)

// TestBulkKernelsAllWidths sweeps every field width and cross-checks every
// bulk kernel variant against the scalar log/exp reference for random
// scalars and slices (including the all-symbols sweep for narrow fields).
func TestBulkKernelsAllWidths(t *testing.T) {
	t.Parallel()
	for c := uint(1); c <= 16; c++ {
		f, err := New(c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		r := rand.New(rand.NewSource(int64(c) * 7919))
		ys := []Sym{0, 1, Sym(f.order - 1)}
		for i := 0; i < 8; i++ {
			ys = append(ys, Sym(r.Intn(f.order)))
		}
		src := make([]Sym, 257)
		for i := range src {
			src[i] = Sym(r.Intn(f.order))
		}
		if f.order <= 256 {
			// Narrow fields: cover every symbol value exhaustively.
			src = src[:f.order]
			for i := range src {
				src[i] = Sym(i)
			}
		}
		for _, y := range ys {
			want := make([]Sym, len(src))
			for i, s := range src {
				want[i] = f.Mul(y, s)
			}
			for _, tab := range []MulTab{f.Tab(y), f.TabFull(y)} {
				got := make([]Sym, len(src))
				tab.MulSlice(src, got)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("c=%d y=%#x kind=%d: MulSlice[%d] = %#x, want %#x", c, y, tab.kind, i, got[i], want[i])
					}
				}
				// Xor form: accumulate over a random base.
				base := make([]Sym, len(src))
				for i := range base {
					base[i] = Sym(r.Intn(f.order))
				}
				acc := append([]Sym(nil), base...)
				tab.MulSliceXor(src, acc)
				for i := range acc {
					if acc[i] != base[i]^want[i] {
						t.Fatalf("c=%d y=%#x kind=%d: MulSliceXor mismatch at %d", c, y, tab.kind, i)
					}
				}
			}
			got := make([]Sym, len(src))
			f.MulSliceXor(y, src, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("c=%d y=%#x: Field.MulSliceXor[%d] = %#x, want %#x", c, y, i, got[i], want[i])
				}
			}
		}
		// AddSlice == scalar Add.
		a := append([]Sym(nil), src...)
		b := make([]Sym, len(src))
		for i := range b {
			b[i] = Sym(r.Intn(f.order))
		}
		acc := append([]Sym(nil), b...)
		AddSlice(src, acc)
		for i := range acc {
			if acc[i] != f.Add(a[i], b[i]) {
				t.Fatalf("c=%d: AddSlice mismatch at %d", c, i)
			}
		}
	}
}

// TestTabShapes pins the table variants the kernels are specified with: two
// 16-entry nibble tables up to c=8, two 256-entry byte tables above, and the
// direct-indexed full table only for narrow fields.
func TestTabShapes(t *testing.T) {
	t.Parallel()
	for c := uint(1); c <= 16; c++ {
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		tab := f.Tab(Sym(3 % f.order))
		if c <= 8 {
			if len(tab.lo) != 16 || len(tab.hi) != 16 || tab.kind != tabNib {
				t.Fatalf("c=%d: want nibble split tables, got lo=%d hi=%d kind=%d", c, len(tab.lo), len(tab.hi), tab.kind)
			}
		} else if len(tab.lo) != 256 || len(tab.hi) != 256 || tab.kind != tabByte {
			t.Fatalf("c=%d: want byte split tables, got lo=%d hi=%d kind=%d", c, len(tab.lo), len(tab.hi), tab.kind)
		}
		full := f.TabFull(Sym(3 % f.order))
		if c <= 8 {
			if len(full.lo) != f.order || full.kind != tabFull {
				t.Fatalf("c=%d: want full table of %d entries, got %d kind=%d", c, f.order, len(full.lo), full.kind)
			}
		} else if full.kind != tabByte {
			t.Fatalf("c=%d: TabFull must fall back to byte split, got kind=%d", c, full.kind)
		}
	}
}

// FuzzBulkVsScalar cross-checks the bulk kernels against the scalar
// reference for fuzzer-chosen widths, scalars and slices.
func FuzzBulkVsScalar(f *testing.F) {
	f.Add(uint8(8), uint16(0x53), []byte{1, 2, 3, 250, 0, 7})
	f.Add(uint8(16), uint16(0xBEEF), []byte{0xFF, 0xFF, 0, 1})
	f.Add(uint8(1), uint16(1), []byte{1, 0, 1, 1})
	f.Add(uint8(11), uint16(0x3FF), []byte{9, 8, 7})
	f.Fuzz(func(t *testing.T, cRaw uint8, yRaw uint16, raw []byte) {
		c := uint(cRaw)%16 + 1
		fld, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		y := Sym(int(yRaw) % fld.Order())
		src := make([]Sym, 0, (len(raw)+1)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			src = append(src, Sym(int(uint16(raw[i])<<8|uint16(raw[i+1]))%fld.Order()))
		}
		want := make([]Sym, len(src))
		for i, s := range src {
			want[i] = fld.Mul(y, s)
		}
		for _, tab := range []MulTab{fld.Tab(y), fld.TabFull(y)} {
			got := make([]Sym, len(src))
			tab.MulSlice(src, got)
			acc := make([]Sym, len(src))
			tab.MulSliceXor(src, acc)
			for i := range want {
				if got[i] != want[i] || acc[i] != want[i] {
					t.Fatalf("c=%d y=%#x kind=%d: bulk %#x/%#x, scalar %#x at %d", c, y, tab.kind, got[i], acc[i], want[i], i)
				}
			}
		}
	})
}

// BenchmarkMulSliceXor measures the bulk kernel variants on a 512-symbol
// sweep, next to the scalar loop they replace.
func BenchmarkMulSliceXor(b *testing.B) {
	for _, bc := range []struct {
		name string
		c    uint
	}{{"c8", 8}, {"c16", 16}} {
		f, err := New(bc.c)
		if err != nil {
			b.Fatal(err)
		}
		src := make([]Sym, 512)
		dst := make([]Sym, 512)
		for i := range src {
			src[i] = Sym(i % f.Order())
		}
		y := Sym(0x35 % f.Order())
		b.Run(bc.name+"/split", func(b *testing.B) {
			tab := f.Tab(y)
			b.SetBytes(512)
			for i := 0; i < b.N; i++ {
				tab.MulSliceXor(src, dst)
			}
		})
		b.Run(bc.name+"/full", func(b *testing.B) {
			tab := f.TabFull(y)
			b.SetBytes(512)
			for i := 0; i < b.N; i++ {
				tab.MulSliceXor(src, dst)
			}
		})
		b.Run(bc.name+"/scalar", func(b *testing.B) {
			b.SetBytes(512)
			for i := 0; i < b.N; i++ {
				for j, s := range src {
					dst[j] ^= f.Mul(y, s)
				}
			}
		})
	}
}
