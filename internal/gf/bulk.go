package gf

// This file is the word-parallel kernel layer of the field: bulk operations
// over contiguous symbol slices, built on per-scalar split tables instead of
// the log/exp scalar path. The scalar Mul/Add/Div operations remain the
// checked reference oracle (the bulk fuzz tests cross-check every kernel
// against them for all c in [1,16]); the kernels here trade the per-symbol
// range checks for throughput and are intended for validated data — symbol
// slices that entered through the wire codec's width check or were produced
// by the field itself. Feeding a kernel symbols with bits above c yields an
// unspecified (masked) product rather than a panic.
//
// Table shapes, chosen so that a table build is cheap enough to do per
// scalar and the sweep loop needs no bounds checks:
//
//   - c <= 8: two 16-entry nibble tables, lo[v] = y·v and hi[v] = y·(v<<4),
//     so y·s = lo[s&0xF] ^ hi[s>>4] (32 scalar multiplications to build);
//   - c > 8: byte tables, lo[v] = y·v and hi[v] = y·(v<<8) for v in [0,256),
//     so y·s = lo[s&0xFF] ^ hi[s>>8] (512 scalar multiplications to build).
//
// For hot loops that apply the same scalar to many slices (the matrix-form
// Reed-Solomon sweeps), TabFull builds a direct-indexed table of all 2^c
// products when c <= 8 — one lookup per symbol instead of two — which only
// pays off because internal/rs caches the tables per code.

// MulTab is a per-scalar multiplication table for the bulk kernels. The zero
// value is not usable; build one with Field.Tab or Field.TabFull.
type MulTab struct {
	// lo and hi are the split tables: y·(low part) and y·(high part) of a
	// symbol. Their length encodes the variant: 16/16 (nibble split),
	// 256/256 (byte split), or 2^c/nil (full direct-indexed, c <= 8).
	lo, hi []Sym
	kind   uint8
}

// Table variants.
const (
	tabNib  uint8 = iota // lo[16], hi[16]: y·s = lo[s&0xF] ^ hi[s>>4]
	tabByte              // lo[256], hi[256]: y·s = lo[s&0xFF] ^ hi[s>>8]
	tabFull              // lo[2^c]: y·s = lo[s]
)

// Tab builds the split multiplication table for the scalar y: two 16-entry
// nibble tables for c <= 8, two 256-entry byte tables for c > 8.
func (f *Field) Tab(y Sym) MulTab {
	f.checkRange(y)
	if f.c <= 8 {
		back := make([]Sym, 32)
		t := MulTab{lo: back[:16:16], hi: back[16:], kind: tabNib}
		for v := 0; v < 16; v++ {
			if v < f.order {
				t.lo[v] = f.Mul(y, Sym(v))
			}
			if vh := v << 4; vh < f.order {
				t.hi[v] = f.Mul(y, Sym(vh))
			}
		}
		return t
	}
	back := make([]Sym, 512)
	t := MulTab{lo: back[:256:256], hi: back[256:], kind: tabByte}
	for v := 0; v < 256; v++ {
		t.lo[v] = f.Mul(y, Sym(v))
		if vh := v << 8; vh < f.order {
			t.hi[v] = f.Mul(y, Sym(vh))
		}
	}
	return t
}

// TabFull builds the fastest table for repeated sweeps with the same scalar:
// a direct-indexed table of all 2^c products when c <= 8 (one lookup per
// symbol), falling back to the byte-split table for wider fields where a
// full table would be 2^c entries. Building it costs 2^c multiplications, so
// it is meant for cached matrices (internal/rs), not per-call use.
func (f *Field) TabFull(y Sym) MulTab {
	if f.c > 8 {
		return f.Tab(y)
	}
	f.checkRange(y)
	t := MulTab{lo: make([]Sym, f.order), kind: tabFull}
	for v := 0; v < f.order; v++ {
		t.lo[v] = f.Mul(y, Sym(v))
	}
	return t
}

// MulSliceXor accumulates dst[i] ^= y·src[i] over the slices (y being the
// table's scalar). dst must be at least as long as src; only the first
// len(src) entries are touched. src symbols must be valid field elements.
func (t *MulTab) MulSliceXor(src, dst []Sym) {
	dst = dst[:len(src)]
	switch t.kind {
	case tabFull:
		lo := t.lo
		for i, s := range src {
			dst[i] ^= lo[s]
		}
	case tabNib:
		lo := t.lo[:16]
		hi := t.hi[:16]
		for i, s := range src {
			dst[i] ^= lo[s&0xF] ^ hi[(s>>4)&0xF]
		}
	default:
		lo := t.lo[:256]
		hi := t.hi[:256]
		for i, s := range src {
			dst[i] ^= lo[s&0xFF] ^ hi[(s>>8)&0xFF]
		}
	}
}

// MulSlice writes dst[i] = y·src[i], the overwriting variant of MulSliceXor
// (it saves the callers of matrix sweeps from zeroing their accumulators).
func (t *MulTab) MulSlice(src, dst []Sym) {
	dst = dst[:len(src)]
	switch t.kind {
	case tabFull:
		lo := t.lo
		for i, s := range src {
			dst[i] = lo[s]
		}
	case tabNib:
		lo := t.lo[:16]
		hi := t.hi[:16]
		for i, s := range src {
			dst[i] = lo[s&0xF] ^ hi[(s>>4)&0xF]
		}
	default:
		lo := t.lo[:256]
		hi := t.hi[:256]
		for i, s := range src {
			dst[i] = lo[s&0xFF] ^ hi[(s>>8)&0xFF]
		}
	}
}

// MulSliceXor is the convenience form building a transient split table; hot
// paths that reuse a scalar should build the table once (Tab/TabFull) and
// sweep with it.
func (f *Field) MulSliceXor(y Sym, src, dst []Sym) {
	t := f.Tab(y)
	t.MulSliceXor(src, dst)
}

// AddSlice accumulates dst[i] ^= src[i] (addition == subtraction in
// characteristic 2). dst must be at least as long as src.
func AddSlice(src, dst []Sym) {
	dst = dst[:len(src)]
	for i, s := range src {
		dst[i] ^= s
	}
}
