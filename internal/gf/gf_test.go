package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadWidths(t *testing.T) {
	for _, c := range []uint{0, 17, 32} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d) succeeded, want error", c)
		}
	}
}

func TestAllWidthsBuild(t *testing.T) {
	for c := uint(1); c <= 16; c++ {
		f, err := New(c)
		if err != nil {
			t.Fatalf("New(%d): %v", c, err)
		}
		if f.Order() != 1<<c {
			t.Errorf("c=%d: order = %d, want %d", c, f.Order(), 1<<c)
		}
		if f.MaxCodeLen() != (1<<c)-1 {
			t.Errorf("c=%d: max code len = %d, want %d", c, f.MaxCodeLen(), (1<<c)-1)
		}
	}
}

func TestGeneratorHasFullPeriod(t *testing.T) {
	// The construction itself verifies primitivity; double-check the public
	// surface: alpha^i must enumerate all nonzero elements exactly once.
	for _, c := range []uint{1, 2, 4, 8, 12, 16} {
		f, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[Sym]bool)
		for i := 0; i < f.Order()-1; i++ {
			x := f.Exp(i)
			if x == 0 || seen[x] {
				t.Fatalf("c=%d: Exp(%d)=%d repeats or is zero", c, i, x)
			}
			seen[x] = true
		}
		if f.Exp(f.Order()-1) != 1 {
			t.Errorf("c=%d: alpha^(order-1) = %d, want 1", c, f.Exp(f.Order()-1))
		}
	}
}

func TestFieldsAreCached(t *testing.T) {
	a, _ := New(8)
	b, _ := New(8)
	if a != b {
		t.Error("New(8) returned distinct instances; want cached")
	}
}

func TestSearchFindsPrimitivePolynomial(t *testing.T) {
	// The fallback path used when a table entry were wrong: exhaustive
	// search must produce a working field.
	for _, c := range []uint{3, 6, 9} {
		f, err := search(c)
		if err != nil {
			t.Fatalf("search(%d): %v", c, err)
		}
		if f.Exp(f.Order()-1) != 1 {
			t.Errorf("search(%d): generator does not cycle", c)
		}
	}
}

func TestBuildRejectsNonPrimitive(t *testing.T) {
	// x^4 + x^3 + x^2 + x + 1 divides x^5 - 1: irreducible but NOT primitive
	// (element order 5 < 15). The period check must reject it.
	if _, err := build(4, 0x1F); err == nil {
		t.Error("non-primitive polynomial accepted")
	}
	// A reducible polynomial must be rejected too: x^4 + 1 = (x+1)^4.
	if _, err := build(4, 0x11); err == nil {
		t.Error("reducible polynomial accepted")
	}
}

func TestConcurrentNew(t *testing.T) {
	done := make(chan *Field, 8)
	for i := 0; i < 8; i++ {
		go func() {
			f, _ := New(5) // uncached width: exercises the locked slow path
			done <- f
		}()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if f := <-done; f != first {
			t.Fatal("concurrent New returned different instances")
		}
	}
}

// randSym returns a uniformly random element of f.
func randSym(f *Field, r *rand.Rand) Sym { return Sym(r.Intn(f.Order())) }

func testFieldAxioms(t *testing.T, c uint) {
	f, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(int64(c) * 977))
	cfg := &quick.Config{MaxCount: 500, Rand: r}

	if err := quick.Check(func(x, y, z uint16) bool {
		a, b, d := Sym(int(x)%f.Order()), Sym(int(y)%f.Order()), Sym(int(z)%f.Order())
		// Commutativity, associativity, distributivity.
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(a, f.Mul(b, d)) != f.Mul(f.Mul(a, b), d) {
			return false
		}
		return f.Mul(a, f.Add(b, d)) == f.Add(f.Mul(a, b), f.Mul(a, d))
	}, cfg); err != nil {
		t.Errorf("c=%d ring axioms: %v", c, err)
	}

	if err := quick.Check(func(x uint16) bool {
		a := Sym(int(x) % f.Order())
		if a == 0 {
			return true
		}
		return f.Mul(a, f.Inv(a)) == 1
	}, cfg); err != nil {
		t.Errorf("c=%d inverses: %v", c, err)
	}

	if err := quick.Check(func(x, y uint16) bool {
		a, b := Sym(int(x)%f.Order()), Sym(int(y)%f.Order())
		if b == 0 {
			return true
		}
		return f.Mul(f.Div(a, b), b) == a
	}, cfg); err != nil {
		t.Errorf("c=%d division: %v", c, err)
	}

	// Identities.
	for i := 0; i < 100; i++ {
		a := randSym(f, r)
		if f.Mul(a, 1) != a || f.Mul(a, 0) != 0 || f.Add(a, 0) != a || f.Add(a, a) != 0 {
			t.Fatalf("c=%d: identity laws fail for %d", c, a)
		}
	}
}

func TestFieldAxiomsGF256(t *testing.T)   { testFieldAxioms(t, 8) }
func TestFieldAxiomsGF65536(t *testing.T) { testFieldAxioms(t, 16) }
func TestFieldAxiomsGF16(t *testing.T)    { testFieldAxioms(t, 4) }
func TestFieldAxiomsGF2(t *testing.T)     { testFieldAxioms(t, 1) }

func TestLogExpRoundTrip(t *testing.T) {
	f, _ := New(8)
	for x := 1; x < f.Order(); x++ {
		if f.Exp(f.Log(Sym(x))) != Sym(x) {
			t.Fatalf("Exp(Log(%d)) != %d", x, x)
		}
	}
}

func TestExpNegativeWraps(t *testing.T) {
	f, _ := New(8)
	if f.Exp(-1) != f.Inv(f.Exp(1)) {
		t.Errorf("Exp(-1) = %d, want Inv(alpha) = %d", f.Exp(-1), f.Inv(f.Exp(1)))
	}
}

func TestEvalPoly(t *testing.T) {
	f, _ := New(8)
	// p(x) = 3 + 5x + 7x²; check Horner against manual evaluation.
	coeffs := []Sym{3, 5, 7}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		x := randSym(f, r)
		x2 := f.Mul(x, x)
		want := f.Add(f.Add(3, f.Mul(5, x)), f.Mul(7, x2))
		if got := f.EvalPoly(coeffs, x); got != want {
			t.Fatalf("EvalPoly at %d = %d, want %d", x, got, want)
		}
	}
	if f.EvalPoly(nil, 7) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	f, _ := New(8)
	cases := []struct {
		name string
		fn   func()
	}{
		{"inv zero", func() { f.Inv(0) }},
		{"div zero", func() { f.Div(3, 0) }},
		{"log zero", func() { f.Log(0) }},
		{"out of range", func() { f.Mul(0x100, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func BenchmarkMulGF256(b *testing.B) {
	f, _ := New(8)
	var acc Sym = 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, Sym(i%255)+1)
	}
	_ = acc
}

func BenchmarkMulGF65536(b *testing.B) {
	f, _ := New(16)
	var acc Sym = 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, Sym(i%65535)+1)
	}
	_ = acc
}
