package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndTotals(t *testing.T) {
	m := NewMeter()
	m.Add("a", 10, false)
	m.Add("a", 5, false)
	m.Add("a", 7, true)
	m.Add("b", 3, false)
	if got := m.TotalBits(); got != 25 {
		t.Errorf("TotalBits = %d, want 25", got)
	}
	if got := m.HonestBits(); got != 18 {
		t.Errorf("HonestBits = %d, want 18", got)
	}
	snap := m.Snapshot()
	if snap["a"].Bits != 15 || snap["a"].Msgs != 2 || snap["a"].FaultyBits != 7 || snap["a"].FaultyMsgs != 1 {
		t.Errorf("tally a = %+v", snap["a"])
	}
	if snap["a"].Total() != 22 {
		t.Errorf("Total = %d", snap["a"].Total())
	}
}

func TestBitsByPrefix(t *testing.T) {
	m := NewMeter()
	m.Add("match.sym", 10, false)
	m.Add("match.M", 20, true)
	m.Add("check.det", 40, false)
	if got := m.BitsByPrefix("match."); got != 30 {
		t.Errorf("BitsByPrefix(match.) = %d, want 30", got)
	}
	if got := m.BitsByPrefix("nope"); got != 0 {
		t.Errorf("BitsByPrefix(nope) = %d, want 0", got)
	}
}

func TestRounds(t *testing.T) {
	m := NewMeter()
	for i := 0; i < 5; i++ {
		m.AddRound()
	}
	if m.Rounds() != 5 {
		t.Errorf("Rounds = %d", m.Rounds())
	}
}

func TestNegativeBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative bits")
		}
	}()
	NewMeter().Add("x", -1, false)
}

func TestConcurrentAdds(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add("t", 1, i%2 == 0)
				m.AddRound()
			}
		}()
	}
	wg.Wait()
	if m.TotalBits() != 8000 || m.Rounds() != 8000 {
		t.Errorf("concurrent totals: bits=%d rounds=%d", m.TotalBits(), m.Rounds())
	}
}

func TestStringRendering(t *testing.T) {
	m := NewMeter()
	m.Add("zeta", 1, false)
	m.Add("alpha", 2, false)
	s := m.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "zeta") {
		t.Errorf("String() missing tags: %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Error("tags not sorted")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Demo", "col1", "longer column")
	tbl.AddRow(1, 3.14159)
	tbl.AddRow("wide-cell-content", "x")
	md := tbl.Markdown()
	if !strings.Contains(md, "### Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(md, "| col1") || !strings.Contains(md, "3.14") {
		t.Errorf("bad render:\n%s", md)
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), md)
	}
	// All table lines must have equal column structure.
	var widths []int
	for _, l := range lines[2:] {
		if c := strings.Count(l, "|"); c != 3 {
			t.Errorf("row %q has %d pipes", l, c)
		}
		widths = append(widths, len(l))
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Error("misaligned table rows")
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow(1)
	if strings.Contains(tbl.Markdown(), "###") {
		t.Error("unexpected title header")
	}
}
