// Package metrics provides the bit-accounting used to check the paper's
// communication-complexity formulas. Every message delivered by the simulator
// is tallied here under a protocol-stage tag, separately for honest- and
// faulty-sent traffic, so experiments can compare measured bits per stage
// against Eq. 1-3 of the paper.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tally accumulates traffic for one tag.
type Tally struct {
	Bits       int64 // bits sent by honest processors
	Msgs       int64 // messages sent by honest processors
	FaultyBits int64 // bits sent by faulty processors
	FaultyMsgs int64
}

// Total returns honest + faulty bits.
func (t Tally) Total() int64 { return t.Bits + t.FaultyBits }

// Meter tallies protocol traffic by tag. The zero value is not usable;
// construct with NewMeter. Meter is safe for concurrent use.
type Meter struct {
	mu     sync.Mutex
	tags   map[string]*Tally
	rounds int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{tags: make(map[string]*Tally)}
}

// Add records one message of the given size under tag.
func (m *Meter) Add(tag string, bits int64, faulty bool) {
	if bits < 0 {
		panic(fmt.Sprintf("metrics: negative bits %d for tag %q", bits, tag))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tags[tag]
	if t == nil {
		t = &Tally{}
		m.tags[tag] = t
	}
	if faulty {
		t.FaultyBits += bits
		t.FaultyMsgs++
	} else {
		t.Bits += bits
		t.Msgs++
	}
}

// AddRound records one synchronous communication round.
func (m *Meter) AddRound() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds++
}

// Rounds returns the number of synchronous rounds executed.
func (m *Meter) Rounds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds
}

// TotalBits returns all bits sent by all processors (honest and faulty).
func (m *Meter) TotalBits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	for _, t := range m.tags {
		sum += t.Bits + t.FaultyBits
	}
	return sum
}

// HonestBits returns all bits sent by honest processors.
func (m *Meter) HonestBits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	for _, t := range m.tags {
		sum += t.Bits
	}
	return sum
}

// BitsByPrefix sums total bits over all tags with the given prefix
// (e.g. "match." covers "match.sym" and "match.M").
func (m *Meter) BitsByPrefix(prefix string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum int64
	for tag, t := range m.tags {
		if strings.HasPrefix(tag, prefix) {
			sum += t.Bits + t.FaultyBits
		}
	}
	return sum
}

// Snapshot returns a copy of all tallies keyed by tag.
func (m *Meter) Snapshot() map[string]Tally {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Tally, len(m.tags))
	for tag, t := range m.tags {
		out[tag] = *t
	}
	return out
}

// String renders the tallies sorted by tag, for debugging and reports.
func (m *Meter) String() string {
	snap := m.Snapshot()
	tags := make([]string, 0, len(snap))
	for tag := range snap {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	var b strings.Builder
	for _, tag := range tags {
		t := snap[tag]
		fmt.Fprintf(&b, "%-14s bits=%-12d msgs=%-8d faultyBits=%d\n", tag, t.Bits, t.Msgs, t.FaultyBits)
	}
	fmt.Fprintf(&b, "total=%d bits over %d rounds\n", m.TotalBits(), m.Rounds())
	return b.String()
}
