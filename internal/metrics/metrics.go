// Package metrics provides the bit-accounting used to check the paper's
// communication-complexity formulas. Every message delivered by the simulator
// is tallied here under a protocol-stage tag, separately for honest- and
// faulty-sent traffic, so experiments can compare measured bits per stage
// against Eq. 1-3 of the paper.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Tally accumulates traffic for one tag.
type Tally struct {
	Bits       int64 // bits sent by honest processors
	Msgs       int64 // messages sent by honest processors
	FaultyBits int64 // bits sent by faulty processors
	FaultyMsgs int64
}

// Total returns honest + faulty bits.
func (t Tally) Total() int64 { return t.Bits + t.FaultyBits }

// tally is the internal accumulator: atomic fields, because one meter is
// shared by every processor of an instance (and by every node of a networked
// deployment) and Add sits on the per-message hot path — a mutex here
// serializes all of them on one lock.
type tally struct {
	bits, msgs, faultyBits, faultyMsgs atomic.Int64
}

func (t *tally) snapshot() Tally {
	return Tally{
		Bits: t.bits.Load(), Msgs: t.msgs.Load(),
		FaultyBits: t.faultyBits.Load(), FaultyMsgs: t.faultyMsgs.Load(),
	}
}

// Meter tallies protocol traffic by tag. Meter is safe for concurrent use;
// the hot Add path is a lock-free map hit plus two atomic adds.
type Meter struct {
	tags   sync.Map // string -> *tally
	rounds atomic.Int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{}
}

// Add records one message of the given size under tag.
func (m *Meter) Add(tag string, bits int64, faulty bool) {
	if bits < 0 {
		panic(fmt.Sprintf("metrics: negative bits %d for tag %q", bits, tag))
	}
	v, ok := m.tags.Load(tag)
	if !ok {
		v, _ = m.tags.LoadOrStore(tag, &tally{})
	}
	t := v.(*tally)
	if faulty {
		t.faultyBits.Add(bits)
		t.faultyMsgs.Add(1)
	} else {
		t.bits.Add(bits)
		t.msgs.Add(1)
	}
}

// AddRound records one synchronous communication round.
func (m *Meter) AddRound() {
	m.rounds.Add(1)
}

// Rounds returns the number of synchronous rounds executed.
func (m *Meter) Rounds() int64 {
	return m.rounds.Load()
}

// TotalBits returns all bits sent by all processors (honest and faulty).
func (m *Meter) TotalBits() int64 {
	var sum int64
	m.tags.Range(func(_, v any) bool {
		t := v.(*tally)
		sum += t.bits.Load() + t.faultyBits.Load()
		return true
	})
	return sum
}

// HonestBits returns all bits sent by honest processors.
func (m *Meter) HonestBits() int64 {
	var sum int64
	m.tags.Range(func(_, v any) bool {
		sum += v.(*tally).bits.Load()
		return true
	})
	return sum
}

// BitsByPrefix sums total bits over all tags with the given prefix
// (e.g. "match." covers "match.sym" and "match.M").
func (m *Meter) BitsByPrefix(prefix string) int64 {
	var sum int64
	m.tags.Range(func(k, v any) bool {
		if strings.HasPrefix(k.(string), prefix) {
			t := v.(*tally)
			sum += t.bits.Load() + t.faultyBits.Load()
		}
		return true
	})
	return sum
}

// Snapshot returns a copy of all tallies keyed by tag.
func (m *Meter) Snapshot() map[string]Tally {
	out := make(map[string]Tally)
	m.tags.Range(func(k, v any) bool {
		out[k.(string)] = v.(*tally).snapshot()
		return true
	})
	return out
}

// String renders the tallies sorted by tag, for debugging and reports.
func (m *Meter) String() string {
	snap := m.Snapshot()
	tags := make([]string, 0, len(snap))
	for tag := range snap {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	var b strings.Builder
	for _, tag := range tags {
		t := snap[tag]
		fmt.Fprintf(&b, "%-14s bits=%-12d msgs=%-8d faultyBits=%d\n", tag, t.Bits, t.Msgs, t.FaultyBits)
	}
	fmt.Fprintf(&b, "total=%d bits over %d rounds\n", m.TotalBits(), m.Rounds())
	return b.String()
}
