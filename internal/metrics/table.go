package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table renderer used by the experiment
// harness to print paper-vs-measured rows in GitHub-flavored markdown.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for i := range t.Headers {
		b.WriteString(strings.Repeat("-", width[i]+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
