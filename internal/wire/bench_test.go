package wire

import (
	"testing"

	"byzcons/internal/gf"
)

// BenchmarkFrameAppend measures encoding a typical matching-stage frame (one
// symbol-word payload), the per-peer per-step hot path of the networked
// runtime.
func BenchmarkFrameAppend(b *testing.B) {
	f := &Frame{
		Kind:     StepExchange,
		Instance: 3,
		Stream:   5,
		StepSum:  0xBEEF,
		Payloads: []any{[]gf.Sym{12, 200, 7, 91, 33, 2, 250, 16}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := f.Append(nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = buf
	}
}

// BenchmarkFrameRoundTrip measures encode+decode of the same frame, the
// full per-frame codec cost on the receive path.
func BenchmarkFrameRoundTrip(b *testing.B) {
	f := &Frame{
		Kind:     StepSync,
		Instance: 0,
		Stream:   9,
		StepSum:  0x1234,
		Payloads: []any{[]bool{true, false, true, true, false}},
	}
	enc, err := f.Append(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}
