package wire

import (
	"bytes"
	"reflect"
	"testing"

	"byzcons/internal/diag"
	"byzcons/internal/gf"
)

// FuzzWireRoundTrip exercises the decoder with arbitrary bytes — the
// situation of every networked node, since a Byzantine peer controls the
// full content of received frames. Properties:
//
//   - DecodeFrame never panics, whatever the input;
//   - if the input decodes, re-encoding the decoded frame and decoding
//     again yields an identical frame (decode∘encode is the identity on
//     decoded values), so malformed-but-accepted inputs cannot smuggle
//     state that survives one hop but not the next.
//
// Structured seeds cover every payload kind.
func FuzzWireRoundTrip(f *testing.F) {
	seed := func(fr *Frame) {
		enc, err := fr.Append(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	g := diag.NewComplete(7)
	g.RemoveEdge(2, 4)
	g.Isolate(6)
	seed(&Frame{Kind: StepExchange, Instance: 0, StepSum: StepSum("g0/match.sym"),
		Payloads: []any{[]gf.Sym{1, 2, 3, 65535}}})
	// Stream-tagged frames: one speculative generation's rounds (a nonzero
	// stream), and a replayed generation reusing a step label on a later
	// stream after a squash.
	seed(&Frame{Kind: StepExchange, Instance: 0, Stream: 3, StepSum: StepSum("g2/match.sym"),
		Payloads: []any{[]gf.Sym{9, 8, 7}}})
	seed(&Frame{Kind: StepSync, Instance: 1, Stream: 1 << 20, StepSum: StepSum("g2/match.sym"),
		Payloads: []any{[]bool{true, true, false}}})
	seed(&Frame{Kind: StepExchange, Instance: 2, Stream: 7, StepSum: StepSum("g1/match.M/eig.r2"),
		Payloads: []any{[]bool{true, false, true, true, false, true, false, false, true}}})
	seed(&Frame{Kind: StepSync, Instance: 1, StepSum: StepSum("g2/check.det"),
		Payloads: []any{[]bool{}}})
	seed(&Frame{Kind: StepSync, Instance: 0, StepSum: StepSum("mvb/send"),
		Payloads: []any{[]byte("a batched client value frame")}})
	seed(&Frame{Kind: StepSync, Instance: 0, StepSum: StepSum("verify"),
		Payloads: []any{g, int64(-7), nil}})
	seed(&Frame{Kind: StepExchange, Instance: 0, StepSum: 0, Payloads: nil})
	// Hand-corrupted headers.
	f.Add([]byte{})
	f.Add([]byte{byte(StepExchange)})
	f.Add([]byte{byte(StepSync), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{byte(StepExchange), 0, 0, 0, 0, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data) // must not panic
		if err != nil {
			return
		}
		enc, err := fr.Append(nil)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		// Graphs carry unexported state; compare them via their canonical
		// encodings and everything else structurally.
		if len(fr.Payloads) != len(fr2.Payloads) {
			t.Fatalf("payload count changed: %d -> %d", len(fr.Payloads), len(fr2.Payloads))
		}
		for i := range fr.Payloads {
			a, b := fr.Payloads[i], fr2.Payloads[i]
			if ga, ok := a.(*diag.Graph); ok {
				gb, ok := b.(*diag.Graph)
				if !ok || !ga.Equal(gb) {
					t.Fatalf("graph payload %d changed", i)
				}
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("payload %d changed: %#v -> %#v", i, a, b)
			}
		}
		enc2, err := fr2.Append(nil)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encoding is not stable (%v)", err)
		}
	})
}
