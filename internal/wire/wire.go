// Package wire is the self-describing binary codec for every payload the
// protocols put on a channel: Reed-Solomon codeword symbols (matching and
// dissemination stages), packed bit vectors (match votes, detection flags,
// trust vectors, Broadcast_Single_Bit relay rounds), raw byte blobs (batch
// frames, multi-valued broadcast dissemination) and diagnosis graphs.
//
// The simulator passes payloads by reference, so nothing there validates
// that a protocol message can actually cross a wire; this package is that
// validation, and its encoded sizes are the measured on-wire cost that the
// networked runtime (internal/node) reports next to the protocol-level bit
// meter. Encoding is canonical (a given value has exactly one encoding) and
// decoding is strict and total: any byte string either decodes to a value or
// returns an error — never a panic and never an oversized allocation — since
// a Byzantine peer controls every received byte (fuzzed by
// FuzzWireRoundTrip).
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"byzcons/internal/bitio"
	"byzcons/internal/diag"
	"byzcons/internal/gf"
)

// Payload kind tags (first byte of every encoded payload).
const (
	kindNil   byte = 0 // absent payload (a crashed or silent sender)
	kindBits  byte = 1 // []bool, bit-packed
	kindWord  byte = 2 // []gf.Sym, packed at the minimal symbol width
	kindBytes byte = 3 // []byte
	kindInt   byte = 4 // int64, zigzag varint
	kindGraph byte = 5 // *diag.Graph: missing edges, isolation, counts
)

// MaxGraphVerts bounds the order of a decoded diagnosis graph; anything
// larger than any plausible deployment is rejected before allocation.
const MaxGraphVerts = 4096

// AppendPayload appends the canonical encoding of p to buf. Supported types
// are nil, []bool, []gf.Sym, []byte, int64 and *diag.Graph; anything else —
// including plain int, which would silently come back as int64 and make the
// networked backends diverge from the simulator's by-reference delivery —
// is an error (protocol code must never put an unencodable payload on a
// real channel).
func AppendPayload(buf []byte, p any) ([]byte, error) {
	switch v := p.(type) {
	case nil:
		return append(buf, kindNil), nil
	case []bool:
		buf = append(buf, kindBits)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		start := len(buf)
		buf = appendZeros(buf, (len(v)+7)/8)
		for i, b := range v {
			if b {
				buf[start+i>>3] |= 1 << (7 - uint(i)&7)
			}
		}
		return buf, nil
	case []gf.Sym:
		width := uint(1)
		for _, s := range v {
			if l := uint(bits.Len16(uint16(s))); l > width {
				width = l
			}
		}
		buf = append(buf, kindWord)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, byte(width))
		start := len(buf)
		buf = appendZeros(buf, (len(v)*int(width)+7)/8)
		pos := 0
		for _, s := range v {
			// In-place packing: a bitio.Writer here would be the codec hot
			// path's dominant allocation.
			bitio.PackBits(buf[start:], pos, uint32(s), width)
			pos += int(width)
		}
		return buf, nil
	case []byte:
		buf = append(buf, kindBytes)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		return append(buf, v...), nil
	case int64:
		buf = append(buf, kindInt)
		return binary.AppendVarint(buf, v), nil
	case *diag.Graph:
		if v == nil {
			return append(buf, kindNil), nil
		}
		return appendGraph(buf, v), nil
	default:
		return nil, fmt.Errorf("wire: unencodable payload type %T", p)
	}
}

// zeros feeds appendZeros chunk-wise so extending a pooled buffer never
// inherits stale bits.
var zeros [256]byte

// appendZeros extends buf by n zero bytes.
func appendZeros(buf []byte, n int) []byte {
	for n > len(zeros) {
		buf = append(buf, zeros[:]...)
		n -= len(zeros)
	}
	return append(buf, zeros[:n]...)
}

// appendGraph encodes a diagnosis graph: order, missing-edge pairs, the
// isolated-vertex bitmap and the per-vertex removed-edge counts (the counts
// are not derivable from the edge set: isolation removes edges without
// charging the neighbours, see diag.Isolate).
func appendGraph(buf []byte, g *diag.Graph) []byte {
	n := g.N()
	missing, isolated := g.Missing()
	buf = append(buf, kindGraph)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(missing)))
	for _, e := range missing {
		buf = binary.AppendUvarint(buf, uint64(e[0]))
		buf = binary.AppendUvarint(buf, uint64(e[1]))
	}
	iso := make([]byte, (n+7)/8)
	for _, v := range isolated {
		iso[v/8] |= 1 << (7 - uint(v)%8)
	}
	buf = append(buf, iso...)
	for _, c := range g.Removed() {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// DecodePayload decodes one payload from the head of data, returning the
// value and the unconsumed remainder. It never panics: malformed, truncated
// or oversized input yields an error.
func DecodePayload(data []byte) (p any, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("wire: empty payload")
	}
	kind, rest := data[0], data[1:]
	switch kind {
	case kindNil:
		return nil, rest, nil
	case kindBits:
		count, rest, err := decodeCount(rest, 1)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: bits: %w", err)
		}
		nbytes := (count + 7) / 8
		r := bitio.NewReader(rest[:nbytes])
		out := make([]bool, count)
		for i := range out {
			out[i] = r.Read(1) == 1
		}
		return out, rest[nbytes:], nil
	case kindWord:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: word: bad count")
		}
		rest = rest[n:]
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("wire: word: missing width")
		}
		width := uint(rest[0])
		rest = rest[1:]
		if width < 1 || width > 16 {
			return nil, nil, fmt.Errorf("wire: word: width %d out of [1,16]", width)
		}
		if count > uint64(len(rest))*8/uint64(width) {
			return nil, nil, fmt.Errorf("wire: word: %d symbols of %d bits exceed %d payload bytes", count, width, len(rest))
		}
		nbytes := (int(count)*int(width) + 7) / 8
		r := bitio.NewReader(rest[:nbytes])
		out := make([]gf.Sym, count)
		for i := range out {
			out[i] = gf.Sym(r.Read(width))
		}
		return out, rest[nbytes:], nil
	case kindBytes:
		count, rest, err := decodeCount(rest, 8)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: bytes: %w", err)
		}
		out := make([]byte, count)
		copy(out, rest[:count])
		return out, rest[count:], nil
	case kindInt:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: int: bad varint")
		}
		return v, rest[n:], nil
	case kindGraph:
		return decodeGraph(rest)
	default:
		return nil, nil, fmt.Errorf("wire: unknown payload kind %d", kind)
	}
}

// decodeCount reads a uvarint element count and verifies the remaining bytes
// can hold count elements of the given bits-per-element, bounding every
// allocation by the input length.
func decodeCount(data []byte, bitsPerElem int) (int, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad count")
	}
	rest := data[n:]
	if count > uint64(len(rest))*8/uint64(bitsPerElem) {
		return 0, nil, fmt.Errorf("%d elements exceed %d payload bytes", count, len(rest))
	}
	return int(count), rest, nil
}

// decodeGraph decodes a kindGraph body.
func decodeGraph(data []byte) (any, []byte, error) {
	n64, c := binary.Uvarint(data)
	if c <= 0 || n64 > MaxGraphVerts {
		return nil, nil, fmt.Errorf("wire: graph: bad order")
	}
	n := int(n64)
	rest := data[c:]
	edges, c := binary.Uvarint(rest)
	// Each encoded edge needs at least two bytes, so bounding the count by
	// the remaining input keeps the allocation below the input length.
	if c <= 0 || edges > uint64(n)*uint64(n) || edges > uint64(len(rest)-c)/2 {
		return nil, nil, fmt.Errorf("wire: graph: bad edge count")
	}
	rest = rest[c:]
	missing := make([][2]int, 0, edges)
	for e := uint64(0); e < edges; e++ {
		i, ci := binary.Uvarint(rest)
		if ci <= 0 {
			return nil, nil, fmt.Errorf("wire: graph: truncated edge %d", e)
		}
		rest = rest[ci:]
		j, cj := binary.Uvarint(rest)
		if cj <= 0 {
			return nil, nil, fmt.Errorf("wire: graph: truncated edge %d", e)
		}
		rest = rest[cj:]
		if i >= uint64(n) || j >= uint64(n) || i >= j {
			return nil, nil, fmt.Errorf("wire: graph: bad edge (%d,%d)", i, j)
		}
		missing = append(missing, [2]int{int(i), int(j)})
	}
	nbytes := (n + 7) / 8
	if len(rest) < nbytes {
		return nil, nil, fmt.Errorf("wire: graph: truncated isolation bitmap")
	}
	var isolated []int
	for v := 0; v < n; v++ {
		if rest[v/8]>>(7-uint(v)%8)&1 == 1 {
			isolated = append(isolated, v)
		}
	}
	// Trailing bitmap padding bits must be zero (canonical form).
	if rem := n % 8; rem != 0 && nbytes > 0 && rest[nbytes-1]&(0xFF>>uint(rem)) != 0 {
		return nil, nil, fmt.Errorf("wire: graph: nonzero isolation padding")
	}
	rest = rest[nbytes:]
	removed := make([]int, n)
	for v := 0; v < n; v++ {
		r, cr := binary.Uvarint(rest)
		if cr <= 0 || r > uint64(n) {
			return nil, nil, fmt.Errorf("wire: graph: bad removed count at vertex %d", v)
		}
		removed[v] = int(r)
		rest = rest[cr:]
	}
	g, err := diag.Rebuild(n, missing, isolated, removed)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: graph: %w", err)
	}
	return g, rest, nil
}
