package wire

import "testing"

func TestShardBits(t *testing.T) {
	cases := []struct {
		shards int
		bits   uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{MaxShards, MaxShardBits},
	}
	for _, c := range cases {
		if got := ShardBits(c.shards); got != c.bits {
			t.Errorf("ShardBits(%d) = %d, want %d", c.shards, got, c.bits)
		}
	}
}

func TestComposeSplitInstance(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8, 100, MaxShards} {
		bits := ShardBits(shards)
		for _, inst := range []int{0, 1, 7, 1000, 1 << 20} {
			for shard := 0; shard < shards; shard += 1 + shards/7 {
				id := ComposeInstance(inst, shard, bits)
				gotInst, gotShard := SplitInstance(id, bits)
				if gotInst != inst || gotShard != shard {
					t.Fatalf("shards=%d: split(compose(%d,%d)) = (%d,%d)", shards, inst, shard, gotInst, gotShard)
				}
				if bits == 0 && id != inst {
					t.Fatalf("one shard must compose to the plain instance id: got %d for %d", id, inst)
				}
			}
		}
	}
}

// TestComposeInstanceDecodes pins the routing headroom: the composed id of
// the widest shard field and a large per-shard instance still round-trips
// through the frame codec (whose decoder bounds instance ids).
func TestComposeInstanceDecodes(t *testing.T) {
	id := ComposeInstance(1<<20, MaxShards-1, MaxShardBits)
	f := &Frame{Kind: StepSync, Instance: id, Payloads: []any{[]byte{1}}}
	buf, err := f.Append(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	g, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	defer PutFrame(g)
	if g.Instance != id {
		t.Fatalf("instance %d round-tripped to %d", id, g.Instance)
	}
	inst, shard := SplitInstance(g.Instance, MaxShardBits)
	if inst != 1<<20 || shard != MaxShards-1 {
		t.Fatalf("split = (%d,%d)", inst, shard)
	}
}
