package wire

import (
	"bytes"
	"reflect"
	"testing"

	"byzcons/internal/diag"
	"byzcons/internal/gf"
)

func roundTrip(t *testing.T, p any) any {
	t.Helper()
	enc, err := AppendPayload(nil, p)
	if err != nil {
		t.Fatalf("encode %T: %v", p, err)
	}
	dec, rest, err := DecodePayload(enc)
	if err != nil {
		t.Fatalf("decode %T: %v", p, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %T left %d bytes", p, len(rest))
	}
	return dec
}

func TestPayloadRoundTrip(t *testing.T) {
	t.Parallel()
	for _, p := range []any{
		nil,
		[]bool{},
		[]bool{true},
		[]bool{true, false, true, true, false, false, false, true, true},
		[]gf.Sym{0},
		[]gf.Sym{1, 2, 3, 255},
		[]gf.Sym{65535, 0, 1},
		[]byte{},
		[]byte("batch frame contents"),
		int64(0),
		int64(-12345),
		int64(1) << 60,
	} {
		dec := roundTrip(t, p)
		if !reflect.DeepEqual(dec, p) {
			t.Errorf("round trip %#v -> %#v", p, dec)
		}
	}
}

func TestPlainIntIsUnencodable(t *testing.T) {
	t.Parallel()
	// A plain int would decode as int64 and silently change type across a
	// networked hop while keeping it under the simulator; reject it loudly.
	if _, err := AppendPayload(nil, 42); err == nil {
		t.Error("plain int payload encoded")
	}
}

func TestWordWidthIsMinimal(t *testing.T) {
	t.Parallel()
	small, _ := AppendPayload(nil, []gf.Sym{1, 7, 3})
	large, _ := AppendPayload(nil, []gf.Sym{1, 7, 300})
	if len(small) >= len(large) {
		t.Errorf("3-bit symbols (%d bytes) not smaller than 9-bit symbols (%d bytes)", len(small), len(large))
	}
	// 3 symbols at 3 bits = 9 bits = 2 packed bytes, + kind + count + width.
	if want := 5; len(small) != want {
		t.Errorf("encoded %d bytes, want %d", len(small), want)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	t.Parallel()
	g := diag.NewComplete(7)
	g.RemoveEdge(1, 3)
	g.RemoveEdge(0, 5)
	g.RemoveEdge(2, 1)
	g.Isolate(4)
	dec := roundTrip(t, g).(*diag.Graph)
	if !g.Equal(dec) {
		t.Errorf("graph round trip:\n got %v\nwant %v", dec, g)
	}
}

func TestUnencodablePayloadIsAnError(t *testing.T) {
	t.Parallel()
	if _, err := AppendPayload(nil, struct{ X int }{1}); err == nil {
		t.Error("struct payload encoded")
	}
	if _, err := AppendPayload(nil, 3.14); err == nil {
		t.Error("float payload encoded")
	}
}

func TestDecodeRejectsOversizedDeclarations(t *testing.T) {
	t.Parallel()
	// A bits payload declaring 2^40 entries backed by 1 byte must fail
	// before allocating.
	cases := [][]byte{
		{kindBits, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0xFF},
		{kindBytes, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0xFF},
		{kindWord, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 8, 0xFF},
		{kindGraph, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		// n=4096 with n² declared edges in a 7-byte payload: the edge count
		// must be bounded by the input length before any allocation.
		{kindGraph, 0x80, 0x20, 0x80, 0x80, 0x80, 0x08},
	}
	for _, c := range cases {
		if _, _, err := DecodePayload(c); err == nil {
			t.Errorf("oversized declaration %v decoded", c)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	for _, f := range []*Frame{
		{
			Kind:     StepExchange,
			Instance: 3,
			StepSum:  StepSum("g4/match.sym"),
			Payloads: []any{[]gf.Sym{9, 2}, []bool{true, false}, nil},
		},
		{
			Kind:     StepSync,
			Instance: 0,
			Stream:   11,
			StepSum:  StepSum("g4/check.det"),
			Payloads: []any{[]bool{true}},
		},
	} {
		enc, err := f.Append(nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, f) {
			t.Errorf("frame round trip:\n got %#v\nwant %#v", dec, f)
		}
	}
}

func TestFrameRejectsNegativeStream(t *testing.T) {
	t.Parallel()
	f := &Frame{Kind: StepSync, Stream: -1, Payloads: []any{[]bool{true}}}
	if _, err := f.Append(nil); err == nil {
		t.Error("negative stream encoded")
	}
}

func TestFrameRejectsTrailingBytes(t *testing.T) {
	t.Parallel()
	f := &Frame{Kind: StepSync, Payloads: []any{[]bool{true}}}
	enc, _ := f.Append(nil)
	if _, err := DecodeFrame(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeFrame(enc[:len(enc)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestStepSumDistinguishesSteps(t *testing.T) {
	t.Parallel()
	if StepSum("g0/match.sym") == StepSum("g1/match.sym") {
		t.Error("adjacent generations collide")
	}
	if StepSum("g0/match.M/eig.r1") == StepSum("g0/match.M/eig.r2") {
		t.Error("adjacent broadcast rounds collide")
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	t.Parallel()
	g := diag.NewComplete(5)
	g.RemoveEdge(0, 2)
	f := &Frame{Kind: StepSync, Instance: 1, Payloads: []any{g, []byte("x")}}
	a, _ := f.Append(nil)
	b, _ := f.Append(nil)
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same frame differ")
	}
}
