package wire

// Shard routing composes a shard id into the frame header's Instance field
// instead of spending a new header field on it. A fleet of S independent
// consensus groups shares one mesh; every frame must name both its group
// (shard) and its instance within the group's current epoch. The composition
//
//	wireID = localInstance << ShardBits(S) | shard
//
// keeps the existing uvarint encoding — and, critically, keeps the S=1
// encoding bit-identical to the unsharded one: ShardBits(1) == 0, so a
// single-group deployment composes to the plain instance id and its frames
// are byte-for-byte what a pre-fleet peer would send. Receivers split the id
// back with the same bit count, route the shard to its group's router state,
// and apply the per-shard epoch base check to the local instance exactly as
// the unsharded router applied it to the global id.

// MaxShardBits bounds the shard field width. The decoder rejects instance
// ids above 2^31, so the shard field and the per-shard instance high-water
// mark share 31 bits; 10 shard bits (1024 shards) leaves 2M instances per
// shard before the composed id would stop decoding.
const MaxShardBits = 10

// MaxShards is the largest shard count the composed instance id can carry.
const MaxShards = 1 << MaxShardBits

// ShardBits returns the width of the shard field for a given shard count:
// the smallest b with 1<<b >= shards. One shard needs no field at all —
// the composed id is then the plain instance id.
func ShardBits(shards int) uint {
	b := uint(0)
	for 1<<b < shards {
		b++
	}
	return b
}

// ComposeInstance packs (shard, local instance) into the wire instance id.
func ComposeInstance(inst, shard int, bits uint) int {
	return inst<<bits | shard
}

// SplitInstance unpacks a wire instance id into its local instance and
// shard. With bits == 0 every id splits to shard 0 and itself.
func SplitInstance(wireID int, bits uint) (inst, shard int) {
	return wireID >> bits, wireID & (1<<bits - 1)
}
