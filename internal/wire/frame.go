package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
)

// StepKind distinguishes the two barrier primitives on the wire.
type StepKind byte

// Frame kinds.
const (
	StepExchange StepKind = 1 // point-to-point round: payloads addressed to the receiver
	StepSync     StepKind = 2 // all-to-all gather: exactly one contribution payload
)

// MaxFramePayloads bounds the payload count of a decoded frame.
const MaxFramePayloads = 1 << 16

// Frame is one step's bundle from one sender to one receiver: every message
// a processor addresses to a given peer in a given barrier step travels in a
// single frame, so the per-frame header amortizes over the step instead of
// over individual protocol messages. The sender's identity is not part of
// the frame — it is established by the transport (authenticated per-peer
// channels, the paper's model), so a Byzantine peer cannot forge it.
//
// There is deliberately no sequence number: every transport guarantees
// per-peer FIFO order and every step sends exactly one frame per peer per
// stream, so the arrival ordinal within a (peer, stream) queue is the round
// identity. The header carries only what FIFO cannot provide — the barrier
// kind, the instance id for demux, the stream tag that separates the
// concurrent round sequences of a pipelined instance, and the step checksum
// that catches divergence. Lock-step consensus traffic is dominated by small
// frames (single symbols, packed bit vectors), so every header byte shows up
// directly in the encoded-bytes-per-protocol-bit ratio.
type Frame struct {
	// Kind is the barrier primitive this frame belongs to.
	Kind StepKind
	// Instance demultiplexes pipelined protocol instances sharing one
	// transport (the engine's batched cycles).
	Instance int
	// Stream demultiplexes the concurrent round streams of one instance:
	// sequential protocol traffic rides stream 0, and the speculative
	// generation pipeline tags each in-flight generation's rounds with its
	// own stream so receivers keep one FIFO per (peer, stream) and a
	// squashed generation's stale frames can be discarded by tag. Small
	// tags are packed into the kind byte's upper bits, so the tag is free
	// on the wire until a pipeline exceeds 63 concurrent-ever streams.
	Stream int
	// StepSum is a checksum of the step label. Both ends derive the label
	// from common state, so a mismatch proves protocol divergence (the
	// networked analogue of the simulator's step-mismatch abort) without
	// spending wire bytes on the label itself.
	StepSum uint16
	// Payloads are the encoded protocol payloads: one per message addressed
	// to the receiver for StepExchange (possibly none), exactly one
	// contribution for StepSync.
	Payloads []any
}

// StepSum folds a step label into the 16-bit checksum carried by frames.
func StepSum(step string) uint16 {
	h := fnv.New32a()
	h.Write([]byte(step))
	s := h.Sum32()
	return uint16(s ^ s>>16)
}

// Append appends the frame's encoding to buf.
func (f *Frame) Append(buf []byte) ([]byte, error) {
	if f.Kind != StepExchange && f.Kind != StepSync {
		return nil, fmt.Errorf("wire: bad frame kind %d", f.Kind)
	}
	if f.Instance < 0 {
		return nil, fmt.Errorf("wire: negative frame instance %d", f.Instance)
	}
	if f.Stream < 0 {
		return nil, fmt.Errorf("wire: negative frame stream %d", f.Stream)
	}
	if len(f.Payloads) > MaxFramePayloads {
		return nil, fmt.Errorf("wire: %d payloads exceed the frame limit", len(f.Payloads))
	}
	// The stream tag shares the kind byte: kind needs 2 bits, and almost all
	// frames ride low-numbered streams (0 for sequential traffic), so the
	// tag costs no wire bytes until a pipeline runs more than streamInline
	// streams. The encoding is canonical: streams < streamInline use the
	// packed form only, larger ones the marker + offset-uvarint form only.
	if f.Stream < streamInline {
		buf = append(buf, byte(f.Kind)|byte(f.Stream)<<2)
	} else {
		buf = append(buf, byte(f.Kind)|streamInline<<2)
	}
	buf = binary.AppendUvarint(buf, uint64(f.Instance))
	if f.Stream >= streamInline {
		buf = binary.AppendUvarint(buf, uint64(f.Stream-streamInline))
	}
	buf = append(buf, byte(f.StepSum>>8), byte(f.StepSum))
	buf = binary.AppendUvarint(buf, uint64(len(f.Payloads)))
	var err error
	for _, p := range f.Payloads {
		if buf, err = AppendPayload(buf, p); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// streamInline is the largest stream tag packed into the kind byte; larger
// tags follow the instance as a uvarint offset by streamInline.
const streamInline = 63

// framePool recycles decoded Frame shells (struct plus payload container).
// One frame is decoded per peer per step per stream — the dominant small
// allocation of the networked round hot path — and the consuming round
// synchronizer returns frames via PutFrame once their payload values are
// extracted.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// PutFrame recycles a decoded frame. The payload values themselves are not
// touched (they escape into protocol messages); only the container is
// reused. Callers must not keep any reference to f.
func PutFrame(f *Frame) {
	for i := range f.Payloads {
		f.Payloads[i] = nil
	}
	f.Payloads = f.Payloads[:0]
	framePool.Put(f)
}

// decodeHeader parses the frame header shared by DecodeFrame and
// DecodeFrameHeader: kind, instance, stream and step checksum. The returned
// frame comes from the shell pool; decode errors return it before
// surfacing.
func decodeHeader(data []byte) (*Frame, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("wire: empty frame")
	}
	f := framePool.Get().(*Frame)
	f.Kind = StepKind(data[0] & 3)
	f.Payloads = f.Payloads[:0]
	if f.Kind != StepExchange && f.Kind != StepSync {
		PutFrame(f)
		return nil, nil, fmt.Errorf("wire: bad frame kind %d", data[0]&3)
	}
	f.Stream = int(data[0] >> 2)
	rest := data[1:]
	inst, n := binary.Uvarint(rest)
	if n <= 0 || inst > 1<<31 {
		PutFrame(f)
		return nil, nil, fmt.Errorf("wire: bad frame instance")
	}
	f.Instance = int(inst)
	rest = rest[n:]
	if f.Stream == streamInline {
		strm, n := binary.Uvarint(rest)
		if n <= 0 || strm > 1<<31 {
			PutFrame(f)
			return nil, nil, fmt.Errorf("wire: bad frame stream")
		}
		f.Stream = streamInline + int(strm)
		rest = rest[n:]
	}
	if len(rest) < 2 {
		PutFrame(f)
		return nil, nil, fmt.Errorf("wire: truncated frame header")
	}
	f.StepSum = uint16(rest[0])<<8 | uint16(rest[1])
	return f, rest[2:], nil
}

// DecodeFrame decodes a complete frame. It is strict: truncated input,
// malformed payloads or trailing bytes are errors, and no allocation exceeds
// the input length. It never panics — frames arrive from Byzantine peers.
func DecodeFrame(data []byte) (*Frame, error) {
	f, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > MaxFramePayloads || count > uint64(len(rest)) {
		PutFrame(f)
		return nil, fmt.Errorf("wire: bad frame payload count")
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		p, r, err := DecodePayload(rest)
		if err != nil {
			PutFrame(f)
			return nil, fmt.Errorf("wire: frame payload %d: %w", i, err)
		}
		f.Payloads = append(f.Payloads, p)
		rest = r
	}
	if len(rest) != 0 {
		PutFrame(f)
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return f, nil
}

// DecodeFrameHeader parses only a frame's header (kind, instance, stream,
// stepsum), ignoring the payload region. The networked runtime uses it to
// degrade gracefully when a Byzantine peer sends a frame whose header is
// well-formed but whose payloads do not decode: the round synchronizer still
// gets its frame (keeping the lock-step structure intact, which a Byzantine
// processor cannot legally break in the synchronous model) while the
// payloads degrade to ⊥ — exactly the simulator's treatment of garbage
// adversarial payloads.
func DecodeFrameHeader(data []byte) (*Frame, error) {
	f, _, err := decodeHeader(data)
	return f, err
}
