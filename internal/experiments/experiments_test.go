package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment on the reduced grid and
// checks the structural invariants of the resulting tables. This keeps the
// whole reproduction pipeline (public API -> simulator -> metering ->
// closed forms) continuously verified by `go test`.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(Opts{Quick: true})
			md := tbl.Markdown()
			if len(md) == 0 || !strings.Contains(md, "|") {
				t.Fatalf("%s produced no table", e.ID)
			}
			lines := strings.Split(strings.TrimSpace(md), "\n")
			if len(lines) < 5 {
				t.Fatalf("%s produced fewer than one data row:\n%s", e.ID, md)
			}
		})
	}
}

// TestE1Exactness asserts the strongest reproduction claim: Eq. 1's
// per-stage formulas match measured traffic bit-for-bit on every grid row.
func TestE1Exactness(t *testing.T) {
	md := E1PerStageBits(Opts{}).Markdown()
	if strings.Contains(md, "false") {
		t.Fatalf("E1 has non-exact rows:\n%s", md)
	}
	if strings.Count(md, "true") < 5 {
		t.Fatalf("E1 unexpectedly small:\n%s", md)
	}
}

// TestE3BoundHit asserts EdgeMiser reaches t(t+1) exactly for each row
// (the Run panics internally on consistency violations; here we check the
// rendered equality of bound and diagnosis columns).
func TestE3BoundHit(t *testing.T) {
	md := E3WorstCaseDiagnosis(Opts{Quick: true}).Markdown()
	for _, line := range strings.Split(md, "\n") {
		if !strings.HasPrefix(line, "|") || strings.Contains(line, "bound") || strings.Contains(line, "---") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 6 {
			continue
		}
		bound := strings.TrimSpace(cells[3])
		diag := strings.TrimSpace(cells[4])
		if bound != diag {
			t.Errorf("diagnoses %s != bound %s in row %s", diag, bound, line)
		}
		if strings.TrimSpace(cells[5]) != "true" || strings.TrimSpace(cells[6]) != "true" {
			t.Errorf("isolation/validity failed in row %s", line)
		}
	}
}

// TestE7OursErrorFree asserts the bottom line of the headline experiment:
// Algorithm 1's row reports zero errors.
func TestE7OursErrorFree(t *testing.T) {
	md := E7FH06Error(Opts{Quick: true}).Markdown()
	var oursLine string
	for _, line := range strings.Split(md, "\n") {
		if strings.Contains(line, "algorithm 1") {
			oursLine = line
		}
	}
	if oursLine == "" {
		t.Fatalf("no algorithm-1 row:\n%s", md)
	}
	cells := strings.Split(oursLine, "|")
	if strings.TrimSpace(cells[4]) != "0" {
		t.Errorf("ours reported errors: %s", oursLine)
	}
}
