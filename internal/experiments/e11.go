package experiments

import (
	"bytes"
	"fmt"

	"byzcons"
	"byzcons/internal/metrics"
)

// E11HighResilience reproduces Section 4's second claim: replacing
// Broadcast_Single_Bit with a probabilistically correct broadcast of higher
// resilience lifts the consensus fault tolerance to match (here t < n/2),
// and the algorithm "makes an error only if the 1-bit broadcast algorithm
// fails". The sweep varies the broadcast's per-receiver failure probability
// eps at n=7, t=3 (t >= n/3, beyond error-free reach) with one actively
// Byzantine processor; an error is any run where honest processors diverge
// (in control flow or outputs) or settle on a wrong value.
func E11HighResilience(o Opts) *metrics.Table {
	n, t := 7, 3
	L := 16 * 8
	trials := 150
	if o.Quick {
		trials = 30
	}
	tbl := metrics.NewTable(fmt.Sprintf(
		"E11 — t=%d >= n/3 via probabilistic broadcast (n=%d, %d trials, RandomByz faulty)", t, n, trials),
		"broadcast eps", "errors", "error rate", "note")
	val := patternValue(L, 0x42)
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = val
	}
	for _, eps := range []float64{0, 0.0005, 0.005, 0.02} {
		errs := 0
		for seed := 0; seed < trials; seed++ {
			cfg := byzcons.Config{
				N: n, T: t, SymBits: 8, Lanes: 2,
				Broadcast: byzcons.BroadcastProb, BroadcastEpsilon: eps, Seed: int64(seed),
			}
			res, err := byzcons.Consensus(cfg, inputs, L, byzcons.Scenario{
				Faulty:   []int{0},
				Behavior: byzcons.RandomByz{P: 0.4},
			})
			if err != nil || !res.Consistent || res.Defaulted || !bytes.Equal(res.Value, val) {
				errs++
			}
		}
		note := ""
		if eps == 0 {
			note = "perfect broadcast: error-free even at t >= n/3"
		}
		tbl.AddRow(eps, errs, float64(errs)/float64(trials), note)
	}
	return tbl
}
