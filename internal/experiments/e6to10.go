package experiments

import (
	"bytes"
	"fmt"

	"byzcons"
	"byzcons/internal/metrics"
)

// E6VsNaive compares Algorithm 1 against the introduction's baseline of L
// independent 1-bit consensus instances (charged at the generous 2n²-bits
// lower-bound figure). The crossover, after which the paper's algorithm wins
// by a factor approaching 2n(n-2t)/... ~ n/3, is the paper's raison d'être.
func E6VsNaive(o Opts) *metrics.Table {
	n, t := 10, 3
	tbl := metrics.NewTable(fmt.Sprintf("E6 — Algorithm 1 vs naive bitwise consensus, n=%d t=%d (naive charged 2n²/bit)", n, t),
		"L bits", "ours (measured)", "naive (measured)", "naive eq", "ours/naive", "winner")
	Ls := []int{1_000, 10_000, 100_000, 1_000_000}
	if o.Quick {
		Ls = []int{1_000, 10_000}
	}
	for _, L := range Ls {
		inputs := equalInputs(n, L)
		ours := mustConsensus(byzcons.Config{N: n, T: t, SymBits: 8}, inputs, L, byzcons.Scenario{})
		naiveCfg := byzcons.NaiveConfig{N: n, T: t}
		naiveRes, err := byzcons.NaiveBitwise(naiveCfg, inputs, L, byzcons.Scenario{})
		if err != nil {
			panic(err)
		}
		if !bytes.Equal(naiveRes.Value, inputs[0]) {
			panic("naive baseline broke validity")
		}
		winner := "ours"
		if naiveRes.Bits < ours.Bits {
			winner = "naive"
		}
		tbl.AddRow(L, ours.Bits, naiveRes.Bits, byzcons.PredictNaive(naiveCfg, int64(L)),
			ratio(ours.Bits, naiveRes.Bits), winner)
	}
	return tbl
}

// E7FH06Error is the paper's headline qualitative claim: Fitzi-Hirt style
// hash-based consensus errs with probability governed by the universal-hash
// collision bound, while Algorithm 1 is error-free on the same inputs. Honest
// processors split between two values; a correct run must default (no value
// has n-t support), so any decided value or inconsistency is an error.
func E7FH06Error(o Opts) *metrics.Table {
	n, t := 4, 1
	L := 64 * 8
	trials := 200
	if o.Quick {
		trials = 40
	}
	tbl := metrics.NewTable(fmt.Sprintf("E7 — error rate over %d seeded trials, n=%d t=%d, two honest value groups, L=%d",
		trials, n, t, L),
		"protocol", "kappa", "collision bound/pair", "errors", "error rate")
	inputs := make([][]byte, n)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = patternValue(L, 0xAA)
		} else {
			inputs[i] = patternValue(L, 0x17)
		}
	}
	for _, kappa := range []uint{2, 4, 8, 16} {
		errs := 0
		for seed := 0; seed < trials; seed++ {
			cfg := byzcons.FHConfig{N: n, T: t, Kappa: kappa, Seed: int64(seed)}
			res, err := byzcons.FitziHirt(cfg, inputs, L, byzcons.Scenario{})
			if err != nil {
				panic(err)
			}
			if !res.Consistent || !res.Defaulted {
				errs++
			}
		}
		blocks := (L + int(kappa) - 1) / int(kappa)
		bound := float64(blocks) / float64(int64(1)<<kappa)
		if bound > 1 {
			bound = 1
		}
		tbl.AddRow("fitzi-hirt", kappa, bound, errs, float64(errs)/float64(trials))
	}
	// Algorithm 1 on the same inputs: must default, consistently, always.
	errs := 0
	for seed := 0; seed < trials; seed++ {
		cfg := byzcons.Config{N: n, T: t, SymBits: 8, Seed: int64(seed)}
		res := mustConsensus(cfg, inputs, L, byzcons.Scenario{})
		if !res.Consistent || !res.Defaulted {
			errs++
		}
	}
	tbl.AddRow("algorithm 1 (ours)", "-", 0.0, errs, float64(errs)/float64(trials))
	return tbl
}

// E8VsFitziHirt compares total communication against the FH06-style
// baseline across L and (n, t): the complexities are comparable for large L
// (both O(nL)); the difference the paper buys is E7's error-freeness.
func E8VsFitziHirt(o Opts) *metrics.Table {
	tbl := metrics.NewTable("E8 — Algorithm 1 vs Fitzi-Hirt-style baseline (kappa=16, oracle B=2n²)",
		"n", "t", "L bits", "ours (measured)", "FH06 (measured)", "FH06 model", "ours/FH06")
	grid := []struct{ n, t int }{{7, 2}, {10, 2}, {13, 4}}
	Ls := []int{10_000, 100_000, 1_000_000}
	if o.Quick {
		grid = grid[:1]
		Ls = Ls[:2]
	}
	for _, g := range grid {
		for _, L := range Ls {
			inputs := equalInputs(g.n, L)
			ours := mustConsensus(byzcons.Config{N: g.n, T: g.t, SymBits: 8}, inputs, L, byzcons.Scenario{})
			fhCfg := byzcons.FHConfig{N: g.n, T: g.t, Kappa: 16, Seed: 1}
			fh, err := byzcons.FitziHirt(fhCfg, inputs, L, byzcons.Scenario{})
			if err != nil {
				panic(err)
			}
			if !fh.Consistent || !bytes.Equal(fh.Value, inputs[0]) {
				panic("FH06 failed on equal inputs")
			}
			tbl.AddRow(g.n, g.t, L, ours.Bits, fh.Bits, byzcons.PredictFitziHirt(fhCfg, int64(L)),
				ratio(ours.Bits, fh.Bits))
		}
	}
	return tbl
}

// E9Broadcast measures the Section 4 multi-valued broadcast against the
// (n-1)L lower bound the paper quotes. The implementation composes source
// dissemination with Algorithm 1, giving constant ≈ 1 + n/(n-2t) over the
// bound (the companion tech report's optimised scheme reaches 1.5).
func E9Broadcast(o Opts) *metrics.Table {
	n, t := 7, 2
	tbl := metrics.NewTable(fmt.Sprintf("E9 — multi-valued broadcast, n=%d t=%d, vs (n-1)L lower bound", n, t),
		"L bits", "measured bits", "(n-1)L bound", "meas/bound", "send share", "consensus share")
	Ls := []int{10_000, 100_000, 1_000_000}
	if o.Quick {
		Ls = Ls[:2]
	}
	for _, L := range Ls {
		val := patternValue(L, 0x5C)
		cfg := byzcons.Config{N: n, T: t, SymBits: 8}
		res, err := byzcons.Broadcast(cfg, 0, val, L, byzcons.Scenario{})
		if err != nil {
			panic(err)
		}
		if !res.Consistent || !bytes.Equal(res.Value, val) {
			panic("broadcast validity violated")
		}
		bound := int64(n-1) * int64(L)
		send := res.BitsByTag["mvb.send"]
		tbl.AddRow(L, res.Bits, bound, ratio(res.Bits, bound), send, res.Bits-send)
	}
	return tbl
}

// E10BSBCost measures the Broadcast_Single_Bit substrates: the oracle's
// charged B(n)=2n², phase-king's O(t·n²) and EIG's exponential-in-t bits per
// broadcast bit, normalised by n².
func E10BSBCost(o Opts) *metrics.Table {
	tbl := metrics.NewTable("E10 — bits per broadcast bit (t=1, measured over an n-source batch)",
		"n", "oracle B", "phaseking", "eig", "oracle/n²", "phaseking/n²", "eig/n²")
	ns := []int{5, 7, 10, 13, 16} // n > 4t = 4 so phase king is admissible
	if o.Quick {
		ns = ns[:3]
	}
	for _, n := range ns {
		perBit := func(kind byzcons.BroadcastKind) int64 {
			// One-bit value per processor, EIG/PK-compatible geometry.
			L := 8
			inputs := equalInputs(n, L)
			cfg := byzcons.Config{N: n, T: 1, SymBits: 8, Lanes: 1, Broadcast: kind}
			res := mustConsensus(cfg, inputs, L, byzcons.Scenario{})
			mBits := res.BitsByTag["match.M"]
			// match.M is a batch of n(n-1) one-bit broadcasts per generation.
			gens := int64(res.Generations)
			insts := int64(n) * int64(n-1) * gens
			return mBits / insts
		}
		o := perBit(byzcons.BroadcastOracle)
		pk := perBit(byzcons.BroadcastPhaseKing)
		eig := perBit(byzcons.BroadcastEIG)
		n2 := int64(n) * int64(n)
		tbl.AddRow(n, o, pk, eig, ratio(o, n2), ratio(pk, n2), ratio(eig, n2))
	}
	return tbl
}
