// Package experiments regenerates every quantitative claim of the paper
// (the "tables and figures" of this theory paper are its complexity formulas
// and bounds — see DESIGN.md §8 for the index). Each experiment returns a
// markdown table of paper-prediction vs measured values; cmd/experiments
// prints them all, and the root-level benchmarks wrap them for `go test
// -bench`.
package experiments

import (
	"bytes"
	"fmt"

	"byzcons"
	"byzcons/internal/metrics"
)

// Opts tunes experiment scale so benches can run a reduced grid.
type Opts struct {
	// Quick shrinks the parameter grids (used by -bench smoke runs).
	Quick bool
}

// An Experiment produces one paper-vs-measured table.
type Experiment struct {
	ID    string
	Claim string
	Run   func(o Opts) *metrics.Table
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Eq. 1: per-stage bits per generation match the closed form exactly", E1PerStageBits},
		{"E2", "Eq. 2/3: Ccon(L)/L approaches n(n-1)/(n-2t) for large L", E2TotalComplexity},
		{"E3", "Theorem 1: diagnosis stages are bounded by, and reach, t(t+1)", E3WorstCaseDiagnosis},
		{"E4", "Complexity is linear in n for large L", E4ScalingInN},
		{"E5", "Eq. 2: the D* generation size is the sweet spot", E5DSweep},
		{"E6", "Beats the naive Omega(n^2 L) bitwise baseline for large L", E6VsNaive},
		{"E7", "Error-free vs Fitzi-Hirt's hash-collision error probability", E7FH06Error},
		{"E8", "Complexity comparable to Fitzi-Hirt O(nL + n^3(n+kappa))", E8VsFitziHirt},
		{"E9", "Section 4: multi-valued broadcast at O(nL), vs the (n-1)L bound", E9Broadcast},
		{"E10", "Broadcast_Single_Bit substrate costs: B = Theta(n^2) and friends", E10BSBCost},
		{"E11", "Section 4: t >= n/3 via a probabilistically correct broadcast", E11HighResilience},
		{"E12", "Round complexity: 3 rounds per clean generation, +2 per diagnosis", E12RoundComplexity},
	}
}

// equalInputs builds n identical L-bit inputs with a deterministic pattern.
func equalInputs(n, L int) [][]byte {
	val := patternValue(L, 0x35)
	in := make([][]byte, n)
	for i := range in {
		in[i] = val
	}
	return in
}

func patternValue(L int, seed byte) []byte {
	val := make([]byte, (L+7)/8)
	for i := range val {
		val[i] = seed + byte(i*7)
	}
	if rem := L % 8; rem != 0 {
		val[len(val)-1] &= byte(0xFF << (8 - uint(rem)))
	}
	return val
}

// mustConsensus runs a consensus and panics on harness errors (experiments
// are deterministic; an error is a bug, not a measurement).
func mustConsensus(cfg byzcons.Config, inputs [][]byte, L int, sc byzcons.Scenario) *byzcons.Result {
	res, err := byzcons.Consensus(cfg, inputs, L, sc)
	if err != nil {
		panic(fmt.Sprintf("experiments: consensus run failed: %v", err))
	}
	if !res.Consistent {
		panic("experiments: error-free algorithm produced inconsistent outputs")
	}
	return res
}

// mustValid additionally checks validity against the common input.
func mustValid(res *byzcons.Result, want []byte) {
	if res.Defaulted || !bytes.Equal(res.Value, want) {
		panic("experiments: validity violated on equal inputs")
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
