package experiments

import (
	"fmt"

	"byzcons"
	"byzcons/internal/metrics"
)

// E1PerStageBits checks Eq. 1 term by term: in fail-free generations the
// matching-stage data, M-vector, and checking-flag traffic must equal the
// closed forms exactly (not asymptotically — the formulas count every bit).
func E1PerStageBits(o Opts) *metrics.Table {
	tbl := metrics.NewTable("E1 — Eq. 1 per-generation stage costs (fail-free), measured vs formula",
		"n", "t", "D bits", "gens", "match.data meas", "match.data eq1", "match.M meas", "match.M eq1",
		"check.det meas", "check.det eq1", "exact?")
	grid := []struct{ n, t, lanes, gens int }{
		{4, 1, 4, 4}, {7, 2, 4, 4}, {10, 3, 2, 4}, {13, 4, 1, 4}, {16, 5, 2, 2},
	}
	if o.Quick {
		grid = grid[:2]
	}
	for _, g := range grid {
		cfg := byzcons.Config{N: g.n, T: g.t, Lanes: g.lanes, SymBits: 8}
		D := int64(g.n-2*g.t) * int64(g.lanes) * 8
		L := int(D) * g.gens
		res := mustConsensus(cfg, equalInputs(g.n, L), L, byzcons.Scenario{})
		mustValid(res, equalInputs(g.n, L)[0])
		B := byzcons.DefaultBroadcastCost(g.n)
		eq1 := byzcons.PredictStageCost(g.n, g.t, D, B)
		gens := int64(g.gens)
		mSym := res.BitsByTag["match.sym"]
		mM := res.BitsByTag["match.M"]
		mDet := res.BitsByTag["check.det"]
		exact := mSym == eq1.MatchData*gens && mM == eq1.MatchM*gens && mDet == eq1.CheckDet*gens
		tbl.AddRow(g.n, g.t, D, g.gens, mSym, eq1.MatchData*gens, mM, eq1.MatchM*gens,
			mDet, eq1.CheckDet*gens, fmt.Sprintf("%v", exact))
	}
	return tbl
}

// E2TotalComplexity sweeps L at fixed (n, t) and shows Ccon(L)/L converging
// to the paper's leading coefficient n(n-1)/(n-2t) (Eq. 2/3).
func E2TotalComplexity(o Opts) *metrics.Table {
	n, t := 16, 5
	tbl := metrics.NewTable(fmt.Sprintf("E2 — Eq. 2/3 total complexity, n=%d t=%d, auto D* (oracle B=2n²)", n, t),
		"L bits", "D* bits", "gens", "measured bits", "eq1 fail-free", "meas/L", "lead coeff", "meas/lead")
	lead := byzcons.PredictLeading(n, t, 1<<20) / (1 << 20) // per-bit coefficient
	Ls := []int{10_000, 100_000, 1_000_000, 4_000_000}
	if o.Quick {
		Ls = []int{10_000, 100_000}
	}
	for _, L := range Ls {
		cfg := byzcons.Config{N: n, T: t, SymBits: 8}
		B := byzcons.DefaultBroadcastCost(n)
		D := byzcons.OptimalD(n, t, 8, int64(L), B)
		res := mustConsensus(cfg, equalInputs(n, L), L, byzcons.Scenario{})
		mustValid(res, equalInputs(n, L)[0])
		gens := (int64(L) + D - 1) / D
		eq1 := byzcons.PredictStageCost(n, t, D, B).FailFree() * gens
		tbl.AddRow(L, D, gens, res.Bits, eq1, ratio(res.Bits, int64(L)), lead,
			ratio(res.Bits, byzcons.PredictLeading(n, t, int64(L))))
	}
	return tbl
}

// E3WorstCaseDiagnosis drives the EdgeMiser adversary, which spends exactly
// one faulty-incident edge per diagnosis: the count must land exactly on
// Theorem 1's t(t+1) bound, every faulty processor must end isolated, and
// validity must survive.
func E3WorstCaseDiagnosis(o Opts) *metrics.Table {
	tbl := metrics.NewTable("E3 — Theorem 1 worst case (EdgeMiser adversary)",
		"n", "t", "bound t(t+1)", "diagnoses", "faulty isolated", "valid", "bits (attack)", "bits (fail-free)", "overhead")
	grid := []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}}
	if o.Quick {
		grid = grid[:2]
	}
	for _, g := range grid {
		bound := g.t * (g.t + 1)
		cfg := byzcons.Config{N: g.n, T: g.t, Lanes: 1, SymBits: 8, Seed: 7}
		D := (g.n - 2*g.t) * 8
		L := D * (bound + 2)
		inputs := equalInputs(g.n, L)
		faulty := make([]int, g.t)
		for i := range faulty {
			faulty[i] = i
		}
		attacked := mustConsensus(cfg, inputs, L, byzcons.Scenario{Faulty: faulty, Behavior: byzcons.EdgeMiser{T: g.t}})
		clean := mustConsensus(cfg, inputs, L, byzcons.Scenario{})
		allIso := len(attacked.Isolated) == g.t
		valid := !attacked.Defaulted && attacked.Consistent
		tbl.AddRow(g.n, g.t, bound, attacked.DiagnosisRuns, fmt.Sprintf("%v", allIso),
			fmt.Sprintf("%v", valid), attacked.Bits, clean.Bits, ratio(attacked.Bits, clean.Bits))
	}
	return tbl
}

// E4ScalingInN fixes a large L and sweeps n (with maximal t < n/3). The
// paper's "linear in n" claim concerns the L-proportional component (the
// matching-stage data, whose coefficient is n(n-1)/(n-2t) ≈ 3(n-1)); the
// broadcast overhead terms decay only once L = Ω(n⁶) (demonstrated by E2),
// so they are reported separately here. Measured totals must also match the
// Eq. 1 closed form exactly.
func E4ScalingInN(o Opts) *metrics.Table {
	L := 1_000_000
	if o.Quick {
		L = 100_000
	}
	tbl := metrics.NewTable(fmt.Sprintf("E4 — scaling in n at L=%d bits (t = floor((n-1)/3))", L),
		"n", "t", "measured bits", "eq1 prediction", "meas=eq1?",
		"data bits/L", "lead coeff n(n-1)/(n-2t)", "data/lead", "overhead bits/L")
	ns := []int{4, 7, 10, 13, 16, 19, 22}
	if o.Quick {
		ns = []int{4, 7, 10}
	}
	for _, n := range ns {
		t := (n - 1) / 3
		cfg := byzcons.Config{N: n, T: t, SymBits: 8}
		res := mustConsensus(cfg, equalInputs(n, L), L, byzcons.Scenario{})
		mustValid(res, equalInputs(n, L)[0])
		B := byzcons.DefaultBroadcastCost(n)
		D := byzcons.OptimalD(n, t, 8, int64(L), B)
		gens := (int64(L) + D - 1) / D
		eq1 := byzcons.PredictStageCost(n, t, D, B).FailFree() * gens
		data := res.BitsByTag["match.sym"]
		lead := byzcons.PredictLeading(n, t, int64(L))
		tbl.AddRow(n, t, res.Bits, eq1, fmt.Sprintf("%v", res.Bits == eq1),
			ratio(data, int64(L)), ratio(lead, int64(L)), ratio(data, lead),
			ratio(res.Bits-data, int64(L)))
	}
	return tbl
}

// E5DSweep sweeps the generation size D around the Eq. 2 optimum D*. The
// optimum is a worst-case notion: in fail-free runs larger D is always
// cheaper (fewer generations of broadcast overhead); D* balances that
// against the diagnosis stage's D-proportional cost over its maximal t(t+1)
// occurrences. The sweep therefore runs under the EdgeMiser adversary, which
// realises exactly that worst case — the measured minimum must sit near D*.
func E5DSweep(o Opts) *metrics.Table {
	n, t, L := 10, 3, 200_000
	if o.Quick {
		L = 50_000
	}
	B := byzcons.DefaultBroadcastCost(n)
	dstar := byzcons.OptimalD(n, t, 8, int64(L), B)
	tbl := metrics.NewTable(fmt.Sprintf(
		"E5 — D sweep under worst-case attack, n=%d t=%d L=%d (Eq. 2 D* = %d bits)", n, t, L, dstar),
		"lanes", "D bits", "gens", "measured (attacked)", "eq1 worst case", "meas/best")
	lanesList := []int{1, 2, 5, 10, 20, 30, 40, 80, 160, 320}
	if o.Quick {
		lanesList = []int{2, 10, 30, 160}
	}
	faulty := make([]int, t)
	for i := range faulty {
		faulty[i] = i
	}
	type row struct {
		lanes int
		D     int64
		gens  int64
		bits  int64
		eq1   int64
	}
	rows := make([]row, 0, len(lanesList))
	best := int64(1) << 62
	for _, lanes := range lanesList {
		cfg := byzcons.Config{N: n, T: t, Lanes: lanes, SymBits: 8, Seed: 5}
		D := int64(n-2*t) * int64(lanes) * 8
		gens := (int64(L) + D - 1) / D
		if gens < int64(t*(t+1)) {
			continue // not enough generations for the full worst-case budget
		}
		res := mustConsensus(cfg, equalInputs(n, L), L,
			byzcons.Scenario{Faulty: faulty, Behavior: byzcons.EdgeMiser{T: t}})
		if res.DiagnosisRuns != t*(t+1) {
			panic(fmt.Sprintf("E5: EdgeMiser achieved %d diagnoses, want %d", res.DiagnosisRuns, t*(t+1)))
		}
		eq1 := byzcons.PredictCcon(n, t, gens*D, D, B)
		rows = append(rows, row{lanes, D, gens, res.Bits, eq1})
		if res.Bits < best {
			best = res.Bits
		}
	}
	for _, r := range rows {
		tbl.AddRow(r.lanes, r.D, r.gens, r.bits, r.eq1, ratio(r.bits, best))
	}
	return tbl
}
