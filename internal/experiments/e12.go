package experiments

import (
	"fmt"

	"byzcons"
	"byzcons/internal/metrics"
)

// E12RoundComplexity measures synchronous round counts — a dimension the
// paper leaves implicit but any deployment cares about. With the oracle
// substrate a fail-free generation costs exactly 3 rounds (symbol exchange,
// M broadcast, Detected broadcast) and each diagnosis adds 2 (R#, Trust), so
// a run takes 3·ceil(L/D) + 2·diagnoses rounds; real broadcast substrates
// multiply the broadcast rounds by their own round counts (t+2 for EIG's
// t+1 relay rounds plus the alignment step, 2t+5 for phase king).
func E12RoundComplexity(o Opts) *metrics.Table {
	tbl := metrics.NewTable("E12 — synchronous rounds: measured vs 3·gens + 2·diags (oracle substrate)",
		"substrate", "n", "t", "gens", "diagnoses", "rounds meas", "rounds formula", "exact?")
	L := 19200
	if o.Quick {
		L = 4800
	}
	type cfg struct {
		name   string
		kind   byzcons.BroadcastKind
		n, t   int
		attack bool
	}
	cases := []cfg{
		{"oracle fail-free", byzcons.BroadcastOracle, 7, 2, false},
		{"oracle EdgeMiser", byzcons.BroadcastOracle, 7, 2, true},
		{"eig fail-free", byzcons.BroadcastEIG, 7, 2, false},
		{"phaseking fail-free", byzcons.BroadcastPhaseKing, 9, 2, false},
	}
	if o.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		lanes := 4
		D := (c.n - 2*c.t) * lanes * 8
		gens := (L + D - 1) / D
		conf := byzcons.Config{N: c.n, T: c.t, Lanes: lanes, SymBits: 8, Broadcast: c.kind, Seed: 3}
		sc := byzcons.Scenario{}
		if c.attack {
			faulty := make([]int, c.t)
			for i := range faulty {
				faulty[i] = i
			}
			sc = byzcons.Scenario{Faulty: faulty, Behavior: byzcons.EdgeMiser{T: c.t}}
		}
		res := mustConsensus(conf, equalInputs(c.n, L), L, sc)
		formula := int64(0)
		exact := "-"
		if c.kind == byzcons.BroadcastOracle {
			formula = 3*int64(gens) + 2*int64(res.DiagnosisRuns)
			exact = fmt.Sprintf("%v", res.Rounds == formula)
		}
		tbl.AddRow(c.name, c.n, c.t, gens, res.DiagnosisRuns, res.Rounds, formula, exact)
	}
	return tbl
}
