package hashu

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDeterministicAndKeyed(t *testing.T) {
	h, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("some value to be hashed for matching")
	L := len(data) * 8
	if h.Sum(0x1234, data, L) != h.Sum(0x1234, data, L) {
		t.Error("hash not deterministic")
	}
	if h.Sum(0x1234, data, L) == h.Sum(0x1235, data, L) {
		t.Error("different keys gave equal digests (possible but astronomically unlikely here)")
	}
}

func TestEqualValuesAlwaysCollide(t *testing.T) {
	// The protocol relies on H_k(v) == H_k(v) exactly — matching is certain
	// for honest processors with equal inputs, for every key.
	h, _ := New(8)
	data := bytes.Repeat([]byte{0xC3}, 32)
	copyData := append([]byte(nil), data...)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		k := h.RandomKey(r)
		if h.Sum(k, data, 256) != h.Sum(k, copyData, 256) {
			t.Fatal("equal values hashed differently")
		}
	}
}

func TestCollisionRateMatchesBound(t *testing.T) {
	// For distinct values, Pr_r[collision] <= blocks/2^κ. Measure it.
	h, _ := New(8)
	a := bytes.Repeat([]byte{0x01}, 16)
	b := bytes.Repeat([]byte{0x02}, 16)
	L := 16 * 8
	r := rand.New(rand.NewSource(2))
	trials, collisions := 20000, 0
	for i := 0; i < trials; i++ {
		k := h.RandomKey(r)
		if h.Sum(k, a, L) == h.Sum(k, b, L) {
			collisions++
		}
	}
	bound := h.CollisionBound(L) // 16/256 = 0.0625
	rate := float64(collisions) / float64(trials)
	if rate > bound*1.2 {
		t.Errorf("collision rate %.4f exceeds bound %.4f", rate, bound)
	}
}

func TestDifferentLastBitsDiffer(t *testing.T) {
	// Values differing only in the final partial block must still hash
	// differently under almost all keys.
	h, _ := New(16)
	a := []byte{0xFF, 0x00}
	b := []byte{0xFF, 0x01}
	L := 16
	r := rand.New(rand.NewSource(3))
	diff := 0
	for i := 0; i < 100; i++ {
		k := h.RandomKey(r)
		if h.Sum(k, a, L) != h.Sum(k, b, L) {
			diff++
		}
	}
	if diff < 99 {
		t.Errorf("only %d/100 keys separated values differing in one bit", diff)
	}
}

func TestZeroKeyDegenerate(t *testing.T) {
	// The zero key maps everything to zero — it is one of the 2^κ keys and
	// its contribution is inside the collision bound.
	h, _ := New(8)
	if h.Sum(0, []byte{1, 2, 3}, 24) != 0 {
		t.Error("zero key should produce zero digest")
	}
}

func TestBlocksAndBound(t *testing.T) {
	h, _ := New(8)
	if h.Blocks(17) != 3 {
		t.Errorf("Blocks(17) = %d, want 3", h.Blocks(17))
	}
	if h.CollisionBound(1<<20) != 1 {
		t.Error("bound should cap at 1")
	}
	if h.Kappa() != 8 {
		t.Error("Kappa accessor wrong")
	}
}

func TestNewRejectsBadKappa(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("kappa=0 accepted")
	}
	if _, err := New(17); err == nil {
		t.Error("kappa=17 accepted")
	}
}
