// Package hashu implements the universal hash family used by the Fitzi-Hirt
// (PODC 2006) baseline: polynomial evaluation over GF(2^κ). A value is split
// into κ-bit blocks m_1..m_ℓ interpreted as coefficients, and the hash under
// key r is
//
//	H_r(m) = m_1·r^ℓ + m_2·r^(ℓ-1) + ... + m_ℓ·r  (Horner form)
//
// For two distinct equal-length values the difference polynomial has degree
// at most ℓ, so Pr_r[H_r(m) = H_r(m')] ≤ ℓ / 2^κ over a uniformly random key.
// This collision probability is exactly the error probability the paper's
// abstract contrasts with its own error-free guarantee.
package hashu

import (
	"fmt"
	"math/rand"

	"byzcons/internal/bitio"
	"byzcons/internal/gf"
)

// Hasher hashes byte strings into GF(2^κ) elements.
type Hasher struct {
	f     *gf.Field
	kappa uint
}

// New returns a Hasher with κ-bit keys and digests, 1 <= κ <= 16.
func New(kappa uint) (*Hasher, error) {
	f, err := gf.New(kappa)
	if err != nil {
		return nil, fmt.Errorf("hashu: %w", err)
	}
	return &Hasher{f: f, kappa: kappa}, nil
}

// Kappa returns the digest width in bits.
func (h *Hasher) Kappa() uint { return h.kappa }

// Blocks returns ℓ, the number of κ-bit blocks in an L-bit value.
func (h *Hasher) Blocks(L int) int { return (L + int(h.kappa) - 1) / int(h.kappa) }

// RandomKey draws a uniformly random key.
func (h *Hasher) RandomKey(r *rand.Rand) gf.Sym {
	return gf.Sym(r.Intn(h.f.Order()))
}

// Sum hashes the first L bits of data under key r.
func (h *Hasher) Sum(key gf.Sym, data []byte, L int) gf.Sym {
	rd := bitio.NewReader(data)
	var acc gf.Sym
	for read := 0; read < L; read += int(h.kappa) {
		width := h.kappa
		if rem := L - read; rem < int(width) {
			width = uint(rem)
		}
		block := gf.Sym(rd.Read(h.kappa)) // fixed-width blocks; trailing bits zero-padded
		_ = width
		acc = h.f.Add(h.f.Mul(acc, key), block)
	}
	// One final multiplication keeps H_r(0...0) = 0 only for the zero key
	// class and removes the degree-0 term, preserving the ℓ/2^κ bound.
	return h.f.Mul(acc, key)
}

// CollisionBound returns the collision probability bound ℓ/2^κ for L-bit
// values (capped at 1).
func (h *Hasher) CollisionBound(L int) float64 {
	b := float64(h.Blocks(L)) / float64(int64(1)<<h.kappa)
	if b > 1 {
		return 1
	}
	return b
}
